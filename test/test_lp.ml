module Lp = Mf_lp.Lp
module Simplex = Mf_lp.Simplex
module Rng = Mf_util.Rng

let check = Alcotest.check
let feps = Alcotest.float 1e-6

let solve_exn lp =
  match Lp.solve lp with
  | Lp.Optimal { objective; values } -> (objective, values)
  | Lp.Feasible _ | Lp.Iter_limit -> Alcotest.fail "unexpected budget exhaustion"
  | Lp.Numerical m -> Alcotest.fail ("unexpected numerical failure: " ^ m)
  | Lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_basic_max () =
  (* max x+y st x+2y<=4, 3x+y<=6 -> (1.6, 1.2) *)
  let lp = Lp.create () in
  let x = Lp.add_var ~obj:(-1.) lp in
  let y = Lp.add_var ~obj:(-1.) lp in
  Lp.add_row lp [ (1., x); (2., y) ] Lp.Le 4.;
  Lp.add_row lp [ (3., x); (1., y) ] Lp.Le 6.;
  let obj, values = solve_exn lp in
  check feps "objective" (-2.8) obj;
  check feps "x" 1.6 values.(x);
  check feps "y" 1.2 values.(y)

let test_equality_and_ge () =
  let lp = Lp.create () in
  let x = Lp.add_var ~obj:1. lp in
  let y = Lp.add_var ~obj:2. lp in
  Lp.add_row lp [ (1., x); (1., y) ] Lp.Eq 10.;
  Lp.add_row lp [ (1., y) ] Lp.Ge 3.;
  let obj, values = solve_exn lp in
  check feps "objective" 13. obj;
  check feps "y at its bound" 3. values.(y)

let test_infeasible () =
  let lp = Lp.create () in
  let x = Lp.add_var ~upper:1. lp in
  Lp.add_row lp [ (1., x) ] Lp.Ge 2.;
  check Alcotest.bool "infeasible" true (Lp.solve lp = Lp.Infeasible)

let test_infeasible_rows () =
  let lp = Lp.create () in
  let x = Lp.add_var lp in
  Lp.add_row lp [ (1., x) ] Lp.Le 1.;
  Lp.add_row lp [ (1., x) ] Lp.Ge 2.;
  check Alcotest.bool "conflicting rows" true (Lp.solve lp = Lp.Infeasible)

let test_unbounded () =
  let lp = Lp.create () in
  let x = Lp.add_var ~obj:(-1.) lp in
  Lp.add_row lp [ (1., x) ] Lp.Ge 0.;
  check Alcotest.bool "unbounded" true (Lp.solve lp = Lp.Unbounded)

let test_variable_bounds () =
  (* bounds handled without explicit rows: min -x -2y, x<=3, y<=2 *)
  let lp = Lp.create () in
  let x = Lp.add_var ~upper:3. ~obj:(-1.) lp in
  let y = Lp.add_var ~upper:2. ~obj:(-2.) lp in
  Lp.add_row lp [ (1., x); (1., y) ] Lp.Le 100.;
  let obj, values = solve_exn lp in
  check feps "x at upper" 3. values.(x);
  check feps "y at upper" 2. values.(y);
  check feps "objective" (-7.) obj

let test_lower_bounds () =
  let lp = Lp.create () in
  let x = Lp.add_var ~lower:2. ~obj:1. lp in
  let y = Lp.add_var ~lower:1. ~obj:1. lp in
  Lp.add_row lp [ (1., x); (1., y) ] Lp.Le 10.;
  let obj, _ = solve_exn lp in
  check feps "rest at lower bounds" 3. obj

let test_fixing () =
  let lp = Lp.create () in
  let x = Lp.add_var ~upper:1. ~obj:(-1.) lp in
  let y = Lp.add_var ~upper:1. ~obj:(-1.) lp in
  Lp.add_row lp [ (1., x); (1., y) ] Lp.Le 2.;
  let fix v = if v = x then Some 0. else None in
  (match Lp.solve ~fix lp with
   | Lp.Optimal { objective; values } ->
     check feps "x fixed" 0. values.(x);
     check feps "obj with fixing" (-1.) objective
   | Lp.Infeasible | Lp.Unbounded | Lp.Feasible _ | Lp.Iter_limit | Lp.Numerical _ ->
     Alcotest.fail "expected optimal");
  (* without fixing the model is untouched *)
  let obj, _ = solve_exn lp in
  check feps "obj without fixing" (-2.) obj

let test_degenerate () =
  (* many redundant constraints through one vertex *)
  let lp = Lp.create () in
  let x = Lp.add_var ~obj:(-1.) lp in
  let y = Lp.add_var ~obj:(-1.) lp in
  Lp.add_row lp [ (1., x); (1., y) ] Lp.Le 2.;
  Lp.add_row lp [ (2., x); (2., y) ] Lp.Le 4.;
  Lp.add_row lp [ (1., x) ] Lp.Le 1.;
  Lp.add_row lp [ (1., y) ] Lp.Le 1.;
  Lp.add_row lp [ (3., x); (3., y) ] Lp.Le 6.;
  let obj, _ = solve_exn lp in
  check feps "degenerate optimum" (-2.) obj

let test_duplicate_terms () =
  (* repeated variables in a row are summed *)
  let lp = Lp.create () in
  let x = Lp.add_var ~obj:(-1.) lp in
  Lp.add_row lp [ (1., x); (1., x) ] Lp.Le 4.;
  let obj, values = solve_exn lp in
  check feps "2x <= 4" 2. values.(x);
  check feps "objective" (-2.) obj

let test_set_obj () =
  let lp = Lp.create () in
  let x = Lp.add_var ~upper:5. lp in
  Lp.add_row lp [ (1., x) ] Lp.Ge 1.;
  Lp.set_obj lp x (-1.);
  let obj, _ = solve_exn lp in
  check feps "maximise after set_obj" (-5.) obj

let test_bad_inputs () =
  let lp = Lp.create () in
  let x = Lp.add_var lp in
  Alcotest.check_raises "bad var in row" (Invalid_argument "Lp.add_row: bad variable") (fun () ->
      Lp.add_row lp [ (1., x + 1) ] Lp.Le 1.)

(* Random LPs with a known feasible point: the optimum must not exceed the
   witness objective, and returned values must satisfy all rows. *)
let random_lp_prop =
  QCheck.Test.make ~name:"optimal <= witness and solution feasible" ~count:100 QCheck.int
    (fun seed ->
      let rng = Rng.create ~seed:(abs seed) in
      let n = 2 + Rng.int rng 4 in
      let m = 1 + Rng.int rng 5 in
      let lp = Lp.create () in
      let witness = Array.init n (fun _ -> Rng.float rng 5.) in
      let cost = Array.init n (fun _ -> Rng.float rng 4. -. 2.) in
      let vars = Array.init n (fun j -> Lp.add_var ~upper:10. ~obj:cost.(j) lp) in
      let rows = ref [] in
      for _ = 1 to m do
        let coefs = Array.init n (fun _ -> Rng.float rng 3.) in
        let lhs = ref 0. in
        Array.iteri (fun j c -> lhs := !lhs +. (c *. witness.(j))) coefs;
        (* rhs chosen so the witness satisfies the row *)
        let rhs = !lhs +. Rng.float rng 2. in
        let terms = Array.to_list (Array.mapi (fun j c -> (c, vars.(j))) coefs) in
        Lp.add_row lp terms Lp.Le rhs;
        rows := (coefs, rhs) :: !rows
      done;
      let witness_obj = ref 0. in
      Array.iteri (fun j c -> witness_obj := !witness_obj +. (c *. witness.(j))) cost;
      match Lp.solve lp with
      | Lp.Infeasible | Lp.Unbounded | Lp.Feasible _ | Lp.Iter_limit | Lp.Numerical _ -> false
      | Lp.Optimal { objective; values } ->
        objective <= !witness_obj +. 1e-6
        && Array.for_all (fun x -> x >= -1e-6 && x <= 10. +. 1e-6) values
        && List.for_all
             (fun (coefs, rhs) ->
               let lhs = ref 0. in
               Array.iteri (fun j c -> lhs := !lhs +. (c *. values.(j))) coefs;
               !lhs <= rhs +. 1e-5)
             !rows)

(* Differential property for the warm-start machinery: after a
   branching-style fixing (and sometimes a lazily appended cut row), the
   dual re-optimisation from the parent optimal basis and a cold primal
   solve must agree on feasibility and, when both optimal, on the objective
   to 1e-6.  All variables are boxed, so every subproblem is bounded. *)
let warm_cold_prop =
  QCheck.Test.make ~name:"warm dual agrees with cold primal" ~count:200 QCheck.int
    (fun seed ->
      let rng = Rng.create ~seed:(abs seed) in
      let n = 2 + Rng.int rng 6 in
      let m = 1 + Rng.int rng 6 in
      let lp = Lp.create () in
      let witness = Array.init n (fun _ -> Rng.float rng 1.) in
      let vars =
        Array.init n (fun _ -> Lp.add_var ~upper:1. ~obj:(Rng.float rng 4. -. 2.) lp)
      in
      for _ = 1 to m do
        let coefs = Array.init n (fun _ -> Rng.float rng 3. -. 1.) in
        let lhs = ref 0. in
        Array.iteri (fun j c -> lhs := !lhs +. (c *. witness.(j))) coefs;
        let terms = Array.to_list (Array.mapi (fun j c -> (c, vars.(j))) coefs) in
        (* rhs keeps the witness feasible for the root; fixings below may
           still cut it off, which both solvers must then report *)
        if Rng.bool rng then Lp.add_row lp terms Lp.Le (!lhs +. Rng.float rng 1.)
        else Lp.add_row lp terms Lp.Ge (!lhs -. Rng.float rng 1.)
      done;
      match Lp.solve_b lp with
      | Lp.Optimal _, Some parent, _ ->
        (* a branching step: clamp a few variables to 0/1 *)
        let fixed = Array.init n (fun _ -> if Rng.int rng 3 = 0 then Some (float_of_int (Rng.int rng 2)) else None) in
        let fix v = Array.to_list (Array.mapi (fun j var -> (var, fixed.(j))) vars) |> List.assoc v in
        (* half the time, also append a cut row (basis extension path) *)
        if Rng.bool rng then begin
          let coefs = Array.init n (fun _ -> Rng.float rng 2.) in
          let terms = Array.to_list (Array.mapi (fun j c -> (c, vars.(j))) coefs) in
          Lp.add_row lp terms Lp.Le (Rng.float rng (float_of_int n))
        end;
        let cold, _, cold_info = Lp.solve_b ~fix lp in
        let warm, _, _ = Lp.solve_b ~fix ~warm:parent lp in
        if cold_info.Lp.warm then false (* no basis was passed: must be cold *)
        else begin
          match (cold, warm) with
          | Lp.Optimal { objective = a; _ }, Lp.Optimal { objective = b; _ } ->
            abs_float (a -. b) < 1e-6
          | Lp.Infeasible, Lp.Infeasible -> true
          | _ -> false
        end
      | (Lp.Infeasible | Lp.Numerical _), _, _ -> true (* nothing to warm-start *)
      | _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic max" `Quick test_basic_max;
          Alcotest.test_case "equality and >=" `Quick test_equality_and_ge;
          Alcotest.test_case "infeasible bound" `Quick test_infeasible;
          Alcotest.test_case "infeasible rows" `Quick test_infeasible_rows;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "upper bounds" `Quick test_variable_bounds;
          Alcotest.test_case "lower bounds" `Quick test_lower_bounds;
          Alcotest.test_case "per-solve fixing" `Quick test_fixing;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "duplicate terms" `Quick test_duplicate_terms;
          Alcotest.test_case "set_obj" `Quick test_set_obj;
          Alcotest.test_case "bad inputs" `Quick test_bad_inputs;
          qt random_lp_prop;
          qt warm_cold_prop;
        ] );
    ]
