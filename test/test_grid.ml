module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph

let check = Alcotest.check

let test_dimensions () =
  let g = Grid.create ~width:4 ~height:3 in
  check Alcotest.int "width" 4 (Grid.width g);
  check Alcotest.int "height" 3 (Grid.height g);
  check Alcotest.int "nodes" 12 (Grid.n_nodes g);
  (* 4x3 grid: 3*3 horizontal + 4*2 vertical = 17 edges *)
  check Alcotest.int "edges" 17 (Grid.n_edges g)

let test_node_coords_roundtrip () =
  let g = Grid.create ~width:5 ~height:4 in
  for x = 0 to 4 do
    for y = 0 to 3 do
      let n = Grid.node g ~x ~y in
      check Alcotest.(pair int int) "roundtrip" (x, y) (Grid.coords g n)
    done
  done

let test_node_bounds () =
  let g = Grid.create ~width:3 ~height:3 in
  Alcotest.check_raises "x out of range" (Invalid_argument "Grid.node: (3,0) outside 3x3")
    (fun () -> ignore (Grid.node g ~x:3 ~y:0))

let test_edges_between () =
  let g = Grid.create ~width:3 ~height:3 in
  let a = Grid.node g ~x:0 ~y:0 and b = Grid.node g ~x:1 ~y:0 in
  check Alcotest.bool "adjacent" true (Grid.edge_between g a b <> None);
  check Alcotest.bool "symmetric" true (Grid.edge_between g b a = Grid.edge_between g a b);
  let c = Grid.node g ~x:2 ~y:2 in
  check Alcotest.bool "not adjacent" true (Grid.edge_between g a c = None);
  check Alcotest.bool "xy variant" true (Grid.edge_between_xy g (0, 0) (0, 1) <> None)

let test_degrees () =
  let g = Grid.create ~width:3 ~height:3 in
  let graph = Grid.graph g in
  check Alcotest.int "corner degree" 2 (Graph.degree graph (Grid.node g ~x:0 ~y:0));
  check Alcotest.int "side degree" 3 (Graph.degree graph (Grid.node g ~x:1 ~y:0));
  check Alcotest.int "centre degree" 4 (Graph.degree graph (Grid.node g ~x:1 ~y:1))

let test_manhattan () =
  let g = Grid.create ~width:6 ~height:6 in
  let a = Grid.node g ~x:1 ~y:2 and b = Grid.node g ~x:4 ~y:0 in
  check Alcotest.int "manhattan" 5 (Grid.manhattan g a b);
  check Alcotest.int "self distance" 0 (Grid.manhattan g a a)

let test_single_row () =
  let g = Grid.create ~width:5 ~height:1 in
  check Alcotest.int "line edges" 4 (Grid.n_edges g)

let test_empty_rejected () =
  Alcotest.check_raises "empty grid" (Invalid_argument "Grid.create: empty grid") (fun () ->
      ignore (Grid.create ~width:0 ~height:3))

let grid_edge_prop =
  QCheck.Test.make ~name:"every grid edge joins manhattan-1 nodes" ~count:20
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (w, h) ->
      let g = Grid.create ~width:w ~height:h in
      let ok = ref true in
      Graph.iter_edges
        (fun _ u v -> if Grid.manhattan g u v <> 1 then ok := false)
        (Grid.graph g);
      (* count check: edges = (w-1)h + w(h-1) *)
      !ok && Grid.n_edges g = ((w - 1) * h) + (w * (h - 1)))

let () =
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_grid"
    [
      ( "grid",
        [
          Alcotest.test_case "dimensions" `Quick test_dimensions;
          Alcotest.test_case "coords roundtrip" `Quick test_node_coords_roundtrip;
          Alcotest.test_case "bounds" `Quick test_node_bounds;
          Alcotest.test_case "edge between" `Quick test_edges_between;
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "manhattan" `Quick test_manhattan;
          Alcotest.test_case "single row" `Quick test_single_row;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          QCheck_alcotest.to_alcotest grid_edge_prop;
        ] );
    ]
