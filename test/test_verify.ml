module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Diag = Mf_util.Diag
module Lint = Mf_verify.Lint
module Cert = Mf_verify.Cert
module Conflict = Mf_verify.Conflict
module Vectors = Mf_testgen.Vectors
module Schedule = Mf_sched.Schedule

let check = Alcotest.check

let has_code code diags = List.exists (fun (d : Diag.t) -> d.code = code) diags
let codes diags = List.map (fun (d : Diag.t) -> d.code) diags

(* ------------------------------------------------------------------ *)
(* Diag core *)

let test_exit_code_policy () =
  let e = Diag.errorf ~code:"MF001" "boom" in
  let w = Diag.warningf ~code:"MF004" "meh" in
  check Alcotest.int "empty" 0 (Diag.exit_code ~strict:false []);
  check Alcotest.int "empty strict" 0 (Diag.exit_code ~strict:true []);
  check Alcotest.int "warning lax" 0 (Diag.exit_code ~strict:false [ w ]);
  check Alcotest.int "warning strict" 1 (Diag.exit_code ~strict:true [ w ]);
  check Alcotest.int "error lax" 1 (Diag.exit_code ~strict:false [ e ]);
  check Alcotest.int "error strict" 1 (Diag.exit_code ~strict:true [ e; w ])

let test_rendering () =
  let d =
    Diag.errorf ~where:(Diag.span ~file:"x.chip" ~line:3 ~col:7 ()) ~subject:"valve v1"
      ~code:"MF003" "message"
  in
  check Alcotest.string "pp" "error[MF003] x.chip:3:7: message (valve v1)"
    (Format.asprintf "%a" Diag.pp d);
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  let json = Diag.to_json d in
  List.iter
    (fun needle -> check Alcotest.bool needle true (contains json needle))
    [ "\"MF003\""; "\"error\""; "x.chip"; "valve v1" ]

(* ------------------------------------------------------------------ *)
(* Linter *)

let test_benchmarks_lint_clean () =
  List.iter
    (fun chip ->
      let diags = Lint.chip chip in
      if diags <> [] then
        Alcotest.failf "%s: %s" (Chip.name chip) (String.concat ", " (codes diags)))
    [
      Mf_chips.Benchmarks.ivd_chip ();
      Mf_chips.Benchmarks.ra30_chip ();
      Mf_chips.Benchmarks.mrna_chip ();
    ]

(* A dead-end unvalved stub at (1,1): lint MF004, even though the builder
   accepts the chip. *)
let test_dangling_stub () =
  let b = Chip.builder ~name:"stub" ~width:4 ~height:2 in
  Chip.add_port b ~x:0 ~y:0 ~name:"P0";
  Chip.add_port b ~x:3 ~y:0 ~name:"P1";
  Chip.add_channel b [ (0, 0); (1, 0); (2, 0); (3, 0) ];
  Chip.add_channel b [ (1, 0); (1, 1) ];
  Chip.add_valve b (0, 0) (1, 0);
  Chip.add_valve b (2, 0) (3, 0);
  let chip = Chip.finish_exn b in
  let diags = Lint.chip chip in
  check Alcotest.bool "MF004" true (has_code "MF004" diags);
  check Alcotest.int "strict exit" 1 (Diag.exit_code ~strict:true diags)

(* The same stub valved off is a legitimate storage pocket: clean. *)
let test_valved_pocket_clean () =
  let b = Chip.builder ~name:"pocket" ~width:4 ~height:2 in
  Chip.add_port b ~x:0 ~y:0 ~name:"P0";
  Chip.add_port b ~x:3 ~y:0 ~name:"P1";
  Chip.add_channel b [ (0, 0); (1, 0); (2, 0); (3, 0) ];
  Chip.add_channel b [ (1, 0); (1, 1) ];
  Chip.add_valve b (0, 0) (1, 0);
  Chip.add_valve b (2, 0) (3, 0);
  Chip.add_valve b (1, 0) (1, 1);
  check Alcotest.(list string) "clean" [] (codes (Lint.chip (Chip.finish_exn b)))

(* A channel island no port can reach passes [Chip.finish] (it holds no
   port or device) but is dead silicon: MF005 warning. *)
let test_floating_island () =
  let b = Chip.builder ~name:"island" ~width:4 ~height:3 in
  Chip.add_port b ~x:0 ~y:0 ~name:"P0";
  Chip.add_port b ~x:3 ~y:0 ~name:"P1";
  Chip.add_channel b [ (0, 0); (1, 0); (2, 0); (3, 0) ];
  Chip.add_valve b (0, 0) (1, 0);
  Chip.add_valve b (2, 0) (3, 0);
  Chip.add_channel b [ (0, 2); (1, 2); (2, 2) ];
  let chip = Chip.finish_exn b in
  let diags = Lint.chip chip in
  check Alcotest.bool "MF005" true (has_code "MF005" diags);
  check Alcotest.bool "warning only" false (Diag.has_errors diags)

(* ------------------------------------------------------------------ *)
(* Linter on FPVA grid topologies: the valve-array sieve exercises the
   structural checks differently from the ring netlists above — the mesh
   makes almost any stub valve-enclosed and the regular lattice hides
   degeneracy — so each code is triggered on a generated grid chip via
   textual mutation of its serialised form. *)

let fpva_chip () =
  Mf_chips.Families.Fpva.generate ~name:"fpva_mut" (Mf_util.Rng.create ~seed:41)

let mutate_text chip extra_lines =
  let text = Mf_arch.Chip_io.to_string chip ^ String.concat "\n" extra_lines ^ "\n" in
  match Mf_arch.Chip_io.parse text with
  | Ok chip' -> chip'
  | Error msg -> Alcotest.failf "mutated chip rejected: %s" msg

(* An unvalved two-edge chain hanging off the mesh corner dead-ends in the
   margin.  One edge is not enough: the fully-valved sieve would make a
   single stub count as a valve-enclosed pocket, which is exempt. *)
let test_fpva_dangling_stub () =
  let chip = mutate_text (fpva_chip ()) [ "channel 1,1 0,1 0,0" ] in
  let diags = Lint.chip chip in
  check Alcotest.bool "MF004" true (has_code "MF004" diags)

(* A channel pair stranded in the margin touches no port: floating island. *)
let test_fpva_floating_island () =
  let chip = mutate_text (fpva_chip ()) [ "channel 0,0 1,0" ] in
  let diags = Lint.chip chip in
  check Alcotest.bool "MF005" true (has_code "MF005" diags);
  check Alcotest.bool "warning only" false (Diag.has_errors diags)

(* A sieve flattened to a single row leaves no off-axis room: MF006 warns
   on the degenerate lattice (the in-grid/adjacency MF006 errors are
   unreachable through the builder, which validates both). *)
let test_flattened_sieve_degenerate () =
  let b = Chip.builder ~name:"flat" ~width:5 ~height:1 in
  Chip.add_port b ~x:0 ~y:0 ~name:"P0";
  Chip.add_port b ~x:4 ~y:0 ~name:"P1";
  Chip.add_channel b [ (0, 0); (1, 0); (2, 0); (3, 0); (4, 0) ];
  for x = 0 to 3 do
    Chip.add_valve b (x, 0) (x + 1, 0)
  done;
  let diags = Lint.chip (Chip.finish_exn b) in
  check Alcotest.bool "MF006" true (has_code "MF006" diags);
  check Alcotest.bool "warning only" false (Diag.has_errors diags)

(* The unmutated generated grid chip is clean — the three findings above
   are properties of the mutations, not of the family. *)
let test_fpva_baseline_clean () =
  check Alcotest.(list string) "clean" [] (codes (Lint.chip (fpva_chip ())))

(* ------------------------------------------------------------------ *)
(* Certificate checker on generated suites *)

let generated chip =
  match Mf_testgen.Pathgen.generate ~node_limit:400 chip with
  | Error f -> Alcotest.failf "pathgen: %a" Mf_util.Fail.pp f
  | Ok config ->
    let aug = Mf_testgen.Pathgen.apply chip config in
    let cuts =
      Mf_testgen.Cutgen.generate aug ~source:config.Mf_testgen.Pathgen.src_port
        ~meter:config.Mf_testgen.Pathgen.dst_port
    in
    let suite = Vectors.of_config config cuts in
    (aug, suite)

let cert_of aug (suite : Vectors.t) =
  let report = Vectors.validate aug suite in
  Cert.make ~chip_name:(Chip.name aug)
    ~suite:
      {
        Cert.source_port = suite.Vectors.source_port;
        meter_port = suite.Vectors.meter_port;
        path_edges = suite.Vectors.path_edges;
        cut_valves = suite.Vectors.cut_valves;
      }
    ~claimed_vectors:(Vectors.count suite)
    ~claimed_coverage:
      (report.Mf_faults.Coverage.detected, report.Mf_faults.Coverage.total_faults)
    ()

let test_generated_suites_verify () =
  List.iter
    (fun chip ->
      let aug, suite = generated chip in
      let cert = cert_of aug suite in
      let diags = Mf_verify.Verify.certificate aug cert in
      if diags <> [] then
        Alcotest.failf "%s: %s" (Chip.name chip) (String.concat ", " (codes diags)))
    [ Mf_chips.Benchmarks.ivd_chip (); Mf_chips.Benchmarks.ra30_chip () ]

(* Mutation: dropping an edge from a test path breaks contiguity → MF101. *)
let test_mutation_drop_path_edge () =
  let aug, suite = generated (Mf_chips.Benchmarks.ivd_chip ()) in
  let cert = cert_of aug suite in
  let mutated =
    {
      cert with
      Cert.suite =
        {
          cert.Cert.suite with
          Cert.path_edges =
            (match cert.Cert.suite.Cert.path_edges with
             | (_ :: rest) :: more -> rest :: more
             | _ -> Alcotest.fail "no path to mutate");
        };
    }
  in
  let diags = Cert.check aug mutated in
  check Alcotest.bool "MF101" true (has_code "MF101" diags);
  check Alcotest.int "strict exit" 1 (Diag.exit_code ~strict:true diags)

(* Mutation: removing a valve from a cut reopens a route → MF102 (and the
   coverage claim breaks → MF103). *)
let test_mutation_open_cut_valve () =
  let aug, suite = generated (Mf_chips.Benchmarks.ivd_chip ()) in
  let cert = cert_of aug suite in
  let mutated =
    {
      cert with
      Cert.suite =
        {
          cert.Cert.suite with
          Cert.cut_valves =
            (match cert.Cert.suite.Cert.cut_valves with
             | (_ :: rest) :: more when rest <> [] -> rest :: more
             | [ _ ] :: _ -> Alcotest.fail "single-valve first cut; pick another chip"
             | _ -> Alcotest.fail "no cut to mutate");
        };
    }
  in
  let diags = Cert.check aug mutated in
  check Alcotest.bool "MF102" true (has_code "MF102" diags);
  check Alcotest.bool "MF103" true (has_code "MF103" diags);
  check Alcotest.int "strict exit" 1 (Diag.exit_code ~strict:true diags)

(* Mutation: a wrong claim is caught even when the suite itself is fine. *)
let test_mutation_inflated_claim () =
  let aug, suite = generated (Mf_chips.Benchmarks.ivd_chip ()) in
  let cert = cert_of aug suite in
  let mutated = { cert with Cert.claimed_detected = cert.Cert.claimed_detected + 1 } in
  check Alcotest.bool "MF103" true (has_code "MF103" (Cert.check aug mutated))

(* Out-of-range ids short-circuit to MF105 alone. *)
let test_range_errors () =
  let aug, suite = generated (Mf_chips.Benchmarks.ivd_chip ()) in
  let cert = cert_of aug suite in
  let mutated =
    { cert with Cert.suite = { cert.Cert.suite with Cert.cut_valves = [ [ 9999 ] ] } }
  in
  let diags = Cert.check aug mutated in
  check Alcotest.bool "MF105" true (has_code "MF105" diags);
  check Alcotest.bool "only MF105 errors" true
    (List.for_all (fun (d : Diag.t) -> d.code = "MF105") (Diag.errors diags))

(* Mutation: aliasing a path's DFT valve with an off-path original valve
   forces contradictory states in that path's vector → MF201. *)
let test_mutation_alias_conflict () =
  let aug, suite = generated (Mf_chips.Benchmarks.ivd_chip ()) in
  let first_path = List.hd suite.Vectors.path_edges in
  let dft_on_path =
    Array.to_list (Chip.valves aug)
    |> List.find_map (fun (v : Chip.valve) ->
           if v.is_dft && List.mem v.edge first_path then Some v.valve_id else None)
  in
  let orig_off_path =
    Array.to_list (Chip.valves aug)
    |> List.find_map (fun (v : Chip.valve) ->
           if (not v.is_dft) && not (List.mem v.edge first_path) then Some v.valve_id else None)
  in
  match (dft_on_path, orig_off_path) with
  | Some d, Some o ->
    let shared = Chip.with_sharing aug [ (d, o) ] in
    let diags = Conflict.suite shared (cert_of aug suite).Cert.suite in
    check Alcotest.bool "MF201" true (has_code "MF201" diags);
    check Alcotest.int "strict exit" 1 (Diag.exit_code ~strict:true diags)
  | _ -> Alcotest.fail "could not pick a conflicting valve pair"

(* ------------------------------------------------------------------ *)
(* Schedule conflicts (MF202) *)

(* A 5x2 chip whose DFT valve v4 shares v0's line; moving a unit over
   v0's edge while another unit rests next to v4 forces v4 open against
   the resting fluid. *)
let test_schedule_conflict () =
  let b = Chip.builder ~name:"sched" ~width:5 ~height:2 in
  Chip.add_port b ~x:0 ~y:0 ~name:"P0";
  Chip.add_port b ~x:4 ~y:0 ~name:"P1";
  Chip.add_channel b [ (0, 0); (1, 0); (2, 0); (3, 0); (4, 0) ];
  Chip.add_valve b (0, 0) (1, 0);
  Chip.add_valve b (1, 0) (2, 0);
  Chip.add_valve b (2, 0) (3, 0);
  Chip.add_valve b (3, 0) (4, 0);
  let chip = Chip.finish_exn b in
  let grid = Chip.grid chip in
  let dft_edge = Option.get (Grid.edge_between_xy grid (2, 0) (2, 1)) in
  let aug = Chip.augment chip ~edges:[ dft_edge ] in
  let v4 = (Option.get (Chip.valve_on aug dft_edge)).Chip.valve_id in
  let shared = Chip.with_sharing aug [ (v4, 0) ] in
  let move_edge = Option.get (Grid.edge_between_xy grid (0, 0) (1, 0)) in
  let rest_edge = Option.get (Grid.edge_between_xy grid (1, 0) (2, 0)) in
  let mk_sched events =
    {
      Schedule.makespan = 5;
      events;
      n_transports = 1;
      transport_time = 2;
      n_stored = 1;
      n_washes = 0;
    }
  in
  (* resting unit's pocket edge ends at (2,0), an endpoint of v4's edge *)
  let hazardous =
    mk_sched
      [
        Schedule.Unit_stored { unit_id = 0; edge = rest_edge; time = 0 };
        Schedule.Transport_started { unit_id = 1; path = [ move_edge ]; time = 1; finish = 3 };
      ]
  in
  let diags = Conflict.schedule shared hazardous in
  check Alcotest.bool "MF202" true (has_code "MF202" diags);
  (* same transport with the resting unit gone: nothing protected, clean *)
  let safe =
    mk_sched
      [ Schedule.Transport_started { unit_id = 1; path = [ move_edge ]; time = 1; finish = 3 } ]
  in
  check Alcotest.(list string) "clean without resting unit" []
    (codes (Conflict.schedule shared safe));
  (* and the unshared chip never conflicts: each valve has its own line *)
  check Alcotest.(list string) "unshared clean" [] (codes (Conflict.schedule aug hazardous))

(* ------------------------------------------------------------------ *)
(* Certificate serialisation *)

let test_cert_round_trip () =
  let aug, suite = generated (Mf_chips.Benchmarks.ivd_chip ()) in
  let cert = cert_of aug suite in
  match Cert.parse (Cert.to_string cert) with
  | Ok cert' -> check Alcotest.bool "round-trip" true (cert = cert')
  | Error ds -> Alcotest.failf "parse: %s" (String.concat ", " (codes ds))

let test_cert_parse_errors () =
  List.iter
    (fun (text, label) ->
      match Cert.parse text with
      | Ok _ -> Alcotest.failf "accepted: %s" label
      | Error ds -> check Alcotest.bool (label ^ " is MF303") true (has_code "MF303" ds))
    [
      ("", "empty");
      ("cert x\npath 1 2\n", "missing suite");
      ("cert x\nsuite 0 1\npath a b\n", "non-integer ids");
      ("cert x\nsuite 0 1\nwibble 3\n", "unknown directive");
      ("cert x\ncert y\nsuite 0 1\n", "duplicate header");
    ]

let test_cert_file_round_trip () =
  let aug, suite = generated (Mf_chips.Benchmarks.ivd_chip ()) in
  let cert = cert_of aug suite in
  let path = Filename.temp_file "mfdft" ".cert" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cert.save path cert;
      match Cert.load path with
      | Ok cert' ->
        check Alcotest.bool "file round-trip" true (cert = cert');
        check Alcotest.(list string) "verifies" []
          (codes (Mf_verify.Verify.certificate aug cert'))
      | Error ds -> Alcotest.failf "load: %s" (String.concat ", " (codes ds)))

let test_load_missing () =
  match Cert.load "/nonexistent/definitely.cert" with
  | Ok _ -> Alcotest.fail "loaded a ghost"
  | Error ds -> check Alcotest.bool "MF303" true (has_code "MF303" ds)

(* ------------------------------------------------------------------ *)
(* Parser diagnostics (MF301/302) *)

let test_chip_io_diags () =
  let text = "chip demo 4 2\nglitter 9\nport 0 0 P0\nport 3 0 P1\nchip again 4 2\nchannel 0,0 1,0 2,0 3,0\nvalve 0,0 1,0\nvalve 2,0 3,0\n" in
  (match Mf_arch.Chip_io.parse_diags ~file:"demo.chip" text with
   | Error ds -> Alcotest.failf "rejected: %s" (String.concat ", " (codes ds))
   | Ok (chip, warns) ->
     check Alcotest.string "name" "demo" (Chip.name chip);
     check Alcotest.bool "MF301" true (has_code "MF301" warns);
     check Alcotest.bool "MF302" true (has_code "MF302" warns);
     List.iter
       (fun (d : Diag.t) ->
         check Alcotest.(option string) "file" (Some "demo.chip") d.Diag.where.Diag.file;
         check Alcotest.bool "line" true (d.Diag.where.Diag.line <> None))
       warns);
  (* the legacy strict API still rejects the same text *)
  match Mf_arch.Chip_io.parse text with
  | Ok _ -> Alcotest.fail "legacy API accepted warnings"
  | Error _ -> ()

let test_assay_io_diags () =
  let text = "assay x\nop 0 mix 10 a\nsparkle 1\ndep 0 0\n" in
  match Mf_bioassay.Assay_io.parse_diags text with
  | Ok _ -> Alcotest.fail "self-dep must fail validation"
  | Error ds ->
    check Alcotest.bool "MF304" true (has_code "MF304" ds);
    check Alcotest.bool "keeps MF301 warning" true (has_code "MF301" ds)

let test_assay_io_warn_ok () =
  match Mf_bioassay.Assay_io.parse_diags "assay x\nop 0 mix 10 a\nsparkle 1\n" with
  | Ok (_, warns) -> check Alcotest.(list string) "warns" [ "MF301" ] (codes warns)
  | Error ds -> Alcotest.failf "rejected: %s" (String.concat ", " (codes ds))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mf_verify"
    [
      ( "diag",
        [
          Alcotest.test_case "exit-code policy" `Quick test_exit_code_policy;
          Alcotest.test_case "rendering" `Quick test_rendering;
        ] );
      ( "lint",
        [
          Alcotest.test_case "benchmarks clean" `Quick test_benchmarks_lint_clean;
          Alcotest.test_case "dangling stub" `Quick test_dangling_stub;
          Alcotest.test_case "valved pocket clean" `Quick test_valved_pocket_clean;
          Alcotest.test_case "floating island" `Quick test_floating_island;
          Alcotest.test_case "fpva baseline clean" `Quick test_fpva_baseline_clean;
          Alcotest.test_case "fpva dangling stub" `Quick test_fpva_dangling_stub;
          Alcotest.test_case "fpva floating island" `Quick test_fpva_floating_island;
          Alcotest.test_case "flattened sieve degenerate" `Quick test_flattened_sieve_degenerate;
        ] );
      ( "cert",
        [
          Alcotest.test_case "generated suites verify" `Quick test_generated_suites_verify;
          Alcotest.test_case "drop path edge" `Quick test_mutation_drop_path_edge;
          Alcotest.test_case "open cut valve" `Quick test_mutation_open_cut_valve;
          Alcotest.test_case "inflated claim" `Quick test_mutation_inflated_claim;
          Alcotest.test_case "range errors" `Quick test_range_errors;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "alias conflict" `Quick test_mutation_alias_conflict;
          Alcotest.test_case "schedule conflict" `Quick test_schedule_conflict;
        ] );
      ( "cert-io",
        [
          Alcotest.test_case "round-trip" `Quick test_cert_round_trip;
          Alcotest.test_case "parse errors" `Quick test_cert_parse_errors;
          Alcotest.test_case "file round-trip" `Quick test_cert_file_round_trip;
          Alcotest.test_case "missing file" `Quick test_load_missing;
        ] );
      ( "parser-diags",
        [
          Alcotest.test_case "chip io" `Quick test_chip_io_diags;
          Alcotest.test_case "assay io" `Quick test_assay_io_diags;
          Alcotest.test_case "assay warn ok" `Quick test_assay_io_warn_ok;
        ] );
    ]
