module Pso = Mf_pso.Pso
module Rng = Mf_util.Rng

let check = Alcotest.check

let sphere x =
  Array.fold_left (fun acc v -> acc +. ((v -. 0.5) ** 2.)) 0. x

let test_minimises_sphere () =
  let rng = Rng.create ~seed:1 in
  let outcome = Pso.run ~rng ~dim:4 ~fitness:sphere () in
  check Alcotest.bool "near optimum" true (outcome.Pso.best_fitness < 1e-3);
  Array.iter
    (fun v -> check Alcotest.bool "coordinates near 0.5" true (abs_float (v -. 0.5) < 0.1))
    outcome.Pso.best_position

let test_trace_monotone () =
  let rng = Rng.create ~seed:2 in
  let outcome = Pso.run ~rng ~dim:3 ~fitness:sphere () in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && non_increasing rest
    | [ _ ] | [] -> true
  in
  check Alcotest.int "trace length" Pso.default_params.Pso.iterations
    (List.length outcome.Pso.trace);
  check Alcotest.bool "global best never worsens" true (non_increasing outcome.Pso.trace)

let test_deterministic () =
  let run () =
    let rng = Rng.create ~seed:7 in
    (Pso.run ~rng ~dim:5 ~fitness:sphere ()).Pso.best_fitness
  in
  check (Alcotest.float 0.) "same seed, same result" (run ()) (run ())

let test_invalid_positions () =
  (* a fitness that rejects half the space still converges on the rest *)
  let fitness x = if x.(0) < 0.5 then infinity else (x.(0) -. 0.75) ** 2. in
  let rng = Rng.create ~seed:3 in
  let outcome = Pso.run ~rng ~dim:1 ~fitness () in
  check Alcotest.bool "found valid region" true (outcome.Pso.best_fitness < 1e-3)

let test_all_invalid () =
  let rng = Rng.create ~seed:4 in
  let outcome =
    Pso.run
      ~params:{ Pso.default_params with Pso.iterations = 5 }
      ~rng ~dim:2
      ~fitness:(fun _ -> infinity)
      ()
  in
  check Alcotest.bool "infinity reported" true (outcome.Pso.best_fitness = infinity)

let test_positions_in_box () =
  let seen_out = ref false in
  let fitness x =
    Array.iter (fun v -> if v < 0. || v > 1. then seen_out := true) x;
    sphere x
  in
  let rng = Rng.create ~seed:5 in
  ignore (Pso.run ~rng ~dim:3 ~fitness ());
  check Alcotest.bool "never leaves the box" false !seen_out

let test_evaluation_count () =
  let calls = ref 0 in
  let fitness x =
    incr calls;
    sphere x
  in
  let params = { Pso.default_params with Pso.particles = 3; iterations = 10 } in
  let rng = Rng.create ~seed:6 in
  let outcome = Pso.run ~params ~rng ~dim:2 ~fitness () in
  (* init evals + per-iteration evals *)
  check Alcotest.int "evaluations" (3 + (3 * 10)) outcome.Pso.evaluations;
  check Alcotest.int "matches calls" !calls outcome.Pso.evaluations

let test_rosenbrock_progress () =
  (* harder landscape: PSO should at least improve on the initial sample *)
  let rosenbrock x =
    let a = (x.(0) *. 4.) -. 2. and b = (x.(1) *. 4.) -. 2. in
    ((1. -. a) ** 2.) +. (100. *. ((b -. (a *. a)) ** 2.))
  in
  let rng = Rng.create ~seed:8 in
  let outcome = Pso.run ~rng ~dim:2 ~fitness:rosenbrock () in
  let first = List.nth outcome.Pso.trace 0 in
  let last = List.nth outcome.Pso.trace (List.length outcome.Pso.trace - 1) in
  check Alcotest.bool "improved" true (last <= first);
  check Alcotest.bool "decent" true (last < 1.)

let test_dim_guard () =
  let rng = Rng.create ~seed:9 in
  Alcotest.check_raises "dim 0" (Invalid_argument "Pso.run: dim must be positive") (fun () ->
      ignore (Pso.run ~rng ~dim:0 ~fitness:sphere ()))

let () =
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_pso"
    [
      ( "pso",
        [
          Alcotest.test_case "minimises sphere" `Quick test_minimises_sphere;
          Alcotest.test_case "trace monotone" `Quick test_trace_monotone;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "invalid positions" `Quick test_invalid_positions;
          Alcotest.test_case "all invalid" `Quick test_all_invalid;
          Alcotest.test_case "stays in box" `Quick test_positions_in_box;
          Alcotest.test_case "evaluation count" `Quick test_evaluation_count;
          Alcotest.test_case "rosenbrock progress" `Quick test_rosenbrock_progress;
          Alcotest.test_case "dim guard" `Quick test_dim_guard;
        ] );
    ]
