module Op = Mf_bioassay.Op
module Seqgraph = Mf_bioassay.Seqgraph
module Assays = Mf_bioassay.Assays

let check = Alcotest.check

let count_kind g kind =
  Array.fold_left (fun n (o : Op.t) -> if o.kind = kind then n + 1 else n) 0 (Seqgraph.ops g)

let test_ivd_shape () =
  let g = Assays.ivd () in
  check Alcotest.int "12 ops" 12 (Seqgraph.n_ops g);
  check Alcotest.int "6 mixes" 6 (count_kind g Op.Mix);
  check Alcotest.int "6 detects" 6 (count_kind g Op.Detect);
  check Alcotest.int "6 roots" 6 (List.length (Seqgraph.roots g));
  check Alcotest.int "shallow" 2 (Seqgraph.depth g)

let test_pid_shape () =
  let g = Assays.pid () in
  check Alcotest.int "38 ops" 38 (Seqgraph.n_ops g);
  check Alcotest.int "19 mixes" 19 (count_kind g Op.Mix);
  check Alcotest.int "19 detects" 19 (count_kind g Op.Detect);
  check Alcotest.int "two chain roots" 2 (List.length (Seqgraph.roots g));
  (* chain of 8 + interp0 + interp1 + detect = 11-deep critical path *)
  check Alcotest.int "deep" 11 (Seqgraph.depth g)

let test_cpa_shape () =
  let g = Assays.cpa () in
  check Alcotest.int "55 ops" 55 (Seqgraph.n_ops g);
  check Alcotest.int "30 mixes" 30 (count_kind g Op.Mix);
  check Alcotest.int "25 detects" 25 (count_kind g Op.Detect);
  check Alcotest.int "5 sample roots" 5 (List.length (Seqgraph.roots g))

let test_fanout_bounded () =
  (* the chips' storage is finite; assays must keep fan-out modest *)
  List.iter
    (fun name ->
      let g = Option.get (Assays.by_name name) in
      for i = 0 to Seqgraph.n_ops g - 1 do
        check Alcotest.bool
          (Printf.sprintf "%s op %d fan-out <= 3" name i)
          true
          (List.length (Seqgraph.succs g i) <= 3)
      done)
    Assays.names

let test_by_name () =
  check Alcotest.bool "ivd" true (Assays.by_name "ivd" <> None);
  check Alcotest.bool "unknown" true (Assays.by_name "nope" = None);
  check Alcotest.(list string) "names" [ "ivd"; "pid"; "cpa" ] Assays.names

let test_topological_valid () =
  List.iter
    (fun name ->
      let g = Option.get (Assays.by_name name) in
      let order = Seqgraph.topological g in
      check Alcotest.int "complete order" (Seqgraph.n_ops g) (List.length order);
      let position = Hashtbl.create 64 in
      List.iteri (fun idx j -> Hashtbl.add position j idx) order;
      for j = 0 to Seqgraph.n_ops g - 1 do
        List.iter
          (fun p ->
            check Alcotest.bool "pred before succ" true
              (Hashtbl.find position p < Hashtbl.find position j))
          (Seqgraph.preds g j)
      done)
    Assays.names

let test_roots_sinks_consistent () =
  List.iter
    (fun name ->
      let g = Option.get (Assays.by_name name) in
      List.iter
        (fun r -> check Alcotest.(list int) "root has no preds" [] (Seqgraph.preds g r))
        (Seqgraph.roots g);
      List.iter
        (fun s -> check Alcotest.(list int) "sink has no succs" [] (Seqgraph.succs g s))
        (Seqgraph.sinks g))
    Assays.names

let test_total_work_positive () =
  List.iter
    (fun name ->
      let g = Option.get (Assays.by_name name) in
      check Alcotest.bool "positive work" true (Seqgraph.total_work g > 0))
    Assays.names

let test_create_rejects_cycle () =
  let ops =
    [
      { Op.op_id = 0; kind = Op.Mix; duration = 1; op_name = "a" };
      { Op.op_id = 1; kind = Op.Mix; duration = 1; op_name = "b" };
    ]
  in
  match Seqgraph.create ops ~edges:[ (0, 1); (1, 0) ] with
  | Ok _ -> Alcotest.fail "cycle accepted"
  | Error msg -> check Alcotest.string "message" "sequencing graph has a cycle" msg

let test_create_rejects_bad_ids () =
  let ops = [ { Op.op_id = 3; kind = Op.Mix; duration = 1; op_name = "a" } ] in
  match Seqgraph.create ops ~edges:[] with
  | Ok _ -> Alcotest.fail "bad ids accepted"
  | Error _ -> ()

let test_create_rejects_bad_edge () =
  let ops = [ { Op.op_id = 0; kind = Op.Mix; duration = 1; op_name = "a" } ] in
  match Seqgraph.create ops ~edges:[ (0, 5) ] with
  | Ok _ -> Alcotest.fail "bad edge accepted"
  | Error _ -> ()

let test_self_edge_rejected () =
  let ops = [ { Op.op_id = 0; kind = Op.Mix; duration = 1; op_name = "a" } ] in
  match Seqgraph.create ops ~edges:[ (0, 0) ] with
  | Ok _ -> Alcotest.fail "self edge accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Assay_io *)

module Assay_io = Mf_bioassay.Assay_io
module Synth_assay = Mf_bioassay.Synth_assay
module Rng = Mf_util.Rng

let graphs_equal a b =
  Seqgraph.n_ops a = Seqgraph.n_ops b
  && Array.for_all2
       (fun (x : Op.t) (y : Op.t) -> x = y)
       (Seqgraph.ops a) (Seqgraph.ops b)
  && List.for_all
       (fun j -> List.sort compare (Seqgraph.preds a j) = List.sort compare (Seqgraph.preds b j))
       (List.init (Seqgraph.n_ops a) Fun.id)

let test_io_roundtrip_bundled () =
  List.iter
    (fun name ->
      let g = Option.get (Assays.by_name name) in
      match Assay_io.parse (Assay_io.to_string g) with
      | Ok g' -> check Alcotest.bool (name ^ " round-trips") true (graphs_equal g g')
      | Error m -> Alcotest.fail m)
    Assays.names

let test_io_parse_errors () =
  List.iter
    (fun (text, label) ->
      match Assay_io.parse text with
      | Ok _ -> Alcotest.fail ("accepted: " ^ label)
      | Error _ -> ())
    [
      ("", "empty");
      ("op 0 mix 10 a\n", "header first");
      ("assay x\nop 0 blend 10 a\n", "bad kind");
      ("assay x\nop 0 mix 0 a\n", "zero duration");
      ("assay x\nop 1 mix 10 a\n", "sparse ids");
      ("assay x\nop 0 mix 10 a\ndep 0 5\n", "bad dep");
      ("assay x\nop 0 mix 10 a\nop 1 mix 10 b\ndep 0 1\ndep 1 0\n", "cycle");
      ("assay x\nassay y\n", "duplicate header");
    ]

(* ------------------------------------------------------------------ *)
(* Synth_assay *)

let test_synth_spec_respected () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 10 do
    let g = Synth_assay.generate rng in
    check Alcotest.int "op count" 20 (Seqgraph.n_ops g);
    let detects = count_kind g Op.Detect in
    check Alcotest.bool "some detects" true (detects >= 1 && detects < 20)
  done

let synth_valid_prop =
  QCheck.Test.make ~name:"generated assays schedule on ra30" ~count:10 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 50) in
      let g = Synth_assay.generate rng in
      (* structural sanity: every mix product consumed *)
      let ok_structure =
        List.for_all
          (fun j -> (Seqgraph.op g j).Op.kind <> Op.Mix || Seqgraph.succs g j <> [])
          (List.init (Seqgraph.n_ops g) Fun.id)
      in
      let chip = Option.get (Mf_chips.Benchmarks.by_name "ra30_chip") in
      ok_structure && Mf_sched.Scheduler.makespan chip g <> None)

let test_synth_rejects_bad_specs () =
  let rng = Rng.create ~seed:5 in
  List.iter
    (fun spec ->
      check Alcotest.bool "rejected" true
        (try
           ignore (Synth_assay.generate ~spec rng);
           false
         with Invalid_argument _ -> true))
    [
      { Synth_assay.default_spec with Synth_assay.n_ops = 1 };
      { Synth_assay.default_spec with Synth_assay.detect_share = 0. };
      { Synth_assay.default_spec with Synth_assay.max_fanout = 0 };
    ]

let test_synth_roundtrips () =
  let rng = Rng.create ~seed:6 in
  let g = Synth_assay.generate rng in
  match Assay_io.parse (Assay_io.to_string g) with
  | Ok g' -> check Alcotest.bool "round-trips" true (graphs_equal g g')
  | Error m -> Alcotest.fail m

let () =
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_bioassay"
    [
      ( "assays",
        [
          Alcotest.test_case "ivd shape" `Quick test_ivd_shape;
          Alcotest.test_case "pid shape" `Quick test_pid_shape;
          Alcotest.test_case "cpa shape" `Quick test_cpa_shape;
          Alcotest.test_case "fan-out bounded" `Quick test_fanout_bounded;
          Alcotest.test_case "by_name" `Quick test_by_name;
        ] );
      ( "seqgraph",
        [
          Alcotest.test_case "topological valid" `Quick test_topological_valid;
          Alcotest.test_case "roots/sinks" `Quick test_roots_sinks_consistent;
          Alcotest.test_case "total work" `Quick test_total_work_positive;
          Alcotest.test_case "rejects cycle" `Quick test_create_rejects_cycle;
          Alcotest.test_case "rejects bad ids" `Quick test_create_rejects_bad_ids;
          Alcotest.test_case "rejects bad edge" `Quick test_create_rejects_bad_edge;
          Alcotest.test_case "rejects self edge" `Quick test_self_edge_rejected;
        ] );
      ( "assay_io",
        [
          Alcotest.test_case "round-trip bundled" `Quick test_io_roundtrip_bundled;
          Alcotest.test_case "parse errors" `Quick test_io_parse_errors;
        ] );
      ( "synth_assay",
        [
          Alcotest.test_case "spec respected" `Quick test_synth_spec_respected;
          Alcotest.test_case "rejects bad specs" `Quick test_synth_rejects_bad_specs;
          Alcotest.test_case "round-trips" `Quick test_synth_roundtrips;
          QCheck_alcotest.to_alcotest synth_valid_prop;
        ] );
    ]
