(* Differential tests for the scheduler fast path: the incrementally
   maintained bitset/CSR implementation behind [Scheduler.run]/[makespan]
   must agree bit-for-bit with the first-principles reference
   ([Scheduler.run_reference], the seed implementation), on the benchmark
   matrix and on random synthetic chips/assays/sharing schemes; and
   [makespan_until] must honour its cutoff contract exactly. *)

module Chip = Mf_arch.Chip
module Seqgraph = Mf_bioassay.Seqgraph
module Assays = Mf_bioassay.Assays
module Synth_assay = Mf_bioassay.Synth_assay
module Scheduler = Mf_sched.Scheduler
module Schedule = Mf_sched.Schedule
module Prep = Mf_sched.Prep
module Benchmarks = Mf_chips.Benchmarks
module Synth = Mf_chips.Synth
module Sharing = Mfdft.Sharing
module Codesign = Mfdft.Codesign
module Rng = Mf_util.Rng

let check = Alcotest.check

let schedule : Schedule.t Alcotest.testable = Alcotest.testable Schedule.pp ( = )

let failure : Schedule.failure Alcotest.testable =
  Alcotest.testable Schedule.pp_failure ( = )

let result = Alcotest.result schedule failure

let chips = [ "ivd_chip"; "ra30_chip"; "mrna_chip" ]
let assays = [ "ivd"; "pid"; "cpa" ]

let option_variants =
  [
    ("default", Scheduler.default_options);
    ("wash", { Scheduler.default_options with wash = true });
    ("no-storage", { Scheduler.default_options with allow_storage = false });
    ("no-sharing", { Scheduler.default_options with respect_sharing = false });
  ]

(* fast = reference, full schedule (events included), across the benchmark
   matrix and every option variant *)
let test_benchmark_differential () =
  List.iter
    (fun cn ->
      let chip = Option.get (Benchmarks.by_name cn) in
      List.iter
        (fun an ->
          let app = Option.get (Assays.by_name an) in
          List.iter
            (fun (vn, options) ->
              let fast = Scheduler.run ~options chip app in
              let slow = Scheduler.run_reference ~options chip app in
              check result (Printf.sprintf "%s/%s/%s" cn an vn) slow fast)
            option_variants)
        assays)
    chips

(* explicit prep, prep reuse across assays, and the makespan entries all
   agree with [run] *)
let test_prep_and_entries () =
  let prep_tbl = List.map (fun cn -> (cn, Prep.of_chip (Option.get (Benchmarks.by_name cn)))) chips in
  List.iter
    (fun cn ->
      let chip = Option.get (Benchmarks.by_name cn) in
      let prep = List.assoc cn prep_tbl in
      List.iter
        (fun an ->
          let app = Option.get (Assays.by_name an) in
          let name = Printf.sprintf "%s/%s" cn an in
          let plain = Scheduler.run chip app in
          let with_prep = Scheduler.run ~prep chip app in
          check result (name ^ " prep irrelevant") plain with_prep;
          let m = match plain with Ok s -> Some s.Schedule.makespan | Error _ -> None in
          check (Alcotest.option Alcotest.int) (name ^ " makespan entry") m
            (Scheduler.makespan ~prep chip app);
          let mu = Scheduler.makespan_until ~prep ~cutoff:infinity chip app in
          (match (m, mu) with
           | Some a, `Makespan b -> check Alcotest.int (name ^ " until=inf") a b
           | None, (`Failed _ as f) ->
             (match plain with
              | Error e -> check failure (name ^ " until=inf failure") e (match f with `Failed x -> x)
              | Ok _ -> assert false)
           | _ -> Alcotest.failf "%s: makespan_until/makespan disagree" name))
        assays)
    chips

(* cutoff contract: cutoff = m completes with m, cutoff = m - 1 cuts,
   cutoff = 0 cuts (for m > 0) *)
let test_cutoff_semantics () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let prep = Prep.of_chip chip in
  List.iter
    (fun an ->
      let app = Option.get (Assays.by_name an) in
      let m = Option.get (Scheduler.makespan ~prep chip app) in
      (match Scheduler.makespan_until ~prep ~cutoff:(float_of_int m) chip app with
       | `Makespan m' -> check Alcotest.int (an ^ " cutoff=m completes") m m'
       | `Cutoff | `Failed _ -> Alcotest.failf "%s: cutoff=m should complete" an);
      (match Scheduler.makespan_until ~prep ~cutoff:(float_of_int (m - 1)) chip app with
       | `Cutoff -> ()
       | `Makespan _ | `Failed _ -> Alcotest.failf "%s: cutoff=m-1 should cut" an);
      match Scheduler.makespan_until ~prep ~cutoff:0. chip app with
      | `Cutoff -> ()
      | `Makespan _ | `Failed _ -> Alcotest.failf "%s: cutoff=0 should cut" an)
    assays

(* [Prep.for_sharing] on a rewired chip equals building from scratch, and
   the fast path stays faithful under sharing-induced deadlocks *)
let test_sharing_differential () =
  let rng = Rng.create ~seed:7101 in
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  let base = Prep.of_chip chip in
  for i = 0 to 19 do
    let scheme = Sharing.random rng chip in
    let shared = Sharing.apply chip scheme in
    let prep = Prep.for_sharing base shared in
    let fast = Scheduler.run ~prep shared app in
    let slow = Scheduler.run_reference shared app in
    check result (Printf.sprintf "sharing %d" i) slow fast;
    let scratch = Scheduler.run ~prep:(Prep.of_chip shared) shared app in
    check result (Printf.sprintf "sharing %d for_sharing=of_chip" i) fast scratch
  done

(* random synthetic chips x random assays x option variants *)
let qcheck_synth_differential =
  QCheck.Test.make ~name:"fast path equals reference on synthetic instances" ~count:25
    QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed:(9000 + seed) in
      let spec =
        {
          Synth.default_spec with
          mixers = 1 + Rng.int rng 3;
          detectors = 1 + Rng.int rng 2;
          ports = 2 + Rng.int rng 3;
          pockets = Rng.int rng 3;
        }
      in
      let chip = Synth.generate ~spec rng in
      let app =
        Synth_assay.generate
          ~spec:{ Synth_assay.default_spec with n_ops = 4 + Rng.int rng 12 }
          rng
      in
      let options =
        {
          Scheduler.default_options with
          wash = Rng.int rng 2 = 0;
          respect_sharing = Rng.int rng 4 > 0;
        }
      in
      let fast = Scheduler.run ~options chip app in
      let slow = Scheduler.run_reference ~options chip app in
      fast = slow)

(* ------------------------------------------------------------------ *)
(* The bounded-makespan early exit must be invisible in codesign results:
   only the work changes, never the outcome. *)

let tiny_params ~jobs ~sched_cutoff =
  {
    Codesign.quick_params with
    Codesign.pool_size = 2;
    ilp_node_limit = 300;
    outer = { Mf_pso.Pso.default_params with particles = 3; iterations = 3 };
    inner = { Mf_pso.Pso.default_params with particles = 3; iterations = 3 };
    seed = 42;
    jobs;
    sched_cutoff;
  }

let fingerprint (r : Codesign.result) =
  ( r.Codesign.exec_final,
    r.Codesign.exec_original,
    r.Codesign.exec_dft_unshared,
    r.Codesign.exec_dft_no_pso,
    r.Codesign.n_dft_valves,
    r.Codesign.n_shared,
    r.Codesign.n_vectors_dft,
    r.Codesign.sharing,
    r.Codesign.trace,
    r.Codesign.evaluations )

let codesign_run ?checkpoint params =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  match Codesign.run ~params ?checkpoint chip app with
  | Ok r -> fingerprint r
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)

let test_codesign_cutoff_identity () =
  let on = codesign_run (tiny_params ~jobs:1 ~sched_cutoff:true) in
  let off = codesign_run (tiny_params ~jobs:1 ~sched_cutoff:false) in
  check Alcotest.bool "cutoff on/off identical results" true (on = off);
  let par = codesign_run (tiny_params ~jobs:4 ~sched_cutoff:true) in
  check Alcotest.bool "cutoff on, jobs=4 identical" true (on = par)

let test_codesign_cutoff_resume () =
  let params = tiny_params ~jobs:1 ~sched_cutoff:true in
  let path = Filename.temp_file "mfdft_sched_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let uninterrupted = codesign_run params in
      (match
         Codesign.run ~params
           ~checkpoint:{ Codesign.path; every = 1; resume = false; stop_after = Some 2 }
           (Option.get (Benchmarks.by_name "ivd_chip"))
           (Assays.ivd ())
       with
      | Ok _ -> Alcotest.fail "stop_after should abort the run"
      | Error _ -> ());
      let resumed =
        codesign_run params
          ~checkpoint:{ Codesign.path; every = 0; resume = true; stop_after = None }
      in
      check Alcotest.bool "resumed ≡ uninterrupted with cutoff on" true
        (uninterrupted = resumed))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mf_sched_fast"
    [
      ( "differential",
        [
          Alcotest.test_case "benchmark matrix" `Quick test_benchmark_differential;
          Alcotest.test_case "prep + entries" `Quick test_prep_and_entries;
          Alcotest.test_case "sharing schemes" `Quick test_sharing_differential;
          qt qcheck_synth_differential;
        ] );
      ( "cutoff",
        [
          Alcotest.test_case "semantics" `Quick test_cutoff_semantics;
          Alcotest.test_case "codesign identity (on/off, jobs=4)" `Quick
            test_codesign_cutoff_identity;
          Alcotest.test_case "codesign identity under resume" `Quick test_codesign_cutoff_resume;
        ] );
    ]
