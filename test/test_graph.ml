module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Flow = Mf_graph.Flow
module Bitset = Mf_util.Bitset
module Rng = Mf_util.Rng

let check = Alcotest.check
let all _ = true

(*  0 -e0- 1 -e1- 2
    |             |
    e2            e3
    |             |
    3 -e4- 4 -e5- 5    plus e6: 1-4 *)
let sample () =
  let g = Graph.create ~n:6 in
  let e0 = Graph.add_edge g 0 1 in
  let e1 = Graph.add_edge g 1 2 in
  let e2 = Graph.add_edge g 0 3 in
  let e3 = Graph.add_edge g 2 5 in
  let e4 = Graph.add_edge g 3 4 in
  let e5 = Graph.add_edge g 4 5 in
  let e6 = Graph.add_edge g 1 4 in
  (g, [| e0; e1; e2; e3; e4; e5; e6 |])

let test_graph_basic () =
  let g, es = sample () in
  check Alcotest.int "nodes" 6 (Graph.n_nodes g);
  check Alcotest.int "edges" 7 (Graph.n_edges g);
  check Alcotest.(pair int int) "endpoints" (0, 1) (Graph.endpoints g es.(0));
  check Alcotest.int "other endpoint" 1 (Graph.other_endpoint g ~edge:es.(0) 0);
  check Alcotest.int "degree of 1" 3 (Graph.degree g 1);
  check Alcotest.(option int) "find edge" (Some es.(6)) (Graph.find_edge g 1 4);
  check Alcotest.(option int) "find edge sym" (Some es.(6)) (Graph.find_edge g 4 1);
  check Alcotest.(option int) "no edge" None (Graph.find_edge g 0 5)

let test_graph_rejects () =
  let g = Graph.create ~n:3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop") (fun () ->
      ignore (Graph.add_edge g 1 1));
  Alcotest.check_raises "out of range" (Invalid_argument "Graph.add_edge: node out of range")
    (fun () -> ignore (Graph.add_edge g 0 3))

let test_reachable () =
  let g, es = sample () in
  let r = Traverse.reachable g ~allowed:all ~src:0 in
  check Alcotest.int "all reachable" 6 (Bitset.cardinal r);
  (* cut the graph: disable e2, e6, e1 -> {0,1} vs rest *)
  let blocked e = e <> es.(1) && e <> es.(2) && e <> es.(6) in
  let r = Traverse.reachable g ~allowed:blocked ~src:0 in
  check Alcotest.(list int) "component of 0" [ 0; 1 ] (Bitset.elements r)

let test_connected () =
  let g, es = sample () in
  check Alcotest.bool "connected" true (Traverse.connected g ~allowed:all 0 5);
  let only_top e = e = es.(0) || e = es.(1) in
  check Alcotest.bool "partial" true (Traverse.connected g ~allowed:only_top 0 2);
  check Alcotest.bool "not connected" false (Traverse.connected g ~allowed:only_top 0 4)

let test_bfs_path () =
  let g, es = sample () in
  (match Traverse.bfs_path g ~allowed:all ~src:0 ~dst:5 with
   | None -> Alcotest.fail "expected a path"
   | Some path ->
     check Alcotest.int "shortest length" 3 (List.length path);
     (* path must be a walk from 0 to 5 *)
     let nodes = Traverse.path_nodes g ~src:0 path in
     check Alcotest.int "ends at 5" 5 (List.nth nodes (List.length nodes - 1)));
  check Alcotest.bool "same node" true (Traverse.bfs_path g ~allowed:all ~src:2 ~dst:2 = Some []);
  let none e = e = es.(0) in
  check Alcotest.bool "unreachable" true (Traverse.bfs_path g ~allowed:none ~src:0 ~dst:5 = None)

let test_bfs_dist () =
  let g, _ = sample () in
  let dist = Traverse.bfs_dist g ~allowed:all ~src:0 in
  check Alcotest.int "d(0)" 0 dist.(0);
  check Alcotest.int "d(1)" 1 dist.(1);
  check Alcotest.int "d(4)" 2 dist.(4);
  check Alcotest.int "d(5)" 3 dist.(5)

let test_dijkstra () =
  let g, es = sample () in
  (* make the direct top route expensive *)
  let weight e = if e = es.(1) then 10. else 1. in
  match Traverse.dijkstra g ~allowed:all ~weight ~src:0 ~dst:2 with
  | None -> Alcotest.fail "expected a path"
  | Some (cost, path) ->
    (* 0-1 (1) + 1-4 (1) + 4-5 (1) + 5-2 (1) = 4 beats 0-1-2 = 11 *)
    check (Alcotest.float 1e-9) "cheap detour" 4. cost;
    check Alcotest.int "path length" 4 (List.length path)

let test_components () =
  let g, es = sample () in
  let comps = Traverse.components g ~allowed:all in
  check Alcotest.int "one component" 1 (List.length comps);
  let without e = e <> es.(2) && e <> es.(6) && e <> es.(3) in
  let comps = Traverse.components g ~allowed:without in
  check Alcotest.int "two components" 2 (List.length comps)

let test_path_nodes () =
  let g, es = sample () in
  let nodes = Traverse.path_nodes g ~src:0 [ es.(0); es.(6); es.(5) ] in
  check Alcotest.(list int) "node sequence" [ 0; 1; 4; 5 ] nodes

(* ------------------------------------------------------------------ *)
(* Flow *)

let test_max_flow_basic () =
  let g, _ = sample () in
  (* two edge-disjoint 0-5 paths exist: 0-1-2-5 and 0-3-4-5 *)
  let flow = Flow.max_flow g ~allowed:all ~capacity:(fun _ -> 1) ~src:0 ~dst:5 in
  check Alcotest.int "unit flow value" 2 flow

let test_min_cut_separates () =
  let g, _ = sample () in
  let value, cut = Flow.min_cut g ~allowed:all ~capacity:(fun _ -> 1) ~src:0 ~dst:5 in
  check Alcotest.int "cut value" 2 value;
  check Alcotest.int "cut size" 2 (List.length cut);
  let open_edges e = not (List.mem e cut) in
  check Alcotest.bool "cut separates" false (Traverse.connected g ~allowed:open_edges 0 5)

let test_min_cut_capacities () =
  let g = Graph.create ~n:4 in
  let e0 = Graph.add_edge g 0 1 in
  let e1 = Graph.add_edge g 1 2 in
  let e2 = Graph.add_edge g 2 3 in
  let cap e = if e = e1 then 1 else 5 in
  let value, cut = Flow.min_cut g ~allowed:all ~capacity:cap ~src:0 ~dst:3 in
  check Alcotest.int "bottleneck" 1 value;
  check Alcotest.(list int) "cut is the bottleneck" [ e1 ] cut;
  ignore (e0, e2)

let test_min_cut_disconnected () =
  let g = Graph.create ~n:4 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 2 3);
  let value, cut = Flow.min_cut g ~allowed:all ~capacity:(fun _ -> 1) ~src:0 ~dst:3 in
  check Alcotest.int "no flow" 0 value;
  check Alcotest.(list int) "empty cut" [] cut

(* random graphs: min cut found by Flow must really separate, and its value
   must equal max flow *)
let flow_cut_prop =
  QCheck.Test.make ~name:"min cut separates and matches max flow" ~count:100
    QCheck.(pair int int)
    (fun (seed, _) ->
      let rng = Rng.create ~seed:(abs seed) in
      let n = 6 + Rng.int rng 6 in
      let g = Graph.create ~n in
      for _ = 1 to 2 * n do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then ignore (Graph.add_edge g u v)
      done;
      let src = 0 and dst = n - 1 in
      let value, cut = Flow.min_cut g ~allowed:all ~capacity:(fun _ -> 1) ~src ~dst in
      let flow = Flow.max_flow g ~allowed:all ~capacity:(fun _ -> 1) ~src ~dst in
      let open_edges e = not (List.mem e cut) in
      value = flow
      && value = List.length cut
      && not (Traverse.connected g ~allowed:open_edges src dst))

let bfs_shortest_prop =
  QCheck.Test.make ~name:"bfs_path length equals bfs_dist" ~count:100 QCheck.int (fun seed ->
      let rng = Rng.create ~seed:(abs seed) in
      let n = 5 + Rng.int rng 8 in
      let g = Graph.create ~n in
      for _ = 1 to 2 * n do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then ignore (Graph.add_edge g u v)
      done;
      let dist = Traverse.bfs_dist g ~allowed:all ~src:0 in
      List.for_all
        (fun dst ->
          match Traverse.bfs_path g ~allowed:all ~src:0 ~dst with
          | None -> dist.(dst) = max_int
          | Some path -> List.length path = dist.(dst))
        (List.init n Fun.id))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "rejects" `Quick test_graph_rejects;
        ] );
      ( "traverse",
        [
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "connected" `Quick test_connected;
          Alcotest.test_case "bfs path" `Quick test_bfs_path;
          Alcotest.test_case "bfs dist" `Quick test_bfs_dist;
          Alcotest.test_case "dijkstra" `Quick test_dijkstra;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "path nodes" `Quick test_path_nodes;
          qt bfs_shortest_prop;
        ] );
      ( "flow",
        [
          Alcotest.test_case "max flow" `Quick test_max_flow_basic;
          Alcotest.test_case "min cut separates" `Quick test_min_cut_separates;
          Alcotest.test_case "capacities" `Quick test_min_cut_capacities;
          Alcotest.test_case "disconnected" `Quick test_min_cut_disconnected;
          qt flow_cut_prop;
        ] );
    ]
