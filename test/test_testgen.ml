module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Bitset = Mf_util.Bitset
module Pathgen = Mf_testgen.Pathgen
module Cutgen = Mf_testgen.Cutgen
module Multiport = Mf_testgen.Multiport
module Vectors = Mf_testgen.Vectors
module Repair = Mf_testgen.Repair
module Vector = Mf_faults.Vector
module Pressure = Mf_faults.Pressure
module Fault = Mf_faults.Fault
module Coverage = Mf_faults.Coverage

let check = Alcotest.check

(* The motivating chip of Fig. 4(a): three ports around a cross of channels,
   a valve on every channel edge. *)
let fig4_chip () =
  let b = Chip.builder ~name:"fig4" ~width:5 ~height:5 in
  Chip.add_port b ~x:0 ~y:2 ~name:"P0";
  Chip.add_port b ~x:4 ~y:2 ~name:"P1";
  Chip.add_port b ~x:2 ~y:0 ~name:"P2";
  Chip.add_device b ~kind:Chip.Mixer ~x:2 ~y:3 ~name:"M";
  Chip.add_channel b [ (0, 2); (1, 2); (2, 2); (3, 2); (4, 2) ];
  Chip.add_channel b [ (2, 0); (2, 1); (2, 2) ];
  Chip.add_channel b [ (2, 2); (2, 3) ];
  List.iter
    (fun (a, c) -> Chip.add_valve b a c)
    [
      ((0, 2), (1, 2)); ((1, 2), (2, 2)); ((2, 2), (3, 2)); ((3, 2), (4, 2));
      ((2, 0), (2, 1)); ((2, 1), (2, 2)); ((2, 2), (2, 3));
    ];
  Chip.finish_exn b

let test_farthest_ports () =
  let chip = fig4_chip () in
  let a, b = Pathgen.farthest_ports chip in
  (* P0 and P1 are 4 hops apart, P2 is 3 from either *)
  check Alcotest.(pair int int) "farthest" (0, 1) (a, b)

let walk_is_path chip ~src path =
  (* ordered edges must form a connected walk starting at src *)
  let g = Grid.graph (Chip.grid chip) in
  try
    ignore (Traverse.path_nodes g ~src path);
    true
  with _ -> false

let test_pathgen_fig4 () =
  let chip = fig4_chip () in
  match Pathgen.generate chip with
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  | Ok config ->
    check Alcotest.bool "some edges added" true (config.Pathgen.added_edges <> []);
    let aug = Pathgen.apply chip config in
    let orig = Chip.channel_edges chip in
    let covered = Bitset.create (Bitset.length orig) in
    let s_node = (Chip.ports chip).(config.Pathgen.src_port).node in
    List.iter
      (fun path ->
        check Alcotest.bool "walk from source" true (walk_is_path aug ~src:s_node path);
        List.iter (fun e -> if Bitset.mem orig e then Bitset.add covered e) path)
      config.Pathgen.paths;
    Bitset.iter
      (fun e -> check Alcotest.bool "original edge covered" true (Bitset.mem covered e))
      orig

let test_pathgen_paths_end_at_meter () =
  let chip = fig4_chip () in
  match Pathgen.generate chip with
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  | Ok config ->
    let aug = Pathgen.apply chip config in
    let g = Grid.graph (Chip.grid aug) in
    let s = (Chip.ports chip).(config.Pathgen.src_port).node in
    let t = (Chip.ports chip).(config.Pathgen.dst_port).node in
    List.iter
      (fun path ->
        let nodes = Traverse.path_nodes g ~src:s path in
        check Alcotest.int "ends at meter" t (List.nth nodes (List.length nodes - 1)))
      config.Pathgen.paths

(* Differential check of the warm-started LP core on a real pathgen model:
   disabling warm starts and the fixing-set cache must not change what is
   achieved — the same added-edge cost (objective (5)) and a full cover —
   even though the search trajectory (and hence the concrete paths or path
   count) may differ. *)
let test_pathgen_warm_vs_cold () =
  let chip = fig4_chip () in
  let node_limit = 20_000 in
  match (Pathgen.generate ~node_limit ~warm:true chip, Pathgen.generate ~node_limit ~warm:false chip) with
  | Ok w, Ok c ->
    check Alcotest.bool "warm not degraded" false w.Pathgen.degraded;
    check Alcotest.bool "cold not degraded" false c.Pathgen.degraded;
    check Alcotest.int "same added-edge cost"
      (List.length w.Pathgen.added_edges)
      (List.length c.Pathgen.added_edges);
    check Alcotest.bool "warm starts actually used" true
      (w.Pathgen.solver.Mf_ilp.Ilp.rs_warm_taken > 0);
    check Alcotest.bool "cold run is cold" true
      (c.Pathgen.solver.Mf_ilp.Ilp.rs_warm_taken = 0
      && c.Pathgen.solver.Mf_ilp.Ilp.rs_dual_pivots = 0)
  | (Error f, _ | _, Error f) -> Alcotest.fail (Mf_util.Fail.to_string f)

let test_cutgen_fig4 () =
  let chip = fig4_chip () in
  match Pathgen.generate chip with
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  | Ok config ->
    let aug = Pathgen.apply chip config in
    let result = Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port in
    check Alcotest.(list int) "all valves cut-testable" [] result.Cutgen.untestable;
    let ports = Chip.ports aug in
    let s = ports.(config.Pathgen.src_port).node and t = ports.(config.Pathgen.dst_port).node in
    List.iter
      (fun cut ->
        let vec = Vector.of_cut aug ~source:s ~meters:[ t ] cut in
        check Alcotest.bool "cut separates" true (Pressure.well_formed aug vec);
        (* every member is essential: its leak is observed *)
        List.iter
          (fun v ->
            check Alcotest.bool "member essential" true
              (Pressure.detects aug vec (Fault.Stuck_at_1 v)))
          cut)
      result.Cutgen.cuts

let test_full_suite_complete () =
  let chip = fig4_chip () in
  match Pathgen.generate chip with
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  | Ok config ->
    let aug = Pathgen.apply chip config in
    let cuts = Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port in
    let suite = Vectors.of_config config cuts in
    let report = Vectors.validate aug suite in
    check Alcotest.bool "complete single-source single-meter coverage" true
      (Coverage.complete report)

let test_fallback_cuts () =
  let chip = fig4_chip () in
  match Pathgen.generate chip with
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  | Ok config ->
    let aug = Pathgen.apply chip config in
    let fallback =
      Cutgen.fallback_cuts aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port
        config.Pathgen.paths
    in
    check Alcotest.bool "fallback produces cuts" true (fallback <> []);
    (* roughly one cut per valve on the paths: at least as many as the
       minimum-cut generator needs *)
    let minimal = Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port in
    check Alcotest.bool "fallback is the bulkier scheme" true
      (List.length fallback >= List.length minimal.Cutgen.cuts)

let test_multiport_original () =
  let chip = fig4_chip () in
  let r = Multiport.generate chip in
  (* the mixer's dead-end spur cannot be exercised port-to-port without DFT:
     exactly the paper's motivation *)
  let spur = Option.get (Grid.edge_between_xy (Chip.grid chip) (2, 2) (2, 3)) in
  check Alcotest.(list int) "only the mixer spur sa0-untestable" [ spur ]
    r.Multiport.sa0_untestable;
  let spur_valve = (Option.get (Chip.valve_on chip spur)).Chip.valve_id in
  check Alcotest.(list int) "only the spur valve sa1-untestable" [ spur_valve ]
    r.Multiport.sa1_untestable;
  let report = Coverage.measure chip r.Multiport.vectors in
  check Alcotest.(list int) "sa0 misses only the spur" [ spur ] report.Coverage.sa0_undetected;
  check Alcotest.(list int) "sa1 misses only the spur valve" [ spur_valve ]
    report.Coverage.sa1_undetected

let test_dft_fixes_untestable () =
  (* after augmentation the single-pair suite covers what multi-port could
     not: the complete DFT story in one assertion *)
  let chip = fig4_chip () in
  let pre = Multiport.generate chip in
  check Alcotest.bool "pre-DFT has untestable faults" true
    (pre.Multiport.sa0_untestable <> [] || pre.Multiport.sa1_untestable <> []);
  match Pathgen.generate chip with
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  | Ok config ->
    let aug = Pathgen.apply chip config in
    let cuts = Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port in
    let suite = Vectors.of_config config cuts in
    check Alcotest.bool "post-DFT complete" true (Coverage.complete (Vectors.validate aug suite))

let test_multiport_fewer_vectors_than_dft () =
  (* the Fig. 8 relationship on the benchmark chips *)
  List.iter
    (fun name ->
      let chip = Option.get (Mf_chips.Benchmarks.by_name name) in
      let original = Multiport.generate chip in
      let n_original =
        original.Multiport.n_path_vectors + original.Multiport.n_cut_vectors
      in
      match Pathgen.generate ~node_limit:400 chip with
      | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
      | Ok config ->
        let aug = Pathgen.apply chip config in
        let cuts =
          Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port
        in
        let suite = Vectors.of_config config cuts in
        check Alcotest.bool
          (name ^ ": dft needs at least as many vectors")
          true
          (Vectors.count suite >= n_original))
    [ "ivd_chip" ]

let test_repair_adds_vectors () =
  let chip = fig4_chip () in
  match Pathgen.generate chip with
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  | Ok config ->
    let aug = Pathgen.apply chip config in
    let cuts = Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port in
    let suite = Vectors.of_config config cuts in
    (* cripple the suite: drop all cuts; repair must bring sa1 coverage back *)
    let crippled = { suite with Vectors.cut_valves = [] } in
    let repaired = Repair.run aug crippled in
    check Alcotest.bool "repair restored coverage" true (Vectors.is_valid aug repaired)

let test_vectors_count () =
  let suite =
    { Vectors.source_port = 0; meter_port = 1; path_edges = [ [ 1 ]; [ 2 ] ]; cut_valves = [ [ 0 ] ] }
  in
  check Alcotest.int "count" 3 (Vectors.count suite)

let test_generate_rejects_same_port () =
  let chip = fig4_chip () in
  check Alcotest.bool "same port rejected" true
    (try
       ignore (Pathgen.generate ~src_port:0 ~dst_port:0 chip);
       false
     with Invalid_argument _ -> true)

let () =
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_testgen"
    [
      ( "pathgen",
        [
          Alcotest.test_case "farthest ports" `Quick test_farthest_ports;
          Alcotest.test_case "fig4 coverage" `Quick test_pathgen_fig4;
          Alcotest.test_case "paths end at meter" `Quick test_pathgen_paths_end_at_meter;
          Alcotest.test_case "warm vs cold LP core" `Slow test_pathgen_warm_vs_cold;
          Alcotest.test_case "same port rejected" `Quick test_generate_rejects_same_port;
        ] );
      ( "cutgen",
        [
          Alcotest.test_case "fig4 cuts" `Quick test_cutgen_fig4;
          Alcotest.test_case "full suite complete" `Quick test_full_suite_complete;
          Alcotest.test_case "fallback cuts" `Quick test_fallback_cuts;
        ] );
      ( "multiport",
        [
          Alcotest.test_case "original coverage" `Quick test_multiport_original;
          Alcotest.test_case "DFT fixes untestable" `Quick test_dft_fixes_untestable;
          Alcotest.test_case "fig8 relationship" `Slow test_multiport_fewer_vectors_than_dft;
        ] );
      ( "repair",
        [
          Alcotest.test_case "repair adds vectors" `Quick test_repair_adds_vectors;
          Alcotest.test_case "vectors count" `Quick test_vectors_count;
        ] );
      ( "testtime",
        [
          Alcotest.test_case "positive and additive" `Quick (fun () ->
              let chip = fig4_chip () in
              let layout = Mf_control.Control.synthesize chip in
              match Pathgen.generate chip with
              | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
              | Ok config ->
                let aug = Pathgen.apply chip config in
                let aug_layout = Mf_control.Control.synthesize aug in
                let cuts =
                  Cutgen.generate aug ~source:config.Pathgen.src_port
                    ~meter:config.Pathgen.dst_port
                in
                let suite = Vectors.of_config config cuts in
                let vectors = Vectors.vectors aug suite in
                let total = Mf_testgen.Testtime.total aug aug_layout vectors in
                let single = Mf_testgen.Testtime.per_vector aug aug_layout (List.hd vectors) in
                check Alcotest.bool "single positive" true (single > 0.);
                check Alcotest.bool "total at least n * (settle+read)" true
                  (total >= float_of_int (List.length vectors) *. 15.);
                check Alcotest.bool "total exceeds one" true (total > single);
                ignore layout);
          Alcotest.test_case "more vectors, more time" `Quick (fun () ->
              let chip = fig4_chip () in
              let layout = Mf_control.Control.synthesize chip in
              let s = (Chip.ports chip).(0).Chip.node and t = (Chip.ports chip).(1).Chip.node in
              let vec =
                Mf_faults.Vector.of_cut chip ~source:s ~meters:[ t ] [ 0 ]
              in
              let one = Mf_testgen.Testtime.total chip layout [ vec ] in
              let three = Mf_testgen.Testtime.total chip layout [ vec; vec; vec ] in
              check (Alcotest.float 1e-6) "3x vectors = 3x time" (3. *. one) three);
        ] );
    ]
