(* Contract of the fault-adaptive repair engine ([Mf_repair.Reconfig]):
   repairing a deployed suite against injected valve faults re-certifies
   through the independent verifier, keeps the undamaged vectors, is
   bit-identical across job counts and across kill/resume, and fails
   typed — never silently — on a missing checkpoint.  Plus the seed-stable
   fault sampler ([Mf_util.Chaos.sample_sites]) properties the CLI and CI
   chaos mode rely on, and the certificate round-trip with a fault context
   and audited waivers. *)

module Chip = Mf_arch.Chip
module Benchmarks = Mf_chips.Benchmarks
module Assays = Mf_bioassay.Assays
module Pathgen = Mf_testgen.Pathgen
module Cutgen = Mf_testgen.Cutgen
module Vectors = Mf_testgen.Vectors
module Fault = Mf_faults.Fault
module Coverage = Mf_faults.Coverage
module Reconfig = Mf_repair.Reconfig
module Cert = Mf_verify.Cert
module Chaos = Mf_util.Chaos
module Fail = Mf_util.Fail
module Diag = Mf_util.Diag

let check = Alcotest.check

(* One deployed baseline per chip, built once: DFT augmentation + path and
   cut vectors, exactly what [dft_tool repair] reconstructs when no
   certificate is given. *)
let baseline =
  let tbl = Hashtbl.create 4 in
  fun chip_name ->
    match Hashtbl.find_opt tbl chip_name with
    | Some v -> v
    | None ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      let config =
        match Pathgen.generate ~node_limit:800 chip with
        | Ok c -> c
        | Error f -> Alcotest.fail (Fail.to_string f)
      in
      let aug = Pathgen.apply chip config in
      let cuts =
        Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port
      in
      let suite = Vectors.of_config config cuts in
      let suite =
        if Vectors.is_valid aug suite then suite else Mf_testgen.Repair.run aug suite
      in
      Hashtbl.add tbl chip_name (aug, suite);
      (aug, suite)

let inject ~seed ~count chip =
  List.map
    (fun v -> Fault.Stuck_at_1 v)
    (Chaos.sample_sites ~seed ~count ~n_sites:(Chip.n_valves chip))

let fingerprint (r : Reconfig.result) =
  ( r.Reconfig.suite,
    r.Reconfig.faults,
    r.Reconfig.untestable,
    r.Reconfig.coverage.Coverage.detected,
    r.Reconfig.coverage.Coverage.total_faults,
    r.Reconfig.degradations,
    r.Reconfig.stats.Reconfig.damaged,
    r.Reconfig.stats.Reconfig.reused,
    r.Reconfig.stats.Reconfig.added )

(* ------------------------------------------------------------------ *)
(* repair re-certifies, and the damage arithmetic closes *)

let test_repair_recertifies () =
  let aug, suite = baseline "ivd_chip" in
  let faults = inject ~seed:1 ~count:1 aug in
  match Reconfig.repair aug suite faults with
  | Error f -> Alcotest.fail (Fail.to_string f)
  | Ok r ->
    let n_err, _ = Diag.count r.Reconfig.diags in
    check Alcotest.int "independent re-certification has zero errors" 0 n_err;
    let st = r.Reconfig.stats in
    check Alcotest.int "kept + damaged = deployed suite"
      (Vectors.count suite)
      (st.Reconfig.reused + st.Reconfig.damaged);
    check Alcotest.int "kept + added = repaired suite"
      (Vectors.count r.Reconfig.suite)
      (st.Reconfig.reused + st.Reconfig.added);
    let cov = r.Reconfig.coverage in
    check Alcotest.int "no unwaived escape" cov.Coverage.total_faults cov.Coverage.detected;
    check Alcotest.bool "repaired suite valid under the fault context" true
      (Vectors.is_valid
         ~present:(Mf_faults.Pressure.context r.Reconfig.chip r.Reconfig.faults)
         r.Reconfig.chip r.Reconfig.suite)

let test_repair_jobs_invariant () =
  let aug, suite = baseline "ra30_chip" in
  let faults = inject ~seed:7 ~count:2 aug in
  let run jobs =
    match
      Reconfig.repair ~params:{ Reconfig.default_params with Reconfig.jobs } aug suite faults
    with
    | Ok r -> fingerprint r
    | Error f -> Alcotest.fail (Fail.to_string f)
  in
  check Alcotest.bool "jobs=1 and jobs=4 bit-identical" true (run 1 = run 4)

(* ------------------------------------------------------------------ *)
(* checkpointing: kill/resume differential and the typed missing-file path *)

let test_repair_kill_resume_bit_identical () =
  let aug, suite = baseline "ivd_chip" in
  let faults = inject ~seed:3 ~count:1 aug in
  (* escalate one extra fault after round 1 so the run spans two rounds *)
  let escalation = inject ~seed:11 ~count:2 aug in
  let more_faults ~round =
    if round = 1 then List.filter (fun f -> not (List.mem f faults)) escalation else []
  in
  let path = Filename.temp_file "mfdft_repair_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let uninterrupted =
        match Reconfig.repair ~more_faults aug suite faults with
        | Ok r -> fingerprint r
        | Error f -> Alcotest.fail (Fail.to_string f)
      in
      (match
         Reconfig.repair
           ~checkpoint:{ Reconfig.path; every = 1; resume = false; stop_after = Some 1 }
           ~more_faults aug suite faults
       with
      | Ok _ -> Alcotest.fail "stop_after should abort the run"
      | Error f ->
        check Alcotest.string "stop is a repair-stage failure" "repair"
          (Fail.stage_name f.Fail.stage));
      check Alcotest.bool "checkpoint written" true (Sys.file_exists path);
      let resumed =
        match
          Reconfig.repair
            ~checkpoint:{ Reconfig.path; every = 0; resume = true; stop_after = None }
            ~more_faults aug suite faults
        with
        | Ok r -> fingerprint r
        | Error f -> Alcotest.fail (Fail.to_string f)
      in
      check Alcotest.bool "resumed repair bit-identical to uninterrupted" true
        (uninterrupted = resumed))

let test_repair_missing_checkpoint () =
  let aug, suite = baseline "ivd_chip" in
  let faults = inject ~seed:1 ~count:1 aug in
  let path = Filename.temp_file "mfdft_repair_ckpt" ".bin" in
  Sys.remove path;
  match
    Reconfig.repair
      ~checkpoint:{ Reconfig.path; every = 0; resume = true; stop_after = None }
      aug suite faults
  with
  | Ok _ -> Alcotest.fail "resume from a missing checkpoint must be refused"
  | Error f ->
    check Alcotest.string "typed repair failure" "repair" (Fail.stage_name f.Fail.stage)

let test_repair_corrupt_checkpoint () =
  let aug, suite = baseline "ivd_chip" in
  let faults = inject ~seed:1 ~count:1 aug in
  let path = Filename.temp_file "mfdft_repair_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "garbage");
      match
        Reconfig.repair
          ~checkpoint:{ Reconfig.path; every = 0; resume = true; stop_after = None }
          aug suite faults
      with
      | Ok _ -> Alcotest.fail "corrupt checkpoint must be refused"
      | Error f ->
        check Alcotest.string "typed repair failure" "repair" (Fail.stage_name f.Fail.stage))

(* ------------------------------------------------------------------ *)
(* the seed-stable fault sampler the CLI and chaos CI mode draw from *)

let test_sample_sites_properties () =
  let n_sites = 37 in
  for seed = 0 to 9 do
    let a = Chaos.sample_sites ~seed ~count:5 ~n_sites in
    let b = Chaos.sample_sites ~seed ~count:5 ~n_sites in
    check Alcotest.bool "seed-stable" true (a = b);
    check Alcotest.int "requested count" 5 (List.length a);
    check Alcotest.bool "sites in range" true (List.for_all (fun v -> v >= 0 && v < n_sites) a);
    check Alcotest.bool "sites distinct" true
      (List.length (List.sort_uniq compare a) = List.length a);
    (* subset-monotone: growing the count only adds sites, so CI jobs at
       different fault budgets agree on the shared faults *)
    let shorter = Chaos.sample_sites ~seed ~count:3 ~n_sites in
    check Alcotest.bool "subset-monotone" true
      (List.for_all (fun v -> List.mem v a) shorter)
  done;
  check Alcotest.bool "different seeds differ somewhere" true
    (List.exists
       (fun seed ->
         Chaos.sample_sites ~seed ~count:5 ~n_sites
         <> Chaos.sample_sites ~seed:(seed + 100) ~count:5 ~n_sites)
       [ 0; 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* certificate round-trip with context + waivers, and tamper detection *)

let test_cert_context_roundtrip () =
  let aug, suite = baseline "ivd_chip" in
  let faults = inject ~seed:5 ~count:2 aug in
  match Reconfig.repair aug suite faults with
  | Error f -> Alcotest.fail (Fail.to_string f)
  | Ok r ->
    let cert = r.Reconfig.cert in
    let path = Filename.temp_file "mfdft_repair_cert" ".cert" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
      (fun () ->
        Cert.save path cert;
        match Cert.load path with
        | Error ds ->
          Alcotest.fail (String.concat "; " (List.map (Format.asprintf "%a" Diag.pp) ds))
        | Ok cert' ->
          check Alcotest.bool "context survives the round-trip" true
            (cert'.Cert.context = cert.Cert.context);
          check Alcotest.bool "waivers survive the round-trip" true
            (cert'.Cert.waived = cert.Cert.waived);
          let n_err, _ = Diag.count (Cert.check r.Reconfig.chip cert') in
          check Alcotest.int "reloaded certificate re-proves clean" 0 n_err)

let test_cert_bogus_waiver_rejected () =
  let aug, suite = baseline "ivd_chip" in
  let faults = inject ~seed:5 ~count:1 aug in
  match Reconfig.repair aug suite faults with
  | Error f -> Alcotest.fail (Fail.to_string f)
  | Ok r ->
    let cert = r.Reconfig.cert in
    (* waive a fault the suite demonstrably covers: the audit must refuse
       the waiver (MF103/MF106), not quietly shrink the universe *)
    let covered =
      let report =
        Vectors.validate
          ~present:(Mf_faults.Pressure.context r.Reconfig.chip r.Reconfig.faults)
          r.Reconfig.chip r.Reconfig.suite
      in
      ignore report;
      let undet = r.Reconfig.coverage.Coverage.sa0_undetected in
      let pick = ref None in
      Mf_graph.Graph.iter_edges
        (fun e _ _ ->
          if
            !pick = None
            && Chip.is_channel r.Reconfig.chip e
            && (not (List.mem e undet))
            && not (List.exists (Fault.equal (Fault.Stuck_at_0 e)) cert.Cert.waived)
          then pick := Some e)
        (Mf_grid.Grid.graph (Chip.grid r.Reconfig.chip));
      Option.get !pick
    in
    let tampered = { cert with Cert.waived = Fault.Stuck_at_0 covered :: cert.Cert.waived } in
    let n_err, _ = Diag.count (Cert.check r.Reconfig.chip tampered) in
    check Alcotest.bool "tampered waiver list is rejected" true (n_err > 0)

(* ------------------------------------------------------------------ *)

let () =
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_repair"
    [
      ( "repair",
        [
          Alcotest.test_case "single fault re-certifies" `Quick test_repair_recertifies;
          Alcotest.test_case "jobs=1 = jobs=4" `Slow test_repair_jobs_invariant;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "kill/resume bit-identical" `Slow
            test_repair_kill_resume_bit_identical;
          Alcotest.test_case "missing file refused" `Quick test_repair_missing_checkpoint;
          Alcotest.test_case "corrupt file refused" `Quick test_repair_corrupt_checkpoint;
        ] );
      ( "sampler",
        [ Alcotest.test_case "seed-stable subset-monotone" `Quick test_sample_sites_properties ]
      );
      ( "certificate",
        [
          Alcotest.test_case "context round-trip" `Quick test_cert_context_roundtrip;
          Alcotest.test_case "bogus waiver rejected" `Quick test_cert_bogus_waiver_rejected;
        ] );
    ]
