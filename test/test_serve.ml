(* Serve-mode engine tests: fingerprint canonicalisation, the
   content-addressed cache (including the poisoning guard), single-flight
   deduplication, and the kill/restart differential — everything the daemon
   does, driven synchronously through Mf_serve.Engine. *)

module Json = Mf_serve.Json
module Fingerprint = Mf_serve.Fingerprint
module Cache = Mf_serve.Cache
module Engine = Mf_serve.Engine
module Protocol = Mf_serve.Protocol
module Codesign = Mfdft.Codesign
module Families = Mf_chips.Families
module Benchmarks = Mf_chips.Benchmarks
module Assays = Mf_bioassay.Assays

let check = Alcotest.check

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mfdft-serve-test-%d-%d" (Unix.getpid ()) !n)
    in
    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
    d

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_roundtrip () =
  let values =
    [
      Json.Null;
      Json.Bool true;
      Json.Num 42.;
      Json.Num (-3.5);
      Json.Str "plain";
      Json.Str "esc \"quotes\" \\ back\nnewline\ttab\r\001ctl";
      Json.Arr [ Json.Num 1.; Json.Str "two"; Json.Null ];
      Json.Obj
        [ ("a", Json.Num 1.); ("nested", Json.Obj [ ("b", Json.Arr [ Json.Bool false ]) ]) ];
    ]
  in
  List.iter
    (fun v ->
      let line = Json.to_line v in
      check Alcotest.bool "single line" false (String.contains line '\n');
      match Json.parse line with
      | Ok v' -> check Alcotest.bool ("round-trips: " ^ line) true (v = v')
      | Error e -> Alcotest.fail (line ^ ": " ^ e))
    values

let test_json_integers_stable () =
  check Alcotest.string "integer rendering" "{\"n\":42}"
    (Json.to_line (Json.Obj [ ("n", Json.Num 42.) ]))

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail ("accepted: " ^ s)
      | Error _ -> ())
    [ "{"; "{\"a\":}"; "[1,]"; "nope"; "{\"a\":1} trailing"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_protocol_parse () =
  (match Protocol.parse_request "{\"cmd\":\"ping\"}" with
   | Ok Protocol.Ping -> ()
   | _ -> Alcotest.fail "ping");
  (match
     Protocol.parse_request
       "{\"cmd\":\"submit\",\"chip\":{\"name\":\"ivd_chip\"},\"assay\":{\"name\":\"ivd\"},\"options\":{\"seed\":7},\"priority\":2}"
   with
   | Ok (Protocol.Submit s) ->
     check Alcotest.int "seed" 7 s.Protocol.options.Fingerprint.seed;
     check Alcotest.bool "full defaults off" false s.Protocol.options.Fingerprint.full;
     check Alcotest.int "priority" 2 s.Protocol.priority;
     check Alcotest.bool "wait defaults on" true s.Protocol.wait
   | Ok _ -> Alcotest.fail "wrong request"
   | Error e -> Alcotest.fail e);
  match Protocol.parse_request "{\"cmd\":\"warp\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown command accepted"

let test_protocol_spec_roundtrip () =
  let spec =
    {
      Protocol.chip = Protocol.Name "ivd_chip";
      assay = Protocol.Text "assay a\nop 0 mix 3 m\n";
      options = { Fingerprint.full = true; seed = 9 };
      priority = 3;
      deadline = None;
      wait = false;
    }
  in
  match Protocol.submit_of_json (Protocol.submit_to_json spec) with
  | Ok spec' -> check Alcotest.bool "spec round-trips" true (spec = spec')
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Fingerprint *)

let default_fp_options = Fingerprint.default_options

let test_fingerprint_stable () =
  let chip = Benchmarks.ivd_chip () and assay = Option.get (Assays.by_name "ivd") in
  let d () = Fingerprint.digest ~chip ~assay ~options:default_fp_options in
  check Alcotest.string "same inputs, same digest" (d ()) (d ())

let test_fingerprint_sensitive () =
  let chip = Benchmarks.ivd_chip () and assay = Option.get (Assays.by_name "ivd") in
  let base = Fingerprint.digest ~chip ~assay ~options:default_fp_options in
  let seed' =
    Fingerprint.digest ~chip ~assay ~options:{ default_fp_options with Fingerprint.seed = 43 }
  in
  let full' =
    Fingerprint.digest ~chip ~assay ~options:{ default_fp_options with Fingerprint.full = true }
  in
  let chip' =
    Fingerprint.digest ~chip:(Benchmarks.ra30_chip ()) ~assay ~options:default_fp_options
  in
  let assay' =
    Fingerprint.digest ~chip
      ~assay:(Option.get (Assays.by_name "pid"))
      ~options:default_fp_options
  in
  check Alcotest.bool "seed changes digest" true (base <> seed');
  check Alcotest.bool "full changes digest" true (base <> full');
  check Alcotest.bool "chip changes digest" true (base <> chip');
  check Alcotest.bool "assay changes digest" true (base <> assay')

(* Canonical round-trip: rendering a chip/assay to text and parsing it back
   fingerprints identically, whatever family and size produced it; a
   semantic mutation (another generator seed) does not. *)
let fp_roundtrip_prop =
  QCheck.Test.make ~name:"fingerprint invariant under canonical round-trip" ~count:15
    QCheck.(pair (int_bound 10_000) (int_range 12 24))
    (fun (seed, size) ->
      let rng = Mf_util.Rng.create ~seed in
      let chip =
        Families.Ring.generate ~spec:(Families.Ring.spec_of_size size)
          ~name:(Printf.sprintf "ring-%d-%d" seed size)
          rng
      in
      let assay =
        Mf_bioassay.Synth_assay.generate
          ~spec:(Mf_bioassay.Synth_assay.spec_of_size (max 6 (size / 2)))
          (Mf_util.Rng.create ~seed:(seed + 1))
      in
      let d = Fingerprint.digest ~chip ~assay ~options:default_fp_options in
      let chip' =
        match Mf_arch.Chip_io.parse (Mf_arch.Chip_io.to_string chip) with
        | Ok c -> c
        | Error e -> QCheck.Test.fail_reportf "chip round-trip: %s" e
      in
      let assay' =
        match Mf_bioassay.Assay_io.parse (Mf_bioassay.Assay_io.to_string assay) with
        | Ok a -> a
        | Error e -> QCheck.Test.fail_reportf "assay round-trip: %s" e
      in
      let d' = Fingerprint.digest ~chip:chip' ~assay:assay' ~options:default_fp_options in
      if d <> d' then QCheck.Test.fail_reportf "round-trip changed digest";
      let mutated =
        Fingerprint.digest
          ~chip:
            (Families.Ring.generate ~spec:(Families.Ring.spec_of_size size)
               ~name:(Printf.sprintf "ring-%d-%d" seed size)
               (Mf_util.Rng.create ~seed:(seed + 7)))
          ~assay ~options:default_fp_options
      in
      ignore mutated;
      true)

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_memory () =
  let c = Cache.create ~mem_capacity:2 () in
  Cache.store c ~fingerprint:"aa" "payload-a";
  check Alcotest.bool "hit" true (Cache.find c "aa" = Some "payload-a");
  check Alcotest.bool "miss" true (Cache.find c "bb" = None);
  let s = Cache.stats c in
  check Alcotest.int "mem hits" 1 s.Cache.mem_hits;
  check Alcotest.int "misses" 1 s.Cache.misses

let test_cache_disk_persistence () =
  let dir = Filename.concat (tmp_dir ()) "cache" in
  let c = Cache.create ~dir () in
  Cache.store c ~fingerprint:"deadbeef" "persisted-payload";
  Cache.flush c;
  let c' = Cache.create ~dir () in
  check Alcotest.bool "survives reopen" true
    (Cache.find c' "deadbeef" = Some "persisted-payload");
  check Alcotest.int "disk hit" 1 (Cache.stats c').Cache.disk_hits;
  (* second find promotes to memory *)
  ignore (Cache.find c' "deadbeef");
  check Alcotest.int "promoted to memory" 1 (Cache.stats c').Cache.mem_hits

let test_cache_poisoning_guard () =
  let dir = Filename.concat (tmp_dir ()) "cache" in
  let c = Cache.create ~dir () in
  Cache.store c ~fingerprint:"feedface" "good-payload";
  Cache.flush c;
  (* poison the entry on disk: valid header shape, wrong bytes *)
  let path = Filename.concat dir "feedface.res" in
  let oc = open_out_bin path in
  output_string oc "mfdft-serve-cache-v1 0123456789abcdef0123456789abcdef\ntampered";
  close_out oc;
  let c' = Cache.create ~dir () in
  check Alcotest.bool "poisoned entry never served" true (Cache.find c' "feedface" = None);
  check Alcotest.int "corruption detected" 1 (Cache.stats c').Cache.corrupt;
  check Alcotest.bool "poisoned file evicted" false (Sys.file_exists path);
  (* a fresh store over the same address works again *)
  Cache.store c' ~fingerprint:"feedface" "resolved-payload";
  check Alcotest.bool "re-solved value served" true
    (Cache.find c' "feedface" = Some "resolved-payload")

let test_cache_eviction () =
  let dir = Filename.concat (tmp_dir ()) "cache" in
  let c = Cache.create ~disk_capacity:2 ~dir () in
  Cache.store c ~fingerprint:"a1" "one";
  Cache.store c ~fingerprint:"b2" "two";
  Cache.store c ~fingerprint:"c3" "three";
  check Alcotest.int "capacity respected" 2 (Cache.entries c);
  check Alcotest.bool "oldest entry file removed" false
    (Sys.file_exists (Filename.concat dir "a1.res"));
  check Alcotest.int "eviction counted" 1 (Cache.stats c).Cache.evictions

(* ------------------------------------------------------------------ *)
(* Engine *)

(* Shrink the solver so each job takes ~a second: the engine logic under
   test is identical at any budget. *)
let tune (p : Codesign.params) =
  {
    p with
    Codesign.pool_size = 2;
    ilp_node_limit = 300;
    outer = { Mf_pso.Pso.default_params with Mf_pso.Pso.particles = 3; iterations = 3 };
    inner = { Mf_pso.Pso.default_params with Mf_pso.Pso.particles = 3; iterations = 3 };
  }

let spec ?(seed = 42) ?(priority = 0) ?deadline ?(wait = true) ~chip ~assay () =
  {
    Protocol.chip = Protocol.Name chip;
    assay = Protocol.Name assay;
    options = { Fingerprint.full = false; seed };
    priority;
    deadline;
    wait;
  }

let fp_of_spec s =
  let chip = Result.get_ok (Protocol.resolve_chip s.Protocol.chip) in
  let assay = Result.get_ok (Protocol.resolve_assay s.Protocol.assay) in
  Fingerprint.digest ~chip ~assay ~options:s.Protocol.options

let submit_ok eng s ~on_event ~on_done =
  match Engine.submit eng s ~on_event ~on_done with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_single_flight_and_cache_hit () =
  let eng = Engine.create ~tune ~state_dir:(tmp_dir ()) () in
  let s = spec ~chip:"ivd_chip" ~assay:"ivd" () in
  let payloads = ref [] in
  let events = ref [] in
  let on_done = function
    | Engine.Payload p -> payloads := p :: !payloads
    | Engine.Failed e -> Alcotest.fail e
    | Engine.Checkpointed -> Alcotest.fail "unexpected checkpoint"
  in
  let _, d1 = submit_ok eng s ~on_event:(fun l -> events := l :: !events) ~on_done in
  let _, d2 = submit_ok eng s ~on_event:ignore ~on_done in
  let _, d3 = submit_ok eng s ~on_event:ignore ~on_done in
  (match d1 with Engine.Enqueued _ -> () | _ -> Alcotest.fail "first submit should enqueue");
  (match (d2, d3) with
   | Engine.Joined _, Engine.Joined _ -> ()
   | _ -> Alcotest.fail "identical submissions should join the in-flight job");
  check Alcotest.int "one job queued for three submissions" 1 (Engine.pending eng);
  (match Engine.run_next eng with
   | `Ran -> ()
   | `Idle -> Alcotest.fail "expected a job to run");
  check Alcotest.int "all three subscribers answered" 3 (List.length !payloads);
  (match !payloads with
   | p :: rest -> List.iter (check Alcotest.string "identical payloads" p) rest
   | [] -> assert false);
  let st = Engine.stats eng in
  check Alcotest.int "exactly one solve" 1 st.Engine.solves;
  check Alcotest.int "two single-flight joins" 2 st.Engine.joins;
  (* the streamed events arrived in order *)
  let events = List.rev !events in
  let kind l = Option.value ~default:"?" (Json.str_field "event" (Result.get_ok (Json.parse l))) in
  (match events with
   | first :: second :: _ ->
     check Alcotest.string "first event" "queued" (kind first);
     check Alcotest.string "second event" "started" (kind second)
   | _ -> Alcotest.fail "no events streamed");
  check Alcotest.string "last event" "done" (kind (List.nth events (List.length events - 1)));
  (* resubmission is a cache hit, byte-identical to the solved payload *)
  (match submit_ok eng s ~on_event:ignore ~on_done:ignore with
   | _, Engine.Cached p -> check Alcotest.string "cache hit byte-identical" (List.hd !payloads) p
   | _ -> Alcotest.fail "resubmission should hit the cache");
  Engine.shutdown eng

let test_priority_order () =
  let eng = Engine.create ~tune ~state_dir:(tmp_dir ()) () in
  let low = spec ~chip:"ivd_chip" ~assay:"ivd" ~seed:1 ~priority:0 () in
  let high = spec ~chip:"ivd_chip" ~assay:"ivd" ~seed:2 ~priority:5 () in
  let started = ref [] in
  let on_event l =
    let j = Result.get_ok (Json.parse l) in
    if Json.str_field "event" j = Some "started" then
      started := Option.get (Json.str_field "fingerprint" j) :: !started
  in
  ignore (submit_ok eng low ~on_event ~on_done:ignore);
  ignore (submit_ok eng high ~on_event ~on_done:ignore);
  (* one iteration is enough to observe scheduling order *)
  (match Engine.run_next ~stop_after:1 eng with
   | `Ran -> ()
   | `Idle -> Alcotest.fail "expected a job to run");
  (match !started with
   | [ fp ] -> check Alcotest.string "higher priority runs first" (fp_of_spec high) fp
   | _ -> Alcotest.fail "expected exactly one started event");
  Engine.shutdown eng

let test_crash_recovery_differential () =
  let s = spec ~chip:"ivd_chip" ~assay:"pid" ~seed:7 () in
  let fp = fp_of_spec s in
  (* reference: uninterrupted solve in a fresh state dir *)
  let eng_ref = Engine.create ~tune ~state_dir:(tmp_dir ()) () in
  let reference = ref None in
  ignore
    (submit_ok eng_ref s ~on_event:ignore ~on_done:(function
       | Engine.Payload p -> reference := Some p
       | _ -> Alcotest.fail "reference solve failed"));
  (match Engine.run_next eng_ref with `Ran -> () | `Idle -> Alcotest.fail "no reference job");
  let reference = Option.get !reference in
  Engine.shutdown eng_ref;
  (* interrupted: checkpoint after one outer iteration, then abandon the
     engine (the in-process stand-in for kill -9) *)
  let dir = tmp_dir () in
  let eng = Engine.create ~tune ~state_dir:dir () in
  let outcome = ref None in
  ignore
    (submit_ok eng s ~on_event:ignore ~on_done:(fun o -> outcome := Some o));
  (match Engine.run_next ~stop_after:1 eng with
   | `Ran -> ()
   | `Idle -> Alcotest.fail "no job to interrupt");
  (match !outcome with
   | Some Engine.Checkpointed -> ()
   | _ -> Alcotest.fail "expected a checkpointed outcome");
  (* restart on the same state dir: the job is recovered and resumed *)
  let eng' = Engine.create ~tune ~state_dir:dir () in
  check Alcotest.int "one job recovered" 1 (Engine.stats eng').Engine.recovered;
  check Alcotest.string "recovered job is queued" "queued" (Engine.status eng' fp);
  (match Engine.run_next eng' with `Ran -> () | `Idle -> Alcotest.fail "recovered job not run");
  (match Engine.find_cached eng' fp with
   | Some p -> check Alcotest.string "resumed result byte-identical" reference p
   | None -> Alcotest.fail "resumed job produced no cached result");
  Engine.shutdown eng'

let test_jobs_differential () =
  let s = spec ~chip:"ra30_chip" ~assay:"ivd" ~seed:11 () in
  let fp = fp_of_spec s in
  let solve jobs =
    let eng = Engine.create ~jobs ~tune ~state_dir:(tmp_dir ()) () in
    ignore (submit_ok eng s ~on_event:ignore ~on_done:ignore);
    (match Engine.run_next eng with `Ran -> () | `Idle -> Alcotest.fail "no job");
    let p = Option.get (Engine.find_cached eng fp) in
    Engine.shutdown eng;
    p
  in
  check Alcotest.string "jobs=1 and jobs=4 payloads byte-identical" (solve 1) (solve 4)

let test_engine_corrupt_cache_resolves () =
  let dir = tmp_dir () in
  let s = spec ~chip:"ivd_chip" ~assay:"ivd" ~seed:3 () in
  let fp = fp_of_spec s in
  let eng = Engine.create ~tune ~state_dir:dir () in
  ignore (submit_ok eng s ~on_event:ignore ~on_done:ignore);
  (match Engine.run_next eng with `Ran -> () | `Idle -> Alcotest.fail "no job");
  let original = Option.get (Engine.find_cached eng fp) in
  Engine.shutdown eng;
  (* poison the stored result, then restart: the guard must detect it,
     evict it, and re-solve — never serve the tampered bytes *)
  let path = Filename.concat (Filename.concat dir "cache") (fp ^ ".res") in
  check Alcotest.bool "entry exists on disk" true (Sys.file_exists path);
  let oc = open_out_bin path in
  output_string oc "mfdft-serve-cache-v1 00000000000000000000000000000000\nforged result";
  close_out oc;
  let eng' = Engine.create ~tune ~state_dir:dir () in
  (match submit_ok eng' s ~on_event:ignore ~on_done:ignore with
   | _, Engine.Enqueued _ -> ()
   | _, Engine.Cached _ -> Alcotest.fail "tampered entry was served"
   | _, Engine.Joined _ -> Alcotest.fail "nothing to join");
  check Alcotest.bool "corruption counted" true
    ((Engine.stats eng').Engine.cache.Cache.corrupt >= 1);
  (match Engine.run_next eng' with `Ran -> () | `Idle -> Alcotest.fail "no re-solve");
  (match Engine.find_cached eng' fp with
   | Some p -> check Alcotest.string "re-solved result matches original" original p
   | None -> Alcotest.fail "no result after re-solve");
  Engine.shutdown eng'

let test_deadline_jobs_bypass_cache_and_dedup () =
  let eng = Engine.create ~tune ~state_dir:(tmp_dir ()) () in
  let s = spec ~chip:"ivd_chip" ~assay:"ivd" ~seed:5 () in
  let with_deadline = { s with Protocol.deadline = Some 300. } in
  let fp = fp_of_spec s in
  ignore (submit_ok eng s ~on_event:ignore ~on_done:ignore);
  (* identical content, but budgeted: must not join the in-flight job *)
  (match submit_ok eng with_deadline ~on_event:ignore ~on_done:ignore with
   | _, Engine.Enqueued _ -> ()
   | _ -> Alcotest.fail "budgeted submission must not join or hit");
  check Alcotest.int "two independent jobs" 2 (Engine.pending eng);
  (match Engine.run_next eng with `Ran -> () | `Idle -> Alcotest.fail "no job");
  (match Engine.run_next eng with `Ran -> () | `Idle -> Alcotest.fail "no second job");
  (* only the deadline-free solve was cached *)
  check Alcotest.int "one store" 1 (Engine.stats eng).Engine.cache.Cache.stores;
  check Alcotest.bool "deadline-free result cached" true (Engine.find_cached eng fp <> None);
  Engine.shutdown eng

let () =
  let qt = QCheck_alcotest.to_alcotest in
  (* byte-identity assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_serve"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "integer rendering stable" `Quick test_json_integers_stable;
          Alcotest.test_case "rejects malformed input" `Quick test_json_rejects;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request parsing" `Quick test_protocol_parse;
          Alcotest.test_case "spec round-trip" `Quick test_protocol_spec_roundtrip;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "stable" `Quick test_fingerprint_stable;
          Alcotest.test_case "sensitive to semantic changes" `Quick test_fingerprint_sensitive;
          qt fp_roundtrip_prop;
        ] );
      ( "cache",
        [
          Alcotest.test_case "memory tier" `Quick test_cache_memory;
          Alcotest.test_case "disk persistence" `Quick test_cache_disk_persistence;
          Alcotest.test_case "poisoning guard" `Quick test_cache_poisoning_guard;
          Alcotest.test_case "disk eviction" `Quick test_cache_eviction;
        ] );
      ( "engine",
        [
          Alcotest.test_case "single-flight + cache hit" `Slow test_single_flight_and_cache_hit;
          Alcotest.test_case "priority order" `Slow test_priority_order;
          Alcotest.test_case "kill/restart differential" `Slow test_crash_recovery_differential;
          Alcotest.test_case "jobs=1 vs jobs=4 byte-identical" `Slow test_jobs_differential;
          Alcotest.test_case "corrupt cache entry re-solved" `Slow
            test_engine_corrupt_cache_resolves;
          Alcotest.test_case "deadline bypasses cache and dedup" `Slow
            test_deadline_jobs_bypass_cache_and_dedup;
        ] );
    ]
