module Chip = Mf_arch.Chip
module Control = Mf_control.Control
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Benchmarks = Mf_chips.Benchmarks

let check = Alcotest.check

let test_benchmarks_route () =
  List.iter
    (fun name ->
      let chip = Option.get (Benchmarks.by_name name) in
      let layout = Control.synthesize chip in
      check Alcotest.(list int) (name ^ " fully routed") [] layout.Control.unrouted;
      check Alcotest.int (name ^ " one port per line") (Chip.n_controls chip)
        (Control.n_ports layout);
      check Alcotest.bool (name ^ " has length") true (Control.total_length layout > 0))
    Benchmarks.names

let test_unshared_lines_have_zero_skew () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let layout = Control.synthesize chip in
  List.iter
    (fun (r : Control.route) ->
      match Control.skew layout ~line:r.Control.line with
      | Some s -> check (Alcotest.float 1e-9) "skew zero" 0. s
      | None -> Alcotest.fail "routed line must have skew")
    layout.Control.routes;
  check (Alcotest.float 1e-9) "max skew" 0. (Control.max_skew layout)

let test_delays_positive_and_monotone () =
  let chip = Option.get (Benchmarks.by_name "ra30_chip") in
  let layout = Control.synthesize chip in
  for v = 0 to Chip.n_valves chip - 1 do
    match Control.actuation_delay layout ~valve:v with
    | Some d -> check Alcotest.bool "delay >= beta" true (d >= 2.0)
    | None -> Alcotest.fail "benchmark valve must be routed"
  done;
  (* alpha scales the delay *)
  let d1 = Option.get (Control.actuation_delay ~alpha:1.0 layout ~valve:0) in
  let d2 = Option.get (Control.actuation_delay ~alpha:2.0 layout ~valve:0) in
  check Alcotest.bool "alpha scales" true (d2 > d1)

let test_trees_are_disjoint () =
  let chip = Option.get (Benchmarks.by_name "mrna_chip") in
  let layout = Control.synthesize chip in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (r : Control.route) ->
      List.iter
        (fun e ->
          check Alcotest.bool "edge used once" false (Hashtbl.mem seen e);
          Hashtbl.replace seen e ())
        r.Control.tree_edges)
    layout.Control.routes

let test_trees_connect_taps_to_port () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let layout = Control.synthesize chip in
  let g = layout.Control.layer_graph in
  List.iter
    (fun (r : Control.route) ->
      let member = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace member e ()) r.Control.tree_edges;
      let allowed e = Hashtbl.mem member e in
      let reach = Mf_graph.Traverse.reachable g ~allowed ~src:r.Control.port_node in
      List.iter
        (fun (_, tap) ->
          check Alcotest.bool "tap reachable from port" true (Mf_util.Bitset.mem reach tap))
        r.Control.taps)
    layout.Control.routes

let test_sharing_reduces_ports () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  match Mf_testgen.Pathgen.generate ~node_limit:300 chip with
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  | Ok config ->
    let aug = Mf_testgen.Pathgen.apply chip config in
    let dfts =
      Array.to_list (Chip.valves aug)
      |> List.filter_map (fun (v : Chip.valve) -> if v.is_dft then Some v.valve_id else None)
    in
    (* nest-friendly sharing: every DFT valve borrows from valve 0 *)
    let shared = Chip.with_sharing aug (List.map (fun d -> (d, 0)) dfts) in
    let free_layout = Control.synthesize aug in
    let shared_layout = Control.synthesize shared in
    check Alcotest.bool "shared needs fewer ports" true
      (Control.n_ports shared_layout + List.length shared_layout.Control.unrouted
      < Control.n_ports free_layout + List.length free_layout.Control.unrouted);
    (* the original chip's port count is the budget sharing must respect *)
    check Alcotest.bool "no more lines than original valves" true
      (Chip.n_controls shared <= Chip.n_original_valves aug)

let test_ports_on_boundary () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let layout = Control.synthesize chip in
  let g = layout.Control.layer_graph in
  let n = Graph.n_nodes g in
  (* boundary nodes have degree < 4 on a grid *)
  List.iter
    (fun (r : Control.route) ->
      check Alcotest.bool "port on boundary" true
        (r.Control.port_node >= 0 && r.Control.port_node < n
        && Graph.degree g r.Control.port_node < 4))
    layout.Control.routes

let () =
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_control"
    [
      ( "control",
        [
          Alcotest.test_case "benchmarks route" `Quick test_benchmarks_route;
          Alcotest.test_case "zero skew unshared" `Quick test_unshared_lines_have_zero_skew;
          Alcotest.test_case "delays" `Quick test_delays_positive_and_monotone;
          Alcotest.test_case "trees disjoint" `Quick test_trees_are_disjoint;
          Alcotest.test_case "taps connected" `Quick test_trees_connect_taps_to_port;
          Alcotest.test_case "sharing reduces ports" `Quick test_sharing_reduces_ports;
          Alcotest.test_case "ports on boundary" `Quick test_ports_on_boundary;
        ] );
    ]
