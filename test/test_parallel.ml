(* The parallel-evaluation contract: Domain_pool is an order-preserving,
   exception-propagating, reusable map, and the codesign flow is
   bit-identical whatever the job count (every rng draw stays on the
   coordinating domain; only pure work fans out). *)

module Domain_pool = Mf_util.Domain_pool
module Rng = Mf_util.Rng
module Pso = Mf_pso.Pso
module Codesign = Mfdft.Codesign
module Benchmarks = Mf_chips.Benchmarks
module Assays = Mf_bioassay.Assays

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Domain_pool unit tests *)

let test_empty_and_singleton () =
  Domain_pool.with_pool ~jobs:3 (fun pool ->
      check Alcotest.(array int) "empty" [||] (Domain_pool.map pool (fun x -> x + 1) [||]);
      check Alcotest.(array int) "singleton" [| 43 |]
        (Domain_pool.map pool (fun x -> x + 1) [| 42 |]))

let test_jobs_guard () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Domain_pool.create: jobs must be >= 1")
    (fun () -> ignore (Domain_pool.create ~jobs:0))

let test_map_reduce_order () =
  (* the fold sees results in input order, so a non-commutative fold is
     deterministic *)
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 57 string_of_int in
      let concatenated =
        Domain_pool.map_reduce pool ~map:(fun s -> s ^ ";") ~fold:( ^ ) ~init:"" xs
      in
      check Alcotest.string "in order"
        (String.concat "" (Array.to_list (Array.map (fun s -> s ^ ";") xs)))
        concatenated)

let test_exception_is_lowest_index () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let f i = if i mod 3 = 2 then failwith (Printf.sprintf "boom %d" i) else i in
      (* elements 2, 5, 8, ... fail; index 2's exception must surface *)
      Alcotest.check_raises "first failure wins" (Failure "boom 2") (fun () ->
          ignore (Domain_pool.map pool f (Array.init 20 Fun.id))))

(* ------------------------------------------------------------------ *)
(* Domain_pool QCheck properties *)

let pool_jobs_gen = QCheck.Gen.int_range 1 5

let order_preservation_prop =
  QCheck.Test.make ~name:"map preserves input order for any job count" ~count:30
    QCheck.(pair (make pool_jobs_gen) (list small_int))
    (fun (jobs, xs) ->
      let xs = Array.of_list xs in
      Domain_pool.with_pool ~jobs (fun pool ->
          Domain_pool.map pool (fun x -> (2 * x) + 1) xs
          = Array.map (fun x -> (2 * x) + 1) xs))

let exception_propagation_prop =
  QCheck.Test.make ~name:"exceptions propagate and leave the pool reusable" ~count:20
    QCheck.(pair (make pool_jobs_gen) (small_list small_nat))
    (fun (jobs, xs) ->
      let xs = Array.of_list (1 :: xs) (* at least one failing element *) in
      Domain_pool.with_pool ~jobs (fun pool ->
          let raised =
            match Domain_pool.map pool (fun x -> if x = 1 then raise Exit else x) xs with
            | _ -> false
            | exception Exit -> true
          in
          (* the pool must survive the failed batch and still map correctly *)
          raised && Domain_pool.map pool (fun x -> x + 1) xs = Array.map (fun x -> x + 1) xs))

let reuse_prop =
  QCheck.Test.make ~name:"pool is reusable across many batches" ~count:10
    QCheck.(make pool_jobs_gen)
    (fun jobs ->
      Domain_pool.with_pool ~jobs (fun pool ->
          List.for_all
            (fun round ->
              let xs = Array.init (10 + round) (fun i -> i * round) in
              Domain_pool.map pool (fun x -> x - 1) xs = Array.map (fun x -> x - 1) xs)
            [ 1; 2; 3; 4; 5 ]))

(* ------------------------------------------------------------------ *)
(* PSO batch path: the batch evaluator sees whole iterations, and fanning
   the batch out over domains changes nothing. *)

let sphere x = Array.fold_left (fun acc v -> acc +. ((v -. 0.5) ** 2.)) 0. x

let test_run_batch_matches_serial_batch () =
  let outcome_with evaluator =
    let rng = Rng.create ~seed:17 in
    Pso.run_batch ~rng ~dim:4 ~batch_fitness:evaluator ()
  in
  let serial = outcome_with (Array.map sphere) in
  let parallel =
    Domain_pool.with_pool ~jobs:4 (fun pool ->
        outcome_with (fun xs -> Domain_pool.map pool sphere xs))
  in
  check (Alcotest.float 0.) "best fitness" serial.Pso.best_fitness parallel.Pso.best_fitness;
  check Alcotest.(list (float 0.)) "trace" serial.Pso.trace parallel.Pso.trace;
  check Alcotest.int "evaluations" serial.Pso.evaluations parallel.Pso.evaluations;
  check Alcotest.(array (float 0.)) "position" serial.Pso.best_position
    parallel.Pso.best_position;
  check Alcotest.bool "converges" true (serial.Pso.best_fitness < 1e-2)

let test_run_batch_counts_evaluations () =
  let rng = Rng.create ~seed:5 in
  let params = { Pso.default_params with Pso.particles = 3; iterations = 7 } in
  let calls = ref 0 in
  let outcome =
    Pso.run_batch ~params ~rng ~dim:2
      ~batch_fitness:(fun xs ->
        calls := !calls + Array.length xs;
        Array.map sphere xs)
      ()
  in
  check Alcotest.int "evaluations" (3 * (1 + 7)) outcome.Pso.evaluations;
  check Alcotest.int "matches calls" !calls outcome.Pso.evaluations

(* ------------------------------------------------------------------ *)
(* Differential determinism of the pool builder: the ILP-heavy stage that
   exercises the warm-started LP core and its per-solve fixing-set cache.
   Every candidate configuration, its solver effort counters and the
   attempt objectives must be bit-identical whatever the job count. *)

let test_pool_build_jobs_deterministic () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let build jobs =
    let rng = Rng.create ~seed:11 in
    let outcome =
      Domain_pool.with_pool ~jobs (fun domains ->
          Mfdft.Pool.build ~size:4 ~node_limit:400 ~domains ~rng chip)
    in
    match outcome with
    | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
    | Ok pool ->
      ( Array.to_list (Mfdft.Pool.attempt_objectives pool),
        Array.to_list (Array.map (fun e -> e.Mfdft.Pool.config) (Mfdft.Pool.entries pool)) )
  in
  let serial = build 1 in
  let parallel = build 4 in
  check Alcotest.bool "pool: jobs=1 and jobs=4 bit-identical (cache on)" true
    (serial = parallel)

(* ------------------------------------------------------------------ *)
(* Differential determinism of the full codesign flow *)

let tiny_params ~seed ~jobs =
  {
    Codesign.quick_params with
    Codesign.pool_size = 2;
    ilp_node_limit = 300;
    outer = { Mf_pso.Pso.default_params with particles = 3; iterations = 3 };
    inner = { Mf_pso.Pso.default_params with particles = 3; iterations = 3 };
    seed;
    jobs;
  }

let fingerprint (r : Codesign.result) =
  ( r.Codesign.exec_final,
    r.Codesign.exec_original,
    r.Codesign.exec_dft_unshared,
    r.Codesign.exec_dft_no_pso,
    r.Codesign.n_dft_valves,
    r.Codesign.n_shared,
    r.Codesign.n_vectors_dft,
    r.Codesign.sharing,
    r.Codesign.trace,
    r.Codesign.evaluations )

let differential_case (chip_name, assay_name, seed) () =
  let chip = Option.get (Benchmarks.by_name chip_name) in
  let app = Option.get (Assays.by_name assay_name) in
  let run jobs =
    match Codesign.run ~params:(tiny_params ~seed ~jobs) chip app with
    | Ok r -> fingerprint r
    | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  in
  let serial = run 1 in
  let parallel = run 4 in
  check Alcotest.bool
    (Printf.sprintf "%s/%s seed %d: jobs=1 and jobs=4 bit-identical" chip_name assay_name seed)
    true (serial = parallel)

let differential_cases =
  [
    ("ivd_chip", "ivd", 42);
    ("ivd_chip", "pid", 7);
    ("ra30_chip", "ivd", 42);
  ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_parallel"
    [
      ( "domain pool",
        [
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "jobs guard" `Quick test_jobs_guard;
          Alcotest.test_case "map_reduce order" `Quick test_map_reduce_order;
          Alcotest.test_case "first failure wins" `Quick test_exception_is_lowest_index;
          qt order_preservation_prop;
          qt exception_propagation_prop;
          qt reuse_prop;
        ] );
      ( "pso batch",
        [
          Alcotest.test_case "parallel batch matches serial" `Quick
            test_run_batch_matches_serial_batch;
          Alcotest.test_case "evaluation count" `Quick test_run_batch_counts_evaluations;
        ] );
      ( "pool differential",
        [
          Alcotest.test_case "jobs=1 vs jobs=4, warm cache enabled" `Quick
            test_pool_build_jobs_deterministic;
        ] );
      ( "codesign differential",
        List.map
          (fun ((chip, assay, seed) as case) ->
            Alcotest.test_case
              (Printf.sprintf "%s/%s seed %d" chip assay seed)
              `Slow (differential_case case))
          differential_cases );
    ]
