(* Cross-module properties: invariants that tie the fault model, test
   generation, scheduling and the chip model together. *)

module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Bitset = Mf_util.Bitset
module Rng = Mf_util.Rng
module Vector = Mf_faults.Vector
module Pressure = Mf_faults.Pressure
module Fault = Mf_faults.Fault
module Pathgen = Mf_testgen.Pathgen
module Cutgen = Mf_testgen.Cutgen
module Vectors = Mf_testgen.Vectors
module Scheduler = Mf_sched.Scheduler
module Seqgraph = Mf_bioassay.Seqgraph
module Assays = Mf_bioassay.Assays
module Benchmarks = Mf_chips.Benchmarks


let chip_of_seed seed =
  if seed mod 4 = 3 then Mf_chips.Synth.generate (Rng.create ~seed)
  else Option.get (Benchmarks.by_name (List.nth Benchmarks.names (seed mod 3)))

(* Opening more valves can only extend where pressure reaches. *)
let monotone_pressure_prop =
  QCheck.Test.make ~name:"pressure reach is monotone in open valves" ~count:40 QCheck.small_int
    (fun seed ->
      let chip = chip_of_seed seed in
      let rng = Rng.create ~seed:(seed + 7) in
      let n = Chip.n_controls chip in
      let active = Bitset.create n in
      for line = 0 to n - 1 do
        if Rng.bool rng then Bitset.add active line
      done;
      (* releasing one more line (opening its valves) must not shrink reach *)
      let source = (Chip.ports chip).(0).Chip.node in
      let g = Grid.graph (Chip.grid chip) in
      let reach_with active =
        Traverse.reachable g
          ~allowed:(fun e -> Pressure.conducts chip ~active_lines:active e)
          ~src:source
      in
      let before = reach_with active in
      match Bitset.elements active with
      | [] -> true
      | line :: _ ->
        let relaxed = Bitset.copy active in
        Bitset.remove relaxed line;
        let after = reach_with relaxed in
        Bitset.fold (fun node ok -> ok && Bitset.mem after node) before true)

(* Generated cuts are inclusion-minimal separators. *)
let minimal_cut_prop =
  QCheck.Test.make ~name:"generated cuts are inclusion-minimal" ~count:6 QCheck.small_int
    (fun seed ->
      let chip = chip_of_seed seed in
      match Pathgen.generate ~node_limit:150 chip with
      | Error _ -> false
      | Ok config ->
        let aug = Pathgen.apply chip config in
        let cuts =
          Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port
        in
        let ports = Chip.ports aug in
        let s = ports.(config.Pathgen.src_port).Chip.node in
        let t = ports.(config.Pathgen.dst_port).Chip.node in
        let separates closed_list =
          let closed = Bitset.of_list (Chip.n_valves aug) closed_list in
          let g = Grid.graph (Chip.grid aug) in
          let allowed e =
            Chip.is_channel aug e
            &&
            match Chip.valve_on aug e with
            | None -> true
            | Some v -> not (Bitset.mem closed v.Chip.valve_id)
          in
          not (Traverse.connected g ~allowed s t)
        in
        List.for_all
          (fun cut ->
            separates cut
            && List.for_all (fun v -> not (separates (List.filter (( <> ) v) cut))) cut)
          cuts.Cutgen.cuts)

(* A test path vector conducts from source to meter, and its path stays on
   channels of the augmented chip. *)
let path_vector_prop =
  QCheck.Test.make ~name:"path vectors are conducting channel walks" ~count:6 QCheck.small_int
    (fun seed ->
      let chip = chip_of_seed (seed + 13) in
      match Pathgen.generate ~node_limit:150 chip with
      | Error _ -> false
      | Ok config ->
        let aug = Pathgen.apply chip config in
        let ports = Chip.ports aug in
        let s = ports.(config.Pathgen.src_port).Chip.node in
        let t = ports.(config.Pathgen.dst_port).Chip.node in
        List.for_all
          (fun path ->
            List.for_all (Chip.is_channel aug) path
            &&
            let vec = Vector.of_path aug ~source:s ~meters:[ t ] path in
            Pressure.well_formed aug vec)
          config.Pathgen.paths)

(* Makespan respects the critical-path lower bound. *)
let critical_path_prop =
  QCheck.Test.make ~name:"makespan >= critical path" ~count:9 QCheck.small_int (fun seed ->
      let chip = Option.get (Benchmarks.by_name (List.nth Benchmarks.names (seed mod 3))) in
      let app = Option.get (Assays.by_name (List.nth Assays.names (seed mod 3))) in
      let critical =
        let n = Seqgraph.n_ops app in
        let memo = Array.make n 0 in
        List.iter
          (fun j ->
            let longest = List.fold_left (fun acc p -> max acc memo.(p)) 0 (Seqgraph.preds app j) in
            memo.(j) <- longest + (Seqgraph.op app j).Mf_bioassay.Op.duration)
          (Seqgraph.topological app);
        Array.fold_left max 0 memo
      in
      match Scheduler.makespan chip app with
      | Some makespan -> makespan >= critical
      | None -> false)

(* Sharing the control of a DFT valve never reduces the makespan below the
   free-control architecture. *)
let sharing_cost_prop =
  QCheck.Test.make ~name:"sharing never beats free control" ~count:5 QCheck.small_int
    (fun seed ->
      let chip = Option.get (Benchmarks.by_name "ivd_chip") in
      match Pathgen.generate ~node_limit:200 chip with
      | Error _ -> false
      | Ok config ->
        let aug = Pathgen.apply chip config in
        let app = Assays.ivd () in
        let free = Scheduler.makespan aug app in
        let rng = Rng.create ~seed:(seed + 31) in
        let scheme = Mfdft.Sharing.random rng aug in
        let shared = Mfdft.Sharing.apply aug scheme in
        (match (free, Scheduler.makespan shared app) with
         | Some f, Some s -> s >= f
         | Some _, None -> true (* deadlock under sharing is a legal outcome *)
         | None, _ -> false))

(* Chip_io round-trips synthetic chips, not just the benchmarks. *)
let io_roundtrip_prop =
  QCheck.Test.make ~name:"chip_io round-trips synthetic chips" ~count:15 QCheck.small_int
    (fun seed ->
      let chip = Mf_chips.Synth.generate (Rng.create ~seed:(seed + 3)) in
      match Mf_arch.Chip_io.parse (Mf_arch.Chip_io.to_string chip) with
      | Error _ -> false
      | Ok chip' ->
        Chip.n_valves chip = Chip.n_valves chip'
        && Bitset.equal (Chip.channel_edges chip) (Chip.channel_edges chip')
        && Array.length (Chip.devices chip) = Array.length (Chip.devices chip'))

(* The fault universe is exactly edges + valves, and every fault printable. *)
let fault_universe_prop =
  QCheck.Test.make ~name:"fault universe size and printability" ~count:20 QCheck.small_int
    (fun seed ->
      let chip = chip_of_seed seed in
      let faults = Fault.all chip in
      List.length faults
      = Bitset.cardinal (Chip.channel_edges chip) + Chip.n_valves chip
      && List.for_all
           (fun f -> String.length (Format.asprintf "%a" (Fault.pp chip) f) > 0)
           faults)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_props"
    [
      ( "cross-module properties",
        [
          qt monotone_pressure_prop;
          qt minimal_cut_prop;
          qt path_vector_prop;
          qt critical_path_prop;
          qt sharing_cost_prop;
          qt io_roundtrip_prop;
          qt fault_universe_prop;
        ] );
    ]
