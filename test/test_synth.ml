module Chip = Mf_arch.Chip
module Synth = Mf_chips.Synth
module Rng = Mf_util.Rng
module Pathgen = Mf_testgen.Pathgen
module Cutgen = Mf_testgen.Cutgen
module Vectors = Mf_testgen.Vectors
module Scheduler = Mf_sched.Scheduler
module Coverage = Mf_faults.Coverage

let check = Alcotest.check

let test_default_valid () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 10 do
    (* finish_exn inside generate already validates; this checks shape *)
    let chip = Synth.generate rng in
    check Alcotest.bool "ports" true (Array.length (Chip.ports chip) >= 2);
    check Alcotest.bool "devices" true (Array.length (Chip.devices chip) >= 2);
    check Alcotest.bool "valves" true (Chip.n_valves chip > 0)
  done

let test_spec_respected () =
  let rng = Rng.create ~seed:2 in
  let spec = { Synth.mixers = 3; detectors = 2; heaters = 1; ports = 4; pockets = 2 } in
  let chip = Synth.generate ~spec rng in
  let count kind =
    Array.to_list (Chip.devices chip)
    |> List.filter (fun (d : Chip.device) -> d.kind = kind)
    |> List.length
  in
  check Alcotest.int "mixers" 3 (count Chip.Mixer);
  check Alcotest.int "detectors" 2 (count Chip.Detector);
  check Alcotest.int "heaters" 1 (count Chip.Heater);
  check Alcotest.int "ports" 4 (Array.length (Chip.ports chip))

(* regression: pocket placement used to be silently best-effort; the slot
   geometry must place every requested pocket and say so in the report *)
let test_pockets_all_placed () =
  let rng = Rng.create ~seed:11 in
  List.iter
    (fun spec ->
      for _ = 1 to 5 do
        let _, report = Synth.generate_report ~spec rng in
        check Alcotest.int "requested" spec.Synth.pockets report.Synth.requested_pockets;
        check Alcotest.int "placed = requested" report.Synth.requested_pockets
          report.Synth.placed_pockets
      done)
    [
      Synth.default_spec;
      { Synth.default_spec with Synth.pockets = 8 };
      { Synth.mixers = 3; detectors = 2; heaters = 2; ports = 4; pockets = 12 };
    ]

let test_rejects_bad_specs () =
  let rng = Rng.create ~seed:3 in
  List.iter
    (fun spec ->
      check Alcotest.bool "rejected" true
        (try
           ignore (Synth.generate ~spec rng);
           false
         with Invalid_argument _ -> true))
    [
      { Synth.default_spec with Synth.mixers = 0 };
      { Synth.default_spec with Synth.ports = 1 };
      { Synth.default_spec with Synth.pockets = -1 };
    ]

(* the headline property: any generated chip can be made single-source
   single-meter testable, completely *)
let dft_works_prop =
  QCheck.Test.make ~name:"synthetic chips accept complete DFT" ~count:5 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 1) in
      let chip = Synth.generate rng in
      match Pathgen.generate ~node_limit:150 chip with
      | Error _ -> false
      | Ok config ->
        let aug = Pathgen.apply chip config in
        let cuts =
          Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port
        in
        let suite = Vectors.of_config config cuts in
        let suite =
          if Vectors.is_valid aug suite then suite else Mf_testgen.Repair.run aug suite
        in
        Coverage.complete (Vectors.validate aug suite))

(* generated chips must also execute applications *)
let schedule_works_prop =
  QCheck.Test.make ~name:"synthetic chips schedule the IVD assay" ~count:8 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 100) in
      let chip = Synth.generate rng in
      match Scheduler.makespan chip (Mf_bioassay.Assays.ivd ()) with
      | Some makespan -> makespan > 0
      | None -> false)

(* storage pockets the generator claims must be usable by the scheduler's
   site rules *)
let pocket_prop =
  QCheck.Test.make ~name:"generated pockets are valve-enclosed" ~count:20 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 200) in
      let chip = Synth.generate rng in
      let g = Mf_grid.Grid.graph (Chip.grid chip) in
      let pockets = ref 0 in
      Mf_graph.Graph.iter_edges
        (fun e u v ->
          if Chip.is_channel chip e && Chip.valve_on chip e = None then begin
            let plain n = Chip.device_at chip n = None && Chip.port_at chip n = None in
            let boundary n =
              Mf_graph.Graph.incident g n
              |> List.for_all (fun (f, _) ->
                  f = e || (not (Chip.is_channel chip f)) || Chip.valve_on chip f <> None)
            in
            if plain u && plain v && boundary u && boundary v then incr pockets
          end)
        g;
      !pockets >= 1)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_synth"
    [
      ( "generator",
        [
          Alcotest.test_case "default valid" `Quick test_default_valid;
          Alcotest.test_case "spec respected" `Quick test_spec_respected;
          Alcotest.test_case "pockets all placed" `Quick test_pockets_all_placed;
          Alcotest.test_case "rejects bad specs" `Quick test_rejects_bad_specs;
        ] );
      ( "properties",
        [ qt dft_works_prop; qt schedule_works_prop; qt pocket_prop ] );
    ]
