module Rng = Mf_util.Rng
module Bitset = Mf_util.Bitset
module Heap = Mf_util.Heap
module Union_find = Mf_util.Union_find

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  check Alcotest.bool "different streams" true (xs <> ys)

let test_rng_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    check Alcotest.bool "int in range" true (x >= 0 && x < 17);
    let f = Rng.uniform rng in
    check Alcotest.bool "uniform in range" true (f >= 0. && f < 1.)
  done

let test_rng_split_independent () =
  let parent = Rng.create ~seed:11 in
  let child = Rng.split parent in
  let c1 = List.init 10 (fun _ -> Rng.int child 100) in
  let p1 = List.init 10 (fun _ -> Rng.int parent 100) in
  check Alcotest.bool "child differs from parent" true (c1 <> p1)

let test_rng_copy () =
  let a = Rng.create ~seed:5 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  check Alcotest.int "copy same future" (Rng.int a 1000) (Rng.int b 1000)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:9 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation" (Array.init 50 Fun.id) sorted

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:13 in
  let n = 20_000 in
  let total = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let x = Rng.gaussian rng in
    total := !total +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !total /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  check Alcotest.bool "mean near 0" true (abs_float mean < 0.05);
  check Alcotest.bool "variance near 1" true (abs_float (var -. 1.) < 0.1)

let test_rng_pick () =
  let rng = Rng.create ~seed:21 in
  let arr = [| 5; 6; 7 |] in
  for _ = 1 to 50 do
    check Alcotest.bool "pick member" true (Array.mem (Rng.pick rng arr) arr)
  done;
  check Alcotest.bool "pick_list member" true (List.mem (Rng.pick_list rng [ 1; 2 ]) [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basic () =
  let s = Bitset.create 20 in
  check Alcotest.bool "initially empty" true (Bitset.is_empty s);
  Bitset.add s 3;
  Bitset.add s 19;
  check Alcotest.bool "mem 3" true (Bitset.mem s 3);
  check Alcotest.bool "mem 19" true (Bitset.mem s 19);
  check Alcotest.bool "not mem 4" false (Bitset.mem s 4);
  check Alcotest.int "cardinal" 2 (Bitset.cardinal s);
  Bitset.remove s 3;
  check Alcotest.bool "removed" false (Bitset.mem s 3);
  check Alcotest.(list int) "elements" [ 19 ] (Bitset.elements s)

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index 8 out of [0,8)") (fun () ->
      Bitset.add s 8)

let test_bitset_fill_clear () =
  let s = Bitset.create 13 in
  Bitset.fill s;
  check Alcotest.int "full" 13 (Bitset.cardinal s);
  Bitset.clear s;
  check Alcotest.bool "cleared" true (Bitset.is_empty s)

let test_bitset_setops () =
  let a = Bitset.of_list 16 [ 1; 3; 5; 15 ] in
  let b = Bitset.of_list 16 [ 3; 4; 15 ] in
  let u = Bitset.copy a in
  Bitset.union_into u b;
  check Alcotest.(list int) "union" [ 1; 3; 4; 5; 15 ] (Bitset.elements u);
  let i = Bitset.copy a in
  Bitset.inter_into i b;
  check Alcotest.(list int) "inter" [ 3; 15 ] (Bitset.elements i);
  let d = Bitset.copy a in
  Bitset.diff_into d b;
  check Alcotest.(list int) "diff" [ 1; 5 ] (Bitset.elements d)

let test_bitset_equal () =
  let a = Bitset.of_list 10 [ 2; 7 ] in
  let b = Bitset.of_list 10 [ 7; 2 ] in
  check Alcotest.bool "equal" true (Bitset.equal a b);
  Bitset.add b 0;
  check Alcotest.bool "not equal" false (Bitset.equal a b)

(* model-based property tests against a sorted-list set model *)
let bitset_model_prop =
  QCheck.Test.make ~name:"bitset matches list-set model" ~count:200
    QCheck.(list (pair bool (int_bound 63)))
    (fun ops ->
      let s = Bitset.create 64 in
      let model = ref [] in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add s i;
            if not (List.mem i !model) then model := i :: !model
          end
          else begin
            Bitset.remove s i;
            model := List.filter (( <> ) i) !model
          end)
        ops;
      Bitset.elements s = List.sort compare !model
      && Bitset.cardinal s = List.length !model)

let bitset_union_prop =
  QCheck.Test.make ~name:"bitset union is commutative" ~count:200
    QCheck.(pair (list (int_bound 31)) (list (int_bound 31)))
    (fun (xs, ys) ->
      let a = Bitset.of_list 32 xs and b = Bitset.of_list 32 ys in
      let ab = Bitset.copy a and ba = Bitset.copy b in
      Bitset.union_into ab b;
      Bitset.union_into ba a;
      Bitset.equal ab ba)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p (int_of_float p)) [ 5.; 1.; 4.; 2.; 3. ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
      order := v :: !order;
      drain ()
  in
  drain ();
  check Alcotest.(list int) "sorted ascending" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_heap_empty () =
  let h = Heap.create () in
  check Alcotest.bool "pop empty" true (Heap.pop h = None);
  check Alcotest.bool "peek empty" true (Heap.peek h = None);
  check Alcotest.bool "is_empty" true (Heap.is_empty h)

let test_heap_peek () =
  let h = Heap.create () in
  Heap.push h 2. "b";
  Heap.push h 1. "a";
  check Alcotest.(option (pair (float 0.0) string)) "peek min" (Some (1., "a")) (Heap.peek h);
  check Alcotest.int "size" 2 (Heap.size h);
  Heap.clear h;
  check Alcotest.bool "cleared" true (Heap.is_empty h)

let heap_sort_prop =
  QCheck.Test.make ~name:"heap pops in priority order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.))
    (fun prios ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p p) prios;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare prios)

(* ------------------------------------------------------------------ *)
(* Union_find *)

let test_union_find () =
  let uf = Union_find.create 6 in
  check Alcotest.int "initial components" 6 (Union_find.count uf);
  check Alcotest.bool "union fresh" true (Union_find.union uf 0 1);
  check Alcotest.bool "union again" false (Union_find.union uf 1 0);
  check Alcotest.bool "same" true (Union_find.same uf 0 1);
  check Alcotest.bool "not same" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 3);
  check Alcotest.bool "transitive" true (Union_find.same uf 0 2);
  check Alcotest.int "components" 3 (Union_find.count uf)

let union_find_prop =
  QCheck.Test.make ~name:"union-find matches naive partition" ~count:100
    QCheck.(list (pair (int_bound 15) (int_bound 15)))
    (fun unions ->
      let uf = Union_find.create 16 in
      let naive = Array.init 16 (fun i -> i) in
      let rec naive_root i = if naive.(i) = i then i else naive_root naive.(i) in
      List.iter
        (fun (a, b) ->
          ignore (Union_find.union uf a b);
          let ra = naive_root a and rb = naive_root b in
          if ra <> rb then naive.(ra) <- rb)
        unions;
      List.for_all
        (fun (a, b) -> Union_find.same uf a b = (naive_root a = naive_root b))
        (List.concat_map (fun a -> List.map (fun b -> (a, b)) [ 0; 5; 10; 15 ]) [ 0; 3; 7; 15 ]))

(* ------------------------------------------------------------------ *)
(* Lru *)

module Lru = Mf_util.Lru

let test_lru_basic () =
  let l = Lru.create ~capacity:2 in
  check Alcotest.bool "fits" true (Lru.add l "a" 1 = None);
  check Alcotest.bool "fits" true (Lru.add l "b" 2 = None);
  check Alcotest.bool "find refreshes" true (Lru.find l "a" = Some 1);
  (* "b" is now least-recently-used and gets evicted *)
  check Alcotest.bool "evicts lru" true (Lru.add l "c" 3 = Some ("b", 2));
  check Alcotest.bool "evicted gone" false (Lru.mem l "b");
  check Alcotest.int "length" 2 (Lru.length l);
  check Alcotest.bool "mru order" true (List.map fst (Lru.to_list l) = [ "c"; "a" ])

let test_lru_replace_and_remove () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l "a" 1);
  check Alcotest.bool "replace, no eviction" true (Lru.add l "a" 10 = None);
  check Alcotest.bool "replaced value" true (Lru.peek l "a" = Some 10);
  check Alcotest.int "no duplicate node" 1 (Lru.length l);
  Lru.remove l "a";
  check Alcotest.int "removed" 0 (Lru.length l);
  Lru.remove l "a" (* idempotent *)

let lru_model_prop =
  QCheck.Test.make ~name:"lru matches naive model" ~count:200
    QCheck.(pair (int_range 1 4) (list (pair (int_bound 7) (int_bound 100))))
    (fun (cap, ops) ->
      let l = Lru.create ~capacity:cap in
      (* naive model: association list, most recent first *)
      let model = ref [] in
      List.iter
        (fun (k, v) ->
          ignore (Lru.add l k v);
          model := (k, v) :: List.remove_assoc k !model;
          if List.length !model > cap then
            model := List.filteri (fun i _ -> i < cap) !model)
        ops;
      Lru.to_list l = !model)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "fill/clear" `Quick test_bitset_fill_clear;
          Alcotest.test_case "set operations" `Quick test_bitset_setops;
          Alcotest.test_case "equality" `Quick test_bitset_equal;
          qt bitset_model_prop;
          qt bitset_union_prop;
        ] );
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "peek/size/clear" `Quick test_heap_peek;
          qt heap_sort_prop;
        ] );
      ( "union_find",
        [ Alcotest.test_case "basic" `Quick test_union_find; qt union_find_prop ] );
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "replace/remove" `Quick test_lru_replace_and_remove;
          qt lru_model_prop;
        ] );
    ]
