module Chip = Mf_arch.Chip
module Svg = Mf_viz.Svg
module Benchmarks = Mf_chips.Benchmarks
module Scheduler = Mf_sched.Scheduler
module Assays = Mf_bioassay.Assays

let check = Alcotest.check

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let well_formed svg =
  contains "<svg" svg && contains "</svg>" svg
  && (* every <rect/line/circle is self-closed; no stray ampersands *)
  not (contains "& " svg)

let test_chip_svg () =
  List.iter
    (fun name ->
      let chip = Option.get (Benchmarks.by_name name) in
      let svg = Svg.chip chip in
      check Alcotest.bool (name ^ " well-formed") true (well_formed svg);
      check Alcotest.bool (name ^ " draws channels") true (contains "<line" svg);
      check Alcotest.bool (name ^ " draws valves") true (contains "<rect" svg);
      check Alcotest.bool (name ^ " labels") true (contains (Chip.name chip) svg))
    Benchmarks.names

let test_dft_highlight () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  match Mf_testgen.Pathgen.generate ~node_limit:300 chip with
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  | Ok config ->
    let aug = Mf_testgen.Pathgen.apply chip config in
    let svg = Svg.chip aug in
    check Alcotest.bool "dft colour present" true (contains "#e67e22" svg);
    check Alcotest.bool "plain chip lacks dft colour" false
      (contains "#e67e22" (Svg.chip chip))

let test_control_svg () =
  let chip = Option.get (Benchmarks.by_name "ra30_chip") in
  let layout = Mf_control.Control.synthesize chip in
  let svg = Svg.control_layer chip layout in
  check Alcotest.bool "well-formed" true (well_formed svg);
  check Alcotest.bool "mentions ports" true (contains "control layer" svg)

let test_schedule_svg () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  match Scheduler.run chip app with
  | Error _ -> Alcotest.fail "schedule failed"
  | Ok s ->
    let svg = Svg.schedule app s in
    check Alcotest.bool "well-formed" true (well_formed svg);
    check Alcotest.bool "mentions makespan" true
      (contains (Printf.sprintf "makespan %d" s.Mf_sched.Schedule.makespan) svg);
    check Alcotest.bool "has op bars" true (contains "#27ae60" svg)

let test_trace_svg () =
  let svg = Svg.trace [ 230.; 225.; 220.; 220. ] in
  check Alcotest.bool "well-formed" true (well_formed svg);
  check Alcotest.bool "start label" true (contains "start 230" svg);
  check Alcotest.bool "final label" true (contains "final 220" svg);
  (* all-invalid trace *)
  let empty = Svg.trace ~invalid_threshold:100. [ 1e6; 1e6 ] in
  check Alcotest.bool "explains emptiness" true (contains "no valid scheme" empty)

let () =
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_viz"
    [
      ( "svg",
        [
          Alcotest.test_case "chip" `Quick test_chip_svg;
          Alcotest.test_case "dft highlight" `Quick test_dft_highlight;
          Alcotest.test_case "control layer" `Quick test_control_svg;
          Alcotest.test_case "schedule gantt" `Quick test_schedule_svg;
          Alcotest.test_case "pso trace" `Quick test_trace_svg;
        ] );
    ]
