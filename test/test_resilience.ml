(* Resilience contract of the solver pipeline: under injected faults and
   exhausted budgets the flow never crashes — it degrades (heuristic
   configurations, unshared fallback, best-so-far results) or reports a
   typed failure — and an interrupted, checkpointed run resumed later is
   bit-identical to an uninterrupted one. *)

module Chip = Mf_arch.Chip
module Op = Mf_bioassay.Op
module Seqgraph = Mf_bioassay.Seqgraph
module Benchmarks = Mf_chips.Benchmarks
module Assays = Mf_bioassay.Assays
module Pathgen = Mf_testgen.Pathgen
module Vectors = Mf_testgen.Vectors
module Codesign = Mfdft.Codesign
module Budget = Mf_util.Budget
module Chaos = Mf_util.Chaos
module Fail = Mf_util.Fail

let check = Alcotest.check

(* A small synthetic chip (one mixer, one heater, one detector, three
   ports on a transport ring) — the second architecture the degradation
   tests must survive, exercising a topology none of the benchmarks has. *)
let synthetic_chip () =
  let b = Chip.builder ~name:"synthetic_chip" ~width:6 ~height:4 in
  Chip.add_device b ~kind:Chip.Mixer ~x:2 ~y:0 ~name:"mixer";
  Chip.add_device b ~kind:Chip.Heater ~x:3 ~y:3 ~name:"heater";
  Chip.add_device b ~kind:Chip.Detector ~x:4 ~y:0 ~name:"detector";
  Chip.add_port b ~x:0 ~y:1 ~name:"in";
  Chip.add_port b ~x:5 ~y:2 ~name:"out";
  Chip.add_port b ~x:2 ~y:3 ~name:"reagent";
  Chip.add_channel b [ (1, 1); (2, 1); (3, 1); (4, 1); (4, 2); (3, 2); (2, 2); (1, 2); (1, 1) ];
  Chip.add_channel b [ (2, 1); (2, 0) ];
  Chip.add_channel b [ (3, 2); (3, 3) ];
  Chip.add_channel b [ (4, 1); (4, 0) ];
  Chip.add_channel b [ (0, 1); (1, 1) ];
  Chip.add_channel b [ (5, 2); (4, 2) ];
  Chip.add_channel b [ (2, 3); (2, 2) ];
  List.iter
    (fun (a, c) -> Chip.add_valve b a c)
    [
      ((0, 1), (1, 1)); ((5, 2), (4, 2)); ((2, 3), (2, 2));
      ((1, 1), (2, 1)); ((2, 1), (3, 1)); ((3, 1), (4, 1));
      ((4, 1), (4, 2)); ((3, 2), (2, 2)); ((2, 2), (1, 2)); ((1, 2), (1, 1));
    ];
  Chip.finish_exn b

let synthetic_assay () =
  Seqgraph.create_exn
    [
      { Op.op_id = 0; kind = Op.Mix; duration = 20; op_name = "mix" };
      { Op.op_id = 1; kind = Op.Heat; duration = 30; op_name = "heat" };
      { Op.op_id = 2; kind = Op.Detect; duration = 10; op_name = "read" };
    ]
    ~edges:[ (0, 1); (1, 2) ]

let tiny_params ~seed =
  {
    Codesign.quick_params with
    Codesign.pool_size = 2;
    ilp_node_limit = 300;
    outer = { Mf_pso.Pso.default_params with particles = 3; iterations = 3 };
    inner = { Mf_pso.Pso.default_params with particles = 3; iterations = 3 };
    seed;
  }

let fingerprint (r : Codesign.result) =
  ( r.Codesign.exec_final,
    r.Codesign.exec_original,
    r.Codesign.exec_dft_unshared,
    r.Codesign.exec_dft_no_pso,
    r.Codesign.n_dft_valves,
    r.Codesign.n_shared,
    r.Codesign.n_vectors_dft,
    r.Codesign.sharing,
    r.Codesign.trace,
    r.Codesign.evaluations )

let with_chaos rate f =
  Chaos.set (Some { Chaos.rate; seed = Chaos.default_seed });
  Fun.protect ~finally:(fun () -> Chaos.set None) f

let with_chaos_only site rate f =
  Chaos.set ~only:site (Some { Chaos.rate; seed = Chaos.default_seed });
  Fun.protect ~finally:(fun () -> Chaos.set None) f

(* ------------------------------------------------------------------ *)
(* Budget unit behaviour *)

let test_budget_basics () =
  check Alcotest.bool "unlimited never over" false (Budget.over (Some (Budget.unlimited ())));
  check Alcotest.bool "absent budget never over" false (Budget.over None);
  let b = Budget.of_seconds 0. in
  check Alcotest.bool "zero budget immediately over" true (Budget.over (Some b));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Budget.of_seconds: negative budget") (fun () ->
      ignore (Budget.of_seconds (-1.)));
  let c = Budget.of_seconds 3600. in
  check Alcotest.bool "fresh hour not over" false (Budget.over (Some c));
  Budget.cancel c;
  check Alcotest.bool "cancelled is over" true (Budget.over (Some c))

(* ------------------------------------------------------------------ *)
(* Chaos harness behaviour *)

let test_chaos_rates () =
  with_chaos 1.0 (fun () ->
      check Alcotest.bool "active" true (Chaos.active ());
      for _ = 1 to 10 do
        check Alcotest.bool "rate 1 always strikes" true (Chaos.strike Chaos.Simplex_iters)
      done);
  check Alcotest.bool "disabled never strikes" false (Chaos.strike Chaos.Simplex_iters);
  with_chaos 1e-12 (fun () ->
      (* astronomically unlikely to strike: the draw machinery itself *)
      check Alcotest.bool "rate ~0 practically never strikes" false
        (Chaos.strike Chaos.Ilp_nodes))

let test_chaos_counts () =
  with_chaos 1.0 (fun () ->
      Chaos.reset_counts ();
      ignore (Chaos.strike Chaos.Simplex_iters);
      ignore (Chaos.strike Chaos.Simplex_iters);
      ignore (Chaos.strike Chaos.Ilp_nodes);
      let n site = try List.assoc site (Chaos.strikes ()) with Not_found -> 0 in
      check Alcotest.int "simplex strikes" 2 (n Chaos.Simplex_iters);
      check Alcotest.int "ilp strikes" 1 (n Chaos.Ilp_nodes);
      check Alcotest.int "no worker strikes" 0 (n Chaos.Worker_delay);
      check Alcotest.int "no ilp-worker strikes" 0 (n Chaos.Ilp_worker))

let test_chaos_site_filter () =
  (* MFDFT_CHAOS=<site>:<rate> arms a single strike point *)
  with_chaos_only Chaos.Ilp_worker 1.0 (fun () ->
      check Alcotest.bool "filtered site strikes" true (Chaos.strike Chaos.Ilp_worker);
      check Alcotest.bool "other sites never strike" false (Chaos.strike Chaos.Simplex_iters);
      check Alcotest.bool "other sites never strike (2)" false (Chaos.strike Chaos.Ilp_nodes))

(* ------------------------------------------------------------------ *)
(* Worker failure under parallelism: a relaxation worker dying mid-batch
   must drain the batch and surface one typed outcome — and leave the
   domain pool reusable for the next solve *)

(* vertex cover on an odd cycle: the root LP optimum is all-0.5, and
   neither presolve nor cover separation can tighten pairwise x_i+x_j >= 1
   rows — so the search must branch, and worker relaxation tasks (only
   dispatched for non-root batches) are actually exercised.  (A single
   sum >= 6.5 row does not work here: the extended cover cut rounds it to
   sum >= 7 and the root comes back integral.) *)
let branching_model () =
  let module Ilp = Mf_ilp.Ilp in
  let ilp = Ilp.create () in
  let vars = Array.init 5 (fun _ -> Ilp.add_binary ~obj:1. ilp) in
  Array.iteri (fun i v -> Ilp.add_row ilp [ (1., v); (1., vars.((i + 1) mod 5)) ] Ilp.Ge 1.) vars;
  ilp

let test_ilp_worker_chaos_drains () =
  let module Ilp = Mf_ilp.Ilp in
  Mf_util.Domain_pool.with_pool ~jobs:4 (fun pool ->
      let failed =
        with_chaos_only Chaos.Ilp_worker 1.0 (fun () ->
            Ilp.solve ~pool (branching_model ()))
      in
      (match failed with
       | Ilp.Failed f ->
         check Alcotest.string "typed ilp-stage failure" "ilp" (Fail.stage_name f.Fail.stage)
       | Ilp.Optimal _ | Ilp.Feasible _ | Ilp.Infeasible | Ilp.Node_limit ->
         Alcotest.fail "expected a typed Failed outcome under ilp-worker chaos");
      (* chaos off, same pool: the batch drained cleanly and the pool works *)
      match Ilp.solve ~pool (branching_model ()) with
      | Ilp.Optimal _ -> ()
      | _ -> Alcotest.fail "pool unusable after a drained worker failure")

let test_ilp_worker_chaos_serial () =
  (* the same strike point fires on the inline (no-pool) path too, with the
     same typed outcome — so jobs=1 and jobs=N degrade identically *)
  let module Ilp = Mf_ilp.Ilp in
  with_chaos_only Chaos.Ilp_worker 1.0 (fun () ->
      match Ilp.solve (branching_model ()) with
      | Ilp.Failed f ->
        check Alcotest.string "typed ilp-stage failure" "ilp" (Fail.stage_name f.Fail.stage)
      | _ -> Alcotest.fail "expected a typed Failed outcome under ilp-worker chaos")

(* ------------------------------------------------------------------ *)
(* Typed failures *)

let test_fail_rendering () =
  let f = Fail.v ~elapsed:1.5 ~nodes:42 ~incumbent:"3 paths" Fail.Ilp "node budget exhausted" in
  let s = Fail.to_string f in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "names the stage" true (contains "ilp");
  check Alcotest.bool "carries the reason" true (contains "node budget exhausted");
  check Alcotest.bool "carries the node count" true (contains "42");
  check Alcotest.bool "carries the incumbent" true (contains "3 paths")

(* ------------------------------------------------------------------ *)
(* Degradation ladder: forced heuristic configuration *)

let test_pathgen_heuristic_fallback () =
  (* node_limit 0 starves the ILP outright: the greedy heuristic must
     still deliver a configuration flagged as degraded *)
  List.iter
    (fun chip ->
      match Pathgen.generate ~node_limit:0 chip with
      | Error f -> Alcotest.fail (Fail.to_string f)
      | Ok config ->
        check Alcotest.bool "flagged degraded" true config.Pathgen.degraded;
        check Alcotest.bool "still adds dft valves" true (config.Pathgen.added_edges <> []))
    [ Option.get (Benchmarks.by_name "ivd_chip"); synthetic_chip () ]

(* ------------------------------------------------------------------ *)
(* Codesign under injected faults: never crashes, always a valid suite *)

let chaos_codesign_case (label, chip, app, rate, seed) () =
  with_chaos rate (fun () ->
      match Codesign.run ~params:(tiny_params ~seed) chip app with
      | Error f ->
        Alcotest.fail
          (Printf.sprintf "%s: expected a degraded result, got failure: %s" label
             (Fail.to_string f))
      | Ok r ->
        check Alcotest.bool
          (Printf.sprintf "%s: suite valid on the shipped chip" label)
          true
          (Vectors.is_valid r.Codesign.shared r.Codesign.suite);
        if rate >= 1.0 then
          check Alcotest.bool
            (Printf.sprintf "%s: all-faults run is marked degraded" label)
            true (r.Codesign.degradations <> []))

let chaos_codesign_cases =
  [
    ("ivd 30%", Option.get (Benchmarks.by_name "ivd_chip"), Assays.ivd (), 0.3, 42);
    ("ivd 30% reseeded", Option.get (Benchmarks.by_name "ivd_chip"), Assays.ivd (), 0.3, 7);
    ("ivd all faults", Option.get (Benchmarks.by_name "ivd_chip"), Assays.ivd (), 1.0, 42);
    ("synthetic 30%", synthetic_chip (), synthetic_assay (), 0.3, 42);
    ("synthetic all faults", synthetic_chip (), synthetic_assay (), 1.0, 42);
  ]

(* ------------------------------------------------------------------ *)
(* Exhausted budget: the flow still ships a valid (degraded) result *)

let test_zero_budget_still_valid () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  let budget = Budget.of_seconds 0. in
  match Codesign.run ~params:(tiny_params ~seed:42) ~budget chip app with
  | Error f -> Alcotest.fail (Fail.to_string f)
  | Ok r ->
    check Alcotest.bool "suite valid" true (Vectors.is_valid r.Codesign.shared r.Codesign.suite);
    check Alcotest.bool "budget exhaustion recorded" true
      (List.mem Codesign.Budget_exhausted r.Codesign.degradations)

(* ------------------------------------------------------------------ *)
(* Kill/resume differential: interrupted-then-resumed ≡ uninterrupted *)

let test_checkpoint_resume_bit_identical () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  let params = tiny_params ~seed:42 in
  let path = Filename.temp_file "mfdft_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let uninterrupted =
        match Codesign.run ~params chip app with
        | Ok r -> fingerprint r
        | Error f -> Alcotest.fail (Fail.to_string f)
      in
      (* kill after 2 of the 3 outer iterations... *)
      (match
         Codesign.run ~params
           ~checkpoint:{ Codesign.path; every = 1; resume = false; stop_after = Some 2 }
           chip app
       with
      | Ok _ -> Alcotest.fail "stop_after should abort the run"
      | Error f ->
        check Alcotest.string "stop is a codesign-stage failure" "codesign"
          (Fail.stage_name f.Fail.stage));
      check Alcotest.bool "checkpoint written" true (Sys.file_exists path);
      (* ...then resume and finish *)
      let resumed =
        match
          Codesign.run ~params
            ~checkpoint:{ Codesign.path; every = 0; resume = true; stop_after = None }
            chip app
        with
        | Ok r -> fingerprint r
        | Error f -> Alcotest.fail (Fail.to_string f)
      in
      check Alcotest.bool "resumed run bit-identical to uninterrupted" true
        (uninterrupted = resumed))

let test_checkpoint_rejects_mismatched_seed () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  let path = Filename.temp_file "mfdft_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (match
         Codesign.run ~params:(tiny_params ~seed:42)
           ~checkpoint:{ Codesign.path; every = 1; resume = false; stop_after = Some 1 }
           chip app
       with
      | Ok _ -> Alcotest.fail "stop_after should abort the run"
      | Error _ -> ());
      match
        Codesign.run ~params:(tiny_params ~seed:43)
          ~checkpoint:{ Codesign.path; every = 0; resume = true; stop_after = None }
          chip app
      with
      | Ok _ -> Alcotest.fail "resume with a different seed must be refused"
      | Error f ->
        check Alcotest.string "typed codesign failure" "codesign"
          (Fail.stage_name f.Fail.stage))

let test_checkpoint_corrupt_file () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  let path = Filename.temp_file "mfdft_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a snapshot");
      match
        Codesign.run ~params:(tiny_params ~seed:42)
          ~checkpoint:{ Codesign.path; every = 0; resume = true; stop_after = None }
          chip app
      with
      | Ok _ -> Alcotest.fail "corrupt checkpoint must be refused"
      | Error f ->
        check Alcotest.string "typed codesign failure" "codesign"
          (Fail.stage_name f.Fail.stage))

let test_checkpoint_missing_file () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  let path = Filename.temp_file "mfdft_ckpt" ".bin" in
  Sys.remove path;
  match
    Codesign.run ~params:(tiny_params ~seed:42)
      ~checkpoint:{ Codesign.path; every = 0; resume = true; stop_after = None }
      chip app
  with
  | Ok _ -> Alcotest.fail "resume from a missing checkpoint must be refused, not restarted"
  | Error f ->
    check Alcotest.string "typed codesign failure" "codesign" (Fail.stage_name f.Fail.stage)

(* ------------------------------------------------------------------ *)

let () =
  (* the chaos cases manage injection themselves; start from a clean state
     even under MFDFT_CHAOS so the budget/checkpoint assertions hold *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_resilience"
    [
      ( "budget",
        [
          Alcotest.test_case "basics" `Quick test_budget_basics;
          Alcotest.test_case "zero budget still valid" `Slow test_zero_budget_still_valid;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "strike rates" `Quick test_chaos_rates;
          Alcotest.test_case "strike counters" `Quick test_chaos_counts;
          Alcotest.test_case "site filter" `Quick test_chaos_site_filter;
          Alcotest.test_case "ilp-worker drains the batch" `Quick test_ilp_worker_chaos_drains;
          Alcotest.test_case "ilp-worker inline path" `Quick test_ilp_worker_chaos_serial;
        ] );
      ( "typed failures",
        [ Alcotest.test_case "rendering" `Quick test_fail_rendering ] );
      ( "degradation",
        [ Alcotest.test_case "heuristic fallback" `Quick test_pathgen_heuristic_fallback ] );
      ( "chaos codesign",
        List.map
          (fun ((label, _, _, _, _) as case) ->
            Alcotest.test_case label `Slow (chaos_codesign_case case))
          chaos_codesign_cases );
      ( "checkpoint",
        [
          Alcotest.test_case "kill/resume bit-identical" `Slow
            test_checkpoint_resume_bit_identical;
          Alcotest.test_case "mismatched seed refused" `Slow
            test_checkpoint_rejects_mismatched_seed;
          Alcotest.test_case "corrupt file refused" `Quick test_checkpoint_corrupt_file;
          Alcotest.test_case "missing file refused" `Quick test_checkpoint_missing_file;
        ] );
    ]
