module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Vector = Mf_faults.Vector
module Pressure = Mf_faults.Pressure
module Fault = Mf_faults.Fault
module Coverage = Mf_faults.Coverage

let check = Alcotest.check

(* Straight-line chip: P0 -v0- n1 -v1- n2(Mixer? no device needed)... use
   P0 (0,0) -- (1,0) -- (2,0) -- (3,0) = P1 with valves on first and last
   edges, middle edge unvalved; plus a stub device for validation. *)
let line_chip () =
  let b = Chip.builder ~name:"line" ~width:4 ~height:2 in
  Chip.add_port b ~x:0 ~y:0 ~name:"P0";
  Chip.add_port b ~x:3 ~y:0 ~name:"P1";
  Chip.add_device b ~kind:Chip.Mixer ~x:1 ~y:1 ~name:"M";
  Chip.add_channel b [ (0, 0); (1, 0); (2, 0); (3, 0) ];
  Chip.add_channel b [ (1, 0); (1, 1) ];
  Chip.add_valve b (0, 0) (1, 0);
  Chip.add_valve b (2, 0) (3, 0);
  Chip.add_valve b (1, 0) (1, 1);
  Chip.finish_exn b

let edge chip a b = Option.get (Grid.edge_between_xy (Chip.grid chip) a b)
let node chip (x, y) = Grid.node (Chip.grid chip) ~x ~y

let line_path chip =
  [ edge chip (0, 0) (1, 0); edge chip (1, 0) (2, 0); edge chip (2, 0) (3, 0) ]

let test_fault_universe () =
  let chip = line_chip () in
  let faults = Fault.all chip in
  (* 4 channel edges (SA0) + 3 valves (SA1) *)
  check Alcotest.int "fault count" 7 (List.length faults)

let test_path_vector_reading () =
  let chip = line_chip () in
  let s = node chip (0, 0) and t = node chip (3, 0) in
  let vec = Vector.of_path chip ~source:s ~meters:[ t ] (line_path chip) in
  check Alcotest.bool "fault-free reads pressure" true (Pressure.reading chip vec);
  check Alcotest.bool "well formed" true (Pressure.well_formed chip vec);
  (* the side spur's valve is closed by the vector *)
  let spur = edge chip (1, 0) (1, 1) in
  check Alcotest.bool "spur closed" false
    (Pressure.conducts chip ~active_lines:vec.Vector.active_lines spur)

let test_path_detects_sa0 () =
  let chip = line_chip () in
  let s = node chip (0, 0) and t = node chip (3, 0) in
  let vec = Vector.of_path chip ~source:s ~meters:[ t ] (line_path chip) in
  List.iter
    (fun e ->
      check Alcotest.bool "sa0 on path detected" true
        (Pressure.detects chip vec (Fault.Stuck_at_0 e)))
    (line_path chip);
  (* blockage off-path is invisible to this vector *)
  let spur = edge chip (1, 0) (1, 1) in
  check Alcotest.bool "sa0 off path not detected" false
    (Pressure.detects chip vec (Fault.Stuck_at_0 spur))

let test_cut_vector () =
  let chip = line_chip () in
  let s = node chip (0, 0) and t = node chip (3, 0) in
  (* closing valve 0 separates the line *)
  let vec = Vector.of_cut chip ~source:s ~meters:[ t ] [ 0 ] in
  check Alcotest.bool "fault-free silent" true (Pressure.well_formed chip vec);
  check Alcotest.bool "leak detected" true (Pressure.detects chip vec (Fault.Stuck_at_1 0));
  (* valve 1 leaking does not matter when valve 0 holds *)
  check Alcotest.bool "other leak masked" false (Pressure.detects chip vec (Fault.Stuck_at_1 1))

let test_malformed_cut () =
  let chip = line_chip () in
  let s = node chip (0, 0) and t = node chip (3, 0) in
  (* closing only the spur valve does not separate source from meter *)
  let vec = Vector.of_cut chip ~source:s ~meters:[ t ] [ 2 ] in
  check Alcotest.bool "not well formed" false (Pressure.well_formed chip vec)

let test_sharing_masks_leak () =
  (* Fig. 6 scenario on a purpose-built chip: the only leak route from the
     cut valve to the meter runs through a DFT valve; once the two share a
     control line the leak is masked. *)
  let b = Chip.builder ~name:"fig6" ~width:4 ~height:2 in
  Chip.add_port b ~x:0 ~y:0 ~name:"P0";
  Chip.add_port b ~x:3 ~y:0 ~name:"P1";
  Chip.add_device b ~kind:Chip.Mixer ~x:1 ~y:1 ~name:"M";
  (* top line broken in the middle: (1,0)-(2,0) is free grid space *)
  Chip.add_channel b [ (0, 0); (1, 0) ];
  Chip.add_channel b [ (2, 0); (3, 0) ];
  (* detour through the bottom row keeps the chip connected *)
  Chip.add_channel b [ (1, 0); (1, 1); (2, 1); (2, 0) ];
  Chip.add_valve b (0, 0) (1, 0);
  Chip.add_valve b (2, 0) (3, 0);
  Chip.add_valve b (1, 1) (2, 1);
  let chip = Chip.finish_exn b in
  let grid = Chip.grid chip in
  let bridge = Option.get (Grid.edge_between_xy grid (1, 0) (2, 0)) in
  let aug = Chip.augment chip ~edges:[ bridge ] in
  let dft = (Option.get (Chip.valve_on aug bridge)).valve_id in
  let s = Grid.node grid ~x:0 ~y:0 and t = Grid.node grid ~x:3 ~y:0 in
  (* cut {v0, v2} isolates the source; v0's leak can only reach the meter
     over the DFT bridge *)
  let cut = [ 0; 2 ] in
  let vec = Vector.of_cut aug ~source:s ~meters:[ t ] cut in
  check Alcotest.bool "cut valid pre-sharing" true (Pressure.well_formed aug vec);
  check Alcotest.bool "leak at v0 detected pre-sharing" true
    (Pressure.detects aug vec (Fault.Stuck_at_1 0));
  let shared = Chip.with_sharing aug [ (dft, 0) ] in
  let vec' = Vector.of_cut shared ~source:s ~meters:[ t ] cut in
  check Alcotest.bool "cut still well-formed" true (Pressure.well_formed shared vec');
  check Alcotest.bool "leak at v0 masked by sharing" false
    (Pressure.detects shared vec' (Fault.Stuck_at_1 0))

let test_coverage_report () =
  let chip = line_chip () in
  let s = node chip (0, 0) and t = node chip (3, 0) in
  let path_vec = Vector.of_path chip ~source:s ~meters:[ t ] (line_path chip) in
  let spur_path =
    [ edge chip (0, 0) (1, 0); edge chip (1, 0) (1, 1) ]
  in
  let spur_vec =
    (* source P0 to the spur end: meter must be a port in reality, but the
       simulator accepts any observation node; coverage semantics only *)
    Vector.of_path chip ~source:s ~meters:[ node chip (1, 1) ] spur_path
  in
  let cut0 = Vector.of_cut chip ~source:s ~meters:[ t ] [ 0 ] in
  let cut1 =
    Vector.of_cut chip ~source:s ~meters:[ t ] [ 1; 2 ]
  in
  let report = Coverage.measure chip [ path_vec; spur_vec; cut0; cut1 ] in
  check Alcotest.int "malformed" 0 report.Coverage.malformed;
  check Alcotest.bool "sa1 of valve 2 undetected (dead-end spur)" true
    (List.mem 2 report.Coverage.sa1_undetected);
  check Alcotest.bool "ratio below one" true (Coverage.ratio report < 1.);
  check Alcotest.bool "not complete" false (Coverage.complete report)

let test_detect_symmetry () =
  (* detection is symmetric in source/meter: ports are interchangeable *)
  let chip = line_chip () in
  let s = node chip (0, 0) and t = node chip (3, 0) in
  let forward = Vector.of_path chip ~source:s ~meters:[ t ] (line_path chip) in
  let backward = Vector.of_path chip ~source:t ~meters:[ s ] (List.rev (line_path chip)) in
  List.iter
    (fun f ->
      check Alcotest.bool "same verdict" (Pressure.detects chip forward f)
        (Pressure.detects chip backward f))
    (Fault.all chip)

let test_leak_semantics () =
  let chip = line_chip () in
  let s = node chip (0, 0) and t = node chip (3, 0) in
  (* cut on valve 0: its line is pressurised; a leak at valve 0 floods the
     line from the seat to the meter (everything else open) *)
  let vec = Vector.of_cut chip ~source:s ~meters:[ t ] [ 0 ] in
  check Alcotest.bool "leak at cut valve detected" true
    (Pressure.detects chip vec (Fault.Leak 0));
  (* valve 1's line is inactive in that vector: no control pressure, no leak *)
  check Alcotest.bool "inactive line cannot leak" false
    (Pressure.detects chip vec (Fault.Leak 1));
  (* a path vector keeps its meters pressurised anyway: leak invisible *)
  let path_vec = Vector.of_path chip ~source:s ~meters:[ t ] (line_path chip) in
  check Alcotest.bool "leak invisible on a conducting path" false
    (Pressure.detects chip path_vec (Fault.Leak 2))

let test_leak_universe () =
  let chip = line_chip () in
  check Alcotest.int "universe grows by one per valve"
    (List.length (Fault.all chip) + Chip.n_valves chip)
    (List.length (Fault.all_with_leaks chip))

let test_leak_coverage_via_cuts () =
  (* the cut that proves a valve can close also proves its membrane does
     not leak: same vector, same observation *)
  let chip = line_chip () in
  let s = node chip (0, 0) and t = node chip (3, 0) in
  let cut0 = Vector.of_cut chip ~source:s ~meters:[ t ] [ 0 ] in
  let cut1 = Vector.of_cut chip ~source:s ~meters:[ t ] [ 1; 2 ] in
  let report = Coverage.measure ~include_leaks:true chip [ cut0; cut1 ] in
  (* valve 2 guards a dead-end spur: its leak floods only the spur *)
  check Alcotest.(list int) "only the spur valve's leak escapes" [ 2 ]
    report.Coverage.leak_undetected

let test_exhaustive_benchmark_coverage () =
  (* every single stuck-at fault on the smallest benchmark chip, against the
     generated single-source single-meter test program — exhaustive, unlike
     the sampled properties in test_props.ml *)
  let chip = Option.get (Mf_chips.Benchmarks.by_name "ivd_chip") in
  let config =
    match Mf_testgen.Pathgen.generate ~node_limit:500 chip with
    | Ok c -> c
    | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  in
  let aug = Mf_testgen.Pathgen.apply chip config in
  let cuts =
    Mf_testgen.Cutgen.generate aug ~source:config.Mf_testgen.Pathgen.src_port
      ~meter:config.Mf_testgen.Pathgen.dst_port
  in
  let suite = Mf_testgen.Vectors.of_config config cuts in
  let suite =
    if Mf_testgen.Vectors.is_valid aug suite then suite else Mf_testgen.Repair.run aug suite
  in
  let vectors = Mf_testgen.Vectors.vectors aug suite in
  List.iter
    (fun v -> check Alcotest.bool "vector well formed" true (Pressure.well_formed aug v))
    vectors;
  let faults = Fault.all aug in
  let sa0 = List.filter (function Fault.Stuck_at_0 _ -> true | _ -> false) faults in
  let sa1 = List.filter (function Fault.Stuck_at_1 _ -> true | _ -> false) faults in
  check Alcotest.bool "sa0 universe covers every channel edge" true (List.length sa0 > 0);
  check Alcotest.int "sa1 universe covers every valve" (Chip.n_valves aug) (List.length sa1);
  List.iter
    (fun fault ->
      let detected = List.exists (fun v -> Pressure.detects aug v fault) vectors in
      check Alcotest.bool
        (Format.asprintf "detected: %a" (Fault.pp aug) fault)
        true detected)
    (sa0 @ sa1)

let () =
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_faults"
    [
      ( "pressure",
        [
          Alcotest.test_case "fault universe" `Quick test_fault_universe;
          Alcotest.test_case "path vector reading" `Quick test_path_vector_reading;
          Alcotest.test_case "path detects sa0" `Quick test_path_detects_sa0;
          Alcotest.test_case "cut vector" `Quick test_cut_vector;
          Alcotest.test_case "malformed cut" `Quick test_malformed_cut;
          Alcotest.test_case "sharing masks leak (Fig 6)" `Quick test_sharing_masks_leak;
          Alcotest.test_case "coverage report" `Quick test_coverage_report;
          Alcotest.test_case "detection symmetry" `Quick test_detect_symmetry;
          Alcotest.test_case "leak semantics" `Quick test_leak_semantics;
          Alcotest.test_case "leak universe" `Quick test_leak_universe;
          Alcotest.test_case "leak coverage via cuts" `Quick test_leak_coverage_via_cuts;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "every stuck-at fault on ivd_chip detected" `Slow
            test_exhaustive_benchmark_coverage;
        ] );
    ]
