module Ilp = Mf_ilp.Ilp
module Rng = Mf_util.Rng
module Budget = Mf_util.Budget
module Domain_pool = Mf_util.Domain_pool

let check = Alcotest.check
let feps = Alcotest.float 1e-6

let solve_exn ?lazy_cuts ?upper_bound ilp =
  match Ilp.solve ?lazy_cuts ?upper_bound ilp with
  | Ilp.Optimal s -> s
  | Ilp.Feasible _ -> Alcotest.fail "truncated"
  | Ilp.Infeasible -> Alcotest.fail "infeasible"
  | Ilp.Node_limit -> Alcotest.fail "node limit"
  | Ilp.Failed f -> Alcotest.fail (Mf_util.Fail.to_string f)

let test_knapsack () =
  (* max 10a+6b+4c st a+b+c <= 2 *)
  let ilp = Ilp.create () in
  let a = Ilp.add_binary ~obj:(-10.) ilp in
  let b = Ilp.add_binary ~obj:(-6.) ilp in
  let c = Ilp.add_binary ~obj:(-4.) ilp in
  Ilp.add_row ilp [ (1., a); (1., b); (1., c) ] Ilp.Le 2.;
  let s = solve_exn ilp in
  check feps "objective" (-16.) s.objective;
  check feps "a" 1. s.values.(a);
  check feps "b" 1. s.values.(b);
  check feps "c" 0. s.values.(c)

let test_rounding_forced () =
  (* LP relaxation is fractional (x=y=0.75); integrality forces obj 2 *)
  let ilp = Ilp.create () in
  let a = Ilp.add_binary ~obj:1. ilp in
  let b = Ilp.add_binary ~obj:1. ilp in
  Ilp.add_row ilp [ (2., a); (2., b) ] Ilp.Ge 3.;
  let s = solve_exn ilp in
  check feps "objective" 2. s.objective

let test_set_cover () =
  (* universe {1..4}, sets {1,2} {2,3} {3,4} {1,4}; optimal cover = 2 sets *)
  let ilp = Ilp.create () in
  let s1 = Ilp.add_binary ~obj:1. ilp in
  let s2 = Ilp.add_binary ~obj:1. ilp in
  let s3 = Ilp.add_binary ~obj:1. ilp in
  let s4 = Ilp.add_binary ~obj:1. ilp in
  Ilp.add_row ilp [ (1., s1); (1., s4) ] Ilp.Ge 1.;
  Ilp.add_row ilp [ (1., s1); (1., s2) ] Ilp.Ge 1.;
  Ilp.add_row ilp [ (1., s2); (1., s3) ] Ilp.Ge 1.;
  Ilp.add_row ilp [ (1., s3); (1., s4) ] Ilp.Ge 1.;
  let s = solve_exn ilp in
  check feps "two sets" 2. s.objective

let test_infeasible () =
  let ilp = Ilp.create () in
  let a = Ilp.add_binary ilp in
  let b = Ilp.add_binary ilp in
  Ilp.add_row ilp [ (1., a); (1., b) ] Ilp.Ge 3.;
  check Alcotest.bool "infeasible" true (Ilp.solve ilp = Ilp.Infeasible)

let test_continuous_mix () =
  (* binary a gates continuous y <= 5a; max y - a cost *)
  let ilp = Ilp.create () in
  let a = Ilp.add_binary ~obj:2. ilp in
  let y = Ilp.add_continuous ~upper:5. ~obj:(-1.) ilp in
  Ilp.add_row ilp [ (1., y); ((-5.), a) ] Ilp.Le 0.;
  let s = solve_exn ilp in
  check feps "gate open" 1. s.values.(a);
  check feps "y at cap" 5. s.values.(y);
  check feps "objective" (-3.) s.objective

let test_lazy_cuts () =
  let ilp = Ilp.create () in
  let x = Ilp.add_binary ~obj:1. ilp in
  let y = Ilp.add_binary ~obj:2. ilp in
  let z = Ilp.add_binary ~obj:3. ilp in
  Ilp.add_row ilp [ (1., x); (1., y); (1., z) ] Ilp.Ge 1.;
  let rejected = ref 0 in
  let cuts (s : Ilp.solution) =
    if s.values.(z) < 0.5 then begin
      incr rejected;
      [ ([ (1., z) ], Ilp.Ge, 1.) ]
    end
    else []
  in
  let s = solve_exn ~lazy_cuts:cuts ilp in
  check feps "z forced" 1. s.values.(z);
  check feps "objective" 3. s.objective;
  check Alcotest.bool "cut fired" true (!rejected >= 1)

let test_upper_bound_prunes () =
  let ilp = Ilp.create () in
  let a = Ilp.add_binary ~obj:1. ilp in
  Ilp.add_row ilp [ (1., a) ] Ilp.Ge 1.;
  (* optimum costs 1; an upper bound of 0.5 hides it *)
  check Alcotest.bool "pruned away" true (Ilp.solve ~upper_bound:0.5 ilp = Ilp.Infeasible);
  (* a generous bound leaves it visible *)
  match Ilp.solve ~upper_bound:10. ilp with
  | Ilp.Optimal s -> check feps "found" 1. s.objective
  | Ilp.Feasible _ | Ilp.Infeasible | Ilp.Node_limit | Ilp.Failed _ ->
    Alcotest.fail "expected optimal"

let test_node_limit () =
  let ilp = Ilp.create () in
  let vars = List.init 12 (fun _ -> Ilp.add_binary ~obj:1. ilp) in
  Ilp.add_row ilp (List.map (fun v -> (1., v)) vars) Ilp.Ge 6.5;
  (match Ilp.solve ~node_limit:1 ilp with
   | Ilp.Node_limit | Ilp.Feasible _ -> ()
   | Ilp.Optimal _ | Ilp.Infeasible | Ilp.Failed _ -> Alcotest.fail "expected truncation");
  check Alcotest.bool "nodes counted" true (Ilp.nodes_explored ilp >= 1)

let test_equality_row () =
  let ilp = Ilp.create () in
  let a = Ilp.add_binary ~obj:(-3.) ilp in
  let b = Ilp.add_binary ~obj:(-5.) ilp in
  let c = Ilp.add_binary ~obj:(-1.) ilp in
  Ilp.add_row ilp [ (1., a); (1., b); (1., c) ] Ilp.Eq 2.;
  let s = solve_exn ilp in
  check feps "pick the two best" (-8.) s.objective

(* random set-cover instances: compare against exhaustive enumeration *)
let random_cover_prop =
  QCheck.Test.make ~name:"ILP matches brute force on random covers" ~count:40 QCheck.int
    (fun seed ->
      let rng = Rng.create ~seed:(abs seed) in
      let n_sets = 3 + Rng.int rng 5 in
      let n_items = 2 + Rng.int rng 4 in
      let membership = Array.init n_sets (fun _ -> Array.init n_items (fun _ -> Rng.bool rng)) in
      let cost = Array.init n_sets (fun _ -> 1 + Rng.int rng 5) in
      let covers subset item = List.exists (fun s -> membership.(s).(item)) subset in
      let feasible subset = List.init n_items Fun.id |> List.for_all (covers subset) in
      let best = ref max_int in
      for mask = 0 to (1 lsl n_sets) - 1 do
        let subset = List.filter (fun s -> mask land (1 lsl s) <> 0) (List.init n_sets Fun.id) in
        if feasible subset then begin
          let c = List.fold_left (fun acc s -> acc + cost.(s)) 0 subset in
          if c < !best then best := c
        end
      done;
      let ilp = Ilp.create () in
      let vars = Array.init n_sets (fun s -> Ilp.add_binary ~obj:(float_of_int cost.(s)) ilp) in
      for item = 0 to n_items - 1 do
        let terms =
          List.init n_sets Fun.id
          |> List.filter_map (fun s -> if membership.(s).(item) then Some (1., vars.(s)) else None)
        in
        if terms = [] then Ilp.add_row ilp [ (1., vars.(0)) ] Ilp.Ge 2. (* force infeasible *)
        else Ilp.add_row ilp terms Ilp.Ge 1.
      done;
      match Ilp.solve ilp with
      | Ilp.Optimal s -> !best < max_int && abs_float (s.objective -. float_of_int !best) < 1e-6
      | Ilp.Infeasible -> !best = max_int
      | Ilp.Feasible _ | Ilp.Node_limit | Ilp.Failed _ -> false)

(* ------------------------------------------------------------------ *)
(* Parallel differential: the batched search must return bit-identical
   outcome, solution and run_stats for any job count.  Random boxed 0-1
   models with no-good lazy cuts exercise the trickiest interleaving (cut
   installation while a batch is in flight). *)

let random_model rng =
  let ilp = Ilp.create () in
  let n = 5 + Rng.int rng 6 in
  let vars =
    Array.init n (fun _ -> Ilp.add_binary ~obj:(float_of_int (Rng.int rng 11 - 5)) ilp)
  in
  let n_rows = 2 + Rng.int rng n in
  for _ = 1 to n_rows do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Rng.bool rng then
               Some
                 ( float_of_int (1 + Rng.int rng 3) *. (if Rng.bool rng then 1. else -1.),
                   v )
             else None)
    in
    let rel = if Rng.bool rng then Ilp.Le else Ilp.Ge in
    let rhs = float_of_int (Rng.int rng 5 - 1) in
    if terms <> [] then Ilp.add_row ilp terms rel rhs
  done;
  (ilp, vars)

(* reject the first [max_fired] integral candidates outright with a no-good
   cut — a worst-case lazy callback that forces re-queues mid-batch *)
let no_good_cuts vars fired max_fired (s : Ilp.solution) =
  if !fired >= max_fired then []
  else begin
    incr fired;
    let ones = Array.to_list vars |> List.filter (fun v -> s.Ilp.values.(v) > 0.5) in
    let terms =
      Array.to_list vars
      |> List.map (fun v -> ((if s.Ilp.values.(v) > 0.5 then -1. else 1.), v))
    in
    [ (terms, Ilp.Ge, 1. -. float_of_int (List.length ones)) ]
  end

type outcome_fp =
  | Fp_optimal of float * float list
  | Fp_feasible of float * float list
  | Fp_infeasible
  | Fp_node_limit
  | Fp_failed of string

let fp outcome =
  match (outcome : Ilp.outcome) with
  | Ilp.Optimal s -> Fp_optimal (s.Ilp.objective, Array.to_list s.Ilp.values)
  | Ilp.Feasible s -> Fp_feasible (s.Ilp.objective, Array.to_list s.Ilp.values)
  | Ilp.Infeasible -> Fp_infeasible
  | Ilp.Node_limit -> Fp_node_limit
  | Ilp.Failed f -> Fp_failed (Mf_util.Fail.stage_name f.Mf_util.Fail.stage)

(* solve a fresh instance of the model (solves mutate the builder with
   installed cuts, so each run rebuilds from the seed) *)
let run_once ?(max_fired = 2) ~seed ~pool ~cancel_after ?presolve ?cuts () =
  let rng = Rng.create ~seed in
  let ilp, vars = random_model rng in
  let fired = ref 0 in
  let budget = Budget.unlimited () in
  let lazy_cuts s =
    let cs = no_good_cuts vars fired max_fired s in
    (match cancel_after with
     | Some k when !fired >= k -> Budget.cancel budget
     | Some _ | None -> ());
    cs
  in
  let outcome =
    Ilp.solve ~node_limit:2_000 ~budget ~lazy_cuts ?presolve ?cuts ?pool ilp
  in
  (fp outcome, Ilp.last_stats ilp)

let jobs_differential_prop =
  QCheck.Test.make ~name:"jobs=1 = jobs=4 bit-identical (outcome + run_stats)" ~count:50
    QCheck.small_nat (fun seed ->
      let serial = run_once ~seed ~pool:None ~cancel_after:None () in
      let parallel =
        Domain_pool.with_pool ~jobs:4 (fun p ->
            run_once ~seed ~pool:(Some p) ~cancel_after:None ())
      in
      serial = parallel)

let budget_truncation_differential_prop =
  (* cancelling the budget from inside the lazy-cut callback truncates the
     search at a point that only depends on the trajectory — so even the
     truncated outcome and its effort stats must match across job counts *)
  QCheck.Test.make ~name:"budget-expiry truncation identical across jobs" ~count:30
    QCheck.small_nat (fun seed ->
      let serial = run_once ~seed ~pool:None ~cancel_after:(Some 1) () in
      let parallel =
        Domain_pool.with_pool ~jobs:4 (fun p ->
            run_once ~seed ~pool:(Some p) ~cancel_after:(Some 1) ())
      in
      serial = parallel)

let ablation_objective_prop =
  (* presolve and cover cuts change effort, never results: outcome class and
     optimal objective agree with each pass disabled.  No lazy cuts here —
     a no-good callback rejects whichever candidate the trajectory reaches
     first, so with it the four runs would (legitimately) solve different
     final models. *)
  QCheck.Test.make ~name:"presolve/cuts on-vs-off: identical objectives" ~count:40
    QCheck.small_nat (fun seed ->
      let objective_of = function
        | Fp_optimal (o, _) -> Some o
        | Fp_feasible _ | Fp_infeasible | Fp_node_limit | Fp_failed _ -> None
      in
      let class_of = function
        | Fp_optimal _ -> 0
        | Fp_feasible _ -> 1
        | Fp_infeasible -> 2
        | Fp_node_limit -> 3
        | Fp_failed _ -> 4
      in
      let runs =
        [
          run_once ~max_fired:0 ~seed ~pool:None ~cancel_after:None ();
          run_once ~max_fired:0 ~seed ~pool:None ~cancel_after:None ~presolve:false ();
          run_once ~max_fired:0 ~seed ~pool:None ~cancel_after:None ~cuts:false ();
          run_once ~max_fired:0 ~seed ~pool:None ~cancel_after:None ~presolve:false
            ~cuts:false ();
        ]
      in
      let o0, _ = List.hd runs in
      List.for_all
        (fun (o, _) ->
          class_of o = class_of o0
          &&
          match (objective_of o, objective_of o0) with
          | Some a, Some b -> abs_float (a -. b) < 1e-6
          | None, None -> true
          | Some _, None | None, Some _ -> false)
        runs)

let upper_bound_random_prop =
  (* the per-solve cutoff row must behave exactly like incumbent priming:
     a bound above the optimum leaves it visible, one below hides it, and
     the builder stays reusable afterwards *)
  QCheck.Test.make ~name:"cutoff row = incumbent priming on random models" ~count:30
    QCheck.small_nat (fun seed ->
      match run_once ~max_fired:0 ~seed ~pool:None ~cancel_after:None () with
      | Fp_optimal (opt, _), _ ->
        let rng = Rng.create ~seed in
        let ilp, _ = random_model rng in
        (match Ilp.solve ~upper_bound:(opt +. 0.5) ilp with
         | Ilp.Optimal s when abs_float (s.Ilp.objective -. opt) < 1e-6 ->
           (* same builder, re-solved with the bound below the optimum *)
           Ilp.solve ~upper_bound:(opt -. 0.5) ilp = Ilp.Infeasible
         | _ -> false)
      | _ -> QCheck.assume_fail ())

let () =
  let qt = QCheck_alcotest.to_alcotest in
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_ilp"
    [
      ( "branch-and-bound",
        [
          Alcotest.test_case "knapsack" `Quick test_knapsack;
          Alcotest.test_case "fractional relaxation" `Quick test_rounding_forced;
          Alcotest.test_case "set cover" `Quick test_set_cover;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "continuous mix" `Quick test_continuous_mix;
          Alcotest.test_case "lazy cuts" `Quick test_lazy_cuts;
          Alcotest.test_case "upper bound pruning" `Quick test_upper_bound_prunes;
          Alcotest.test_case "node limit" `Quick test_node_limit;
          Alcotest.test_case "equality row" `Quick test_equality_row;
          qt random_cover_prop;
        ] );
      ( "parallel differential",
        [
          qt jobs_differential_prop;
          qt budget_truncation_differential_prop;
          qt ablation_objective_prop;
          qt upper_bound_random_prop;
        ] );
    ]
