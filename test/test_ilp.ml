module Ilp = Mf_ilp.Ilp
module Rng = Mf_util.Rng

let check = Alcotest.check
let feps = Alcotest.float 1e-6

let solve_exn ?lazy_cuts ?upper_bound ilp =
  match Ilp.solve ?lazy_cuts ?upper_bound ilp with
  | Ilp.Optimal s -> s
  | Ilp.Feasible _ -> Alcotest.fail "truncated"
  | Ilp.Infeasible -> Alcotest.fail "infeasible"
  | Ilp.Node_limit -> Alcotest.fail "node limit"
  | Ilp.Failed f -> Alcotest.fail (Mf_util.Fail.to_string f)

let test_knapsack () =
  (* max 10a+6b+4c st a+b+c <= 2 *)
  let ilp = Ilp.create () in
  let a = Ilp.add_binary ~obj:(-10.) ilp in
  let b = Ilp.add_binary ~obj:(-6.) ilp in
  let c = Ilp.add_binary ~obj:(-4.) ilp in
  Ilp.add_row ilp [ (1., a); (1., b); (1., c) ] Ilp.Le 2.;
  let s = solve_exn ilp in
  check feps "objective" (-16.) s.objective;
  check feps "a" 1. s.values.(a);
  check feps "b" 1. s.values.(b);
  check feps "c" 0. s.values.(c)

let test_rounding_forced () =
  (* LP relaxation is fractional (x=y=0.75); integrality forces obj 2 *)
  let ilp = Ilp.create () in
  let a = Ilp.add_binary ~obj:1. ilp in
  let b = Ilp.add_binary ~obj:1. ilp in
  Ilp.add_row ilp [ (2., a); (2., b) ] Ilp.Ge 3.;
  let s = solve_exn ilp in
  check feps "objective" 2. s.objective

let test_set_cover () =
  (* universe {1..4}, sets {1,2} {2,3} {3,4} {1,4}; optimal cover = 2 sets *)
  let ilp = Ilp.create () in
  let s1 = Ilp.add_binary ~obj:1. ilp in
  let s2 = Ilp.add_binary ~obj:1. ilp in
  let s3 = Ilp.add_binary ~obj:1. ilp in
  let s4 = Ilp.add_binary ~obj:1. ilp in
  Ilp.add_row ilp [ (1., s1); (1., s4) ] Ilp.Ge 1.;
  Ilp.add_row ilp [ (1., s1); (1., s2) ] Ilp.Ge 1.;
  Ilp.add_row ilp [ (1., s2); (1., s3) ] Ilp.Ge 1.;
  Ilp.add_row ilp [ (1., s3); (1., s4) ] Ilp.Ge 1.;
  let s = solve_exn ilp in
  check feps "two sets" 2. s.objective

let test_infeasible () =
  let ilp = Ilp.create () in
  let a = Ilp.add_binary ilp in
  let b = Ilp.add_binary ilp in
  Ilp.add_row ilp [ (1., a); (1., b) ] Ilp.Ge 3.;
  check Alcotest.bool "infeasible" true (Ilp.solve ilp = Ilp.Infeasible)

let test_continuous_mix () =
  (* binary a gates continuous y <= 5a; max y - a cost *)
  let ilp = Ilp.create () in
  let a = Ilp.add_binary ~obj:2. ilp in
  let y = Ilp.add_continuous ~upper:5. ~obj:(-1.) ilp in
  Ilp.add_row ilp [ (1., y); ((-5.), a) ] Ilp.Le 0.;
  let s = solve_exn ilp in
  check feps "gate open" 1. s.values.(a);
  check feps "y at cap" 5. s.values.(y);
  check feps "objective" (-3.) s.objective

let test_lazy_cuts () =
  let ilp = Ilp.create () in
  let x = Ilp.add_binary ~obj:1. ilp in
  let y = Ilp.add_binary ~obj:2. ilp in
  let z = Ilp.add_binary ~obj:3. ilp in
  Ilp.add_row ilp [ (1., x); (1., y); (1., z) ] Ilp.Ge 1.;
  let rejected = ref 0 in
  let cuts (s : Ilp.solution) =
    if s.values.(z) < 0.5 then begin
      incr rejected;
      [ ([ (1., z) ], Ilp.Ge, 1.) ]
    end
    else []
  in
  let s = solve_exn ~lazy_cuts:cuts ilp in
  check feps "z forced" 1. s.values.(z);
  check feps "objective" 3. s.objective;
  check Alcotest.bool "cut fired" true (!rejected >= 1)

let test_upper_bound_prunes () =
  let ilp = Ilp.create () in
  let a = Ilp.add_binary ~obj:1. ilp in
  Ilp.add_row ilp [ (1., a) ] Ilp.Ge 1.;
  (* optimum costs 1; an upper bound of 0.5 hides it *)
  check Alcotest.bool "pruned away" true (Ilp.solve ~upper_bound:0.5 ilp = Ilp.Infeasible);
  (* a generous bound leaves it visible *)
  match Ilp.solve ~upper_bound:10. ilp with
  | Ilp.Optimal s -> check feps "found" 1. s.objective
  | Ilp.Feasible _ | Ilp.Infeasible | Ilp.Node_limit | Ilp.Failed _ ->
    Alcotest.fail "expected optimal"

let test_node_limit () =
  let ilp = Ilp.create () in
  let vars = List.init 12 (fun _ -> Ilp.add_binary ~obj:1. ilp) in
  Ilp.add_row ilp (List.map (fun v -> (1., v)) vars) Ilp.Ge 6.5;
  (match Ilp.solve ~node_limit:1 ilp with
   | Ilp.Node_limit | Ilp.Feasible _ -> ()
   | Ilp.Optimal _ | Ilp.Infeasible | Ilp.Failed _ -> Alcotest.fail "expected truncation");
  check Alcotest.bool "nodes counted" true (Ilp.nodes_explored ilp >= 1)

let test_equality_row () =
  let ilp = Ilp.create () in
  let a = Ilp.add_binary ~obj:(-3.) ilp in
  let b = Ilp.add_binary ~obj:(-5.) ilp in
  let c = Ilp.add_binary ~obj:(-1.) ilp in
  Ilp.add_row ilp [ (1., a); (1., b); (1., c) ] Ilp.Eq 2.;
  let s = solve_exn ilp in
  check feps "pick the two best" (-8.) s.objective

(* random set-cover instances: compare against exhaustive enumeration *)
let random_cover_prop =
  QCheck.Test.make ~name:"ILP matches brute force on random covers" ~count:40 QCheck.int
    (fun seed ->
      let rng = Rng.create ~seed:(abs seed) in
      let n_sets = 3 + Rng.int rng 5 in
      let n_items = 2 + Rng.int rng 4 in
      let membership = Array.init n_sets (fun _ -> Array.init n_items (fun _ -> Rng.bool rng)) in
      let cost = Array.init n_sets (fun _ -> 1 + Rng.int rng 5) in
      let covers subset item = List.exists (fun s -> membership.(s).(item)) subset in
      let feasible subset = List.init n_items Fun.id |> List.for_all (covers subset) in
      let best = ref max_int in
      for mask = 0 to (1 lsl n_sets) - 1 do
        let subset = List.filter (fun s -> mask land (1 lsl s) <> 0) (List.init n_sets Fun.id) in
        if feasible subset then begin
          let c = List.fold_left (fun acc s -> acc + cost.(s)) 0 subset in
          if c < !best then best := c
        end
      done;
      let ilp = Ilp.create () in
      let vars = Array.init n_sets (fun s -> Ilp.add_binary ~obj:(float_of_int cost.(s)) ilp) in
      for item = 0 to n_items - 1 do
        let terms =
          List.init n_sets Fun.id
          |> List.filter_map (fun s -> if membership.(s).(item) then Some (1., vars.(s)) else None)
        in
        if terms = [] then Ilp.add_row ilp [ (1., vars.(0)) ] Ilp.Ge 2. (* force infeasible *)
        else Ilp.add_row ilp terms Ilp.Ge 1.
      done;
      match Ilp.solve ilp with
      | Ilp.Optimal s -> !best < max_int && abs_float (s.objective -. float_of_int !best) < 1e-6
      | Ilp.Infeasible -> !best = max_int
      | Ilp.Feasible _ | Ilp.Node_limit | Ilp.Failed _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_ilp"
    [
      ( "branch-and-bound",
        [
          Alcotest.test_case "knapsack" `Quick test_knapsack;
          Alcotest.test_case "fractional relaxation" `Quick test_rounding_forced;
          Alcotest.test_case "set cover" `Quick test_set_cover;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "continuous mix" `Quick test_continuous_mix;
          Alcotest.test_case "lazy cuts" `Quick test_lazy_cuts;
          Alcotest.test_case "upper bound pruning" `Quick test_upper_bound_prunes;
          Alcotest.test_case "node limit" `Quick test_node_limit;
          Alcotest.test_case "equality row" `Quick test_equality_row;
          qt random_cover_prop;
        ] );
    ]
