module Chip = Mf_arch.Chip
module Benchmarks = Mf_chips.Benchmarks
module Bitset = Mf_util.Bitset
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse

let check = Alcotest.check

let count_kind chip kind =
  Array.fold_left (fun n (d : Chip.device) -> if d.kind = kind then n + 1 else n) 0
    (Chip.devices chip)

(* published resource counts (Table 1 row labels) *)
let resource_expectations =
  [
    ("ivd_chip", 3, 2, 12, 4);
    ("ra30_chip", 2, 3, 16, 4);
    ("mrna_chip", 3, 1, 28, 3);
  ]

let test_resource_counts () =
  List.iter
    (fun (name, mixers, detectors, valves, ports) ->
      let chip = Option.get (Benchmarks.by_name name) in
      check Alcotest.int (name ^ " mixers") mixers (count_kind chip Chip.Mixer);
      check Alcotest.int (name ^ " detectors") detectors (count_kind chip Chip.Detector);
      check Alcotest.int (name ^ " valves") valves (Chip.n_valves chip);
      check Alcotest.int (name ^ " ports") ports (Array.length (Chip.ports chip));
      check Alcotest.int (name ^ " controls = valves") valves (Chip.n_controls chip))
    resource_expectations

let test_no_dft_initially () =
  List.iter
    (fun name ->
      let chip = Option.get (Benchmarks.by_name name) in
      check Alcotest.(list int) (name ^ " pristine") [] (Chip.dft_edges chip);
      check Alcotest.int (name ^ " all original")
        (Chip.n_valves chip) (Chip.n_original_valves chip))
    Benchmarks.names

let test_free_edges_exist () =
  (* DFT needs headroom on the connection grid *)
  List.iter
    (fun name ->
      let chip = Option.get (Benchmarks.by_name name) in
      let channels = Chip.channel_edges chip in
      let free = Grid.n_edges (Chip.grid chip) - Bitset.cardinal channels in
      check Alcotest.bool (name ^ " has free grid edges") true (free > 10))
    Benchmarks.names

let test_storage_pocket_exists () =
  (* every chip must offer at least one valve-enclosed pocket with plain
     endpoints: the scheduler's distributed storage *)
  List.iter
    (fun name ->
      let chip = Option.get (Benchmarks.by_name name) in
      let g = Grid.graph (Chip.grid chip) in
      let pockets = ref 0 in
      Graph.iter_edges
        (fun e u v ->
          if Chip.is_channel chip e && Chip.valve_on chip e = None then begin
            let plain n = Chip.device_at chip n = None && Chip.port_at chip n = None in
            let boundary n =
              Graph.incident g n
              |> List.for_all (fun (f, _) ->
                  f = e || (not (Chip.is_channel chip f)) || Chip.valve_on chip f <> None)
            in
            if plain u && plain v && boundary u && boundary v then incr pockets
          end)
        g;
      check Alcotest.bool (name ^ " has a pocket") true (!pockets >= 1))
    Benchmarks.names

let test_device_spurs () =
  (* devices sit on spurs: their node has exactly one incident channel *)
  List.iter
    (fun name ->
      let chip = Option.get (Benchmarks.by_name name) in
      let g = Grid.graph (Chip.grid chip) in
      Array.iter
        (fun (d : Chip.device) ->
          let channel_degree =
            Graph.incident g d.node
            |> List.filter (fun (e, _) -> Chip.is_channel chip e)
            |> List.length
          in
          check Alcotest.int (name ^ " " ^ d.name ^ " on a spur") 1 channel_degree)
        (Chip.devices chip))
    Benchmarks.names

let test_ports_behind_valves () =
  (* each port's entry channel is valved, so all-closed isolates it *)
  List.iter
    (fun name ->
      let chip = Option.get (Benchmarks.by_name name) in
      let g = Grid.graph (Chip.grid chip) in
      Array.iter
        (fun (p : Chip.port) ->
          Graph.incident g p.node
          |> List.iter (fun (e, _) ->
              if Chip.is_channel chip e then
                check Alcotest.bool
                  (name ^ " " ^ p.port_name ^ " valved entry")
                  true
                  (Chip.valve_on chip e <> None)))
        (Chip.ports chip))
    Benchmarks.names

let test_network_connected () =
  List.iter
    (fun name ->
      let chip = Option.get (Benchmarks.by_name name) in
      let g = Grid.graph (Chip.grid chip) in
      let channels = Chip.channel_edges chip in
      let hub = (Chip.ports chip).(0).node in
      let reach = Traverse.reachable g ~allowed:(Bitset.mem channels) ~src:hub in
      Array.iter
        (fun (d : Chip.device) ->
          check Alcotest.bool (name ^ " device reachable") true (Bitset.mem reach d.node))
        (Chip.devices chip))
    Benchmarks.names

let test_by_name_total () =
  check Alcotest.bool "unknown chip" true (Benchmarks.by_name "nope" = None);
  List.iter
    (fun n -> check Alcotest.bool n true (Benchmarks.by_name n <> None))
    Benchmarks.names

let () =
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_chips"
    [
      ( "benchmarks",
        [
          Alcotest.test_case "resource counts" `Quick test_resource_counts;
          Alcotest.test_case "no DFT initially" `Quick test_no_dft_initially;
          Alcotest.test_case "free edges exist" `Quick test_free_edges_exist;
          Alcotest.test_case "storage pockets" `Quick test_storage_pocket_exists;
          Alcotest.test_case "device spurs" `Quick test_device_spurs;
          Alcotest.test_case "ports behind valves" `Quick test_ports_behind_valves;
          Alcotest.test_case "network connected" `Quick test_network_connected;
          Alcotest.test_case "by_name" `Quick test_by_name_total;
        ] );
    ]
