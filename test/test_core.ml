module Chip = Mf_arch.Chip
module Rng = Mf_util.Rng
module Benchmarks = Mf_chips.Benchmarks
module Assays = Mf_bioassay.Assays
module Vectors = Mf_testgen.Vectors
module Sharing = Mfdft.Sharing
module Pool = Mfdft.Pool
module Codesign = Mfdft.Codesign

let check = Alcotest.check

let ivd_pool =
  (* built once: pool construction is the expensive part *)
  lazy
    (let chip = Option.get (Benchmarks.by_name "ivd_chip") in
     let rng = Rng.create ~seed:11 in
     match Pool.build ~size:3 ~node_limit:500 ~rng chip with
     | Ok pool -> (chip, pool)
     | Error f -> Alcotest.fail (Mf_util.Fail.to_string f))

let test_pool_entries_valid () =
  let _, pool = Lazy.force ivd_pool in
  check Alcotest.bool "non-empty" true (Pool.size pool >= 1);
  Array.iter
    (fun (entry : Pool.entry) ->
      check Alcotest.bool "suite valid pre-sharing" true
        (Vectors.is_valid entry.Pool.augmented entry.Pool.suite);
      check Alcotest.bool "has dft valves" true (Chip.dft_edges entry.Pool.augmented <> []))
    (Pool.entries pool)

let test_pool_decode_total () =
  let _, pool = Lazy.force ivd_pool in
  let dims = Array.length (Pool.free_edges pool) in
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 20 do
    let position = Array.init dims (fun _ -> Rng.uniform rng) in
    let entry = Pool.decode pool position in
    check Alcotest.bool "decoded entry from pool" true
      (Array.exists (fun e -> e == entry) (Pool.entries pool))
  done

let test_sharing_decode_bounds () =
  let _, pool = Lazy.force ivd_pool in
  let entry = (Pool.entries pool).(0) in
  let aug = entry.Pool.augmented in
  let dims = Sharing.dimensions aug in
  check Alcotest.int "one dim per dft valve"
    (Chip.n_valves aug - Chip.n_original_valves aug)
    dims;
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 20 do
    let position = Array.init dims (fun _ -> Rng.uniform rng) in
    let scheme = Sharing.decode aug position in
    check Alcotest.int "full assignment" dims (Sharing.n_shared scheme);
    List.iter
      (fun (dft, orig) ->
        check Alcotest.bool "dft id" true (Chip.valves aug).(dft).Chip.is_dft;
        check Alcotest.bool "orig id" true (orig >= 0 && orig < Chip.n_original_valves aug))
      scheme
  done

let test_sharing_extremes () =
  let _, pool = Lazy.force ivd_pool in
  let entry = (Pool.entries pool).(0) in
  let aug = entry.Pool.augmented in
  let dims = Sharing.dimensions aug in
  (* positions 0.0 and 1.0 must clamp into range, not crash *)
  List.iter
    (fun v ->
      let scheme = Sharing.decode aug (Array.make dims v) in
      ignore (Sharing.apply aug scheme))
    [ 0.0; 0.999999; 1.0 ]

let test_sharing_apply_reduces_lines () =
  let _, pool = Lazy.force ivd_pool in
  let entry = (Pool.entries pool).(0) in
  let aug = entry.Pool.augmented in
  let rng = Rng.create ~seed:6 in
  let scheme = Sharing.random rng aug in
  let shared = Sharing.apply aug scheme in
  check Alcotest.int "no extra control lines"
    (Chip.n_original_valves aug)
    (Chip.n_controls shared)

let test_codesign_smallest () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  let params =
    {
      Codesign.quick_params with
      Codesign.pool_size = 2;
      ilp_node_limit = 300;
      outer = { Mf_pso.Pso.default_params with particles = 3; iterations = 3 };
      inner = { Mf_pso.Pso.default_params with particles = 3; iterations = 3 };
    }
  in
  match Codesign.run ~params chip app with
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  | Ok r ->
    check Alcotest.bool "original schedules" true (r.Codesign.exec_original <> None);
    check Alcotest.bool "unshared dft schedules" true (r.Codesign.exec_dft_unshared <> None);
    check Alcotest.bool "dft valves reported" true (r.Codesign.n_dft_valves > 0);
    check Alcotest.int "trace per iteration" 3 (List.length r.Codesign.trace);
    check Alcotest.bool "vector count positive" true (r.Codesign.n_vectors_dft > 0);
    (* with a valid final sharing, the suite must be complete on the shared chip *)
    (match r.Codesign.exec_final with
     | Some final ->
       check Alcotest.bool "suite valid on shared chip" true
         (Vectors.is_valid r.Codesign.shared r.Codesign.suite);
       check Alcotest.bool "final at least critical path" true (final > 0);
       (match r.Codesign.exec_dft_unshared with
        | Some unshared -> check Alcotest.bool "sharing never beats free control" true (final >= unshared)
        | None -> ())
     | None -> ())

let test_codesign_deterministic () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  let params =
    {
      Codesign.quick_params with
      Codesign.pool_size = 1;
      ilp_node_limit = 200;
      outer = { Mf_pso.Pso.default_params with particles = 2; iterations = 2 };
      inner = { Mf_pso.Pso.default_params with particles = 2; iterations = 2 };
    }
  in
  let run () =
    match Codesign.run ~params chip app with
    | Ok r -> (r.Codesign.exec_final, r.Codesign.n_dft_valves, r.Codesign.trace)
    | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  in
  let a = run () and b = run () in
  check Alcotest.bool "deterministic" true (a = b)

let test_report () =
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  let params =
    {
      Codesign.quick_params with
      Codesign.pool_size = 1;
      ilp_node_limit = 200;
      outer = { Mf_pso.Pso.default_params with particles = 2; iterations = 2 };
      inner = { Mf_pso.Pso.default_params with particles = 2; iterations = 2 };
    }
  in
  match Codesign.run ~params chip app with
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  | Ok r ->
    let md = Mfdft.Report.markdown r in
    let contains needle =
      let nl = String.length needle and hl = String.length md in
      let rec go i = i + nl <= hl && (String.sub md i nl = needle || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "has title" true (contains "# DFT codesign report");
    check Alcotest.bool "names the chip" true (contains "IVD_chip");
    check Alcotest.bool "test program section" true (contains "Test program");
    check Alcotest.bool "sharing table" true (contains "shares the line of");
    check Alcotest.bool "execution table" true (contains "makespan");
    check Alcotest.bool "control layer line" true (contains "Control layer")

let () =
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mfdft"
    [
      ( "pool",
        [
          Alcotest.test_case "entries valid" `Quick test_pool_entries_valid;
          Alcotest.test_case "decode total" `Quick test_pool_decode_total;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "decode bounds" `Quick test_sharing_decode_bounds;
          Alcotest.test_case "extremes" `Quick test_sharing_extremes;
          Alcotest.test_case "apply reduces lines" `Quick test_sharing_apply_reduces_lines;
        ] );
      ( "codesign",
        [
          Alcotest.test_case "smallest run" `Slow test_codesign_smallest;
          Alcotest.test_case "deterministic" `Slow test_codesign_deterministic;
          Alcotest.test_case "markdown report" `Slow test_report;
        ] );
    ]
