module Chip = Mf_arch.Chip
module Op = Mf_bioassay.Op
module Seqgraph = Mf_bioassay.Seqgraph
module Assays = Mf_bioassay.Assays
module Scheduler = Mf_sched.Scheduler
module Schedule = Mf_sched.Schedule
module Benchmarks = Mf_chips.Benchmarks

let check = Alcotest.check

let mini_app () =
  (* mix -> detect *)
  Seqgraph.create_exn
    [
      { Op.op_id = 0; kind = Op.Mix; duration = 10; op_name = "mix" };
      { Op.op_id = 1; kind = Op.Detect; duration = 5; op_name = "det" };
    ]
    ~edges:[ (0, 1) ]

let ivd_chip () = Option.get (Benchmarks.by_name "ivd_chip")

let test_mini_schedule () =
  match Scheduler.run (ivd_chip ()) (mini_app ()) with
  | Error f -> Alcotest.failf "unexpected failure: %a" Schedule.pp_failure f
  | Ok s ->
    (* reagent transport + 10s mix + transport + 5s detect *)
    check Alcotest.bool "makespan at least work" true (s.Schedule.makespan >= 15);
    check Alcotest.bool "transports happened" true (s.Schedule.n_transports >= 2)

let test_event_consistency () =
  match Scheduler.run (ivd_chip ()) (Assays.ivd ()) with
  | Error f -> Alcotest.failf "unexpected failure: %a" Schedule.pp_failure f
  | Ok s ->
    let starts = Hashtbl.create 16 in
    let finishes = Hashtbl.create 16 in
    List.iter
      (fun ev ->
        match ev with
        | Schedule.Op_started { op; time; _ } -> Hashtbl.replace starts op time
        | Schedule.Op_finished { op; time; _ } -> Hashtbl.replace finishes op time
        | Schedule.Transport_started _ | Schedule.Unit_stored _ | Schedule.Unit_parked _ -> ())
      s.Schedule.events;
    let app = Assays.ivd () in
    for j = 0 to Seqgraph.n_ops app - 1 do
      let op = Seqgraph.op app j in
      let start = Hashtbl.find starts j and finish = Hashtbl.find finishes j in
      check Alcotest.int "duration respected" op.Op.duration (finish - start);
      List.iter
        (fun p ->
          check Alcotest.bool "dependency order" true (Hashtbl.find finishes p <= start))
        (Seqgraph.preds app j)
    done;
    let max_finish = Hashtbl.fold (fun _ t acc -> max t acc) finishes 0 in
    check Alcotest.int "makespan is last finish" s.Schedule.makespan max_finish

let test_device_exclusive () =
  match Scheduler.run (ivd_chip ()) (Assays.ivd ()) with
  | Error f -> Alcotest.failf "unexpected failure: %a" Schedule.pp_failure f
  | Ok s ->
    (* no device may run two ops at overlapping times *)
    let running = Hashtbl.create 8 in
    let intervals = ref [] in
    List.iter
      (fun ev ->
        match ev with
        | Schedule.Op_started { op; device; time } -> Hashtbl.replace running (device, op) time
        | Schedule.Op_finished { op; device; time } ->
          let start = Hashtbl.find running (device, op) in
          intervals := (device, start, time) :: !intervals
        | Schedule.Transport_started _ | Schedule.Unit_stored _ | Schedule.Unit_parked _ -> ())
      s.Schedule.events;
    let list = !intervals in
    List.iter
      (fun (d1, s1, f1) ->
        List.iter
          (fun (d2, s2, f2) ->
            if d1 = d2 && (s1, f1) <> (s2, f2) then
              check Alcotest.bool "no overlap" true (f1 <= s2 || f2 <= s1))
          list)
      list

let test_all_combos_complete () =
  List.iter
    (fun chip_name ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      List.iter
        (fun assay ->
          let app = Option.get (Assays.by_name assay) in
          match Scheduler.run chip app with
          | Ok s ->
            check Alcotest.bool
              (Printf.sprintf "%s/%s positive makespan" chip_name assay)
              true (s.Schedule.makespan > 0)
          | Error f ->
            Alcotest.failf "%s/%s failed: %a" chip_name assay Schedule.pp_failure f)
        Assays.names)
    Benchmarks.names

let test_no_device_failure () =
  let b = Chip.builder ~name:"mixless" ~width:4 ~height:3 in
  Chip.add_port b ~x:0 ~y:0 ~name:"P0";
  Chip.add_port b ~x:3 ~y:0 ~name:"P1";
  Chip.add_device b ~kind:Chip.Detector ~x:1 ~y:1 ~name:"D";
  Chip.add_channel b [ (0, 0); (1, 0); (2, 0); (3, 0) ];
  Chip.add_channel b [ (1, 0); (1, 1) ];
  Chip.add_valve b (0, 0) (1, 0);
  Chip.add_valve b (2, 0) (3, 0);
  Chip.add_valve b (1, 0) (1, 1);
  let chip = Chip.finish_exn b in
  match Scheduler.run chip (mini_app ()) with
  | Error (Schedule.No_device Op.Mix) -> ()
  | Error f -> Alcotest.failf "wrong failure: %a" Schedule.pp_failure f
  | Ok _ -> Alcotest.fail "expected No_device"

let test_transport_cost_scales () =
  let fast = Scheduler.{ default_options with transport_cost = 1 } in
  let slow = Scheduler.{ default_options with transport_cost = 4 } in
  let chip = ivd_chip () in
  let app = Assays.ivd () in
  let m1 = Option.get (Scheduler.makespan ~options:fast chip app) in
  let m4 = Option.get (Scheduler.makespan ~options:slow chip app) in
  check Alcotest.bool "slower transport, longer makespan" true (m4 > m1)

let test_storage_disabled () =
  (* without any storage, heavy assays may fail; light IVD should still run *)
  let opts = Scheduler.{ default_options with allow_storage = false } in
  match Scheduler.run ~options:opts (ivd_chip ()) (Assays.ivd ()) with
  | Ok s -> check Alcotest.int "no evictions" 0 s.Schedule.n_stored
  | Error _ -> () (* failing without storage is also legitimate *)

let test_sharing_can_hurt () =
  (* a deliberately bad sharing couples a DFT valve with a port valve; the
     schedule must never get FASTER than the unshared augmented chip *)
  let chip = ivd_chip () in
  match Mf_testgen.Pathgen.generate ~node_limit:300 chip with
  | Error f -> Alcotest.fail (Mf_util.Fail.to_string f)
  | Ok config ->
    let aug = Mf_testgen.Pathgen.apply chip config in
    let app = Assays.ivd () in
    let unshared = Scheduler.makespan aug app in
    let dft_ids =
      Array.to_list (Chip.valves aug)
      |> List.filter_map (fun (v : Chip.valve) -> if v.is_dft then Some v.valve_id else None)
    in
    let scheme = List.map (fun v -> (v, 0)) dft_ids in
    let shared = Chip.with_sharing aug scheme in
    (match (unshared, Scheduler.makespan shared app) with
     | Some u, Some s -> check Alcotest.bool "sharing never speeds up" true (s >= u)
     | Some _, None -> () (* deadlock from bad sharing: also expected *)
     | None, _ -> Alcotest.fail "unshared augmented chip must schedule")

let test_deterministic () =
  let chip = ivd_chip () in
  let app = Assays.cpa () in
  let m1 = Scheduler.makespan chip app and m2 = Scheduler.makespan chip app in
  check Alcotest.(option int) "same makespan" m1 m2

let test_storage_hierarchy_used () =
  (* CPA stresses storage: pockets, device chambers and port vials all see
     traffic on the IVD chip *)
  match Scheduler.run (ivd_chip ()) (Assays.cpa ()) with
  | Error f -> Alcotest.failf "unexpected failure: %a" Schedule.pp_failure f
  | Ok s ->
    check Alcotest.bool "evictions happened" true (s.Schedule.n_stored > 0);
    let parked =
      List.exists
        (fun ev -> match ev with Schedule.Unit_parked _ -> true | _ -> false)
        s.Schedule.events
    in
    check Alcotest.bool "port vials used as last resort" true parked

let test_pocket_storage_event () =
  match Scheduler.run (ivd_chip ()) (Assays.pid ()) with
  | Error f -> Alcotest.failf "unexpected failure: %a" Schedule.pp_failure f
  | Ok s ->
    List.iter
      (fun ev ->
        match ev with
        | Schedule.Unit_stored { edge; _ } ->
          (* stored edges must be channels without resident devices *)
          check Alcotest.bool "stored on a channel" true
            (Chip.is_channel (ivd_chip ()) edge)
        | Schedule.Op_started _ | Schedule.Op_finished _ | Schedule.Transport_started _
        | Schedule.Unit_parked _ -> ())
      s.Schedule.events

let test_transports_use_channels () =
  match Scheduler.run (ivd_chip ()) (Assays.ivd ()) with
  | Error f -> Alcotest.failf "unexpected failure: %a" Schedule.pp_failure f
  | Ok s ->
    let chip = ivd_chip () in
    List.iter
      (fun ev ->
        match ev with
        | Schedule.Transport_started { path; time; finish; _ } ->
          check Alcotest.int "duration = path length" (List.length path) (finish - time);
          List.iter
            (fun e -> check Alcotest.bool "transport on channels" true (Chip.is_channel chip e))
            path
        | Schedule.Op_started _ | Schedule.Op_finished _ | Schedule.Unit_stored _
        | Schedule.Unit_parked _ -> ())
      s.Schedule.events

let test_sharing_flag_no_effect_without_sharing () =
  (* on a chip without shared lines, the legality checks change nothing *)
  let chip = ivd_chip () in
  let app = Assays.pid () in
  let strict = Scheduler.makespan ~options:Scheduler.default_options chip app in
  let loose =
    Scheduler.makespan
      ~options:{ Scheduler.default_options with respect_sharing = false }
      chip app
  in
  check Alcotest.(option int) "identical makespan" strict loose

let test_washing () =
  let chip = ivd_chip () in
  let app = Assays.cpa () in
  let base = Scheduler.default_options in
  match
    (Scheduler.run chip app, Scheduler.run ~options:{ base with Scheduler.wash = true } chip app)
  with
  | Ok plain, Ok washed ->
    check Alcotest.int "no washes by default" 0 plain.Schedule.n_washes;
    check Alcotest.bool "washes counted" true (washed.Schedule.n_washes > 0);
    check Alcotest.bool "washing costs time" true
      (washed.Schedule.makespan >= plain.Schedule.makespan)
  | _, _ -> Alcotest.fail "both schedules must complete"

let test_wash_penalty_scales () =
  let chip = ivd_chip () in
  let app = Assays.pid () in
  let run penalty =
    Scheduler.makespan
      ~options:{ Scheduler.default_options with wash = true; wash_penalty = penalty }
      chip app
  in
  match (run 1, run 6) with
  | Some cheap, Some costly -> check Alcotest.bool "penalty scales" true (costly >= cheap)
  | _, _ -> Alcotest.fail "both schedules must complete"

let test_horizon () =
  let opts = { Scheduler.default_options with horizon = 1 } in
  match Scheduler.run ~options:opts (ivd_chip ()) (Assays.ivd ()) with
  | Error (Schedule.Timeout _) -> ()
  | Error f -> Alcotest.failf "wrong failure: %a" Schedule.pp_failure f
  | Ok _ -> Alcotest.fail "expected timeout"

let () =
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_sched"
    [
      ( "scheduler",
        [
          Alcotest.test_case "mini schedule" `Quick test_mini_schedule;
          Alcotest.test_case "event consistency" `Quick test_event_consistency;
          Alcotest.test_case "device exclusivity" `Quick test_device_exclusive;
          Alcotest.test_case "all combos complete" `Slow test_all_combos_complete;
          Alcotest.test_case "missing device kind" `Quick test_no_device_failure;
          Alcotest.test_case "transport cost scales" `Quick test_transport_cost_scales;
          Alcotest.test_case "storage disabled" `Quick test_storage_disabled;
          Alcotest.test_case "sharing can hurt" `Slow test_sharing_can_hurt;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "storage hierarchy used" `Quick test_storage_hierarchy_used;
          Alcotest.test_case "pocket storage events" `Quick test_pocket_storage_event;
          Alcotest.test_case "transports use channels" `Quick test_transports_use_channels;
          Alcotest.test_case "sharing flag neutral" `Quick test_sharing_flag_no_effect_without_sharing;
          Alcotest.test_case "washing" `Quick test_washing;
          Alcotest.test_case "wash penalty scales" `Quick test_wash_penalty_scales;
          Alcotest.test_case "horizon" `Quick test_horizon;
        ] );
    ]
