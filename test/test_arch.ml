module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Bitset = Mf_util.Bitset

let check = Alcotest.check

(* The 3-port chip of Fig. 4(a): a Y of channels with valves on each arm. *)
let fig4_builder () =
  let b = Chip.builder ~name:"fig4" ~width:5 ~height:5 in
  Chip.add_port b ~x:0 ~y:2 ~name:"P0";
  Chip.add_port b ~x:4 ~y:2 ~name:"P1";
  Chip.add_port b ~x:2 ~y:0 ~name:"P2";
  Chip.add_device b ~kind:Chip.Mixer ~x:2 ~y:4 ~name:"M";
  Chip.add_channel b [ (0, 2); (1, 2); (2, 2); (3, 2); (4, 2) ];
  Chip.add_channel b [ (2, 0); (2, 1); (2, 2) ];
  Chip.add_channel b [ (2, 2); (2, 3); (2, 4) ];
  Chip.add_valve b (0, 2) (1, 2);
  Chip.add_valve b (1, 2) (2, 2);
  Chip.add_valve b (2, 2) (3, 2);
  Chip.add_valve b (3, 2) (4, 2);
  Chip.add_valve b (2, 0) (2, 1);
  Chip.add_valve b (2, 1) (2, 2);
  Chip.add_valve b (2, 2) (2, 3);
  b

let fig4 () = Chip.finish_exn (fig4_builder ())

let test_builder_happy () =
  let chip = fig4 () in
  check Alcotest.string "name" "fig4" (Chip.name chip);
  check Alcotest.int "ports" 3 (Array.length (Chip.ports chip));
  check Alcotest.int "devices" 1 (Array.length (Chip.devices chip));
  check Alcotest.int "valves" 7 (Chip.n_valves chip);
  check Alcotest.int "original valves" 7 (Chip.n_original_valves chip);
  check Alcotest.int "controls" 7 (Chip.n_controls chip);
  check Alcotest.int "channels" 8 (Bitset.cardinal (Chip.channel_edges chip))

let test_accessors () =
  let chip = fig4 () in
  let grid = Chip.grid chip in
  let e = Option.get (Grid.edge_between_xy grid (0, 2) (1, 2)) in
  (match Chip.valve_on chip e with
   | Some v ->
     check Alcotest.int "valve edge" e v.edge;
     check Alcotest.bool "not dft" false v.is_dft
   | None -> Alcotest.fail "expected valve");
  let unvalved = Option.get (Grid.edge_between_xy grid (2, 3) (2, 4)) in
  check Alcotest.bool "no valve" true (Chip.valve_on chip unvalved = None);
  check Alcotest.bool "is channel" true (Chip.is_channel chip unvalved);
  let p = Chip.port_at chip (Grid.node grid ~x:0 ~y:2) in
  check Alcotest.(option string) "port name" (Some "P0")
    (Option.map (fun (p : Chip.port) -> p.port_name) p);
  let d = Chip.device_at chip (Grid.node grid ~x:2 ~y:4) in
  check Alcotest.(option string) "device name" (Some "M")
    (Option.map (fun (d : Chip.device) -> d.name) d)

let test_overlap_rejected () =
  let b = fig4_builder () in
  Chip.add_device b ~kind:Chip.Detector ~x:0 ~y:2 ~name:"clash";
  match Chip.finish b with
  | Ok _ -> Alcotest.fail "expected overlap error"
  | Error msg -> check Alcotest.bool "mentions overlap" true (String.length msg > 0)

let test_unreachable_rejected () =
  let b = Chip.builder ~name:"bad" ~width:4 ~height:4 in
  Chip.add_port b ~x:0 ~y:0 ~name:"P0";
  Chip.add_port b ~x:3 ~y:3 ~name:"P1";
  Chip.add_channel b [ (0, 0); (1, 0) ];
  Chip.add_channel b [ (3, 3); (2, 3) ];
  Chip.add_valve b (0, 0) (1, 0);
  Chip.add_valve b (3, 3) (2, 3);
  match Chip.finish b with
  | Ok _ -> Alcotest.fail "expected unreachable error"
  | Error _ -> ()

let test_port_separation_rejected () =
  (* two ports joined by an entirely unvalved channel: closing all valves
     cannot separate them, so stuck-at-1 defects would be untestable *)
  let b = Chip.builder ~name:"leaky" ~width:3 ~height:1 in
  Chip.add_port b ~x:0 ~y:0 ~name:"P0";
  Chip.add_port b ~x:2 ~y:0 ~name:"P1";
  Chip.add_channel b [ (0, 0); (1, 0); (2, 0) ];
  match Chip.finish b with
  | Ok _ -> Alcotest.fail "expected separation error"
  | Error msg ->
    check Alcotest.bool "mentions the ports" true
      (String.length msg > 0 && String.lowercase_ascii msg <> "")

let test_port_separation_one_valve_suffices () =
  (* a single valve that isolates P0 satisfies the separation rule even
     though the rest of the line is unvalved *)
  let b = Chip.builder ~name:"guarded" ~width:3 ~height:1 in
  Chip.add_port b ~x:0 ~y:0 ~name:"P0";
  Chip.add_port b ~x:2 ~y:0 ~name:"P1";
  Chip.add_channel b [ (0, 0); (1, 0); (2, 0) ];
  Chip.add_valve b (0, 0) (1, 0);
  match Chip.finish b with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_single_port_rejected () =
  let b = Chip.builder ~name:"one-port" ~width:3 ~height:1 in
  Chip.add_port b ~x:0 ~y:0 ~name:"P0";
  Chip.add_channel b [ (0, 0); (1, 0) ];
  Chip.add_valve b (0, 0) (1, 0);
  match Chip.finish b with Ok _ -> Alcotest.fail "expected error" | Error _ -> ()

let test_valve_needs_channel () =
  let b = fig4_builder () in
  Alcotest.check_raises "valve off-channel" (Invalid_argument "Chip.add_valve: no channel on that edge")
    (fun () -> Chip.add_valve b (0, 0) (1, 0))

let test_duplicate_valve () =
  let b = fig4_builder () in
  Alcotest.check_raises "duplicate" (Invalid_argument "Chip.add_valve: duplicate valve") (fun () ->
      Chip.add_valve b (0, 2) (1, 2))

let test_channel_adjacency () =
  let b = fig4_builder () in
  Alcotest.check_raises "non-adjacent"
    (Invalid_argument "Chip.add_channel: (0,0) and (2,0) not adjacent") (fun () ->
      Chip.add_channel b [ (0, 0); (2, 0) ])

let test_augment () =
  let chip = fig4 () in
  let grid = Chip.grid chip in
  let free1 = Option.get (Grid.edge_between_xy grid (1, 2) (1, 3)) in
  let free2 = Option.get (Grid.edge_between_xy grid (1, 3) (2, 3)) in
  let aug = Chip.augment chip ~edges:[ free1; free2 ] in
  check Alcotest.int "dft valves added" 9 (Chip.n_valves aug);
  check Alcotest.int "originals preserved" 7 (Chip.n_original_valves aug);
  check Alcotest.(list int) "dft edges recorded" [ free1; free2 ] (Chip.dft_edges aug);
  check Alcotest.bool "edge now channel" true (Chip.is_channel aug free1);
  (match Chip.valve_on aug free1 with
   | Some v -> check Alcotest.bool "dft flag" true v.is_dft
   | None -> Alcotest.fail "expected dft valve");
  (* re-augmenting replaces, not stacks *)
  let aug2 = Chip.augment aug ~edges:[ free1 ] in
  check Alcotest.int "replaced" 8 (Chip.n_valves aug2);
  check Alcotest.bool "old dft edge gone" false (Chip.is_channel aug2 free2)

let test_augment_rejects_channel () =
  let chip = fig4 () in
  let grid = Chip.grid chip in
  let occupied = Option.get (Grid.edge_between_xy grid (0, 2) (1, 2)) in
  check Alcotest.bool "raises" true
    (try
       ignore (Chip.augment chip ~edges:[ occupied ]);
       false
     with Invalid_argument _ -> true)

let test_with_sharing () =
  let chip = fig4 () in
  let grid = Chip.grid chip in
  let free = Option.get (Grid.edge_between_xy grid (1, 2) (1, 3)) in
  let aug = Chip.augment chip ~edges:[ free ] in
  let dft_id = Chip.n_original_valves aug in
  let shared = Chip.with_sharing aug [ (dft_id, 2) ] in
  check Alcotest.int "one line fewer" (Chip.n_controls aug - 1) (Chip.n_controls shared);
  let line = (Chip.valves shared).(2).control in
  let driven = Chip.valves_of_control shared line in
  check Alcotest.int "line drives two valves" 2 (List.length driven);
  check Alcotest.bool "dft valve on the line" true
    (List.exists (fun (v : Chip.valve) -> v.valve_id = dft_id) driven)

let test_with_sharing_rejects () =
  let chip = fig4 () in
  check Alcotest.bool "raises on non-dft" true
    (try
       ignore (Chip.with_sharing chip [ (0, 1) ]);
       false
     with Invalid_argument _ -> true)

let test_render () =
  let chip = fig4 () in
  let picture = Chip.render chip in
  check Alcotest.bool "mentions ports" true (String.contains picture 'P');
  check Alcotest.bool "mentions mixer" true (String.contains picture 'M');
  check Alcotest.bool "valves drawn" true (String.contains picture 'x')

(* ------------------------------------------------------------------ *)
(* Chip_io *)

module Chip_io = Mf_arch.Chip_io

let chips_equal a b =
  (* structural equality of everything Chip_io claims to round-trip *)
  Chip.name a = Chip.name b
  && Grid.width (Chip.grid a) = Grid.width (Chip.grid b)
  && Grid.height (Chip.grid a) = Grid.height (Chip.grid b)
  && Array.map (fun (d : Chip.device) -> (d.kind, d.node, d.name)) (Chip.devices a)
     = Array.map (fun (d : Chip.device) -> (d.kind, d.node, d.name)) (Chip.devices b)
  && Array.map (fun (p : Chip.port) -> (p.node, p.port_name)) (Chip.ports a)
     = Array.map (fun (p : Chip.port) -> (p.node, p.port_name)) (Chip.ports b)
  && Bitset.elements (Chip.channel_edges a) = Bitset.elements (Chip.channel_edges b)
  && Array.map (fun (v : Chip.valve) -> (v.edge, v.control, v.is_dft)) (Chip.valves a)
     = Array.map (fun (v : Chip.valve) -> (v.edge, v.control, v.is_dft)) (Chip.valves b)
  && List.sort compare (Chip.dft_edges a) = List.sort compare (Chip.dft_edges b)

let test_io_roundtrip_benchmarks () =
  List.iter
    (fun name ->
      let chip = Option.get (Mf_chips.Benchmarks.by_name name) in
      match Chip_io.parse (Chip_io.to_string chip) with
      | Error m -> Alcotest.fail (name ^ ": " ^ m)
      | Ok chip' -> check Alcotest.bool (name ^ " round-trips") true (chips_equal chip chip'))
    Mf_chips.Benchmarks.names

let test_io_roundtrip_augmented_shared () =
  let chip = fig4 () in
  let grid = Chip.grid chip in
  let e1 = Option.get (Grid.edge_between_xy grid (1, 2) (1, 3)) in
  let e2 = Option.get (Grid.edge_between_xy grid (1, 3) (2, 3)) in
  let aug = Chip.augment chip ~edges:[ e1; e2 ] in
  let dft0 = Chip.n_original_valves aug in
  let shared = Chip.with_sharing aug [ (dft0, 3); (dft0 + 1, 5) ] in
  match Chip_io.parse (Chip_io.to_string shared) with
  | Error m -> Alcotest.fail m
  | Ok chip' ->
    check Alcotest.int "dft preserved" 2
      (Chip.n_valves chip' - Chip.n_original_valves chip');
    check Alcotest.int "controls preserved" (Chip.n_controls shared) (Chip.n_controls chip');
    (* the shared lines drive the same valves after the round-trip *)
    let lines c =
      Array.to_list (Chip.valves c)
      |> List.map (fun (v : Chip.valve) ->
          List.map (fun (w : Chip.valve) -> w.valve_id) (Chip.valves_of_control c v.control))
    in
    check Alcotest.bool "sharing preserved" true (lines shared = lines chip')

let test_io_parse_example () =
  let text =
    "# tiny demo\n\
     chip demo 4 2\n\
     port 0 0 in\n\
     port 3 0 out\n\
     device mixer 1 1 M\n\
     channel 0,0 1,0 2,0 3,0\n\
     channel 1,0 1,1\n\
     valve 0,0 1,0\n\
     valve 2,0 3,0\n\
     valve 1,0 1,1\n"
  in
  match Chip_io.parse text with
  | Error m -> Alcotest.fail m
  | Ok chip ->
    check Alcotest.string "name" "demo" (Chip.name chip);
    check Alcotest.int "valves" 3 (Chip.n_valves chip)

let test_io_errors () =
  let cases =
    [
      ("", "empty");
      ("device mixer 0 0 M\n", "header first");
      ("chip x 0 3\n", "bad dims");
      ("chip x 3 3\nwibble 1 2\n", "unknown directive");
      ("chip x 3 3\nchannel 0,0 2,0\n", "non-adjacent");
      ("chip x 3 3\nvalve 0,0 1,0\n", "valve without channel");
      ("chip x 3 3\nchip y 3 3\n", "duplicate header");
      ("chip x 3 3\nport 0 0 P\n", "fails validation");
    ]
  in
  List.iter
    (fun (text, label) ->
      match Chip_io.parse text with
      | Ok _ -> Alcotest.fail ("accepted: " ^ label)
      | Error _ -> ())
    cases

let test_io_load_missing () =
  match Chip_io.load "/nonexistent/definitely.chip" with
  | Ok _ -> Alcotest.fail "loaded a ghost"
  | Error _ -> ()

let () =
  (* exact-value assertions require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_arch"
    [
      ( "builder",
        [
          Alcotest.test_case "happy path" `Quick test_builder_happy;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "overlap rejected" `Quick test_overlap_rejected;
          Alcotest.test_case "unreachable rejected" `Quick test_unreachable_rejected;
          Alcotest.test_case "port separation rejected" `Quick test_port_separation_rejected;
          Alcotest.test_case "one guard valve suffices" `Quick
            test_port_separation_one_valve_suffices;
          Alcotest.test_case "single port rejected" `Quick test_single_port_rejected;
          Alcotest.test_case "valve needs channel" `Quick test_valve_needs_channel;
          Alcotest.test_case "duplicate valve" `Quick test_duplicate_valve;
          Alcotest.test_case "channel adjacency" `Quick test_channel_adjacency;
        ] );
      ( "augmentation",
        [
          Alcotest.test_case "augment" `Quick test_augment;
          Alcotest.test_case "augment rejects channels" `Quick test_augment_rejects_channel;
          Alcotest.test_case "with_sharing" `Quick test_with_sharing;
          Alcotest.test_case "with_sharing rejects" `Quick test_with_sharing_rejects;
          Alcotest.test_case "render" `Quick test_render;
        ] );
      ( "chip_io",
        [
          Alcotest.test_case "round-trip benchmarks" `Quick test_io_roundtrip_benchmarks;
          Alcotest.test_case "round-trip augmented+shared" `Quick
            test_io_roundtrip_augmented_shared;
          Alcotest.test_case "parse example" `Quick test_io_parse_example;
          Alcotest.test_case "parse errors" `Quick test_io_errors;
          Alcotest.test_case "load missing file" `Quick test_io_load_missing;
        ] );
    ]
