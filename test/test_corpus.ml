(* Cross-layer property corpus over the parametric chip families
   ([Mf_chips.Families]): every generated chip must lint clean, its
   generated test suite must re-certify through the independent verifier,
   the scheduler fast path must agree bit-for-bit with the reference
   implementation, the path ILP must cover at least as well as the greedy
   fallback, and pool construction must be parallelism-invariant.

   Case counts scale with MFDFT_CORPUS_COUNT (the lint-property count;
   the expensive solver-backed properties derive smaller counts from it)
   and the seed matrix shifts with MFDFT_CORPUS_SEED, so the nightly CI
   job can rerun the same corpus wider and elsewhere on the seed space
   while any failure stays reproducible from the logged seed alone. *)

module Chip = Mf_arch.Chip
module Chip_io = Mf_arch.Chip_io
module Assay_io = Mf_bioassay.Assay_io
module Families = Mf_chips.Families
module Synth_assay = Mf_bioassay.Synth_assay
module Scheduler = Mf_sched.Scheduler
module Pathgen = Mf_testgen.Pathgen
module Vectors = Mf_testgen.Vectors
module Coverage = Mf_faults.Coverage
module Lint = Mf_verify.Lint
module Cert = Mf_verify.Cert
module Pool = Mfdft.Pool
module Domain_pool = Mf_util.Domain_pool
module Rng = Mf_util.Rng
module Reconfig = Mf_repair.Reconfig
module Fault = Mf_faults.Fault
module Chaos = Mf_util.Chaos

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try max 1 (int_of_string s) with Failure _ -> default)
  | None -> default

let lint_count = env_int "MFDFT_CORPUS_COUNT" 100
let seed_base = 1_000_000 * (env_int "MFDFT_CORPUS_SEED" 1 - 1)

(* solver-backed properties run fewer cases; the ratios keep the nightly
   job's higher MFDFT_CORPUS_COUNT proportional across all of them *)
let recert_count = max 4 (lint_count / 25)
let sched_count = max 8 (lint_count / 12)
let greedy_count = max 4 (lint_count / 25)
let pool_count = max 2 (lint_count / 50)
let repair_count = max 4 (lint_count / 25)

(* Deterministic case derivation: QCheck supplies a small case index; the
   chip/assay pair is a pure function of (family, MFDFT_CORPUS_SEED, index),
   so a failure report names the exact inputs. *)
let case_seed family_salt index = seed_base + (1000 * family_salt) + index

let family_salt (f : Families.family) =
  match f.Families.name with "ring" -> 1 | "fpva" -> 2 | "storage" -> 3 | _ -> 9

let case_size (f : Families.family) index =
  List.nth f.Families.corpus_sizes (index mod List.length f.Families.corpus_sizes)

let assay_profile (f : Families.family) =
  match f.Families.profile with
  | Families.Balanced -> Synth_assay.Balanced
  | Families.Storage_pressure -> Synth_assay.Storage_pressure

(* chip and assay share one seeded stream: reproducing the pair needs only
   the case seed *)
let case (f : Families.family) index =
  let size = case_size f index in
  let rng = Rng.create ~seed:(case_seed (family_salt f) index) in
  let chip = f.Families.generate_size ~size rng in
  let spec = Synth_assay.spec_of_size ~profile:(assay_profile f) (f.Families.assay_ops ~size) in
  let assay = Synth_assay.generate ~spec rng in
  (chip, assay)

let prop ~name ~count f p =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count QCheck.small_nat (fun index -> p f index))

(* ------------------------------------------------------------------ *)
(* P1: every generated chip lints with zero diagnostics — warnings too *)

let lint_clean f index =
  let chip, _ = case f index in
  Lint.chip chip = []

(* ------------------------------------------------------------------ *)
(* P2: same seed, byte-identical serialised chip and assay *)

let seed_stable f index =
  let chip_a, assay_a = case f index in
  let chip_b, assay_b = case f index in
  String.equal (Chip_io.to_string chip_a) (Chip_io.to_string chip_b)
  && String.equal (Assay_io.to_string assay_a) (Assay_io.to_string assay_b)

(* ------------------------------------------------------------------ *)
(* P3: the generated DFT suite re-certifies through the independent
   verifier (lint of the augmented chip + certificate re-proof + sharing
   conflict scan), with zero diagnostics.  Suites come from [Pool.build] —
   the production path behind [dft_tool] — whose repair/rejection ladder
   guarantees complete fault coverage; a bare [Pathgen] configuration may
   legitimately leave escapes the verifier would (rightly) flag.  A small
   pool can run out of candidates on the largest pocket-heavy chips (every
   attempt rejected because repair left faults escaping) — that outcome is
   typed and surfaced, not a verifier bug, so such cases are discarded
   rather than failed; the property under test is that whenever the
   pipeline does emit a suite, the independent verifier agrees with it. *)

let cert_of aug (suite : Vectors.t) =
  let report = Vectors.validate aug suite in
  Cert.make ~chip_name:(Chip.name aug)
    ~suite:
      {
        Cert.source_port = suite.Vectors.source_port;
        meter_port = suite.Vectors.meter_port;
        path_edges = suite.Vectors.path_edges;
        cut_valves = suite.Vectors.cut_valves;
      }
    ~claimed_vectors:(Vectors.count suite)
    ~claimed_coverage:(report.Coverage.detected, report.Coverage.total_faults)
    ()

let recertifies f index =
  let chip, _ = case f index in
  let rng = Rng.create ~seed:(case_seed (family_salt f) index + 31) in
  match Pool.build ~size:3 ~node_limit:400 ~rng chip with
  | Error _ -> QCheck.assume_fail ()
  | Ok pool ->
    let e = (Pool.entries pool).(0) in
    let aug = e.Pool.augmented in
    (match Mf_verify.Verify.certificate aug (cert_of aug e.Pool.suite) with
     | [] -> true
     | diags ->
       QCheck.Test.fail_reportf "%s: %s" (Chip.name chip)
         (String.concat ", " (List.map (fun (d : Mf_util.Diag.t) -> d.code) diags)))

(* ------------------------------------------------------------------ *)
(* P4: scheduler fast path ≡ first-principles reference, bit-identically,
   success or failure *)

let sched_differential f index =
  let chip, assay = case f index in
  Scheduler.run chip assay = Scheduler.run_reference chip assay

(* ------------------------------------------------------------------ *)
(* P5: the ILP never loses to the pure greedy fallback.  Both cover every
   original channel edge by construction (that is the path constraint), so
   the comparison is on objective (5), the number of added DFT edges: a
   non-degraded ILP solution is optimal for its path count, and any greedy
   cover with at most that many paths extends to an equal-cost solution at
   the ILP's path count (duplicate a path), so ILP added <= greedy added
   whenever ilp.n_paths >= greedy.n_paths.  A greedy win achieved only by
   spending more paths than the ILP needed is the one incomparable case. *)

let ilp_beats_greedy f index =
  let chip, _ = case f index in
  match (Pathgen.generate ~node_limit:400 chip, Pathgen.generate ~node_limit:0 chip) with
  | Ok ilp, Ok greedy ->
    ilp.Pathgen.degraded
    || ilp.Pathgen.n_paths < greedy.Pathgen.n_paths
    || List.length ilp.Pathgen.added_edges <= List.length greedy.Pathgen.added_edges
  | Ok _, Error _ -> true (* ILP covered a chip the heuristic could not *)
  | Error f, _ -> Alcotest.failf "pathgen on %s: %a" (Chip.name chip) Mf_util.Fail.pp f

(* ------------------------------------------------------------------ *)
(* P6: pool construction is parallelism-invariant — jobs=1 and jobs=4
   produce identical attempt fingerprints and configurations, and fail
   identically when the chip exhausts the candidate ladder *)

let pool_fingerprint f index jobs =
  let chip, _ = case f index in
  let rng = Rng.create ~seed:(case_seed (family_salt f) index + 77) in
  Domain_pool.with_pool ~jobs (fun domains ->
      match Pool.build ~size:4 ~node_limit:400 ~domains ~rng chip with
      | Error _ -> None
      | Ok pool ->
        Some
          ( Pool.attempt_objectives pool,
            Array.map
              (fun (e : Pool.entry) -> e.Pool.config.Pathgen.added_edges)
              (Pool.entries pool) ))

let pool_parallel_invariant f index =
  pool_fingerprint f index 1 = pool_fingerprint f index 4

(* ------------------------------------------------------------------ *)
(* P7: fault-adaptive repair differential — inject k seed-stable stuck-open
   valve faults into a deployed Pool suite, repair incrementally, and the
   result must re-certify through the independent verifier with every
   escape audited-waived as provably untestable.  Repair may legitimately
   fail typed on pathological pairs (e.g. a fault context that strands the
   meter); a typed Error is discarded, a silently-bad Ok never is. *)

let repair_recertifies f index =
  let chip, _ = case f index in
  let rng = Rng.create ~seed:(case_seed (family_salt f) index + 53) in
  match Pool.build ~size:3 ~node_limit:400 ~rng chip with
  | Error _ -> QCheck.assume_fail ()
  | Ok pool -> (
    let e = (Pool.entries pool).(0) in
    let aug = e.Pool.augmented in
    let k = 1 + (index mod 2) in
    let faults =
      List.map
        (fun v -> Fault.Stuck_at_1 v)
        (Chaos.sample_sites
           ~seed:(case_seed (family_salt f) index)
           ~count:k ~n_sites:(Chip.n_valves aug))
    in
    if faults = [] then QCheck.assume_fail ()
    else
      match Reconfig.repair aug e.Pool.suite faults with
      | Error _ -> QCheck.assume_fail ()
      | Ok r ->
        let n_err, _ = Mf_util.Diag.count r.Reconfig.diags in
        if n_err > 0 then
          QCheck.Test.fail_reportf "%s: %d re-certification error(s) after repair"
            (Chip.name chip) n_err
        else if
          r.Reconfig.coverage.Coverage.detected + List.length r.Reconfig.untestable
          <> r.Reconfig.coverage.Coverage.total_faults
        then
          QCheck.Test.fail_reportf "%s: unwaived escapes (%d detected + %d waived <> %d)"
            (Chip.name chip) r.Reconfig.coverage.Coverage.detected
            (List.length r.Reconfig.untestable)
            r.Reconfig.coverage.Coverage.total_faults
        else true)

(* ------------------------------------------------------------------ *)
(* P8: the batched parallel branch-and-bound is parallelism-invariant on
   real chip models — the full Pathgen configuration, including the solver
   effort stats, is bit-identical with relaxations solved inline vs fanned
   out over 4 domains *)

let ilp_fingerprint f index jobs =
  let chip, _ = case f index in
  let run pool =
    match Pathgen.generate ~node_limit:400 ?pool chip with
    | Error fl -> Error (Mf_util.Fail.stage_name fl.Mf_util.Fail.stage)
    | Ok c ->
      Ok
        ( c.Pathgen.added_edges,
          c.Pathgen.paths,
          c.Pathgen.n_paths,
          c.Pathgen.ilp_nodes,
          c.Pathgen.loop_cuts,
          c.Pathgen.solver,
          c.Pathgen.degraded )
  in
  if jobs = 1 then run None else Domain_pool.with_pool ~jobs (fun p -> run (Some p))

let ilp_parallel_invariant f index = ilp_fingerprint f index 1 = ilp_fingerprint f index 4

let family_suite f =
  let n = f.Families.name in
  ( Printf.sprintf "corpus:%s" n,
    [
      prop ~name:(n ^ " lints clean") ~count:lint_count f lint_clean;
      prop ~name:(n ^ " seed-stable io") ~count:(max 10 (lint_count / 10)) f seed_stable;
      prop ~name:(n ^ " suite re-certifies") ~count:recert_count f recertifies;
      prop ~name:(n ^ " run = run_reference") ~count:sched_count f sched_differential;
      prop ~name:(n ^ " ilp >= greedy coverage") ~count:greedy_count f ilp_beats_greedy;
      prop ~name:(n ^ " pool jobs=1 = jobs=4") ~count:pool_count f pool_parallel_invariant;
      prop ~name:(n ^ " repair re-certifies") ~count:repair_count f repair_recertifies;
      prop ~name:(n ^ " parallel ilp jobs=1 = jobs=4") ~count:pool_count f
        ilp_parallel_invariant;
    ]
    @
    (* pinned regression case: the fpva/6 model historically exercised the
       lazy-cut re-queue path hardest *)
    if n = "fpva" then
      [
        Alcotest.test_case "fpva/6 parallel ilp invariance" `Slow (fun () ->
            Alcotest.(check bool)
              "jobs=1 = jobs=4" true
              (ilp_parallel_invariant f 6));
      ]
    else [] )

let () =
  (* exact-value differentials require the fault-free pipeline *)
  Mf_util.Chaos.neutralise ();
  Alcotest.run "mf_corpus" (List.map family_suite Families.all)
