(** Control-layer synthesis.

    Above the flow layer, every control line is a physical channel running
    from a control port at the chip boundary to the valve(s) it drives
    ([12], [14]).  Valve sharing (Sec. 4) is exactly the statement that a
    DFT valve taps an {e existing} control channel instead of needing a new
    boundary port — this module makes that concrete by routing the control
    layer and reporting its cost:

    - one control port per control line, placed on the boundary;
    - control channels as node-disjoint trees on the control-layer grid
      (channels may cross the flow layer, which is below, but not each
      other);
    - per-valve {e actuation delay} proportional to the channel length from
      the port ([12]'s pressure-propagation model), and per-line {e skew} —
      the spread of delays among valves sharing the line, the quantity
      length-matching ([14]) minimises. *)

type route = {
  line : int;  (** control line id *)
  port_node : int;  (** boundary grid node hosting the control port *)
  tree_edges : int list;  (** control-layer grid edges of the channel tree *)
  taps : (int * int) list;  (** (valve id, flow-layer tap node) *)
}

type t = {
  routes : route list;
  unrouted : int list;  (** control lines the router could not connect *)
  layer_graph : Mf_graph.Graph.t;
      (** the grid graph the trees are embedded in (edge ids of
          [tree_edges] refer to it) *)
}

val synthesize : Mf_arch.Chip.t -> t
(** Route every control line of the chip.  Deterministic; lines with more
    valves route first.  Lines that cannot be connected (congestion) end in
    [unrouted] — on the bundled chips this does not happen. *)

val total_length : t -> int
(** Summed control-channel length (grid edges), the manufacturing cost. *)

val n_ports : t -> int
(** Number of control ports = number of routed lines.  With valve sharing
    this stays at the original chip's count — the paper's headline claim. *)

val actuation_delay : ?alpha:float -> ?beta:float -> t -> valve:int -> float option
(** Delay for one valve: [alpha * path_length + beta] along its line's tree
    from the control port ([12]); [None] when the valve's line is unrouted.
    Defaults: alpha = 1.0, beta = 2.0 (arbitrary units). *)

val skew : ?alpha:float -> ?beta:float -> t -> line:int -> float option
(** Spread (max - min) of actuation delays among the valves of one line;
    0 for unshared lines, the length-matching objective of [14] for shared
    ones. *)

val max_skew : ?alpha:float -> ?beta:float -> t -> float
(** Worst skew over all routed lines. *)

val pp : Format.formatter -> t -> unit
