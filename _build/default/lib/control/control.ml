module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Bitset = Mf_util.Bitset

type route = {
  line : int;
  port_node : int;
  tree_edges : int list;
  taps : (int * int) list;
}

type t = { routes : route list; unrouted : int list; layer_graph : Graph.t }

(* The control layer shares the chip's grid but is its own routing plane:
   control channels may run over flow structures (they are a layer above)
   but not over each other, so routed trees claim their nodes. *)

let boundary_nodes grid =
  let w = Grid.width grid and h = Grid.height grid in
  let nodes = ref [] in
  for x = 0 to w - 1 do
    nodes := Grid.node grid ~x ~y:0 :: Grid.node grid ~x ~y:(h - 1) :: !nodes
  done;
  for y = 1 to h - 2 do
    nodes := Grid.node grid ~x:0 ~y :: Grid.node grid ~x:(w - 1) ~y :: !nodes
  done;
  List.sort_uniq compare !nodes

(* Grow a tree over free control-layer nodes that connects all [targets]
   (valve tap nodes) and reaches one boundary node.  Prim-style: start from
   the first target, repeatedly attach the nearest remaining target by a
   cheapest path over free nodes (tree nodes are free for this line).

   Control channels cannot cross, so a tree slicing through the middle of
   the chip strands everything it separates.  Routing is therefore
   weighted: interior detours cost more than rim-hugging ones, keeping the
   centre open for later lines. *)
let route_line g grid ~claimed ~targets =
  match targets with
  | [] -> None
  | first :: rest ->
    begin
      let w = Grid.width grid and h = Grid.height grid in
      let centrality n =
        let x, y = Grid.coords grid n in
        min (min x y) (min (w - 1 - x) (h - 1 - y))
      in
      let tree_nodes = Bitset.create (Graph.n_nodes g) in
      Bitset.add tree_nodes first;
      let tree_edges = ref [] in
      let mine n = List.mem n targets in
      let free n = (not (Bitset.mem claimed n)) || Bitset.mem tree_nodes n || mine n in
      let edge_ok e =
        let u, v = Graph.endpoints g e in
        free u && free v
      in
      let edge_cost e =
        let u, v = Graph.endpoints g e in
        1. +. (0.35 *. float_of_int (min (centrality u) (centrality v)))
      in
      (* multi-source Dijkstra from the current tree to a set of goals *)
      let connect goals =
        let n_nodes = Graph.n_nodes g in
        let parent_edge = Array.make n_nodes (-1) in
        let parent_node = Array.make n_nodes (-1) in
        let dist = Array.make n_nodes infinity in
        let settled = Bitset.create n_nodes in
        let heap = Mf_util.Heap.create () in
        Bitset.iter
          (fun n ->
            dist.(n) <- 0.;
            Mf_util.Heap.push heap 0. n)
          tree_nodes;
        let found = ref None in
        let rec drain () =
          match Mf_util.Heap.pop heap with
          | None -> ()
          | Some (d, u) ->
            if not (Bitset.mem settled u) then begin
              Bitset.add settled u;
              if List.mem u goals && not (Bitset.mem tree_nodes u) then found := Some u
              else
                List.iter
                  (fun (e, v) ->
                    if edge_ok e && not (Bitset.mem settled v) then begin
                      let cand = d +. edge_cost e in
                      if cand < dist.(v) then begin
                        dist.(v) <- cand;
                        parent_edge.(v) <- e;
                        parent_node.(v) <- u;
                        Mf_util.Heap.push heap cand v
                      end
                    end)
                  (Graph.incident g u)
            end;
            if !found = None then drain ()
        in
        drain ();
        match !found with
        | None ->
          (* a goal may already be inside the tree *)
          (match List.find_opt (fun n -> Bitset.mem tree_nodes n) goals with
           | Some n -> Some n
           | None -> None)
        | Some goal ->
          let rec unwind n =
            if Bitset.mem tree_nodes n then ()
            else begin
              Bitset.add tree_nodes n;
              tree_edges := parent_edge.(n) :: !tree_edges;
              unwind parent_node.(n)
            end
          in
          unwind goal;
          Some goal
      in
      let ok_targets = List.for_all (fun t -> connect [ t ] <> None) rest in
      if not ok_targets then None
      else begin
        let boundary = List.filter (fun n -> free n) (boundary_nodes grid) in
        match connect boundary with
        | None -> None
        | Some port -> Some (port, !tree_edges, tree_nodes)
      end
    end

let synthesize_once ~attempt chip =
  let flow_grid = Chip.grid chip in
  let flow_g = Grid.graph flow_grid in
  (* the control layer is fabricated at a finer pitch: route on a 6x
     refined grid, where every flow-layer valve (an edge midpoint) gets its
     own tap node with clear corridors around it *)
  let grid =
    Grid.create
      ~width:((6 * (Grid.width flow_grid - 1)) + 1)
      ~height:((6 * (Grid.height flow_grid - 1)) + 1)
  in
  let g = Grid.graph grid in
  let claimed = Bitset.create (Graph.n_nodes g) in
  let tap (v : Chip.valve) =
    let a, b = Graph.endpoints flow_g v.edge in
    let ax, ay = Grid.coords flow_grid a and bx, by = Grid.coords flow_grid b in
    Grid.node grid ~x:(3 * (ax + bx)) ~y:(3 * (ay + by))
  in
  let lines = List.init (Chip.n_controls chip) Fun.id in
  let with_valves =
    List.map (fun line -> (line, Chip.valves_of_control chip line)) lines
    |> List.filter (fun (_, vs) -> vs <> [])
  in
  (* reserve every tap node up front so no tree runs over a foreign tap *)
  List.iter
    (fun (_, valves) -> List.iter (fun v -> Bitset.add claimed (tap v)) valves)
    with_valves;
  (* many-valve (shared) lines route first: they are the most constrained;
     ties are permuted per attempt so congestion failures can be retried *)
  let rng = Mf_util.Rng.create ~seed:(1009 * (attempt + 1)) in
  let jitter = Array.init (List.length with_valves) (fun _ -> Mf_util.Rng.int rng 1_000_000) in
  let ordered =
    List.mapi (fun i lv -> (i, lv)) with_valves
    |> List.sort (fun (i, (_, a)) (j, (_, b)) ->
        let key idx vs = (-List.length vs, if attempt = 0 then idx else jitter.(idx)) in
        compare (key i a) (key j b))
    |> List.map snd
  in
  let routes = ref [] in
  let unrouted = ref [] in
  List.iter
    (fun (line, valves) ->
      let targets = List.sort_uniq compare (List.map tap valves) in
      match route_line g grid ~claimed ~targets with
      | None -> unrouted := line :: !unrouted
      | Some (port, tree_edges, tree_nodes) ->
        Bitset.iter (fun n -> Bitset.add claimed n) tree_nodes;
        routes :=
          {
            line;
            port_node = port;
            tree_edges;
            taps = List.map (fun (v : Chip.valve) -> (v.valve_id, tap v)) valves;
          }
          :: !routes)
    ordered;
  { routes = List.rev !routes; unrouted = List.sort compare !unrouted; layer_graph = g }

(* Sequential routing is order-sensitive; retry a few permutations and keep
   the most complete layout. *)
let synthesize chip =
  let rec go attempt best =
    if attempt >= 6 then best
    else begin
      let layout = synthesize_once ~attempt chip in
      if layout.unrouted = [] then layout
      else begin
        let better =
          match best.unrouted with
          | [] -> best
          | current -> if List.length layout.unrouted < List.length current then layout else best
        in
        go (attempt + 1) better
      end
    end
  in
  let first = synthesize_once ~attempt:0 chip in
  if first.unrouted = [] then first else go 1 first

let total_length t =
  List.fold_left (fun acc r -> acc + List.length r.tree_edges) 0 t.routes

let n_ports t = List.length t.routes

(* Delay along the unique tree path from the control port to the tap. *)
let path_length_in_tree g route ~to_node =
  let member = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace member e ()) route.tree_edges;
  let allowed e = Hashtbl.mem member e in
  let dist = Traverse.bfs_dist g ~allowed ~src:route.port_node in
  if to_node = route.port_node then Some 0
  else if dist.(to_node) = max_int then None
  else Some dist.(to_node)

let delay_of ~alpha ~beta g route tap_node =
  Option.map (fun len -> (alpha *. float_of_int len) +. beta) (path_length_in_tree g route ~to_node:tap_node)

let find_route t ~valve =
  List.find_opt (fun r -> List.mem_assoc valve r.taps) t.routes

let actuation_delay ?(alpha = 1.0) ?(beta = 2.0) t ~valve =
  match find_route t ~valve with
  | None -> None
  | Some route ->
    let tap_node = List.assoc valve route.taps in
    delay_of ~alpha ~beta t.layer_graph route tap_node

let skew ?(alpha = 1.0) ?(beta = 2.0) t ~line =
  match List.find_opt (fun r -> r.line = line) t.routes with
  | None -> None
  | Some route ->
    let delays =
      List.filter_map
        (fun (_, tap_node) -> delay_of ~alpha ~beta t.layer_graph route tap_node)
        route.taps
    in
    (match delays with
     | [] -> None
     | d :: rest ->
       let mn = List.fold_left min d rest and mx = List.fold_left max d rest in
       Some (mx -. mn))

let max_skew ?(alpha = 1.0) ?(beta = 2.0) t =
  List.fold_left
    (fun acc r -> match skew ~alpha ~beta t ~line:r.line with Some s -> max acc s | None -> acc)
    0. t.routes

let pp ppf t =
  Fmt.pf ppf "control layer: %d ports, total length %d%s" (n_ports t) (total_length t)
    (if t.unrouted = [] then ""
     else Fmt.str ", UNROUTED lines %a" Fmt.(list ~sep:comma int) t.unrouted)
