lib/control/control.mli: Format Mf_arch Mf_graph
