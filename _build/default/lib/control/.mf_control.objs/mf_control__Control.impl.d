lib/control/control.ml: Array Fmt Fun Hashtbl List Mf_arch Mf_graph Mf_grid Mf_util Option
