(** Dense two-phase primal simplex for linear programs in computational
    standard form

    {v minimize c·x  subject to  A x = b,  l <= x <= u v}

    with finite lower bounds and possibly infinite upper bounds.  Nonbasic
    variables rest at one of their bounds (bounded-variable simplex), so 0-1
    relaxations need no explicit bound rows.

    Anti-cycling: Dantzig pricing normally, switching to Bland's rule after
    a stall budget is exhausted. *)

type result =
  | Optimal of { objective : float; values : float array }
  | Infeasible
  | Unbounded

val solve :
  ?max_iters:int ->
  a:float array array ->
  b:float array ->
  c:float array ->
  lower:float array ->
  upper:float array ->
  unit ->
  result
(** [solve ~a ~b ~c ~lower ~upper ()] minimises [c·x] subject to [a x = b]
    and [lower <= x <= upper].  [a] is row-major, one inner array per
    constraint.  All rows must have the same width as [c], [lower] and
    [upper].  [upper.(j)] may be [infinity]; lower bounds must be finite.
    [max_iters] bounds total pivots (default scales with problem size);
    exceeding it raises [Failure]. *)
