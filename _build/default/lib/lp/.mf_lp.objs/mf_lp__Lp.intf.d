lib/lp/lp.mli:
