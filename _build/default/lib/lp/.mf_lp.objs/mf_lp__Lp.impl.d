lib/lp/lp.ml: Array List Simplex
