lib/lp/simplex.mli:
