(** Manufacturing defect model of Sec. 2.

    - [Stuck_at_0 edge]: the channel on [edge] is blocked, or its valve can
      never open — no air passes regardless of control state.
    - [Stuck_at_1 valve]: the valve can never close — air always passes its
      edge.
    - [Leak valve]: a control-to-flow layer leak at the valve's membrane
      (the third defect class Sec. 2 mentions): whenever the valve's
      control line is pressurised, air seeps into the flow channel at the
      valve seat.  Detected "similarly" to stuck-at-1: a cut that closes
      the valve while a route from its seat to the meter stays open sees
      pressure that should not be there. *)

type t =
  | Stuck_at_0 of int  (** channel edge id *)
  | Stuck_at_1 of int  (** valve id *)
  | Leak of int  (** valve id *)

val equal : t -> t -> bool
val compare : t -> t -> int

val all : Mf_arch.Chip.t -> t list
(** The paper's demonstration universe: one stuck-at-0 per channel edge and
    one stuck-at-1 per valve. *)

val all_with_leaks : Mf_arch.Chip.t -> t list
(** {!all} extended with one control-to-flow leak per valve. *)

val pp : Mf_arch.Chip.t -> Format.formatter -> t -> unit
