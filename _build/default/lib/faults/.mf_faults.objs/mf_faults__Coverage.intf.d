lib/faults/coverage.mli: Format Mf_arch Vector
