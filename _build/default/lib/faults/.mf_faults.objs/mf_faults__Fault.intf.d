lib/faults/fault.mli: Format Mf_arch
