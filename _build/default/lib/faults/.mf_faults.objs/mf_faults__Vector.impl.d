lib/faults/vector.ml: Array Fmt List Mf_arch Mf_util Printf
