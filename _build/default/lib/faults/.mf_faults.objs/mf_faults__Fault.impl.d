lib/faults/fault.ml: Array Fmt List Mf_arch Mf_grid Mf_util Stdlib
