lib/faults/coverage.ml: Fault Fmt List Mf_arch Pressure
