lib/faults/pressure.mli: Fault Mf_arch Mf_util Vector
