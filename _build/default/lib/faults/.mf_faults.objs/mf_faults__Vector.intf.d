lib/faults/vector.mli: Format Mf_arch Mf_util
