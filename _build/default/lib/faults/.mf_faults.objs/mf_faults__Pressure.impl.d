lib/faults/pressure.ml: Array Fault List Mf_arch Mf_graph Mf_grid Mf_util Vector
