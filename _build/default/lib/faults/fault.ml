module Chip = Mf_arch.Chip
module Bitset = Mf_util.Bitset
module Grid = Mf_grid.Grid

type t = Stuck_at_0 of int | Stuck_at_1 of int | Leak of int

let equal a b = a = b
let compare = Stdlib.compare

let all chip =
  let sa0 =
    Bitset.fold (fun e acc -> Stuck_at_0 e :: acc) (Chip.channel_edges chip) []
  in
  let sa1 =
    Array.fold_left (fun acc (v : Chip.valve) -> Stuck_at_1 v.valve_id :: acc) [] (Chip.valves chip)
  in
  List.rev_append sa0 (List.rev sa1)

let all_with_leaks chip =
  all chip
  @ (Array.to_list (Chip.valves chip) |> List.map (fun (v : Chip.valve) -> Leak v.valve_id))

let pp chip ppf = function
  | Stuck_at_0 e -> Fmt.pf ppf "SA0@@%a" (Grid.pp_edge (Chip.grid chip)) e
  | Stuck_at_1 v ->
    let valve = (Chip.valves chip).(v) in
    Fmt.pf ppf "SA1@@v%d(%a)" v (Grid.pp_edge (Chip.grid chip)) valve.edge
  | Leak v ->
    let valve = (Chip.valves chip).(v) in
    Fmt.pf ppf "LEAK@@v%d(%a)" v (Grid.pp_edge (Chip.grid chip)) valve.edge
