(** Test vectors: a control-line activation pattern applied while air
    pressure is injected at a source port and observed at meter ports.

    Activating a control line pressurises it, {e closing} every valve it
    drives; valves on inactive lines are open; channel edges without a
    valve always conduct. *)

type kind =
  | Path of int list
      (** the channel edges intended to conduct (a source→meter path or,
          for multi-meter vectors, a tree) *)
  | Cut of int list  (** the valve ids intended to isolate source from meters *)

type t = {
  label : string;
  kind : kind;
  active_lines : Mf_util.Bitset.t;  (** pressurised control lines *)
  source : int;  (** source port node *)
  meters : int list;  (** meter port nodes (singleton in DFT architectures) *)
  expected : bool;  (** fault-free reading: does any meter see pressure? *)
}

val of_path : Mf_arch.Chip.t -> source:int -> meters:int list -> int list -> t
(** [of_path chip ~source ~meters edges] builds the stuck-at-0 vector that
    opens exactly the valves on [edges] (and, under control sharing,
    whatever else their lines drive) and closes every other line. *)

val of_cut : Mf_arch.Chip.t -> source:int -> meters:int list -> int list -> t
(** [of_cut chip ~source ~meters valve_ids] activates the lines of the cut
    valves and releases all others. *)

val pp : Format.formatter -> t -> unit
