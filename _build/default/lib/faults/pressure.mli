(** Pressure-propagation simulation: the test-bench physics of Sec. 2.

    Air injected at the source port spreads through every conducting channel
    edge; a meter reads pressure iff it is in the connected component of the
    source.  An edge conducts when it carries a channel, is not blocked by a
    stuck-at-0 defect, and its valve (if any) is open — either because its
    control line is inactive or because the valve is stuck-at-1. *)

val conducts :
  Mf_arch.Chip.t -> ?fault:Fault.t -> active_lines:Mf_util.Bitset.t -> int -> bool
(** Does a single edge conduct under the given control state and optional
    injected fault? *)

val reading : Mf_arch.Chip.t -> ?fault:Fault.t -> Vector.t -> bool
(** [reading chip ?fault v] applies vector [v] and reports whether any meter
    observes pressure. *)

val readings : Mf_arch.Chip.t -> ?fault:Fault.t -> Vector.t -> bool list
(** Per-meter readings, in [v.meters] order. *)

val detects : Mf_arch.Chip.t -> Vector.t -> Fault.t -> bool
(** A vector detects a fault when the faulty reading of {e some} meter
    differs from its fault-free reading (each meter is observed
    independently on the test bench). *)

val well_formed : Mf_arch.Chip.t -> Vector.t -> bool
(** The vector's fault-free reading matches its [expected] field — the
    basic sanity required before a vector may enter a test set (an invalid
    cut vector, for instance, reads pressure even without defects). *)
