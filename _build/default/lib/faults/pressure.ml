module Chip = Mf_arch.Chip
module Bitset = Mf_util.Bitset
module Grid = Mf_grid.Grid
module Traverse = Mf_graph.Traverse

let conducts chip ?fault ~active_lines e =
  Chip.is_channel chip e
  && (match fault with Some (Fault.Stuck_at_0 e') when e' = e -> false | _ -> true)
  &&
  match Chip.valve_on chip e with
  | None -> true
  | Some v ->
    (not (Bitset.mem active_lines v.control))
    || (match fault with Some (Fault.Stuck_at_1 v') -> v' = v.valve_id | _ -> false)

let reach chip ?fault (v : Vector.t) =
  let g = Grid.graph (Chip.grid chip) in
  let allowed e = conducts chip ?fault ~active_lines:v.active_lines e in
  let from_source = Traverse.reachable g ~allowed ~src:v.source in
  (* a control-to-flow leak injects air at the valve seat whenever its
     control line is pressurised, independent of the test source *)
  match fault with
  | Some (Fault.Leak w) ->
    let valve = (Chip.valves chip).(w) in
    if Bitset.mem v.active_lines valve.control then begin
      let a, b = Mf_graph.Graph.endpoints g valve.edge in
      Bitset.union_into from_source (Traverse.reachable g ~allowed ~src:a);
      Bitset.union_into from_source (Traverse.reachable g ~allowed ~src:b);
      from_source
    end
    else from_source
  | Some (Fault.Stuck_at_0 _ | Fault.Stuck_at_1 _) | None -> from_source

let reading chip ?fault (v : Vector.t) =
  let r = reach chip ?fault v in
  List.exists (fun meter -> Bitset.mem r meter) v.meters

let readings chip ?fault (v : Vector.t) =
  let r = reach chip ?fault v in
  List.map (fun meter -> Bitset.mem r meter) v.meters

let detects chip (v : Vector.t) fault = readings chip ~fault v <> readings chip v

let well_formed chip (v : Vector.t) =
  (* every meter must agree with the vector's expectation when no defect is
     present: a path/tree vector pressurises all its meters, a cut vector
     none of them *)
  List.for_all (fun r -> r = v.expected) (readings chip v)
