module Chip = Mf_arch.Chip
module Bitset = Mf_util.Bitset

type kind = Path of int list | Cut of int list

type t = {
  label : string;
  kind : kind;
  active_lines : Bitset.t;
  source : int;
  meters : int list;
  expected : bool;
}

let of_path chip ~source ~meters edges =
  let active = Bitset.create (Chip.n_controls chip) in
  Bitset.fill active;
  List.iter
    (fun e ->
      match Chip.valve_on chip e with
      | Some v -> Bitset.remove active v.control
      | None -> ())
    edges;
  {
    label = Printf.sprintf "path[%d edges]" (List.length edges);
    kind = Path edges;
    active_lines = active;
    source;
    meters;
    expected = true;
  }

let of_cut chip ~source ~meters valve_ids =
  let active = Bitset.create (Chip.n_controls chip) in
  let all_valves = Chip.valves chip in
  List.iter (fun v -> Bitset.add active all_valves.(v).control) valve_ids;
  {
    label = Printf.sprintf "cut[%d valves]" (List.length valve_ids);
    kind = Cut valve_ids;
    active_lines = active;
    source;
    meters;
    expected = false;
  }

let pp ppf t =
  Fmt.pf ppf "%s src=%d meters=%a expect=%b" t.label t.source Fmt.(list ~sep:comma int) t.meters
    t.expected
