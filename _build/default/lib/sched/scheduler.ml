module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Bitset = Mf_util.Bitset
module Op = Mf_bioassay.Op
module Seqgraph = Mf_bioassay.Seqgraph

type options = {
  respect_sharing : bool;
  transport_cost : int;
  allow_storage : bool;
  horizon : int;
  wash : bool;
  wash_penalty : int;
}

let default_options =
  {
    respect_sharing = true;
    transport_cost = 1;
    allow_storage = true;
    horizon = 1_000_000;
    wash = false;
    wash_penalty = 2;
  }

(* ------------------------------------------------------------------ *)
(* Mutable run state *)

type unit_loc =
  | Fresh  (** reagent available at every port *)
  | At_device of int
  | Stored of int  (** channel edge *)
  | At_reservoir of int  (** parked off-chip in the vial of a port (node id) *)
  | In_transit
  | Consumed

type unit_state = {
  u_id : int;
  producer : int option;  (** producing op, [None] for fresh reagents *)
  consumer : int;
  mutable loc : unit_loc;
}

type device_run = Idle | Running of int * int  (** op, finish time *)

type dev = {
  d_id : int;
  d_kind : Chip.device_kind;
  d_node : int;
  mutable d_run : device_run;
  mutable reserved_by : int option;
}

type dest = To_device of int | To_storage of int | To_reservoir of int

type transport = {
  t_unit : int;
  t_path : int list;  (** channel edges, in travel order *)
  t_nodes : int list;  (** nodes visited, including both ends *)
  t_dest : dest;
  t_finish : int;
}

type state = {
  chip : Chip.t;
  g : Graph.t;
  channels : Bitset.t;
  app : Seqgraph.t;
  opts : options;
  devs : dev array;
  units : unit_state array;
  inputs_of : int list array;  (** op -> unit ids it consumes *)
  outputs_of : int list array;  (** op -> unit ids it produces *)
  op_bound : int option array;
  op_started : bool array;
  op_finished : bool array;
  op_finish_time : int array;
  mutable transports : transport list;
  mutable events : Schedule.event list;  (** reversed *)
  mutable n_transports : int;
  mutable transport_time : int;
  mutable n_stored : int;
  mutable n_washes : int;
  last_user : int array;  (** edge -> lineage of the last fluid through it *)
  priority : int list;  (** topological op order *)
  port_nodes : int list;
}

(* Residue identity of a unit: its producing operation, or a unique negative
   tag for fresh reagents (each root draws a distinct reagent). *)
let lineage (u : unit_state) =
  match u.producer with Some p -> p | None -> -(u.consumer + 2)

let device_kind_of_op = function
  | Op.Mix -> Chip.Mixer
  | Op.Detect -> Chip.Detector
  | Op.Heat -> Chip.Heater
  | Op.Filter -> Chip.Filter

let init chip app opts =
  let devs =
    Array.map
      (fun (d : Chip.device) ->
        { d_id = d.device_id; d_kind = d.kind; d_node = d.node; d_run = Idle; reserved_by = None })
      (Chip.devices chip)
  in
  let n = Seqgraph.n_ops app in
  let units = ref [] in
  let next_unit = ref 0 in
  let inputs_of = Array.make n [] in
  let outputs_of = Array.make n [] in
  for j = 0 to n - 1 do
    match Seqgraph.preds app j with
    | [] ->
      let u = { u_id = !next_unit; producer = None; consumer = j; loc = Fresh } in
      incr next_unit;
      units := u :: !units;
      inputs_of.(j) <- [ u.u_id ]
    | preds ->
      List.iter
        (fun p ->
          let u = { u_id = !next_unit; producer = Some p; consumer = j; loc = Consumed } in
          (* loc becomes At_device when the producer finishes; Consumed is a
             safe placeholder meaning "not yet materialised" *)
          incr next_unit;
          units := u :: !units;
          inputs_of.(j) <- inputs_of.(j) @ [ u.u_id ];
          outputs_of.(p) <- outputs_of.(p) @ [ u.u_id ])
        preds
  done;
  {
    chip;
    g = Grid.graph (Chip.grid chip);
    channels = Chip.channel_edges chip;
    app;
    opts;
    devs;
    units = Array.of_list (List.rev !units);
    inputs_of;
    outputs_of;
    op_bound = Array.make n None;
    op_started = Array.make n false;
    op_finished = Array.make n false;
    op_finish_time = Array.make n 0;
    transports = [];
    events = [];
    n_transports = 0;
    transport_time = 0;
    n_stored = 0;
    n_washes = 0;
    last_user = Array.make (Graph.n_edges (Grid.graph (Chip.grid chip))) min_int;
    priority =
      (* sinks first: finishing them consumes fluids without producing new
         ones, releasing devices and storage for everything else *)
      (let topo = Seqgraph.topological app in
       let sinks, inner = List.partition (fun j -> Seqgraph.succs app j = []) topo in
       sinks @ inner);
    port_nodes = Array.to_list (Chip.ports chip) |> List.map (fun (p : Chip.port) -> p.node);
  }

(* ------------------------------------------------------------------ *)
(* Occupancy *)

let units_at_device st d_id =
  Array.to_list st.units |> List.filter (fun u -> u.loc = At_device d_id)

(* Units already at the device plus those in transit towards it: binding and
   clearance decisions must see inbound fluids, or an op can claim a chamber
   that a parked unit is about to enter. *)
let units_at_or_heading st d_id =
  let inbound =
    List.filter_map
      (fun tr ->
        match tr.t_dest with
        | To_device d when d = d_id -> Some st.units.(tr.t_unit)
        | To_device _ | To_storage _ | To_reservoir _ -> None)
      st.transports
  in
  units_at_device st d_id @ inbound

let storage_edges st =
  let arrived =
    Array.to_list st.units
    |> List.filter_map (fun u ->
        match u.loc with
        | Stored e -> Some e
        | Fresh | At_device _ | At_reservoir _ | In_transit | Consumed -> None)
  in
  (* pockets already claimed by in-flight evictions count as occupied, or
     two placements can jointly sever the network *)
  let planned =
    List.filter_map
      (fun tr ->
        match tr.t_dest with
        | To_storage e -> Some e
        | To_device _ | To_reservoir _ -> None)
      st.transports
  in
  arrived @ planned

(* Nodes that resting fluids and busy devices make untouchable. *)
let occupied_nodes st =
  let set = Bitset.create (Graph.n_nodes st.g) in
  Array.iter
    (fun d ->
      let busy =
        match d.d_run with Running _ -> true | Idle -> units_at_device st d.d_id <> []
      in
      if busy then Bitset.add set d.d_node)
    st.devs;
  List.iter
    (fun e ->
      let u, v = Graph.endpoints st.g e in
      Bitset.add set u;
      Bitset.add set v)
    (storage_edges st);
  set

let transport_edge_set st extra_path =
  let set = Bitset.create (Graph.n_edges st.g) in
  List.iter (fun tr -> List.iter (Bitset.add set) tr.t_path) st.transports;
  List.iter (Bitset.add set) extra_path;
  set

let transport_node_set st extra_nodes =
  let set = Bitset.create (Graph.n_nodes st.g) in
  List.iter (fun tr -> List.iter (Bitset.add set) tr.t_nodes) st.transports;
  List.iter (Bitset.add set) extra_nodes;
  set

(* Valve-sharing legality (Sec. 4.1): with the candidate path's control
   lines released on top of those of in-flight transports, every valve
   forced open off-path must not border a resting fluid, a busy device or
   any transport's route. *)
let sharing_legal st ~path ~nodes =
  if not st.opts.respect_sharing then true
  else begin
    let inactive = Bitset.create (Chip.n_controls st.chip) in
    let release_path edges =
      List.iter
        (fun e ->
          match Chip.valve_on st.chip e with
          | Some v -> Bitset.add inactive v.control
          | None -> ())
        edges
    in
    release_path path;
    List.iter (fun tr -> release_path tr.t_path) st.transports;
    let moving_edges = transport_edge_set st path in
    let protected_nodes =
      let set = occupied_nodes st in
      Bitset.union_into set (transport_node_set st nodes);
      set
    in
    Array.for_all
      (fun (v : Chip.valve) ->
        (not (Bitset.mem inactive v.control))
        || Bitset.mem moving_edges v.edge
        ||
        let a, b = Graph.endpoints st.g v.edge in
        (not (Bitset.mem protected_nodes a)) && not (Bitset.mem protected_nodes b))
      (Chip.valves st.chip)
  end

(* BFS routing from any of [srcs] to [dst] through free channels avoiding
   occupied nodes; returns (src, edge path). *)
let route st ~srcs ~dst =
  let occupied = occupied_nodes st in
  let moving_edges = transport_edge_set st [] in
  let moving_nodes = transport_node_set st [] in
  let node_ok n =
    n = dst || List.mem n srcs
    || ((not (Bitset.mem occupied n)) && not (Bitset.mem moving_nodes n))
  in
  let storage = storage_edges st in
  let edge_ok e =
    Bitset.mem st.channels e
    && (not (Bitset.mem moving_edges e))
    && (not (List.mem e storage))
    &&
    let u, v = Graph.endpoints st.g e in
    node_ok u && node_ok v
  in
  let best = ref None in
  List.iter
    (fun src ->
      if node_ok src then
        match Mf_graph.Traverse.bfs_path st.g ~allowed:edge_ok ~src ~dst with
        | None -> ()
        | Some path ->
          let len = List.length path in
          (match !best with
           | Some (_, _, l) when l <= len -> ()
           | Some _ | None -> best := Some (src, path, len)))
    srcs;
  Option.map (fun (src, path, _) -> (src, path)) !best

let push_event st ev = st.events <- ev :: st.events

let begin_transport st time u ~src ~path ~dest =
  let nodes = Mf_graph.Traverse.path_nodes st.g ~src path in
  if not (sharing_legal st ~path ~nodes) then false
  else begin
    (* cross-contamination washing: flush segments whose residue belongs to
       a different sample before this one crosses them *)
    let me = lineage u in
    let dirty =
      if not st.opts.wash then 0
      else
        List.fold_left
          (fun acc e ->
            if st.last_user.(e) <> min_int && st.last_user.(e) <> me then acc + 1 else acc)
          0 path
    in
    if st.opts.wash then begin
      st.n_washes <- st.n_washes + dirty;
      List.iter (fun e -> st.last_user.(e) <- me) path
    end;
    let duration = (List.length path * st.opts.transport_cost) + (dirty * st.opts.wash_penalty) in
    u.loc <- In_transit;
    let finish = time + duration in
    st.transports <- { t_unit = u.u_id; t_path = path; t_nodes = nodes; t_dest = dest; t_finish = finish } :: st.transports;
    st.n_transports <- st.n_transports + 1;
    st.transport_time <- st.transport_time + duration;
    push_event st (Schedule.Transport_started { unit_id = u.u_id; path; time; finish });
    true
  end

(* ------------------------------------------------------------------ *)
(* Storage eviction *)

let storage_site st ~from_node =
  let occupied = occupied_nodes st in
  let moving_edges = transport_edge_set st [] in
  let moving_nodes = transport_node_set st [] in
  let storage = storage_edges st in
  let plain_node n =
    (not (Bitset.mem occupied n))
    && (not (Bitset.mem moving_nodes n))
    && Chip.device_at st.chip n = None
    && Chip.port_at st.chip n = None
  in
  let node_ok n = n = from_node || plain_node n in
  let edge_ok e =
    Bitset.mem st.channels e
    && (not (Bitset.mem moving_edges e))
    && (not (List.mem e storage))
    &&
    let u, v = Graph.endpoints st.g e in
    node_ok u && node_ok v
  in
  (* a storage edge must be enclosed by valves so the fluid can be held *)
  let enclosed e =
    let u, v = Graph.endpoints st.g e in
    let boundary n =
      Graph.incident st.g n
      |> List.for_all (fun (f, _) ->
          f = e || (not (Bitset.mem st.channels f))
          || Chip.valve_on st.chip f <> None)
    in
    boundary u && boundary v
  in
  (* Occupying a site blocks its endpoints until the fluid leaves; never
     pick one that would cut any device or port off from the rest.  Only
     persistent blockage (stored fluids) counts: busy devices free up on
     their own, but they must still be reachable afterwards, so every hub
     stays in the requirement. *)
  let keeps_network_connected e =
    let storage_blocked = Bitset.create (Graph.n_nodes st.g) in
    let block f =
      let u, v = Graph.endpoints st.g f in
      Bitset.add storage_blocked u;
      Bitset.add storage_blocked v
    in
    block e;
    List.iter block storage;
    let open_edge f =
      Bitset.mem st.channels f
      && f <> e
      && (not (List.mem f storage))
      &&
      let u, v = Graph.endpoints st.g f in
      (not (Bitset.mem storage_blocked u)) && not (Bitset.mem storage_blocked v)
    in
    let hubs =
      st.port_nodes @ (Array.to_list st.devs |> List.map (fun d -> d.d_node))
      |> List.filter (fun n -> not (Bitset.mem storage_blocked n))
    in
    match hubs with
    | [] -> false
    | hub :: rest ->
      let reach = Mf_graph.Traverse.reachable st.g ~allowed:open_edge ~src:hub in
      List.for_all (fun n -> Bitset.mem reach n) rest
  in
  (* The parked fluid must stay retrievable even while every device is busy:
     some route from the pocket to a port may not pass through any device
     node, or the fluid can be walled in by long-running neighbours. *)
  let egress_ok e =
    let eu, ev = Graph.endpoints st.g e in
    let device n = Chip.device_at st.chip n <> None in
    let open_edge f =
      f <> e
      && Bitset.mem st.channels f
      && (not (List.mem f storage))
      &&
      let u, v = Graph.endpoints st.g f in
      let ok n = n = eu || n = ev || not (device n) in
      ok u && ok v
    in
    let reach = Mf_graph.Traverse.reachable st.g ~allowed:open_edge ~src:eu in
    List.exists (fun p -> Bitset.mem reach p) st.port_nodes
  in
  (* BFS for the nearest suitable edge: walk outward and take the first
     reachable edge that qualifies *)
  let dist = Mf_graph.Traverse.bfs_dist st.g ~allowed:edge_ok ~src:from_node in
  let best = ref None in
  Graph.iter_edges
    (fun e u v ->
      if
        edge_ok e && enclosed e && u <> from_node && v <> from_node
        && plain_node u && plain_node v
        && keeps_network_connected e && egress_ok e
      then begin
        let d = min dist.(u) dist.(v) in
        if d < max_int then
          match !best with
          | Some (_, bd) when bd <= d -> ()
          | Some _ | None -> best := Some (e, d)
      end)
    st.g;
  match !best with
  | None -> None
  | Some (e, _) ->
    let u, v = Graph.endpoints st.g e in
    let target = if dist.(u) <= dist.(v) then u else v in
    (match Mf_graph.Traverse.bfs_path st.g ~allowed:edge_ok ~src:from_node ~dst:target with
     | None -> None
     | Some path -> Some (e, path @ [ e ]))

let try_evict st time d =
  match units_at_device st d.d_id with
  | [] -> false
  | u :: _ ->
    if not st.opts.allow_storage then false
    else begin
      let to_pocket () =
        match storage_site st ~from_node:d.d_node with
        | None -> false
        | Some (edge, path) ->
          let ok = begin_transport st time u ~src:d.d_node ~path ~dest:(To_storage edge) in
          if ok then st.n_stored <- st.n_stored + 1;
          ok
      in
      (* fall back to parking in an idle, empty, unreserved device: chambers
         double as storage when the channel pockets are full ([5]) *)
      let to_device () =
        let kind_count k =
          Array.fold_left (fun n d' -> if d'.d_kind = k then n + 1 else n) 0 st.devs
        in
        Array.to_list st.devs
        |> List.filter (fun d' ->
            d'.d_id <> d.d_id && d'.d_run = Idle && d'.reserved_by = None
            && units_at_or_heading st d'.d_id = []
            (* never park in the only device of a kind: operations of that
               kind would wait behind the parked fluid, a circular-wait
               recipe *)
            && kind_count d'.d_kind > 1)
        |> List.exists (fun d' ->
            match route st ~srcs:[ d.d_node ] ~dst:d'.d_node with
            | None | Some (_, []) -> false
            | Some (src, path) ->
              let ok = begin_transport st time u ~src ~path ~dest:(To_device d'.d_id) in
              if ok then st.n_stored <- st.n_stored + 1;
              ok)
      in
      (* last resort: push the sample off-chip into a port vial (one fluid
         per port); the round trip is paid in transport time *)
      let to_reservoir () =
        let occupied_ports =
          (Array.to_list st.units
          |> List.filter_map (fun u ->
              match u.loc with
              | At_reservoir n -> Some n
              | Fresh | At_device _ | Stored _ | In_transit | Consumed -> None))
          @ List.filter_map
              (fun tr ->
                match tr.t_dest with
                | To_reservoir n -> Some n
                | To_device _ | To_storage _ -> None)
              st.transports
        in
        st.port_nodes
        |> List.filter (fun n -> not (List.mem n occupied_ports))
        |> List.exists (fun n ->
            match route st ~srcs:[ d.d_node ] ~dst:n with
            | None | Some (_, []) -> false
            | Some (src, path) ->
              let ok = begin_transport st time u ~src ~path ~dest:(To_reservoir n) in
              if ok then st.n_stored <- st.n_stored + 1;
              ok)
      in
      to_pocket () || to_device () || to_reservoir ()
    end

(* ------------------------------------------------------------------ *)
(* Op advancement *)

let unit_source_nodes st u =
  match u.loc with
  | Fresh -> st.port_nodes
  | At_device d -> [ st.devs.(d).d_node ]
  | Stored e ->
    let a, b = Graph.endpoints st.g e in
    [ a; b ]
  | At_reservoir n -> [ n ]
  | In_transit | Consumed -> []

let clear_for st j d =
  List.for_all (fun u -> List.mem u.u_id st.inputs_of.(j)) (units_at_or_heading st d.d_id)

let bind st j =
  match st.op_bound.(j) with
  | Some d -> Some st.devs.(d)
  | None ->
    let kind = device_kind_of_op (Seqgraph.op st.app j).kind in
    let candidates =
      Array.to_list st.devs
      |> List.filter (fun d -> d.d_kind = kind && d.d_run = Idle && d.reserved_by = None)
    in
    let holds_input d =
      List.exists (fun u -> List.mem u.u_id st.inputs_of.(j)) (units_at_or_heading st d.d_id)
    in
    let score d =
      if holds_input d && clear_for st j d then 0
      else if units_at_or_heading st d.d_id = [] then 1
      else 2 (* needs eviction *)
    in
    let sorted = List.sort (fun a b -> compare (score a, a.d_id) (score b, b.d_id)) candidates in
    (match sorted with
     | d :: _ when score d <= 1 ->
       st.op_bound.(j) <- Some d.d_id;
       d.reserved_by <- Some j;
       Some d
     | _ -> None)

(* Returns true when any state change happened for op [j]. *)
let try_advance_op st time j =
  match bind st j with
  | None ->
    (* all compatible devices blocked: try freeing one by eviction *)
    let kind = device_kind_of_op (Seqgraph.op st.app j).kind in
    Array.to_list st.devs
    |> List.exists (fun d ->
        d.d_kind = kind && d.d_run = Idle && d.reserved_by = None
        && (not (clear_for st j d))
        && try_evict st time d)
  | Some d ->
    let changed = ref false in
    let all_arrived = ref true in
    List.iter
      (fun u_id ->
        let u = st.units.(u_id) in
        match u.loc with
        | At_device dd when dd = d.d_id -> ()
        | In_transit -> all_arrived := false
        | Fresh | At_device _ | Stored _ | At_reservoir _ ->
          all_arrived := false;
          let srcs = unit_source_nodes st u in
          (match route st ~srcs ~dst:d.d_node with
           | None -> ()
           | Some (src, []) ->
             ignore src;
             (* already adjacent: the unit sits on a storage edge touching
                the device, or a port shares the node — arrive instantly *)
             u.loc <- At_device d.d_id;
             changed := true
           | Some (src, path) ->
             if begin_transport st time u ~src ~path ~dest:(To_device d.d_id) then
               changed := true)
        | Consumed -> all_arrived := false (* producer not finished: unreachable here *))
      st.inputs_of.(j);
    if !all_arrived && clear_for st j d then begin
      List.iter (fun u_id -> st.units.(u_id).loc <- Consumed) st.inputs_of.(j);
      let op = Seqgraph.op st.app j in
      d.d_run <- Running (j, time + op.duration);
      d.reserved_by <- None;
      st.op_started.(j) <- true;
      push_event st (Schedule.Op_started { op = j; device = d.d_id; time });
      changed := true
    end;
    !changed

let try_progress st time =
  let changed = ref false in
  let continue = ref true in
  while !continue do
    continue := false;
    List.iter
      (fun j ->
        if
          (not st.op_started.(j))
          && List.for_all (fun p -> st.op_finished.(p)) (Seqgraph.preds st.app j)
          && try_advance_op st time j
        then begin
          changed := true;
          continue := true
        end)
      st.priority
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* Completions *)

let complete_at st time =
  (* transports first: arriving fluids may unblock the ops finishing now *)
  let arriving, still = List.partition (fun tr -> tr.t_finish = time) st.transports in
  st.transports <- still;
  List.iter
    (fun tr ->
      let u = st.units.(tr.t_unit) in
      match tr.t_dest with
      | To_device d -> u.loc <- At_device d
      | To_storage e ->
        u.loc <- Stored e;
        push_event st (Schedule.Unit_stored { unit_id = u.u_id; edge = e; time })
      | To_reservoir n ->
        u.loc <- At_reservoir n;
        push_event st (Schedule.Unit_parked { unit_id = u.u_id; port_node = n; time }))
    arriving;
  Array.iter
    (fun d ->
      match d.d_run with
      | Running (j, finish) when finish = time ->
        d.d_run <- Idle;
        st.op_finished.(j) <- true;
        st.op_finish_time.(j) <- time;
        List.iter (fun u_id -> st.units.(u_id).loc <- At_device d.d_id) st.outputs_of.(j);
        push_event st (Schedule.Op_finished { op = j; device = d.d_id; time })
      | Running _ | Idle -> ())
    st.devs

let next_event_time st =
  let best = ref max_int in
  List.iter (fun tr -> if tr.t_finish < !best then best := tr.t_finish) st.transports;
  Array.iter
    (fun d -> match d.d_run with Running (_, f) when f < !best -> best := f | Running _ | Idle -> ())
    st.devs;
  if !best = max_int then None else Some !best

(* ------------------------------------------------------------------ *)

let dump_state st time =
  let ppf = Format.err_formatter in
  Format.fprintf ppf "@[<v>-- scheduler deadlock at t=%d --@," time;
  Array.iter
    (fun d ->
      let held = units_at_device st d.d_id |> List.map (fun u -> u.u_id) in
      Format.fprintf ppf "dev %d (%s) run=%s reserved=%s holds=%a@," d.d_id
        (match d.d_kind with
         | Chip.Mixer -> "mixer"
         | Chip.Detector -> "detector"
         | Chip.Heater -> "heater"
         | Chip.Filter -> "filter")
        (match d.d_run with Idle -> "idle" | Running (j, f) -> Printf.sprintf "op%d until %d" j f)
        (match d.reserved_by with None -> "-" | Some j -> string_of_int j)
        Fmt.(list ~sep:comma int) held)
    st.devs;
  Array.iteri
    (fun j started ->
      if not started then
        Format.fprintf ppf "op %d pending: preds_done=%b bound=%s@," j
          (List.for_all (fun p -> st.op_finished.(p)) (Seqgraph.preds st.app j))
          (match st.op_bound.(j) with None -> "-" | Some d -> string_of_int d))
    st.op_started;
  Array.iter
    (fun u ->
      let loc =
        match u.loc with
        | Fresh -> "fresh"
        | At_device d -> Printf.sprintf "dev%d" d
        | Stored e -> Printf.sprintf "stored@%d" e
        | At_reservoir n -> Printf.sprintf "reservoir@%d" n
        | In_transit -> "transit"
        | Consumed -> "consumed"
      in
      if u.loc <> Consumed then
        Format.fprintf ppf "unit %d (%s->op%d) %s@," u.u_id
          (match u.producer with None -> "fresh" | Some p -> "op" ^ string_of_int p)
          u.consumer loc)
    st.units;
  Format.fprintf ppf "--@]@."

let run ?(options = default_options) chip app =
  (* every op kind used must have a device *)
  let missing =
    Array.to_list (Seqgraph.ops app)
    |> List.find_opt (fun (o : Op.t) ->
        let kind = device_kind_of_op o.kind in
        not (Array.exists (fun (d : Chip.device) -> d.kind = kind) (Chip.devices chip)))
  in
  match missing with
  | Some o -> Error (Schedule.No_device o.kind)
  | None ->
    let st = init chip app options in
    let n = Seqgraph.n_ops app in
    let all_done () = Array.for_all Fun.id st.op_finished in
    let rec loop time =
      if time > options.horizon then Error (Schedule.Timeout time)
      else begin
        complete_at st time;
        ignore (try_progress st time);
        if all_done () then begin
          let makespan = Array.fold_left max 0 st.op_finish_time in
          Ok
            {
              Schedule.makespan;
              events = List.rev st.events;
              n_transports = st.n_transports;
              transport_time = st.transport_time;
              n_stored = st.n_stored;
              n_washes = st.n_washes;
            }
        end
        else
          match next_event_time st with
          | Some t -> loop t
          | None ->
            if Sys.getenv_opt "MFDFT_SCHED_DEBUG" <> None then dump_state st time;
            Error (Schedule.Deadlock time)
      end
    in
    ignore n;
    loop 0

let makespan ?options chip app =
  match run ?options chip app with Ok s -> Some s.Schedule.makespan | Error _ -> None
