lib/sched/scheduler.ml: Array Fmt Format Fun List Mf_arch Mf_bioassay Mf_graph Mf_grid Mf_util Option Printf Schedule Sys
