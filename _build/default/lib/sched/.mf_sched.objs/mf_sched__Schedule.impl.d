lib/sched/schedule.ml: Fmt Mf_bioassay Printf
