lib/sched/schedule.mli: Format Mf_bioassay
