lib/sched/scheduler.mli: Mf_arch Mf_bioassay Schedule
