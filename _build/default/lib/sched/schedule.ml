type event =
  | Op_started of { op : int; device : int; time : int }
  | Op_finished of { op : int; device : int; time : int }
  | Transport_started of { unit_id : int; path : int list; time : int; finish : int }
  | Unit_stored of { unit_id : int; edge : int; time : int }
  | Unit_parked of { unit_id : int; port_node : int; time : int }

type t = {
  makespan : int;
  events : event list;
  n_transports : int;
  transport_time : int;
  n_stored : int;
  n_washes : int;
}

type failure =
  | Deadlock of int
  | Timeout of int
  | No_device of Mf_bioassay.Op.kind

let pp_failure ppf = function
  | Deadlock t -> Fmt.pf ppf "deadlock at t=%d" t
  | Timeout t -> Fmt.pf ppf "timeout at t=%d" t
  | No_device k -> Fmt.pf ppf "no device can execute %s operations" (Mf_bioassay.Op.kind_name k)

let pp ppf t =
  Fmt.pf ppf "makespan=%ds transports=%d (%ds) stored=%d%s" t.makespan t.n_transports
    t.transport_time t.n_stored
    (if t.n_washes = 0 then "" else Printf.sprintf " washes=%d" t.n_washes)
