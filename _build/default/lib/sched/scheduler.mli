(** List scheduler with device binding, channel routing and distributed
    channel storage — the execution-model substrate of [6] that the paper's
    codesign evaluates against, extended with the valve-sharing legality
    rules of Sec. 4.1.

    Model (one tick = 1 s):
    - operations bind to free devices of the matching kind, preferring a
      device that already holds one of their input fluids;
    - every dependency edge of the sequencing graph is one {e fluid unit}
      that must be transported from the producing device to the consuming
      device through currently free channels (1 tick per channel segment);
      root operations draw a fresh reagent from the nearest port;
    - a device whose result is not yet consumable can be freed by evicting
      the fluid into {e channel storage}: a free, valve-enclosed channel
      edge (distributed storage, [6]);
    - with [respect_sharing], opening the valves along a transport path also
      opens every valve sharing those control lines; the transport is
      illegal if any such forced-open valve borders a resting fluid, a busy
      device or another transport in flight (the contamination scenarios of
      Fig. 6), so shared chips wait — or deadlock, which scores the sharing
      scheme invalid. *)

type options = {
  respect_sharing : bool;  (** enforce control-line coupling (default true) *)
  transport_cost : int;  (** ticks per channel segment (default 1) *)
  allow_storage : bool;  (** permit eviction to channel storage (default true) *)
  horizon : int;  (** give up after this many ticks (default 1_000_000) *)
  wash : bool;
      (** cross-contamination washing ([11]): a channel segment last used by
          a different sample must be flushed before reuse; each dirty
          segment adds [wash_penalty] ticks to the transport (default
          false, matching the paper's evaluation) *)
  wash_penalty : int;  (** ticks per dirty segment (default 2) *)
}

val default_options : options

val run :
  ?options:options ->
  Mf_arch.Chip.t ->
  Mf_bioassay.Seqgraph.t ->
  (Schedule.t, Schedule.failure) result

val makespan : ?options:options -> Mf_arch.Chip.t -> Mf_bioassay.Seqgraph.t -> int option
(** [makespan chip app] is the execution time, or [None] when the
    application cannot complete (the PSO fitness maps this to infinity). *)
