(** Schedule results: what the scheduler produced and why it may have
    failed.  Times are integer ticks (1 tick = 1 s). *)

type event =
  | Op_started of { op : int; device : int; time : int }
  | Op_finished of { op : int; device : int; time : int }
  | Transport_started of {
      unit_id : int;
      path : int list;  (** channel edges traversed *)
      time : int;
      finish : int;
    }
  | Unit_stored of { unit_id : int; edge : int; time : int }
  | Unit_parked of { unit_id : int; port_node : int; time : int }
      (** evicted off-chip into a port vial (last-resort storage) *)

type t = {
  makespan : int;
  events : event list;  (** chronological *)
  n_transports : int;
  transport_time : int;  (** summed transport durations *)
  n_stored : int;  (** evictions into channel storage *)
  n_washes : int;  (** contaminated segments flushed (0 unless washing on) *)
}

type failure =
  | Deadlock of int  (** no progress possible at this tick *)
  | Timeout of int  (** exceeded the configured horizon *)
  | No_device of Mf_bioassay.Op.kind  (** chip lacks a device class *)

val pp_failure : Format.formatter -> failure -> unit
val pp : Format.formatter -> t -> unit
