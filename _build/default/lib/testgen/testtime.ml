module Chip = Mf_arch.Chip
module Control = Mf_control.Control
module Vector = Mf_faults.Vector
module Bitset = Mf_util.Bitset

type params = { alpha : float; beta : float; settle : float; read : float }

let default_params = { alpha = 1.0; beta = 2.0; settle = 10.0; read = 5.0 }

let per_vector ?(params = default_params) chip layout (v : Vector.t) =
  (* idle state: every line pressurised (all valves closed); applying the
     vector releases the lines that must open, so the reconfiguration time
     is bounded by the slowest such line's slowest valve *)
  let slowest = ref 0. in
  for line = 0 to Chip.n_controls chip - 1 do
    if not (Bitset.mem v.Vector.active_lines line) then
      List.iter
        (fun (valve : Chip.valve) ->
          let delay =
            match
              Control.actuation_delay ~alpha:params.alpha ~beta:params.beta layout
                ~valve:valve.valve_id
            with
            | Some d -> d
            | None -> params.beta
          in
          if delay > !slowest then slowest := delay)
        (Chip.valves_of_control chip line)
  done;
  !slowest +. params.settle +. params.read

let total ?(params = default_params) chip layout vectors =
  List.fold_left (fun acc v -> acc +. per_vector ~params chip layout v) 0. vectors
