module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Bitset = Mf_util.Bitset
module Rng = Mf_util.Rng
module Vector = Mf_faults.Vector
module Pressure = Mf_faults.Pressure
module Fault = Mf_faults.Fault

(* A simple source→meter path through channel edge [via], as two
   node-disjoint halves; [weight] steers the detour. *)
let simple_path_through chip ~s ~t ~via ~weight =
  let g = Grid.graph (Chip.grid chip) in
  let a, b = Graph.endpoints g via in
  let channel f = f <> via && Chip.is_channel chip f in
  let try_orientation (a, b) =
    match Traverse.dijkstra g ~allowed:channel ~weight ~src:s ~dst:a with
    | None -> None
    | Some (_, half1) ->
      let used = Bitset.create (Graph.n_nodes g) in
      List.iter (Bitset.add used) (Traverse.path_nodes g ~src:s half1);
      if Bitset.mem used b || Bitset.mem used t then None
      else begin
        let avoid f =
          channel f
          &&
          let u, v = Graph.endpoints g f in
          let fresh n = n = b || n = t || not (Bitset.mem used n) in
          fresh u && fresh v
        in
        match Traverse.dijkstra g ~allowed:avoid ~weight ~src:b ~dst:t with
        | None -> None
        | Some (_, half2) -> Some (half1 @ (via :: half2))
      end
  in
  match try_orientation (a, b) with Some p -> Some p | None -> try_orientation (b, a)

let candidate_paths chip ~s ~t ~via =
  let g = Grid.graph (Chip.grid chip) in
  let ne = Graph.n_edges g in
  let rng = Rng.create ~seed:(31 + via) in
  List.filter_map
    (fun attempt ->
      let weight =
        if attempt = 0 then fun _ -> 1.
        else begin
          let noise = Array.init ne (fun _ -> Rng.float rng 4.) in
          fun f -> 1. +. noise.(f)
        end
      in
      simple_path_through chip ~s ~t ~via ~weight)
    (List.init 6 Fun.id)

let repair_sa0 chip ~s ~t edge =
  let accept path =
    let vec = Vector.of_path chip ~source:s ~meters:[ t ] path in
    Pressure.well_formed chip vec && Pressure.detects chip vec (Fault.Stuck_at_0 edge)
  in
  List.find_opt accept (candidate_paths chip ~s ~t ~via:edge)

(* Worst-case stuck-at-1 vector (Sec. 3): close every valve except those on
   one leak path through the defective valve, so pressure at the meter can
   only mean that [v] failed to close. *)
let repair_sa1 chip ~s ~t valve_id =
  let v = (Chip.valves chip).(valve_id) in
  let try_path path =
    let open_valves =
      List.filter_map
        (fun f ->
          match Chip.valve_on chip f with
          | Some (w : Chip.valve) when w.valve_id <> valve_id -> Some w.valve_id
          | Some _ | None -> None)
        path
    in
    let cut =
      List.init (Chip.n_valves chip) Fun.id
      |> List.filter (fun w -> not (List.mem w open_valves))
    in
    let vec = Vector.of_cut chip ~source:s ~meters:[ t ] cut in
    if Pressure.well_formed chip vec && Pressure.detects chip vec (Fault.Stuck_at_1 valve_id)
    then Some cut
    else None
  in
  List.find_map try_path (candidate_paths chip ~s ~t ~via:v.edge)

let run chip (suite : Vectors.t) =
  let report = Vectors.validate chip suite in
  let ports = Chip.ports chip in
  let s = ports.(suite.source_port).node and t = ports.(suite.meter_port).node in
  let extra_paths =
    List.filter_map (fun e -> repair_sa0 chip ~s ~t e) report.sa0_undetected
  in
  let extra_cuts =
    List.filter_map (fun v -> repair_sa1 chip ~s ~t v) report.sa1_undetected
  in
  {
    suite with
    Vectors.path_edges = suite.Vectors.path_edges @ extra_paths;
    cut_valves = suite.Vectors.cut_valves @ extra_cuts;
  }
