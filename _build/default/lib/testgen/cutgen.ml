module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Flow = Mf_graph.Flow
module Bitset = Mf_util.Bitset
module Vector = Mf_faults.Vector
module Pressure = Mf_faults.Pressure
module Fault = Mf_faults.Fault

type result = { cuts : int list list; untestable : int list }

let infinite_capacity = 1_000_000

(* Does closing exactly the valves in [closed] separate [s] from [t]? *)
let separates chip ~closed ~s ~t =
  let g = Grid.graph (Chip.grid chip) in
  let allowed e =
    Chip.is_channel chip e
    &&
    match Chip.valve_on chip e with
    | None -> true
    | Some v -> not (Bitset.mem closed v.valve_id)
  in
  not (Traverse.connected g ~allowed s t)

(* Shrink [cut] to an inclusion-minimal separator, never dropping [keep]. *)
let minimise chip ~s ~t ~keep cut =
  let closed = Bitset.of_list (Chip.n_valves chip) cut in
  List.iter
    (fun v ->
      if v <> keep && Bitset.mem closed v then begin
        Bitset.remove closed v;
        if not (separates chip ~closed ~s ~t) then Bitset.add closed v
      end)
    cut;
  Bitset.elements closed

(* Minimum valve-cut through valve [v], forcing endpoint [a] onto the source
   side and [b] onto the meter side.  Leak paths s→a and b→t are protected
   at infinite capacity so that v stays essential in the resulting cut. *)
let forced_cut chip ~s ~t (v : Chip.valve) ~a ~b =
  let g = Grid.graph (Chip.grid chip) in
  let open_channel e = Chip.is_channel chip e && e <> v.edge in
  let path_sa = Traverse.bfs_path g ~allowed:open_channel ~src:s ~dst:a in
  let path_bt = Traverse.bfs_path g ~allowed:open_channel ~src:b ~dst:t in
  match (path_sa, path_bt) with
  | None, _ | _, None -> None
  | Some sa, Some bt ->
    let protected_edges = Bitset.create (Graph.n_edges g) in
    List.iter (Bitset.add protected_edges) sa;
    List.iter (Bitset.add protected_edges) bt;
    let capacity e =
      if Bitset.mem protected_edges e then infinite_capacity
      else
        match Chip.valve_on chip e with
        | Some _ -> 1
        | None -> infinite_capacity
    in
    let value, cut_edges = Flow.min_cut g ~allowed:open_channel ~capacity ~src:s ~dst:t in
    if value >= infinite_capacity then None
    else begin
      let cut_valves =
        List.filter_map (fun e -> Option.map (fun (w : Chip.valve) -> w.valve_id) (Chip.valve_on chip e)) cut_edges
      in
      Some (v.valve_id :: cut_valves)
    end

let cover_valve chip ~s ~t (v : Chip.valve) =
  let g = Grid.graph (Chip.grid chip) in
  let a, b = Graph.endpoints g v.edge in
  let try_orientation (a, b) =
    match forced_cut chip ~s ~t v ~a ~b with
    | None -> None
    | Some cut ->
      let cut = minimise chip ~s ~t ~keep:v.valve_id cut in
      if separates chip ~closed:(Bitset.of_list (Chip.n_valves chip) cut) ~s ~t then Some cut
      else None
  in
  match try_orientation (a, b) with
  | Some cut -> Some cut
  | None -> try_orientation (b, a)

let generate chip ~source ~meter =
  let ports = Chip.ports chip in
  let s = ports.(source).node and t = ports.(meter).node in
  let n_valves = Chip.n_valves chip in
  let covered = Bitset.create n_valves in
  let cuts = ref [] in
  let untestable = ref [] in
  let mark_detected cut =
    let vec = Vector.of_cut chip ~source:s ~meters:[ t ] cut in
    if Pressure.well_formed chip vec then
      List.iter
        (fun w -> if Pressure.detects chip vec (Fault.Stuck_at_1 w) then Bitset.add covered w)
        cut
  in
  Array.iter
    (fun (v : Chip.valve) ->
      if not (Bitset.mem covered v.valve_id) then begin
        match cover_valve chip ~s ~t v with
        | Some cut ->
          mark_detected cut;
          if Bitset.mem covered v.valve_id then cuts := cut :: !cuts
          else untestable := v.valve_id :: !untestable
        | None -> untestable := v.valve_id :: !untestable
      end)
    (Chip.valves chip);
  { cuts = List.rev !cuts; untestable = List.rev !untestable }

let fallback_cuts chip ~source:_ ~meter:_ paths =
  let n = Chip.n_valves chip in
  let all = List.init n (fun i -> i) in
  let cuts = ref [] in
  let emitted = Bitset.create n in
  List.iter
    (fun path ->
      let path_valves =
        List.filter_map (fun e -> Option.map (fun (v : Chip.valve) -> v.valve_id) (Chip.valve_on chip e)) path
      in
      List.iter
        (fun v ->
          if not (Bitset.mem emitted v) then begin
            Bitset.add emitted v;
            (* close everything except the rest of this path: the only leak
               route runs through v *)
            let others = List.filter (fun w -> w = v || not (List.mem w path_valves)) all in
            cuts := others :: !cuts
          end)
        path_valves)
    paths;
  List.rev !cuts
