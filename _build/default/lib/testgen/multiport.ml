module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Bitset = Mf_util.Bitset
module Vector = Mf_faults.Vector
module Pressure = Mf_faults.Pressure
module Fault = Mf_faults.Fault

type result = {
  vectors : Vector.t list;
  n_path_vectors : int;
  n_cut_vectors : int;
  sa0_untestable : int list;
  sa1_untestable : int list;
}

type path = { src_port : int; dst_port : int; edges : int list; nodes : Bitset.t }

(* A port-to-port path through the target edge [e]=(a,b): shortest half from
   [a] to some port, then from [b] to another port avoiding the first
   half's nodes.  Port pairs are tried in order of combined distance. *)
let path_through chip e =
  let g = Grid.graph (Chip.grid chip) in
  let channels = Chip.channel_edges chip in
  let a, b = Graph.endpoints g e in
  let without_e f = f <> e && Bitset.mem channels f in
  let ports = Chip.ports chip in
  let dist_a = Traverse.bfs_dist g ~allowed:without_e ~src:a in
  let dist_b = Traverse.bfs_dist g ~allowed:without_e ~src:b in
  let candidates =
    Array.to_list ports
    |> List.concat_map (fun (p : Chip.port) ->
        Array.to_list ports
        |> List.filter_map (fun (q : Chip.port) ->
            if p.port_id = q.port_id then None
            else if dist_a.(p.node) = max_int || dist_b.(q.node) = max_int then None
            else Some (dist_a.(p.node) + dist_b.(q.node), p, q)))
    |> List.sort compare
  in
  let try_pair ((_, (p : Chip.port), (q : Chip.port)) : int * Chip.port * Chip.port) =
    match Traverse.bfs_path g ~allowed:without_e ~src:p.node ~dst:a with
    | None -> None
    | Some half1 ->
      let used = Bitset.create (Graph.n_nodes g) in
      List.iter (Bitset.add used) (Traverse.path_nodes g ~src:p.node half1);
      (* the second half must avoid the first half's nodes so the union is a
         simple path; [b] itself must be fresh *)
      if Bitset.mem used b then None
      else begin
        let avoid f =
          without_e f
          &&
          let u, v = Graph.endpoints g f in
          let fresh n = n = b || not (Bitset.mem used n) in
          fresh u && fresh v
        in
        match Traverse.bfs_path g ~allowed:avoid ~src:b ~dst:q.node with
        | None -> None
        | Some half2 ->
          let edges = half1 @ (e :: half2) in
          let nodes = Bitset.create (Graph.n_nodes g) in
          List.iter (Bitset.add nodes) (Traverse.path_nodes g ~src:p.node edges);
          Some { src_port = p.port_id; dst_port = q.port_id; edges; nodes }
      end
  in
  List.find_map try_pair candidates

(* Pack paths into stimuli: paths sharing a source and otherwise
   node-disjoint form a tree observed by one meter per branch. *)
let pack chip paths =
  let ports = Chip.ports chip in
  let bins : (int * path list ref) list ref = ref [] in
  let disjoint p existing =
    let src_node = ports.(p.src_port).node in
    List.for_all
      (fun q ->
        Bitset.fold (fun n ok -> ok && (n = src_node || not (Bitset.mem q.nodes n))) p.nodes true)
      existing
  in
  List.iter
    (fun p ->
      let placed =
        List.exists
          (fun (src, members) ->
            if src = p.src_port && disjoint p !members
               && not (List.exists (fun q -> q.dst_port = p.dst_port) !members)
            then begin
              members := p :: !members;
              true
            end
            else false)
          !bins
      in
      if not placed then bins := (p.src_port, ref [ p ]) :: !bins)
    paths;
  List.rev_map
    (fun (src, members) ->
      let edges = List.concat_map (fun p -> p.edges) !members in
      let meters = List.map (fun p -> ports.(p.dst_port).node) !members in
      Vector.of_path chip ~source:ports.(src).node ~meters edges)
    !bins

let generate chip =
  let channels = Chip.channel_edges chip in
  let uncovered = Bitset.copy channels in
  let paths = ref [] in
  let sa0_untestable = ref [] in
  (* SA0: greedy path cover, marking by fault simulation *)
  Bitset.iter
    (fun e ->
      if Bitset.mem uncovered e then begin
        match path_through chip e with
        | None ->
          Bitset.remove uncovered e;
          sa0_untestable := e :: !sa0_untestable
        | Some p ->
          paths := p :: !paths;
          let ports = Chip.ports chip in
          let vec =
            Vector.of_path chip ~source:(Chip.ports chip).(p.src_port).node
              ~meters:[ ports.(p.dst_port).node ] p.edges
          in
          Bitset.iter
            (fun f ->
              if Bitset.mem uncovered f && Pressure.detects chip vec (Fault.Stuck_at_0 f) then
                Bitset.remove uncovered f)
            (Bitset.copy uncovered)
      end)
    channels;
  let path_vectors = pack chip (List.rev !paths) in
  (* SA1: per-valve forced cuts over all port pairs *)
  let n_valves = Chip.n_valves chip in
  let covered = Bitset.create n_valves in
  let cut_vectors = ref [] in
  let sa1_untestable = ref [] in
  let ports = Chip.ports chip in
  Array.iter
    (fun (v : Chip.valve) ->
      if not (Bitset.mem covered v.valve_id) then begin
        let found =
          Array.to_list ports
          |> List.concat_map (fun (p : Chip.port) ->
              Array.to_list ports
              |> List.filter_map (fun (q : Chip.port) ->
                  if p.port_id < q.port_id then Some (p, q) else None))
          |> List.find_map (fun ((p : Chip.port), (q : Chip.port)) ->
              match Cutgen.cover_valve chip ~s:p.node ~t:q.node v with
              | None -> None
              | Some cut ->
                let vec = Vector.of_cut chip ~source:p.node ~meters:[ q.node ] cut in
                if
                  Pressure.well_formed chip vec
                  && Pressure.detects chip vec (Fault.Stuck_at_1 v.valve_id)
                then Some (cut, vec)
                else None)
        in
        match found with
        | Some (cut, vec) ->
          cut_vectors := vec :: !cut_vectors;
          List.iter
            (fun w ->
              if Pressure.detects chip vec (Fault.Stuck_at_1 w) then Bitset.add covered w)
            cut
        | None -> sa1_untestable := v.valve_id :: !sa1_untestable
      end)
    (Chip.valves chip);
  let cut_vectors = List.rev !cut_vectors in
  {
    vectors = path_vectors @ cut_vectors;
    n_path_vectors = List.length path_vectors;
    n_cut_vectors = List.length cut_vectors;
    sa0_untestable = List.rev !sa0_untestable;
    sa1_untestable = List.rev !sa1_untestable;
  }
