(** Targeted repair of a test-vector suite.

    The ILP guarantees every original channel lies on a test path, but a
    fault can still escape detection: an unvalved parallel segment may keep
    the meter pressurised when a path edge is blocked (stuck-at-0 masking),
    and a minimum cut through a valve may not exist for the chosen
    terminals (stuck-at-1).  [run] measures coverage by fault simulation
    and adds dedicated vectors for every escaped fault:

    - stuck-at-0 at edge [e]: alternative source→meter paths through [e]
      (several detours are tried; a candidate is kept only when simulation
      confirms detection);
    - stuck-at-1 at valve [v]: the paper's worst-case construction — close
      every valve except those on one leak path through [v], so the only
      possible pressure route runs through the defect. *)

val run : Mf_arch.Chip.t -> Vectors.t -> Vectors.t
(** [run chip suite] returns the suite extended with repair vectors.  The
    result is not guaranteed complete (genuinely untestable faults remain
    uncovered); callers re-validate with {!Vectors.validate}. *)
