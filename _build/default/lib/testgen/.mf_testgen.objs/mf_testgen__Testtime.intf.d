lib/testgen/testtime.mli: Mf_arch Mf_control Mf_faults
