lib/testgen/repair.ml: Array Fun List Mf_arch Mf_faults Mf_graph Mf_grid Mf_util Vectors
