lib/testgen/multiport.mli: Mf_arch Mf_faults
