lib/testgen/cutgen.ml: Array List Mf_arch Mf_faults Mf_graph Mf_grid Mf_util Option
