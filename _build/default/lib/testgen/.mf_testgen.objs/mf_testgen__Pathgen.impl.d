lib/testgen/pathgen.ml: Array Hashtbl List Mf_arch Mf_graph Mf_grid Mf_ilp Mf_util Option Printf
