lib/testgen/cutgen.mli: Mf_arch
