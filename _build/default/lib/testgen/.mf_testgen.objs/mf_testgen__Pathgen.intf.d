lib/testgen/pathgen.mli: Mf_arch
