lib/testgen/testtime.ml: List Mf_arch Mf_control Mf_faults Mf_util
