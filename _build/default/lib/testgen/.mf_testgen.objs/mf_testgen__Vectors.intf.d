lib/testgen/vectors.mli: Cutgen Mf_arch Mf_faults Pathgen
