lib/testgen/multiport.ml: Array Cutgen List Mf_arch Mf_faults Mf_graph Mf_grid Mf_util
