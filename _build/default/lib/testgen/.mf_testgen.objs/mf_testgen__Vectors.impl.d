lib/testgen/vectors.ml: Array Cutgen List Mf_arch Mf_faults Pathgen
