lib/testgen/repair.mli: Mf_arch Vectors
