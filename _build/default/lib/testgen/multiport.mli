(** Test generation for {e original} multi-port chips, the baseline of
    Fig. 8.

    With several ports available, a chip under test connects one pressure
    source and several meters simultaneously, so one stimulus can exercise a
    whole tree of channels (each meter observes its own branch).  This is
    why original chips need fewer vectors than the single-source
    single-meter DFT architectures, at the price of a much more expensive
    test bench.

    Some channels of a multi-port chip may be untestable without DFT (a
    dead-end spur reaches only one port); they are reported rather than
    silently dropped — they are the paper's motivation for augmentation. *)

type result = {
  vectors : Mf_faults.Vector.t list;
  n_path_vectors : int;
  n_cut_vectors : int;
  sa0_untestable : int list;  (** channel edges not coverable by any stimulus *)
  sa1_untestable : int list;  (** valves not coverable by any cut *)
}

val generate : Mf_arch.Chip.t -> result
