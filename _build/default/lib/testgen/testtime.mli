(** Test application time.

    Sec. 5 notes that the larger DFT vector count "leads to a relatively
    longer test time".  This module quantifies it: applying one vector
    means reconfiguring the valves (bounded by the slowest control line
    being switched, cf. the pressure-propagation delays of [12]), letting
    the pneumatic network settle, and reading the meter(s). *)

type params = {
  alpha : float;  (** control-channel delay per length unit *)
  beta : float;  (** valve response offset *)
  settle : float;  (** flow-layer settling time per vector *)
  read : float;  (** pressure-meter sampling time *)
}

val default_params : params
(** alpha 1.0, beta 2.0, settle 10.0, read 5.0 (arbitrary units,
    consistent across compared architectures). *)

val per_vector :
  ?params:params -> Mf_arch.Chip.t -> Mf_control.Control.t -> Mf_faults.Vector.t -> float
(** Time to apply one vector: worst actuation delay among the lines whose
    state differs from the all-closed idle state, plus settle and read.
    Unrouted lines contribute only [beta]. *)

val total :
  ?params:params -> Mf_arch.Chip.t -> Mf_control.Control.t -> Mf_faults.Vector.t list -> float
(** Whole test program duration. *)
