(** Test-cut generation for stuck-at-1 defects (Sec. 3).

    A test cut is a set of valves whose closure separates the pressure
    source from the meter while everything else is open; a leaking (stuck
    open) cut valve is detected because pressure then reaches the meter.
    For a valve's leak to be observable it must be {e essential} in its
    cut: some source→meter path must pass through that valve and avoid the
    rest of the cut.

    The generator covers every valve greedily: for each not-yet-covered
    valve it builds a minimum valve-cut forced through it (max-flow with
    unvalved channels at infinite capacity and a protected leak path), then
    minimises the cut and confirms detection by fault simulation. *)

type result = {
  cuts : int list list;  (** each cut is a list of valve ids *)
  untestable : int list;  (** valves whose stuck-at-1 cannot be observed *)
}

val generate : Mf_arch.Chip.t -> source:int -> meter:int -> result
(** [generate chip ~source ~meter] with port {e ids}. *)

val cover_valve : Mf_arch.Chip.t -> s:int -> t:int -> Mf_arch.Chip.valve -> int list option
(** [cover_valve chip ~s ~t v] (with {e node} ids) builds a minimal cut
    between [s] and [t] in which [v] is essential, or [None] when no such
    cut exists for this terminal pair.  Building block shared with the
    multi-port generator for original chips. *)

val fallback_cuts : Mf_arch.Chip.t -> source:int -> meter:int -> int list list -> int list list
(** The paper's worst-case construction: block each test path individually.
    For every valve [v] on a path, emit the cut that closes every valve
    except the path's other valves — the only possible leak runs through
    [v].  Used as the ablation baseline; produces roughly one cut per
    valve. *)
