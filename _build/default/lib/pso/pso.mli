(** Particle swarm optimization (Kennedy–Eberhart), the search engine of the
    paper's two-level codesign (Sec. 4.2, updates (7)–(8)).

    Positions are continuous vectors in a box; callers decode them into the
    discrete structures they search over (edge selections, sharing
    assignments).  The update uses the conventional attractive form
    [v ← ω v + c₁ r₁ (p_best − x) + c₂ r₂ (g_best − x)] (the paper's (7)
    prints the differences reversed, which would repel particles from the
    best positions; we use the canonical orientation).

    Fitness is minimised; [infinity] marks an invalid position (a sharing
    scheme that fails validation). *)

type params = {
  particles : int;
  iterations : int;
  omega : float;  (** inertia *)
  c1 : float;  (** cognitive coefficient *)
  c2 : float;  (** social coefficient *)
  v_max : float;  (** velocity clamp, as a fraction of the box width *)
}

val default_params : params
(** 5 particles, 100 iterations, ω = 0.72, c₁ = c₂ = 1.49 — the paper's
    swarm size with standard constriction-style coefficients. *)

type outcome = {
  best_position : float array;
  best_fitness : float;
  trace : float list;  (** global best fitness after each iteration (Fig. 9) *)
  evaluations : int;
}

val run :
  ?params:params ->
  rng:Mf_util.Rng.t ->
  dim:int ->
  fitness:(float array -> float) ->
  unit ->
  outcome
(** Search the box [\[0,1\]^dim].  [fitness] is called on decoded-by-caller
    positions; it must be deterministic for reproducibility.  If every
    evaluation returns [infinity] the outcome's [best_fitness] is
    [infinity] and [best_position] is the last particle examined. *)
