lib/pso/pso.mli: Mf_util
