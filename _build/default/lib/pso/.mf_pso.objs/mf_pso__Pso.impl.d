lib/pso/pso.ml: Array List Mf_util
