module Rng = Mf_util.Rng

type params = {
  particles : int;
  iterations : int;
  omega : float;
  c1 : float;
  c2 : float;
  v_max : float;
}

let default_params =
  { particles = 5; iterations = 100; omega = 0.72; c1 = 1.49; c2 = 1.49; v_max = 0.5 }

type outcome = {
  best_position : float array;
  best_fitness : float;
  trace : float list;
  evaluations : int;
}

type particle = {
  x : float array;
  v : float array;
  mutable p_best : float array;
  mutable p_fit : float;
}

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let run ?(params = default_params) ~rng ~dim ~fitness () =
  if dim <= 0 then invalid_arg "Pso.run: dim must be positive";
  let evaluations = ref 0 in
  let eval x =
    incr evaluations;
    fitness x
  in
  let make_particle () =
    let x = Array.init dim (fun _ -> Rng.uniform rng) in
    let v = Array.init dim (fun _ -> (Rng.uniform rng -. 0.5) *. params.v_max) in
    let fit = eval x in
    { x; v; p_best = Array.copy x; p_fit = fit }
  in
  let swarm = Array.init params.particles (fun _ -> make_particle ()) in
  let g_best = ref (Array.copy swarm.(0).p_best) in
  let g_fit = ref swarm.(0).p_fit in
  Array.iter
    (fun p ->
      if p.p_fit < !g_fit then begin
        g_fit := p.p_fit;
        g_best := Array.copy p.p_best
      end)
    swarm;
  let trace = ref [] in
  for _iter = 1 to params.iterations do
    Array.iter
      (fun p ->
        for d = 0 to dim - 1 do
          let r1 = Rng.uniform rng and r2 = Rng.uniform rng in
          let v =
            (params.omega *. p.v.(d))
            +. (params.c1 *. r1 *. (p.p_best.(d) -. p.x.(d)))
            +. (params.c2 *. r2 *. (!g_best.(d) -. p.x.(d)))
          in
          p.v.(d) <- clamp (-.params.v_max) params.v_max v;
          p.x.(d) <- clamp 0. 1. (p.x.(d) +. p.v.(d))
        done;
        let fit = eval p.x in
        if fit < p.p_fit then begin
          p.p_fit <- fit;
          p.p_best <- Array.copy p.x
        end;
        if fit < !g_fit then begin
          g_fit := fit;
          g_best := Array.copy p.x
        end)
      swarm;
    trace := !g_fit :: !trace
  done;
  {
    best_position = !g_best;
    best_fitness = !g_fit;
    trace = List.rev !trace;
    evaluations = !evaluations;
  }
