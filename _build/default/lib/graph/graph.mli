(** Undirected multigraph with integer nodes [0..n-1] and densely numbered
    edge ids, the common substrate for the connection grid, pressure
    propagation and routing.

    Edges carry no payload here; domain layers keep side tables indexed by
    edge id. *)

type t

val create : n:int -> t
(** [create ~n] is the edgeless graph on [n] nodes. *)

val add_edge : t -> int -> int -> int
(** [add_edge g u v] inserts an undirected edge and returns its id.  Edge ids
    are consecutive from 0 in insertion order.  Self-loops are rejected. *)

val n_nodes : t -> int
val n_edges : t -> int

val endpoints : t -> int -> int * int
(** Endpoints of an edge id, in insertion order. *)

val other_endpoint : t -> edge:int -> int -> int
(** [other_endpoint g ~edge u] is the endpoint of [edge] that is not [u].
    Raises [Invalid_argument] if [u] is not an endpoint. *)

val incident : t -> int -> (int * int) list
(** [incident g u] lists [(edge_id, neighbour)] pairs at node [u]. *)

val degree : t -> int -> int

val find_edge : t -> int -> int -> int option
(** [find_edge g u v] is some edge id joining [u] and [v] if one exists. *)

val fold_edges : (int -> int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_edges f g init] folds [f edge_id u v] over all edges. *)

val iter_edges : (int -> int -> int -> unit) -> t -> unit

val pp : Format.formatter -> t -> unit
