(** Maximum flow / minimum edge cut on an undirected {!Graph.t}, used to
    generate minimal test cuts (sets of closed valves that separate the
    pressure source from the meter).

    Dinic's algorithm; each undirected edge becomes a pair of residual arcs
    sharing capacity. *)

val max_flow :
  Graph.t -> allowed:(int -> bool) -> capacity:(int -> int) -> src:int -> dst:int -> int
(** Value of a maximum [src]→[dst] flow through allowed edges. *)

val min_cut :
  Graph.t -> allowed:(int -> bool) -> capacity:(int -> int) -> src:int -> dst:int ->
  int * int list
(** [min_cut g ~allowed ~capacity ~src ~dst] is [(value, cut_edges)] where
    [cut_edges] are the edge ids of a minimum cut: removing them disconnects
    [src] from [dst] in the allowed subgraph.  [value] equals the sum of
    their capacities (max-flow min-cut).  If [src] and [dst] are already
    disconnected the cut is empty. *)
