lib/graph/graph.ml: Array Fmt List
