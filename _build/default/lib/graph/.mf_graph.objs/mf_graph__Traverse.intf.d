lib/graph/traverse.mli: Graph Mf_util
