lib/graph/traverse.ml: Array Graph List Mf_util Queue
