lib/graph/flow.ml: Array Graph List Mf_util Queue
