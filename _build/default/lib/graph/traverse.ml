module Bitset = Mf_util.Bitset
module Heap = Mf_util.Heap

let reachable g ~allowed ~src =
  let seen = Bitset.create (Graph.n_nodes g) in
  let queue = Queue.create () in
  Bitset.add seen src;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let visit (e, v) =
      if allowed e && not (Bitset.mem seen v) then begin
        Bitset.add seen v;
        Queue.add v queue
      end
    in
    List.iter visit (Graph.incident g u)
  done;
  seen

let connected g ~allowed u v = Bitset.mem (reachable g ~allowed ~src:u) v

(* BFS keeping, for every reached node, the edge we arrived through. *)
let bfs_parents g ~allowed ~src =
  let n = Graph.n_nodes g in
  let parent_edge = Array.make n (-1) in
  let parent_node = Array.make n (-1) in
  let seen = Bitset.create n in
  let queue = Queue.create () in
  Bitset.add seen src;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let visit (e, v) =
      if allowed e && not (Bitset.mem seen v) then begin
        Bitset.add seen v;
        parent_edge.(v) <- e;
        parent_node.(v) <- u;
        Queue.add v queue
      end
    in
    List.iter visit (Graph.incident g u)
  done;
  (seen, parent_edge, parent_node)

let unwind parent_edge parent_node ~src ~dst =
  let rec loop v acc = if v = src then acc else loop parent_node.(v) (parent_edge.(v) :: acc) in
  loop dst []

let bfs_path g ~allowed ~src ~dst =
  if src = dst then Some []
  else
    let seen, parent_edge, parent_node = bfs_parents g ~allowed ~src in
    if Bitset.mem seen dst then Some (unwind parent_edge parent_node ~src ~dst) else None

let bfs_dist g ~allowed ~src =
  let n = Graph.n_nodes g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let visit (e, v) =
      if allowed e && dist.(v) = max_int then begin
        dist.(v) <- dist.(u) + 1;
        Queue.add v queue
      end
    in
    List.iter visit (Graph.incident g u)
  done;
  dist

let dijkstra g ~allowed ~weight ~src ~dst =
  let n = Graph.n_nodes g in
  let dist = Array.make n infinity in
  let parent_edge = Array.make n (-1) in
  let parent_node = Array.make n (-1) in
  let settled = Bitset.create n in
  let heap = Heap.create () in
  dist.(src) <- 0.;
  Heap.push heap 0. src;
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if not (Bitset.mem settled u) then begin
        Bitset.add settled u;
        if u <> dst then begin
          let relax (e, v) =
            if allowed e && not (Bitset.mem settled v) then begin
              let w = weight e in
              assert (w >= 0.);
              let cand = d +. w in
              if cand < dist.(v) then begin
                dist.(v) <- cand;
                parent_edge.(v) <- e;
                parent_node.(v) <- u;
                Heap.push heap cand v
              end
            end
          in
          List.iter relax (Graph.incident g u)
        end
      end;
      if not (Bitset.mem settled dst) then drain ()
  in
  drain ();
  if dist.(dst) = infinity then None
  else Some (dist.(dst), unwind parent_edge parent_node ~src ~dst)

let components g ~allowed =
  let n = Graph.n_nodes g in
  let seen = Bitset.create n in
  let comps = ref [] in
  for start = 0 to n - 1 do
    if not (Bitset.mem seen start) then begin
      let comp = ref [] in
      let queue = Queue.create () in
      Bitset.add seen start;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        comp := u :: !comp;
        let visit (e, v) =
          if allowed e && not (Bitset.mem seen v) then begin
            Bitset.add seen v;
            Queue.add v queue
          end
        in
        List.iter visit (Graph.incident g u)
      done;
      comps := List.rev !comp :: !comps
    end
  done;
  List.rev !comps

let path_nodes g ~src edges =
  let step u e = Graph.other_endpoint g ~edge:e u in
  let rec walk u acc = function
    | [] -> List.rev acc
    | e :: rest ->
      let v = step u e in
      walk v (v :: acc) rest
  in
  walk src [src] edges
