(** Traversals over a {!Graph.t} restricted to a caller-supplied set of
    usable edges.

    Every function takes [~allowed:(int -> bool)] over edge ids; this is how
    valve states (open/closed) are projected onto the topology: an open valve
    is an allowed edge. *)

val reachable : Graph.t -> allowed:(int -> bool) -> src:int -> Mf_util.Bitset.t
(** Nodes reachable from [src] through allowed edges (includes [src]). *)

val connected : Graph.t -> allowed:(int -> bool) -> int -> int -> bool
(** [connected g ~allowed u v] is pressure propagation: can air injected at
    [u] be observed at [v]? *)

val bfs_path : Graph.t -> allowed:(int -> bool) -> src:int -> dst:int -> int list option
(** A shortest (fewest edges) path from [src] to [dst] as an edge-id list,
    or [None] when disconnected. *)

val bfs_dist : Graph.t -> allowed:(int -> bool) -> src:int -> int array
(** Hop distances from [src]; unreachable nodes get [max_int]. *)

val dijkstra :
  Graph.t -> allowed:(int -> bool) -> weight:(int -> float) -> src:int -> dst:int ->
  (float * int list) option
(** Cheapest path under non-negative edge [weight]s, as (cost, edge list). *)

val components : Graph.t -> allowed:(int -> bool) -> int list list
(** Connected components (as node lists) of the allowed subgraph, covering
    every node of the graph (isolated nodes form singleton components). *)

val path_nodes : Graph.t -> src:int -> int list -> int list
(** [path_nodes g ~src edges] expands an edge path starting at [src] into the
    visited node sequence (starting with [src]).  Raises if the edges do not
    form a walk from [src]. *)
