type t = {
  n : int;
  mutable m : int;
  mutable ends : (int * int) array;
  adj : (int * int) list array; (* node -> (edge id, neighbour) list *)
}

let create ~n =
  assert (n >= 0);
  { n; m = 0; ends = [||]; adj = Array.make n [] }

let n_nodes g = g.n
let n_edges g = g.m

let add_edge g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then invalid_arg "Graph.add_edge: node out of range";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  let id = g.m in
  let capacity = Array.length g.ends in
  if id = capacity then begin
    let fresh = Array.make (max 16 (2 * capacity)) (0, 0) in
    Array.blit g.ends 0 fresh 0 g.m;
    g.ends <- fresh
  end;
  g.ends.(id) <- (u, v);
  g.adj.(u) <- (id, v) :: g.adj.(u);
  g.adj.(v) <- (id, u) :: g.adj.(v);
  g.m <- g.m + 1;
  id

let endpoints g e =
  if e < 0 || e >= g.m then invalid_arg "Graph.endpoints: bad edge id";
  g.ends.(e)

let other_endpoint g ~edge u =
  let a, b = endpoints g edge in
  if u = a then b
  else if u = b then a
  else invalid_arg "Graph.other_endpoint: node not an endpoint"

let incident g u = g.adj.(u)

let degree g u = List.length g.adj.(u)

let find_edge g u v =
  let rec search = function
    | [] -> None
    | (e, w) :: rest -> if w = v then Some e else search rest
  in
  search g.adj.(u)

let fold_edges f g init =
  let acc = ref init in
  for e = 0 to g.m - 1 do
    let u, v = g.ends.(e) in
    acc := f e u v !acc
  done;
  !acc

let iter_edges f g = fold_edges (fun e u v () -> f e u v) g ()

let pp ppf g =
  Fmt.pf ppf "@[<v>graph %d nodes %d edges" g.n g.m;
  iter_edges (fun e u v -> Fmt.pf ppf "@,  e%d: %d -- %d" e u v) g;
  Fmt.pf ppf "@]"
