(** Fixed-capacity bitsets over [0 .. n-1], used for valve-state vectors and
    occupancy snapshots where allocation-free set operations matter. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0..n-1]. *)

val length : t -> int
(** Universe size. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val set : t -> int -> bool -> unit
val copy : t -> t
val clear : t -> unit
val fill : t -> unit
(** [fill s] adds every element of the universe. *)

val cardinal : t -> int
val is_empty : t -> bool
val equal : t -> t -> bool

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst := dst ∪ src]. *)

val inter_into : t -> t -> unit
val diff_into : t -> t -> unit

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int -> int list -> t
val pp : Format.formatter -> t -> unit
