lib/util/heap.mli:
