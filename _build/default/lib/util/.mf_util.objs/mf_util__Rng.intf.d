lib/util/rng.mli:
