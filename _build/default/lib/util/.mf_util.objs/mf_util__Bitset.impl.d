lib/util/bitset.ml: Array Bytes Char Fmt List Printf
