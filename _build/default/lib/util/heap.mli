(** Imperative binary min-heap keyed by float priorities.

    Used as the priority queue behind Dijkstra routing and the
    branch-and-bound best-first node selection. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h priority v] inserts [v]; lower priorities pop first. *)

val pop : 'a t -> (float * 'a) option
(** [pop h] removes and returns the minimum-priority element. *)

val peek : 'a t -> (float * 'a) option
val clear : 'a t -> unit
