type t = { n : int; words : Bytes.t }

let bits_per_word = 8

let create n =
  assert (n >= 0);
  { n; words = Bytes.make ((n + bits_per_word - 1) / bits_per_word) '\000' }

let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.n)

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i / 8)) land (1 lsl (i mod 8)) <> 0

let add t i =
  check t i;
  let w = i / 8 in
  Bytes.set t.words w (Char.chr (Char.code (Bytes.get t.words w) lor (1 lsl (i mod 8))))

let remove t i =
  check t i;
  let w = i / 8 in
  Bytes.set t.words w (Char.chr (Char.code (Bytes.get t.words w) land lnot (1 lsl (i mod 8)) land 0xff))

let set t i b = if b then add t i else remove t i

let copy t = { n = t.n; words = Bytes.copy t.words }

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let fill t =
  for i = 0 to t.n - 1 do
    add t i
  done

let popcount_byte =
  let table = Array.init 256 (fun b ->
      let rec count b = if b = 0 then 0 else (b land 1) + count (b lsr 1) in
      count b)
  in
  fun c -> table.(Char.code c)

let cardinal t =
  let total = ref 0 in
  Bytes.iter (fun c -> total := !total + popcount_byte c) t.words;
  !total

let is_empty t =
  let rec loop i = i >= Bytes.length t.words || (Bytes.get t.words i = '\000' && loop (i + 1)) in
  loop 0

let equal a b = a.n = b.n && Bytes.equal a.words b.words

let binop f dst src =
  if dst.n <> src.n then invalid_arg "Bitset: size mismatch";
  for w = 0 to Bytes.length dst.words - 1 do
    let r = f (Char.code (Bytes.get dst.words w)) (Char.code (Bytes.get src.words w)) land 0xff in
    Bytes.set dst.words w (Char.chr r)
  done

let union_into dst src = binop ( lor ) dst src
let inter_into dst src = binop ( land ) dst src
let diff_into dst src = binop (fun a b -> a land lnot b) dst src

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let pp ppf t = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (elements t)
