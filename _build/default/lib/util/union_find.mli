(** Disjoint-set forest with path compression and union by rank.

    Used for connected-component bookkeeping when detecting loops in ILP
    test-path solutions. *)

type t

val create : int -> t
(** [create n] has elements [0..n-1], each its own component. *)

val find : t -> int -> int
val union : t -> int -> int -> bool
(** [union t a b] merges the two components; returns [false] if they were
    already the same component. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of distinct components. *)
