lib/viz/svg.ml: Array Buffer Hashtbl List Mf_arch Mf_bioassay Mf_control Mf_graph Mf_grid Mf_sched Option Printf String
