lib/viz/svg.mli: Mf_arch Mf_bioassay Mf_control Mf_sched
