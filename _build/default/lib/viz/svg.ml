module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Schedule = Mf_sched.Schedule
module Seqgraph = Mf_bioassay.Seqgraph
module Control = Mf_control.Control

let cell = 60 (* pixels per grid step *)
let margin = 40

let header ~width ~height buf =
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"monospace\">\n\
        <rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n"
       width height width height width height)

let footer buf = Buffer.add_string buf "</svg>\n"

let line buf ~x1 ~y1 ~x2 ~y2 ~stroke ~width' =
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" stroke-width=\"%d\" \
        stroke-linecap=\"round\"/>\n"
       x1 y1 x2 y2 stroke width')

let rect buf ~x ~y ~w ~h ~fill ?(stroke = "none") () =
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" stroke=\"%s\" rx=\"4\"/>\n"
       x y w h fill stroke)

let circle buf ~cx ~cy ~r ~fill =
  Buffer.add_string buf
    (Printf.sprintf "<circle cx=\"%d\" cy=\"%d\" r=\"%d\" fill=\"%s\"/>\n" cx cy r fill)

let text buf ~x ~y ?(size = 14) ?(fill = "black") ?(anchor = "middle") s =
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" font-size=\"%d\" fill=\"%s\" text-anchor=\"%s\">%s</text>\n" x y
       size fill anchor s)

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '<' -> "&lt;"
         | '>' -> "&gt;"
         | '&' -> "&amp;"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* ------------------------------------------------------------------ *)
(* Flow layer *)

let node_xy grid n =
  let x, y = Grid.coords grid n in
  (margin + (x * cell), margin + (y * cell))

let draw_flow buf ?(dim = false) chip =
  let grid = Chip.grid chip in
  let g = Grid.graph grid in
  let channel_colour = if dim then "#cccccc" else "#3b7dd8" in
  let w = Grid.width grid and h = Grid.height grid in
  (* grid dots *)
  for x = 0 to w - 1 do
    for y = 0 to h - 1 do
      circle buf ~cx:(margin + (x * cell)) ~cy:(margin + (y * cell)) ~r:2
        ~fill:(if dim then "#eeeeee" else "#dddddd")
    done
  done;
  (* channels *)
  Graph.iter_edges
    (fun e u v ->
      if Chip.is_channel chip e then begin
        let x1, y1 = node_xy grid u and x2, y2 = node_xy grid v in
        line buf ~x1 ~y1 ~x2 ~y2 ~stroke:channel_colour ~width':8
      end)
    g;
  (* valves as squares at edge midpoints *)
  Array.iter
    (fun (v : Chip.valve) ->
      let u, w' = Graph.endpoints g v.edge in
      let x1, y1 = node_xy grid u and x2, y2 = node_xy grid w' in
      let cx = (x1 + x2) / 2 and cy = (y1 + y2) / 2 in
      let fill =
        if dim then "#bbbbbb" else if v.is_dft then "#e67e22" else "#c0392b"
      in
      rect buf ~x:(cx - 7) ~y:(cy - 7) ~w:14 ~h:14 ~fill ~stroke:"black" ())
    (Chip.valves chip);
  (* devices *)
  Array.iter
    (fun (d : Chip.device) ->
      let x, y = node_xy grid d.node in
      let fill =
        if dim then "#dddddd"
        else
          match d.kind with
          | Chip.Mixer -> "#27ae60"
          | Chip.Detector -> "#8e44ad"
          | Chip.Heater -> "#d35400"
          | Chip.Filter -> "#16a085"
      in
      rect buf ~x:(x - 18) ~y:(y - 18) ~w:36 ~h:36 ~fill ~stroke:"black" ();
      text buf ~x ~y:(y + 5) ~size:12 ~fill:"white" (escape d.name))
    (Chip.devices chip);
  (* ports *)
  Array.iter
    (fun (p : Chip.port) ->
      let x, y = node_xy grid p.node in
      circle buf ~cx:x ~cy:y ~r:14 ~fill:(if dim then "#dddddd" else "#2c3e50");
      text buf ~x ~y:(y + 4) ~size:10 ~fill:"white" (escape p.port_name))
    (Chip.ports chip)

let canvas_size chip =
  let grid = Chip.grid chip in
  ( (2 * margin) + ((Grid.width grid - 1) * cell),
    (2 * margin) + ((Grid.height grid - 1) * cell) )

let chip chip_value =
  let buf = Buffer.create 4096 in
  let width, height = canvas_size chip_value in
  header ~width ~height:(height + 30) buf;
  draw_flow buf chip_value;
  text buf ~x:(width / 2) ~y:(height + 15)
    (escape
       (Printf.sprintf "%s - %d valves (%d DFT), %d control lines" (Chip.name chip_value)
          (Chip.n_valves chip_value)
          (Chip.n_valves chip_value - Chip.n_original_valves chip_value)
          (Chip.n_controls chip_value)));
  footer buf;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Control layer *)

let palette =
  [| "#e6194b"; "#3cb44b"; "#4363d8"; "#f58231"; "#911eb4"; "#46f0f0"; "#f032e6"; "#bcf60c";
     "#008080"; "#9a6324"; "#800000"; "#808000"; "#000075"; "#fabebe"; "#e6beff"; "#aaffc3" |]

let control_layer chip_value (layout : Control.t) =
  let buf = Buffer.create 8192 in
  let width, height = canvas_size chip_value in
  header ~width ~height:(height + 30) buf;
  draw_flow buf ~dim:true chip_value;
  let g = layout.Control.layer_graph in
  (* the control grid is 6x refined (see Control), so its pixel pitch is a
     sixth of the flow layer's *)
  let flow_grid = Chip.grid chip_value in
  let scale = cell / 6 in
  let ctrl_xy n =
    let per_row = (6 * (Grid.width flow_grid - 1)) + 1 in
    let x = n mod per_row and y = n / per_row in
    (margin + (x * scale), margin + (y * scale))
  in
  List.iteri
    (fun i (r : Control.route) ->
      let colour = palette.(i mod Array.length palette) in
      List.iter
        (fun e ->
          let u, v = Graph.endpoints g e in
          let x1, y1 = ctrl_xy u and x2, y2 = ctrl_xy v in
          line buf ~x1 ~y1 ~x2 ~y2 ~stroke:colour ~width':3)
        r.Control.tree_edges;
      let px, py = ctrl_xy r.Control.port_node in
      circle buf ~cx:px ~cy:py ~r:6 ~fill:colour;
      List.iter
        (fun (_, tap) ->
          let tx, ty = ctrl_xy tap in
          rect buf ~x:(tx - 4) ~y:(ty - 4) ~w:8 ~h:8 ~fill:colour ())
        r.Control.taps)
    layout.Control.routes;
  text buf ~x:(width / 2) ~y:(height + 15)
    (escape
       (Printf.sprintf "control layer: %d ports, length %d%s" (Control.n_ports layout)
          (Control.total_length layout)
          (if layout.Control.unrouted = [] then ""
           else Printf.sprintf ", %d UNROUTED" (List.length layout.Control.unrouted))));
  footer buf;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Gantt chart *)

let schedule app (s : Schedule.t) =
  let device_ids =
    List.sort_uniq compare
      (List.filter_map
         (fun ev ->
           match ev with
           | Schedule.Op_started { device; _ } -> Some device
           | Schedule.Op_finished _ | Schedule.Transport_started _ | Schedule.Unit_stored _
           | Schedule.Unit_parked _ -> None)
         s.Schedule.events)
  in
  let n_rows = List.length device_ids in
  let row_of d = Option.get (List.find_index (( = ) d) device_ids) in
  let width = 900 and row_h = 36 in
  let chart_w = width - 140 in
  let height = (n_rows * row_h) + 110 in
  let xs t = 120 + (t * chart_w / max 1 s.Schedule.makespan) in
  let buf = Buffer.create 8192 in
  header ~width ~height buf;
  text buf ~x:(width / 2) ~y:24
    (escape (Printf.sprintf "schedule: makespan %d s, %d transports" s.Schedule.makespan
               s.Schedule.n_transports));
  (* device rows *)
  List.iteri
    (fun i d ->
      let y = 50 + (i * row_h) in
      text buf ~x:60 ~y:(y + (row_h / 2)) ~anchor:"middle" (Printf.sprintf "device %d" d);
      line buf ~x1:120 ~y1:(y + row_h) ~x2:(120 + chart_w) ~y2:(y + row_h) ~stroke:"#eeeeee"
        ~width':1;
      ignore i)
    device_ids;
  (* op bars: pair starts with finishes *)
  let starts = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      match ev with
      | Schedule.Op_started { op; device; time } -> Hashtbl.replace starts op (device, time)
      | Schedule.Op_finished { op; time; _ } ->
        (match Hashtbl.find_opt starts op with
         | Some (device, t0) ->
           let y = 50 + (row_of device * row_h) in
           let x0 = xs t0 and x1 = xs time in
           let name = (Seqgraph.op app op).Mf_bioassay.Op.op_name in
           let fill =
             match (Seqgraph.op app op).Mf_bioassay.Op.kind with
             | Mf_bioassay.Op.Mix -> "#27ae60"
             | Mf_bioassay.Op.Detect -> "#8e44ad"
             | Mf_bioassay.Op.Heat -> "#d35400"
             | Mf_bioassay.Op.Filter -> "#16a085"
           in
           rect buf ~x:x0 ~y:(y + 4) ~w:(max 2 (x1 - x0)) ~h:(row_h - 12) ~fill ~stroke:"black" ();
           if x1 - x0 > 50 then
             text buf ~x:((x0 + x1) / 2) ~y:(y + (row_h / 2) + 2) ~size:10 ~fill:"white"
               (escape name)
         | None -> ())
      | Schedule.Transport_started _ | Schedule.Unit_stored _ | Schedule.Unit_parked _ -> ())
    s.Schedule.events;
  (* transport ticks on a bottom lane *)
  let lane_y = 50 + (n_rows * row_h) + 10 in
  text buf ~x:60 ~y:(lane_y + 12) "moves";
  List.iter
    (fun ev ->
      match ev with
      | Schedule.Transport_started { time; finish; _ } ->
        rect buf ~x:(xs time) ~y:lane_y ~w:(max 2 (xs finish - xs time)) ~h:8 ~fill:"#7f8c8d" ()
      | Schedule.Op_started _ | Schedule.Op_finished _ | Schedule.Unit_stored _
      | Schedule.Unit_parked _ -> ())
    s.Schedule.events;
  (* time axis *)
  let axis_y = lane_y + 30 in
  line buf ~x1:120 ~y1:axis_y ~x2:(120 + chart_w) ~y2:axis_y ~stroke:"black" ~width':1;
  for k = 0 to 4 do
    let t = k * s.Schedule.makespan / 4 in
    text buf ~x:(xs t) ~y:(axis_y + 18) ~size:12 (string_of_int t)
  done;
  footer buf;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* PSO trace *)

let trace ?(invalid_threshold = infinity) values =
  let width = 640 and height = 360 in
  let buf = Buffer.create 4096 in
  header ~width ~height buf;
  let valid = List.filter (fun v -> v < invalid_threshold) values in
  (match valid with
   | [] -> text buf ~x:(width / 2) ~y:(height / 2) "no valid scheme found"
   | v0 :: rest ->
     let lo = List.fold_left min v0 rest and hi = List.fold_left max v0 rest in
     let lo = lo -. 1. and hi = hi +. 1. in
     let n = List.length values in
     let x_of i = 60 + (i * (width - 100) / max 1 (n - 1)) in
     let y_of v =
       let frac = (v -. lo) /. (hi -. lo) in
       (height - 60) - int_of_float (frac *. float_of_int (height - 110))
     in
     line buf ~x1:60 ~y1:(height - 60) ~x2:(width - 40) ~y2:(height - 60) ~stroke:"black"
       ~width':1;
     line buf ~x1:60 ~y1:50 ~x2:60 ~y2:(height - 60) ~stroke:"black" ~width':1;
     text buf ~x:(width / 2) ~y:(height - 20) "PSO iteration";
     text buf ~x:30 ~y:40 ~anchor:"start" "exec time [s]";
     let prev = ref None in
     List.iteri
       (fun i v ->
         if v < invalid_threshold then begin
           let x = x_of i and y = y_of v in
           (match !prev with
            | Some (px, py) -> line buf ~x1:px ~y1:py ~x2:x ~y2:y ~stroke:"#3b7dd8" ~width':2
            | None -> ());
           circle buf ~cx:x ~cy:y ~r:3 ~fill:"#3b7dd8";
           prev := Some (x, y)
         end
         else prev := None)
       values;
     text buf ~x:70 ~y:(y_of v0 - 8) ~anchor:"start" ~size:12
       (Printf.sprintf "start %.0f" v0);
     let final = List.nth valid (List.length valid - 1) in
     text buf ~x:(width - 45) ~y:(y_of final - 8) ~anchor:"end" ~size:12
       (Printf.sprintf "final %.0f" final));
  footer buf;
  Buffer.contents buf
