(** SVG renderings of chips, schedules, control layers and PSO traces —
    publication-style counterparts of the ASCII [Chip.render].

    All functions return a complete standalone SVG document. *)

val chip : Mf_arch.Chip.t -> string
(** Flow layer: channels, valves (originals dark, DFT highlighted), devices
    and ports, on the connection grid. *)

val control_layer : Mf_arch.Chip.t -> Mf_control.Control.t -> string
(** The flow layer greyed out with the routed control trees drawn on top,
    one colour per control line, ports marked at the boundary. *)

val schedule : Mf_bioassay.Seqgraph.t -> Mf_sched.Schedule.t -> string
(** Gantt chart: one row per device, one bar per operation, transport
    ticks underneath. *)

val trace : ?invalid_threshold:float -> float list -> string
(** Convergence plot of a PSO trace (Fig. 9 style); entries at or above
    [invalid_threshold] (default infinity) render as gaps. *)
