module Bitset = Mf_util.Bitset
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse

type device_kind = Mixer | Detector | Heater | Filter

type device = { device_id : int; kind : device_kind; node : int; name : string }

type port = { port_id : int; node : int; port_name : string }

type valve = { valve_id : int; edge : int; control : int; is_dft : bool }

type t = {
  chip_name : string;
  grid : Grid.t;
  devices : device array;
  ports : port array;
  channels : Bitset.t;
  valves : valve array;
  valve_of_edge : int array; (* edge -> valve id or -1 *)
  n_original_valves : int;
  n_controls : int;
  dft_edges : int list;
  device_of_node : int array; (* node -> device id or -1 *)
  port_of_node : int array;
}

let grid t = t.grid
let devices t = t.devices
let ports t = t.ports
let valves t = t.valves
let n_valves t = Array.length t.valves
let n_original_valves t = t.n_original_valves
let n_controls t = t.n_controls
let name t = t.chip_name
let channel_edges t = Bitset.copy t.channels
let is_channel t e = Bitset.mem t.channels e

let valve_on t e = if t.valve_of_edge.(e) < 0 then None else Some t.valves.(t.valve_of_edge.(e))

let valves_of_control t line =
  Array.fold_right (fun v acc -> if v.control = line then v :: acc else acc) t.valves []

let device_at t node = if t.device_of_node.(node) < 0 then None else Some t.devices.(t.device_of_node.(node))
let port_at t node = if t.port_of_node.(node) < 0 then None else Some t.ports.(t.port_of_node.(node))

let dft_edges t = t.dft_edges

(* ------------------------------------------------------------------ *)
(* Builder *)

type builder = {
  b_name : string;
  b_grid : Grid.t;
  mutable b_devices : device list; (* reversed *)
  mutable b_ports : port list;
  b_channels : Bitset.t;
  mutable b_valve_edges : int list; (* reversed *)
}

let builder ~name ~width ~height =
  let g = Grid.create ~width ~height in
  {
    b_name = name;
    b_grid = g;
    b_devices = [];
    b_ports = [];
    b_channels = Bitset.create (Grid.n_edges g);
    b_valve_edges = [];
  }

let node_of b (x, y) = Grid.node b.b_grid ~x ~y

let add_device b ~kind ~x ~y ~name =
  let node = node_of b (x, y) in
  let device_id = List.length b.b_devices in
  b.b_devices <- { device_id; kind; node; name } :: b.b_devices

let add_port b ~x ~y ~name =
  let node = node_of b (x, y) in
  let port_id = List.length b.b_ports in
  b.b_ports <- { port_id; node; port_name = name } :: b.b_ports

let add_channel b path =
  let rec lay = function
    | [] | [ _ ] -> ()
    | a :: (c :: _ as rest) ->
      (match Grid.edge_between b.b_grid (node_of b a) (node_of b c) with
       | None ->
         invalid_arg
           (Printf.sprintf "Chip.add_channel: (%d,%d) and (%d,%d) not adjacent" (fst a) (snd a)
              (fst c) (snd c))
       | Some e -> Bitset.add b.b_channels e);
      lay rest
  in
  lay path

let add_valve b a c =
  match Grid.edge_between b.b_grid (node_of b a) (node_of b c) with
  | None -> invalid_arg "Chip.add_valve: coordinates not adjacent"
  | Some e ->
    if not (Bitset.mem b.b_channels e) then
      invalid_arg "Chip.add_valve: no channel on that edge";
    if List.mem e b.b_valve_edges then invalid_arg "Chip.add_valve: duplicate valve";
    b.b_valve_edges <- e :: b.b_valve_edges

let freeze ~chip_name ~grid ~devices ~ports ~channels ~valve_specs ~n_original_valves ~dft_edges =
  let n_edges = Grid.n_edges grid in
  let n_nodes = Grid.n_nodes grid in
  let valves =
    Array.of_list
      (List.mapi
         (fun valve_id (edge, control, is_dft) -> { valve_id; edge; control; is_dft })
         valve_specs)
  in
  let valve_of_edge = Array.make n_edges (-1) in
  Array.iter (fun v -> valve_of_edge.(v.edge) <- v.valve_id) valves;
  let device_of_node = Array.make n_nodes (-1) in
  Array.iter (fun (d : device) -> device_of_node.(d.node) <- d.device_id) devices;
  let port_of_node = Array.make n_nodes (-1) in
  Array.iter (fun (p : port) -> port_of_node.(p.node) <- p.port_id) ports;
  let n_controls =
    Array.fold_left (fun acc v -> max acc (v.control + 1)) 0 valves
  in
  {
    chip_name;
    grid;
    devices;
    ports;
    channels;
    valves;
    valve_of_edge;
    n_original_valves;
    n_controls;
    dft_edges;
    device_of_node;
    port_of_node;
  }

let validate chip =
  let g = Grid.graph chip.grid in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* distinct placement *)
  let node_users = Hashtbl.create 16 in
  Array.iter (fun (d : device) ->
      (match Hashtbl.find_opt node_users d.node with
       | Some other -> err "device %s overlaps %s" d.name other
       | None -> ());
      Hashtbl.replace node_users d.node d.name)
    chip.devices;
  Array.iter (fun (p : port) ->
      (match Hashtbl.find_opt node_users p.node with
       | Some other -> err "port %s overlaps %s" p.port_name other
       | None -> ());
      Hashtbl.replace node_users p.node p.port_name)
    chip.ports;
  if Array.length chip.ports < 2 then err "a chip needs at least two ports";
  (* connectivity of the channel network over all devices and ports *)
  let allowed e = Bitset.mem chip.channels e in
  (match chip.ports with
   | [||] -> ()
   | ports ->
     let reach = Traverse.reachable g ~allowed ~src:ports.(0).node in
     Array.iter
       (fun (p : port) ->
         if not (Bitset.mem reach p.node) then err "port %s unreachable through channels" p.port_name)
       ports;
     Array.iter
       (fun (d : device) ->
         if not (Bitset.mem reach d.node) then err "device %s unreachable through channels" d.name)
       chip.devices);
  (* closing all valves must separate every pair of ports, otherwise
     stuck-at-1 defects cannot be tested *)
  let open_when_all_closed e = Bitset.mem chip.channels e && chip.valve_of_edge.(e) < 0 in
  let n_ports = Array.length chip.ports in
  for i = 0 to n_ports - 1 do
    for j = i + 1 to n_ports - 1 do
      if
        Traverse.connected g ~allowed:open_when_all_closed chip.ports.(i).node
          chip.ports.(j).node
      then
        err "ports %s and %s stay connected with all valves closed" chip.ports.(i).port_name
          chip.ports.(j).port_name
    done
  done;
  match !errors with [] -> Ok chip | es -> Error (String.concat "; " (List.rev es))

let finish b =
  let devices = Array.of_list (List.rev b.b_devices) in
  let ports = Array.of_list (List.rev b.b_ports) in
  let valve_specs =
    List.mapi (fun i edge -> (edge, i, false)) (List.rev b.b_valve_edges)
  in
  let chip =
    freeze ~chip_name:b.b_name ~grid:b.b_grid ~devices ~ports ~channels:(Bitset.copy b.b_channels)
      ~valve_specs ~n_original_valves:(List.length valve_specs) ~dft_edges:[]
  in
  validate chip

let finish_exn b =
  match finish b with Ok chip -> chip | Error msg -> invalid_arg ("Chip.finish: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Augmentation *)

let strip_augmentation chip =
  (* keep only original channels and valves *)
  let channels = Bitset.copy chip.channels in
  List.iter (fun e -> Bitset.remove channels e) chip.dft_edges;
  let valve_specs =
    Array.to_list chip.valves
    |> List.filter (fun v -> not v.is_dft)
    |> List.map (fun v -> (v.edge, v.valve_id, false))
  in
  freeze ~chip_name:chip.chip_name ~grid:chip.grid ~devices:chip.devices ~ports:chip.ports
    ~channels ~valve_specs ~n_original_valves:chip.n_original_valves ~dft_edges:[]

let augment chip ~edges =
  let base = if chip.dft_edges = [] then chip else strip_augmentation chip in
  let channels = Bitset.copy base.channels in
  List.iter
    (fun e ->
      if Bitset.mem channels e then
        invalid_arg (Format.asprintf "Chip.augment: edge %a already a channel" (Grid.pp_edge base.grid) e);
      Bitset.add channels e)
    edges;
  let n_orig = base.n_original_valves in
  let original_specs = Array.to_list base.valves |> List.map (fun v -> (v.edge, v.control, false)) in
  let dft_specs = List.mapi (fun i e -> (e, n_orig + i, true)) edges in
  freeze ~chip_name:base.chip_name ~grid:base.grid ~devices:base.devices ~ports:base.ports
    ~channels ~valve_specs:(original_specs @ dft_specs) ~n_original_valves:n_orig ~dft_edges:edges

let with_sharing chip assignments =
  let n = Array.length chip.valves in
  let control = Array.map (fun v -> v.control) chip.valves in
  List.iter
    (fun (dft_id, orig_id) ->
      if dft_id < 0 || dft_id >= n || not chip.valves.(dft_id).is_dft then
        invalid_arg "Chip.with_sharing: first id must be a DFT valve";
      if orig_id < 0 || orig_id >= chip.n_original_valves then
        invalid_arg "Chip.with_sharing: second id must be an original valve";
      control.(dft_id) <- chip.valves.(orig_id).control)
    assignments;
  (* densify control line numbering *)
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  let dense line =
    match Hashtbl.find_opt remap line with
    | Some d -> d
    | None ->
      let d = !next in
      incr next;
      Hashtbl.add remap line d;
      d
  in
  let valve_specs =
    Array.to_list chip.valves |> List.map (fun v -> (v.edge, dense control.(v.valve_id), v.is_dft))
  in
  freeze ~chip_name:chip.chip_name ~grid:chip.grid ~devices:chip.devices ~ports:chip.ports
    ~channels:(Bitset.copy chip.channels) ~valve_specs ~n_original_valves:chip.n_original_valves
    ~dft_edges:chip.dft_edges

(* ------------------------------------------------------------------ *)
(* Printing *)

let kind_letter = function Mixer -> 'M' | Detector -> 'D' | Heater -> 'H' | Filter -> 'F'

let pp ppf t =
  Fmt.pf ppf "@[<v>chip %s (%dx%d grid)@,%d devices, %d ports, %d channels, %d valves (%d DFT), %d control lines@]"
    t.chip_name (Grid.width t.grid) (Grid.height t.grid) (Array.length t.devices)
    (Array.length t.ports) (Bitset.cardinal t.channels) (Array.length t.valves)
    (Array.length t.valves - t.n_original_valves)
    t.n_controls

let render t =
  let w = Grid.width t.grid and h = Grid.height t.grid in
  let g = Grid.graph t.grid in
  let buf = Buffer.create 256 in
  let cell x y =
    let n = Grid.node t.grid ~x ~y in
    match (device_at t n, port_at t n) with
    | Some d, _ -> kind_letter d.kind
    | None, Some _ -> 'P'
    | None, None -> '+'
  in
  let edge_char a b vertical =
    match Grid.edge_between t.grid a b with
    | None -> ' '
    | Some e ->
      if not (Bitset.mem t.channels e) then ' '
      else begin
        match valve_on t e with
        | Some v -> if v.is_dft then 'o' else 'x'
        | None -> if vertical then '|' else '-'
      end
  in
  ignore g;
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      Buffer.add_char buf (cell x y);
      if x + 1 < w then begin
        let c = edge_char (Grid.node t.grid ~x ~y) (Grid.node t.grid ~x:(x + 1) ~y) false in
        Buffer.add_char buf c;
        Buffer.add_char buf (if c = ' ' then ' ' else c);
        Buffer.add_char buf c
      end
    done;
    Buffer.add_char buf '\n';
    if y + 1 < h then begin
      for x = 0 to w - 1 do
        Buffer.add_char buf (edge_char (Grid.node t.grid ~x ~y) (Grid.node t.grid ~x ~y:(y + 1)) true);
        if x + 1 < w then Buffer.add_string buf "   "
      done;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.contents buf
