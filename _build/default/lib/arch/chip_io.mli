(** Textual chip descriptions.

    A small line-oriented format so users can define architectures in files
    instead of OCaml (the CLI accepts them everywhere a chip is expected):

    {v
    # comment
    chip NAME WIDTH HEIGHT
    device mixer|detector|heater|filter X Y NAME
    port X Y NAME
    channel X,Y X,Y [X,Y ...]     # polyline of grid-adjacent points
    valve X,Y X,Y                 # on an existing channel edge
    dft X,Y X,Y                   # DFT augmentation edge (optional)
    share DFT_INDEX ORIG_INDEX    # control sharing (optional); DFT_INDEX
                                  # counts dft lines in order, ORIG_INDEX
                                  # counts valve lines in order
    v}

    [to_string] round-trips: parsing its output reproduces the chip
    (devices, ports, channels, valves, augmentation and sharing). *)

val parse : string -> (Chip.t, string) result
(** Parse a description.  Errors carry a line number and reason, including
    the architecture validation errors of [Chip.finish]. *)

val load : string -> (Chip.t, string) result
(** [load path] reads and parses a file. *)

val to_string : Chip.t -> string
val save : string -> Chip.t -> unit
