lib/arch/chip.mli: Format Mf_grid Mf_util Stdlib
