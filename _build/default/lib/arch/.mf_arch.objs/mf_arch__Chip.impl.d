lib/arch/chip.ml: Array Buffer Fmt Format Hashtbl List Mf_graph Mf_grid Mf_util Printf String
