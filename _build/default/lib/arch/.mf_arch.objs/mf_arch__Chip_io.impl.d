lib/arch/chip_io.ml: Array Buffer Chip In_channel List Mf_graph Mf_grid Mf_util Option Out_channel Printf String
