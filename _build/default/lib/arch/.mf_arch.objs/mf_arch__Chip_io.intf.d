lib/arch/chip_io.mli: Chip
