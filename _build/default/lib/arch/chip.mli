(** Continuous-flow biochip architecture embedded on a connection grid.

    A chip is a set of {e devices} (mixers, detectors, ...) and {e ports}
    placed on grid nodes, {e channels} occupying grid edges, and {e valves}
    sitting on a subset of the channel edges.  Every valve is driven by a
    {e control line}; in an unaugmented chip each valve has its own line.
    DFT augmentation ({!augment}) adds channels each carrying a fresh valve;
    those DFT valves may later share control lines with original valves
    (see [Mfdft.Sharing]).

    Conventions used throughout the library:
    - edge ids and node ids are those of [Grid.graph];
    - valve ids are dense [0 .. n_valves-1], original valves first, DFT
      valves after [n_original_valves];
    - control line ids are dense [0 .. n_controls-1]. *)

type device_kind = Mixer | Detector | Heater | Filter

type device = { device_id : int; kind : device_kind; node : int; name : string }

type port = { port_id : int; node : int; port_name : string }

type valve = {
  valve_id : int;
  edge : int;  (** grid edge the valve sits on *)
  control : int;  (** control line driving it *)
  is_dft : bool;
}

type t

(** {1 Accessors} *)

val grid : t -> Mf_grid.Grid.t
val devices : t -> device array
val ports : t -> port array
val valves : t -> valve array
val n_valves : t -> int
val n_original_valves : t -> int
(** Valves with id below this are part of the pre-DFT chip. *)

val n_controls : t -> int
val name : t -> string

val channel_edges : t -> Mf_util.Bitset.t
(** Edges occupied by channels (a copy; safe to mutate). *)

val is_channel : t -> int -> bool
val valve_on : t -> int -> valve option
(** The valve on a given edge, if any. *)

val valves_of_control : t -> int -> valve list
(** All valves driven by a control line (>1 exactly when lines are shared). *)

val device_at : t -> int -> device option
val port_at : t -> int -> port option

val dft_edges : t -> int list
(** Edges added by {!augment}, in addition order. *)

(** {1 Construction} *)

type builder

val builder : name:string -> width:int -> height:int -> builder
val add_device : builder -> kind:device_kind -> x:int -> y:int -> name:string -> unit
val add_port : builder -> x:int -> y:int -> name:string -> unit

val add_channel : builder -> (int * int) list -> unit
(** [add_channel b path] lays channel segments along consecutive grid
    coordinates [(x, y)]; each pair of consecutive coordinates must be
    grid-adjacent. *)

val add_valve : builder -> (int * int) -> (int * int) -> unit
(** [add_valve b a b'] puts a valve on the channel edge between the two
    coordinates.  The edge must already carry a channel. *)

val finish : builder -> (t, string) Stdlib.result
(** Validates and freezes the chip.  Checks: no two devices/ports on one
    node; at least two ports; the channel network connects every port and
    device; closing all valves separates every pair of ports (otherwise
    stuck-at-1 defects are untestable and the chip is rejected). *)

val finish_exn : builder -> t
(** Like {!finish} but raises [Invalid_argument] with the message. *)

(** {1 DFT augmentation and control rewiring} *)

val augment : t -> edges:int list -> t
(** [augment chip ~edges] returns a chip with the given free grid edges
    added as channels, each carrying a fresh DFT valve on a fresh control
    line.  Augmenting an already augmented chip replaces the previous
    augmentation.  Raises if an edge is already a channel. *)

val with_sharing : t -> (int * int) list -> t
(** [with_sharing chip assignments] rewires control lines: each pair
    [(dft_valve_id, original_valve_id)] makes the DFT valve share the
    original valve's control line.  Unlisted DFT valves keep their own
    line.  Control line ids are re-densified. *)

val pp : Format.formatter -> t -> unit
val render : t -> string
(** ASCII picture of the chip on its grid, for examples and debugging. *)
