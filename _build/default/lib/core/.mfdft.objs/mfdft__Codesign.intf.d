lib/core/codesign.mli: Mf_arch Mf_bioassay Mf_pso Mf_sched Mf_testgen Pool Sharing Stdlib
