lib/core/report.ml: Array Buffer Codesign Format List Mf_arch Mf_control Mf_grid Mf_testgen Out_channel Printf
