lib/core/sharing.ml: Array Fmt List Mf_arch Mf_util
