lib/core/pool.ml: Array Fun Hashtbl List Mf_arch Mf_grid Mf_testgen Mf_util Option String
