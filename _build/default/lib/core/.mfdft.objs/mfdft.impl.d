lib/core/mfdft.ml: Codesign Pool Report Sharing
