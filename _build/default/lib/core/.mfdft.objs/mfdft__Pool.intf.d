lib/core/pool.mli: Mf_arch Mf_testgen Mf_util
