lib/core/sharing.mli: Format Mf_arch Mf_util
