lib/core/codesign.ml: Array Fun Hashtbl List Mf_arch Mf_faults Mf_pso Mf_sched Mf_testgen Mf_util Option Pool Sharing Unix
