lib/core/report.mli: Codesign
