(** Valve-sharing schemes (Sec. 4): which original valve each DFT valve
    borrows its control line from, so the augmented chip needs no new
    control ports. *)

type t = (int * int) list
(** [(dft_valve_id, original_valve_id)] pairs; DFT valves absent from the
    list keep a private control line. *)

val decode : Mf_arch.Chip.t -> float array -> t
(** [decode chip position] maps a PSO position (one dimension per DFT
    valve, each in [0,1]) to a full assignment: dimension [i] selects
    original valve [floor (x_i * n_original)]. *)

val dimensions : Mf_arch.Chip.t -> int
(** Number of DFT valves = PSO dimensionality of the sharing space. *)

val apply : Mf_arch.Chip.t -> t -> Mf_arch.Chip.t
(** Rewire control lines ({!Mf_arch.Chip.with_sharing}). *)

val n_shared : t -> int

val random : Mf_util.Rng.t -> Mf_arch.Chip.t -> t
(** A uniformly random full assignment (used for the "DFT without PSO"
    baseline of Table 1). *)

val pp : Format.formatter -> t -> unit
