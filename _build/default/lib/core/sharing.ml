module Chip = Mf_arch.Chip
module Rng = Mf_util.Rng

type t = (int * int) list

let dft_valves chip =
  Array.to_list (Chip.valves chip) |> List.filter (fun (v : Chip.valve) -> v.is_dft)

let dimensions chip = List.length (dft_valves chip)

let decode chip position =
  let n_orig = Chip.n_original_valves chip in
  if n_orig = 0 then []
  else
    dft_valves chip
    |> List.mapi (fun i (v : Chip.valve) ->
        let x = if i < Array.length position then position.(i) else 0. in
        let target = int_of_float (x *. float_of_int n_orig) in
        (v.valve_id, min (n_orig - 1) (max 0 target)))

let apply chip t = Chip.with_sharing chip t

let n_shared t = List.length t

let random rng chip =
  let n_orig = Chip.n_original_valves chip in
  if n_orig = 0 then []
  else dft_valves chip |> List.map (fun (v : Chip.valve) -> (v.valve_id, Rng.int rng n_orig))

let pp ppf t =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:comma (pair ~sep:(any "->") int int)) t
