(** Human-readable reports of a codesign run: a Markdown document with the
    architecture before/after, the sharing scheme, the test program, the
    control-layer cost and the execution-time comparison. *)

val markdown : ?title:string -> Codesign.result -> string
(** Render the full report.  Pure; does not re-run anything except the
    (fast) control-layer synthesis for the final architectures. *)

val save : string -> Codesign.result -> unit
(** Write [markdown] to a file. *)
