module Graph = Mf_graph.Graph

type t = { width : int; height : int; graph : Graph.t }

let node_unchecked w x y = (y * w) + x

let create ~width ~height =
  if width < 1 || height < 1 then invalid_arg "Grid.create: empty grid";
  let g = Graph.create ~n:(width * height) in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let here = node_unchecked width x y in
      if x + 1 < width then ignore (Graph.add_edge g here (node_unchecked width (x + 1) y));
      if y + 1 < height then ignore (Graph.add_edge g here (node_unchecked width x (y + 1)))
    done
  done;
  { width; height; graph = g }

let width t = t.width
let height t = t.height
let graph t = t.graph
let n_nodes t = t.width * t.height
let n_edges t = Graph.n_edges t.graph

let node t ~x ~y =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg (Printf.sprintf "Grid.node: (%d,%d) outside %dx%d" x y t.width t.height);
  node_unchecked t.width x y

let coords t n =
  if n < 0 || n >= n_nodes t then invalid_arg "Grid.coords: bad node";
  (n mod t.width, n / t.width)

let edge_between t u v = Graph.find_edge t.graph u v

let edge_between_xy t (x1, y1) (x2, y2) = edge_between t (node t ~x:x1 ~y:y1) (node t ~x:x2 ~y:y2)

let manhattan t u v =
  let x1, y1 = coords t u and x2, y2 = coords t v in
  abs (x1 - x2) + abs (y1 - y2)

let pp_node t ppf n =
  let x, y = coords t n in
  Fmt.pf ppf "(%d,%d)" x y

let pp_edge t ppf e =
  let u, v = Graph.endpoints t.graph e in
  Fmt.pf ppf "%a-%a" (pp_node t) u (pp_node t) v
