(** The paper's virtual connection grid (Fig. 5).

    A [width] × [height] lattice of nodes with 4-neighbour edges.  Devices
    and ports of a chip are embedded on nodes; channels occupy edges; the
    unoccupied nodes and edges are the candidate locations for DFT channels
    and valves. *)

type t

val create : width:int -> height:int -> t
(** Builds the full lattice.  Edge ids are those of the underlying
    {!Mf_graph.Graph.t} and are stable for a given size: all horizontal
    edges row-major first behaviourally unspecified — use {!edge_between}
    rather than assuming an order. *)

val width : t -> int
val height : t -> int
val graph : t -> Mf_graph.Graph.t
(** The lattice as a graph; node/edge ids are shared with all functions
    below. *)

val n_nodes : t -> int
val n_edges : t -> int

val node : t -> x:int -> y:int -> int
(** Node id at coordinates; raises [Invalid_argument] when out of range. *)

val coords : t -> int -> int * int
(** [coords g n] is [(x, y)] of node [n]. *)

val edge_between : t -> int -> int -> int option
(** The lattice edge joining two adjacent nodes, if any. *)

val edge_between_xy : t -> int * int -> int * int -> int option

val manhattan : t -> int -> int -> int
(** Manhattan distance between two nodes. *)

val pp_node : t -> Format.formatter -> int -> unit
val pp_edge : t -> Format.formatter -> int -> unit
