lib/grid/grid.mli: Format Mf_graph
