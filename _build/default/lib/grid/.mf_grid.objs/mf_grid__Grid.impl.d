lib/grid/grid.ml: Fmt Mf_graph Printf
