(** Textual sequencing-graph descriptions.

    Line-oriented format accepted by the CLI wherever an assay is expected:

    {v
    # comment
    assay NAME
    op ID mix|detect|heat|filter DURATION NAME
    dep FROM TO          # FROM's product feeds TO
    v}

    Operation ids must be dense 0..n-1.  [to_string] round-trips. *)

val parse : string -> (Seqgraph.t, string) result
val load : string -> (Seqgraph.t, string) result
val to_string : Seqgraph.t -> string
val save : string -> Seqgraph.t -> unit
