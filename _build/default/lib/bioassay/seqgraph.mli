(** Sequencing graphs G = (O, E): a DAG of operations where an edge
    [(i, j)] means operation [j] consumes the fluid produced by operation
    [i] (Fig. 2). *)

type t

val create : Op.t list -> edges:(int * int) list -> (t, string) result
(** Validates: dense distinct op ids, edge endpoints exist, graph acyclic. *)

val create_exn : Op.t list -> edges:(int * int) list -> t

val n_ops : t -> int
val op : t -> int -> Op.t
val ops : t -> Op.t array
val preds : t -> int -> int list
(** Operations whose results feed op [i], in edge insertion order. *)

val succs : t -> int -> int list
val roots : t -> int list
(** Operations with no predecessor (consume fresh reagents). *)

val sinks : t -> int list
val topological : t -> int list
(** A topological order (stable: ties by op id). *)

val depth : t -> int
(** Length (in ops) of the longest dependency chain — a lower bound
    intuition for the makespan. *)

val total_work : t -> int
(** Sum of all durations. *)

val pp : Format.formatter -> t -> unit
