(** The three real-world assays used in the paper's evaluation (Table 1).

    The paper gives only operation counts (IVD 12, PID 38, CPA 55); the
    dependency structures here follow the shapes known from the microfluidic
    synthesis literature and reproduce those counts exactly:

    - {b IVD} (in-vitro diagnostics): independent sample × reagent
      mix→detect chains — wide and shallow.
    - {b PID} (protein interpolation dilution): a serial dilution chain with
      interpolation mixes between consecutive dilution levels — deep, with a
      long critical path.
    - {b CPA} (colorimetric protein assay): per-sample serial dilutions,
      reagent mixes and many optical detections — detector-bound. *)

val ivd : unit -> Seqgraph.t
(** 12 operations: 6 mixes, 6 detections. *)

val pid : unit -> Seqgraph.t
(** 38 operations: 19 mixes, 19 detections. *)

val cpa : unit -> Seqgraph.t
(** 55 operations: 30 mixes, 25 detections. *)

val by_name : string -> Seqgraph.t option
(** Lookup by lowercase name: ["ivd"], ["pid"], ["cpa"]. *)

val names : string list
