lib/bioassay/assays.ml: Array List Op Printf Seqgraph
