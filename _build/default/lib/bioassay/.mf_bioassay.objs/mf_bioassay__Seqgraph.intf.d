lib/bioassay/seqgraph.mli: Format Op
