lib/bioassay/op.ml: Fmt
