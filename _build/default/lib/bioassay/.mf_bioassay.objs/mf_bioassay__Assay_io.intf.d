lib/bioassay/assay_io.mli: Seqgraph
