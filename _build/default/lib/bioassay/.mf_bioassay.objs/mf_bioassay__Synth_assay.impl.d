lib/bioassay/synth_assay.ml: Array Fun List Mf_util Op Printf Seqgraph
