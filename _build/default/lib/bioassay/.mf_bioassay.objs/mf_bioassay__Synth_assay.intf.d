lib/bioassay/synth_assay.mli: Mf_util Seqgraph
