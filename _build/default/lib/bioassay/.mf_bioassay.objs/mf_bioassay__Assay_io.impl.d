lib/bioassay/assay_io.ml: Array Buffer In_channel List Op Out_channel Printf Seqgraph String
