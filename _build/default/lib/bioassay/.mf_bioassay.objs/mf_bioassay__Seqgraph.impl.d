lib/bioassay/seqgraph.ml: Array Fmt Fun List Mf_util Op Queue
