lib/bioassay/op.mli: Format
