lib/bioassay/assays.mli: Seqgraph
