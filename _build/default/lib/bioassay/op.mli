(** Operations of a biochemical application (nodes of a sequencing graph,
    Fig. 2).  The [kind] selects which device class can execute the
    operation; [duration] is in schedule ticks (1 tick = 1 s). *)

type kind = Mix | Detect | Heat | Filter

type t = { op_id : int; kind : kind; duration : int; op_name : string }

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit
