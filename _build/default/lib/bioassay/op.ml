type kind = Mix | Detect | Heat | Filter

type t = { op_id : int; kind : kind; duration : int; op_name : string }

let kind_name = function Mix -> "mix" | Detect -> "detect" | Heat -> "heat" | Filter -> "filter"

let pp ppf t = Fmt.pf ppf "%s#%d(%s,%ds)" t.op_name t.op_id (kind_name t.kind) t.duration
