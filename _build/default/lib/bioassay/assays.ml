(* Assay construction uses a tiny accumulator so op ids stay dense and the
   edge list stays in sync with the textual structure below. *)
type builder = { mutable rev_ops : Op.t list; mutable rev_edges : (int * int) list; mutable next : int }

let fresh () = { rev_ops = []; rev_edges = []; next = 0 }

let add b kind duration op_name deps =
  let op_id = b.next in
  b.next <- op_id + 1;
  b.rev_ops <- { Op.op_id; kind; duration; op_name } :: b.rev_ops;
  List.iter (fun d -> b.rev_edges <- (d, op_id) :: b.rev_edges) deps;
  op_id

let build b = Seqgraph.create_exn (List.rev b.rev_ops) ~edges:(List.rev b.rev_edges)

(* IVD: 2 samples x 3 reagents; each pairing is an independent mix -> detect
   chain.  6 + 6 = 12 ops. *)
let ivd () =
  let b = fresh () in
  for s = 0 to 1 do
    for r = 0 to 2 do
      let tag = Printf.sprintf "s%dr%d" s r in
      let m = add b Op.Mix 60 ("mix_" ^ tag) [] in
      ignore (add b Op.Detect 45 ("det_" ^ tag) [ m ])
    done
  done;
  build b

(* PID: two parallel serial-dilution chains of 8 mixes each, joined by three
   interpolation mixes at the junction; every product is detected.
   16 + 3 mixes, 19 detects = 38 ops.  Fan-out is bounded by 3 so the
   intermediate products fit the chips' distributed storage. *)
let pid () =
  let b = fresh () in
  let chain tag =
    let ids = Array.make 8 0 in
    for i = 0 to 7 do
      let deps = if i = 0 then [] else [ ids.(i - 1) ] in
      ids.(i) <- add b Op.Mix 70 (Printf.sprintf "dil_%s%d" tag i) deps
    done;
    ids
  in
  let a = chain "a" in
  let c = chain "b" in
  let i0 = add b Op.Mix 70 "interp0" [ a.(7); c.(7) ] in
  let i1 = add b Op.Mix 70 "interp1" [ a.(7); i0 ] in
  let i2 = add b Op.Mix 70 "interp2" [ c.(7); i0 ] in
  let detect m = ignore (add b Op.Detect 40 (Printf.sprintf "det%d" m) [ m ]) in
  Array.iter detect a;
  Array.iter detect c;
  List.iter detect [ i0; i1; i2 ];
  build b

(* CPA: 5 samples; per sample a 3-level serial dilution, three reagent
   mixes (one per dilution level) and five optical detections.
   5 * (6 mixes + 5 detects) = 55 ops. *)
let cpa () =
  let b = fresh () in
  for s = 0 to 4 do
    let tag i = Printf.sprintf "s%d_%s" s i in
    let m1 = add b Op.Mix 60 (tag "dil1") [] in
    let m2 = add b Op.Mix 60 (tag "dil2") [ m1 ] in
    let m3 = add b Op.Mix 60 (tag "dil3") [ m2 ] in
    let r1 = add b Op.Mix 60 (tag "reag1") [ m1 ] in
    let r2 = add b Op.Mix 60 (tag "reag2") [ m2 ] in
    let r3 = add b Op.Mix 60 (tag "reag3") [ m3 ] in
    ignore (add b Op.Detect 50 (tag "det_r1") [ r1 ]);
    ignore (add b Op.Detect 50 (tag "det_r2") [ r2 ]);
    ignore (add b Op.Detect 50 (tag "det_r3") [ r3 ]);
    ignore (add b Op.Detect 50 (tag "det_d3") [ m3 ]);
    ignore (add b Op.Detect 50 (tag "det_d1") [ m1 ])
  done;
  build b

let by_name = function
  | "ivd" -> Some (ivd ())
  | "pid" -> Some (pid ())
  | "cpa" -> Some (cpa ())
  | _ -> None

let names = [ "ivd"; "pid"; "cpa" ]
