type t = { ops : Op.t array; preds : int list array; succs : int list array }

let n_ops t = Array.length t.ops
let op t i = t.ops.(i)
let ops t = t.ops
let preds t i = t.preds.(i)
let succs t i = t.succs.(i)

let create op_list ~edges =
  let ops = Array.of_list op_list in
  let n = Array.length ops in
  let ok_ids = Array.to_list ops |> List.mapi (fun i (o : Op.t) -> o.op_id = i) |> List.for_all Fun.id in
  if not ok_ids then Error "op ids must be dense 0..n-1 in list order"
  else begin
    let preds = Array.make n [] in
    let succs = Array.make n [] in
    let bad =
      List.exists (fun (i, j) -> i < 0 || j < 0 || i >= n || j >= n || i = j) edges
    in
    if bad then Error "edge endpoint out of range"
    else begin
      List.iter
        (fun (i, j) ->
          preds.(j) <- preds.(j) @ [ i ];
          succs.(i) <- succs.(i) @ [ j ])
        edges;
      (* acyclicity by Kahn's algorithm *)
      let indeg = Array.map List.length preds in
      let queue = Queue.create () in
      Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
      let visited = ref 0 in
      while not (Queue.is_empty queue) do
        let i = Queue.pop queue in
        incr visited;
        List.iter
          (fun j ->
            indeg.(j) <- indeg.(j) - 1;
            if indeg.(j) = 0 then Queue.add j queue)
          succs.(i)
      done;
      if !visited <> n then Error "sequencing graph has a cycle" else Ok { ops; preds; succs }
    end
  end

let create_exn op_list ~edges =
  match create op_list ~edges with
  | Ok t -> t
  | Error msg -> invalid_arg ("Seqgraph.create: " ^ msg)

let roots t =
  Array.to_list t.ops
  |> List.filter_map (fun (o : Op.t) -> if t.preds.(o.op_id) = [] then Some o.op_id else None)

let sinks t =
  Array.to_list t.ops
  |> List.filter_map (fun (o : Op.t) -> if t.succs.(o.op_id) = [] then Some o.op_id else None)

let topological t =
  let n = n_ops t in
  let indeg = Array.map List.length t.preds in
  let module H = Mf_util.Heap in
  let heap = H.create () in
  Array.iteri (fun i d -> if d = 0 then H.push heap (float_of_int i) i) indeg;
  let order = ref [] in
  let rec drain () =
    match H.pop heap with
    | None -> ()
    | Some (_, i) ->
      order := i :: !order;
      List.iter
        (fun j ->
          indeg.(j) <- indeg.(j) - 1;
          if indeg.(j) = 0 then H.push heap (float_of_int j) j)
        t.succs.(i);
      drain ()
  in
  drain ();
  assert (List.length !order = n);
  List.rev !order

let depth t =
  let n = n_ops t in
  let memo = Array.make n 0 in
  List.iter
    (fun i ->
      let longest = List.fold_left (fun acc p -> max acc memo.(p)) 0 t.preds.(i) in
      memo.(i) <- longest + 1)
    (topological t);
  Array.fold_left max 0 memo

let total_work t = Array.fold_left (fun acc (o : Op.t) -> acc + o.duration) 0 t.ops

let pp ppf t =
  Fmt.pf ppf "@[<v>sequencing graph: %d ops, depth %d, work %ds" (n_ops t) (depth t) (total_work t);
  Array.iter
    (fun (o : Op.t) ->
      Fmt.pf ppf "@,  %a <- %a" Op.pp o Fmt.(list ~sep:comma int) t.preds.(o.op_id))
    t.ops;
  Fmt.pf ppf "@]"
