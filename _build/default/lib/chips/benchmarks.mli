(** The three biochips of the paper's evaluation (Table 1).

    The authors use the IVD and RA30 chips from [6] and the mRNA chip from
    [21]; since those layouts are not published, these are connection-grid
    embeddings with exactly the published resource counts:

    - {b IVD_chip}: 3 mixers, 2 detectors, 12 valves (4 ports, 6×5 grid);
    - {b RA30_chip}: 2 mixers, 3 detectors, 16 valves (4 ports, 7×5 grid);
    - {b mRNA_chip}: 3 mixers, 1 detector, 28 valves (3 ports, 8×6 grid).

    Each chip is a ring/mesh transport network with port spurs, valves at
    port entries and device boundaries, and one or two valve-enclosed
    channel pockets usable as distributed storage.  Every layout passes
    [Chip.finish]'s testability validation (closing all valves separates
    every port pair). *)

val ivd_chip : unit -> Mf_arch.Chip.t
val ra30_chip : unit -> Mf_arch.Chip.t
val mrna_chip : unit -> Mf_arch.Chip.t

val by_name : string -> Mf_arch.Chip.t option
(** ["ivd_chip" | "ra30_chip" | "mrna_chip"], case-sensitive. *)

val names : string list
