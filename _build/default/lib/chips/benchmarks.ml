module Chip = Mf_arch.Chip

(* Layout conventions shared by all three chips:
   - devices and ports sit on spurs off a transport ring, so a busy device
     never blocks through-traffic;
   - every spur edge carries a valve (device isolation / port entry);
   - storage pockets are two-edge chains off the ring: a valved connector
     followed by an unvalved pocket edge, so a parked fluid occupies only
     off-artery nodes and is enclosed by valves;
   - ring valves are placed so that no stuck-at-0 on a ring edge can be
     masked by an all-unvalved parallel arc. *)

(* IVD_chip: 3 mixers, 2 detectors, 12 valves, 4 ports on a 5x5 grid.
   8-edge ring through (1,1)-(3,1)-(3,3)-(1,3); five device spurs; storage
   pocket (0,3)-(0,4) behind the valved connector (1,3)-(0,3). *)
let ivd_chip () =
  let b = Chip.builder ~name:"IVD_chip" ~width:5 ~height:5 in
  Chip.add_device b ~kind:Chip.Mixer ~x:2 ~y:0 ~name:"M0";
  Chip.add_device b ~kind:Chip.Mixer ~x:4 ~y:1 ~name:"M1";
  Chip.add_device b ~kind:Chip.Mixer ~x:2 ~y:4 ~name:"M2";
  Chip.add_device b ~kind:Chip.Detector ~x:4 ~y:3 ~name:"D0";
  Chip.add_device b ~kind:Chip.Detector ~x:0 ~y:1 ~name:"D1";
  Chip.add_port b ~x:0 ~y:2 ~name:"P0";
  Chip.add_port b ~x:4 ~y:2 ~name:"P1";
  Chip.add_port b ~x:3 ~y:0 ~name:"P2";
  Chip.add_port b ~x:3 ~y:4 ~name:"P3";
  (* ring *)
  Chip.add_channel b [ (1, 1); (2, 1); (3, 1); (3, 2); (3, 3); (2, 3); (1, 3); (1, 2); (1, 1) ];
  (* device spurs *)
  Chip.add_channel b [ (2, 1); (2, 0) ];
  Chip.add_channel b [ (3, 1); (4, 1) ];
  Chip.add_channel b [ (2, 3); (2, 4) ];
  Chip.add_channel b [ (3, 3); (4, 3) ];
  Chip.add_channel b [ (1, 1); (0, 1) ];
  (* port spurs *)
  Chip.add_channel b [ (0, 2); (1, 2) ];
  Chip.add_channel b [ (3, 2); (4, 2) ];
  Chip.add_channel b [ (3, 0); (3, 1) ];
  Chip.add_channel b [ (3, 4); (3, 3) ];
  (* storage pocket: valved connector, then the pocket edge *)
  Chip.add_channel b [ (1, 3); (0, 3); (0, 4) ];
  (* 12 valves: 4 port entries + 7 ring (all but (3,2)-(3,3)) + the pocket
     connector.  Device spurs and the pocket edge are unvalved dead ends:
     they cannot form parallel shortcuts, so stuck-at-1 coverage of every
     valve stays achievable. *)
  Chip.add_valve b (0, 2) (1, 2);
  Chip.add_valve b (3, 2) (4, 2);
  Chip.add_valve b (3, 0) (3, 1);
  Chip.add_valve b (3, 4) (3, 3);
  Chip.add_valve b (1, 1) (2, 1);
  Chip.add_valve b (2, 1) (3, 1);
  Chip.add_valve b (3, 1) (3, 2);
  Chip.add_valve b (3, 3) (2, 3);
  Chip.add_valve b (2, 3) (1, 3);
  Chip.add_valve b (1, 3) (1, 2);
  Chip.add_valve b (1, 2) (1, 1);
  Chip.add_valve b (1, 3) (0, 3);
  Chip.finish_exn b

(* RA30_chip: 2 mixers, 3 detectors, 16 valves, 4 ports on a 7x5 grid.
   12-edge ring through (1,1)-(5,1)-(5,3)-(1,3); five device spurs; two
   storage pockets: (3,2)-(2,2) behind connector (3,1)-(3,2), and
   (6,1)-(6,0) behind connector (5,1)-(6,1). *)
let ra30_chip () =
  let b = Chip.builder ~name:"RA30_chip" ~width:7 ~height:5 in
  Chip.add_device b ~kind:Chip.Mixer ~x:2 ~y:0 ~name:"M0";
  Chip.add_device b ~kind:Chip.Mixer ~x:4 ~y:0 ~name:"M1";
  Chip.add_device b ~kind:Chip.Detector ~x:2 ~y:4 ~name:"D0";
  Chip.add_device b ~kind:Chip.Detector ~x:4 ~y:4 ~name:"D1";
  Chip.add_device b ~kind:Chip.Detector ~x:1 ~y:0 ~name:"D2";
  Chip.add_port b ~x:0 ~y:2 ~name:"P0";
  Chip.add_port b ~x:6 ~y:2 ~name:"P1";
  Chip.add_port b ~x:3 ~y:0 ~name:"P2";
  Chip.add_port b ~x:3 ~y:4 ~name:"P3";
  (* ring *)
  Chip.add_channel b
    [ (1, 1); (2, 1); (3, 1); (4, 1); (5, 1); (5, 2); (5, 3); (4, 3); (3, 3); (2, 3); (1, 3);
      (1, 2); (1, 1) ];
  (* device spurs *)
  Chip.add_channel b [ (2, 1); (2, 0) ];
  Chip.add_channel b [ (4, 1); (4, 0) ];
  Chip.add_channel b [ (2, 3); (2, 4) ];
  Chip.add_channel b [ (4, 3); (4, 4) ];
  Chip.add_channel b [ (1, 1); (1, 0) ];
  (* port spurs *)
  Chip.add_channel b [ (0, 2); (1, 2) ];
  Chip.add_channel b [ (6, 2); (5, 2) ];
  Chip.add_channel b [ (3, 0); (3, 1) ];
  Chip.add_channel b [ (3, 4); (3, 3) ];
  (* storage pockets *)
  Chip.add_channel b [ (3, 1); (3, 2); (2, 2) ];
  Chip.add_channel b [ (5, 1); (6, 1); (6, 0) ];
  (* 16 valves: 4 ports + 10 ring + 2 pocket connectors.  The two unvalved
     ring edges, (5,2)-(5,3) and (1,3)-(1,2), touch no unvalved spur, so DFT
     additions cannot complete an uncloseable bypass cycle through them.
     Device spurs and pocket edges stay unvalved (dead ends). *)
  Chip.add_valve b (0, 2) (1, 2);
  Chip.add_valve b (6, 2) (5, 2);
  Chip.add_valve b (3, 0) (3, 1);
  Chip.add_valve b (3, 4) (3, 3);
  Chip.add_valve b (1, 1) (2, 1);
  Chip.add_valve b (2, 1) (3, 1);
  Chip.add_valve b (3, 1) (4, 1);
  Chip.add_valve b (4, 1) (5, 1);
  Chip.add_valve b (5, 1) (5, 2);
  Chip.add_valve b (5, 3) (4, 3);
  Chip.add_valve b (4, 3) (3, 3);
  Chip.add_valve b (3, 3) (2, 3);
  Chip.add_valve b (2, 3) (1, 3);
  Chip.add_valve b (1, 2) (1, 1);
  Chip.add_valve b (3, 1) (3, 2);
  Chip.add_valve b (5, 1) (6, 1);
  Chip.finish_exn b

(* mRNA_chip: 3 mixers, 1 detector, 28 valves, 3 ports on an 8x6 grid.
   16-edge outer ring with two column crossbars; four device spurs; two
   interior storage pockets: (3,2)-(3,3) behind connector (2,2)-(3,2) and
   (4,3)-(4,2) behind connector (5,3)-(4,3). *)
let mrna_chip () =
  let b = Chip.builder ~name:"mRNA_chip" ~width:8 ~height:6 in
  Chip.add_device b ~kind:Chip.Mixer ~x:1 ~y:0 ~name:"M0";
  Chip.add_device b ~kind:Chip.Mixer ~x:4 ~y:0 ~name:"M1";
  Chip.add_device b ~kind:Chip.Mixer ~x:1 ~y:5 ~name:"M2";
  Chip.add_device b ~kind:Chip.Detector ~x:6 ~y:5 ~name:"D0";
  Chip.add_port b ~x:0 ~y:2 ~name:"P0";
  Chip.add_port b ~x:7 ~y:3 ~name:"P1";
  Chip.add_port b ~x:3 ~y:5 ~name:"P2";
  (* outer ring *)
  Chip.add_channel b
    [ (1, 1); (2, 1); (3, 1); (4, 1); (5, 1); (6, 1); (6, 2); (6, 3); (6, 4); (5, 4); (4, 4);
      (3, 4); (2, 4); (1, 4); (1, 3); (1, 2); (1, 1) ];
  (* column crossbars *)
  Chip.add_channel b [ (2, 1); (2, 2); (2, 3); (2, 4) ];
  Chip.add_channel b [ (5, 1); (5, 2); (5, 3); (5, 4) ];
  (* device spurs *)
  Chip.add_channel b [ (1, 1); (1, 0) ];
  Chip.add_channel b [ (4, 1); (4, 0) ];
  Chip.add_channel b [ (1, 4); (1, 5) ];
  Chip.add_channel b [ (6, 4); (6, 5) ];
  (* port spurs *)
  Chip.add_channel b [ (0, 2); (1, 2) ];
  Chip.add_channel b [ (7, 3); (6, 3) ];
  Chip.add_channel b [ (3, 5); (3, 4) ];
  (* storage pockets *)
  Chip.add_channel b [ (2, 2); (3, 2); (3, 3) ];
  Chip.add_channel b [ (5, 3); (4, 3); (4, 2) ];
  (* 28 valves: all edges except the two pocket edges and three device
     spurs (M0, M1, M2 — unvalved dead ends) *)
  let valved =
    [ ((1, 1), (2, 1)); ((2, 1), (3, 1)); ((3, 1), (4, 1)); ((4, 1), (5, 1)); ((5, 1), (6, 1));
      ((6, 1), (6, 2)); ((6, 2), (6, 3)); ((6, 3), (6, 4));
      ((6, 4), (5, 4)); ((5, 4), (4, 4)); ((4, 4), (3, 4)); ((3, 4), (2, 4)); ((2, 4), (1, 4));
      ((1, 4), (1, 3)); ((1, 3), (1, 2)); ((1, 2), (1, 1));
      ((2, 1), (2, 2)); ((2, 2), (2, 3)); ((2, 3), (2, 4));
      ((5, 1), (5, 2)); ((5, 2), (5, 3)); ((5, 3), (5, 4));
      ((6, 4), (6, 5));
      ((0, 2), (1, 2)); ((7, 3), (6, 3)); ((3, 5), (3, 4));
      ((2, 2), (3, 2)); ((5, 3), (4, 3)) ]
  in
  List.iter (fun (a, c) -> Chip.add_valve b a c) valved;
  Chip.finish_exn b

let by_name = function
  | "ivd_chip" -> Some (ivd_chip ())
  | "ra30_chip" -> Some (ra30_chip ())
  | "mrna_chip" -> Some (mrna_chip ())
  | _ -> None

let names = [ "ivd_chip"; "ra30_chip"; "mrna_chip" ]
