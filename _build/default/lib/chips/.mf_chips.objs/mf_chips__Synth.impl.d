lib/chips/synth.ml: Array Hashtbl List Mf_arch Mf_util Option Printf
