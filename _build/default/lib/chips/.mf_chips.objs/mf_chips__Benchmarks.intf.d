lib/chips/benchmarks.mli: Mf_arch
