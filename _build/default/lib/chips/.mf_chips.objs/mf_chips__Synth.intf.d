lib/chips/synth.mli: Mf_arch Mf_util
