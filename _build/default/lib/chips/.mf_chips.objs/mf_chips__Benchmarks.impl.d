lib/chips/benchmarks.ml: List Mf_arch
