(** Synthetic biochip generator.

    Produces random-but-valid chips in the same architecture family as the
    benchmarks — a valved transport ring with device spurs, port spurs and
    valve-enclosed storage pockets — for robustness testing and scaling
    studies.  Every generated chip passes [Chip.finish]'s testability
    validation by construction, and the generator follows the layout rules
    recorded in DESIGN.md §5.8 (port entries valved, spurs as dead ends,
    pockets off the ring). *)

type spec = {
  mixers : int;  (** >= 1 *)
  detectors : int;  (** >= 1 *)
  heaters : int;
  ports : int;  (** >= 2 *)
  pockets : int;  (** storage pockets (best effort: may place fewer) *)
}

val default_spec : spec
(** 2 mixers, 2 detectors, 0 heaters, 3 ports, 2 pockets. *)

val generate : ?spec:spec -> Mf_util.Rng.t -> Mf_arch.Chip.t
(** [generate rng] builds a fresh random chip.  The ring size scales with
    the number of attachments; placement choices (which ring node hosts
    which spur) are drawn from [rng].  Raises [Invalid_argument] on specs
    that cannot fit (e.g. more attachments than ring nodes). *)
