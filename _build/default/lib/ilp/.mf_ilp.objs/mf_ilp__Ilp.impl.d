lib/ilp/ilp.ml: Array Float List Mf_lp Mf_util Printf Sys
