lib/ilp/ilp.mli: Mf_lp
