examples/scaling_sweep.ml: Fmt Format List Mf_arch Mf_bioassay Mf_chips Mf_control Mf_sched Mf_testgen Mf_util Printf
