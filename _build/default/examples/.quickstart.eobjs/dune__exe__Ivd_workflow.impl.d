examples/ivd_workflow.ml: Fmt Format List Mf_arch Mf_bioassay Mf_chips Mf_testgen Mfdft Option
