examples/custom_chip.ml: Format List Mf_arch Mf_bioassay Mf_sched Mf_testgen
