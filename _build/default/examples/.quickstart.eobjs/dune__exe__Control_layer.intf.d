examples/control_layer.mli:
