examples/fault_injection.ml: Array Fmt Format List Mf_arch Mf_chips Mf_faults Mf_graph Mf_grid Mf_testgen Mf_util Option
