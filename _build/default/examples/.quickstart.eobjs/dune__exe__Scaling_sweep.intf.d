examples/scaling_sweep.mli:
