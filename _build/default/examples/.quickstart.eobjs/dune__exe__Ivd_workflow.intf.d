examples/ivd_workflow.mli:
