examples/quickstart.ml: Array Fmt Format List Mf_arch Mf_faults Mf_grid Mf_testgen
