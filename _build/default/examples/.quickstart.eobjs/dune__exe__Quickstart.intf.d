examples/quickstart.mli:
