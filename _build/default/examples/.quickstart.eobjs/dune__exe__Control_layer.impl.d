examples/control_layer.ml: Array Format List Mf_arch Mf_chips Mf_control Mf_graph Mf_grid Mf_testgen Option Printf
