test/test_testgen.ml: Alcotest Array List Mf_arch Mf_chips Mf_control Mf_faults Mf_graph Mf_grid Mf_testgen Mf_util Option
