test/test_synth.ml: Alcotest Array List Mf_arch Mf_bioassay Mf_chips Mf_faults Mf_graph Mf_grid Mf_sched Mf_testgen Mf_util QCheck QCheck_alcotest
