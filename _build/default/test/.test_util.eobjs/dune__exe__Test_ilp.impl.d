test/test_ilp.ml: Alcotest Array Fun List Mf_ilp Mf_util QCheck QCheck_alcotest
