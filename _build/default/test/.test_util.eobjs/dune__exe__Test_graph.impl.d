test/test_graph.ml: Alcotest Array Fun List Mf_graph Mf_util QCheck QCheck_alcotest
