test/test_pso.ml: Alcotest Array List Mf_pso Mf_util
