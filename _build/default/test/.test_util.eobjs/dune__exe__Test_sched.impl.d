test/test_sched.ml: Alcotest Array Hashtbl List Mf_arch Mf_bioassay Mf_chips Mf_sched Mf_testgen Option Printf
