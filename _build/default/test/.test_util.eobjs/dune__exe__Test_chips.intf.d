test/test_chips.mli:
