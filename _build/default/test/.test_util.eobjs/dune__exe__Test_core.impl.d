test/test_core.ml: Alcotest Array Lazy List Mf_arch Mf_bioassay Mf_chips Mf_pso Mf_testgen Mf_util Mfdft Option String
