test/test_util.ml: Alcotest Array Fun List Mf_util QCheck QCheck_alcotest
