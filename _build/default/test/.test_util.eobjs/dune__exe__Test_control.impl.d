test/test_control.ml: Alcotest Array Hashtbl List Mf_arch Mf_chips Mf_control Mf_graph Mf_grid Mf_testgen Mf_util Option
