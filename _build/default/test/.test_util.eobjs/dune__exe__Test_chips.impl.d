test/test_chips.ml: Alcotest Array List Mf_arch Mf_chips Mf_graph Mf_grid Mf_util Option
