test/test_grid.ml: Alcotest Mf_graph Mf_grid QCheck QCheck_alcotest
