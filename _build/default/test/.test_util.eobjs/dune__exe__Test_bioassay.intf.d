test/test_bioassay.mli:
