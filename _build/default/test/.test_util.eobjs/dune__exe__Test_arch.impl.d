test/test_arch.ml: Alcotest Array List Mf_arch Mf_chips Mf_grid Mf_util Option String
