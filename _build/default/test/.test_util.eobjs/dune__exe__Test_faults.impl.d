test/test_faults.ml: Alcotest List Mf_arch Mf_faults Mf_grid Option
