test/test_props.ml: Alcotest Array Format List Mf_arch Mf_bioassay Mf_chips Mf_faults Mf_graph Mf_grid Mf_sched Mf_testgen Mf_util Mfdft Option QCheck QCheck_alcotest String
