test/test_bioassay.ml: Alcotest Array Fun Hashtbl List Mf_bioassay Mf_chips Mf_sched Mf_util Option Printf QCheck QCheck_alcotest
