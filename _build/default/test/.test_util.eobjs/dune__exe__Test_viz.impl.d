test/test_viz.ml: Alcotest List Mf_arch Mf_bioassay Mf_chips Mf_control Mf_sched Mf_testgen Mf_viz Option Printf String
