test/test_lp.ml: Alcotest Array List Mf_lp Mf_util QCheck QCheck_alcotest
