module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Bitset = Mf_util.Bitset

type t = {
  g : Graph.t;
  n_nodes : int;
  n_edges : int;
  adj_off : int array;
  adj_edge : int array;
  adj_node : int array;
  edge_u : int array;
  edge_v : int array;
  channels : Bitset.t;
  n_valves : int;
  valve_edge : int array;
  valve_control : int array;
  edge_control : int array;
  n_controls : int;
  device_of : int array;
  port_of : int array;
  dev_node : int array;
  port_node : int array;
  enclosed : Bitset.t;
}

let control_maps chip ~n_edges =
  let valves = Chip.valves chip in
  let n_valves = Array.length valves in
  let valve_edge = Array.make n_valves (-1) in
  let valve_control = Array.make n_valves (-1) in
  let edge_control = Array.make n_edges (-1) in
  Array.iter
    (fun (v : Chip.valve) ->
      valve_edge.(v.valve_id) <- v.edge;
      valve_control.(v.valve_id) <- v.control;
      edge_control.(v.edge) <- v.control)
    valves;
  (n_valves, valve_edge, valve_control, edge_control)

let of_chip chip =
  let g = Grid.graph (Chip.grid chip) in
  let n_nodes = Graph.n_nodes g in
  let n_edges = Graph.n_edges g in
  let adj_off = Array.make (n_nodes + 1) 0 in
  for u = 0 to n_nodes - 1 do
    adj_off.(u + 1) <- adj_off.(u) + List.length (Graph.incident g u)
  done;
  let total = adj_off.(n_nodes) in
  let adj_edge = Array.make total 0 in
  let adj_node = Array.make total 0 in
  for u = 0 to n_nodes - 1 do
    List.iteri
      (fun i (e, v) ->
        adj_edge.(adj_off.(u) + i) <- e;
        adj_node.(adj_off.(u) + i) <- v)
      (Graph.incident g u)
  done;
  let edge_u = Array.make n_edges 0 in
  let edge_v = Array.make n_edges 0 in
  for e = 0 to n_edges - 1 do
    let u, v = Graph.endpoints g e in
    edge_u.(e) <- u;
    edge_v.(e) <- v
  done;
  let channels = Chip.channel_edges chip in
  let n_valves, valve_edge, valve_control, edge_control = control_maps chip ~n_edges in
  let device_of = Array.make n_nodes (-1) in
  let port_of = Array.make n_nodes (-1) in
  let devices = Chip.devices chip in
  let ports = Chip.ports chip in
  let dev_node = Array.map (fun (d : Chip.device) -> d.node) devices in
  let port_node = Array.map (fun (p : Chip.port) -> p.node) ports in
  Array.iter (fun (d : Chip.device) -> device_of.(d.node) <- d.device_id) devices;
  Array.iter (fun (p : Chip.port) -> port_of.(p.node) <- p.port_id) ports;
  (* A pocket edge is enclosed when, at both endpoints, every other channel
     edge carries a valve: the fluid can be sealed in.  Valve *presence*
     per edge is invariant under control rewiring, so this survives
     [with_sharing]. *)
  let has_valve e = edge_control.(e) >= 0 in
  let enclosed = Bitset.create n_edges in
  for e = 0 to n_edges - 1 do
    if Bitset.mem channels e then begin
      let boundary n =
        let ok = ref true in
        for k = adj_off.(n) to adj_off.(n + 1) - 1 do
          let f = adj_edge.(k) in
          if f <> e && Bitset.mem channels f && not (has_valve f) then ok := false
        done;
        !ok
      in
      if boundary edge_u.(e) && boundary edge_v.(e) then Bitset.add enclosed e
    end
  done;
  {
    g;
    n_nodes;
    n_edges;
    adj_off;
    adj_edge;
    adj_node;
    edge_u;
    edge_v;
    channels;
    n_valves;
    valve_edge;
    valve_control;
    edge_control;
    n_controls = Chip.n_controls chip;
    device_of;
    port_of;
    dev_node;
    port_node;
    enclosed;
  }

let for_sharing base chip =
  let g = Grid.graph (Chip.grid chip) in
  if Graph.n_nodes g <> base.n_nodes || Graph.n_edges g <> base.n_edges then
    invalid_arg "Prep.for_sharing: topology mismatch";
  let n_valves, valve_edge, valve_control, edge_control =
    control_maps chip ~n_edges:base.n_edges
  in
  if n_valves <> base.n_valves || valve_edge <> base.valve_edge then
    invalid_arg "Prep.for_sharing: valve placement mismatch";
  { base with valve_edge; valve_control; edge_control; n_controls = Chip.n_controls chip }
