module Chip = Mf_arch.Chip
module Graph = Mf_graph.Graph
module Bitset = Mf_util.Bitset
module Op = Mf_bioassay.Op
module Seqgraph = Mf_bioassay.Seqgraph
module P = Prep

type options = {
  respect_sharing : bool;
  transport_cost : int;
  allow_storage : bool;
  horizon : int;
  wash : bool;
  wash_penalty : int;
}

let default_options =
  {
    respect_sharing = true;
    transport_cost = 1;
    allow_storage = true;
    horizon = 1_000_000;
    wash = false;
    wash_penalty = 2;
  }

(* ------------------------------------------------------------------ *)
(* Counters *)

module Stats = struct
  type snapshot = { runs : int; steps : int; routes : int; cutoffs : int }

  let runs = Atomic.make 0
  let steps = Atomic.make 0
  let routes = Atomic.make 0
  let cutoffs = Atomic.make 0

  let reset () =
    Atomic.set runs 0;
    Atomic.set steps 0;
    Atomic.set routes 0;
    Atomic.set cutoffs 0

  let snapshot () =
    {
      runs = Atomic.get runs;
      steps = Atomic.get steps;
      routes = Atomic.get routes;
      cutoffs = Atomic.get cutoffs;
    }
end

(* Debug dumps are env-gated; the variable is read once so the event loop
   pays a single forced-lazy boolean test on the cold deadlock path and
   allocates nothing when tracing is off. *)
let debug_enabled = lazy (Sys.getenv_opt "MFDFT_SCHED_DEBUG" <> None)

(* ------------------------------------------------------------------ *)
(* Mutable run state *)

type unit_loc =
  | Fresh  (** reagent available at every port *)
  | At_device of int
  | Stored of int  (** channel edge *)
  | At_reservoir of int  (** parked off-chip in the vial of a port (node id) *)
  | In_transit
  | Consumed

type unit_state = {
  u_id : int;
  producer : int option;  (** producing op, [None] for fresh reagents *)
  consumer : int;
  mutable loc : unit_loc;
}

type device_run = Idle | Running of int * int  (** op, finish time *)

type dev = {
  d_id : int;
  d_kind : Chip.device_kind;
  d_node : int;
  mutable d_run : device_run;
  mutable reserved_by : int option;
}

type dest = To_device of int | To_storage of int | To_reservoir of int

type transport = {
  t_unit : int;
  t_path : int list;  (** channel edges, in travel order *)
  t_nodes : int list;  (** nodes visited, including both ends *)
  t_dest : dest;
  t_finish : int;
}

(* The state carries two redundant views of occupancy.  The *reference*
   view is the original seed implementation: every query rebuilds its
   answer from [units]/[devs]/[transports] on the spot.  The *fast* view
   maintains the same sets incrementally (bitsets and count arrays updated
   by the mutation hooks below).  Both modes run the identical decision
   algorithm; [fast] only selects which primitive answers each query, so
   any divergence is a bug in exactly one primitive pair — which the
   differential tests check directly. *)
type state = {
  chip : Chip.t;
  prep : P.t;
  g : Graph.t;
  app : Seqgraph.t;
  opts : options;
  fast : bool;
  record_events : bool;
  devs : dev array;
  units : unit_state array;
  inputs_of : int list array;  (** op -> unit ids it consumes *)
  outputs_of : int list array;  (** op -> unit ids it produces *)
  op_bound : int option array;
  op_started : bool array;
  op_finished : bool array;
  op_finish_time : int array;
  mutable transports : transport list;
  mutable events : Schedule.event list;  (** reversed *)
  mutable n_transports : int;
  mutable transport_time : int;
  mutable n_stored : int;
  mutable n_washes : int;
  last_user : int array;  (** edge -> lineage of the last fluid through it *)
  priority : int list;  (** topological op order *)
  port_nodes : int list;
  kind_counts : int array;  (** device kind -> number of devices *)
  mutable c_steps : int;
  mutable c_routes : int;
  (* incremental occupancy (fast primitives) *)
  dev_units : int list array;  (** device -> resident unit ids, ascending *)
  dev_inbound : int list array;  (** device -> unit ids in transit to it *)
  occ_nodes : Bitset.t;  (** busy-device nodes + storage-edge endpoints *)
  storage : Bitset.t;  (** edges stored-at or claimed by in-flight eviction *)
  te_count : int array;  (** edge -> in-flight transports covering it *)
  tn_count : int array;  (** node -> in-flight transports covering it *)
  ctrl_release : int array;  (** control -> valve edges on in-flight paths *)
  res_count : int array;  (** port node -> vial claims (resident + inbound) *)
  (* BFS scratch A: routing / distance fields (epoch-stamped) *)
  q : int array;
  dist_a : int array;
  stamp_a : int array;
  pedge : int array;
  pnode : int array;
  mutable epoch_a : int;
  (* source marks for multi-source routing *)
  smark : int array;
  mutable epoch_s : int;
  (* BFS scratch B: reachability probes nested inside a live scratch-A pass *)
  q_b : int array;
  stamp_b : int array;
  mutable epoch_b : int;
  (* blocked-node marks for connectivity checks *)
  bmark : int array;
  mutable epoch_m : int;
}

(* Residue identity of a unit: its producing operation, or a unique negative
   tag for fresh reagents (each root draws a distinct reagent). *)
let lineage (u : unit_state) =
  match u.producer with Some p -> p | None -> -(u.consumer + 2)

let device_kind_of_op = function
  | Op.Mix -> Chip.Mixer
  | Op.Detect -> Chip.Detector
  | Op.Heat -> Chip.Heater
  | Op.Filter -> Chip.Filter

let kind_index = function Chip.Mixer -> 0 | Chip.Detector -> 1 | Chip.Heater -> 2 | Chip.Filter -> 3

let init chip prep app opts ~fast ~record_events =
  let devs =
    Array.map
      (fun (d : Chip.device) ->
        { d_id = d.device_id; d_kind = d.kind; d_node = d.node; d_run = Idle; reserved_by = None })
      (Chip.devices chip)
  in
  let n = Seqgraph.n_ops app in
  let units = ref [] in
  let next_unit = ref 0 in
  let inputs_of = Array.make n [] in
  let outputs_of = Array.make n [] in
  for j = 0 to n - 1 do
    match Seqgraph.preds app j with
    | [] ->
      let u = { u_id = !next_unit; producer = None; consumer = j; loc = Fresh } in
      incr next_unit;
      units := u :: !units;
      inputs_of.(j) <- [ u.u_id ]
    | preds ->
      List.iter
        (fun p ->
          let u = { u_id = !next_unit; producer = Some p; consumer = j; loc = Consumed } in
          (* loc becomes At_device when the producer finishes; Consumed is a
             safe placeholder meaning "not yet materialised" *)
          incr next_unit;
          units := u :: !units;
          inputs_of.(j) <- inputs_of.(j) @ [ u.u_id ];
          outputs_of.(p) <- outputs_of.(p) @ [ u.u_id ])
        preds
  done;
  let n_nodes = prep.P.n_nodes in
  let n_edges = prep.P.n_edges in
  let kind_counts = Array.make 4 0 in
  Array.iter
    (fun (d : Chip.device) ->
      let k = kind_index d.kind in
      kind_counts.(k) <- kind_counts.(k) + 1)
    (Chip.devices chip);
  {
    chip;
    prep;
    g = prep.P.g;
    app;
    opts;
    fast;
    record_events;
    devs;
    units = Array.of_list (List.rev !units);
    inputs_of;
    outputs_of;
    op_bound = Array.make n None;
    op_started = Array.make n false;
    op_finished = Array.make n false;
    op_finish_time = Array.make n 0;
    transports = [];
    events = [];
    n_transports = 0;
    transport_time = 0;
    n_stored = 0;
    n_washes = 0;
    last_user = Array.make n_edges min_int;
    priority =
      (* sinks first: finishing them consumes fluids without producing new
         ones, releasing devices and storage for everything else *)
      (let topo = Seqgraph.topological app in
       let sinks, inner = List.partition (fun j -> Seqgraph.succs app j = []) topo in
       sinks @ inner);
    port_nodes = Array.to_list (Chip.ports chip) |> List.map (fun (p : Chip.port) -> p.node);
    kind_counts;
    c_steps = 0;
    c_routes = 0;
    dev_units = Array.make (Array.length devs) [];
    dev_inbound = Array.make (Array.length devs) [];
    occ_nodes = Bitset.create n_nodes;
    storage = Bitset.create n_edges;
    te_count = Array.make n_edges 0;
    tn_count = Array.make n_nodes 0;
    ctrl_release = Array.make (max 1 prep.P.n_controls) 0;
    res_count = Array.make n_nodes 0;
    q = Array.make n_nodes 0;
    dist_a = Array.make n_nodes 0;
    stamp_a = Array.make n_nodes 0;
    pedge = Array.make n_nodes (-1);
    pnode = Array.make n_nodes (-1);
    epoch_a = 0;
    smark = Array.make n_nodes 0;
    epoch_s = 0;
    q_b = Array.make n_nodes 0;
    stamp_b = Array.make n_nodes 0;
    epoch_b = 0;
    bmark = Array.make n_nodes 0;
    epoch_m = 0;
  }

(* ------------------------------------------------------------------ *)
(* Mutation hooks: every change to unit locations, device runs or the
   in-flight transport set goes through these, keeping the incremental
   view in lock-step with the ground-truth fields in both modes. *)

let refresh_dev_occ st (d : dev) =
  let busy =
    match d.d_run with Running _ -> true | Idle -> st.dev_units.(d.d_id) <> []
  in
  if busy then Bitset.add st.occ_nodes d.d_node else Bitset.remove st.occ_nodes d.d_node

(* Storage-edge endpoints are always plain channel nodes (site selection
   excludes device/port nodes and previously claimed endpoints), so their
   occupancy bits never collide with device bits and each endpoint has one
   claimant — plain add/remove is exact. *)
let storage_claim st e =
  if not (Bitset.mem st.storage e) then begin
    Bitset.add st.storage e;
    Bitset.add st.occ_nodes st.prep.P.edge_u.(e);
    Bitset.add st.occ_nodes st.prep.P.edge_v.(e)
  end

let storage_release st e =
  Bitset.remove st.storage e;
  Bitset.remove st.occ_nodes st.prep.P.edge_u.(e);
  Bitset.remove st.occ_nodes st.prep.P.edge_v.(e)

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: _ as l when x <= y -> x :: l
  | y :: rest -> y :: insert_sorted x rest

let set_loc st (u : unit_state) loc =
  (match u.loc with
   | At_device d ->
     st.dev_units.(d) <- List.filter (fun id -> id <> u.u_id) st.dev_units.(d);
     refresh_dev_occ st st.devs.(d)
   | Stored e -> storage_release st e
   | At_reservoir n -> st.res_count.(n) <- st.res_count.(n) - 1
   | Fresh | In_transit | Consumed -> ());
  u.loc <- loc;
  match loc with
  | At_device d ->
    st.dev_units.(d) <- insert_sorted u.u_id st.dev_units.(d);
    refresh_dev_occ st st.devs.(d)
  | Stored e -> storage_claim st e
  | At_reservoir n -> st.res_count.(n) <- st.res_count.(n) + 1
  | Fresh | In_transit | Consumed -> ()

let set_run st (d : dev) run =
  d.d_run <- run;
  refresh_dev_occ st d

let add_transport st tr =
  st.transports <- tr :: st.transports;
  List.iter
    (fun e ->
      st.te_count.(e) <- st.te_count.(e) + 1;
      let c = st.prep.P.edge_control.(e) in
      if c >= 0 then st.ctrl_release.(c) <- st.ctrl_release.(c) + 1)
    tr.t_path;
  List.iter (fun n -> st.tn_count.(n) <- st.tn_count.(n) + 1) tr.t_nodes;
  match tr.t_dest with
  | To_device d -> st.dev_inbound.(d) <- tr.t_unit :: st.dev_inbound.(d)
  | To_storage e -> storage_claim st e
  | To_reservoir n -> st.res_count.(n) <- st.res_count.(n) + 1

(* Caller removes [tr] from [st.transports]; this reverses the counters.
   A storage claim persists (the unit lands [Stored] there right after);
   a reservoir claim is re-added by the unit's [set_loc]. *)
let drop_transport st tr =
  List.iter
    (fun e ->
      st.te_count.(e) <- st.te_count.(e) - 1;
      let c = st.prep.P.edge_control.(e) in
      if c >= 0 then st.ctrl_release.(c) <- st.ctrl_release.(c) - 1)
    tr.t_path;
  List.iter (fun n -> st.tn_count.(n) <- st.tn_count.(n) - 1) tr.t_nodes;
  match tr.t_dest with
  | To_device d -> st.dev_inbound.(d) <- List.filter (fun id -> id <> tr.t_unit) st.dev_inbound.(d)
  | To_storage _ -> ()
  | To_reservoir n -> st.res_count.(n) <- st.res_count.(n) - 1

(* ------------------------------------------------------------------ *)
(* Reference occupancy primitives (the seed implementation, rebuilt per
   query) *)

let units_at_device st d_id =
  Array.to_list st.units |> List.filter (fun u -> u.loc = At_device d_id)

(* Units already at the device plus those in transit towards it: binding and
   clearance decisions must see inbound fluids, or an op can claim a chamber
   that a parked unit is about to enter. *)
let units_at_or_heading st d_id =
  let inbound =
    List.filter_map
      (fun tr ->
        match tr.t_dest with
        | To_device d when d = d_id -> Some st.units.(tr.t_unit)
        | To_device _ | To_storage _ | To_reservoir _ -> None)
      st.transports
  in
  units_at_device st d_id @ inbound

let storage_edges_ref st =
  let arrived =
    Array.to_list st.units
    |> List.filter_map (fun u ->
        match u.loc with
        | Stored e -> Some e
        | Fresh | At_device _ | At_reservoir _ | In_transit | Consumed -> None)
  in
  (* pockets already claimed by in-flight evictions count as occupied, or
     two placements can jointly sever the network *)
  let planned =
    List.filter_map
      (fun tr ->
        match tr.t_dest with
        | To_storage e -> Some e
        | To_device _ | To_reservoir _ -> None)
      st.transports
  in
  arrived @ planned

(* Nodes that resting fluids and busy devices make untouchable. *)
let occupied_nodes_ref st =
  let set = Bitset.create (Graph.n_nodes st.g) in
  Array.iter
    (fun d ->
      let busy =
        match d.d_run with Running _ -> true | Idle -> units_at_device st d.d_id <> []
      in
      if busy then Bitset.add set d.d_node)
    st.devs;
  List.iter
    (fun e ->
      let u, v = Graph.endpoints st.g e in
      Bitset.add set u;
      Bitset.add set v)
    (storage_edges_ref st);
  set

let transport_edge_set_ref st extra_path =
  let set = Bitset.create (Graph.n_edges st.g) in
  List.iter (fun tr -> List.iter (Bitset.add set) tr.t_path) st.transports;
  List.iter (Bitset.add set) extra_path;
  set

let transport_node_set_ref st extra_nodes =
  let set = Bitset.create (Graph.n_nodes st.g) in
  List.iter (fun tr -> List.iter (Bitset.add set) tr.t_nodes) st.transports;
  List.iter (Bitset.add set) extra_nodes;
  set

(* ------------------------------------------------------------------ *)
(* Queries: each consults the incremental view when [fast], or rebuilds
   the answer the seed way otherwise. *)

let first_unit_at st d_id =
  if st.fast then
    match st.dev_units.(d_id) with [] -> None | id :: _ -> Some st.units.(id)
  else match units_at_device st d_id with [] -> None | u :: _ -> Some u

let device_empty st d_id =
  if st.fast then st.dev_units.(d_id) = [] && st.dev_inbound.(d_id) = []
  else units_at_or_heading st d_id = []

let all_at_or_heading st d_id pred =
  if st.fast then
    List.for_all pred st.dev_units.(d_id) && List.for_all pred st.dev_inbound.(d_id)
  else List.for_all (fun u -> pred u.u_id) (units_at_or_heading st d_id)

let exists_at_or_heading st d_id pred =
  if st.fast then
    List.exists pred st.dev_units.(d_id) || List.exists pred st.dev_inbound.(d_id)
  else List.exists (fun u -> pred u.u_id) (units_at_or_heading st d_id)

let port_vial_free st n =
  if st.fast then st.res_count.(n) = 0
  else begin
    let occupied_ports =
      (Array.to_list st.units
      |> List.filter_map (fun u ->
          match u.loc with
          | At_reservoir n -> Some n
          | Fresh | At_device _ | Stored _ | In_transit | Consumed -> None))
      @ List.filter_map
          (fun tr ->
            match tr.t_dest with
            | To_reservoir n -> Some n
            | To_device _ | To_storage _ -> None)
          st.transports
    in
    not (List.mem n occupied_ports)
  end

(* ------------------------------------------------------------------ *)
(* Valve-sharing legality (Sec. 4.1): with the candidate path's control
   lines released on top of those of in-flight transports, every valve
   forced open off-path must not border a resting fluid, a busy device or
   any transport's route. *)

let sharing_legal_ref st ~path ~nodes =
  let inactive = Bitset.create (Chip.n_controls st.chip) in
  let release_path edges =
    List.iter
      (fun e ->
        match Chip.valve_on st.chip e with
        | Some v -> Bitset.add inactive v.control
        | None -> ())
      edges
  in
  release_path path;
  List.iter (fun tr -> release_path tr.t_path) st.transports;
  let moving_edges = transport_edge_set_ref st path in
  let protected_nodes =
    let set = occupied_nodes_ref st in
    Bitset.union_into set (transport_node_set_ref st nodes);
    set
  in
  Array.for_all
    (fun (v : Chip.valve) ->
      (not (Bitset.mem inactive v.control))
      || Bitset.mem moving_edges v.edge
      ||
      let a, b = Graph.endpoints st.g v.edge in
      (not (Bitset.mem protected_nodes a)) && not (Bitset.mem protected_nodes b))
    (Chip.valves st.chip)

(* Fast variant: temporarily overlay the candidate path on the in-flight
   counters, run an O(valves) scan against them, then peel the overlay off
   — no allocation, no set rebuilds. *)
let sharing_legal_fast st ~path ~nodes =
  let p = st.prep in
  let bump delta =
    List.iter
      (fun e ->
        st.te_count.(e) <- st.te_count.(e) + delta;
        let c = p.P.edge_control.(e) in
        if c >= 0 then st.ctrl_release.(c) <- st.ctrl_release.(c) + delta)
      path;
    List.iter (fun n -> st.tn_count.(n) <- st.tn_count.(n) + delta) nodes
  in
  bump 1;
  let prot n = Bitset.mem st.occ_nodes n || st.tn_count.(n) > 0 in
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < p.P.n_valves do
    let c = p.P.valve_control.(!v) in
    let e = p.P.valve_edge.(!v) in
    if st.ctrl_release.(c) > 0 && st.te_count.(e) = 0 then begin
      let a = p.P.edge_u.(e) and b = p.P.edge_v.(e) in
      if prot a || prot b then ok := false
    end;
    incr v
  done;
  bump (-1);
  !ok

let sharing_legal st ~path ~nodes =
  if not st.opts.respect_sharing then true
  else if st.fast then sharing_legal_fast st ~path ~nodes
  else sharing_legal_ref st ~path ~nodes

(* ------------------------------------------------------------------ *)
(* Routing *)

(* BFS routing from any of [srcs] to [dst] through free channels avoiding
   occupied nodes; returns (src, edge path). *)
let route_ref st ~srcs ~dst =
  let occupied = occupied_nodes_ref st in
  let moving_edges = transport_edge_set_ref st [] in
  let moving_nodes = transport_node_set_ref st [] in
  let node_ok n =
    n = dst || List.mem n srcs
    || ((not (Bitset.mem occupied n)) && not (Bitset.mem moving_nodes n))
  in
  let storage = storage_edges_ref st in
  let edge_ok e =
    Bitset.mem st.prep.P.channels e
    && (not (Bitset.mem moving_edges e))
    && (not (List.mem e storage))
    &&
    let u, v = Graph.endpoints st.g e in
    node_ok u && node_ok v
  in
  let best = ref None in
  List.iter
    (fun src ->
      if node_ok src then
        match Mf_graph.Traverse.bfs_path st.g ~allowed:edge_ok ~src ~dst with
        | None -> ()
        | Some path ->
          let len = List.length path in
          (match !best with
           | Some (_, _, l) when l <= len -> ()
           | Some _ | None -> best := Some (src, path, len)))
    srcs;
  Option.map (fun (src, path, _) -> (src, path)) !best

(* Scratch-array BFS.  Visits neighbours in [Graph.incident] order (the
   CSR arrays preserve it), stops as soon as [dst] is discovered — its
   parent pointers are final at discovery time — and prunes expansion at
   depth [cap - 1]: a path of length >= cap can never replace the best
   found so far, which requires a strictly shorter one.  Returns the path
   length, or -1; parent pointers in scratch A describe the path. *)
let bfs_to_dst st ~edge_ok ~src ~dst ~cap =
  if src = dst then if 0 < cap then 0 else -1
  else begin
    let p = st.prep in
    st.epoch_a <- st.epoch_a + 1;
    let ep = st.epoch_a in
    st.stamp_a.(src) <- ep;
    st.dist_a.(src) <- 0;
    st.q.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    let found = ref (-1) in
    (try
       while !head < !tail do
         let u = st.q.(!head) in
         incr head;
         let du = st.dist_a.(u) in
         if du + 1 < cap then
           for k = p.P.adj_off.(u) to p.P.adj_off.(u + 1) - 1 do
             let e = p.P.adj_edge.(k) in
             let v = p.P.adj_node.(k) in
             if st.stamp_a.(v) <> ep && edge_ok e then begin
               st.stamp_a.(v) <- ep;
               st.dist_a.(v) <- du + 1;
               st.pedge.(v) <- e;
               st.pnode.(v) <- u;
               if v = dst then begin
                 found := du + 1;
                 raise Exit
               end;
               st.q.(!tail) <- v;
               incr tail
             end
           done
       done
     with Exit -> ());
    !found
  end

let unwind_scratch st ~src ~dst =
  let rec go v acc = if v = src then acc else go st.pnode.(v) (st.pedge.(v) :: acc) in
  go dst []

(* Full single-source BFS distances into scratch A (no early exit). *)
let bfs_all st ~edge_ok ~src =
  let p = st.prep in
  st.epoch_a <- st.epoch_a + 1;
  let ep = st.epoch_a in
  st.stamp_a.(src) <- ep;
  st.dist_a.(src) <- 0;
  st.q.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = st.q.(!head) in
    incr head;
    let du = st.dist_a.(u) in
    for k = p.P.adj_off.(u) to p.P.adj_off.(u + 1) - 1 do
      let e = p.P.adj_edge.(k) in
      let v = p.P.adj_node.(k) in
      if st.stamp_a.(v) <> ep && edge_ok e then begin
        st.stamp_a.(v) <- ep;
        st.dist_a.(v) <- du + 1;
        st.q.(!tail) <- v;
        incr tail
      end
    done
  done

let route_fast st ~srcs ~dst =
  let p = st.prep in
  st.epoch_s <- st.epoch_s + 1;
  let es = st.epoch_s in
  List.iter (fun n -> st.smark.(n) <- es) srcs;
  let node_ok n =
    n = dst || st.smark.(n) = es
    || ((not (Bitset.mem st.occ_nodes n)) && st.tn_count.(n) = 0)
  in
  let edge_ok e =
    Bitset.mem p.P.channels e
    && st.te_count.(e) = 0
    && (not (Bitset.mem st.storage e))
    && node_ok p.P.edge_u.(e)
    && node_ok p.P.edge_v.(e)
  in
  let best = ref None in
  List.iter
    (fun src ->
      let cap = match !best with Some (_, _, l) -> l | None -> max_int in
      match bfs_to_dst st ~edge_ok ~src ~dst ~cap with
      | -1 -> ()
      | 0 -> best := Some (src, [], 0)
      | len -> best := Some (src, unwind_scratch st ~src ~dst, len))
    srcs;
  Option.map (fun (src, path, _) -> (src, path)) !best

let route st ~srcs ~dst =
  st.c_routes <- st.c_routes + 1;
  if st.fast then route_fast st ~srcs ~dst else route_ref st ~srcs ~dst

let push_event st ev = if st.record_events then st.events <- ev :: st.events

let path_nodes st ~src path =
  let p = st.prep in
  let rec walk u acc = function
    | [] -> List.rev acc
    | e :: rest ->
      let v = if p.P.edge_u.(e) = u then p.P.edge_v.(e) else p.P.edge_u.(e) in
      walk v (v :: acc) rest
  in
  walk src [ src ] path

let begin_transport st time u ~src ~path ~dest =
  let nodes = path_nodes st ~src path in
  if not (sharing_legal st ~path ~nodes) then false
  else begin
    (* cross-contamination washing: flush segments whose residue belongs to
       a different sample before this one crosses them *)
    let me = lineage u in
    let dirty =
      if not st.opts.wash then 0
      else
        List.fold_left
          (fun acc e ->
            if st.last_user.(e) <> min_int && st.last_user.(e) <> me then acc + 1 else acc)
          0 path
    in
    if st.opts.wash then begin
      st.n_washes <- st.n_washes + dirty;
      List.iter (fun e -> st.last_user.(e) <- me) path
    end;
    let duration = (List.length path * st.opts.transport_cost) + (dirty * st.opts.wash_penalty) in
    set_loc st u In_transit;
    let finish = time + duration in
    add_transport st
      { t_unit = u.u_id; t_path = path; t_nodes = nodes; t_dest = dest; t_finish = finish };
    st.n_transports <- st.n_transports + 1;
    st.transport_time <- st.transport_time + duration;
    push_event st (Schedule.Transport_started { unit_id = u.u_id; path; time; finish });
    true
  end

(* ------------------------------------------------------------------ *)
(* Storage eviction *)

let storage_site_ref st ~from_node =
  let occupied = occupied_nodes_ref st in
  let moving_edges = transport_edge_set_ref st [] in
  let moving_nodes = transport_node_set_ref st [] in
  let storage = storage_edges_ref st in
  let plain_node n =
    (not (Bitset.mem occupied n))
    && (not (Bitset.mem moving_nodes n))
    && Chip.device_at st.chip n = None
    && Chip.port_at st.chip n = None
  in
  let node_ok n = n = from_node || plain_node n in
  let edge_ok e =
    Bitset.mem st.prep.P.channels e
    && (not (Bitset.mem moving_edges e))
    && (not (List.mem e storage))
    &&
    let u, v = Graph.endpoints st.g e in
    node_ok u && node_ok v
  in
  (* a storage edge must be enclosed by valves so the fluid can be held *)
  let enclosed e =
    let u, v = Graph.endpoints st.g e in
    let boundary n =
      Graph.incident st.g n
      |> List.for_all (fun (f, _) ->
          f = e || (not (Bitset.mem st.prep.P.channels f))
          || Chip.valve_on st.chip f <> None)
    in
    boundary u && boundary v
  in
  (* Occupying a site blocks its endpoints until the fluid leaves; never
     pick one that would cut any device or port off from the rest.  Only
     persistent blockage (stored fluids) counts: busy devices free up on
     their own, but they must still be reachable afterwards, so every hub
     stays in the requirement. *)
  let keeps_network_connected e =
    let storage_blocked = Bitset.create (Graph.n_nodes st.g) in
    let block f =
      let u, v = Graph.endpoints st.g f in
      Bitset.add storage_blocked u;
      Bitset.add storage_blocked v
    in
    block e;
    List.iter block storage;
    let open_edge f =
      Bitset.mem st.prep.P.channels f
      && f <> e
      && (not (List.mem f storage))
      &&
      let u, v = Graph.endpoints st.g f in
      (not (Bitset.mem storage_blocked u)) && not (Bitset.mem storage_blocked v)
    in
    let hubs =
      st.port_nodes @ (Array.to_list st.devs |> List.map (fun d -> d.d_node))
      |> List.filter (fun n -> not (Bitset.mem storage_blocked n))
    in
    match hubs with
    | [] -> false
    | hub :: rest ->
      let reach = Mf_graph.Traverse.reachable st.g ~allowed:open_edge ~src:hub in
      List.for_all (fun n -> Bitset.mem reach n) rest
  in
  (* The parked fluid must stay retrievable even while every device is busy:
     some route from the pocket to a port may not pass through any device
     node, or the fluid can be walled in by long-running neighbours. *)
  let egress_ok e =
    let eu, ev = Graph.endpoints st.g e in
    let device n = Chip.device_at st.chip n <> None in
    let open_edge f =
      f <> e
      && Bitset.mem st.prep.P.channels f
      && (not (List.mem f storage))
      &&
      let u, v = Graph.endpoints st.g f in
      let ok n = n = eu || n = ev || not (device n) in
      ok u && ok v
    in
    let reach = Mf_graph.Traverse.reachable st.g ~allowed:open_edge ~src:eu in
    List.exists (fun p -> Bitset.mem reach p) st.port_nodes
  in
  (* BFS for the nearest suitable edge: walk outward and take the first
     reachable edge that qualifies *)
  let dist = Mf_graph.Traverse.bfs_dist st.g ~allowed:edge_ok ~src:from_node in
  let best = ref None in
  Graph.iter_edges
    (fun e u v ->
      if
        edge_ok e && enclosed e && u <> from_node && v <> from_node
        && plain_node u && plain_node v
        && keeps_network_connected e && egress_ok e
      then begin
        let d = min dist.(u) dist.(v) in
        if d < max_int then
          match !best with
          | Some (_, bd) when bd <= d -> ()
          | Some _ | None -> best := Some (e, d)
      end)
    st.g;
  match !best with
  | None -> None
  | Some (e, _) ->
    let u, v = Graph.endpoints st.g e in
    let target = if dist.(u) <= dist.(v) then u else v in
    (match Mf_graph.Traverse.bfs_path st.g ~allowed:edge_ok ~src:from_node ~dst:target with
     | None -> None
     | Some path -> Some (e, path @ [ e ]))

(* Fast connectivity probe for a candidate pocket: mark the endpoints the
   candidate and existing storage would block, then one early-exit BFS
   counting how many unblocked hubs (ports and devices) stay mutually
   reachable. *)
let keeps_network_connected_fast st cand =
  let p = st.prep in
  st.epoch_m <- st.epoch_m + 1;
  let em = st.epoch_m in
  let block f =
    st.bmark.(p.P.edge_u.(f)) <- em;
    st.bmark.(p.P.edge_v.(f)) <- em
  in
  block cand;
  Bitset.iter (fun f -> block f) st.storage;
  let blocked n = st.bmark.(n) = em in
  let open_edge f =
    Bitset.mem p.P.channels f
    && f <> cand
    && (not (Bitset.mem st.storage f))
    && (not (blocked p.P.edge_u.(f)))
    && not (blocked p.P.edge_v.(f))
  in
  let hub_total = ref 0 in
  let first_hub = ref (-1) in
  let scan arr =
    Array.iter
      (fun n ->
        if not (blocked n) then begin
          incr hub_total;
          if !first_hub < 0 then first_hub := n
        end)
      arr
  in
  scan p.P.port_node;
  scan p.P.dev_node;
  if !first_hub < 0 then false
  else begin
    st.epoch_b <- st.epoch_b + 1;
    let eb = st.epoch_b in
    let reached = ref 0 in
    let is_hub n = p.P.device_of.(n) >= 0 || p.P.port_of.(n) >= 0 in
    let visit n =
      st.stamp_b.(n) <- eb;
      if is_hub n && not (blocked n) then incr reached
    in
    visit !first_hub;
    st.q_b.(0) <- !first_hub;
    let head = ref 0 and tail = ref 1 in
    (try
       while !head < !tail do
         if !reached = !hub_total then raise Exit;
         let u = st.q_b.(!head) in
         incr head;
         for k = p.P.adj_off.(u) to p.P.adj_off.(u + 1) - 1 do
           let f = p.P.adj_edge.(k) in
           let v = p.P.adj_node.(k) in
           if st.stamp_b.(v) <> eb && open_edge f then begin
             visit v;
             st.q_b.(!tail) <- v;
             incr tail
           end
         done
       done
     with Exit -> ());
    !reached = !hub_total
  end

let egress_ok_fast st cand =
  let p = st.prep in
  let eu = p.P.edge_u.(cand) and ev = p.P.edge_v.(cand) in
  let ok_node n = n = eu || n = ev || p.P.device_of.(n) < 0 in
  let open_edge f =
    f <> cand
    && Bitset.mem p.P.channels f
    && (not (Bitset.mem st.storage f))
    && ok_node p.P.edge_u.(f)
    && ok_node p.P.edge_v.(f)
  in
  st.epoch_b <- st.epoch_b + 1;
  let eb = st.epoch_b in
  st.stamp_b.(eu) <- eb;
  st.q_b.(0) <- eu;
  let head = ref 0 and tail = ref 1 in
  let found = ref (p.P.port_of.(eu) >= 0) in
  (try
     while !head < !tail do
       let u = st.q_b.(!head) in
       incr head;
       for k = p.P.adj_off.(u) to p.P.adj_off.(u + 1) - 1 do
         let f = p.P.adj_edge.(k) in
         let v = p.P.adj_node.(k) in
         if st.stamp_b.(v) <> eb && open_edge f then begin
           st.stamp_b.(v) <- eb;
           if p.P.port_of.(v) >= 0 then begin
             found := true;
             raise Exit
           end;
           st.q_b.(!tail) <- v;
           incr tail
         end
       done
     done
   with Exit -> ());
  !found

let storage_site_fast st ~from_node =
  let p = st.prep in
  let plain_node n =
    (not (Bitset.mem st.occ_nodes n))
    && st.tn_count.(n) = 0
    && p.P.device_of.(n) < 0
    && p.P.port_of.(n) < 0
  in
  let node_ok n = n = from_node || plain_node n in
  let edge_ok e =
    Bitset.mem p.P.channels e
    && st.te_count.(e) = 0
    && (not (Bitset.mem st.storage e))
    && node_ok p.P.edge_u.(e)
    && node_ok p.P.edge_v.(e)
  in
  bfs_all st ~edge_ok ~src:from_node;
  let ep = st.epoch_a in
  let dist n = if st.stamp_a.(n) = ep then st.dist_a.(n) else max_int in
  (* Ascending edge scan, strictly-smaller distance wins, exactly like the
     reference; the expensive connectivity probes run only for candidates
     that would actually improve, which cannot change the winner (the
     probes are independent of the incumbent). *)
  let best_e = ref (-1) in
  let best_d = ref max_int in
  for e = 0 to p.P.n_edges - 1 do
    if Bitset.mem p.P.enclosed e && edge_ok e then begin
      let u = p.P.edge_u.(e) and v = p.P.edge_v.(e) in
      if u <> from_node && v <> from_node && plain_node u && plain_node v then begin
        let d = min (dist u) (dist v) in
        if d < !best_d && keeps_network_connected_fast st e && egress_ok_fast st e then begin
          best_e := e;
          best_d := d
        end
      end
    end
  done;
  if !best_e < 0 then None
  else begin
    let e = !best_e in
    let u = p.P.edge_u.(e) and v = p.P.edge_v.(e) in
    let target = if dist u <= dist v then u else v in
    (* the path BFS below recycles scratch A, so [dist] is dead past here *)
    match bfs_to_dst st ~edge_ok ~src:from_node ~dst:target ~cap:max_int with
    | -1 -> None
    | 0 -> Some (e, [ e ])
    | _ -> Some (e, unwind_scratch st ~src:from_node ~dst:target @ [ e ])
  end

let storage_site st ~from_node =
  if st.fast then storage_site_fast st ~from_node else storage_site_ref st ~from_node

let try_evict st time d =
  match first_unit_at st d.d_id with
  | None -> false
  | Some u ->
    if not st.opts.allow_storage then false
    else begin
      let to_pocket () =
        match storage_site st ~from_node:d.d_node with
        | None -> false
        | Some (edge, path) ->
          let ok = begin_transport st time u ~src:d.d_node ~path ~dest:(To_storage edge) in
          if ok then st.n_stored <- st.n_stored + 1;
          ok
      in
      (* fall back to parking in an idle, empty, unreserved device: chambers
         double as storage when the channel pockets are full ([5]) *)
      let to_device () =
        Array.to_list st.devs
        |> List.filter (fun d' ->
            d'.d_id <> d.d_id && d'.d_run = Idle && d'.reserved_by = None
            && device_empty st d'.d_id
            (* never park in the only device of a kind: operations of that
               kind would wait behind the parked fluid, a circular-wait
               recipe *)
            && st.kind_counts.(kind_index d'.d_kind) > 1)
        |> List.exists (fun d' ->
            match route st ~srcs:[ d.d_node ] ~dst:d'.d_node with
            | None | Some (_, []) -> false
            | Some (src, path) ->
              let ok = begin_transport st time u ~src ~path ~dest:(To_device d'.d_id) in
              if ok then st.n_stored <- st.n_stored + 1;
              ok)
      in
      (* last resort: push the sample off-chip into a port vial (one fluid
         per port); the round trip is paid in transport time *)
      let to_reservoir () =
        st.port_nodes
        |> List.filter (fun n -> port_vial_free st n)
        |> List.exists (fun n ->
            match route st ~srcs:[ d.d_node ] ~dst:n with
            | None | Some (_, []) -> false
            | Some (src, path) ->
              let ok = begin_transport st time u ~src ~path ~dest:(To_reservoir n) in
              if ok then st.n_stored <- st.n_stored + 1;
              ok)
      in
      to_pocket () || to_device () || to_reservoir ()
    end

(* ------------------------------------------------------------------ *)
(* Op advancement *)

let unit_source_nodes st u =
  match u.loc with
  | Fresh -> st.port_nodes
  | At_device d -> [ st.devs.(d).d_node ]
  | Stored e ->
    let a, b = Graph.endpoints st.g e in
    [ a; b ]
  | At_reservoir n -> [ n ]
  | In_transit | Consumed -> []

let clear_for st j d =
  all_at_or_heading st d.d_id (fun u_id -> List.mem u_id st.inputs_of.(j))

let bind st j =
  match st.op_bound.(j) with
  | Some d -> Some st.devs.(d)
  | None ->
    let kind = device_kind_of_op (Seqgraph.op st.app j).kind in
    let candidates =
      Array.to_list st.devs
      |> List.filter (fun d -> d.d_kind = kind && d.d_run = Idle && d.reserved_by = None)
    in
    let holds_input d =
      exists_at_or_heading st d.d_id (fun u_id -> List.mem u_id st.inputs_of.(j))
    in
    let score d =
      if holds_input d && clear_for st j d then 0
      else if device_empty st d.d_id then 1
      else 2 (* needs eviction *)
    in
    let sorted = List.sort (fun a b -> compare (score a, a.d_id) (score b, b.d_id)) candidates in
    (match sorted with
     | d :: _ when score d <= 1 ->
       st.op_bound.(j) <- Some d.d_id;
       d.reserved_by <- Some j;
       Some d
     | _ -> None)

(* Returns true when any state change happened for op [j]. *)
let try_advance_op st time j =
  match bind st j with
  | None ->
    (* all compatible devices blocked: try freeing one by eviction *)
    let kind = device_kind_of_op (Seqgraph.op st.app j).kind in
    Array.to_list st.devs
    |> List.exists (fun d ->
        d.d_kind = kind && d.d_run = Idle && d.reserved_by = None
        && (not (clear_for st j d))
        && try_evict st time d)
  | Some d ->
    let changed = ref false in
    let all_arrived = ref true in
    List.iter
      (fun u_id ->
        let u = st.units.(u_id) in
        match u.loc with
        | At_device dd when dd = d.d_id -> ()
        | In_transit -> all_arrived := false
        | Fresh | At_device _ | Stored _ | At_reservoir _ ->
          all_arrived := false;
          let srcs = unit_source_nodes st u in
          (match route st ~srcs ~dst:d.d_node with
           | None -> ()
           | Some (src, []) ->
             ignore src;
             (* already adjacent: the unit sits on a storage edge touching
                the device, or a port shares the node — arrive instantly *)
             set_loc st u (At_device d.d_id);
             changed := true
           | Some (src, path) ->
             if begin_transport st time u ~src ~path ~dest:(To_device d.d_id) then
               changed := true)
        | Consumed -> all_arrived := false (* producer not finished: unreachable here *))
      st.inputs_of.(j);
    if !all_arrived && clear_for st j d then begin
      List.iter (fun u_id -> set_loc st st.units.(u_id) Consumed) st.inputs_of.(j);
      let op = Seqgraph.op st.app j in
      set_run st d (Running (j, time + op.duration));
      d.reserved_by <- None;
      st.op_started.(j) <- true;
      push_event st (Schedule.Op_started { op = j; device = d.d_id; time });
      changed := true
    end;
    !changed

let try_progress st time =
  let changed = ref false in
  let continue = ref true in
  while !continue do
    continue := false;
    List.iter
      (fun j ->
        if
          (not st.op_started.(j))
          && List.for_all (fun p -> st.op_finished.(p)) (Seqgraph.preds st.app j)
          && try_advance_op st time j
        then begin
          changed := true;
          continue := true
        end)
      st.priority
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* Completions *)

let complete_at st time =
  (* transports first: arriving fluids may unblock the ops finishing now *)
  let arriving, still = List.partition (fun tr -> tr.t_finish = time) st.transports in
  st.transports <- still;
  List.iter
    (fun tr ->
      drop_transport st tr;
      let u = st.units.(tr.t_unit) in
      match tr.t_dest with
      | To_device d -> set_loc st u (At_device d)
      | To_storage e ->
        set_loc st u (Stored e);
        push_event st (Schedule.Unit_stored { unit_id = u.u_id; edge = e; time })
      | To_reservoir n ->
        set_loc st u (At_reservoir n);
        push_event st (Schedule.Unit_parked { unit_id = u.u_id; port_node = n; time }))
    arriving;
  Array.iter
    (fun d ->
      match d.d_run with
      | Running (j, finish) when finish = time ->
        set_run st d Idle;
        st.op_finished.(j) <- true;
        st.op_finish_time.(j) <- time;
        List.iter (fun u_id -> set_loc st st.units.(u_id) (At_device d.d_id)) st.outputs_of.(j);
        push_event st (Schedule.Op_finished { op = j; device = d.d_id; time })
      | Running _ | Idle -> ())
    st.devs

let next_event_time st =
  let best = ref max_int in
  List.iter (fun tr -> if tr.t_finish < !best then best := tr.t_finish) st.transports;
  Array.iter
    (fun d -> match d.d_run with Running (_, f) when f < !best -> best := f | Running _ | Idle -> ())
    st.devs;
  if !best = max_int then None else Some !best

(* ------------------------------------------------------------------ *)

let dump_state st time =
  let ppf = Format.err_formatter in
  Format.fprintf ppf "@[<v>-- scheduler deadlock at t=%d --@," time;
  Array.iter
    (fun d ->
      let held = units_at_device st d.d_id |> List.map (fun u -> u.u_id) in
      Format.fprintf ppf "dev %d (%s) run=%s reserved=%s holds=%a@," d.d_id
        (match d.d_kind with
         | Chip.Mixer -> "mixer"
         | Chip.Detector -> "detector"
         | Chip.Heater -> "heater"
         | Chip.Filter -> "filter")
        (match d.d_run with Idle -> "idle" | Running (j, f) -> Printf.sprintf "op%d until %d" j f)
        (match d.reserved_by with None -> "-" | Some j -> string_of_int j)
        Fmt.(list ~sep:comma int) held)
    st.devs;
  Array.iteri
    (fun j started ->
      if not started then
        Format.fprintf ppf "op %d pending: preds_done=%b bound=%s@," j
          (List.for_all (fun p -> st.op_finished.(p)) (Seqgraph.preds st.app j))
          (match st.op_bound.(j) with None -> "-" | Some d -> string_of_int d))
    st.op_started;
  Array.iter
    (fun u ->
      let loc =
        match u.loc with
        | Fresh -> "fresh"
        | At_device d -> Printf.sprintf "dev%d" d
        | Stored e -> Printf.sprintf "stored@%d" e
        | At_reservoir n -> Printf.sprintf "reservoir@%d" n
        | In_transit -> "transit"
        | Consumed -> "consumed"
      in
      if u.loc <> Consumed then
        Format.fprintf ppf "unit %d (%s->op%d) %s@," u.u_id
          (match u.producer with None -> "fresh" | Some p -> "op" ^ string_of_int p)
          u.consumer loc)
    st.units;
  Format.fprintf ppf "--@]@."

(* ------------------------------------------------------------------ *)
(* Entry points *)

let prof_flush st ~cut =
  Atomic.incr Stats.runs;
  ignore (Atomic.fetch_and_add Stats.steps st.c_steps);
  ignore (Atomic.fetch_and_add Stats.routes st.c_routes);
  if cut then Atomic.incr Stats.cutoffs;
  Mf_util.Prof.add_count "sched.runs" 1;
  Mf_util.Prof.add_count "sched.steps" st.c_steps;
  Mf_util.Prof.add_count "sched.routes" st.c_routes;
  if cut then Mf_util.Prof.add_count "sched.cutoffs" 1

let exec ~options ~prep ~fast ~record_events ~cutoff chip app =
  (* every op kind used must have a device *)
  let missing =
    Array.to_list (Seqgraph.ops app)
    |> List.find_opt (fun (o : Op.t) ->
        let kind = device_kind_of_op o.kind in
        not (Array.exists (fun (d : Chip.device) -> d.kind = kind) (Chip.devices chip)))
  in
  match missing with
  | Some o -> Error (`Failure (Schedule.No_device o.kind))
  | None ->
    let prep = match prep with Some p -> p | None -> Prep.of_chip chip in
    let st = init chip prep app options ~fast ~record_events in
    let all_done () = Array.for_all Fun.id st.op_finished in
    let finish r ~cut =
      prof_flush st ~cut;
      r
    in
    let rec loop time =
      st.c_steps <- st.c_steps + 1;
      if time > options.horizon then finish (Error (`Failure (Schedule.Timeout time))) ~cut:false
      else if float_of_int time > cutoff then finish (Error `Cut) ~cut:true
      else begin
        complete_at st time;
        ignore (try_progress st time);
        if all_done () then
          finish
            (Ok
               {
                 Schedule.makespan = Array.fold_left max 0 st.op_finish_time;
                 events = List.rev st.events;
                 n_transports = st.n_transports;
                 transport_time = st.transport_time;
                 n_stored = st.n_stored;
                 n_washes = st.n_washes;
               })
            ~cut:false
        else
          match next_event_time st with
          | Some t -> loop t
          | None ->
            if Lazy.force debug_enabled then dump_state st time;
            finish (Error (`Failure (Schedule.Deadlock time))) ~cut:false
      end
    in
    loop 0

let run ?(options = default_options) ?prep chip app =
  match exec ~options ~prep ~fast:true ~record_events:true ~cutoff:infinity chip app with
  | Ok s -> Ok s
  | Error (`Failure f) -> Error f
  | Error `Cut -> assert false (* cutoff = infinity never triggers *)

let run_reference ?(options = default_options) chip app =
  match exec ~options ~prep:None ~fast:false ~record_events:true ~cutoff:infinity chip app with
  | Ok s -> Ok s
  | Error (`Failure f) -> Error f
  | Error `Cut -> assert false

let makespan ?(options = default_options) ?prep chip app =
  match exec ~options ~prep ~fast:true ~record_events:false ~cutoff:infinity chip app with
  | Ok s -> Some s.Schedule.makespan
  | Error _ -> None

let makespan_until ?(options = default_options) ?prep ~cutoff chip app =
  match exec ~options ~prep ~fast:true ~record_events:false ~cutoff chip app with
  | Ok s -> `Makespan s.Schedule.makespan
  | Error (`Failure f) -> `Failed f
  | Error `Cut -> `Cutoff
