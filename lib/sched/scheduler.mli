(** List scheduler with device binding, channel routing and distributed
    channel storage — the execution-model substrate of [6] that the paper's
    codesign evaluates against, extended with the valve-sharing legality
    rules of Sec. 4.1.

    Model (one tick = 1 s):
    - operations bind to free devices of the matching kind, preferring a
      device that already holds one of their input fluids;
    - every dependency edge of the sequencing graph is one {e fluid unit}
      that must be transported from the producing device to the consuming
      device through currently free channels (1 tick per channel segment);
      root operations draw a fresh reagent from the nearest port;
    - a device whose result is not yet consumable can be freed by evicting
      the fluid into {e channel storage}: a free, valve-enclosed channel
      edge (distributed storage, [6]);
    - with [respect_sharing], opening the valves along a transport path also
      opens every valve sharing those control lines; the transport is
      illegal if any such forced-open valve borders a resting fluid, a busy
      device or another transport in flight (the contamination scenarios of
      Fig. 6), so shared chips wait — or deadlock, which scores the sharing
      scheme invalid. *)

type options = {
  respect_sharing : bool;  (** enforce control-line coupling (default true) *)
  transport_cost : int;  (** ticks per channel segment (default 1) *)
  allow_storage : bool;  (** permit eviction to channel storage (default true) *)
  horizon : int;  (** give up after this many ticks (default 1_000_000) *)
  wash : bool;
      (** cross-contamination washing ([11]): a channel segment last used by
          a different sample must be flushed before reuse; each dirty
          segment adds [wash_penalty] ticks to the transport (default
          false, matching the paper's evaluation) *)
  wash_penalty : int;  (** ticks per dirty segment (default 2) *)
}

val default_options : options

(** Global event-loop counters, accumulated across every simulation since
    start (or the last {!Stats.reset}).  Atomic, so concurrent fitness
    workers update them safely; also mirrored into {!Mf_util.Prof} as
    [sched.runs]/[sched.steps]/[sched.routes]/[sched.cutoffs] when
    [MFDFT_PROF=1]. *)
module Stats : sig
  type snapshot = {
    runs : int;  (** simulations executed *)
    steps : int;  (** event-loop iterations *)
    routes : int;  (** routing queries answered *)
    cutoffs : int;  (** simulations aborted by {!makespan_until}'s bound *)
  }

  val reset : unit -> unit
  val snapshot : unit -> snapshot
end

val run :
  ?options:options ->
  ?prep:Prep.t ->
  Mf_arch.Chip.t ->
  Mf_bioassay.Seqgraph.t ->
  (Schedule.t, Schedule.failure) result
(** Simulate [app] on [chip] and return the full schedule (events
    included).  [?prep] supplies a prebuilt {!Prep.t} for [chip] — it
    {b must} describe the same chip (same grid, valve placement and
    control wiring) or the simulation is meaningless; when absent the
    cache is built on the fly. *)

val run_reference :
  ?options:options ->
  Mf_arch.Chip.t ->
  Mf_bioassay.Seqgraph.t ->
  (Schedule.t, Schedule.failure) result
(** Same simulation, but every occupancy/routing query rebuilds its answer
    from first principles (the pre-cache seed implementation) instead of
    consulting the incrementally maintained bitsets.  Slow; exists as the
    oracle for differential tests and the bench gate. *)

val makespan :
  ?options:options -> ?prep:Prep.t -> Mf_arch.Chip.t -> Mf_bioassay.Seqgraph.t -> int option
(** [makespan chip app] is the execution time, or [None] when the
    application cannot complete (the PSO fitness maps this to infinity).
    Event recording is disabled — the fitness hot loop allocates no event
    list. *)

val makespan_until :
  ?options:options ->
  ?prep:Prep.t ->
  cutoff:float ->
  Mf_arch.Chip.t ->
  Mf_bioassay.Seqgraph.t ->
  [ `Makespan of int | `Cutoff | `Failed of Schedule.failure ]
(** Bounded-makespan entry point for branch-and-bound-style fitness: the
    simulation aborts with [`Cutoff] as soon as simulated time strictly
    exceeds [cutoff], i.e. as soon as the final makespan is guaranteed to
    be [> cutoff].  Guarantees:
    - [cutoff = infinity] never cuts and is bit-identical to {!makespan};
    - if the true makespan [m <= cutoff], returns [`Makespan m] exactly;
    - [`Cutoff] implies the true fitness (makespan or failure penalty)
      exceeds [cutoff] — both because [m >= elapsed > cutoff] for
      completing runs, and because the failure penalties ([Deadlock]/
      [Timeout] at [10 * 1e5]) exceed any cutoff a horizon-bounded run can
      reach ([cutoff < elapsed <= horizon = 1e6]). *)
