(** Immutable per-chip routing/topology cache for the scheduler fast path.

    Everything the scheduler's inner loops repeatedly re-derived from
    [Chip.t]/[Graph.t] — adjacency, edge endpoints, valve wiring, which
    nodes host devices or ports, which channel edges qualify as enclosed
    storage pockets — is computed once here and then shared by every
    simulation over the same topology.  A value is immutable after
    construction, so one [t] may be used concurrently from several domains
    (the codesign fitness fan-out builds one per DFT configuration and
    reuses it across all sharing schemes).

    Two chips related by {!Mf_arch.Chip.with_sharing} have identical
    topology and differ only in valve→control wiring; {!for_sharing}
    rebuilds just the control maps and shares the rest. *)

type t = private {
  g : Mf_graph.Graph.t;
  n_nodes : int;
  n_edges : int;
  adj_off : int array;  (** CSR row offsets, length [n_nodes + 1] *)
  adj_edge : int array;
      (** incident edge ids, in exactly the order [Graph.incident] lists
          them — BFS tie-breaking depends on it *)
  adj_node : int array;  (** neighbour reached through [adj_edge] entry *)
  edge_u : int array;  (** first endpoint, as stored by [Graph.endpoints] *)
  edge_v : int array;
  channels : Mf_util.Bitset.t;  (** treat as read-only *)
  n_valves : int;
  valve_edge : int array;  (** valve id -> edge *)
  valve_control : int array;  (** valve id -> control line *)
  edge_control : int array;  (** edge -> control of its valve, or -1 *)
  n_controls : int;
  device_of : int array;  (** node -> device id, or -1 *)
  port_of : int array;  (** node -> port id, or -1 *)
  dev_node : int array;  (** device id -> node *)
  port_node : int array;  (** port id -> node *)
  enclosed : Mf_util.Bitset.t;
      (** channel edges both of whose endpoints are bounded entirely by
          non-channels or valve-carrying channels (besides the edge
          itself): the pockets where a fluid can be held *)
}

val of_chip : Mf_arch.Chip.t -> t
(** Build the full cache; linear in the grid size. *)

val for_sharing : t -> Mf_arch.Chip.t -> t
(** [for_sharing base shared] is the cache for [shared], a chip obtained
    from [base]'s chip via {!Mf_arch.Chip.with_sharing}: only the
    valve-control maps are rebuilt, all topology arrays are shared with
    [base].  Raises [Invalid_argument] if the topologies disagree. *)
