(** 0-1 integer linear programming by branch-and-bound over the
    {!Mf_lp.Lp} relaxation, with lazy-constraint callbacks.

    This is the solver behind the paper's DFT test-path formulation
    (constraints (1)–(4), objective (5)); the lazy callback implements the
    loop-elimination cuts of Sec. 3 (analogous to subtour elimination).

    Each node carries the optimal basis of the relaxation that spawned it:
    branching only changes one variable's bounds and lazy cuts only append
    rows, so the child relaxation re-optimises from that basis with the
    dual simplex instead of solving cold (see {!Mf_lp.Lp.solve_b}).  A
    bounded per-solve cache keyed by fixing set recalls relaxations
    re-visited after cut installation.  Neither mechanism changes any
    result — only the work done — and both can be disabled with
    [~warm:false] for differential testing.

    {b Parallelism.}  The search is batch-synchronous: each round pops up
    to a fixed number of open nodes (a function of the heap state only,
    never of the job count), solves their LP relaxations concurrently on a
    {!Mf_util.Domain_pool}, then reduces the results sequentially in batch
    order on the coordinating domain — incumbent updates, branching, cache
    and statistics, lazy-cut installation all happen there.  The open-node
    heap orders ties by a stable insertion sequence, so the pop order is a
    pure function of the search trajectory.  Consequence: for a given
    model, [solve] returns bit-identical [outcome]/[solution]/{!run_stats}
    for any job count, including [?pool = None]. *)

type t
type var = Mf_lp.Lp.var

type relation = Mf_lp.Lp.relation = Le | Ge | Eq

type solution = { objective : float; values : float array }
(** [values.(v)] is exactly [0.] or [1.] for binary variables. *)

type outcome =
  | Optimal of solution  (** proven optimal (within node budget semantics) *)
  | Feasible of solution
      (** incumbent found but optimality unproven: the node or wall-clock
          budget truncated the search, or a relaxation came back without a
          certified bound *)
  | Infeasible
  | Node_limit  (** budget exhausted with no incumbent *)
  | Failed of Mf_util.Fail.t
      (** the search cannot continue and the result is not a resource
          outcome — an unbounded LP relaxation (defective model), or a
          relaxation worker that died (e.g. under [MFDFT_CHAOS=ilp-worker]).
          The batch in flight is always drained before this is reported, so
          the pool stays reusable.  Typed so callers degrade per the
          resilience ladder instead of crashing. *)

val create : unit -> t

val add_binary : ?obj:float -> t -> var
(** Declare a 0-1 variable with objective coefficient [obj] (minimised). *)

val add_continuous : ?lower:float -> ?upper:float -> ?obj:float -> t -> var

val n_vars : t -> int

val add_row : t -> (float * var) list -> relation -> float -> unit

type lazy_cut = (float * var) list * relation * float

(** Process-wide branch-and-bound telemetry (see {!Mf_lp.Simplex.Stats}):
    cumulative atomic counters.  Every counter is bumped from the
    coordinating domain only, so totals are deterministic for any job
    count. *)
module Stats : sig
  val nodes : int Atomic.t

  val warm_eligible : int Atomic.t
  (** Non-root nodes whose relaxation had a usable warm basis (from the
      parent node or the fixing-set cache). *)

  val warm_taken : int Atomic.t
  (** Relaxations the dual simplex re-optimised from a warm basis. *)

  val cache_hits : int Atomic.t
  (** Relaxations answered from the fixing-set cache without an LP solve. *)

  val cover_cuts : int Atomic.t
  (** Knapsack cover cuts installed at root separation. *)

  val presolve_fixed : int Atomic.t
  (** Variables fixed by presolve bound propagation. *)

  val reset : unit -> unit
end

type run_stats = {
  rs_nodes : int;  (** nodes expanded (cache-served nodes included) *)
  rs_batches : int;  (** parallel rounds executed (1..16 nodes each) *)
  rs_warm_eligible : int;
  rs_warm_taken : int;
  rs_fallbacks : int;  (** warm attempts that fell back to a cold solve *)
  rs_cache_hits : int;
  rs_primal_pivots : int;
  rs_dual_pivots : int;
  rs_presolve_fixed : int;  (** variables fixed by presolve *)
  rs_presolve_tightened : int;  (** presolve bound tightenings + coefficient reductions *)
  rs_cover_cuts : int;  (** root cover cuts installed *)
}
(** Effort accounting for a single {!solve} call — what {!Stats} counts
    process-wide.  Identical for any job count. *)

val zero_stats : run_stats

val add_stats : run_stats -> run_stats -> run_stats
(** Field-wise sum, for aggregating across solves. *)

val nodes_explored : t -> int
(** Nodes expanded during the most recent {!solve} call (each is one LP
    relaxation solve or one fixing-set cache hit). *)

val last_stats : t -> run_stats
(** Full effort breakdown of the most recent {!solve} call. *)

val solve :
  ?node_limit:int ->
  ?budget:Mf_util.Budget.t ->
  ?lazy_cuts:(solution -> lazy_cut list) ->
  ?branch_priority:(var -> int) ->
  ?upper_bound:float ->
  ?warm:bool ->
  ?presolve:bool ->
  ?cuts:bool ->
  ?pool:Mf_util.Domain_pool.t ->
  t ->
  outcome
(** Batched best-first branch-and-bound.  Whenever an integral candidate is
    found, [lazy_cuts] may return violated constraints; a non-empty return
    rejects the candidate, installs the cuts globally, and continues the
    search (the candidate's subtree is re-explored under the new cuts; the
    rest of the batch in flight is re-queued under the unchanged priority
    law, which keeps the trajectory jobs-invariant).
    [node_limit] defaults to 100_000 LP relaxation solves; [budget] adds a
    wall-clock deadline polled once per batch and threaded into each
    relaxation solve — on exhaustion the best incumbent so far is returned
    as [Feasible] (or [Node_limit] when none exists).  Never raises on
    resource exhaustion.
    [branch_priority] groups binaries: among fractional variables, those
    with the smallest priority are branched on first (most-fractional
    within a group); default is one group.
    [upper_bound] primes the incumbent objective for pruning: subtrees that
    cannot beat it are cut, and solutions no better than it are not
    reported — callers supplying a known feasible solution's value should
    fall back to that solution when the outcome is [Infeasible].
    [warm] (default true) enables warm-started relaxations and the
    fixing-set cache; [~warm:false] forces every relaxation to solve cold —
    results are identical either way.
    [presolve] (default true) runs {!Mf_lp.Lp.presolve} once before the
    search: bound tightening with integral rounding plus 0-1 coefficient
    reduction, in place, rows never deleted.  It changes effort, not
    results.
    [cuts] (default true) separates 0-1 knapsack cover cuts at the root
    over a few rounds.  Cover cuts are derived only from rows present at
    entry, hence globally valid under any branching: they change effort,
    never results.
    [pool] shares its domains across the batch relaxation solves; omitted
    (or with 1 job) everything runs inline on the caller.  Results,
    including {!run_stats}, are bit-identical for any pool size. *)
