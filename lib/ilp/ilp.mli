(** 0-1 integer linear programming by branch-and-bound over the
    {!Mf_lp.Lp} relaxation, with lazy-constraint callbacks.

    This is the solver behind the paper's DFT test-path formulation
    (constraints (1)–(4), objective (5)); the lazy callback implements the
    loop-elimination cuts of Sec. 3 (analogous to subtour elimination). *)

type t
type var = Mf_lp.Lp.var

type relation = Mf_lp.Lp.relation = Le | Ge | Eq

type solution = { objective : float; values : float array }
(** [values.(v)] is exactly [0.] or [1.] for binary variables. *)

type outcome =
  | Optimal of solution  (** proven optimal (within node budget semantics) *)
  | Feasible of solution
      (** incumbent found but optimality unproven: the node or wall-clock
          budget truncated the search, or a relaxation came back without a
          certified bound *)
  | Infeasible
  | Node_limit  (** budget exhausted with no incumbent *)

val create : unit -> t

val add_binary : ?obj:float -> t -> var
(** Declare a 0-1 variable with objective coefficient [obj] (minimised). *)

val add_continuous : ?lower:float -> ?upper:float -> ?obj:float -> t -> var

val n_vars : t -> int

val add_row : t -> (float * var) list -> relation -> float -> unit

type lazy_cut = (float * var) list * relation * float

val nodes_explored : t -> int
(** LP relaxations solved during the most recent {!solve} call. *)

val solve :
  ?node_limit:int ->
  ?budget:Mf_util.Budget.t ->
  ?lazy_cuts:(solution -> lazy_cut list) ->
  ?branch_priority:(var -> int) ->
  ?upper_bound:float ->
  t ->
  outcome
(** Best-first branch-and-bound.  Whenever an integral candidate is found,
    [lazy_cuts] may return violated constraints; a non-empty return rejects
    the candidate, installs the cuts globally, and continues the search
    (the candidate's subtree is re-explored under the new cuts).
    [node_limit] defaults to 100_000 LP relaxation solves; [budget] adds a
    wall-clock deadline polled once per node and threaded into each
    relaxation solve — on exhaustion the best incumbent so far is returned
    as [Feasible] (or [Node_limit] when none exists).  Never raises on
    resource exhaustion.
    [branch_priority] groups binaries: among fractional variables, those
    with the smallest priority are branched on first (most-fractional
    within a group); default is one group.
    [upper_bound] primes the incumbent objective for pruning: subtrees that
    cannot beat it are cut, and solutions no better than it are not
    reported — callers supplying a known feasible solution's value should
    fall back to that solution when the outcome is [Infeasible]. *)
