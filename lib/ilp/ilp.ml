module Lp = Mf_lp.Lp
module Heap = Mf_util.Heap

type var = Lp.var

type relation = Lp.relation = Le | Ge | Eq

type t = {
  lp : Lp.t;
  mutable binaries : var list; (* reversed *)
  mutable nodes_explored : int;
}

type solution = { objective : float; values : float array }

type outcome =
  | Optimal of solution
  | Feasible of solution
  | Infeasible
  | Node_limit

type lazy_cut = (float * var) list * relation * float

let create () = { lp = Lp.create (); binaries = []; nodes_explored = 0 }

let nodes_explored t = t.nodes_explored

let add_binary ?(obj = 0.) t =
  let v = Lp.add_var ~lower:0. ~upper:1. ~obj t.lp in
  t.binaries <- v :: t.binaries;
  v

let add_continuous ?(lower = 0.) ?(upper = infinity) ?(obj = 0.) t =
  Lp.add_var ~lower ~upper ~obj t.lp

let n_vars t = Lp.n_vars t.lp

let add_row t terms rel rhs = Lp.add_row t.lp terms rel rhs

let int_tol = 1e-6

(* A node is a set of branching decisions on binary variables.  Best-first
   on the parent LP bound, with a small depth bonus so ties resolve as a
   dive (reaches integral incumbents quickly). *)
type node = { fixings : (var * float) list; bound : float }

let node_priority bound depth = bound -. (1e-7 *. float_of_int depth)

let solve ?(node_limit = 100_000) ?budget ?(lazy_cuts = fun _ -> [])
    ?(branch_priority = fun _ -> 0) ?(upper_bound = infinity) t =
  (* Fault injection: truncate the node budget so callers exercise their
     [Node_limit]/[Feasible] handling on real models. *)
  let node_limit =
    if Mf_util.Chaos.strike Ilp_nodes then min node_limit 2 else node_limit
  in
  let binaries = Array.of_list (List.rev t.binaries) in
  let incumbent = ref None in
  let incumbent_obj = ref upper_bound in
  let heap : node Heap.t = Heap.create () in
  Heap.push heap neg_infinity { fixings = []; bound = neg_infinity };
  let nodes = ref 0 in
  let truncated = ref false in
  (* set when a relaxation came back without a proven bound (budget ran out
     mid-solve, or numerical distress): the search stays sound for
     feasibility but can no longer certify optimality *)
  let weakened = ref false in
  let fix_of fixings v = List.assoc_opt v fixings in
  let most_fractional values =
    let best = ref (-1) in
    let best_prio = ref max_int in
    let best_frac = ref int_tol in
    Array.iter
      (fun v ->
        let x = values.(v) in
        let frac = abs_float (x -. Float.round x) in
        if frac > int_tol then begin
          let prio = branch_priority v in
          if prio < !best_prio || (prio = !best_prio && frac > !best_frac) then begin
            best_prio := prio;
            best_frac := frac;
            best := v
          end
        end)
      binaries;
    !best
  in
  let debug = Sys.getenv_opt "MFDFT_ILP_DEBUG" <> None in
  let t_start = Sys.time () in
  let rec best_first () =
    if !nodes >= node_limit || Mf_util.Budget.over budget then truncated := true
    else
      match Heap.pop heap with
      | None -> ()
      | Some (_, node) ->
        if node.bound < !incumbent_obj -. 1e-9 then begin
          incr nodes;
          if debug && !nodes mod 20 = 0 then
            Printf.eprintf "[ilp] nodes=%d rows=%d vars=%d incumbent=%g elapsed=%.1fs\n%!" !nodes
              (Lp.n_rows t.lp) (Lp.n_vars t.lp) !incumbent_obj (Sys.time () -. t_start);
          let rel = Lp.solve ?budget ~fix:(fix_of node.fixings) t.lp in
          match rel with
          | Lp.Infeasible -> best_first ()
          | Lp.Iter_limit | Lp.Numerical _ ->
            (* distress in one relaxation prunes that subtree rather than
               aborting the whole search; without a proven bound the prune
               is heuristic, so optimality can no longer be certified *)
            weakened := true;
            best_first ()
          | Lp.Unbounded -> failwith "Ilp.solve: LP relaxation unbounded"
          | Lp.Optimal { objective; values } | Lp.Feasible { objective; values } ->
            (match rel with Lp.Feasible _ -> weakened := true | _ -> ());
            if objective >= !incumbent_obj -. 1e-9 then best_first ()
            else begin
              let branch_var = most_fractional values in
              if branch_var < 0 then begin
                (* integral candidate; snap tiny residues *)
                Array.iter (fun v -> values.(v) <- Float.round values.(v)) binaries;
                let candidate = { objective; values } in
                match lazy_cuts candidate with
                | [] ->
                  incumbent := Some candidate;
                  incumbent_obj := objective;
                  best_first ()
                | cuts ->
                  List.iter (fun (terms, rel, rhs) -> add_row t terms rel rhs) cuts;
                  (* re-explore this subproblem under the new cuts *)
                  Heap.push heap objective { node with bound = objective };
                  best_first ()
              end
              else begin
                let child x =
                  { fixings = (branch_var, x) :: node.fixings; bound = objective }
                in
                (* explore the branch matching the fractional value first *)
                let first, second =
                  if values.(branch_var) >= 0.5 then (child 1., child 0.)
                  else (child 0., child 1.)
                in
                let depth = List.length node.fixings + 1 in
                Heap.push heap (node_priority objective depth +. 1e-12) second;
                Heap.push heap (node_priority objective depth) first;
                best_first ()
              end
            end
        end
        else best_first ()
  in
  best_first ();
  t.nodes_explored <- !nodes;
  match !incumbent with
  | Some sol -> if !truncated || !weakened then Feasible sol else Optimal sol
  | None -> if !truncated || !weakened then Node_limit else Infeasible
