module Lp = Mf_lp.Lp
module Heap = Mf_util.Heap
module Domain_pool = Mf_util.Domain_pool

type var = Lp.var

type relation = Lp.relation = Le | Ge | Eq

type run_stats = {
  rs_nodes : int;
  rs_batches : int;
  rs_warm_eligible : int;
  rs_warm_taken : int;
  rs_fallbacks : int;
  rs_cache_hits : int;
  rs_primal_pivots : int;
  rs_dual_pivots : int;
  rs_presolve_fixed : int;
  rs_presolve_tightened : int;
  rs_cover_cuts : int;
}

let zero_stats =
  {
    rs_nodes = 0;
    rs_batches = 0;
    rs_warm_eligible = 0;
    rs_warm_taken = 0;
    rs_fallbacks = 0;
    rs_cache_hits = 0;
    rs_primal_pivots = 0;
    rs_dual_pivots = 0;
    rs_presolve_fixed = 0;
    rs_presolve_tightened = 0;
    rs_cover_cuts = 0;
  }

let add_stats a b =
  {
    rs_nodes = a.rs_nodes + b.rs_nodes;
    rs_batches = a.rs_batches + b.rs_batches;
    rs_warm_eligible = a.rs_warm_eligible + b.rs_warm_eligible;
    rs_warm_taken = a.rs_warm_taken + b.rs_warm_taken;
    rs_fallbacks = a.rs_fallbacks + b.rs_fallbacks;
    rs_cache_hits = a.rs_cache_hits + b.rs_cache_hits;
    rs_primal_pivots = a.rs_primal_pivots + b.rs_primal_pivots;
    rs_dual_pivots = a.rs_dual_pivots + b.rs_dual_pivots;
    rs_presolve_fixed = a.rs_presolve_fixed + b.rs_presolve_fixed;
    rs_presolve_tightened = a.rs_presolve_tightened + b.rs_presolve_tightened;
    rs_cover_cuts = a.rs_cover_cuts + b.rs_cover_cuts;
  }

type t = {
  lp : Lp.t;
  mutable binaries : var list; (* reversed *)
  mutable bin_objs : float list; (* reversed, parallel to [binaries] *)
  mutable cont_obj : bool; (* a continuous variable carries objective weight *)
  mutable nodes_explored : int;
  mutable last_stats : run_stats;
}

type solution = { objective : float; values : float array }

type outcome =
  | Optimal of solution
  | Feasible of solution
  | Infeasible
  | Node_limit
  | Failed of Mf_util.Fail.t

type lazy_cut = (float * var) list * relation * float

(* Process-wide branch-and-bound telemetry, mirroring {!Mf_lp.Simplex.Stats}.
   Under parallel solves every counter is still bumped from the coordinating
   domain only — workers hand their per-relaxation effort back as data and
   the coordinator folds it in batch order — so totals are deterministic for
   any job count.  [warm_eligible] counts non-root nodes that arrived with a
   usable warm basis; [warm_taken] those whose relaxation the dual simplex
   actually re-optimised from it. *)
module Stats = struct
  let nodes = Atomic.make 0
  let warm_eligible = Atomic.make 0
  let warm_taken = Atomic.make 0
  let cache_hits = Atomic.make 0
  let cover_cuts = Atomic.make 0
  let presolve_fixed = Atomic.make 0

  let all = [ nodes; warm_eligible; warm_taken; cache_hits; cover_cuts; presolve_fixed ]
  let reset () = List.iter (fun a -> Atomic.set a 0) all
end

let create () =
  {
    lp = Lp.create ();
    binaries = [];
    bin_objs = [];
    cont_obj = false;
    nodes_explored = 0;
    last_stats = zero_stats;
  }

let nodes_explored t = t.nodes_explored
let last_stats t = t.last_stats

let add_binary ?(obj = 0.) t =
  let v = Lp.add_var ~lower:0. ~upper:1. ~obj t.lp in
  t.binaries <- v :: t.binaries;
  t.bin_objs <- obj :: t.bin_objs;
  v

let add_continuous ?(lower = 0.) ?(upper = infinity) ?(obj = 0.) t =
  if obj <> 0. then t.cont_obj <- true;
  Lp.add_var ~lower ~upper ~obj t.lp

let n_vars t = Lp.n_vars t.lp

let add_row t terms rel rhs = Lp.add_row t.lp terms rel rhs

let int_tol = 1e-6

(* A node is a set of branching decisions on binary variables, plus the
   optimal basis of the relaxation that spawned it: after the one bound
   change of a branching step the parent basis stays dual-feasible, so the
   child's relaxation re-optimises warmly with the dual simplex instead of
   running two cold phases.  Best-first on the parent LP bound, with a
   small depth bonus so ties resolve as a dive (reaches integral incumbents
   quickly); the heap's stable sequence key breaks remaining ties in push
   order, which makes the pop sequence a pure function of the search
   trajectory — the determinism law the parallel batches rely on. *)
type node = { fixings : (var * float) list; bound : float; parent : Lp.basis option }

let node_priority bound depth = bound -. (1e-7 *. float_of_int depth)

(* Relaxation results cached per solve, keyed by the canonical fixing set.
   An entry whose row count still matches answers an identical subproblem
   outright (no LP solve); one made stale by cut installation still seeds
   the re-solve with its basis — the cut rows extend it block-triangularly
   inside {!Mf_lp.Lp}.  The table lives on the coordinating domain:
   lookups happen at batch assembly and insertions when results are folded
   back in batch order, so the hot path carries no locks and the hit
   pattern (hence [rs_cache_hits]) is identical for any job count. *)
type cache_entry = {
  ce_rows : int;
  ce_obj : float;
  ce_values : float array;
  ce_basis : Lp.basis option;
}

let cache_cap = 1024

let cache_key fixings =
  let sorted = List.sort (fun (a, _) (b, _) -> compare (a : int) b) fixings in
  String.concat ";"
    (List.map (fun (v, x) -> Printf.sprintf "%d:%.0f" v x) sorted)

(* Chaos [ilp-worker] strikes surface as this exception inside a worker
   task; the batch drains fully before it is rethrown as one typed
   failure. *)
exception Worker_strike

(* Up to [bmax] open nodes are popped per round and their relaxations
   solved concurrently; everything else — pruning, incumbent updates,
   branching, cut installation — happens sequentially on the coordinator
   in batch order.  The batch size depends only on the heap state, never
   on the job count, so the search trajectory is jobs-invariant. *)
let bmax = 16

(* 0-1 knapsack cover cuts, separated at the root.  A row all of whose
   variables are binary is complemented into knapsack form
   sum a'_j y_j <= b' with a'_j > 0; a greedy minimal cover C with
   sum_{C} a'_j > b' yields the valid cut sum_{C} y_j <= |C| - 1,
   strengthened to its extension E(C) = C + every item at least as heavy
   as C's heaviest (sum_{E(C)} y_j <= |C| - 1 stays valid and dominates
   the plain cover), then mapped back through the complementation.
   Validity needs only integrality of the row's variables, so the cuts
   hold globally under any branching. *)
let separate_covers lp ~is_binary ~n_rows ~seen ~max_cuts values =
  let cuts = ref [] in
  let n_found = ref 0 in
  let try_form terms b =
    let items = List.filter (fun (c, _) -> abs_float c > 1e-12) terms in
    if items <> [] && List.for_all (fun (_, v) -> is_binary v) items then begin
      (* complement negative coefficients: y = 1 - x *)
      let b' =
        List.fold_left (fun acc (c, _) -> if c < 0. then acc -. c else acc) b items
      in
      let knap =
        List.map
          (fun (c, v) ->
            let y = if c > 0. then values.(v) else 1. -. values.(v) in
            (abs_float c, y, v, c > 0.))
          items
      in
      let total = List.fold_left (fun acc (m, _, _, _) -> acc +. m) 0. knap in
      if b' > 1e-9 && total > b' +. 1e-6 then begin
        (* greedy cover: items by decreasing fractional value, ties toward
           the heavier coefficient then the smaller variable — all
           deterministic keys *)
        let sorted =
          List.stable_sort
            (fun (m1, y1, v1, _) (m2, y2, v2, _) ->
              if y1 <> y2 then compare y2 y1
              else if m1 <> m2 then compare m2 m1
              else compare (v1 : int) v2)
            knap
        in
        let acc = ref 0. in
        let sel = ref [] in
        List.iter
          (fun ((m, _, _, _) as it) ->
            if !acc <= b' +. 1e-9 then begin
              sel := it :: !sel;
              acc := !acc +. m
            end)
          sorted;
        if !acc > b' +. 1e-9 then begin
          (* minimalise: drop members (least fractional first — the reverse
             of selection order) while what remains still overflows *)
          let cover =
            List.fold_left
              (fun kept ((m, _, _, _) as it) ->
                if !acc -. m > b' +. 1e-9 then begin
                  acc := !acc -. m;
                  kept
                end
                else it :: kept)
              [] !sel
          in
          let size = List.length cover in
          (* extended cover: anything at least as heavy as the cover's
             heaviest member joins the left-hand side for free *)
          let a_max = List.fold_left (fun a (m, _, _, _) -> Float.max a m) 0. cover in
          let in_cover v = List.exists (fun (_, _, w, _) -> w = v) cover in
          let extended =
            cover
            @ List.filter
                (fun (m, _, v, _) -> m >= a_max -. 1e-9 && not (in_cover v))
                knap
          in
          let lhs = List.fold_left (fun s (_, y, _, _) -> s +. y) 0. extended in
          if lhs > float_of_int (size - 1) +. 0.02 then begin
            let key =
              String.concat ";"
                (List.map
                   (fun (_, _, v, pos) -> Printf.sprintf "%c%d" (if pos then '+' else '-') v)
                   (List.sort
                      (fun (_, _, v1, _) (_, _, v2, _) -> compare (v1 : int) v2)
                      extended))
            in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              let n_neg =
                List.fold_left (fun k (_, _, _, pos) -> if pos then k else k + 1) 0 extended
              in
              let cut_terms =
                List.map (fun (_, _, v, pos) -> ((if pos then 1. else -1.), v)) extended
              in
              cuts := (cut_terms, Le, float_of_int (size - 1 - n_neg)) :: !cuts;
              incr n_found
            end
          end
        end
      end
    end
  in
  let i = ref 0 in
  while !i < n_rows && !n_found < max_cuts do
    let terms, rel, rhs = Lp.row lp !i in
    (match rel with
     | Le -> try_form terms rhs
     | Ge -> try_form (List.map (fun (c, v) -> (-.c, v)) terms) (-.rhs)
     | Eq -> ());
    incr i
  done;
  List.rev !cuts

let solve ?(node_limit = 100_000) ?budget ?(lazy_cuts = fun _ -> [])
    ?(branch_priority = fun _ -> 0) ?(upper_bound = infinity) ?(warm = true)
    ?(presolve = true) ?(cuts = true) ?pool t =
  (* Fault injection: truncate the node budget so callers exercise their
     [Node_limit]/[Feasible] handling on real models. *)
  let node_limit =
    if Mf_util.Chaos.strike Ilp_nodes then min node_limit 2 else node_limit
  in
  let binaries = Array.of_list (List.rev t.binaries) in
  let bin_objs = Array.of_list (List.rev t.bin_objs) in
  let is_binary_arr = Array.make (max 1 (Lp.n_vars t.lp)) false in
  Array.iter (fun v -> is_binary_arr.(v) <- true) binaries;
  let is_binary v = v >= 0 && v < Array.length is_binary_arr && is_binary_arr.(v) in
  let stats = ref zero_stats in
  let nodes = ref 0 in
  let finish outcome =
    t.nodes_explored <- !nodes;
    t.last_stats <- !stats;
    Mf_util.Prof.add_count "ilp.solves" 1;
    Mf_util.Prof.add_count "ilp.nodes" !stats.rs_nodes;
    Mf_util.Prof.add_count "ilp.batches" !stats.rs_batches;
    Mf_util.Prof.add_count "ilp.cover_cuts" !stats.rs_cover_cuts;
    outcome
  in
  (* ---- presolve: shrink the tree before growing it ---- *)
  let ps_infeasible =
    if not presolve then false
    else begin
      let ps = Lp.presolve ~integer:is_binary t.lp in
      ignore (Atomic.fetch_and_add Stats.presolve_fixed ps.Lp.ps_fixed);
      stats :=
        {
          !stats with
          rs_presolve_fixed = ps.Lp.ps_fixed;
          rs_presolve_tightened = ps.Lp.ps_tightened + ps.Lp.ps_coeffs;
        };
      ps.Lp.ps_infeasible
    end
  in
  if ps_infeasible then finish Infeasible
  else begin
    let incumbent = ref None in
    let incumbent_obj = ref upper_bound in
    let heap : node Heap.t = Heap.create () in
    let next_seq = ref 0 in
    let push_node node =
      Heap.push_seq heap
        (node_priority node.bound (List.length node.fixings))
        !next_seq node;
      incr next_seq
    in
    let truncated = ref false in
    (* set when a relaxation came back without a proven bound (budget ran
       out mid-solve, or numerical distress): the search stays sound for
       feasibility but can no longer certify optimality *)
    let weakened = ref false in
    let aborted = ref None in
    let abort f = if !aborted = None then aborted := Some f in
    let cache : (string, cache_entry) Hashtbl.t = Hashtbl.create 64 in
    let fix_of fixings v = List.assoc_opt v fixings in
    let most_fractional values =
      let best = ref (-1) in
      let best_prio = ref max_int in
      let best_frac = ref int_tol in
      Array.iter
        (fun v ->
          let x = values.(v) in
          let frac = abs_float (x -. Float.round x) in
          if frac > int_tol then begin
            let prio = branch_priority v in
            if prio < !best_prio || (prio = !best_prio && frac > !best_frac) then begin
              best_prio := prio;
              best_frac := frac;
              best := v
            end
          end)
        binaries;
      !best
    in
    let fold_info (info : Lp.info) =
      stats :=
        {
          !stats with
          rs_primal_pivots = !stats.rs_primal_pivots + info.Lp.primal_pivots;
          rs_dual_pivots = !stats.rs_dual_pivots + info.Lp.dual_pivots;
          rs_fallbacks = (!stats.rs_fallbacks + if info.Lp.fell_back then 1 else 0);
        };
      if info.Lp.warm then begin
        Atomic.incr Stats.warm_taken;
        stats := { !stats with rs_warm_taken = !stats.rs_warm_taken + 1 }
      end
    in
    let count_node () =
      incr nodes;
      Atomic.incr Stats.nodes;
      stats := { !stats with rs_nodes = !stats.rs_nodes + 1 }
    in
    let cache_store key rows_at_solve rel basis =
      match rel with
      | Lp.Optimal { objective; values } when warm && Hashtbl.length cache < cache_cap ->
        Hashtbl.replace cache key
          {
            ce_rows = rows_at_solve;
            ce_obj = objective;
            ce_values = Array.copy values;
            ce_basis = basis;
          }
      | _ -> ()
    in
    (* one relaxation, executed on whichever domain picks the task up; pure
       in the (model, fixings, seed basis) inputs *)
    let relax_task fixings seed () =
      if Mf_util.Chaos.strike Ilp_worker then raise Worker_strike;
      Lp.solve_b ?budget ~fix:(fix_of fixings) ?warm:seed t.lp
    in
    let debug = Sys.getenv_opt "MFDFT_ILP_DEBUG" <> None in
    let t_start = Sys.time () in
    (* ---- root: cover-cut rounds ---- *)
    let root = ref { fixings = []; bound = neg_infinity; parent = None } in
    let root_pushable = ref true in
    let root_infeasible = ref false in
    if cuts then begin
      (* cover cuts persist in the builder, so they must be valid for the
         unrestricted model: separate only from the rows present at entry,
         never from cuts installed by earlier rounds.  (An objective-cutoff
         row from [upper_bound] was tried here and measured out: the primed
         incumbent already prunes the same subtrees, while branching on the
         cutoff-restricted root solution sent some covering models into
         >10x dual-pivot blow-ups.) *)
      let seen = Hashtbl.create 32 in
      let n_rows0 = Lp.n_rows t.lp in
      let basis = ref None in
      let rounds = ref 0 in
      let continue_ = ref true in
      while !continue_ && !rounds < 6 && !aborted = None && not !root_infeasible do
        incr rounds;
        if !nodes >= node_limit || Mf_util.Budget.over budget then begin
          truncated := true;
          continue_ := false
        end
        else begin
          count_node ();
          let rel, b, info = Lp.solve_b ?budget ?warm:!basis t.lp in
          fold_info info;
          match rel with
          | Lp.Optimal { objective; values } ->
            basis := (match b with Some _ -> b | None -> !basis);
            root := { fixings = []; bound = objective; parent = !basis };
            let fresh =
              separate_covers t.lp ~is_binary ~n_rows:n_rows0 ~seen ~max_cuts:16 values
            in
            if fresh = [] then begin
              (* settled: let the main loop recall this relaxation from the
                 cache instead of re-solving it *)
              if warm then
                cache_store (cache_key []) (Lp.n_rows t.lp)
                  (Lp.Optimal { objective; values })
                  !basis;
              continue_ := false
            end
            else begin
              List.iter (fun (terms, rel, rhs) -> add_row t terms rel rhs) fresh;
              let n = List.length fresh in
              ignore (Atomic.fetch_and_add Stats.cover_cuts n);
              stats := { !stats with rs_cover_cuts = !stats.rs_cover_cuts + n }
            end
          | Lp.Infeasible -> root_infeasible := true
          | Lp.Unbounded ->
            abort (Mf_util.Fail.v ~nodes:!nodes Mf_util.Fail.Ilp "LP relaxation unbounded")
          | Lp.Iter_limit | Lp.Numerical _ ->
            weakened := true;
            root_pushable := false;
            continue_ := false
          | Lp.Feasible _ ->
            weakened := true;
            continue_ := false
        end
      done
    end;
    if !root_pushable && not !root_infeasible && !aborted = None then push_node !root;
    (* ---- batched best-first search ---- *)
    let jobs = match pool with None -> 1 | Some p -> Domain_pool.jobs p in
    let batch_no = ref 0 in
    let rec loop () =
      if !aborted <> None then ()
      else if !nodes >= node_limit || Mf_util.Budget.over budget then truncated := true
      else if Heap.is_empty heap then ()
      else begin
        let cap = min bmax (node_limit - !nodes) in
        let picked = ref [] in
        let n_picked = ref 0 in
        while !n_picked < cap && not (Heap.is_empty heap) do
          match Heap.pop_seq heap with
          | None -> ()
          | Some (_, _, node) ->
            if node.bound < !incumbent_obj -. 1e-9 then begin
              incr n_picked;
              picked := node :: !picked
            end
        done;
        let batch = Array.of_list (List.rev !picked) in
        if Array.length batch = 0 then loop ()
        else begin
          incr batch_no;
          stats := { !stats with rs_batches = !stats.rs_batches + 1 };
          Array.iter (fun _ -> count_node ()) batch;
          if debug then
            Printf.eprintf
              "[ilp] batch=%d size=%d nodes=%d rows=%d incumbent=%g elapsed=%.1fs\n%!"
              !batch_no (Array.length batch) !nodes (Lp.n_rows t.lp) !incumbent_obj
              (Sys.time () -. t_start);
          let rows_at_dispatch = Lp.n_rows t.lp in
          (* cache consultation and warm-seed selection stay on the
             coordinator, in batch order *)
          let prepared =
            Array.map
              (fun node ->
                let key = if warm then cache_key node.fixings else "" in
                let cached = if warm then Hashtbl.find_opt cache key else None in
                match cached with
                | Some ce when ce.ce_rows = rows_at_dispatch ->
                  Atomic.incr Stats.cache_hits;
                  stats := { !stats with rs_cache_hits = !stats.rs_cache_hits + 1 };
                  `Cached
                    ( Lp.Optimal
                        { objective = ce.ce_obj; values = Array.copy ce.ce_values },
                      ce.ce_basis )
                | cached ->
                  let seed =
                    if not warm then None
                    else
                      match cached with
                      | Some { ce_basis = Some b; _ } -> Some b (* stale: same fixings *)
                      | _ -> node.parent
                  in
                  if node.fixings <> [] && seed <> None then begin
                    Atomic.incr Stats.warm_eligible;
                    stats := { !stats with rs_warm_eligible = !stats.rs_warm_eligible + 1 }
                  end;
                  `Solve (key, seed))
              batch
          in
          (* fan the uncached relaxations out; harvest in batch order so a
             worker failure is drained, not raced *)
          let solved =
            match pool with
            | Some p when jobs > 1 ->
              Lp.prepare t.lp;
              let futures =
                Array.mapi
                  (fun i -> function
                    | `Cached _ -> None
                    | `Solve (_, seed) ->
                      Some (Domain_pool.submit p (relax_task batch.(i).fixings seed)))
                  prepared
              in
              Array.map
                (Option.map (fun fut ->
                     match Domain_pool.await p fut with
                     | r -> Ok r
                     | exception e -> Error e))
                futures
            | _ ->
              Array.mapi
                (fun i -> function
                  | `Cached _ -> None
                  | `Solve (_, seed) -> (
                    match relax_task batch.(i).fixings seed () with
                    | r -> Some (Ok r)
                    | exception e -> Some (Error e)))
                prepared
          in
          (* sequential reduction, strictly in batch order *)
          let cuts_installed = ref false in
          Array.iteri
            (fun i node ->
              if !aborted = None then
                if !cuts_installed then begin
                  (* the model grew under this in-flight relaxation: fold
                     the effort spent (the batch is jobs-invariant, so the
                     totals stay deterministic), discard the stale result
                     and re-queue the node under the same priority law *)
                  (match solved.(i) with
                   | Some (Ok (_, _, info)) -> fold_info info
                   | Some (Error _) | None -> ());
                  push_node node
                end
                else begin
                  let outcome =
                    match (prepared.(i), solved.(i)) with
                    | `Cached (rel, basis), _ -> Some (rel, basis)
                    | `Solve (key, _), Some (Ok (rel, basis, info)) ->
                      fold_info info;
                      cache_store key rows_at_dispatch rel basis;
                      Some (rel, basis)
                    | `Solve _, Some (Error e) ->
                      abort
                        (Mf_util.Fail.v ~nodes:!nodes Mf_util.Fail.Ilp
                           (Printf.sprintf "relaxation worker failed: %s"
                              (match e with
                               | Worker_strike -> "chaos ilp-worker strike"
                               | e -> Printexc.to_string e)));
                      None
                    | `Solve _, None -> assert false
                  in
                  match outcome with
                  | None -> ()
                  | Some (rel, basis) -> (
                    match rel with
                    | Lp.Infeasible -> ()
                    | Lp.Iter_limit | Lp.Numerical _ ->
                      (* distress in one relaxation prunes that subtree
                         rather than aborting the whole search; without a
                         proven bound the prune is heuristic, so optimality
                         can no longer be certified *)
                      weakened := true
                    | Lp.Unbounded ->
                      (* an unbounded relaxation is a model defect, not a
                         resource outcome: surface it as a typed failure so
                         callers can degrade instead of crashing *)
                      abort
                        (Mf_util.Fail.v ~nodes:!nodes Mf_util.Fail.Ilp
                           "LP relaxation unbounded")
                    | Lp.Optimal { objective; values } | Lp.Feasible { objective; values }
                      ->
                      (match rel with Lp.Feasible _ -> weakened := true | _ -> ());
                      if objective >= !incumbent_obj -. 1e-9 then ()
                      else begin
                        let branch_var = most_fractional values in
                        if branch_var < 0 then begin
                          (* integral candidate: snap tiny residues and make
                             the reported objective a function of the snapped
                             solution rather than of the LP's float path to it
                             — exact when the objective lives entirely on the
                             binaries (integral data sums exactly), a delta
                             correction otherwise *)
                          let delta = ref 0. in
                          Array.iteri
                            (fun i v ->
                              let x = values.(v) in
                              let r = Float.round x in
                              if r <> x then begin
                                values.(v) <- r;
                                delta := !delta +. (bin_objs.(i) *. (r -. x))
                              end)
                            binaries;
                          let objective =
                            if t.cont_obj then objective +. !delta
                            else begin
                              let o = ref 0. in
                              Array.iteri
                                (fun i v -> o := !o +. (bin_objs.(i) *. values.(v)))
                                binaries;
                              !o
                            end
                          in
                          let candidate = { objective; values } in
                          match lazy_cuts candidate with
                          | [] ->
                            incumbent := Some candidate;
                            incumbent_obj := objective
                          | cs ->
                            List.iter (fun (terms, rel, rhs) -> add_row t terms rel rhs) cs;
                            (* re-explore this subproblem under the new
                               cuts, seeded by the basis just proved optimal
                               for it (the cut rows only extend it); the
                               rest of the batch re-queues unchanged *)
                            cuts_installed := true;
                            push_node
                              {
                                node with
                                bound = objective;
                                parent =
                                  (match basis with Some _ -> basis | None -> node.parent);
                              }
                        end
                        else begin
                          let child x =
                            {
                              fixings = (branch_var, x) :: node.fixings;
                              bound = objective;
                              parent = basis;
                            }
                          in
                          (* explore the branch matching the fractional
                             value first: pushed first, so the stable
                             sequence key pops it first among equal bounds *)
                          let first, second =
                            if values.(branch_var) >= 0.5 then (child 1., child 0.)
                            else (child 0., child 1.)
                          in
                          push_node first;
                          push_node second
                        end
                      end)
                end)
            batch;
          loop ()
        end
      end
    in
    if !aborted = None && not !root_infeasible then loop ();
    match !aborted with
    | Some f -> finish (Failed f)
    | None -> (
      if !root_infeasible then finish Infeasible
      else
        match !incumbent with
        | Some sol ->
          if !truncated || !weakened then finish (Feasible sol) else finish (Optimal sol)
        | None -> if !truncated || !weakened then finish Node_limit else finish Infeasible)
  end
