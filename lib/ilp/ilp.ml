module Lp = Mf_lp.Lp
module Heap = Mf_util.Heap

type var = Lp.var

type relation = Lp.relation = Le | Ge | Eq

type run_stats = {
  rs_nodes : int;
  rs_warm_eligible : int;
  rs_warm_taken : int;
  rs_fallbacks : int;
  rs_cache_hits : int;
  rs_primal_pivots : int;
  rs_dual_pivots : int;
}

let zero_stats =
  {
    rs_nodes = 0;
    rs_warm_eligible = 0;
    rs_warm_taken = 0;
    rs_fallbacks = 0;
    rs_cache_hits = 0;
    rs_primal_pivots = 0;
    rs_dual_pivots = 0;
  }

let add_stats a b =
  {
    rs_nodes = a.rs_nodes + b.rs_nodes;
    rs_warm_eligible = a.rs_warm_eligible + b.rs_warm_eligible;
    rs_warm_taken = a.rs_warm_taken + b.rs_warm_taken;
    rs_fallbacks = a.rs_fallbacks + b.rs_fallbacks;
    rs_cache_hits = a.rs_cache_hits + b.rs_cache_hits;
    rs_primal_pivots = a.rs_primal_pivots + b.rs_primal_pivots;
    rs_dual_pivots = a.rs_dual_pivots + b.rs_dual_pivots;
  }

type t = {
  lp : Lp.t;
  mutable binaries : var list; (* reversed *)
  mutable nodes_explored : int;
  mutable last_stats : run_stats;
}

type solution = { objective : float; values : float array }

type outcome =
  | Optimal of solution
  | Feasible of solution
  | Infeasible
  | Node_limit
  | Failed of Mf_util.Fail.t

type lazy_cut = (float * var) list * relation * float

(* Process-wide branch-and-bound telemetry, mirroring {!Mf_lp.Simplex.Stats}:
   atomic counters bumped from any domain, read/reset by [bench -- perf].
   [warm_eligible] counts non-root nodes that arrived with a usable warm
   basis; [warm_taken] those whose relaxation the dual simplex actually
   re-optimised from it. *)
module Stats = struct
  let nodes = Atomic.make 0
  let warm_eligible = Atomic.make 0
  let warm_taken = Atomic.make 0
  let cache_hits = Atomic.make 0

  let all = [ nodes; warm_eligible; warm_taken; cache_hits ]
  let reset () = List.iter (fun a -> Atomic.set a 0) all
end

let create () =
  { lp = Lp.create (); binaries = []; nodes_explored = 0; last_stats = zero_stats }

let nodes_explored t = t.nodes_explored
let last_stats t = t.last_stats

let add_binary ?(obj = 0.) t =
  let v = Lp.add_var ~lower:0. ~upper:1. ~obj t.lp in
  t.binaries <- v :: t.binaries;
  v

let add_continuous ?(lower = 0.) ?(upper = infinity) ?(obj = 0.) t =
  Lp.add_var ~lower ~upper ~obj t.lp

let n_vars t = Lp.n_vars t.lp

let add_row t terms rel rhs = Lp.add_row t.lp terms rel rhs

let int_tol = 1e-6

(* A node is a set of branching decisions on binary variables, plus the
   optimal basis of the relaxation that spawned it: after the one bound
   change of a branching step the parent basis stays dual-feasible, so the
   child's relaxation re-optimises warmly with the dual simplex instead of
   running two cold phases.  Best-first on the parent LP bound, with a
   small depth bonus so ties resolve as a dive (reaches integral incumbents
   quickly). *)
type node = { fixings : (var * float) list; bound : float; parent : Lp.basis option }

let node_priority bound depth = bound -. (1e-7 *. float_of_int depth)

(* Relaxation results cached per solve, keyed by the canonical fixing set.
   An entry whose row count still matches answers an identical subproblem
   outright (no LP solve); one made stale by lazy cuts still seeds the
   re-solve with its basis — the cut rows extend it block-triangularly
   inside {!Mf_lp.Lp}.  Values are copied in and out because branching
   rounds candidate arrays in place. *)
type cache_entry = {
  ce_rows : int;
  ce_obj : float;
  ce_values : float array;
  ce_basis : Lp.basis option;
}

let cache_cap = 1024

let cache_key fixings =
  let sorted = List.sort (fun (a, _) (b, _) -> compare (a : int) b) fixings in
  String.concat ";"
    (List.map (fun (v, x) -> Printf.sprintf "%d:%.0f" v x) sorted)

exception Abort of Mf_util.Fail.t

let solve ?(node_limit = 100_000) ?budget ?(lazy_cuts = fun _ -> [])
    ?(branch_priority = fun _ -> 0) ?(upper_bound = infinity) ?(warm = true) t =
  (* Fault injection: truncate the node budget so callers exercise their
     [Node_limit]/[Feasible] handling on real models. *)
  let node_limit =
    if Mf_util.Chaos.strike Ilp_nodes then min node_limit 2 else node_limit
  in
  let binaries = Array.of_list (List.rev t.binaries) in
  let incumbent = ref None in
  let incumbent_obj = ref upper_bound in
  let heap : node Heap.t = Heap.create () in
  Heap.push heap neg_infinity { fixings = []; bound = neg_infinity; parent = None };
  let nodes = ref 0 in
  let truncated = ref false in
  (* set when a relaxation came back without a proven bound (budget ran out
     mid-solve, or numerical distress): the search stays sound for
     feasibility but can no longer certify optimality *)
  let weakened = ref false in
  let stats = ref zero_stats in
  let cache : (string, cache_entry) Hashtbl.t = Hashtbl.create 64 in
  let fix_of fixings v = List.assoc_opt v fixings in
  let most_fractional values =
    let best = ref (-1) in
    let best_prio = ref max_int in
    let best_frac = ref int_tol in
    Array.iter
      (fun v ->
        let x = values.(v) in
        let frac = abs_float (x -. Float.round x) in
        if frac > int_tol then begin
          let prio = branch_priority v in
          if prio < !best_prio || (prio = !best_prio && frac > !best_frac) then begin
            best_prio := prio;
            best_frac := frac;
            best := v
          end
        end)
      binaries;
    !best
  in
  (* Solve (or recall) one node's relaxation.  Returns the Lp result plus
     the basis to hand to children. *)
  let relax node =
    let key = if warm then cache_key node.fixings else "" in
    let cached = if warm then Hashtbl.find_opt cache key else None in
    match cached with
    | Some ce when ce.ce_rows = Lp.n_rows t.lp ->
      Atomic.incr Stats.cache_hits;
      stats := { !stats with rs_cache_hits = !stats.rs_cache_hits + 1 };
      (Lp.Optimal { objective = ce.ce_obj; values = Array.copy ce.ce_values }, ce.ce_basis)
    | cached ->
      let seed =
        if not warm then None
        else
          match cached with
          | Some { ce_basis = Some b; _ } -> Some b (* stale entry: same fixings *)
          | _ -> node.parent
      in
      if node.fixings <> [] && seed <> None then begin
        Atomic.incr Stats.warm_eligible;
        stats := { !stats with rs_warm_eligible = !stats.rs_warm_eligible + 1 }
      end;
      let rel, basis, info =
        Lp.solve_b ?budget ~fix:(fix_of node.fixings) ?warm:seed t.lp
      in
      stats :=
        {
          !stats with
          rs_primal_pivots = !stats.rs_primal_pivots + info.Lp.primal_pivots;
          rs_dual_pivots = !stats.rs_dual_pivots + info.Lp.dual_pivots;
          rs_fallbacks = (!stats.rs_fallbacks + if info.Lp.fell_back then 1 else 0);
        };
      if info.Lp.warm then begin
        Atomic.incr Stats.warm_taken;
        stats := { !stats with rs_warm_taken = !stats.rs_warm_taken + 1 }
      end;
      (match rel with
       | Lp.Optimal { objective; values } when warm && Hashtbl.length cache < cache_cap
         ->
         Hashtbl.replace cache key
           {
             ce_rows = Lp.n_rows t.lp;
             ce_obj = objective;
             ce_values = Array.copy values;
             ce_basis = basis;
           }
       | _ -> ());
      (rel, basis)
  in
  let debug = Sys.getenv_opt "MFDFT_ILP_DEBUG" <> None in
  let t_start = Sys.time () in
  let rec best_first () =
    if !nodes >= node_limit || Mf_util.Budget.over budget then truncated := true
    else
      match Heap.pop heap with
      | None -> ()
      | Some (_, node) ->
        if node.bound < !incumbent_obj -. 1e-9 then begin
          incr nodes;
          Atomic.incr Stats.nodes;
          stats := { !stats with rs_nodes = !stats.rs_nodes + 1 };
          if debug && !nodes mod 20 = 0 then
            Printf.eprintf "[ilp] nodes=%d rows=%d vars=%d incumbent=%g elapsed=%.1fs\n%!" !nodes
              (Lp.n_rows t.lp) (Lp.n_vars t.lp) !incumbent_obj (Sys.time () -. t_start);
          let rel, basis = relax node in
          match rel with
          | Lp.Infeasible -> best_first ()
          | Lp.Iter_limit | Lp.Numerical _ ->
            (* distress in one relaxation prunes that subtree rather than
               aborting the whole search; without a proven bound the prune
               is heuristic, so optimality can no longer be certified *)
            weakened := true;
            best_first ()
          | Lp.Unbounded ->
            (* an unbounded relaxation is a model defect, not a resource
               outcome: surface it as a typed failure so callers can degrade
               instead of crashing *)
            raise
              (Abort
                 (Mf_util.Fail.v ~nodes:!nodes Mf_util.Fail.Ilp
                    "LP relaxation unbounded"))
          | Lp.Optimal { objective; values } | Lp.Feasible { objective; values } ->
            (match rel with Lp.Feasible _ -> weakened := true | _ -> ());
            if objective >= !incumbent_obj -. 1e-9 then best_first ()
            else begin
              let branch_var = most_fractional values in
              if branch_var < 0 then begin
                (* integral candidate; snap tiny residues *)
                Array.iter (fun v -> values.(v) <- Float.round values.(v)) binaries;
                let candidate = { objective; values } in
                match lazy_cuts candidate with
                | [] ->
                  incumbent := Some candidate;
                  incumbent_obj := objective;
                  best_first ()
                | cuts ->
                  List.iter (fun (terms, rel, rhs) -> add_row t terms rel rhs) cuts;
                  (* re-explore this subproblem under the new cuts, seeded by
                     the basis just proved optimal for it (the cut rows only
                     extend it); same priority law as branching pushes *)
                  let depth = List.length node.fixings in
                  Heap.push heap
                    (node_priority objective depth)
                    {
                      node with
                      bound = objective;
                      parent = (match basis with Some _ -> basis | None -> node.parent);
                    };
                  best_first ()
              end
              else begin
                let child x =
                  { fixings = (branch_var, x) :: node.fixings; bound = objective;
                    parent = basis }
                in
                (* explore the branch matching the fractional value first *)
                let first, second =
                  if values.(branch_var) >= 0.5 then (child 1., child 0.)
                  else (child 0., child 1.)
                in
                let depth = List.length node.fixings + 1 in
                Heap.push heap (node_priority objective depth +. 1e-12) second;
                Heap.push heap (node_priority objective depth) first;
                best_first ()
              end
            end
        end
        else best_first ()
  in
  let failure =
    match best_first () with () -> None | exception Abort f -> Some f
  in
  t.nodes_explored <- !nodes;
  t.last_stats <- !stats;
  match failure with
  | Some f -> Failed f
  | None -> (
    match !incumbent with
    | Some sol -> if !truncated || !weakened then Feasible sol else Optimal sol
    | None -> if !truncated || !weakened then Node_limit else Infeasible)
