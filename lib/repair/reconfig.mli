(** Online fault-adaptive retest: incremental repair of a deployed test
    suite when field faults appear, with independent re-certification.

    Given a chip, its certified single-source/single-meter suite and a set
    of faults observed (or injected) on the deployed chip, {!repair}:

    + compiles the faults into a {!Mf_faults.Pressure.context} and drops
      exactly the vectors the context malforms — the minimal damage set;
    + re-measures coverage on the degraded chip over the remaining fault
      universe and splits the escapes into {e provably untestable}
      (waived, by the same sound structural criteria the verifier audits
      with) and {e coverable};
    + regenerates confirmed candidate vectors per coverable fault (fanned
      out across a domain pool, deterministically) and picks the fewest
      that cover every escape with a set-cover ILP on the warm-started
      dual-simplex core — never re-running the from-scratch codesign;
    + degrades along a typed ladder when the incremental path falls short:
      greedy cover on ILP budget exhaustion, minimal control-line
      {e unsharing} (via [?sharing]), one full re-solve of the suite on
      the degraded chip, every step recorded in [result.degradations];
    + loops while [?more_faults] reports new faults arriving mid-repair
      (bounded by [params.max_rounds]);
    + re-certifies through the independent [Mf_verify] layer: the result
      carries a {!Mf_verify.Cert.t} with the fault context and the audited
      waivers, plus its verification diagnostics — a repair that cannot be
      certified is a typed [Error], never a silent partial artifact.

    Results are deterministic and independent of [params.jobs]: the engine
    draws no random numbers, candidate generation is per-fault pure, and
    the domain-pool fan-outs preserve input order. *)

type params = {
  seed : int;  (** echoed into checkpoints; the engine itself draws no rng *)
  jobs : int;  (** domains for candidate generation / detect-matrix fan-out *)
  node_limit : int;  (** set-cover ILP node budget per round *)
  max_rounds : int;  (** fault-escalation bound *)
}

val default_params : params

type degradation =
  | Dropped_vectors of int  (** vectors the fault context malformed *)
  | Greedy_cover  (** set-cover ILP exhausted; greedy cover shipped *)
  | Unshared of int
      (** this many control-sharing assignments were dropped to make
          stranded faults repairable *)
  | Full_resolve  (** incremental repair fell back to a full suite re-solve *)
  | Budget_exhausted  (** wall-clock budget ran out; result still certifies *)

val degradation_to_string : degradation -> string

type checkpoint = {
  path : string;  (** snapshot file, written atomically (tmp + rename) *)
  every : int;  (** save after every [every] rounds; [0] = only on stop *)
  resume : bool;
      (** load [path] first and continue from it; a missing or corrupt
          file is a typed error, never a silent fresh start *)
  stop_after : int option;
      (** save and abort (typed error naming the checkpoint) after this
          many completed rounds — the kill half of kill/resume tests *)
}

type stats = {
  rounds : int;  (** repair rounds executed (≥ 1; > 1 under escalation) *)
  damaged : int;  (** vectors dropped as malformed under the context *)
  reused : int;  (** vectors of the incoming suite kept verbatim *)
  added : int;  (** repair vectors added by the cover *)
  candidates : int;  (** confirmed candidates generated *)
  solver : Mf_ilp.Ilp.run_stats;  (** set-cover ILP effort, all rounds *)
  runtime : float;  (** wall-clock seconds *)
}

type result = {
  chip : Mf_arch.Chip.t;
      (** the repaired-for chip; differs from the input only in control
          wiring when unsharing ran *)
  faults : Mf_faults.Fault.t list;  (** full fault context, escalations included *)
  suite : Mf_testgen.Vectors.t;  (** kept + repair vectors *)
  untestable : Mf_faults.Fault.t list;
      (** escapes proved structurally untestable and waived in the cert *)
  coverage : Mf_faults.Coverage.report;  (** on the degraded chip *)
  exec_before : int option;  (** makespan of [?app] on the input chip *)
  exec_after : int option;  (** makespan on the repaired chip (same prep topology) *)
  degradations : degradation list;
  stats : stats;
  cert : Mf_verify.Cert.t;  (** context + waivers included *)
  diags : Mf_util.Diag.t list;  (** independent verification; never errors in [Ok] *)
}

val repair :
  ?params:params ->
  ?budget:Mf_util.Budget.t ->
  ?checkpoint:checkpoint ->
  ?app:Mf_bioassay.Seqgraph.t ->
  ?sharing:Mf_arch.Chip.t * (int * int) list ->
  ?more_faults:(round:int -> Mf_faults.Fault.t list) ->
  Mf_arch.Chip.t ->
  Mf_testgen.Vectors.t ->
  Mf_faults.Fault.t list ->
  (result, Mf_util.Fail.t) Stdlib.result
(** [repair chip suite faults] repairs [suite] against [faults] on [chip].

    [sharing] is [(augmented, scheme)] — the unshared augmented chip and
    the control-sharing assignment such that
    [chip = Chip.with_sharing augmented scheme]; it enables the minimal
    unsharing fallback (and reuses the scheduler's sharing-aware prep for
    [exec_after]).  [more_faults ~round] is polled after each completed
    round; novel faults trigger another round.  [budget] bounds wall-clock
    time: on expiry the engine ships the current state if it certifies
    (recording [Budget_exhausted]) and fails typed otherwise.  [app]
    enables the [exec_before]/[exec_after] makespans. *)
