module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Bitset = Mf_util.Bitset
module Fail = Mf_util.Fail
module Diag = Mf_util.Diag
module Budget = Mf_util.Budget
module Domain_pool = Mf_util.Domain_pool
module Prof = Mf_util.Prof
module Fault = Mf_faults.Fault
module Pressure = Mf_faults.Pressure
module Coverage = Mf_faults.Coverage
module Vector = Mf_faults.Vector
module Vectors = Mf_testgen.Vectors
module Vrepair = Mf_testgen.Repair
module Cutgen = Mf_testgen.Cutgen
module Ilp = Mf_ilp.Ilp
module Prep = Mf_sched.Prep
module Scheduler = Mf_sched.Scheduler
module Cert = Mf_verify.Cert

type params = {
  seed : int;
  jobs : int;
  node_limit : int;
  max_rounds : int;
}

let default_params = { seed = 42; jobs = 1; node_limit = 2000; max_rounds = 8 }

type degradation =
  | Dropped_vectors of int
  | Greedy_cover
  | Unshared of int
  | Full_resolve
  | Budget_exhausted

let degradation_to_string = function
  | Dropped_vectors n -> Printf.sprintf "dropped-vectors:%d" n
  | Greedy_cover -> "greedy-cover"
  | Unshared n -> Printf.sprintf "unshared:%d" n
  | Full_resolve -> "full-resolve"
  | Budget_exhausted -> "budget-exhausted"

type checkpoint = {
  path : string;
  every : int;
  resume : bool;
  stop_after : int option;
}

type stats = {
  rounds : int;
  damaged : int;
  reused : int;
  added : int;
  candidates : int;
  solver : Ilp.run_stats;
  runtime : float;
}

type result = {
  chip : Chip.t;
  faults : Fault.t list;
  suite : Vectors.t;
  untestable : Fault.t list;
  coverage : Coverage.report;
  exec_before : int option;
  exec_after : int option;
  degradations : degradation list;
  stats : stats;
  cert : Cert.t;
  diags : Diag.t list;
}

let failf ?elapsed fmt =
  Printf.ksprintf (fun reason -> Error (Fail.v ?elapsed Fail.Repair reason)) fmt

(* ------------------------------------------------------------------ *)
(* Structural untestability prover — the same sound criteria the verifier
   audits waivers with (Cert, MF106), derived independently here so the
   engine never waives a fault the checker would reject.

   M: edges that can conduct under some vector (channel, not blocked).
   U: edges that conduct under every vector (M, and unvalved or stuck
   open).  A fault that can never change origin→meter connectivity is
   untestable; origins are the source plus the seats of context leaks. *)
let prover chip ctx ~s ~t =
  let g = Grid.graph (Chip.grid chip) in
  let valves = Chip.valves chip in
  let m_allowed e = Chip.is_channel chip e && not (Pressure.blocked ctx e) in
  let u_allowed e =
    m_allowed e
    &&
    match Chip.valve_on chip e with
    | None -> true
    | Some v -> Pressure.stuck_open ctx v.valve_id
  in
  let origins =
    s
    :: List.concat_map
         (function
           | Fault.Leak w ->
             let a, b = Graph.endpoints g valves.(w).edge in
             [ a; b ]
           | Fault.Stuck_at_0 _ | Fault.Stuck_at_1 _ -> [])
         (Pressure.context_faults ctx)
  in
  let to_meter = Traverse.reachable g ~allowed:m_allowed ~src:t in
  let always_connected = Traverse.connected g ~allowed:u_allowed s t in
  (* Every vector's conducting graph is sandwiched between the
     always-conducting subgraph and M, so fault observability at an edge
     reduces to the exact contracted-graph bridge search: [No_route] is a
     sound proof that no vector can observe the edge. *)
  let routable e =
    match
      Mf_graph.Disjoint.route_through g ~allowed:m_allowed ~contract:u_allowed ~origins
        ~target:t ~via:e ~cap:Mf_graph.Disjoint.default_cap
    with
    | Mf_graph.Disjoint.No_route -> false
    | Mf_graph.Disjoint.Route _ | Mf_graph.Disjoint.Capped -> true
  in
  let context_leak_at w =
    List.exists
      (function Fault.Leak x -> x = w | Fault.Stuck_at_0 _ | Fault.Stuck_at_1 _ -> false)
      (Pressure.context_faults ctx)
  in
  function
  | Fault.Stuck_at_0 e ->
    (not (Chip.is_channel chip e)) || Pressure.blocked ctx e || not (routable e)
  | Fault.Stuck_at_1 w ->
    let v = valves.(w) in
    Pressure.stuck_open ctx w
    (* a present leak at [w] pressurises both seats whenever its line is
       active, so whether the valve seals can never reach the meter *)
    || context_leak_at w
    || Pressure.blocked ctx v.edge
    || not (routable v.edge)
  | Fault.Leak w ->
    let v = valves.(w) in
    Pressure.blocked ctx v.edge || always_connected
    ||
    let a, b = Graph.endpoints g v.edge in
    not (Bitset.mem to_meter a || Bitset.mem to_meter b)

(* ------------------------------------------------------------------ *)
(* Damage analysis and candidate generation *)

let terminals chip (suite : Vectors.t) =
  let ports = Chip.ports chip in
  (ports.(suite.Vectors.source_port).node, ports.(suite.Vectors.meter_port).node)

(* Vectors the context malforms are dead on the degraded chip; everything
   else is reusable verbatim.  This is the minimal damage set: only faults
   these vectors covered (or fresh escapes) need re-solving. *)
let drop_damaged ctx chip (suite : Vectors.t) =
  let s, t = terminals chip suite in
  let ok_path p =
    Pressure.well_formed ~present:ctx chip (Vector.of_path chip ~source:s ~meters:[ t ] p)
  in
  let ok_cut c =
    Pressure.well_formed ~present:ctx chip (Vector.of_cut chip ~source:s ~meters:[ t ] c)
  in
  let keep_paths = List.filter ok_path suite.Vectors.path_edges in
  let keep_cuts = List.filter ok_cut suite.Vectors.cut_valves in
  let dropped =
    List.length suite.Vectors.path_edges
    - List.length keep_paths
    + List.length suite.Vectors.cut_valves
    - List.length keep_cuts
  in
  ({ suite with Vectors.path_edges = keep_paths; cut_valves = keep_cuts }, dropped)

type cand = Cpath of int list | Ccut of int list

let cand_vector chip ~s ~t = function
  | Cpath p -> Vector.of_path chip ~source:s ~meters:[ t ] p
  | Ccut c -> Vector.of_cut chip ~source:s ~meters:[ t ] c

let escaped_faults (report : Coverage.report) =
  List.map (fun e -> Fault.Stuck_at_0 e) report.Coverage.sa0_undetected
  @ List.map (fun v -> Fault.Stuck_at_1 v) report.Coverage.sa1_undetected

(* Per-fault confirmed repair candidates on the degraded chip.  Pure and
   deterministic, so the per-fault fan-out below is jobs-independent. *)
let gen_candidates ctx chip ~s ~t fault =
  match fault with
  | Fault.Stuck_at_0 e ->
    List.map (fun p -> Cpath p) (Vrepair.candidates_sa0 ~present:ctx chip ~s ~t e)
  | Fault.Stuck_at_1 w -> (
      match Vrepair.candidates_sa1 ~present:ctx chip ~s ~t w with
      | _ :: _ as cuts -> List.map (fun c -> Ccut c) cuts
      | [] -> (
          (* second algorithm: the max-flow minimum cut forced through the
             valve, confirmed on the degraded chip *)
          match Cutgen.cover_valve chip ~s ~t (Chip.valves chip).(w) with
          | None -> []
          | Some cut ->
            let vec = Vector.of_cut chip ~source:s ~meters:[ t ] cut in
            if
              Pressure.well_formed ~present:ctx chip vec
              && Pressure.detects ~present:ctx chip vec fault
            then [ Ccut cut ]
            else []))
  | Fault.Leak _ -> []

(* ------------------------------------------------------------------ *)
(* Cover selection: the fewest candidate vectors detecting every escaped
   coverable fault.  Solved as a set-cover ILP on the warm-started
   dual-simplex core; on node/budget exhaustion the greedy
   most-coverage-first cover steps in (recorded as a degradation). *)
let select_cover ?budget ~node_limit cands detect_matrix n_faults =
  let n = Array.length cands in
  if n = 0 then ([], Ilp.zero_stats, false)
  else begin
    let ilp = Ilp.create () in
    let vars = Array.init n (fun _ -> Ilp.add_binary ~obj:1. ilp) in
    for fi = 0 to n_faults - 1 do
      let row = ref [] in
      for ci = 0 to n - 1 do
        if detect_matrix.(ci).(fi) then row := (1., vars.(ci)) :: !row
      done;
      Ilp.add_row ilp !row Ilp.Ge 1.
    done;
    let greedy () =
      let covered = Array.make n_faults false in
      let chosen = ref [] in
      let remaining = ref n_faults in
      while !remaining > 0 do
        let best = ref (-1) and best_gain = ref 0 in
        for ci = n - 1 downto 0 do
          let gain = ref 0 in
          for fi = 0 to n_faults - 1 do
            if detect_matrix.(ci).(fi) && not covered.(fi) then incr gain
          done;
          if !gain >= !best_gain && !gain > 0 then begin
            best := ci;
            best_gain := !gain
          end
        done;
        if !best < 0 then remaining := 0 (* uncoverable residue; caller re-validates *)
        else begin
          chosen := !best :: !chosen;
          for fi = 0 to n_faults - 1 do
            if detect_matrix.(!best).(fi) then
              if not covered.(fi) then begin
                covered.(fi) <- true;
                decr remaining
              end
          done
        end
      done;
      List.sort compare !chosen
    in
    match Ilp.solve ~node_limit ?budget ~warm:true ilp with
    | Ilp.Optimal sol | Ilp.Feasible sol ->
      let chosen =
        List.filter (fun ci -> sol.Ilp.values.(vars.(ci)) > 0.5) (List.init n Fun.id)
      in
      (chosen, Ilp.last_stats ilp, false)
    | Ilp.Infeasible | Ilp.Node_limit | Ilp.Failed _ ->
      (greedy (), Ilp.last_stats ilp, true)
  end

(* ------------------------------------------------------------------ *)
(* Fallbacks *)

let dedup lists =
  let rec go seen = function
    | [] -> []
    | x :: rest -> if List.mem x seen then go seen rest else x :: go (x :: seen) rest
  in
  go [] lists

(* Full re-solve on the degraded chip: regenerate the cut side with the
   generation-side max-flow cut generator and re-run the per-fault repair
   over the whole remaining universe.  Much more work than the incremental
   path — exactly what [Full_resolve] records. *)
let full_resolve ctx chip (kept : Vectors.t) =
  let s, t = terminals chip kept in
  let cg =
    Cutgen.generate chip ~source:kept.Vectors.source_port ~meter:kept.Vectors.meter_port
  in
  let usable cut =
    Pressure.well_formed ~present:ctx chip (Vector.of_cut chip ~source:s ~meters:[ t ] cut)
  in
  let cuts = List.filter usable cg.Cutgen.cuts in
  let seeded =
    { kept with Vectors.cut_valves = dedup (kept.Vectors.cut_valves @ cuts) }
  in
  Vrepair.run ~present:ctx chip seeded

(* Minimal unsharing: keep the longest greedy prefix-closure of the sharing
   scheme under which every stranded fault has a confirmed candidate.  The
   suite's paths and cuts carry edge/valve ids, which sharing rewiring
   preserves, so vectors stay portable across the rewired chip. *)
let unshare faults0 ~missing ~src_port ~dst_port aug scheme =
  let ok chip' =
    let ctx = Pressure.context chip' faults0 in
    let ports = Chip.ports chip' in
    let s = ports.(src_port).Chip.node and t = ports.(dst_port).Chip.node in
    List.for_all (fun f -> gen_candidates ctx chip' ~s ~t f <> []) missing
  in
  if not (ok aug) then None
  else begin
    let kept =
      List.fold_left
        (fun kept a ->
          let trial = kept @ [ a ] in
          if ok (Chip.with_sharing aug trial) then trial else kept)
        [] scheme
    in
    Some (Chip.with_sharing aug kept, List.length scheme - List.length kept)
  end

(* ------------------------------------------------------------------ *)
(* Checkpointing *)

let snapshot_magic = "mfdft-repair-checkpoint-v1"

type snapshot = {
  ck_magic : string;
  ck_seed : int;
  ck_node_limit : int;
  ck_max_rounds : int;
  ck_round : int;
  ck_chip : Chip.t;
  ck_suite : Vectors.t;
  ck_faults : Fault.t list;
  ck_unshared : int option; (* sharing assignments dropped, when unsharing ran *)
  ck_full : bool;
  ck_greedy : bool;
  ck_damaged : int;
  ck_added : int;
  ck_candidates : int;
  ck_solver : Ilp.run_stats;
}

let save_snapshot path (snap : snapshot) =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Marshal.to_channel oc snap [];
  close_out oc;
  Sys.rename tmp path

let load_snapshot ~params path : (snapshot, Fail.t) Stdlib.result =
  let fail reason = Error (Fail.v Fail.Repair reason) in
  match open_in_bin path with
  | exception Sys_error msg -> fail (Printf.sprintf "cannot read checkpoint: %s" msg)
  | ic ->
    let snap =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match (Marshal.from_channel ic : snapshot) with
          | snap -> Ok snap
          | exception (Failure _ | End_of_file) -> Error ())
    in
    (match snap with
     | Error () -> fail (Printf.sprintf "corrupt or truncated checkpoint %s" path)
     | Ok snap ->
       if snap.ck_magic <> snapshot_magic then
         fail (Printf.sprintf "%s is not a repair checkpoint" path)
       else if
         snap.ck_seed <> params.seed
         || snap.ck_node_limit <> params.node_limit
         || snap.ck_max_rounds <> params.max_rounds
       then
         fail
           (Printf.sprintf
              "checkpoint %s was taken with different repair parameters (seed %d, node \
               limit %d, max rounds %d)"
              path snap.ck_seed snap.ck_node_limit snap.ck_max_rounds)
       else Ok snap)

(* ------------------------------------------------------------------ *)
(* The engine *)

type state = {
  st_round : int; (* completed rounds *)
  st_chip : Chip.t;
  st_suite : Vectors.t;
  st_faults : Fault.t list;
  st_unshared : int option;
  st_full : bool;
  st_greedy : bool;
  st_damaged : int;
  st_added : int;
  st_candidates : int;
  st_solver : Ilp.run_stats;
}

let snapshot_of_state st =
  {
    ck_magic = snapshot_magic;
    ck_seed = 0;
    ck_node_limit = 0;
    ck_max_rounds = 0;
    ck_round = st.st_round;
    ck_chip = st.st_chip;
    ck_suite = st.st_suite;
    ck_faults = st.st_faults;
    ck_unshared = st.st_unshared;
    ck_full = st.st_full;
    ck_greedy = st.st_greedy;
    ck_damaged = st.st_damaged;
    ck_added = st.st_added;
    ck_candidates = st.st_candidates;
    ck_solver = st.st_solver;
  }

let state_of_snapshot ck =
  {
    st_round = ck.ck_round;
    st_chip = ck.ck_chip;
    st_suite = ck.ck_suite;
    st_faults = ck.ck_faults;
    st_unshared = ck.ck_unshared;
    st_full = ck.ck_full;
    st_greedy = ck.ck_greedy;
    st_damaged = ck.ck_damaged;
    st_added = ck.ck_added;
    st_candidates = ck.ck_candidates;
    st_solver = ck.ck_solver;
  }

let repair ?(params = default_params) ?budget ?checkpoint ?app ?sharing ?more_faults
    chip0 (suite0 : Vectors.t) faults0 =
  let started = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. started in
  if faults0 = [] then failf "no faults to repair against"
  else begin
    let resume_state =
      match checkpoint with
      | Some ck when ck.resume ->
        if not (Sys.file_exists ck.path) then
          failf "cannot resume: checkpoint %s does not exist" ck.path
        else (
          match load_snapshot ~params ck.path with
          | Ok snap -> Ok (Some (state_of_snapshot snap))
          | Error f -> Error f)
      | _ -> Ok None
    in
    match resume_state with
    | Error f -> Error f
    | Ok resume_state ->
      let save st =
        match checkpoint with
        | None -> ()
        | Some ck ->
          save_snapshot ck.path
            {
              (snapshot_of_state st) with
              ck_seed = params.seed;
              ck_node_limit = params.node_limit;
              ck_max_rounds = params.max_rounds;
            }
      in
      let initial =
        {
          st_round = 0;
          st_chip = chip0;
          st_suite = suite0;
          st_faults = faults0;
          st_unshared = None;
          st_full = false;
          st_greedy = false;
          st_damaged = 0;
          st_added = 0;
          st_candidates = 0;
          st_solver = Ilp.zero_stats;
        }
      in
      Domain_pool.with_pool ~jobs:(max 1 params.jobs) @@ fun dpool ->
      (* Exec-time bookkeeping rides the PR-5 sharing-aware prep cache: the
         engine never changes topology (unsharing and full re-solve only
         rewire controls / regenerate vectors), so the final chip reuses the
         input chip's routing cache via [Prep.for_sharing]. *)
      let base_prep = lazy (Prep.of_chip chip0) in
      let finish ?(extra = []) st (report : Coverage.report) untestable =
        let cert =
          Cert.make ~chip_name:(Chip.name st.st_chip)
            ~suite:
              {
                Cert.source_port = st.st_suite.Vectors.source_port;
                meter_port = st.st_suite.Vectors.meter_port;
                path_edges = st.st_suite.Vectors.path_edges;
                cut_valves = st.st_suite.Vectors.cut_valves;
              }
            ~context:st.st_faults ~waived:untestable
            ~claimed_vectors:(Vectors.count st.st_suite)
            ~claimed_coverage:(report.Coverage.detected, report.Coverage.total_faults)
            ()
        in
        let diags = Mf_verify.Verify.certificate st.st_chip cert in
        if Diag.has_errors diags then
          failf ~elapsed:(elapsed ()) "re-certification failed: %s"
            (match Diag.errors diags with
             | d :: _ -> Format.asprintf "%a" Diag.pp d
             | [] -> "unknown error")
        else begin
          let exec_before, exec_after =
            match app with
            | None -> (None, None)
            | Some app ->
              let before = Scheduler.makespan ~prep:(Lazy.force base_prep) chip0 app in
              let prep =
                if st.st_chip == chip0 then Lazy.force base_prep
                else Prep.for_sharing (Lazy.force base_prep) st.st_chip
              in
              (before, Scheduler.makespan ~prep st.st_chip app)
          in
          let degradations =
            (if st.st_damaged > 0 then [ Dropped_vectors st.st_damaged ] else [])
            @ (if st.st_greedy then [ Greedy_cover ] else [])
            @ (match st.st_unshared with Some n -> [ Unshared n ] | None -> [])
            @ (if st.st_full then [ Full_resolve ] else [])
            @ extra
          in
          Ok
            {
              chip = st.st_chip;
              faults = st.st_faults;
              suite = st.st_suite;
              untestable;
              coverage = report;
              exec_before;
              exec_after;
              degradations;
              stats =
                {
                  rounds = st.st_round;
                  damaged = st.st_damaged;
                  reused = max 0 (Vectors.count st.st_suite - st.st_added);
                  added = st.st_added;
                  candidates = st.st_candidates;
                  solver = st.st_solver;
                  runtime = elapsed ();
                };
              cert;
              diags;
            }
        end
      in
      (* One repair round over the current fault set.  Returns either the
         next state, a finished result, or a typed failure. *)
      let rec rounds st =
        let budget_out = Budget.over budget in
        if st.st_round >= params.max_rounds && not budget_out then
          failf ~elapsed:(elapsed ()) "fault escalation exceeded %d rounds" params.max_rounds
        else begin
          let round = st.st_round + 1 in
          let ctx = Pressure.context st.st_chip st.st_faults in
          let s, t = terminals st.st_chip st.st_suite in
          let kept, dropped = drop_damaged ctx st.st_chip st.st_suite in
          let st = { st with st_suite = kept; st_damaged = st.st_damaged + dropped } in
          let report = Vectors.validate ~present:ctx st.st_chip st.st_suite in
          let escaped = escaped_faults report in
          let prove = prover st.st_chip ctx ~s ~t in
          let untestable, coverable = List.partition prove escaped in
          if budget_out then
            (* Out of time: ship the current state if it certifies (every
               residual escape provably untestable), typed failure
               otherwise — never an unflagged partial artifact. *)
            if coverable = [] then
              finish ~extra:[ Budget_exhausted ] { st with st_round = round } report untestable
            else
              failf ~elapsed:(elapsed ())
                "wall-clock budget exhausted with %d coverable faults unrepaired"
                (List.length coverable)
          else begin
            let cand_lists =
              Domain_pool.map dpool
                (fun f -> gen_candidates ctx st.st_chip ~s ~t f)
                (Array.of_list coverable)
            in
            let missing =
              List.filteri (fun i _ -> cand_lists.(i) = []) coverable
            in
            if missing <> [] then begin
              (* fallback ladder: minimal unsharing, then full re-solve *)
              let src_port = st.st_suite.Vectors.source_port in
              let dst_port = st.st_suite.Vectors.meter_port in
              let resolve_or_fail () =
                if st.st_full then
                  failf ~elapsed:(elapsed ())
                    "fault %s is neither repairable nor provably untestable"
                    (Format.asprintf "%a" (Fault.pp st.st_chip) (List.hd missing))
                else
                  rounds
                    { st with st_suite = full_resolve ctx st.st_chip st.st_suite; st_full = true }
              in
              match sharing with
              | Some (aug, scheme) when st.st_unshared = None -> (
                  match unshare st.st_faults ~missing ~src_port ~dst_port aug scheme with
                  | Some (chip', dropped_assignments) ->
                    rounds
                      { st with st_chip = chip'; st_unshared = Some dropped_assignments }
                  | None -> resolve_or_fail ())
              | _ -> resolve_or_fail ()
            end
            else begin
              let owners = Array.of_list coverable in
              let n_faults = Array.length owners in
              let cands =
                Array.of_list (List.concat (Array.to_list cand_lists))
              in
              let detect_matrix =
                Domain_pool.map dpool
                  (fun c ->
                    let vec = cand_vector st.st_chip ~s ~t c in
                    Array.map
                      (fun f -> Pressure.detects ~present:ctx st.st_chip vec f)
                      owners)
                  cands
              in
              let chosen, solver_stats, greedy =
                select_cover ?budget ~node_limit:params.node_limit cands detect_matrix
                  n_faults
              in
              Prof.add_count "repair.candidates" (Array.length cands);
              let extra_paths, extra_cuts =
                List.fold_left
                  (fun (ps, cs) ci ->
                    match cands.(ci) with
                    | Cpath p -> (p :: ps, cs)
                    | Ccut c -> (ps, c :: cs))
                  ([], []) (List.rev chosen)
              in
              let suite' =
                {
                  st.st_suite with
                  Vectors.path_edges = st.st_suite.Vectors.path_edges @ extra_paths;
                  cut_valves = st.st_suite.Vectors.cut_valves @ extra_cuts;
                }
              in
              let st =
                {
                  st with
                  st_round = round;
                  st_suite = suite';
                  st_added = st.st_added + List.length chosen;
                  st_candidates = st.st_candidates + Array.length cands;
                  st_solver = Ilp.add_stats st.st_solver solver_stats;
                  st_greedy = st.st_greedy || greedy;
                }
              in
              (match checkpoint with
               | Some ck when ck.every > 0 && round mod ck.every = 0 -> save st
               | _ -> ());
              match checkpoint with
              | Some ck when ck.stop_after = Some round ->
                save st;
                failf ~elapsed:(elapsed ())
                  "stopped after repair round %d; checkpoint saved to %s" round ck.path
              | _ -> after_round st
            end
          end
        end
      (* Post-round tail: poll the escalation hook, then validate and either
         finish, fall back to a full re-solve, or start another round.  Also
         the resume entry point — a checkpoint is saved exactly before this
         tail, so a resumed run replays the same poll the interrupted run
         never reached and stays bit-identical. *)
      and after_round st =
        let ctx = Pressure.context st.st_chip st.st_faults in
        let s, t = terminals st.st_chip st.st_suite in
        let prove = prover st.st_chip ctx ~s ~t in
        let novel =
          match more_faults with
          | None -> []
          | Some f ->
            List.filter
              (fun x -> not (List.exists (Fault.equal x) st.st_faults))
              (f ~round:st.st_round)
        in
        if novel <> [] then rounds { st with st_faults = st.st_faults @ novel }
        else begin
          let report' = Vectors.validate ~present:ctx st.st_chip st.st_suite in
          let escaped' = escaped_faults report' in
          let still_coverable = List.filter (fun f -> not (prove f)) escaped' in
          if still_coverable <> [] then
            if st.st_full then
              failf ~elapsed:(elapsed ())
                "%d faults remain unrepaired after full re-solve"
                (List.length still_coverable)
            else
              rounds
                { st with st_suite = full_resolve ctx st.st_chip st.st_suite; st_full = true }
          else finish st report' (List.filter prove escaped')
        end
      in
      Prof.time "repair.run" (fun () ->
          match resume_state with Some st -> after_round st | None -> rounds initial)
  end
