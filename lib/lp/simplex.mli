(** Sparse revised bounded-variable simplex over a product-form (eta-file)
    inverse, for linear programs in computational standard form

    {v minimize c·x  subject to  A x = b,  l <= x <= u v}

    with finite lower bounds and possibly infinite upper bounds.  Nonbasic
    variables rest at one of their bounds (bounded-variable simplex), so 0-1
    relaxations need no explicit bound rows.

    Columns are stored sparsely ({!col}); the basis inverse is maintained as
    a product of eta matrices refreshed by a deterministic refactorisation,
    so each pivot costs O(nnz) instead of the dense tableau's O(m·n).

    Two entry points share the core:
    - the {b cold} path runs the classic two-phase primal simplex from an
      all-artificial basis (Dantzig pricing, Bland's rule after a stall
      budget, anti-cycling tie-breaks on smallest basis index);
    - the {b warm} path ({!solve} with [?warm]) re-optimises from a caller
      supplied basis with the dual simplex — the branch-and-bound case,
      where a parent node's optimal basis stays dual-feasible after bound
      changes (branching) or appended rows (lazy cuts).  Any breakdown on
      the warm path (singular factorisation, unrepairable dual
      infeasibility, dual stall, numerical trouble) silently falls back to
      the cold path and is reported in {!info} — it is never an error.

    All pivot choices (pricing, ratio tests, refactorisation order) break
    ties on the smallest index, so a solve is a pure deterministic function
    of its inputs — results are identical for any domain/job count. *)

(** Process-wide solver telemetry: cumulative pivot/solve counters,
    incremented atomically by every solve on any domain.  Totals are
    deterministic for any job count (sums commute); consumed by
    [bench -- perf] and the [MFDFT_PROF] report. *)
module Stats : sig
  val primal_pivots : int Atomic.t
  val dual_pivots : int Atomic.t

  val phase1_solves : int Atomic.t
  (** Cold solves: every solve that had to run phase 1 from an artificial
      basis, including warm attempts that fell back. *)

  val refactors : int Atomic.t
  (** Basis refactorisations (initial factorisations included). *)

  val reset : unit -> unit

  val pivots : unit -> int
  (** Primal + dual pivots since the last {!reset}. *)
end

type col = { idx : int array; v : float array }
(** One sparse column: row indices (strictly increasing) and matching
    coefficients. *)

type problem = {
  m : int;  (** rows *)
  n : int;  (** columns *)
  cols : col array;  (** length [n] *)
  b : float array;  (** right-hand side, length [m] *)
}

type status = Basic | At_lower | At_upper

type basis = { basic : int array; vstat : status array }
(** A restartable basis snapshot: [basic.(i)] is the column occupying row
    [i]; [vstat] records every column's status.  Only returned for proven
    optimal, artificial-free solutions, so a stored basis is always
    factorisable in exact arithmetic. *)

type info = {
  primal_pivots : int;  (** primal pivots spent by this solve *)
  dual_pivots : int;  (** dual pivots spent by this solve *)
  warm : bool;  (** solved on the warm (dual) path *)
  fell_back : bool;  (** a warm basis was supplied but abandoned *)
}
(** Per-solve effort accounting.  [warm] and [fell_back] are mutually
    exclusive; both are [false] when no warm basis was supplied. *)

type result =
  | Optimal of { objective : float; values : float array }
  | Feasible of { objective : float; values : float array }
      (** primal-feasible but possibly suboptimal: the phase-2 pivot budget
          or wall-clock budget ran out before proving optimality *)
  | Iter_limit
      (** the pivot or wall-clock budget ran out before any feasible point
          was found *)
  | Infeasible
  | Unbounded

val solve :
  ?max_iters:int ->
  ?budget:Mf_util.Budget.t ->
  ?warm:basis ->
  problem ->
  lower:float array ->
  upper:float array ->
  c:float array ->
  result * basis option * info
(** [solve problem ~lower ~upper ~c] minimises [c·x] subject to
    [A x = b] and [lower <= x <= upper].  [upper.(j)] may be [infinity];
    lower bounds must be finite.

    [max_iters] bounds pivots per phase (default scales with problem size);
    [budget] bounds wall-clock time (polled every 128 pivots).  Running out
    before reaching primal feasibility yields [Iter_limit]; afterwards,
    [Feasible] with the best point reached.  Neither raises.

    [warm] re-optimises from a previous basis with the dual simplex (bound
    flips repair dual feasibility first).  A warm [Infeasible] is certified
    by dual unboundedness; warm breakdowns fall back to the cold path
    (see {!info}).

    The returned basis is [Some] exactly when the result is [Optimal] and
    the final basis is artificial-free; it aliases nothing — safe to store.

    Raises [Failure] only on a numerically singular pivot on the cold path
    — an indication of a degenerate input matrix, not of resource
    exhaustion. *)
