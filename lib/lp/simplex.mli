(** Dense two-phase primal simplex for linear programs in computational
    standard form

    {v minimize c·x  subject to  A x = b,  l <= x <= u v}

    with finite lower bounds and possibly infinite upper bounds.  Nonbasic
    variables rest at one of their bounds (bounded-variable simplex), so 0-1
    relaxations need no explicit bound rows.

    Anti-cycling: Dantzig pricing normally, switching to Bland's rule after
    a stall budget is exhausted. *)

type result =
  | Optimal of { objective : float; values : float array }
  | Feasible of { objective : float; values : float array }
      (** primal-feasible but possibly suboptimal: the phase-2 pivot budget
          or wall-clock budget ran out before proving optimality *)
  | Iter_limit
      (** the pivot or wall-clock budget ran out in phase 1, before any
          feasible point was found *)
  | Infeasible
  | Unbounded

val solve :
  ?max_iters:int ->
  ?budget:Mf_util.Budget.t ->
  a:float array array ->
  b:float array ->
  c:float array ->
  lower:float array ->
  upper:float array ->
  unit ->
  result
(** [solve ~a ~b ~c ~lower ~upper ()] minimises [c·x] subject to [a x = b]
    and [lower <= x <= upper].  [a] is row-major, one inner array per
    constraint.  All rows must have the same width as [c], [lower] and
    [upper].  [upper.(j)] may be [infinity]; lower bounds must be finite.

    [max_iters] bounds total pivots per phase (default scales with problem
    size); [budget] bounds wall-clock time (polled every 128 pivots).
    Running out during phase 1 yields [Iter_limit]; during phase 2,
    [Feasible] with the best point reached.  Neither raises.

    Raises [Failure] only on a numerically singular pivot — an indication
    of a degenerate input matrix, not of resource exhaustion. *)
