type var = int

type relation = Le | Ge | Eq

type row = { terms : (float * var) list; rel : relation; rhs : float }

type t = {
  mutable lower : float list; (* reversed *)
  mutable upper : float list;
  mutable obj : float list;
  mutable nv : int;
  mutable rows : row list; (* reversed *)
  mutable nr : int;
}

type result =
  | Optimal of { objective : float; values : float array }
  | Feasible of { objective : float; values : float array }
  | Iter_limit
  | Infeasible
  | Unbounded
  | Numerical of string

let create () = { lower = []; upper = []; obj = []; nv = 0; rows = []; nr = 0 }

let add_var ?(lower = 0.) ?(upper = infinity) ?(obj = 0.) t =
  let id = t.nv in
  t.lower <- lower :: t.lower;
  t.upper <- upper :: t.upper;
  t.obj <- obj :: t.obj;
  t.nv <- t.nv + 1;
  id

let n_vars t = t.nv

let set_obj t v coeff =
  if v < 0 || v >= t.nv then invalid_arg "Lp.set_obj: bad variable";
  t.obj <- List.mapi (fun i c -> if i = t.nv - 1 - v then coeff else c) t.obj

let add_row t terms rel rhs =
  List.iter
    (fun (_, v) -> if v < 0 || v >= t.nv then invalid_arg "Lp.add_row: bad variable")
    terms;
  t.rows <- { terms; rel; rhs } :: t.rows;
  t.nr <- t.nr + 1

let n_rows t = t.nr

let solve ?max_iters ?budget ?(fix = fun _ -> None) t =
  let nv = t.nv in
  let rows = Array.of_list (List.rev t.rows) in
  let m = Array.length rows in
  (* slack variable per inequality row *)
  let n_slack = Array.fold_left (fun k r -> if r.rel = Eq then k else k + 1) 0 rows in
  let n = nv + n_slack in
  let lower = Array.make n 0. in
  let upper = Array.make n infinity in
  let c = Array.make n 0. in
  List.iteri (fun i v -> lower.(nv - 1 - i) <- v) t.lower;
  List.iteri (fun i v -> upper.(nv - 1 - i) <- v) t.upper;
  List.iteri (fun i v -> c.(nv - 1 - i) <- v) t.obj;
  for v = 0 to nv - 1 do
    match fix v with
    | None -> ()
    | Some x ->
      lower.(v) <- x;
      upper.(v) <- x
  done;
  let a = Array.make_matrix m n 0. in
  let b = Array.make m 0. in
  let next_slack = ref nv in
  Array.iteri
    (fun i r ->
      List.iter (fun (coef, v) -> a.(i).(v) <- a.(i).(v) +. coef) r.terms;
      b.(i) <- r.rhs;
      match r.rel with
      | Eq -> ()
      | Le ->
        a.(i).(!next_slack) <- 1.;
        incr next_slack
      | Ge ->
        a.(i).(!next_slack) <- -1.;
        incr next_slack)
    rows;
  match Simplex.solve ?max_iters ?budget ~a ~b ~c ~lower ~upper () with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Iter_limit -> Iter_limit
  | Simplex.Optimal { objective; values } ->
    Optimal { objective; values = Array.sub values 0 nv }
  | Simplex.Feasible { objective; values } ->
    Feasible { objective; values = Array.sub values 0 nv }
  | exception Failure msg -> Numerical msg
