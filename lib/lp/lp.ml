type var = int

type relation = Le | Ge | Eq

type row = { terms : (float * var) list; rel : relation; rhs : float }

(* The builder compiled to the simplex computational form: structural
   columns 0..nv-1 followed by one logical (slack/surplus) column per
   inequality row, in row order.  Rows and variables are append-only, so a
   later compilation of the same builder extends this one column layout —
   the property the warm-basis extension below relies on. *)
type compiled = {
  k_nv : int; (* structural variables *)
  k_m : int; (* rows *)
  k_n : int; (* columns: nv + logicals *)
  k_rels : relation array; (* per row, for basis extension *)
  k_problem : Simplex.problem;
  k_lower : float array; (* base bounds; copied before per-solve fixing *)
  k_upper : float array;
  k_c : float array;
}

type t = {
  mutable lower : float list; (* reversed *)
  mutable upper : float list;
  mutable obj : float list;
  mutable nv : int;
  mutable rows : row list; (* reversed *)
  mutable nr : int;
  mutable compiled : compiled option; (* invalidated by every mutation *)
}

type result =
  | Optimal of { objective : float; values : float array }
  | Feasible of { objective : float; values : float array }
  | Iter_limit
  | Infeasible
  | Unbounded
  | Numerical of string

type basis = { b_nv : int; b_sx : Simplex.basis }

type info = Simplex.info = {
  primal_pivots : int;
  dual_pivots : int;
  warm : bool;
  fell_back : bool;
}

let create () =
  { lower = []; upper = []; obj = []; nv = 0; rows = []; nr = 0; compiled = None }

let add_var ?(lower = 0.) ?(upper = infinity) ?(obj = 0.) t =
  let id = t.nv in
  t.lower <- lower :: t.lower;
  t.upper <- upper :: t.upper;
  t.obj <- obj :: t.obj;
  t.nv <- t.nv + 1;
  t.compiled <- None;
  id

let n_vars t = t.nv

let set_obj t v coeff =
  if v < 0 || v >= t.nv then invalid_arg "Lp.set_obj: bad variable";
  t.obj <- List.mapi (fun i c -> if i = t.nv - 1 - v then coeff else c) t.obj;
  t.compiled <- None

let add_row t terms rel rhs =
  List.iter
    (fun (_, v) -> if v < 0 || v >= t.nv then invalid_arg "Lp.add_row: bad variable")
    terms;
  t.rows <- { terms; rel; rhs } :: t.rows;
  t.nr <- t.nr + 1;
  t.compiled <- None

let n_rows t = t.nr

(* Merge duplicate variables of a term list, sorted by variable — the same
   normalisation [compile] applies, shared by the presolve pass and the
   row accessor below. *)
let merge_terms terms =
  let sorted = List.stable_sort (fun (_, a) (_, b) -> compare (a : int) b) terms in
  let out = ref [] in
  List.iter
    (fun (coef, v) ->
      match !out with
      | (c0, v0) :: rest when v0 = v -> out := (c0 +. coef, v0) :: rest
      | _ -> out := (coef, v) :: !out)
    sorted;
  List.rev !out

let row t i =
  if i < 0 || i >= t.nr then invalid_arg "Lp.row: bad index";
  let r = List.nth t.rows (t.nr - 1 - i) in
  (merge_terms r.terms, r.rel, r.rhs)

let compile t =
  match t.compiled with
  | Some k -> k
  | None ->
    let nv = t.nv in
    let rows = Array.of_list (List.rev t.rows) in
    let m = Array.length rows in
    let n_logical = Array.fold_left (fun k r -> if r.rel = Eq then k else k + 1) 0 rows in
    let n = nv + n_logical in
    let lower = Array.make n 0. in
    let upper = Array.make n infinity in
    let c = Array.make n 0. in
    List.iteri (fun i v -> lower.(nv - 1 - i) <- v) t.lower;
    List.iteri (fun i v -> upper.(nv - 1 - i) <- v) t.upper;
    List.iteri (fun i v -> c.(nv - 1 - i) <- v) t.obj;
    (* per-row term lists with duplicate variables merged, sorted by
       variable — the stable sort keeps the summation order deterministic *)
    let merged = Array.map (fun r -> Array.of_list (merge_terms r.terms)) rows in
    (* gather structural columns row-major so indices come out ascending *)
    let counts = Array.make nv 0 in
    Array.iter (Array.iter (fun (_, v) -> counts.(v) <- counts.(v) + 1)) merged;
    let cols = Array.make n { Simplex.idx = [||]; v = [||] } in
    for j = 0 to nv - 1 do
      cols.(j) <- { Simplex.idx = Array.make counts.(j) 0; v = Array.make counts.(j) 0. }
    done;
    let fill = Array.make nv 0 in
    Array.iteri
      (fun i terms ->
        Array.iter
          (fun (coef, v) ->
            let p = fill.(v) in
            cols.(v).Simplex.idx.(p) <- i;
            cols.(v).Simplex.v.(p) <- coef;
            fill.(v) <- p + 1)
          terms)
      merged;
    let b = Array.make m 0. in
    let rels = Array.make m Eq in
    let q = ref nv in
    Array.iteri
      (fun i r ->
        b.(i) <- r.rhs;
        rels.(i) <- r.rel;
        match r.rel with
        | Eq -> ()
        | Le ->
          cols.(!q) <- { Simplex.idx = [| i |]; v = [| 1. |] };
          incr q
        | Ge ->
          cols.(!q) <- { Simplex.idx = [| i |]; v = [| -1. |] };
          incr q)
      rows;
    let k =
      {
        k_nv = nv;
        k_m = m;
        k_n = n;
        k_rels = rels;
        k_problem = { Simplex.m; n; cols; b };
        k_lower = lower;
        k_upper = upper;
        k_c = c;
      }
    in
    t.compiled <- Some k;
    k

(* Lift a basis captured on an earlier compilation of this builder onto the
   current one.  Rows are append-only and logicals follow row order, so the
   old columns are a prefix of the new layout; each appended inequality row
   extends the basis block-triangularly with its own logical basic (its dual
   value is 0, leaving every old reduced cost unchanged — the parent basis
   stays dual-feasible).  Returns [None] when the basis cannot be lifted:
   different structural count, rows removed, an appended equality row (no
   logical to make basic), or a stale layout. *)
let extend_basis (wb : basis) (k : compiled) : Simplex.basis option =
  let m_old = Array.length wb.b_sx.Simplex.basic in
  let n_old = Array.length wb.b_sx.Simplex.vstat in
  if wb.b_nv <> k.k_nv || m_old > k.k_m then None
  else begin
    let prefix_logicals = ref 0 in
    for i = 0 to m_old - 1 do
      if k.k_rels.(i) <> Eq then incr prefix_logicals
    done;
    if n_old <> k.k_nv + !prefix_logicals then None
    else begin
      let appended_eq = ref false in
      for i = m_old to k.k_m - 1 do
        if k.k_rels.(i) = Eq then appended_eq := true
      done;
      if !appended_eq then None
      else if m_old = k.k_m then Some wb.b_sx
      else begin
        let vstat = Array.make k.k_n Simplex.Basic in
        Array.blit wb.b_sx.Simplex.vstat 0 vstat 0 n_old;
        let basic = Array.make k.k_m 0 in
        Array.blit wb.b_sx.Simplex.basic 0 basic 0 m_old;
        let next_logical = ref n_old in
        for i = m_old to k.k_m - 1 do
          basic.(i) <- !next_logical;
          incr next_logical
        done;
        Some { Simplex.basic; vstat }
      end
    end
  end

let no_info = { primal_pivots = 0; dual_pivots = 0; warm = false; fell_back = false }

let solve_b ?max_iters ?budget ?(fix = fun _ -> None) ?warm t =
  let k = compile t in
  let lower = Array.copy k.k_lower in
  let upper = Array.copy k.k_upper in
  for v = 0 to k.k_nv - 1 do
    match fix v with
    | None -> ()
    | Some x ->
      lower.(v) <- x;
      upper.(v) <- x
  done;
  let sx_warm = Option.bind warm (fun wb -> extend_basis wb k) in
  match Simplex.solve ?max_iters ?budget ?warm:sx_warm k.k_problem ~lower ~upper ~c:k.k_c with
  | exception Failure msg ->
    (Numerical msg, None, { no_info with fell_back = warm <> None })
  | sx_result, sx_basis, sx_info ->
    let result =
      match sx_result with
      | Simplex.Infeasible -> Infeasible
      | Simplex.Unbounded -> Unbounded
      | Simplex.Iter_limit -> Iter_limit
      | Simplex.Optimal { objective; values } ->
        Optimal { objective; values = Array.sub values 0 k.k_nv }
      | Simplex.Feasible { objective; values } ->
        Feasible { objective; values = Array.sub values 0 k.k_nv }
    in
    let basis = Option.map (fun sb -> { b_nv = k.k_nv; b_sx = sb }) sx_basis in
    (* a warm basis refused at the extension stage never reached the
       simplex; report it as a fallback all the same *)
    let info =
      if warm <> None && sx_warm = None then { sx_info with fell_back = true }
      else sx_info
    in
    (result, basis, info)

let solve ?max_iters ?budget ?fix t =
  let result, _, _ = solve_b ?max_iters ?budget ?fix t in
  result

let prepare t = ignore (compile t)

(* ------------------------------------------------------------------ *)
(* Presolve: bound tightening and coefficient reduction on the builder.

   Every deduction is globally valid — implied by the existing rows and
   bounds — so it survives any later per-solve [?fix] (branch-and-bound
   fixings land inside the tightened box or make the subproblem
   infeasible, which the simplex reports).  Rows are modified in place and
   never deleted: the append-only row layout that {!extend_basis} relies
   on is preserved. *)

type presolve_stats = {
  ps_rounds : int;
  ps_fixed : int;
  ps_tightened : int;
  ps_coeffs : int;
  ps_infeasible : bool;
}

let presolve ?(integer = fun _ -> false) t =
  let nv = t.nv in
  let lower = Array.make (max 1 nv) 0. and upper = Array.make (max 1 nv) 0. in
  List.iteri (fun i v -> lower.(nv - 1 - i) <- v) t.lower;
  List.iteri (fun i v -> upper.(nv - 1 - i) <- v) t.upper;
  let width0 = Array.init nv (fun v -> upper.(v) -. lower.(v)) in
  let rows = Array.of_list (List.rev t.rows) in
  let m = Array.length rows in
  let terms = Array.map (fun r -> Array.of_list (merge_terms r.terms)) rows in
  let rhs = Array.map (fun r -> r.rhs) rows in
  let eps = 1e-7 in
  let tightened = ref 0 and coeffs = ref 0 in
  let infeasible = ref false in
  let changed = ref false in
  (* integral bounds round to the nearest contained integer *)
  let round_int v =
    if integer v then begin
      let l = ceil (lower.(v) -. 1e-6) and u = floor (upper.(v) +. 1e-6) in
      if l > lower.(v) +. eps then begin
        lower.(v) <- l;
        incr tightened;
        changed := true
      end;
      if u < upper.(v) -. eps then begin
        upper.(v) <- u;
        incr tightened;
        changed := true
      end;
      if lower.(v) > upper.(v) +. eps then infeasible := true
    end
  in
  for v = 0 to nv - 1 do
    round_int v
  done;
  (* one <=-form row: activity-bound tightening.  The minimum activity is
     evaluated once per row; bounds improved mid-row only increase it, so
     the stale value stays a valid underestimate and the next round picks
     up the slack. *)
  let tighten_le a b =
    let minact = ref 0. and n_inf = ref 0 in
    Array.iter
      (fun (c, v) ->
        let contrib = if c > 0. then c *. lower.(v) else c *. upper.(v) in
        if Float.is_finite contrib then minact := !minact +. contrib else incr n_inf)
      a;
    if !n_inf = 0 && !minact > b +. eps then infeasible := true
    else
      Array.iter
        (fun (c, v) ->
          if c <> 0. then begin
            let contrib = if c > 0. then c *. lower.(v) else c *. upper.(v) in
            let contrib_finite = Float.is_finite contrib in
            (* the rest of the row needs a finite minimum activity *)
            if !n_inf = 0 || ((not contrib_finite) && !n_inf = 1) then begin
              let rest = if contrib_finite then !minact -. contrib else !minact in
              let nb = (b -. rest) /. c in
              if c > 0. then begin
                let nb = if integer v then floor (nb +. 1e-6) else nb in
                if nb < upper.(v) -. eps then begin
                  upper.(v) <- nb;
                  incr tightened;
                  changed := true;
                  if nb < lower.(v) -. eps then infeasible := true
                end
              end
              else begin
                let nb = if integer v then ceil (nb -. 1e-6) else nb in
                if nb > lower.(v) +. eps then begin
                  lower.(v) <- nb;
                  incr tightened;
                  changed := true;
                  if nb > upper.(v) +. eps then infeasible := true
                end
              end
            end
          end)
        a
  in
  (* Coefficient reduction (<=-form, binary variable j, finite maximum
     activity M): if M - a_j < b < M then a_j' = M - b, b' = M - a_j keeps
     the same 0-1 solution set with a tighter relaxation; the mirrored rule
     for a_j < 0 shrinks it to b - M at unchanged rhs. *)
  let reduce_le a b_ref =
    let maxact = ref 0. and finite = ref true in
    Array.iter
      (fun (c, v) ->
        let contrib = if c > 0. then c *. upper.(v) else c *. lower.(v) in
        if Float.is_finite contrib then maxact := !maxact +. contrib else finite := false)
      a;
    if !finite then
      Array.iteri
        (fun j (c, v) ->
          if integer v && lower.(v) = 0. && upper.(v) = 1. then
            if c > eps then begin
              if !maxact -. c < !b_ref -. eps && !b_ref < !maxact -. eps then begin
                let c' = !maxact -. !b_ref in
                let b' = !maxact -. c in
                a.(j) <- (c', v);
                b_ref := b';
                maxact := b' +. c';
                incr coeffs;
                changed := true
              end
            end
            else if c < -.eps then begin
              (* maximum activity is unchanged: this term contributes 0 at
                 its lower bound under both the old and the new coefficient *)
              if !b_ref > !maxact +. c +. eps && !b_ref < !maxact -. eps then begin
                a.(j) <- (!b_ref -. !maxact, v);
                incr coeffs;
                changed := true
              end
            end)
        a
  in
  let negated a = Array.map (fun (c, v) -> (-.c, v)) a in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 10 && not !infeasible do
    changed := false;
    incr rounds;
    for i = 0 to m - 1 do
      if not !infeasible then begin
        (match rows.(i).rel with
         | Le -> tighten_le terms.(i) rhs.(i)
         | Ge -> tighten_le (negated terms.(i)) (-.rhs.(i))
         | Eq ->
           tighten_le terms.(i) rhs.(i);
           tighten_le (negated terms.(i)) (-.rhs.(i)));
        (match rows.(i).rel with
         | Le ->
           let b = ref rhs.(i) in
           reduce_le terms.(i) b;
           rhs.(i) <- !b
         | Ge ->
           let a = negated terms.(i) in
           let b = ref (-.rhs.(i)) in
           reduce_le a b;
           terms.(i) <- negated a;
           rhs.(i) <- -. !b
         | Eq -> ())
      end
    done;
    if not !changed then continue_ := false
  done;
  let fixed = ref 0 in
  if not !infeasible then begin
    for v = 0 to nv - 1 do
      if width0.(v) > eps && upper.(v) -. lower.(v) <= eps then incr fixed
    done;
    if !tightened > 0 || !coeffs > 0 then begin
      t.lower <- List.rev (Array.to_list (Array.sub lower 0 nv));
      t.upper <- List.rev (Array.to_list (Array.sub upper 0 nv));
      t.rows <-
        List.rev
          (Array.to_list
             (Array.mapi
                (fun i r -> { r with terms = Array.to_list terms.(i); rhs = rhs.(i) })
                rows));
      t.compiled <- None
    end
  end;
  {
    ps_rounds = !rounds;
    ps_fixed = !fixed;
    ps_tightened = !tightened;
    ps_coeffs = !coeffs;
    ps_infeasible = !infeasible;
  }
