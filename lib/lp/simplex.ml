type result =
  | Optimal of { objective : float; values : float array }
  | Feasible of { objective : float; values : float array }
  | Iter_limit
  | Infeasible
  | Unbounded

let eps_cost = 1e-7 (* reduced-cost optimality tolerance *)
let eps_pivot = 1e-9 (* smallest acceptable pivot element *)
let eps_feas = 1e-7 (* primal feasibility tolerance *)

type status = Basic | At_lower | At_upper

(* Working state for one (phase of a) simplex run.

   [tab] is the current tableau B^-1 * A over all columns including
   artificials; [xb] holds the values of the basic variables; [red] is the
   reduced-cost row for the active objective; nonbasic variables sit at the
   bound recorded in [status]. *)
type state = {
  m : int;
  n : int; (* total columns including artificials *)
  tab : float array array;
  xb : float array;
  basis : int array;
  status : status array;
  lower : float array;
  upper : float array;
  red : float array;
}

let nonbasic_value st j =
  match st.status.(j) with
  | At_lower -> st.lower.(j)
  | At_upper -> st.upper.(j)
  | Basic -> invalid_arg "nonbasic_value of basic variable"

(* Reduced costs from scratch for objective [c]: r = c - c_B * tab. *)
let recompute_reduced st c =
  for j = 0 to st.n - 1 do
    st.red.(j) <- c.(j)
  done;
  for i = 0 to st.m - 1 do
    let cb = c.(st.basis.(i)) in
    if cb <> 0. then begin
      let row = st.tab.(i) in
      for j = 0 to st.n - 1 do
        st.red.(j) <- st.red.(j) -. (cb *. row.(j))
      done
    end
  done

(* Entering column choice.  A nonbasic variable improves the objective when
   it is at its lower bound with negative reduced cost (increase it) or at
   its upper bound with positive reduced cost (decrease it).  [bland] forces
   smallest-index selection for anti-cycling. *)
let choose_entering st ~bland ~frozen =
  let best = ref (-1) in
  let best_score = ref eps_cost in
  let found_bland = ref (-1) in
  (try
     for j = 0 to st.n - 1 do
       if not (frozen j) then begin
         let improving =
           match st.status.(j) with
           | Basic -> 0.
           | At_lower -> -.st.red.(j)
           | At_upper ->
             (* a variable with equal bounds cannot move *)
             if st.upper.(j) -. st.lower.(j) < eps_feas then 0. else st.red.(j)
         in
         if improving > eps_cost then begin
           if bland then begin
             found_bland := j;
             raise Exit
           end;
           if improving > !best_score then begin
             best_score := improving;
             best := j
           end
         end
       end
     done
   with Exit -> ());
  if bland then !found_bland else !best

(* One simplex iteration for entering column [j].  Returns [`Progress] or
   [`Unbounded]. *)
let iterate st j =
  let increasing = st.status.(j) = At_lower in
  (* effective column: direction of change of basic variables is -dir*t *)
  let dir i = if increasing then st.tab.(i).(j) else -.st.tab.(i).(j) in
  (* ratio test: largest step t >= 0 keeping all basic vars within bounds *)
  let limit = ref (st.upper.(j) -. st.lower.(j)) (* bound-flip limit *) in
  let leave = ref (-1) in
  let leave_at_upper = ref false in
  for i = 0 to st.m - 1 do
    let d = dir i in
    let b = st.basis.(i) in
    let consider t at_upper =
      let better =
        t < !limit -. 1e-12
        (* tie-break on smaller basis index to curb cycling *)
        || (t <= !limit +. 1e-12 && !leave >= 0 && b < st.basis.(!leave))
      in
      if better then begin
        limit := min t !limit;
        leave := i;
        leave_at_upper := at_upper
      end
    in
    if d > eps_pivot then
      (* basic variable decreases towards its lower bound *)
      consider ((st.xb.(i) -. st.lower.(b)) /. d) false
    else if d < -.eps_pivot && st.upper.(b) < infinity then
      (* basic variable increases towards its upper bound *)
      consider ((st.upper.(b) -. st.xb.(i)) /. -.d) true
  done;
  if !limit = infinity then `Unbounded
  else begin
    let t = max 0. !limit in
    if !leave = -1 then begin
      (* bound flip: the entering variable traverses to its other bound *)
      for i = 0 to st.m - 1 do
        st.xb.(i) <- st.xb.(i) -. (dir i *. t)
      done;
      st.status.(j) <- (if increasing then At_upper else At_lower);
      `Progress
    end
    else begin
      let r = !leave in
      let enter_value = if increasing then st.lower.(j) +. t else st.upper.(j) -. t in
      for i = 0 to st.m - 1 do
        if i <> r then st.xb.(i) <- st.xb.(i) -. (dir i *. t)
      done;
      let old_basic = st.basis.(r) in
      st.status.(old_basic) <- (if !leave_at_upper then At_upper else At_lower);
      st.basis.(r) <- j;
      st.status.(j) <- Basic;
      st.xb.(r) <- enter_value;
      (* eliminate column j from other rows and the cost row *)
      let prow = st.tab.(r) in
      let pivot = prow.(j) in
      if abs_float pivot < eps_pivot then failwith "Simplex: numerically singular pivot";
      for k = 0 to st.n - 1 do
        prow.(k) <- prow.(k) /. pivot
      done;
      for i = 0 to st.m - 1 do
        if i <> r then begin
          let row = st.tab.(i) in
          let factor = row.(j) in
          if factor <> 0. then
            for k = 0 to st.n - 1 do
              row.(k) <- row.(k) -. (factor *. prow.(k))
            done
        end
      done;
      let factor = st.red.(j) in
      if factor <> 0. then
        for k = 0 to st.n - 1 do
          st.red.(k) <- st.red.(k) -. (factor *. prow.(k))
        done;
      `Progress
    end
  end

let optimize st ~c ~max_iters ~budget ~frozen =
  recompute_reduced st c;
  let iters = ref 0 in
  let bland_after = max 200 (4 * (st.m + st.n)) in
  let rec loop () =
    if !iters > max_iters then `Iter_limit
    else if !iters land 127 = 0 && Mf_util.Budget.over budget then `Iter_limit
    else begin
      let bland = !iters > bland_after in
      let j = choose_entering st ~bland ~frozen in
      if j < 0 then `Optimal
      else begin
        incr iters;
        match iterate st j with
        | `Unbounded -> `Unbounded
        | `Progress -> loop ()
      end
    end
  in
  loop ()

let objective_of st c =
  let total = ref 0. in
  for i = 0 to st.m - 1 do
    total := !total +. (c.(st.basis.(i)) *. st.xb.(i))
  done;
  for j = 0 to st.n - 1 do
    if st.status.(j) <> Basic then total := !total +. (c.(j) *. nonbasic_value st j)
  done;
  !total

let values_of st n_structural =
  let x = Array.make n_structural 0. in
  for j = 0 to n_structural - 1 do
    if st.status.(j) <> Basic then x.(j) <- nonbasic_value st j
  done;
  for i = 0 to st.m - 1 do
    if st.basis.(i) < n_structural then x.(st.basis.(i)) <- st.xb.(i)
  done;
  x

(* After phase 1, pivot any artificial still in the basis out (its value is
   ~0); if its row has no usable structural pivot the row is redundant and
   is neutralised by keeping the artificial basic at zero but frozen. *)
let expel_artificials st ~n_structural =
  for i = 0 to st.m - 1 do
    if st.basis.(i) >= n_structural then begin
      let row = st.tab.(i) in
      let j = ref (-1) in
      let k = ref 0 in
      while !j < 0 && !k < n_structural do
        if st.status.(!k) <> Basic && abs_float row.(!k) > 1e-6 then j := !k;
        incr k
      done;
      if !j >= 0 then begin
        let enter = !j in
        let pivot = row.(enter) in
        for x = 0 to st.n - 1 do
          row.(x) <- row.(x) /. pivot
        done;
        for r = 0 to st.m - 1 do
          if r <> i then begin
            let other = st.tab.(r) in
            let factor = other.(enter) in
            if factor <> 0. then
              for x = 0 to st.n - 1 do
                other.(x) <- other.(x) -. (factor *. row.(x))
              done
          end
        done;
        (* the artificial being expelled is at ~0, so the entering variable
           keeps the bound value it currently has *)
        let enter_value = nonbasic_value st enter in
        let old = st.basis.(i) in
        st.status.(old) <- At_lower;
        st.basis.(i) <- enter;
        st.status.(enter) <- Basic;
        st.xb.(i) <- enter_value
      end
    end
  done

let solve ?max_iters ?budget ~a ~b ~c ~lower ~upper () =
  let m = Array.length a in
  let n_structural = Array.length c in
  Array.iter (fun row ->
      if Array.length row <> n_structural then invalid_arg "Simplex.solve: ragged matrix")
    a;
  if Array.length lower <> n_structural || Array.length upper <> n_structural then
    invalid_arg "Simplex.solve: bound length mismatch";
  for j = 0 to n_structural - 1 do
    if not (Float.is_finite lower.(j)) then invalid_arg "Simplex.solve: infinite lower bound";
    if upper.(j) < lower.(j) -. 1e-12 then invalid_arg "Simplex.solve: crossed bounds"
  done;
  let n = n_structural + m in
  let max_iters = match max_iters with Some k -> k | None -> max 20_000 (200 * (m + n)) in
  (* Fault injection: starve the pivot budget so callers exercise their
     [Iter_limit] handling on real problems, not just mocks. *)
  let max_iters = if Mf_util.Chaos.strike Simplex_iters then min max_iters 3 else max_iters in
  (* residual of each row with structural variables at their lower bounds *)
  let residual i =
    let row = a.(i) in
    let acc = ref b.(i) in
    for j = 0 to n_structural - 1 do
      acc := !acc -. (row.(j) *. lower.(j))
    done;
    !acc
  in
  let tab =
    Array.init m (fun i ->
        let row = Array.make n 0. in
        let sign = if residual i < 0. then -1. else 1. in
        for j = 0 to n_structural - 1 do
          row.(j) <- sign *. a.(i).(j)
        done;
        row.(n_structural + i) <- 1.;
        row)
  in
  let xb = Array.init m (fun i -> abs_float (residual i)) in
  let basis = Array.init m (fun i -> n_structural + i) in
  let status = Array.init n (fun j -> if j < n_structural then At_lower else Basic) in
  let art_lower = Array.make m 0. in
  let art_upper = Array.make m infinity in
  let st =
    {
      m;
      n;
      tab;
      xb;
      basis;
      status;
      lower = Array.append lower art_lower;
      upper = Array.append upper art_upper;
      red = Array.make n 0.;
    }
  in
  (* Phase 1: minimise the sum of artificials. *)
  let phase1_cost = Array.init n (fun j -> if j >= n_structural then 1. else 0.) in
  match optimize st ~c:phase1_cost ~max_iters ~budget ~frozen:(fun _ -> false) with
  | `Unbounded -> failwith "Simplex: phase 1 unbounded (impossible)"
  | `Iter_limit ->
    (* no feasible point reached yet: nothing salvageable *)
    Iter_limit
  | `Optimal ->
    if objective_of st phase1_cost > 1e-6 then Infeasible
    else begin
      expel_artificials st ~n_structural;
      (* Phase 2: real objective; artificial columns are frozen out. *)
      let phase2_cost = Array.init n (fun j -> if j < n_structural then c.(j) else 0.) in
      let frozen j = j >= n_structural in
      let outcome = optimize st ~c:phase2_cost ~max_iters ~budget ~frozen in
      match outcome with
      | `Unbounded -> Unbounded
      | (`Optimal | `Iter_limit) as outcome ->
        let values = values_of st n_structural in
        let objective = ref 0. in
        for j = 0 to n_structural - 1 do
          objective := !objective +. (c.(j) *. values.(j))
        done;
        (* phase 2 maintains primal feasibility, so even a truncated run
           yields a usable (suboptimal) point *)
        (match outcome with
         | `Optimal -> Optimal { objective = !objective; values }
         | `Iter_limit -> Feasible { objective = !objective; values })
    end
