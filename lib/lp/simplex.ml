(* Sparse revised bounded-variable simplex with a product-form (eta-file)
   basis inverse.  See simplex.mli for the contract; the notes here cover
   the representation.

   The basis inverse is held as B^-1 = E_k · … · E_1, each eta the
   elementary column transform of one pivot (or one factorisation step).
   FTRAN applies etas in creation order to compute B^-1 v; BTRAN applies
   them transposed in reverse order to compute v B^-1.  Every
   [refactor_interval] fresh etas the file is rebuilt from the current
   basis by deterministic Gaussian elimination, bounding both drift and
   the O(#etas) cost of each FTRAN/BTRAN.

   Determinism: pricing and both ratio tests break ties on the smallest
   column/basis index, and the refactorisation orders columns by
   (nnz, index) and picks the largest-magnitude pivot row with ties to the
   smallest row, so a solve is a pure function of its inputs. *)

type result =
  | Optimal of { objective : float; values : float array }
  | Feasible of { objective : float; values : float array }
  | Iter_limit
  | Infeasible
  | Unbounded

(* Process-wide solver telemetry.  Atomic so worker domains can bump them
   during parallel pool builds; sums are schedule-independent, so totals are
   deterministic for any job count.  Read/reset by [bench -- perf] and the
   MFDFT_PROF report — never consulted by the solver itself. *)
module Stats = struct
  let primal_pivots = Atomic.make 0
  let dual_pivots = Atomic.make 0
  let phase1_solves = Atomic.make 0
  let refactors = Atomic.make 0

  let all = [ primal_pivots; dual_pivots; phase1_solves; refactors ]
  let reset () = List.iter (fun a -> Atomic.set a 0) all
  let pivots () = Atomic.get primal_pivots + Atomic.get dual_pivots
end

let eps_cost = 1e-7 (* reduced-cost optimality tolerance *)
let eps_pivot = 1e-9 (* smallest acceptable pivot element *)
let eps_feas = 1e-7 (* primal feasibility tolerance *)
let eps_singular = 1e-10 (* factorisation pivot threshold *)
let refactor_interval = 64 (* fresh etas between refactorisations *)

type col = { idx : int array; v : float array }
type problem = { m : int; n : int; cols : col array; b : float array }
type status = Basic | At_lower | At_upper
type basis = { basic : int array; vstat : status array }

type info = {
  primal_pivots : int;
  dual_pivots : int;
  warm : bool;
  fell_back : bool;
}

(* Raised on a pivot the eta representation cannot absorb; converted to
   [Failure] on the cold path, to a silent cold fallback on the warm path. *)
exception Singular of string

type eta = { er : int; ei : int array; ev : float array }

(* Working state for one simplex run.  [n] counts every column visible to
   this run — the caller's columns plus, on the cold path, one artificial
   per row appended at indices >= problem.n. *)
type core = {
  m : int;
  n : int;
  cols : col array;
  b : float array;
  lower : float array;
  upper : float array;
  basic : int array; (* row -> column *)
  vstat : status array; (* column -> status *)
  xb : float array; (* basic values, by row *)
  mutable etas : eta array; (* 0 .. n_etas-1 valid *)
  mutable n_etas : int;
  mutable fresh : int; (* etas pushed since the last factorisation *)
}

let nonbasic_value core j =
  match core.vstat.(j) with
  | At_lower -> core.lower.(j)
  | At_upper -> core.upper.(j)
  | Basic -> invalid_arg "nonbasic_value of basic variable"

(* ------------------------------------------------------------------ *)
(* eta file *)

let push_eta core e =
  if core.n_etas = Array.length core.etas then begin
    let bigger = Array.make (max 32 (2 * core.n_etas)) e in
    Array.blit core.etas 0 bigger 0 core.n_etas;
    core.etas <- bigger
  end;
  core.etas.(core.n_etas) <- e;
  core.n_etas <- core.n_etas + 1;
  core.fresh <- core.fresh + 1

(* Eta absorbing pivot row [r] of the FTRANned column [w]: the stored
   column is eta_r = 1/w_r, eta_i = -w_i/w_r, entries in row order. *)
let eta_of (w : float array) r =
  let m = Array.length w in
  let wr = w.(r) in
  let nnz = ref 1 in
  for i = 0 to m - 1 do
    if i <> r && w.(i) <> 0. then incr nnz
  done;
  let ei = Array.make !nnz 0 in
  let ev = Array.make !nnz 0. in
  let p = ref 0 in
  for i = 0 to m - 1 do
    if i = r then begin
      ei.(!p) <- r;
      ev.(!p) <- 1. /. wr;
      incr p
    end
    else if w.(i) <> 0. then begin
      ei.(!p) <- i;
      ev.(!p) <- -.w.(i) /. wr;
      incr p
    end
  done;
  { er = r; ei; ev }

(* v <- B^-1 v *)
let ftran core v =
  for k = 0 to core.n_etas - 1 do
    let e = core.etas.(k) in
    let t = v.(e.er) in
    if t <> 0. then begin
      v.(e.er) <- 0.;
      let ei = e.ei and ev = e.ev in
      for p = 0 to Array.length ei - 1 do
        v.(ei.(p)) <- v.(ei.(p)) +. (ev.(p) *. t)
      done
    end
  done

(* y <- y B^-1 (row vector) *)
let btran core y =
  for k = core.n_etas - 1 downto 0 do
    let e = core.etas.(k) in
    let ei = e.ei and ev = e.ev in
    let acc = ref 0. in
    for p = 0 to Array.length ei - 1 do
      acc := !acc +. (ev.(p) *. y.(ei.(p)))
    done;
    y.(e.er) <- !acc
  done

let load_col core j w =
  Array.fill w 0 core.m 0.;
  let c = core.cols.(j) in
  for p = 0 to Array.length c.idx - 1 do
    w.(c.idx.(p)) <- c.v.(p)
  done

(* rho · A_j for a dense row vector rho *)
let row_dot core rho j =
  let c = core.cols.(j) in
  let acc = ref 0. in
  for p = 0 to Array.length c.idx - 1 do
    acc := !acc +. (rho.(c.idx.(p)) *. c.v.(p))
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* factorisation and derived quantities *)

(* Rebuild the eta file from the current basis.  Columns enter in
   (nnz, index) order; each is FTRANned through the etas built so far and
   pivots on its largest-magnitude entry among still-unpivoted rows
   (strict comparison: ties go to the smallest row).  Returns false when
   the basis is numerically singular.  Row assignment may permute, so
   callers must recompute [xb] afterwards. *)
let factorize core =
  Atomic.incr Stats.refactors;
  core.n_etas <- 0;
  core.fresh <- 0;
  let order = Array.copy core.basic in
  Array.sort
    (fun j1 j2 ->
      let n1 = Array.length core.cols.(j1).idx
      and n2 = Array.length core.cols.(j2).idx in
      if n1 <> n2 then compare n1 n2 else compare j1 j2)
    order;
  let pivoted = Array.make core.m false in
  let new_basic = Array.make core.m (-1) in
  let w = Array.make core.m 0. in
  let ok = ref true in
  let k = ref 0 in
  while !ok && !k < core.m do
    let j = order.(!k) in
    load_col core j w;
    ftran core w;
    let r = ref (-1) in
    let best = ref 0. in
    for i = 0 to core.m - 1 do
      if not pivoted.(i) && abs_float w.(i) > !best then begin
        best := abs_float w.(i);
        r := i
      end
    done;
    if !best <= eps_singular then ok := false
    else begin
      push_eta core (eta_of w !r);
      pivoted.(!r) <- true;
      new_basic.(!r) <- j;
      incr k
    end
  done;
  if !ok then Array.blit new_basic 0 core.basic 0 core.m;
  (* the factorisation's own etas are the baseline, not drift *)
  core.fresh <- 0;
  !ok

(* xb <- B^-1 (b - A_N x_N) *)
let compute_xb core =
  let r = Array.copy core.b in
  for j = 0 to core.n - 1 do
    if core.vstat.(j) <> Basic then begin
      let x = nonbasic_value core j in
      if x <> 0. then begin
        let c = core.cols.(j) in
        for p = 0 to Array.length c.idx - 1 do
          r.(c.idx.(p)) <- r.(c.idx.(p)) -. (c.v.(p) *. x)
        done
      end
    end
  done;
  ftran core r;
  Array.blit r 0 core.xb 0 core.m

(* y <- c_B B^-1 *)
let compute_y core c y =
  for i = 0 to core.m - 1 do
    y.(i) <- c.(core.basic.(i))
  done;
  btran core y

let reduced core c y j = c.(j) -. row_dot core y j

let maybe_refactor core =
  if core.fresh >= refactor_interval then begin
    if not (factorize core) then
      raise (Singular "Simplex: singular basis at refactorisation");
    compute_xb core
  end

(* ------------------------------------------------------------------ *)
(* primal simplex *)

(* Entering column choice against current duals [y].  A nonbasic variable
   improves the objective when it is at its lower bound with negative
   reduced cost (increase it) or at its upper bound with positive reduced
   cost (decrease it).  [bland] forces smallest-index selection for
   anti-cycling. *)
let choose_entering core ~c ~y ~bland ~frozen =
  let best = ref (-1) in
  let best_score = ref eps_cost in
  (try
     for j = 0 to core.n - 1 do
       if (not (frozen j)) && core.vstat.(j) <> Basic then begin
         let improving =
           match core.vstat.(j) with
           | Basic -> 0.
           | At_lower -> -.reduced core c y j
           | At_upper ->
             (* a variable with equal bounds cannot move *)
             if core.upper.(j) -. core.lower.(j) < eps_feas then 0.
             else reduced core c y j
         in
         if improving > eps_cost then begin
           if bland then begin
             best := j;
             raise Exit
           end;
           if improving > !best_score then begin
             best_score := improving;
             best := j
           end
         end
       end
     done
   with Exit -> ());
  !best

(* One primal iteration for entering column [j] ([w] is row-length
   scratch).  Returns [`Progress] or [`Unbounded]. *)
let primal_step core j w =
  load_col core j w;
  ftran core w;
  let increasing = core.vstat.(j) = At_lower in
  (* direction of change of basic variables is -dir*t *)
  let dir i = if increasing then w.(i) else -.w.(i) in
  (* ratio test: largest step t >= 0 keeping all basic vars within bounds *)
  let limit = ref (core.upper.(j) -. core.lower.(j)) (* bound-flip limit *) in
  let leave = ref (-1) in
  let leave_at_upper = ref false in
  for i = 0 to core.m - 1 do
    let d = dir i in
    let bvar = core.basic.(i) in
    let consider t at_upper =
      let better =
        t < !limit -. 1e-12
        (* tie-break on smaller basis index to curb cycling *)
        || (t <= !limit +. 1e-12 && !leave >= 0 && bvar < core.basic.(!leave))
      in
      if better then begin
        limit := min t !limit;
        leave := i;
        leave_at_upper := at_upper
      end
    in
    if d > eps_pivot then
      (* basic variable decreases towards its lower bound *)
      consider ((core.xb.(i) -. core.lower.(bvar)) /. d) false
    else if d < -.eps_pivot && core.upper.(bvar) < infinity then
      (* basic variable increases towards its upper bound *)
      consider ((core.upper.(bvar) -. core.xb.(i)) /. -.d) true
  done;
  if !limit = infinity then `Unbounded
  else begin
    let t = max 0. !limit in
    if !leave = -1 then begin
      (* bound flip: the entering variable traverses to its other bound *)
      for i = 0 to core.m - 1 do
        core.xb.(i) <- core.xb.(i) -. (dir i *. t)
      done;
      core.vstat.(j) <- (if increasing then At_upper else At_lower);
      `Progress
    end
    else begin
      let r = !leave in
      if abs_float w.(r) < eps_pivot then
        raise (Singular "Simplex: numerically singular pivot");
      let enter_value =
        if increasing then core.lower.(j) +. t else core.upper.(j) -. t
      in
      for i = 0 to core.m - 1 do
        if i <> r then core.xb.(i) <- core.xb.(i) -. (dir i *. t)
      done;
      let old_basic = core.basic.(r) in
      core.vstat.(old_basic) <- (if !leave_at_upper then At_upper else At_lower);
      core.basic.(r) <- j;
      core.vstat.(j) <- Basic;
      core.xb.(r) <- enter_value;
      push_eta core (eta_of w r);
      maybe_refactor core;
      `Progress
    end
  end

let primal_opt core ~c ~max_iters ~budget ~frozen ~spent =
  let iters = ref 0 in
  let bland_after = max 200 (4 * (core.m + core.n)) in
  let y = Array.make core.m 0. in
  let w = Array.make core.m 0. in
  let rec loop () =
    if !iters > max_iters then `Iter_limit
    else if !iters land 127 = 0 && Mf_util.Budget.over budget then `Iter_limit
    else begin
      compute_y core c y;
      let bland = !iters > bland_after in
      let j = choose_entering core ~c ~y ~bland ~frozen in
      if j < 0 then `Optimal
      else begin
        incr iters;
        Atomic.incr Stats.primal_pivots;
        incr spent;
        match primal_step core j w with
        | `Unbounded -> `Unbounded
        | `Progress -> loop ()
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* dual simplex (warm path) *)

(* Re-optimise a dual-feasible basis whose [xb] violates bounds — the
   branch-and-bound child-node case.  Leaving row: largest bound violation
   (ties to the smallest row).  Entering column: among nonbasic, non-fixed
   columns whose tableau-row entry lets the leaving variable move back to
   its violated bound while keeping dual feasibility, the smallest ratio
   |d_j| / |alpha_j| (ties to the smallest column).  Columns with equal
   bounds are excluded: a fixed primal variable imposes no dual-sign
   constraint, so skipping them keeps the no-entering-column certificate
   (primal infeasibility) valid.  Short-step variant — no dual bound-flip
   ratio test; termination is guaranteed by [max_iters] with a cold
   fallback behind it. *)
let dual_opt core ~c ~max_iters ~budget ~spent =
  let y = Array.make core.m 0. in
  let rho = Array.make core.m 0. in
  let w = Array.make core.m 0. in
  let iters = ref 0 in
  let rec loop () =
    if !iters > max_iters then `Iter_limit
    else if !iters land 127 = 0 && Mf_util.Budget.over budget then `Iter_limit
    else begin
      let r = ref (-1) in
      let viol = ref eps_feas in
      let below = ref false in
      for i = 0 to core.m - 1 do
        let bvar = core.basic.(i) in
        let v_lo = core.lower.(bvar) -. core.xb.(i) in
        let v_up = core.xb.(i) -. core.upper.(bvar) in
        if v_lo > !viol then begin
          viol := v_lo;
          r := i;
          below := true
        end;
        if v_up > !viol then begin
          viol := v_up;
          r := i;
          below := false
        end
      done;
      if !r < 0 then `Feasible
      else begin
        let r = !r and below = !below in
        Array.fill rho 0 core.m 0.;
        rho.(r) <- 1.;
        btran core rho;
        compute_y core c y;
        let q = ref (-1) in
        let best = ref infinity in
        for j = 0 to core.n - 1 do
          if core.vstat.(j) <> Basic && core.upper.(j) -. core.lower.(j) >= eps_feas
          then begin
            let alpha = row_dot core rho j in
            let eligible =
              if below then
                (core.vstat.(j) = At_lower && alpha < -.eps_pivot)
                || (core.vstat.(j) = At_upper && alpha > eps_pivot)
              else
                (core.vstat.(j) = At_lower && alpha > eps_pivot)
                || (core.vstat.(j) = At_upper && alpha < -.eps_pivot)
            in
            if eligible then begin
              let ratio = abs_float (reduced core c y j) /. abs_float alpha in
              if ratio < !best -. 1e-12 then begin
                best := ratio;
                q := j
              end
            end
          end
        done;
        if !q < 0 then
          (* dual unbounded: certifies the primal has no feasible point *)
          `Infeasible
        else begin
          let q = !q in
          load_col core q w;
          ftran core w;
          if abs_float w.(r) < eps_pivot then `Breakdown
          else begin
            incr iters;
            Atomic.incr Stats.dual_pivots;
            incr spent;
            (* theta: signed move of the entering variable that drives the
               leaving variable exactly onto its violated bound *)
            let target =
              if below then core.lower.(core.basic.(r))
              else core.upper.(core.basic.(r))
            in
            let theta = (core.xb.(r) -. target) /. w.(r) in
            let enter_value = nonbasic_value core q +. theta in
            for i = 0 to core.m - 1 do
              if i <> r then core.xb.(i) <- core.xb.(i) -. (w.(i) *. theta)
            done;
            let old = core.basic.(r) in
            core.vstat.(old) <- (if below then At_lower else At_upper);
            core.basic.(r) <- q;
            core.vstat.(q) <- Basic;
            core.xb.(r) <- enter_value;
            push_eta core (eta_of w r);
            maybe_refactor core;
            loop ()
          end
        end
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* solution extraction *)

let values_of core n_structural =
  let x = Array.make n_structural 0. in
  for j = 0 to n_structural - 1 do
    if core.vstat.(j) <> Basic then x.(j) <- nonbasic_value core j
  done;
  for i = 0 to core.m - 1 do
    if core.basic.(i) < n_structural then x.(core.basic.(i)) <- core.xb.(i)
  done;
  x

let extract core ~n_structural ~c outcome =
  let values = values_of core n_structural in
  let objective = ref 0. in
  for j = 0 to n_structural - 1 do
    objective := !objective +. (c.(j) *. values.(j))
  done;
  match outcome with
  | `Optimal -> Optimal { objective = !objective; values }
  | `Iter_limit ->
    (* primal feasibility is maintained, so even a truncated run yields a
       usable (suboptimal) point *)
    Feasible { objective = !objective; values }

let snapshot core ~n_structural =
  (* storable only when no artificial occupies the basis *)
  if Array.exists (fun j -> j >= n_structural) core.basic then None
  else
    Some
      { basic = Array.copy core.basic; vstat = Array.sub core.vstat 0 n_structural }

(* ------------------------------------------------------------------ *)
(* cold path: two-phase primal from an artificial basis *)

let phase1_objective core ~n_structural =
  let total = ref 0. in
  for i = 0 to core.m - 1 do
    if core.basic.(i) >= n_structural then total := !total +. core.xb.(i)
  done;
  for j = n_structural to core.n - 1 do
    if core.vstat.(j) <> Basic then total := !total +. nonbasic_value core j
  done;
  !total

(* After phase 1, pivot any artificial still in the basis out (its value
   is ~0) via a zero-length pivot on the first usable nonbasic structural
   column of its tableau row; an artificial whose row has no usable pivot
   marks a redundant row and stays basic at zero, frozen in phase 2. *)
let expel_artificials core ~n_structural =
  let rho = Array.make core.m 0. in
  let w = Array.make core.m 0. in
  let stuck = Array.make (core.n - n_structural) false in
  let find_artificial_row () =
    let found = ref (-1) in
    (try
       for i = 0 to core.m - 1 do
         let bvar = core.basic.(i) in
         if bvar >= n_structural && not stuck.(bvar - n_structural) then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    !found
  in
  let rec go () =
    let i = find_artificial_row () in
    if i >= 0 then begin
      Array.fill rho 0 core.m 0.;
      rho.(i) <- 1.;
      btran core rho;
      let enter = ref (-1) in
      let j = ref 0 in
      while !enter < 0 && !j < n_structural do
        if core.vstat.(!j) <> Basic && abs_float (row_dot core rho !j) > 1e-6 then
          enter := !j;
        incr j
      done;
      (if !enter < 0 then stuck.(core.basic.(i) - n_structural) <- true
       else begin
         let q = !enter in
         load_col core q w;
         ftran core w;
         (* the artificial being expelled is at ~0, so the step is zero and
            the entering variable keeps its current bound value *)
         let enter_value = nonbasic_value core q in
         let old = core.basic.(i) in
         core.vstat.(old) <- At_lower;
         core.basic.(i) <- q;
         core.vstat.(q) <- Basic;
         core.xb.(i) <- enter_value;
         push_eta core (eta_of w i);
         maybe_refactor core
       end);
      go ()
    end
  in
  go ()

let solve_cold ~max_iters ~budget (problem : problem) ~lower ~upper ~c ~spent_p =
  let m = problem.m in
  let n_structural = problem.n in
  let n = n_structural + m in
  Atomic.incr Stats.phase1_solves;
  (* residual of each row with structural variables at their lower bounds
     fixes each artificial's sign so the all-artificial basis is feasible *)
  let residual = Array.copy problem.b in
  for j = 0 to n_structural - 1 do
    if lower.(j) <> 0. then begin
      let cj = problem.cols.(j) in
      for p = 0 to Array.length cj.idx - 1 do
        residual.(cj.idx.(p)) <- residual.(cj.idx.(p)) -. (cj.v.(p) *. lower.(j))
      done
    end
  done;
  let cols =
    Array.init n (fun j ->
        if j < n_structural then problem.cols.(j)
        else begin
          let i = j - n_structural in
          { idx = [| i |]; v = [| (if residual.(i) < 0. then -1. else 1.) |] }
        end)
  in
  let core =
    {
      m;
      n;
      cols;
      b = problem.b;
      lower = Array.append lower (Array.make m 0.);
      upper = Array.append upper (Array.make m infinity);
      basic = Array.init m (fun i -> n_structural + i);
      vstat = Array.init n (fun j -> if j < n_structural then At_lower else Basic);
      xb = Array.make m 0.;
      etas = Array.make 16 { er = 0; ei = [||]; ev = [||] };
      n_etas = 0;
      fresh = 0;
    }
  in
  if not (factorize core) then
    raise (Singular "Simplex: singular artificial basis (impossible)");
  compute_xb core;
  (* Phase 1: minimise the sum of artificials. *)
  let phase1_cost = Array.init n (fun j -> if j >= n_structural then 1. else 0.) in
  match
    primal_opt core ~c:phase1_cost ~max_iters ~budget ~frozen:(fun _ -> false)
      ~spent:spent_p
  with
  | `Unbounded -> failwith "Simplex: phase 1 unbounded (impossible)"
  | `Iter_limit ->
    (* no feasible point reached yet: nothing salvageable *)
    (Iter_limit, None)
  | `Optimal ->
    if phase1_objective core ~n_structural > 1e-6 then (Infeasible, None)
    else begin
      expel_artificials core ~n_structural;
      (* Phase 2: real objective; artificial columns are frozen out. *)
      let phase2_cost =
        Array.init n (fun j -> if j < n_structural then c.(j) else 0.)
      in
      let frozen j = j >= n_structural in
      match primal_opt core ~c:phase2_cost ~max_iters ~budget ~frozen ~spent:spent_p with
      | `Unbounded -> (Unbounded, None)
      | (`Optimal | `Iter_limit) as outcome ->
        let result = extract core ~n_structural ~c outcome in
        let basis =
          match result with
          | Optimal _ -> snapshot core ~n_structural
          | _ -> None
        in
        (result, basis)
    end

(* ------------------------------------------------------------------ *)
(* warm path: dual re-optimisation from a supplied basis *)

let basis_shape_ok ~m ~n (wb : basis) =
  Array.length wb.basic = m
  && Array.length wb.vstat = n
  && Array.for_all (fun j -> j >= 0 && j < n && wb.vstat.(j) = Basic) wb.basic
  && begin
       let n_basic = ref 0 in
       Array.iter (fun s -> if s = Basic then incr n_basic) wb.vstat;
       !n_basic = m
     end

(* Returns [Some (result, basis)] when the warm basis carried the solve to
   completion, [None] to request the cold fallback.  Never raises. *)
let solve_warm ~max_iters ~budget (problem : problem) ~lower ~upper ~c (wb : basis) ~spent_p
    ~spent_d =
  let m = problem.m in
  let n = problem.n in
  if not (basis_shape_ok ~m ~n wb) then None
  else begin
    let core =
      {
        m;
        n;
        cols = problem.cols;
        b = problem.b;
        lower;
        upper;
        basic = Array.copy wb.basic;
        vstat = Array.copy wb.vstat;
        xb = Array.make m 0.;
        etas = Array.make 16 { er = 0; ei = [||]; ev = [||] };
        n_etas = 0;
        fresh = 0;
      }
    in
    match
      if not (factorize core) then None
      else begin
        (* normalise statuses stranded by bound changes, then repair dual
           feasibility: a wrong-sign reduced cost on a boxed column is fixed
           by flipping it to its other bound (primal feasibility is the dual
           simplex's job); on an unboxed column it is unrepairable *)
        for j = 0 to n - 1 do
          if core.vstat.(j) = At_upper && core.upper.(j) = infinity then
            core.vstat.(j) <- At_lower
        done;
        let y = Array.make m 0. in
        compute_y core c y;
        let repairable = ref true in
        for j = 0 to n - 1 do
          if core.vstat.(j) <> Basic && core.upper.(j) -. core.lower.(j) >= eps_feas
          then begin
            let d = reduced core c y j in
            match core.vstat.(j) with
            | At_lower when d < -.eps_cost ->
              if core.upper.(j) < infinity then core.vstat.(j) <- At_upper
              else repairable := false
            | At_upper when d > eps_cost -> core.vstat.(j) <- At_lower
            | _ -> ()
          end
        done;
        if not !repairable then None
        else begin
          compute_xb core;
          match dual_opt core ~c ~max_iters ~budget ~spent:spent_d with
          | `Breakdown -> None
          | `Iter_limit ->
            (* a dual stall under budget pressure is a legitimate resource
               outcome (no primal-feasible point in hand); without pressure
               it asks for the cold fallback *)
            if Mf_util.Budget.over budget then Some (Iter_limit, None) else None
          | `Infeasible -> Some (Infeasible, None)
          | `Feasible -> (
            (* primal cleanup: confirms optimality, absorbs numerical drift;
               normally terminates with zero pivots *)
            match
              primal_opt core ~c ~max_iters ~budget ~frozen:(fun _ -> false)
                ~spent:spent_p
            with
            | `Unbounded -> Some (Unbounded, None)
            | (`Optimal | `Iter_limit) as outcome ->
              let result = extract core ~n_structural:n ~c outcome in
              let basis =
                match result with
                | Optimal _ -> snapshot core ~n_structural:n
                | _ -> None
              in
              Some (result, basis))
        end
      end
    with
    | outcome -> outcome
    | exception Singular _ -> None
  end

(* ------------------------------------------------------------------ *)
(* entry point *)

let solve ?max_iters ?budget ?warm (problem : problem) ~lower ~upper ~c =
  let m = problem.m in
  let n = problem.n in
  if Array.length problem.cols <> n || Array.length problem.b <> m then
    invalid_arg "Simplex.solve: malformed problem";
  if Array.length lower <> n || Array.length upper <> n || Array.length c <> n then
    invalid_arg "Simplex.solve: dimension mismatch";
  for j = 0 to n - 1 do
    if not (Float.is_finite lower.(j)) then
      invalid_arg "Simplex.solve: infinite lower bound";
    if upper.(j) < lower.(j) -. 1e-12 then invalid_arg "Simplex.solve: crossed bounds";
    let cj = problem.cols.(j) in
    if Array.length cj.idx <> Array.length cj.v then
      invalid_arg "Simplex.solve: ragged column";
    Array.iter
      (fun i -> if i < 0 || i >= m then invalid_arg "Simplex.solve: row out of range")
      cj.idx
  done;
  let max_iters =
    match max_iters with Some k -> k | None -> max 20_000 (200 * ((2 * m) + n))
  in
  (* Fault injection: starve the pivot budget so callers exercise their
     [Iter_limit] handling on real problems, not just mocks. *)
  let max_iters = if Mf_util.Chaos.strike Simplex_iters then min max_iters 3 else max_iters in
  let spent_p = ref 0 in
  let spent_d = ref 0 in
  let run_cold ~fell_back =
    match solve_cold ~max_iters ~budget problem ~lower ~upper ~c ~spent_p with
    | result, basis ->
      ( result,
        basis,
        { primal_pivots = !spent_p; dual_pivots = !spent_d; warm = false; fell_back } )
    | exception Singular msg -> raise (Failure msg)
  in
  match warm with
  | None -> run_cold ~fell_back:false
  | Some wb -> (
    match solve_warm ~max_iters ~budget problem ~lower ~upper ~c wb ~spent_p ~spent_d with
    | Some (result, basis) ->
      ( result,
        basis,
        {
          primal_pivots = !spent_p;
          dual_pivots = !spent_d;
          warm = true;
          fell_back = false;
        } )
    | None -> run_cold ~fell_back:true)
