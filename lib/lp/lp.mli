(** Incremental linear-program builder over {!Simplex}.

    Rows may be inequalities; logical (slack/surplus) variables and
    conversion to the simplex computational form happen at solve time, and
    the compiled sparse model is cached across solves until the builder is
    mutated.  The objective sense is minimisation. *)

type t
type var = int

type relation = Le | Ge | Eq

type result =
  | Optimal of { objective : float; values : float array }
      (** [values] is indexed by {!var}. *)
  | Feasible of { objective : float; values : float array }
      (** primal-feasible but possibly suboptimal — the pivot or wall-clock
          budget ran out during phase 2 *)
  | Iter_limit
      (** the budget ran out before any feasible point was found *)
  | Infeasible
  | Unbounded
  | Numerical of string
      (** the simplex hit a numerically singular pivot; the message is the
          underlying diagnostic *)

type basis
(** A warm-start handle: the optimal basis of a previous {!solve_b} on this
    builder (or on an earlier, smaller state of it).  Opaque; pass it back
    via [?warm].  Remains usable after rows are appended — lazy cuts extend
    the basis with their logicals basic — and under different [?fix]
    functions, which is how branch-and-bound children reuse the parent
    node's basis. *)

type info = Simplex.info = {
  primal_pivots : int;
  dual_pivots : int;
  warm : bool;  (** solved by dual re-optimisation of the warm basis *)
  fell_back : bool;  (** a warm basis was supplied but abandoned *)
}
(** Per-solve effort accounting; see {!Simplex.info}. *)

val create : unit -> t

val add_var : ?lower:float -> ?upper:float -> ?obj:float -> t -> var
(** [add_var t] declares a variable with bounds [\[lower, upper\]]
    (default [\[0, infinity)]) and objective coefficient [obj] (default 0). *)

val n_vars : t -> int

val set_obj : t -> var -> float -> unit
(** Overwrite a variable's objective coefficient. *)

val add_row : t -> (float * var) list -> relation -> float -> unit
(** [add_row t terms rel rhs] adds the constraint [Σ coef·var rel rhs].
    Repeated variables in [terms] are summed. *)

val n_rows : t -> int

val row : t -> int -> (float * var) list * relation * float
(** [row t i] is the [i]-th constraint (0-based, insertion order) with
    duplicate variables merged and terms sorted by variable — the
    normal form the compiled model uses.  Read-only access for cut
    separation. *)

val prepare : t -> unit
(** Compile and cache the sparse model now.  {!solve_b} compiles lazily
    and caches on the builder; calling [prepare] before fanning solves out
    across domains keeps that one mutation on the coordinator, after which
    concurrent [solve_b] calls only read the compiled form. *)

type presolve_stats = {
  ps_rounds : int;  (** fixpoint passes executed (capped) *)
  ps_fixed : int;  (** variables whose bounds collapsed to a point *)
  ps_tightened : int;  (** bound improvements applied *)
  ps_coeffs : int;  (** coefficients reduced *)
  ps_infeasible : bool;  (** bound propagation proved the model infeasible *)
}

val presolve : ?integer:(var -> bool) -> t -> presolve_stats
(** Tighten the model in place: activity-based bound tightening (with
    integral rounding for variables [integer] selects) and 0-1 coefficient
    reduction on inequality rows, iterated to a capped fixpoint.  Rows are
    never deleted and the variable/row layout is unchanged, so bases and
    {!extend_basis} behave exactly as before; every deduction is implied by
    the model, so solve results are unchanged (only, usually, the effort —
    and the tightness of the LP relaxation).  Deductions remain valid under
    any later per-solve [?fix] within the tightened bounds.  When
    [ps_infeasible] is true the builder is left untouched and the caller
    should report infeasibility without solving. *)

val solve_b :
  ?max_iters:int ->
  ?budget:Mf_util.Budget.t ->
  ?fix:(var -> float option) ->
  ?warm:basis ->
  t ->
  result * basis option * info
(** Solve the LP (relaxation).  [fix v = Some x] clamps both bounds of [v]
    to [x] for this solve only — how branch-and-bound explores subproblems
    without rebuilding the model.  The builder is reusable: more rows and
    variables may be added after a solve and the model solved again, which
    is how lazy loop-elimination constraints are injected.

    [warm] re-optimises from a previously returned basis with the dual
    simplex; when that breaks down the solve transparently restarts cold
    and reports it in {!info} — supplying [warm] never changes the result,
    only (usually) the effort.  The returned basis is [Some] exactly for
    [Optimal] results whose basis is storable; it is independent of the
    builder's later mutations.

    [budget] bounds wall-clock time; see {!Simplex.solve}.  Never raises:
    resource exhaustion surfaces as [Feasible]/[Iter_limit] and numerical
    breakdown as [Numerical]. *)

val solve :
  ?max_iters:int -> ?budget:Mf_util.Budget.t -> ?fix:(var -> float option) -> t -> result
(** [solve t] is [solve_b t] without the warm-start plumbing — kept for
    callers that need only the result. *)
