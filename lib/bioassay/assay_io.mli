(** Textual sequencing-graph descriptions.

    Line-oriented format accepted by the CLI wherever an assay is expected:

    {v
    # comment
    assay NAME
    op ID mix|detect|heat|filter DURATION NAME
    dep FROM TO          # FROM's product feeds TO
    v}

    Operation ids must be dense 0..n-1.  [to_string] round-trips. *)

val parse_diags :
  ?file:string -> string -> (Seqgraph.t * Mf_util.Diag.t list, Mf_util.Diag.t list) result
(** Parse into a sequencing graph plus non-fatal diagnostics: unknown
    directives ([MF301]) and duplicate assay headers ([MF302]) are warnings
    and the line is skipped; syntax errors ([MF303]) and [Seqgraph.create]
    rejections ([MF304]) are fatal, returned errors-first with any
    warnings collected before the failure.  Spans carry the same
    line/column context as the legacy error strings. *)

val parse : string -> (Seqgraph.t, string) result
(** Legacy strict API: {!parse_diags} with every diagnostic — warnings
    included — treated as a rejection. *)

val load_diags : string -> (Seqgraph.t * Mf_util.Diag.t list, Mf_util.Diag.t list) result
val load : string -> (Seqgraph.t, string) result
val to_string : Seqgraph.t -> string
val save : string -> Seqgraph.t -> unit
