let kind_of_string = function
  | "mix" -> Some Op.Mix
  | "detect" -> Some Op.Detect
  | "heat" -> Some Op.Heat
  | "filter" -> Some Op.Filter
  | _ -> None

(* 1-based column of the first occurrence of [token] in [raw], for parse
   errors that can name the offending directive. *)
let column_of raw token =
  let n = String.length raw and m = String.length token in
  let rec go i =
    if m = 0 || i + m > n then None
    else if String.sub raw i m = token then Some (i + 1)
    else go (i + 1)
  in
  go 0

module Diag = Mf_util.Diag

let parse_diags ?file text =
  let ops = ref [] in
  let deps = ref [] in
  let seen_header = ref false in
  let warns = ref [] in
  let rec process lineno = function
    | [] ->
      let fatal code msg =
        Error (Diag.by_severity (Diag.errorf ~where:(Diag.span ?file ()) ~code "%s" msg :: !warns))
      in
      if not !seen_header then fatal "MF303" "empty description: missing assay header"
      else begin
        match Seqgraph.create (List.rev !ops) ~edges:(List.rev !deps) with
        | Ok g -> Ok (g, List.rev !warns)
        | Error m -> fatal "MF304" ("validation: " ^ m)
      end
    | raw :: rest -> (
        let line =
          match String.index_opt raw '#' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        let words =
          String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
        in
        let where () =
          Diag.span ?file ~line:lineno
            ?col:(Option.bind (List.nth_opt words 0) (column_of raw))
            ()
        in
        let error _lineno msg =
          Error (Diag.by_severity (Diag.errorf ~where:(where ()) ~code:"MF303" "%s" msg :: !warns))
        in
        let skip_with_warning code msg =
          warns := Diag.warningf ~where:(where ()) ~code "%s" msg :: !warns;
          process (lineno + 1) rest
        in
        match words with
        | [] -> process (lineno + 1) rest
        | "assay" :: _ when !seen_header ->
          skip_with_warning "MF302" "duplicate assay header (ignored)"
        | [ "assay"; _name ] ->
          seen_header := true;
          process (lineno + 1) rest
        | "assay" :: _ -> error lineno "usage: assay NAME"
        | _ when not !seen_header -> error lineno "the first directive must be the assay header"
        | [ "op"; id; kind; duration; name ] -> (
            match (int_of_string_opt id, kind_of_string kind, int_of_string_opt duration) with
            | Some op_id, Some kind, Some duration when duration > 0 ->
              ops := { Op.op_id; kind; duration; op_name = name } :: !ops;
              process (lineno + 1) rest
            | _, _, _ -> error lineno "usage: op ID mix|detect|heat|filter DURATION NAME")
        | "op" :: _ -> error lineno "usage: op ID KIND DURATION NAME"
        | [ "dep"; a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b ->
              deps := (a, b) :: !deps;
              process (lineno + 1) rest
            | _, _ -> error lineno "usage: dep FROM TO")
        | "dep" :: _ -> error lineno "usage: dep FROM TO"
        | other :: _ ->
          skip_with_warning "MF301" (Printf.sprintf "unknown directive %S (ignored)" other))
  in
  process 1 (String.split_on_char '\n' text)

(* Legacy string API: strict — any diagnostic, warnings included, is a
   rejection, preserving the historical behaviour where unknown directives
   and duplicate headers were hard errors. *)
let legacy_message (d : Diag.t) =
  match (d.where.Diag.line, d.where.Diag.col) with
  | Some l, Some c -> Printf.sprintf "line %d, col %d: %s" l c d.message
  | Some l, None -> Printf.sprintf "line %d: %s" l d.message
  | None, _ -> d.message

let parse text =
  match parse_diags text with
  | Ok (g, []) -> Ok g
  | Ok (_, d :: _) | Error (d :: _) -> Error (legacy_message d)
  | Error [] -> Error "parse failed"

let load_diags path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_diags ~file:path text
  | exception Sys_error m -> Error [ Diag.errorf ~code:"MF303" "%s" m ]

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error m -> Error m

let string_of_kind = function
  | Op.Mix -> "mix"
  | Op.Detect -> "detect"
  | Op.Heat -> "heat"
  | Op.Filter -> "filter"

let to_string g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "assay exported\n";
  Array.iter
    (fun (o : Op.t) ->
      Buffer.add_string buf
        (Printf.sprintf "op %d %s %d %s\n" o.op_id (string_of_kind o.kind) o.duration o.op_name))
    (Seqgraph.ops g);
  for j = 0 to Seqgraph.n_ops g - 1 do
    List.iter
      (fun p -> Buffer.add_string buf (Printf.sprintf "dep %d %d\n" p j))
      (Seqgraph.preds g j)
  done;
  Buffer.contents buf

let save path g =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string g))
