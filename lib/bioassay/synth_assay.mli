(** Random bioassay generator for stress tests and scaling studies.

    Produces layered sequencing graphs in the shape family of the bundled
    assays: chains of mixes with bounded fan-out, a configurable share of
    detections, every product eventually observed. *)

type spec = {
  n_ops : int;  (** total operations, >= 2 *)
  detect_share : float;  (** fraction of detect ops, in (0, 1) *)
  max_fanout : int;  (** successors per op, >= 1 (keep <= 3 for bounded-storage chips) *)
  mix_duration : int;
  detect_duration : int;
}

val default_spec : spec
(** 20 ops, 40% detects, fan-out <= 2, mix 50 s, detect 40 s. *)

type profile = Balanced | Storage_pressure
(** Shape presets for size-swept generation, matching the chip families in
    [Mf_chips.Families]: [Balanced] keeps the default mix of detects and
    fan-out; [Storage_pressure] lowers the detect share and fan-out and
    lengthens mixes so intermediates pile up in channel storage
    (the workload of arXiv:1705.04998). *)

val spec_of_size : ?profile:profile -> int -> spec
(** [spec_of_size n] is a spec with [n_ops = max 4 n] and the remaining
    fields set by [profile] (default [Balanced]). *)

val generate : ?spec:spec -> Mf_util.Rng.t -> Seqgraph.t
(** A random DAG honouring [spec]:
    - exactly [spec.n_ops] operations;
    - mixes first (they produce intermediates), detects depend on mixes;
    - every mix has at least one successor (no orphaned product), bounded
      by [max_fanout];
    - acyclic by construction (edges point to higher layers). *)
