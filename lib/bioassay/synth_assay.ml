module Rng = Mf_util.Rng

type spec = {
  n_ops : int;
  detect_share : float;
  max_fanout : int;
  mix_duration : int;
  detect_duration : int;
}

let default_spec =
  { n_ops = 20; detect_share = 0.4; max_fanout = 2; mix_duration = 50; detect_duration = 40 }

type profile = Balanced | Storage_pressure

let spec_of_size ?(profile = Balanced) n_ops =
  let n_ops = max 4 n_ops in
  match profile with
  | Balanced -> { default_spec with n_ops }
  | Storage_pressure ->
    (* fewer detects and fan-out 1 leave more products parked between their
       producing mix and eventual observation, pressuring storage sites;
       longer mixes widen the parking window *)
    { n_ops; detect_share = 0.25; max_fanout = 1; mix_duration = 80; detect_duration = 40 }

let generate ?(spec = default_spec) rng =
  if spec.n_ops < 2 then invalid_arg "Synth_assay.generate: need at least two ops";
  if spec.detect_share <= 0. || spec.detect_share >= 1. then
    invalid_arg "Synth_assay.generate: detect_share must be in (0,1)";
  if spec.max_fanout < 1 then invalid_arg "Synth_assay.generate: max_fanout must be >= 1";
  let n_detect = max 1 (int_of_float (float_of_int spec.n_ops *. spec.detect_share)) in
  let n_mix = spec.n_ops - n_detect in
  if n_mix < 1 then invalid_arg "Synth_assay.generate: detect_share leaves no mixes";
  (* ids: mixes 0..n_mix-1 in topological order, detects after *)
  let ops =
    List.init spec.n_ops (fun op_id ->
        if op_id < n_mix then
          { Op.op_id; kind = Op.Mix; duration = spec.mix_duration;
            op_name = Printf.sprintf "mix%d" op_id }
        else
          { Op.op_id; kind = Op.Detect; duration = spec.detect_duration;
            op_name = Printf.sprintf "det%d" (op_id - n_mix) })
  in
  let fanout = Array.make spec.n_ops 0 in
  let edges = ref [] in
  let connect a b =
    edges := (a, b) :: !edges;
    fanout.(a) <- fanout.(a) + 1
  in
  (* mixes: each non-root mix consumes one or two earlier products with free
     fan-out capacity *)
  for m = 1 to n_mix - 1 do
    if Rng.uniform rng < 0.8 then begin
      let candidates =
        List.init m Fun.id |> List.filter (fun p -> fanout.(p) < spec.max_fanout)
      in
      match candidates with
      | [] -> () (* root: fresh reagents *)
      | cs ->
        let a = Rng.pick_list rng cs in
        connect a m;
        if Rng.bool rng then begin
          match List.filter (fun p -> p <> a && fanout.(p) < spec.max_fanout) cs with
          | [] -> ()
          | cs' -> connect (Rng.pick_list rng cs') m
        end
    end
  done;
  (* detects: observe mixes, preferring unobserved products *)
  let observed = Array.make n_mix false in
  for d = n_mix to spec.n_ops - 1 do
    let unobserved =
      List.init n_mix Fun.id
      |> List.filter (fun m -> (not observed.(m)) && fanout.(m) < spec.max_fanout)
    in
    let target =
      match unobserved with
      | [] -> (
          match List.init n_mix Fun.id |> List.filter (fun m -> fanout.(m) < spec.max_fanout) with
          | [] -> Rng.int rng n_mix (* overflow fan-out as a last resort *)
          | cs -> Rng.pick_list rng cs)
      | cs -> Rng.pick_list rng cs
    in
    observed.(target) <- true;
    connect target d
  done;
  (* no orphaned mix products: attach leftover sinks to later mixes or spill
     into already-connected detects *)
  for m = 0 to n_mix - 1 do
    if fanout.(m) = 0 then begin
      let laters = List.init (n_mix - m - 1) (fun i -> m + 1 + i) in
      match laters with
      | consumer :: _ -> connect m consumer
      | [] ->
        (* last mix: ensure some detect observes it *)
        connect m (n_mix + Rng.int rng n_detect)
    end
  done;
  Seqgraph.create_exn ops ~edges:(List.sort_uniq compare !edges)
