(** Textual chip descriptions.

    A small line-oriented format so users can define architectures in files
    instead of OCaml (the CLI accepts them everywhere a chip is expected):

    {v
    # comment
    chip NAME WIDTH HEIGHT
    device mixer|detector|heater|filter X Y NAME
    port X Y NAME
    channel X,Y X,Y [X,Y ...]     # polyline of grid-adjacent points
    valve X,Y X,Y                 # on an existing channel edge
    dft X,Y X,Y                   # DFT augmentation edge (optional)
    share DFT_INDEX ORIG_INDEX    # control sharing (optional); DFT_INDEX
                                  # counts dft lines in order, ORIG_INDEX
                                  # counts valve lines in order
    v}

    [to_string] round-trips: parsing its output reproduces the chip
    (devices, ports, channels, valves, augmentation and sharing). *)

val parse_diags :
  ?file:string -> string -> (Chip.t * Mf_util.Diag.t list, Mf_util.Diag.t list) result
(** Parse a description into a chip plus non-fatal diagnostics.  Unknown
    directives ([MF301]) and duplicate chip headers ([MF302]) are warnings
    — the offending line is skipped and parsing continues.  Syntax errors
    are [MF303] and [Chip.finish]/augmentation rejections [MF304], both
    fatal; [Error] carries them first, followed by any warnings collected
    before the failure.  Spans reuse the line/column context of the error
    messages ([?file] names the source in rendered diagnostics). *)

val parse : string -> (Chip.t, string) result
(** Legacy strict API: {!parse_diags} with every diagnostic — warnings
    included — treated as a rejection.  Errors carry a line number and
    reason, including the architecture validation errors of
    [Chip.finish]. *)

val load_diags : string -> (Chip.t * Mf_util.Diag.t list, Mf_util.Diag.t list) result
(** [load_diags path] reads and parses a file with {!parse_diags}. *)

val load : string -> (Chip.t, string) result
(** [load path] reads and parses a file with the strict {!parse}. *)

val to_string : Chip.t -> string
val save : string -> Chip.t -> unit
