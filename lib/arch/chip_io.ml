module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph

let kind_of_string = function
  | "mixer" -> Some Chip.Mixer
  | "detector" -> Some Chip.Detector
  | "heater" -> Some Chip.Heater
  | "filter" -> Some Chip.Filter
  | _ -> None

let string_of_kind = function
  | Chip.Mixer -> "mixer"
  | Chip.Detector -> "detector"
  | Chip.Heater -> "heater"
  | Chip.Filter -> "filter"

let parse_point s =
  match String.split_on_char ',' s with
  | [ x; y ] -> (
      match (int_of_string_opt x, int_of_string_opt y) with
      | Some x, Some y -> Some (x, y)
      | _, _ -> None)
  | _ -> None

type accumulator = {
  mutable builder : Chip.builder option;
  mutable dft : ((int * int) * (int * int)) list; (* reversed *)
  mutable share : (int * int) list; (* reversed *)
}

(* 1-based column of the first occurrence of [token] in [raw], for parse
   errors that can name the offending token. *)
let column_of raw token =
  let n = String.length raw and m = String.length token in
  let rec go i =
    if m = 0 || i + m > n then None
    else if String.sub raw i m = token then Some (i + 1)
    else go (i + 1)
  in
  go 0

module Diag = Mf_util.Diag

let parse_diags ?file text =
  let acc = { builder = None; dft = []; share = [] } in
  let warns = ref [] in
  let rec process lineno = function
    | [] -> finish ()
    | raw :: rest ->
      let line =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let words =
        String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
      in
      (* diagnostics point at the offending token when one is
         identifiable, otherwise at the directive itself *)
      let where ?token () =
        let anchor = match token with Some t -> Some t | None -> List.nth_opt words 0 in
        Diag.span ?file ~line:lineno ?col:(Option.bind anchor (column_of raw)) ()
      in
      let error ?token _lineno msg =
        Error (Diag.by_severity (Diag.errorf ~where:(where ?token ()) ~code:"MF303" "%s" msg :: !warns))
      in
      let skip_with_warning ?token code msg =
        warns := Diag.warningf ~where:(where ?token ()) ~code "%s" msg :: !warns;
        process (lineno + 1) rest
      in
      (match words with
       | [] -> process (lineno + 1) rest
       | "chip" :: args -> (
           match (acc.builder, args) with
           | Some _, _ -> skip_with_warning "MF302" "duplicate chip header (ignored)"
           | None, [ name; w; h ] -> (
               match (int_of_string_opt w, int_of_string_opt h) with
               | Some width, Some height when width > 0 && height > 0 ->
                 (try
                    acc.builder <- Some (Chip.builder ~name ~width ~height);
                    process (lineno + 1) rest
                  with Invalid_argument m -> error lineno m)
               | _, _ -> error lineno "chip header needs positive WIDTH HEIGHT")
           | None, _ -> error lineno "usage: chip NAME WIDTH HEIGHT")
       | directive :: args -> (
           match acc.builder with
           | None -> error lineno "the first directive must be the chip header"
           | Some b -> (
               let with_points points k =
                 let parsed = List.map parse_point points in
                 match
                   List.find_opt (fun (_, p) -> p = None) (List.combine points parsed)
                 with
                 | Some (token, _) -> error ~token lineno "points must look like X,Y"
                 | None -> (
                   try
                     k (List.map Option.get parsed);
                     process (lineno + 1) rest
                   with Invalid_argument m -> error lineno m)
               in
               match (directive, args) with
               | "device", [ kind; x; y; name ] -> (
                   match (kind_of_string kind, int_of_string_opt x, int_of_string_opt y) with
                   | Some kind, Some x, Some y ->
                     (try
                        Chip.add_device b ~kind ~x ~y ~name;
                        process (lineno + 1) rest
                      with Invalid_argument m -> error lineno m)
                   | _, _, _ -> error lineno "usage: device KIND X Y NAME")
               | "device", _ -> error lineno "usage: device KIND X Y NAME"
               | "port", [ x; y; name ] -> (
                   match (int_of_string_opt x, int_of_string_opt y) with
                   | Some x, Some y ->
                     (try
                        Chip.add_port b ~x ~y ~name;
                        process (lineno + 1) rest
                      with Invalid_argument m -> error lineno m)
                   | _, _ -> error lineno "usage: port X Y NAME")
               | "port", _ -> error lineno "usage: port X Y NAME"
               | "channel", points when List.length points >= 2 ->
                 with_points points (fun pts -> Chip.add_channel b pts)
               | "channel", _ -> error lineno "channel needs at least two points"
               | "valve", [ a; c ] ->
                 with_points [ a; c ] (fun pts ->
                     match pts with
                     | [ p; q ] -> Chip.add_valve b p q
                     | _ -> invalid_arg "valve needs two points")
               | "valve", _ -> error lineno "usage: valve X,Y X,Y"
               | "dft", [ a; c ] ->
                 with_points [ a; c ] (fun pts ->
                     match pts with
                     | [ p; q ] -> acc.dft <- (p, q) :: acc.dft
                     | _ -> invalid_arg "dft needs two points")
               | "dft", _ -> error lineno "usage: dft X,Y X,Y"
               | "share", [ d; o ] -> (
                   match (int_of_string_opt d, int_of_string_opt o) with
                   | Some d, Some o ->
                     acc.share <- (d, o) :: acc.share;
                     process (lineno + 1) rest
                   | _, _ -> error lineno "usage: share DFT_INDEX ORIG_INDEX")
               | "share", _ -> error lineno "usage: share DFT_INDEX ORIG_INDEX"
               | other, _ ->
                 skip_with_warning ~token:other "MF301"
                   (Printf.sprintf "unknown directive %S (ignored)" other))))
  and finish () =
    let fatal code msg =
      Error (Diag.by_severity (Diag.errorf ~where:(Diag.span ?file ()) ~code "%s" msg :: !warns))
    in
    match acc.builder with
    | None -> fatal "MF303" "empty description: missing chip header"
    | Some b -> (
        match Chip.finish b with
        | Error m -> fatal "MF304" ("validation: " ^ m)
        | Ok chip -> (
            try
              let chip =
                if acc.dft = [] then chip
                else begin
                  let grid = Chip.grid chip in
                  let edges =
                    List.rev_map
                      (fun (p, q) ->
                        match Grid.edge_between_xy grid p q with
                        | Some e -> e
                        | None -> invalid_arg "dft points are not grid-adjacent")
                      acc.dft
                  in
                  Chip.augment chip ~edges
                end
              in
              let chip =
                if acc.share = [] then chip
                else begin
                  let n_orig = Chip.n_original_valves chip in
                  Chip.with_sharing chip
                    (List.rev_map (fun (d, o) -> (n_orig + d, o)) acc.share)
                end
              in
              Ok (chip, List.rev !warns)
            with Invalid_argument m -> fatal "MF304" ("augmentation: " ^ m)))
  in
  process 1 (String.split_on_char '\n' text)

(* Legacy string API: strict — any diagnostic, warnings included, is a
   rejection, preserving the historical behaviour where unknown directives
   and duplicate headers were hard errors. *)
let legacy_message (d : Diag.t) =
  match (d.where.line, d.where.col) with
  | Some l, Some c -> Printf.sprintf "line %d, col %d: %s" l c d.message
  | Some l, None -> Printf.sprintf "line %d: %s" l d.message
  | None, _ -> d.message

let parse text =
  match parse_diags text with
  | Ok (chip, []) -> Ok chip
  | Ok (_, d :: _) | Error (d :: _) -> Error (legacy_message d)
  | Error [] -> Error "parse failed"

let load_diags path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_diags ~file:path text
  | exception Sys_error m -> Error [ Diag.errorf ~code:"MF303" "%s" m ]

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error m -> Error m

let to_string chip =
  let buf = Buffer.create 512 in
  let grid = Chip.grid chip in
  let point n =
    let x, y = Grid.coords grid n in
    Printf.sprintf "%d,%d" x y
  in
  Buffer.add_string buf
    (Printf.sprintf "chip %s %d %d\n" (Chip.name chip) (Grid.width grid) (Grid.height grid));
  Array.iter
    (fun (d : Chip.device) ->
      let x, y = Grid.coords grid d.node in
      Buffer.add_string buf
        (Printf.sprintf "device %s %d %d %s\n" (string_of_kind d.kind) x y d.name))
    (Chip.devices chip);
  Array.iter
    (fun (p : Chip.port) ->
      let x, y = Grid.coords grid p.node in
      Buffer.add_string buf (Printf.sprintf "port %d %d %s\n" x y p.port_name))
    (Chip.ports chip);
  let g = Grid.graph grid in
  let dft_edges = Chip.dft_edges chip in
  let channels = Chip.channel_edges chip in
  Mf_util.Bitset.iter
    (fun e ->
      if not (List.mem e dft_edges) then begin
        let u, v = Graph.endpoints g e in
        Buffer.add_string buf (Printf.sprintf "channel %s %s\n" (point u) (point v))
      end)
    channels;
  (* original valves in valve-id order so ORIG_INDEX is stable *)
  Array.iter
    (fun (v : Chip.valve) ->
      if not v.is_dft then begin
        let u, w = Graph.endpoints g v.edge in
        Buffer.add_string buf (Printf.sprintf "valve %s %s\n" (point u) (point w))
      end)
    (Chip.valves chip);
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      Buffer.add_string buf (Printf.sprintf "dft %s %s\n" (point u) (point v)))
    dft_edges;
  (* sharing: a DFT valve whose line coincides with an original valve's *)
  Array.iter
    (fun (v : Chip.valve) ->
      if v.is_dft then begin
        let partners = Chip.valves_of_control chip v.control in
        match
          List.find_opt (fun (w : Chip.valve) -> not w.is_dft) partners
        with
        | Some orig ->
          Buffer.add_string buf
            (Printf.sprintf "share %d %d\n"
               (v.valve_id - Chip.n_original_valves chip)
               orig.valve_id)
        | None -> ()
      end)
    (Chip.valves chip);
  Buffer.contents buf

let save path chip = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string chip))
