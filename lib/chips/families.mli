(** Parametric chip-family generators.

    Each family is a seeded, deterministic generator producing chips that
    pass [Chip.finish]'s testability validation and lint clean by
    construction, so property corpora and scaling sweeps can range over
    them freely (ROADMAP item 3).  Three families ship:

    - {!Ring}: the existing {!Synth} ring architecture behind the family
      interface;
    - {!Fpva}: fully-programmable valve-array sieves (arXiv:1705.04996) —
      an m×n mesh with every edge valved except designated interior
      storage regions, ports on valved boundary spurs;
    - {!Storage}: pocket-dominated rings stressing distributed channel
      storage (arXiv:1705.04998).

    The {!family} record gives a uniform size-swept view over all three
    for benchmarks ([bench -- scale]), the QCheck corpus
    ([test/test_corpus.ml]) and the [dft_tool gen] subcommand.  Layout
    rules are documented in DESIGN.md §13. *)

(** The ring family: {!Synth} with a size knob. *)
module Ring : sig
  type spec = Synth.spec

  val default_spec : spec

  val spec_of_size : int -> spec
  (** [spec_of_size s] splits a total attachment budget of roughly [s]
      across mixers, detectors, heaters, ports and pockets. *)

  val generate : ?spec:spec -> ?name:string -> Mf_util.Rng.t -> Mf_arch.Chip.t
end

(** Fully-programmable valve-array grids. *)
module Fpva : sig
  type spec = {
    rows : int;  (** mesh nodes per column, >= 3 *)
    cols : int;  (** mesh nodes per row, >= 3 *)
    ports : int;  (** boundary ports on margin spurs, >= 2 *)
    mixers : int;  (** >= 1 *)
    detectors : int;  (** >= 1 *)
    storage : int;  (** interior unvalved storage edges, >= 0 *)
  }

  val default_spec : spec
  (** 5×5 mesh, 3 ports, 2 mixers, 1 detector, 2 storage regions. *)

  val max_storage : spec -> int
  (** Number of pairwise non-adjacent interior edges available as storage
      regions for the given mesh dimensions. *)

  val spec_of_size : int -> spec
  (** [spec_of_size s] is an s×s mesh with port/device/storage counts
      scaled to the mesh area. *)

  val generate : ?spec:spec -> ?name:string -> Mf_util.Rng.t -> Mf_arch.Chip.t
  (** Deterministic in [rng]; raises [Invalid_argument] if the spec does
      not fit the mesh (too many ports, devices or storage regions). *)
end

(** Storage-pressure rings: pocket count is the size lever. *)
module Storage : sig
  type spec = {
    pockets : int;  (** >= 1; the size lever *)
    mixers : int;  (** >= 1 *)
    detectors : int;  (** >= 1 *)
    ports : int;  (** >= 2 *)
  }

  val default_spec : spec
  val spec_of_size : int -> spec
  val generate : ?spec:spec -> ?name:string -> Mf_util.Rng.t -> Mf_arch.Chip.t
end

type profile = Balanced | Storage_pressure
(** Which synthetic-assay shape suits the family
    (see [Mf_bioassay.Synth_assay.spec_of_size]). *)

type family = {
  name : string;  (** registry key, e.g. ["fpva"] *)
  description : string;
  profile : profile;
  sweep_sizes : int list;  (** the committed [bench -- scale] sweep points *)
  corpus_sizes : int list;  (** sizes the QCheck corpus draws from *)
  generate_size : size:int -> Mf_util.Rng.t -> Mf_arch.Chip.t;
  assay_ops : size:int -> int;  (** matching synthetic-assay op count *)
}

val ring : family
val fpva : family
val storage : family

val all : family list
(** [ [ring; fpva; storage] ]. *)

val names : string list
val by_name : string -> family option
