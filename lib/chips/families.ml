module Chip = Mf_arch.Chip
module Rng = Mf_util.Rng

(* ------------------------------------------------------------------ *)
(* Ring family: the existing Synth generator behind the family interface. *)

module Ring = struct
  type spec = Synth.spec

  let default_spec = Synth.default_spec

  let spec_of_size size =
    let size = max 6 size in
    let mixers = max 1 (size / 4) in
    let detectors = max 1 (size / 4) in
    let heaters = size / 8 in
    let ports = max 2 (size / 6) in
    let pockets = max 1 (size - mixers - detectors - heaters - ports) in
    { Synth.mixers; detectors; heaters; ports; pockets }

  let generate ?(spec = default_spec) ?(name = "ring") rng = Synth.generate ~spec ~name rng
end

(* ------------------------------------------------------------------ *)
(* FPVA family: a fully-programmable valve-array sieve (arXiv:1705.04996).

   An m x n mesh occupies the centre of the grid with a one-cell margin all
   around (the margin keeps free edges available for DFT augmentation and
   hosts the boundary ports).  Every mesh edge carries a valve — the sieve —
   except a configured set of interior "storage region" edges, which stay
   unvalved but are surrounded by valves on all sides, i.e. they are exactly
   the valve-enclosed channel pockets the scheduler uses as distributed
   storage.  Mixer/detector "cells" are mesh nodes: in an FPVA any valve-
   bounded region can be programmed into a device, which this model reduces
   to a device anchored at the region's node.

   Invariants by construction (regression-tested by the corpus):
   - closing all valves separates every port pair (storage edges are
     isolated interior singleton components), so [Chip.finish] accepts;
   - no dead-end channel is unvalved (ports anchor their spurs, storage
     edges are interior), so the chip lints clean;
   - storage edges are pairwise non-adjacent, so each is an enclosed
     pocket in [Mf_sched.Prep]'s sense. *)

module Fpva = struct
  type spec = {
    rows : int;  (** mesh nodes per column, >= 3 *)
    cols : int;  (** mesh nodes per row, >= 3 *)
    ports : int;  (** boundary ports on margin spurs, >= 2 *)
    mixers : int;  (** >= 1 *)
    detectors : int;  (** >= 1 *)
    storage : int;  (** interior unvalved storage edges, >= 0 *)
  }

  let default_spec = { rows = 5; cols = 5; ports = 3; mixers = 2; detectors = 1; storage = 2 }

  (* Interior horizontal edges with x stepped by two never share an
     endpoint (distinct y rows are disjoint; within a row the step skips
     the shared node), so any subset is pairwise non-adjacent. *)
  let storage_candidates spec =
    let xs =
      let rec go x acc = if x + 1 > spec.cols - 1 then List.rev acc else go (x + 2) (x :: acc) in
      go 2 []
    in
    List.concat_map
      (fun y -> List.map (fun x -> ((x, y), (x + 1, y))) xs)
      (List.init (max 0 (spec.rows - 3)) (fun i -> 2 + i))

  let max_storage spec = List.length (storage_candidates spec)

  let spec_of_size size =
    let size = max 3 size in
    let spec =
      {
        rows = size;
        cols = size;
        ports = min 4 (max 2 (size - 2));
        mixers = max 1 (size / 3);
        detectors = max 1 (size / 4);
        storage = 0;
      }
    in
    { spec with storage = min (max_storage spec) (max 1 (max_storage spec / 2)) }

  let generate ?(spec = default_spec) ?name rng =
    if spec.rows < 3 || spec.cols < 3 then
      invalid_arg "Families.Fpva.generate: mesh must be at least 3x3";
    if spec.ports < 2 then invalid_arg "Families.Fpva.generate: need at least two ports";
    if spec.mixers < 1 || spec.detectors < 1 then
      invalid_arg "Families.Fpva.generate: need at least one mixer and one detector";
    if spec.storage < 0 then invalid_arg "Families.Fpva.generate: negative storage";
    if spec.storage > max_storage spec then
      invalid_arg "Families.Fpva.generate: storage region too large for mesh interior";
    let name =
      match name with Some n -> n | None -> Printf.sprintf "fpva_%dx%d" spec.cols spec.rows
    in
    (* mesh spans (1,1)..(cols,rows); margin ring of free cells around it *)
    let b = Chip.builder ~name ~width:(spec.cols + 2) ~height:(spec.rows + 2) in
    for y = 1 to spec.rows do
      Chip.add_channel b (List.init spec.cols (fun i -> (1 + i, y)))
    done;
    for x = 1 to spec.cols do
      Chip.add_channel b (List.init spec.rows (fun i -> (x, 1 + i)))
    done;
    (* storage regions: draw without replacement from the non-adjacent
       interior candidates *)
    let cands = Array.of_list (storage_candidates spec) in
    Rng.shuffle rng cands;
    let storage = Array.sub cands 0 spec.storage in
    let is_storage a c =
      Array.exists (fun (u, v) -> (u = a && v = c) || (u = c && v = a)) storage
    in
    (* the sieve: every mesh edge valved, except the storage regions *)
    for y = 1 to spec.rows do
      for x = 1 to spec.cols - 1 do
        if not (is_storage (x, y) (x + 1, y)) then Chip.add_valve b (x, y) (x + 1, y)
      done
    done;
    for x = 1 to spec.cols do
      for y = 1 to spec.rows - 1 do
        if not (is_storage (x, y) (x, y + 1)) then Chip.add_valve b (x, y) (x, y + 1)
      done
    done;
    (* boundary ports: non-corner perimeter mesh nodes, valved spur to the
       margin so all-closed isolates every port *)
    let port_slots =
      Array.of_list
        (List.concat
           [
             List.init (spec.cols - 2) (fun i -> ((2 + i, 1), (2 + i, 0)));
             List.init (spec.rows - 2) (fun i -> ((spec.cols, 2 + i), (spec.cols + 1, 2 + i)));
             List.init (spec.cols - 2) (fun i -> ((2 + i, spec.rows), (2 + i, spec.rows + 1)));
             List.init (spec.rows - 2) (fun i -> ((1, 2 + i), (0, 2 + i)));
           ])
    in
    if spec.ports > Array.length port_slots then
      invalid_arg "Families.Fpva.generate: more ports than perimeter slots";
    Rng.shuffle rng port_slots;
    let hosts = Hashtbl.create 8 in
    for p = 0 to spec.ports - 1 do
      let host, margin = port_slots.(p) in
      Hashtbl.replace hosts host ();
      Chip.add_port b ~x:(fst margin) ~y:(snd margin) ~name:(Printf.sprintf "P%d" p);
      Chip.add_channel b [ host; margin ];
      Chip.add_valve b host margin
    done;
    (* programmable device cells: any mesh node not hosting a port spur and
       not an endpoint of a storage region *)
    let storage_node n = Array.exists (fun (u, v) -> u = n || v = n) storage in
    let device_nodes =
      Array.of_list
        (List.concat_map
           (fun y ->
             List.filter_map
               (fun i ->
                 let n = (1 + i, y) in
                 if Hashtbl.mem hosts n || storage_node n then None else Some n)
               (List.init spec.cols Fun.id))
           (List.init spec.rows (fun i -> 1 + i)))
    in
    if spec.mixers + spec.detectors > Array.length device_nodes then
      invalid_arg "Families.Fpva.generate: more devices than free mesh nodes";
    Rng.shuffle rng device_nodes;
    for i = 0 to spec.mixers - 1 do
      let x, y = device_nodes.(i) in
      Chip.add_device b ~kind:Chip.Mixer ~x ~y ~name:(Printf.sprintf "M%d" i)
    done;
    for i = 0 to spec.detectors - 1 do
      let x, y = device_nodes.(spec.mixers + i) in
      Chip.add_device b ~kind:Chip.Detector ~x ~y ~name:(Printf.sprintf "D%d" i)
    done;
    Chip.finish_exn b
end

(* ------------------------------------------------------------------ *)
(* Storage-heavy family: a ring whose attachment mix is dominated by
   valve-enclosed pockets — the size-swept storage-pressure workload of
   the "Transport or Store?" line of work (arXiv:1705.04998). *)

module Storage = struct
  type spec = {
    pockets : int;  (** >= 1; the size lever *)
    mixers : int;  (** >= 1 *)
    detectors : int;  (** >= 1 *)
    ports : int;  (** >= 2 *)
  }

  let default_spec = { pockets = 8; mixers = 2; detectors = 2; ports = 3 }

  let spec_of_size size =
    { pockets = max 2 size; mixers = 2; detectors = 2; ports = max 3 (2 + (size / 8)) }

  let to_ring { pockets; mixers; detectors; ports } =
    { Synth.mixers; detectors; heaters = 0; ports; pockets }

  let generate ?(spec = default_spec) ?(name = "storage") rng =
    Synth.generate ~spec:(to_ring spec) ~name rng
end

(* ------------------------------------------------------------------ *)
(* Uniform sweep interface *)

type profile = Balanced | Storage_pressure

type family = {
  name : string;
  description : string;
  profile : profile;
  sweep_sizes : int list;
  corpus_sizes : int list;
  generate_size : size:int -> Rng.t -> Chip.t;
  assay_ops : size:int -> int;
}

let sized_name prefix size = Printf.sprintf "%s_%d" prefix size

let ring =
  {
    name = "ring";
    description = "valved transport ring with device/port spurs and storage pockets";
    profile = Balanced;
    sweep_sizes = [ 8; 12; 16; 20 ];
    corpus_sizes = [ 6; 8; 10; 12 ];
    generate_size =
      (fun ~size rng ->
        Ring.generate ~spec:(Ring.spec_of_size size) ~name:(sized_name "ring" size) rng);
    assay_ops = (fun ~size -> max 6 (2 * size));
  }

let fpva =
  {
    name = "fpva";
    description = "fully-programmable valve-array sieve with boundary ports (arXiv:1705.04996)";
    profile = Balanced;
    sweep_sizes = [ 3; 4; 5; 6 ];
    corpus_sizes = [ 4; 5 ];
    generate_size =
      (fun ~size rng ->
        Fpva.generate ~spec:(Fpva.spec_of_size size) ~name:(sized_name "fpva" size) rng);
    assay_ops = (fun ~size -> max 6 (3 * size));
  }

let storage =
  {
    name = "storage";
    description = "pocket-dominated ring stressing distributed channel storage (arXiv:1705.04998)";
    profile = Storage_pressure;
    sweep_sizes = [ 6; 10; 14; 18 ];
    corpus_sizes = [ 4; 6; 8; 10 ];
    generate_size =
      (fun ~size rng ->
        Storage.generate ~spec:(Storage.spec_of_size size) ~name:(sized_name "storage" size) rng);
    assay_ops = (fun ~size -> max 6 (2 * size));
  }

let all = [ ring; fpva; storage ]
let names = List.map (fun f -> f.name) all
let by_name n = List.find_opt (fun f -> f.name = n) all
