(** Synthetic biochip generator.

    Produces random-but-valid chips in the same architecture family as the
    benchmarks — a valved transport ring with device spurs, port spurs and
    valve-enclosed storage pockets — for robustness testing and scaling
    studies.  Every generated chip passes [Chip.finish]'s testability
    validation by construction, and the generator follows the layout rules
    recorded in DESIGN.md §5.8 (port entries valved, spurs as dead ends,
    pockets off the ring).

    This is the ring family behind {!Families.Ring}; see {!Families} for
    the other chip families and the uniform sweep interface. *)

type spec = {
  mixers : int;  (** >= 1 *)
  detectors : int;  (** >= 1 *)
  heaters : int;
  ports : int;  (** >= 2 *)
  pockets : int;  (** storage pockets *)
}

val default_spec : spec
(** 2 mixers, 2 detectors, 0 heaters, 3 ports, 2 pockets. *)

type report = {
  requested_pockets : int;  (** [spec.pockets] *)
  placed_pockets : int;
      (** pockets actually laid.  The slot geometry guarantees every
          requested pocket fits (regression-tested), so this equals
          [requested_pockets]; the count exists so that any future layout
          change that breaks the guarantee surfaces here instead of
          silently placing fewer. *)
}

val generate_report : ?spec:spec -> ?name:string -> Mf_util.Rng.t -> Mf_arch.Chip.t * report
(** [generate_report rng] builds a fresh random chip and reports the pocket
    placement outcome.  The ring size scales with the number of
    attachments; placement choices (which ring node hosts which spur) are
    drawn from [rng].  [name] labels the chip (default ["synthetic"]).
    Raises [Invalid_argument] on specs that cannot fit (e.g. more
    attachments than ring nodes). *)

val generate : ?spec:spec -> ?name:string -> Mf_util.Rng.t -> Mf_arch.Chip.t
(** {!generate_report} without the report. *)
