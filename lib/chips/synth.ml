module Chip = Mf_arch.Chip
module Rng = Mf_util.Rng

type spec = { mixers : int; detectors : int; heaters : int; ports : int; pockets : int }

let default_spec = { mixers = 2; detectors = 2; heaters = 0; ports = 3; pockets = 2 }

type report = { requested_pockets : int; placed_pockets : int }

type attachment = Device of Chip.device_kind | Port | Pocket

(* Ring nodes are hosted on the rectangle (1,1)..(rw,rh); each attachment
   occupies a non-corner perimeter node and sticks outward, so node degrees
   stay within the grid's four neighbours and attachments never collide. *)
let generate_report ?(spec = default_spec) ?(name = "synthetic") rng =
  if spec.mixers < 1 || spec.detectors < 1 then
    invalid_arg "Synth.generate: need at least one mixer and one detector";
  if spec.ports < 2 then invalid_arg "Synth.generate: need at least two ports";
  if spec.pockets < 0 || spec.heaters < 0 then invalid_arg "Synth.generate: negative counts";
  let attachments =
    List.concat
      [
        List.init spec.mixers (fun _ -> Device Chip.Mixer);
        List.init spec.detectors (fun _ -> Device Chip.Detector);
        List.init spec.heaters (fun _ -> Device Chip.Heater);
        List.init spec.ports (fun _ -> Port);
        List.init spec.pockets (fun _ -> Pocket);
      ]
  in
  let n_att = List.length attachments in
  (* non-corner perimeter nodes: 2(rw-2) + 2(rh-2); we use every second slot *)
  let rw = max 4 (((n_att + 4) / 2) + 1) in
  let rh = max 4 (n_att + 5 - rw) in
  let b = Chip.builder ~name ~width:(rw + 2) ~height:(rh + 2) in
  (* clockwise perimeter walk with outward directions; corners excluded *)
  let slots =
    List.concat
      [
        List.init (rw - 2) (fun i -> ((2 + i, 1), (0, -1), (1, 0)));
        List.init (rh - 2) (fun i -> ((rw, 2 + i), (1, 0), (0, 1)));
        List.init (rw - 2) (fun i -> ((rw - 1 - i, rh), (0, 1), (-1, 0)));
        List.init (rh - 2) (fun i -> ((1, rh - 1 - i), (-1, 0), (0, -1)));
      ]
  in
  (* every second slot so outward cells never collide *)
  let spaced = List.filteri (fun i _ -> i mod 2 = 0) slots in
  if List.length spaced < n_att then invalid_arg "Synth.generate: spec too large for ring";
  let order = Array.of_list spaced in
  Rng.shuffle rng order;
  let shuffled = Array.of_list attachments in
  Rng.shuffle rng shuffled;
  (* ring channel *)
  let ring_path =
    List.init (rw - 1) (fun i -> (1 + i, 1))
    @ List.init (rh - 1) (fun i -> (rw, 1 + i))
    @ List.init (rw - 1) (fun i -> (rw - i, rh))
    @ List.init (rh - 1) (fun i -> (1, rh - i))
    @ [ (1, 1) ]
  in
  Chip.add_channel b ring_path;
  (* ring valves everywhere: cuts are always constructible *)
  let rec valve_along = function
    | a :: (c :: _ as rest) ->
      Chip.add_valve b a c;
      valve_along rest
    | [ _ ] | [] -> ()
  in
  valve_along ring_path;
  let counters = Hashtbl.create 4 in
  let fresh prefix =
    let n = Option.value ~default:0 (Hashtbl.find_opt counters prefix) in
    Hashtbl.replace counters prefix (n + 1);
    Printf.sprintf "%s%d" prefix n
  in
  (* Cells consumed by the layout so pocket ends can prove they are free:
     the ring rectangle plus every outward cell of an assigned slot.  The
     slot geometry makes pocket-end collisions impossible (the end lands on
     the outward cell of the *unused* odd slot between two assigned ones),
     but the placement is checked rather than trusted — a pocket that would
     overlap anything is skipped and reported instead of silently laid. *)
  let used = Hashtbl.create (4 * (rw + rh)) in
  List.iter (fun cell -> Hashtbl.replace used cell ()) ring_path;
  Array.iteri
    (fun i _ ->
      if i < n_att then
        let (hx, hy), (ox, oy), _ = order.(i) in
        Hashtbl.replace used (hx + ox, hy + oy) ())
    order;
  let placed_pockets = ref 0 in
  Array.iteri
    (fun i att ->
      let (hx, hy), (ox, oy), (px, py) = order.(i) in
      let out = (hx + ox, hy + oy) in
      match att with
      | Device kind ->
        let name =
          fresh (match kind with Chip.Mixer -> "M" | Chip.Detector -> "D" | Chip.Heater -> "H" | Chip.Filter -> "F")
        in
        Chip.add_device b ~kind ~x:(fst out) ~y:(snd out) ~name;
        Chip.add_channel b [ (hx, hy); out ]
        (* device spurs stay unvalved dead ends *)
      | Port ->
        Chip.add_port b ~x:(fst out) ~y:(snd out) ~name:(fresh "P");
        Chip.add_channel b [ (hx, hy); out ];
        Chip.add_valve b (hx, hy) out
      | Pocket ->
        (* valved connector + unvalved pocket edge, parallel to the ring *)
        let pocket_end = (fst out + px, snd out + py) in
        let in_grid (x, y) = x >= 0 && x <= rw + 1 && y >= 0 && y <= rh + 1 in
        if in_grid pocket_end && not (Hashtbl.mem used pocket_end) then begin
          Hashtbl.replace used pocket_end ();
          Chip.add_channel b [ (hx, hy); out; pocket_end ];
          Chip.add_valve b (hx, hy) out;
          incr placed_pockets
        end)
    shuffled;
  (Chip.finish_exn b, { requested_pockets = spec.pockets; placed_pockets = !placed_pockets })

let generate ?spec ?name rng = fst (generate_report ?spec ?name rng)
