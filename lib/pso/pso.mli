(** Particle swarm optimization (Kennedy–Eberhart), the search engine of the
    paper's two-level codesign (Sec. 4.2, updates (7)–(8)).

    Positions are continuous vectors in a box; callers decode them into the
    discrete structures they search over (edge selections, sharing
    assignments).  The update uses the conventional attractive form
    [v ← ω v + c₁ r₁ (p_best − x) + c₂ r₂ (g_best − x)] (the paper's (7)
    prints the differences reversed, which would repel particles from the
    best positions; we use the canonical orientation).

    Fitness is minimised; [infinity] marks an invalid position (a sharing
    scheme that fails validation). *)

type params = {
  particles : int;
  iterations : int;
  omega : float;  (** inertia *)
  c1 : float;  (** cognitive coefficient *)
  c2 : float;  (** social coefficient *)
  v_max : float;  (** velocity clamp, as a fraction of the box width *)
}

val default_params : params
(** 5 particles, 100 iterations, ω = 0.72, c₁ = c₂ = 1.49 — the paper's
    swarm size with standard constriction-style coefficients. *)

type outcome = {
  best_position : float array;
  best_fitness : float;
  trace : float list;  (** global best fitness after each iteration (Fig. 9) *)
  evaluations : int;
}

val run :
  ?params:params ->
  ?budget:Mf_util.Budget.t ->
  rng:Mf_util.Rng.t ->
  dim:int ->
  fitness:(float array -> float) ->
  unit ->
  outcome
(** Search the box [\[0,1\]^dim].  [fitness] is called on decoded-by-caller
    positions, in particle order; it must be deterministic for
    reproducibility.  If every evaluation returns [infinity] the outcome's
    [best_fitness] is [infinity] and [best_position] is the last particle
    examined.  When [budget] expires the loop stops before the next
    iteration and the best-so-far outcome is returned (shorter [trace]).

    [run], {!run_bounded} and {!run_batch} are wrappers over one
    synchronous-update core: within an iteration every particle's velocity
    update sees the {e previous} iteration's global best (so the sequential
    and batched paths cannot drift apart). *)

val run_bounded :
  ?params:params ->
  ?budget:Mf_util.Budget.t ->
  rng:Mf_util.Rng.t ->
  dim:int ->
  fitness:(bound:float -> float array -> float) ->
  unit ->
  outcome
(** Like {!run}, but each evaluation receives the particle's incumbent
    personal-best fitness as [~bound] ([infinity] on the first iteration).
    A returned value can only update the bests when strictly below the
    bound, so an evaluator may stop early and return {e any} value
    [> bound] as soon as it has proven the true fitness exceeds it — the
    outcome (positions, bests, trace) is identical to the unbounded run as
    long as that contract holds.  This is the hook for
    [Scheduler.makespan_until]-style branch-and-bound fitness. *)

type batch_state
(** Opaque snapshot of an in-flight {!run_batch} search: swarm positions,
    velocities, personal/global bests, trace, evaluation count and the rng
    state {e after} the snapshot iteration's draws.  Contains only plain
    data (no closures), so it may be persisted with [Marshal] and reloaded
    by a binary built from the same sources. *)

val run_batch :
  ?params:params ->
  ?budget:Mf_util.Budget.t ->
  ?checkpoint:(int -> batch_state -> unit) ->
  ?resume:batch_state ->
  rng:Mf_util.Rng.t ->
  dim:int ->
  batch_fitness:(float array array -> float array) ->
  unit ->
  outcome
(** Synchronous-update PSO: per iteration, all velocity/position updates
    (and every rng draw) happen on the calling domain in particle order,
    then the whole iteration's positions are handed to [batch_fitness] at
    once.  [batch_fitness] must return fitnesses in input order, treat the
    position arrays as read-only, and be a pure function of the positions —
    under those rules the outcome is bit-identical however the batch is
    evaluated (serially, or fanned out with {!Mf_util.Domain_pool.map}).

    Unlike {!run}, later particles of an iteration do not see a global best
    improved earlier in the same iteration (the classic synchronous PSO
    trade-off that makes the batch independent); [evaluations] is still
    [particles * (1 + iterations)].

    Resilience hooks: [budget] stops the loop between iterations, returning
    the best-so-far outcome.  [checkpoint it state] fires after each
    completed iteration [it] (1-based) with a fully-copied snapshot; a
    subsequent call passing that snapshot as [resume] (with identical
    [params], [dim] and [batch_fitness]) skips the completed iterations,
    overwrites [rng] with the snapshot state, and produces an outcome
    bit-identical to the uninterrupted run.  Exceptions raised by the hook
    propagate to the caller. *)
