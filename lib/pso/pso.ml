module Rng = Mf_util.Rng

type params = {
  particles : int;
  iterations : int;
  omega : float;
  c1 : float;
  c2 : float;
  v_max : float;
}

let default_params =
  { particles = 5; iterations = 100; omega = 0.72; c1 = 1.49; c2 = 1.49; v_max = 0.5 }

type outcome = {
  best_position : float array;
  best_fitness : float;
  trace : float list;
  evaluations : int;
}

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

type batch_state = {
  next_iter : int; (* first iteration the resumed run will execute *)
  st_rng : Rng.t;
  st_xs : float array array;
  st_vs : float array array;
  st_p_best : float array array;
  st_p_fit : float array;
  st_g_best : float array;
  st_g_fit : float;
  st_rev_trace : float list;
  st_evals : int;
}

(* The one swarm implementation (synchronous updates): every RNG draw
   happens here, in particle order, before the whole iteration's positions
   go to [eval_batch] as one read-only batch together with each particle's
   incumbent personal-best fitness (the bound a bounded evaluator may prune
   against — see [run_bounded]).  Velocity updates use the previous
   iteration's global best, so the outcome depends only on the rng stream
   and the fitness values — never on the order the batch is evaluated in.
   [run], [run_bounded] and [run_batch] are all thin wrappers, so the
   sequential and parallel paths cannot drift. *)
let run_core ~name ?(params = default_params) ?budget ?checkpoint ?resume ~rng ~dim ~eval_batch
    () =
  if dim <= 0 then invalid_arg (name ^ ": dim must be positive");
  let n = params.particles in
  let evaluations = ref 0 in
  let eval_all xs bounds =
    let fits = eval_batch xs bounds in
    if Array.length fits <> Array.length xs then
      invalid_arg (name ^ ": batch_fitness must return one fitness per position");
    evaluations := !evaluations + Array.length xs;
    fits
  in
  let xs, vs, p_best, p_fit, g_best, g_fit, trace, start_iter =
    match resume with
    | Some st ->
      if Array.length st.st_xs <> n then
        invalid_arg (name ^ ": resume state swarm size mismatch");
      if n > 0 && Array.length st.st_xs.(0) <> dim then
        invalid_arg (name ^ ": resume state dimension mismatch");
      (* the caller's rng continues exactly where the snapshot left off *)
      Rng.blit ~src:st.st_rng ~dst:rng;
      evaluations := st.st_evals;
      ( Array.map Array.copy st.st_xs,
        Array.map Array.copy st.st_vs,
        Array.map Array.copy st.st_p_best,
        Array.copy st.st_p_fit,
        ref (Array.copy st.st_g_best),
        ref st.st_g_fit,
        ref st.st_rev_trace,
        st.next_iter )
    | None ->
      let xs = Array.make n [||] in
      let vs = Array.make n [||] in
      for i = 0 to n - 1 do
        xs.(i) <- Array.init dim (fun _ -> Rng.uniform rng);
        vs.(i) <- Array.init dim (fun _ -> (Rng.uniform rng -. 0.5) *. params.v_max)
      done;
      (* nothing to prune against yet: the first batch runs unbounded *)
      let fits = eval_all xs (Array.make n infinity) in
      let p_best = Array.map Array.copy xs in
      let p_fit = Array.copy fits in
      let g_best = ref (Array.copy xs.(0)) in
      let g_fit = ref fits.(0) in
      for i = 1 to n - 1 do
        if fits.(i) < !g_fit then begin
          g_fit := fits.(i);
          g_best := Array.copy xs.(i)
        end
      done;
      (xs, vs, p_best, p_fit, g_best, g_fit, ref [], 1)
  in
  let snapshot it =
    {
      next_iter = it + 1;
      st_rng = Rng.copy rng;
      st_xs = Array.map Array.copy xs;
      st_vs = Array.map Array.copy vs;
      st_p_best = Array.map Array.copy p_best;
      st_p_fit = Array.copy p_fit;
      st_g_best = Array.copy !g_best;
      st_g_fit = !g_fit;
      st_rev_trace = !trace;
      st_evals = !evaluations;
    }
  in
  (let exception Out_of_budget in
   try
     for it = start_iter to params.iterations do
       if Mf_util.Budget.over budget then raise Out_of_budget;
       for i = 0 to n - 1 do
         for d = 0 to dim - 1 do
           let r1 = Rng.uniform rng and r2 = Rng.uniform rng in
           let v =
             (params.omega *. vs.(i).(d))
             +. (params.c1 *. r1 *. (p_best.(i).(d) -. xs.(i).(d)))
             +. (params.c2 *. r2 *. (!g_best.(d) -. xs.(i).(d)))
           in
           vs.(i).(d) <- clamp (-.params.v_max) params.v_max v;
           xs.(i).(d) <- clamp 0. 1. (xs.(i).(d) +. vs.(i).(d))
         done
       done;
       (* a result > p_fit.(i) cannot move any best, so a bounded evaluator
          may return any value > the bound once it proves that much *)
       let fits = eval_all xs (Array.copy p_fit) in
       for i = 0 to n - 1 do
         if fits.(i) < p_fit.(i) then begin
           p_fit.(i) <- fits.(i);
           p_best.(i) <- Array.copy xs.(i)
         end;
         if fits.(i) < !g_fit then begin
           g_fit := fits.(i);
           g_best := Array.copy xs.(i)
         end
       done;
       trace := !g_fit :: !trace;
       match checkpoint with None -> () | Some hook -> hook it (snapshot it)
     done
   with Out_of_budget -> ());
  {
    best_position = !g_best;
    best_fitness = !g_fit;
    trace = List.rev !trace;
    evaluations = !evaluations;
  }

let run ?params ?budget ~rng ~dim ~fitness () =
  run_core ~name:"Pso.run" ?params ?budget ~rng ~dim
    ~eval_batch:(fun xs _bounds -> Array.map fitness xs)
    ()

let run_bounded ?params ?budget ~rng ~dim ~fitness () =
  run_core ~name:"Pso.run_bounded" ?params ?budget ~rng ~dim
    ~eval_batch:(fun xs bounds -> Array.mapi (fun i x -> fitness ~bound:bounds.(i) x) xs)
    ()

let run_batch ?params ?budget ?checkpoint ?resume ~rng ~dim ~batch_fitness () =
  run_core ~name:"Pso.run_batch" ?params ?budget ?checkpoint ?resume ~rng ~dim
    ~eval_batch:(fun xs _bounds -> batch_fitness xs)
    ()
