module Rng = Mf_util.Rng

type params = {
  particles : int;
  iterations : int;
  omega : float;
  c1 : float;
  c2 : float;
  v_max : float;
}

let default_params =
  { particles = 5; iterations = 100; omega = 0.72; c1 = 1.49; c2 = 1.49; v_max = 0.5 }

type outcome = {
  best_position : float array;
  best_fitness : float;
  trace : float list;
  evaluations : int;
}

type particle = {
  x : float array;
  v : float array;
  mutable p_best : float array;
  mutable p_fit : float;
}

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let run ?(params = default_params) ?budget ~rng ~dim ~fitness () =
  if dim <= 0 then invalid_arg "Pso.run: dim must be positive";
  let evaluations = ref 0 in
  let eval x =
    incr evaluations;
    fitness x
  in
  let make_particle () =
    let x = Array.init dim (fun _ -> Rng.uniform rng) in
    let v = Array.init dim (fun _ -> (Rng.uniform rng -. 0.5) *. params.v_max) in
    let fit = eval x in
    { x; v; p_best = Array.copy x; p_fit = fit }
  in
  let swarm = Array.init params.particles (fun _ -> make_particle ()) in
  let g_best = ref (Array.copy swarm.(0).p_best) in
  let g_fit = ref swarm.(0).p_fit in
  Array.iter
    (fun p ->
      if p.p_fit < !g_fit then begin
        g_fit := p.p_fit;
        g_best := Array.copy p.p_best
      end)
    swarm;
  let trace = ref [] in
  (let exception Out_of_budget in
   try
     for _iter = 1 to params.iterations do
       if Mf_util.Budget.over budget then raise Out_of_budget;
       Array.iter
         (fun p ->
           for d = 0 to dim - 1 do
             let r1 = Rng.uniform rng and r2 = Rng.uniform rng in
             let v =
               (params.omega *. p.v.(d))
               +. (params.c1 *. r1 *. (p.p_best.(d) -. p.x.(d)))
               +. (params.c2 *. r2 *. (!g_best.(d) -. p.x.(d)))
             in
             p.v.(d) <- clamp (-.params.v_max) params.v_max v;
             p.x.(d) <- clamp 0. 1. (p.x.(d) +. p.v.(d))
           done;
           let fit = eval p.x in
           if fit < p.p_fit then begin
             p.p_fit <- fit;
             p.p_best <- Array.copy p.x
           end;
           if fit < !g_fit then begin
             g_fit := fit;
             g_best := Array.copy p.x
           end)
         swarm;
       trace := !g_fit :: !trace
     done
   with Out_of_budget -> ());
  {
    best_position = !g_best;
    best_fitness = !g_fit;
    trace = List.rev !trace;
    evaluations = !evaluations;
  }

type batch_state = {
  next_iter : int; (* first iteration the resumed run will execute *)
  st_rng : Rng.t;
  st_xs : float array array;
  st_vs : float array array;
  st_p_best : float array array;
  st_p_fit : float array;
  st_g_best : float array;
  st_g_fit : float;
  st_rev_trace : float list;
  st_evals : int;
}

(* Synchronous-update variant: every RNG draw happens here, in particle
   order, before the whole iteration's positions go to [batch_fitness] as
   one read-only batch.  Velocity updates use the previous iteration's
   global best, so the outcome depends only on the rng stream and the
   fitness values — never on the order the batch is evaluated in. *)
let run_batch ?(params = default_params) ?budget ?checkpoint ?resume ~rng ~dim ~batch_fitness ()
    =
  if dim <= 0 then invalid_arg "Pso.run_batch: dim must be positive";
  let n = params.particles in
  let evaluations = ref 0 in
  let eval_all xs =
    let fits = batch_fitness xs in
    if Array.length fits <> Array.length xs then
      invalid_arg "Pso.run_batch: batch_fitness must return one fitness per position";
    evaluations := !evaluations + Array.length xs;
    fits
  in
  let xs, vs, p_best, p_fit, g_best, g_fit, trace, start_iter =
    match resume with
    | Some st ->
      if Array.length st.st_xs <> n then
        invalid_arg "Pso.run_batch: resume state swarm size mismatch";
      if n > 0 && Array.length st.st_xs.(0) <> dim then
        invalid_arg "Pso.run_batch: resume state dimension mismatch";
      (* the caller's rng continues exactly where the snapshot left off *)
      Rng.blit ~src:st.st_rng ~dst:rng;
      evaluations := st.st_evals;
      ( Array.map Array.copy st.st_xs,
        Array.map Array.copy st.st_vs,
        Array.map Array.copy st.st_p_best,
        Array.copy st.st_p_fit,
        ref (Array.copy st.st_g_best),
        ref st.st_g_fit,
        ref st.st_rev_trace,
        st.next_iter )
    | None ->
      let xs = Array.make n [||] in
      let vs = Array.make n [||] in
      for i = 0 to n - 1 do
        xs.(i) <- Array.init dim (fun _ -> Rng.uniform rng);
        vs.(i) <- Array.init dim (fun _ -> (Rng.uniform rng -. 0.5) *. params.v_max)
      done;
      let fits = eval_all xs in
      let p_best = Array.map Array.copy xs in
      let p_fit = Array.copy fits in
      let g_best = ref (Array.copy xs.(0)) in
      let g_fit = ref fits.(0) in
      for i = 1 to n - 1 do
        if fits.(i) < !g_fit then begin
          g_fit := fits.(i);
          g_best := Array.copy xs.(i)
        end
      done;
      (xs, vs, p_best, p_fit, g_best, g_fit, ref [], 1)
  in
  let snapshot it =
    {
      next_iter = it + 1;
      st_rng = Rng.copy rng;
      st_xs = Array.map Array.copy xs;
      st_vs = Array.map Array.copy vs;
      st_p_best = Array.map Array.copy p_best;
      st_p_fit = Array.copy p_fit;
      st_g_best = Array.copy !g_best;
      st_g_fit = !g_fit;
      st_rev_trace = !trace;
      st_evals = !evaluations;
    }
  in
  (let exception Out_of_budget in
   try
     for it = start_iter to params.iterations do
       if Mf_util.Budget.over budget then raise Out_of_budget;
       for i = 0 to n - 1 do
         for d = 0 to dim - 1 do
           let r1 = Rng.uniform rng and r2 = Rng.uniform rng in
           let v =
             (params.omega *. vs.(i).(d))
             +. (params.c1 *. r1 *. (p_best.(i).(d) -. xs.(i).(d)))
             +. (params.c2 *. r2 *. (!g_best.(d) -. xs.(i).(d)))
           in
           vs.(i).(d) <- clamp (-.params.v_max) params.v_max v;
           xs.(i).(d) <- clamp 0. 1. (xs.(i).(d) +. vs.(i).(d))
         done
       done;
       let fits = eval_all xs in
       for i = 0 to n - 1 do
         if fits.(i) < p_fit.(i) then begin
           p_fit.(i) <- fits.(i);
           p_best.(i) <- Array.copy xs.(i)
         end;
         if fits.(i) < !g_fit then begin
           g_fit := fits.(i);
           g_best := Array.copy xs.(i)
         end
       done;
       trace := !g_fit :: !trace;
       match checkpoint with None -> () | Some hook -> hook it (snapshot it)
     done
   with Out_of_budget -> ());
  {
    best_position = !g_best;
    best_fitness = !g_fit;
    trace = List.rev !trace;
    evaluations = !evaluations;
  }
