module Rng = Mf_util.Rng

type params = {
  particles : int;
  iterations : int;
  omega : float;
  c1 : float;
  c2 : float;
  v_max : float;
}

let default_params =
  { particles = 5; iterations = 100; omega = 0.72; c1 = 1.49; c2 = 1.49; v_max = 0.5 }

type outcome = {
  best_position : float array;
  best_fitness : float;
  trace : float list;
  evaluations : int;
}

type particle = {
  x : float array;
  v : float array;
  mutable p_best : float array;
  mutable p_fit : float;
}

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let run ?(params = default_params) ~rng ~dim ~fitness () =
  if dim <= 0 then invalid_arg "Pso.run: dim must be positive";
  let evaluations = ref 0 in
  let eval x =
    incr evaluations;
    fitness x
  in
  let make_particle () =
    let x = Array.init dim (fun _ -> Rng.uniform rng) in
    let v = Array.init dim (fun _ -> (Rng.uniform rng -. 0.5) *. params.v_max) in
    let fit = eval x in
    { x; v; p_best = Array.copy x; p_fit = fit }
  in
  let swarm = Array.init params.particles (fun _ -> make_particle ()) in
  let g_best = ref (Array.copy swarm.(0).p_best) in
  let g_fit = ref swarm.(0).p_fit in
  Array.iter
    (fun p ->
      if p.p_fit < !g_fit then begin
        g_fit := p.p_fit;
        g_best := Array.copy p.p_best
      end)
    swarm;
  let trace = ref [] in
  for _iter = 1 to params.iterations do
    Array.iter
      (fun p ->
        for d = 0 to dim - 1 do
          let r1 = Rng.uniform rng and r2 = Rng.uniform rng in
          let v =
            (params.omega *. p.v.(d))
            +. (params.c1 *. r1 *. (p.p_best.(d) -. p.x.(d)))
            +. (params.c2 *. r2 *. (!g_best.(d) -. p.x.(d)))
          in
          p.v.(d) <- clamp (-.params.v_max) params.v_max v;
          p.x.(d) <- clamp 0. 1. (p.x.(d) +. p.v.(d))
        done;
        let fit = eval p.x in
        if fit < p.p_fit then begin
          p.p_fit <- fit;
          p.p_best <- Array.copy p.x
        end;
        if fit < !g_fit then begin
          g_fit := fit;
          g_best := Array.copy p.x
        end)
      swarm;
    trace := !g_fit :: !trace
  done;
  {
    best_position = !g_best;
    best_fitness = !g_fit;
    trace = List.rev !trace;
    evaluations = !evaluations;
  }

(* Synchronous-update variant: every RNG draw happens here, in particle
   order, before the whole iteration's positions go to [batch_fitness] as
   one read-only batch.  Velocity updates use the previous iteration's
   global best, so the outcome depends only on the rng stream and the
   fitness values — never on the order the batch is evaluated in. *)
let run_batch ?(params = default_params) ~rng ~dim ~batch_fitness () =
  if dim <= 0 then invalid_arg "Pso.run_batch: dim must be positive";
  let n = params.particles in
  let evaluations = ref 0 in
  let eval_all xs =
    let fits = batch_fitness xs in
    if Array.length fits <> Array.length xs then
      invalid_arg "Pso.run_batch: batch_fitness must return one fitness per position";
    evaluations := !evaluations + Array.length xs;
    fits
  in
  let xs = Array.make n [||] in
  let vs = Array.make n [||] in
  for i = 0 to n - 1 do
    xs.(i) <- Array.init dim (fun _ -> Rng.uniform rng);
    vs.(i) <- Array.init dim (fun _ -> (Rng.uniform rng -. 0.5) *. params.v_max)
  done;
  let fits = eval_all xs in
  let p_best = Array.map Array.copy xs in
  let p_fit = Array.copy fits in
  let g_best = ref (Array.copy xs.(0)) in
  let g_fit = ref fits.(0) in
  for i = 1 to n - 1 do
    if fits.(i) < !g_fit then begin
      g_fit := fits.(i);
      g_best := Array.copy xs.(i)
    end
  done;
  let trace = ref [] in
  for _iter = 1 to params.iterations do
    for i = 0 to n - 1 do
      for d = 0 to dim - 1 do
        let r1 = Rng.uniform rng and r2 = Rng.uniform rng in
        let v =
          (params.omega *. vs.(i).(d))
          +. (params.c1 *. r1 *. (p_best.(i).(d) -. xs.(i).(d)))
          +. (params.c2 *. r2 *. (!g_best.(d) -. xs.(i).(d)))
        in
        vs.(i).(d) <- clamp (-.params.v_max) params.v_max v;
        xs.(i).(d) <- clamp 0. 1. (xs.(i).(d) +. vs.(i).(d))
      done
    done;
    let fits = eval_all xs in
    for i = 0 to n - 1 do
      if fits.(i) < p_fit.(i) then begin
        p_fit.(i) <- fits.(i);
        p_best.(i) <- Array.copy xs.(i)
      end;
      if fits.(i) < !g_fit then begin
        g_fit := fits.(i);
        g_best := Array.copy xs.(i)
      end
    done;
    trace := !g_fit :: !trace
  done;
  {
    best_position = !g_best;
    best_fitness = !g_fit;
    trace = List.rev !trace;
    evaluations = !evaluations;
  }
