(** Exact search for a path that keeps one designated edge a {e bridge} of
    the realized conducting subgraph — the structural core of fault
    observability.

    The setting: some edges of the graph conduct under {e every} control
    vector ([contract] — unvalved channels and valves a fault context holds
    open), the rest ([allowed]) conduct only when a vector opens them, and a
    vector's conducting subgraph is exactly its chosen path plus all
    [contract] edges.  A vector can observe edge [via] at [target] precisely
    when its path crosses [via] once and neither half touches the
    always-conducting component of the far side — any such contact
    reconnects around [via] no matter what the vector does.

    {!route_through} decides this exactly (up to [cap]) by depth-first
    search over the graph with [contract]-components contracted: a found
    route is a concrete witness path; exhaustion is a sound proof that no
    observing vector exists at all.  The search is deterministic — fixed
    traversal order, no randomness — so independent callers (test
    generation, repair and certificate audit) reach identical verdicts. *)

val default_cap : int
(** Expansion budget every caller should use unless it has a reason not to:
    producer and auditor must agree on when a search counts as exhausted,
    and that requires one shared cap. *)

type result =
  | Route of int list
      (** witness: a simple edge path from an origin to [target] crossing
          [via] exactly once, with both halves clear of the far side's
          always-conducting component *)
  | No_route
      (** exhaustive: no such path exists, hence no vector observes [via] *)
  | Capped  (** undecided: the search exceeded [cap] expansions *)

val route_through :
  Graph.t ->
  allowed:(int -> bool) ->
  contract:(int -> bool) ->
  origins:int list ->
  target:int ->
  via:int ->
  cap:int ->
  result
(** [route_through g ~allowed ~contract ~origins ~target ~via ~cap].

    [allowed] are the edges a vector may conduct through (excluding any the
    caller knows to be dead); [contract] ⊆ [allowed] are the edges that
    conduct under every vector; [via] is the edge to observe and is crossed
    exactly once regardless of its [allowed]/[contract] status.  [origins]
    are pressure entry nodes: the route starts at the first origin whose
    component admits one, may revisit origin components before crossing
    [via] but never after, and only enters [target]'s component as its
    final step.  [cap] bounds DFS node expansions. *)
