module Bitset = Mf_util.Bitset

type result = Route of int list | No_route | Capped

let default_cap = 50_000

exception Found of (int * int * int) list
exception Hit_cap

let route_through g ~allowed ~contract ~origins ~target ~via ~cap =
  let nn = Graph.n_nodes g in
  let ne = Graph.n_edges g in
  let inner f = f <> via && contract f in
  (* Union-find labels of the components of the contracted subgraph minus
     [via]; two nodes with one label are joined whatever else happens. *)
  let parent = Array.init nn Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  for f = 0 to ne - 1 do
    if inner f then begin
      let u, v = Graph.endpoints g f in
      let ru = find u and rv = find v in
      if ru <> rv then parent.(ru) <- rv
    end
  done;
  let comp = find in
  let a_via, b_via = Graph.endpoints g via in
  let ca = comp a_via and cb = comp b_via in
  let tstar = comp target in
  let origin_comps = Bitset.create nn in
  List.iter (fun o -> Bitset.add origin_comps (comp o)) origins;
  if ca = cb || Bitset.mem origin_comps tstar then No_route
  else begin
    (* Contracted adjacency: switchable edges joining distinct components,
       sorted by edge id so traversal order (hence the step count and any
       route found) is deterministic. *)
    let adj = Array.make nn [] in
    for f = ne - 1 downto 0 do
      if f <> via && allowed f then begin
        let u, v = Graph.endpoints g f in
        let cu = comp u and cv = comp v in
        if cu <> cv then begin
          adj.(cu) <- (f, u, v, cv) :: adj.(cu);
          adj.(cv) <- (f, v, u, cu) :: adj.(cv)
        end
      end
    done;
    let visited = Bitset.create nn in
    let steps = ref 0 in
    (* Reachability over components, skipping [avoid]ed ones; [dst] itself is
       never rejected.  Used only to prune branches that cannot complete, so
       being permissive is safe. *)
    let creach ~avoid src dst =
      src = dst
      || begin
        let seen = Bitset.create nn in
        Bitset.add seen src;
        let frontier = Queue.create () in
        Queue.add src frontier;
        let hit = ref false in
        while (not !hit) && not (Queue.is_empty frontier) do
          let c = Queue.pop frontier in
          List.iter
            (fun (_, _, _, d) ->
              if d = dst then hit := true
              else if (not (Bitset.mem seen d)) && not (avoid d) then begin
                Bitset.add seen d;
                Queue.add d frontier
              end)
            adj.(c)
        done;
        !hit
      end
    in
    let post_avoid c = Bitset.mem visited c || Bitset.mem origin_comps c in
    (* Depth-first search for a component-simple origin→target path crossing
       [via] exactly once.  Before the crossing the target's component is off
       limits (touching it would leave the meter side pressurised without
       [via]); after it the origin components are (pressure would bypass
       [via] into the meter side). *)
    let rec dfs c used acc =
      incr steps;
      if !steps > cap then raise Hit_cap;
      if c = tstar && used then raise (Found (List.rev acc));
      if used then begin
        if creach ~avoid:post_avoid c tstar then expand c used acc
      end
      else begin
        let feasible cnear cfar =
          creach ~avoid:(fun d -> Bitset.mem visited d || d = tstar) c cnear
          && creach ~avoid:(fun d -> post_avoid d || d = cnear) cfar tstar
        in
        if feasible ca cb || feasible cb ca then expand c used acc
      end
    and expand c used acc =
      if not used then begin
        (* crossing [via] is available from either of its components *)
        let may_land d = not (Bitset.mem visited d || Bitset.mem origin_comps d) in
        if c = ca && may_land cb then step cb true ((via, a_via, b_via) :: acc);
        if c = cb && may_land ca then step ca true ((via, b_via, a_via) :: acc)
      end;
      List.iter
        (fun (f, u, v, d) ->
          if
            (not (Bitset.mem visited d))
            && (if used then not (Bitset.mem origin_comps d) else d <> tstar)
          then step d used ((f, u, v) :: acc))
        adj.(c)
    and step d used acc =
      Bitset.add visited d;
      dfs d used acc;
      Bitset.remove visited d
    in
    let starts =
      (* one start per distinct origin component, first origin wins *)
      let seen = Bitset.create nn in
      List.filter
        (fun o ->
          let c = comp o in
          if Bitset.mem seen c then false
          else begin
            Bitset.add seen c;
            true
          end)
        origins
    in
    match
      List.iter
        (fun o ->
          let c = comp o in
          Bitset.add visited c;
          dfs c false [];
          Bitset.remove visited c)
        starts
    with
    | () -> No_route
    | exception Hit_cap -> Capped
    | exception Found crossings ->
      (* Lift the component path to a concrete edge path: stitch the
         crossings together with always-usable intra-component segments. *)
      let start_comp =
        match crossings with (_, u, _) :: _ -> comp u | [] -> assert false
      in
      let start = List.find (fun o -> comp o = start_comp) origins in
      let stitch src dst =
        match Traverse.bfs_path g ~allowed:inner ~src ~dst with
        | Some seg -> seg
        | None -> invalid_arg "Disjoint.route_through: contraction out of sync"
      in
      let segs = ref [] in
      let cur = ref start in
      List.iter
        (fun (f, u, v) ->
          segs := [ f ] :: stitch !cur u :: !segs;
          cur := v)
        crossings;
      segs := stitch !cur target :: !segs;
      Route (List.concat (List.rev !segs))
  end
