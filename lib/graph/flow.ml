module Bitset = Mf_util.Bitset

(* Residual network: for undirected edge e with capacity c we create arcs
   u->v and v->u, each with capacity c, paired so that pushing along one
   grows the reverse capacity of the other.  This is the standard encoding
   of undirected capacities. *)
type residual = {
  heads : int array;          (* arc -> head node *)
  caps : int array;           (* arc -> remaining capacity *)
  first : int list array;     (* node -> arcs leaving it *)
}

let build g ~allowed ~capacity =
  let n = Graph.n_nodes g in
  let arcs = ref [] in
  let count = ref 0 in
  let first = Array.make n [] in
  let add_arc u v c =
    let id = !count in
    incr count;
    arcs := (v, c) :: !arcs;
    first.(u) <- id :: first.(u);
    id
  in
  Graph.iter_edges
    (fun e u v ->
      if allowed e then begin
        let c = capacity e in
        assert (c >= 0);
        let _ = add_arc u v c in
        let _ = add_arc v u c in
        ()
      end)
    g;
  let listed = Array.of_list (List.rev !arcs) in
  let heads = Array.map fst listed in
  let caps = Array.map snd listed in
  { heads; caps; first }

(* Arc pairing: arcs were added in pairs, so arc a's reverse is a lxor 1. *)
let rev a = a lxor 1

let bfs_levels r ~n ~src =
  let level = Array.make n (-1) in
  let queue = Queue.create () in
  level.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let visit a =
      let v = r.heads.(a) in
      if r.caps.(a) > 0 && level.(v) < 0 then begin
        level.(v) <- level.(u) + 1;
        Queue.add v queue
      end
    in
    List.iter visit r.first.(u)
  done;
  level

let max_flow_residual r ~n ~src ~dst =
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    let level = bfs_levels r ~n ~src in
    if level.(dst) < 0 then continue := false
    else begin
      (* iterator state per node to avoid rescanning saturated arcs *)
      let pending = Array.map (fun arcs -> ref arcs) r.first in
      let rec push u limit =
        if u = dst then limit
        else begin
          let advanced = ref 0 in
          let finished = ref false in
          while not !finished && !advanced = 0 do
            match !(pending.(u)) with
            | [] -> finished := true
            | a :: rest ->
              let v = r.heads.(a) in
              if r.caps.(a) > 0 && level.(v) = level.(u) + 1 then begin
                let got = push v (min limit r.caps.(a)) in
                if got > 0 then begin
                  r.caps.(a) <- r.caps.(a) - got;
                  r.caps.(rev a) <- r.caps.(rev a) + got;
                  advanced := got
                end
                else pending.(u) := rest
              end
              else pending.(u) := rest
          done;
          !advanced
        end
      in
      let rec drain () =
        let got = push src max_int in
        if got > 0 then begin
          total := !total + got;
          drain ()
        end
      in
      drain ()
    end
  done;
  !total

let max_flow g ~allowed ~capacity ~src ~dst =
  let r = build g ~allowed ~capacity in
  max_flow_residual r ~n:(Graph.n_nodes g) ~src ~dst

let min_cut g ~allowed ~capacity ~src ~dst =
  let n = Graph.n_nodes g in
  let r = build g ~allowed ~capacity in
  let value = max_flow_residual r ~n ~src ~dst in
  (* Source side of the cut: nodes reachable in the residual network. *)
  let side = Bitset.create n in
  let queue = Queue.create () in
  Bitset.add side src;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let visit a =
      let v = r.heads.(a) in
      if r.caps.(a) > 0 && not (Bitset.mem side v) then begin
        Bitset.add side v;
        Queue.add v queue
      end
    in
    List.iter visit r.first.(u)
  done;
  let cut =
    Graph.fold_edges
      (fun e u v acc ->
        if allowed e && Bitset.mem side u <> Bitset.mem side v then e :: acc else acc)
      g []
  in
  (value, List.rev cut)
