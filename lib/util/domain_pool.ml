type task = Task of (unit -> unit)

type t = {
  jobs : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  wakeup : Condition.t;  (* signalled when the queue gains work or the pool closes *)
  fulfilled : Condition.t;  (* signalled when any submitted future completes *)
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let worker_loop pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    let rec next () =
      match Queue.pop pool.queue with
      | task -> Some task
      | exception Queue.Empty ->
        if pool.closed then None
        else begin
          Condition.wait pool.wakeup pool.mutex;
          next ()
        end
    in
    match next () with
    | None -> Mutex.unlock pool.mutex
    | Some (Task run) ->
      Mutex.unlock pool.mutex;
      run ();
      loop ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Domain_pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      wakeup = Condition.create ();
      fulfilled = Condition.create ();
      workers = [];
      closed = false;
    }
  in
  pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.wakeup;
  Mutex.unlock pool.mutex;
  let workers = pool.workers in
  pool.workers <- [];
  List.iter Domain.join workers

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Tasks never block, so the coordinator can help drain the queue and then
   sleep on [finished] until the last worker's decrement. *)
let map pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if pool.jobs = 1 || n = 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = ref n in
    let finished = Condition.create () in
    let task i =
      Task
        (fun () ->
          Chaos.delay ();
          (match f xs.(i) with
           | r -> results.(i) <- Some r
           | exception e -> errors.(i) <- Some e);
          Mutex.lock pool.mutex;
          decr remaining;
          if !remaining = 0 then Condition.broadcast finished;
          Mutex.unlock pool.mutex)
    in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      Queue.push (task i) pool.queue
    done;
    Condition.broadcast pool.wakeup;
    let rec drain () =
      match Queue.pop pool.queue with
      | Task run ->
        Mutex.unlock pool.mutex;
        run ();
        Mutex.lock pool.mutex;
        drain ()
      | exception Queue.Empty -> ()
    in
    drain ();
    while !remaining > 0 do
      Condition.wait finished pool.mutex
    done;
    Mutex.unlock pool.mutex;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every slot filled: remaining reached 0 with no error *))
      results
  end

let map_reduce pool ~map:f ~fold ~init xs = Array.fold_left fold init (map pool f xs)

(* Work-queue mode: individually submitted tasks whose results are claimed
   in whatever order the coordinator chooses.  The batched branch-and-bound
   uses this instead of [map] so a round's relaxations can be enqueued as
   they are assembled and harvested strictly in batch order. *)

type 'a fstate = Fpending | Fdone of 'a | Fraised of exn

type 'a future = { mutable fst : 'a fstate }

let submit pool f =
  let fut = { fst = Fpending } in
  if pool.jobs = 1 then begin
    (* no workers: run inline so [await] never blocks *)
    (fut.fst <- (match f () with r -> Fdone r | exception e -> Fraised e));
    fut
  end
  else begin
    let task =
      Task
        (fun () ->
          Chaos.delay ();
          let r = match f () with r -> Fdone r | exception e -> Fraised e in
          Mutex.lock pool.mutex;
          fut.fst <- r;
          Condition.broadcast pool.fulfilled;
          Mutex.unlock pool.mutex)
    in
    Mutex.lock pool.mutex;
    Queue.push task pool.queue;
    Condition.signal pool.wakeup;
    Mutex.unlock pool.mutex;
    fut
  end

let await pool fut =
  let rec claim () =
    match fut.fst with
    | Fdone r -> r
    | Fraised e -> raise e
    | Fpending ->
      Mutex.lock pool.mutex;
      (* help drain the queue while the wanted future is still pending; if
         the queue is empty a worker has it in flight, so sleep until the
         next completion broadcast *)
      (match Queue.pop pool.queue with
       | Task run ->
         Mutex.unlock pool.mutex;
         run ()
       | exception Queue.Empty ->
         (match fut.fst with
          | Fpending -> Condition.wait pool.fulfilled pool.mutex
          | Fdone _ | Fraised _ -> ());
         Mutex.unlock pool.mutex);
      claim ()
  in
  claim ()

let map_bounded pool ?budget ~fallback f xs =
  match budget with
  | None -> map pool f xs
  | Some b ->
    (* tasks that start after the deadline degrade to the cheap fallback,
       so a late deadline drains the queue quickly instead of hanging *)
    map pool (fun x -> if Budget.exhausted b then fallback x else f x) xs

let default_jobs () =
  match Sys.getenv_opt "MFDFT_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j >= 1 -> j
     | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()
