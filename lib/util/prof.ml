let enabled =
  match Sys.getenv_opt "MFDFT_PROF" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

type cell = { mutable seconds : float; mutable calls : int; mutable count : int }

let lock = Mutex.create ()
let table : (string, cell) Hashtbl.t = Hashtbl.create 16

let cell_of stage =
  match Hashtbl.find_opt table stage with
  | Some c -> c
  | None ->
    let c = { seconds = 0.; calls = 0; count = 0 } in
    Hashtbl.add table stage c;
    c

let record stage dt =
  Mutex.lock lock;
  let c = cell_of stage in
  c.seconds <- c.seconds +. dt;
  c.calls <- c.calls + 1;
  Mutex.unlock lock

let time stage f =
  if not enabled then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    match f () with
    | v ->
      record stage (Unix.gettimeofday () -. t0);
      v
    | exception e ->
      record stage (Unix.gettimeofday () -. t0);
      raise e
  end

let add_count stage n =
  if enabled then begin
    Mutex.lock lock;
    let c = cell_of stage in
    c.count <- c.count + n;
    Mutex.unlock lock
  end

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock

let report () =
  if not enabled then None
  else begin
    Mutex.lock lock;
    let rows = Hashtbl.fold (fun k c acc -> (k, c.seconds, c.calls, c.count) :: acc) table [] in
    Mutex.unlock lock;
    if rows = [] then None
    else begin
      let rows = List.sort (fun (_, a, _, _) (_, b, _, _) -> compare b a) rows in
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "%-28s %10s %8s %12s\n" "stage" "time[s]" "calls" "count");
      List.iter
        (fun (stage, s, calls, count) ->
          Buffer.add_string buf
            (Printf.sprintf "%-28s %10.3f %8d %12s\n" stage s calls
               (if count = 0 then "-" else string_of_int count)))
        rows;
      Some (Buffer.contents buf)
    end
  end
