(** Bounded least-recently-used map.

    A fixed-capacity polymorphic key/value store that evicts the entry
    touched longest ago once full — the in-memory tier of the serve-mode
    result cache, but generic (hashtable plus intrusive doubly-linked
    recency list; every operation is O(1) expected).

    Not thread-safe: callers that share an LRU across threads guard it with
    their own mutex (the serve cache does). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [create ~capacity] holds at most [capacity] entries.
    Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** [find t k] returns the bound value and marks [k] most recently used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Like {!find} but without refreshing recency — for inspection paths that
    must not disturb eviction order. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Recency-neutral membership test. *)

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** [add t k v] binds [k] to [v] as the most recent entry, replacing any
    previous binding of [k].  Returns the evicted least-recent binding when
    the insertion pushed the map over capacity. *)

val remove : ('k, 'v) t -> 'k -> unit
(** No-op when [k] is unbound. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Bindings most-recently-used first. *)
