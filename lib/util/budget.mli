(** Wall-clock deadlines with cooperative cancellation.

    A budget is an absolute deadline plus a cancellation token.  Long-running
    loops (simplex pivots, ILP nodes, PSO iterations, pool construction)
    poll {!exhausted} at safe points and wind down gracefully, returning
    their best feasible result instead of raising.  The token is an
    [Atomic.t], so a budget created on the coordinating domain may be polled
    from worker domains without synchronisation.

    Time base is [Unix.gettimeofday]; deadlines are coarse (fractions of a
    second) by design — they bound stages that run for seconds to minutes.
    Runs with a finite budget trade the bit-for-bit determinism contract for
    bounded latency: which iteration the deadline lands on depends on the
    machine.  Runs without a budget (the default everywhere) are untouched. *)

type t

val unlimited : unit -> t
(** A fresh budget with no deadline.  Still cancellable. *)

val of_seconds : float -> t
(** [of_seconds s] expires [s] seconds from now.
    Raises [Invalid_argument] if [s < 0]. *)

val cancel : t -> unit
(** Trip the cancellation token; {!exhausted} is true from then on.  Safe
    from any domain or signal handler. *)

val cancelled : t -> bool

val exhausted : t -> bool
(** True once the deadline has passed or {!cancel} was called. *)

val over : t option -> bool
(** [over budget] is [false] for [None] — the idiom for APIs whose budget
    parameter is optional. *)

val remaining : t -> float
(** Seconds left ([infinity] when unlimited, [0.] once exhausted). *)

val pp : Format.formatter -> t -> unit
