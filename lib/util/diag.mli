(** Shared diagnostics core for the static-verification layer.

    Every static check in the project — the chip netlist linter, the DFT
    certificate checker, the control-sharing conflict analysis and the
    [.chip]/[.assay] parsers — reports findings as values of {!t}: a stable
    code (["MF001"], ...), a severity, an optional source span (file, line,
    column) for textual inputs, an optional subject naming the chip entity
    or vector concerned, and a one-line human message.

    Diagnostics render two ways: {!pp}/{!pp_list} for humans and
    {!to_json}/{!json_list} for tooling.  {!exit_code} implements the CLI
    policy: errors always fail; warnings fail only under [--strict].

    Code ranges (the catalog lives in DESIGN.md §9):
    - MF0xx — chip netlist lints ([Mf_verify.Lint]);
    - MF1xx — DFT certificate checks ([Mf_verify.Cert]);
    - MF2xx — control-sharing conflicts ([Mf_verify.Conflict]);
    - MF3xx — textual-input parse diagnostics ([Chip_io]/[Assay_io]). *)

type severity = Error | Warning | Info

type span = {
  file : string option;
  line : int option;  (** 1-based *)
  col : int option;  (** 1-based *)
}

val no_span : span
val span : ?file:string -> ?line:int -> ?col:int -> unit -> span

type t = {
  code : string;  (** stable catalog code, e.g. ["MF101"] *)
  severity : severity;
  message : string;  (** one line, human-readable *)
  where : span;
  subject : string option;
      (** the chip entity / vector / schedule step concerned, e.g.
          ["valve v7"] or ["cut #2"] *)
}

val v : ?where:span -> ?subject:string -> severity -> code:string -> string -> t

val errorf :
  ?where:span -> ?subject:string -> code:string -> ('a, unit, string, t) format4 -> 'a

val warningf :
  ?where:span -> ?subject:string -> code:string -> ('a, unit, string, t) format4 -> 'a

val infof :
  ?where:span -> ?subject:string -> code:string -> ('a, unit, string, t) format4 -> 'a

val severity_name : severity -> string

(** {1 Triage} *)

val errors : t list -> t list
val warnings : t list -> t list
val count : t list -> int * int
(** [(n_errors, n_warnings)]. *)

val has_errors : t list -> bool

val by_severity : t list -> t list
(** Stable sort, errors first, then warnings, then infos. *)

val exit_code : strict:bool -> t list -> int
(** CLI policy: [1] when any error is present, or — under [~strict:true] —
    when any warning is; [0] otherwise. *)

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit
(** ["error[MF101] file:3:7: message (subject)"] with absent parts
    omitted. *)

val pp_list : Format.formatter -> t list -> unit
(** One diagnostic per line followed by a ["N error(s), M warning(s)"]
    summary line; prints ["no diagnostics"] for an empty list. *)

val to_json : t -> string
(** One-line JSON object with [code], [severity], [message] and the present
    span/subject fields. *)

val json_list : t list -> string
(** JSON array of {!to_json} objects, one per line. *)
