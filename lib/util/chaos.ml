type site = Simplex_iters | Ilp_nodes | Worker_delay | Ilp_worker

let n_sites = 4

let site_index = function
  | Simplex_iters -> 0
  | Ilp_nodes -> 1
  | Worker_delay -> 2
  | Ilp_worker -> 3

let site_name = function
  | Simplex_iters -> "simplex-iters"
  | Ilp_nodes -> "ilp-nodes"
  | Worker_delay -> "worker-delay"
  | Ilp_worker -> "ilp-worker"

let all_sites = [ Simplex_iters; Ilp_nodes; Worker_delay; Ilp_worker ]

type config = { rate : float; seed : int }

type state = {
  cfg : config;
  only : site option; (* restrict strikes to one site; [None] = all sites *)
  rng : Rng.t;
  lock : Mutex.t;
  counts : int array; (* strikes recorded per site, indexed by [site_index] *)
}

let of_config ?only cfg =
  {
    cfg = { cfg with rate = Float.min 1. (Float.max 0. cfg.rate) };
    only;
    rng = Rng.create ~seed:cfg.seed;
    lock = Mutex.create ();
    counts = Array.make n_sites 0;
  }

let default_seed = 0xC4A05

let env_seed () =
  match Option.bind (Sys.getenv_opt "MFDFT_CHAOS_SEED") int_of_string_opt with
  | Some seed -> seed
  | None -> default_seed

let vf_prefix = "valve-faults:"

(* [MFDFT_CHAOS=<rate>] strikes at every site; [MFDFT_CHAOS=<site>:<rate>]
   (e.g. [ilp-worker:0.3]) restricts strikes to that one site so a single
   degradation path can be exercised in isolation. *)
let from_env () =
  match Sys.getenv_opt "MFDFT_CHAOS" with
  | None -> None
  | Some s -> (
      let s = String.trim s in
      match float_of_string_opt s with
      | Some rate when rate > 0. -> Some (None, { rate; seed = env_seed () })
      | Some _ -> None
      | None -> (
          match String.index_opt s ':' with
          | None -> None
          | Some i -> (
              let name = String.sub s 0 i in
              let rest = String.sub s (i + 1) (String.length s - i - 1) in
              match
                ( List.find_opt (fun site -> site_name site = name) all_sites,
                  float_of_string_opt rest )
              with
              | Some site, Some rate when rate > 0. ->
                  Some (Some site, { rate; seed = env_seed () })
              | _ -> None)))

(* [MFDFT_CHAOS=valve-faults:N] selects the physical-fault mode instead of
   a solver strike rate: N stuck-open valve sites, sampled seed-stably by
   [valve_fault_sites]. *)
let vf_from_env () =
  match Sys.getenv_opt "MFDFT_CHAOS" with
  | None -> None
  | Some s ->
      let s = String.trim s in
      let n = String.length vf_prefix in
      if String.length s > n && String.sub s 0 n = vf_prefix then
        match int_of_string_opt (String.sub s n (String.length s - n)) with
        | Some count when count > 0 -> Some (count, env_seed ())
        | _ -> None
      else None

(* Initialised eagerly at program start so worker domains never race an
   env lookup.  [set] is only meant to be called while no worker domain is
   running (test setup, CLI argument handling). *)
let state = ref (Option.map (fun (only, cfg) -> of_config ?only cfg) (from_env ()))
let vf_state = ref (vf_from_env ())

let set ?only cfg = state := Option.map (of_config ?only) cfg
let set_valve_faults vf = vf_state := vf

let neutralise () =
  state := None;
  vf_state := None

let valve_faults () = Option.map fst !vf_state

(* Fisher–Yates over the whole site universe, then the first [count]
   positions: stable in (seed, n_sites), and monotone in [count] — the
   sites of [valve-faults:k] are a prefix of those of [valve-faults:k+1],
   so escalating the fault count only ever grows the injected set. *)
let sample_sites ~seed ~count ~n_sites =
  if count <= 0 || n_sites <= 0 then []
  else begin
    let rng = Rng.create ~seed in
    let idx = Array.init n_sites Fun.id in
    Rng.shuffle rng idx;
    Array.to_list (Array.sub idx 0 (min count n_sites)) |> List.sort Stdlib.compare
  end

let valve_fault_sites ~n_sites =
  match !vf_state with
  | None -> []
  | Some (count, seed) -> sample_sites ~seed ~count ~n_sites

let active () = Option.is_some !state

let rate () = match !state with None -> 0. | Some st -> st.cfg.rate

let strike site =
  match !state with
  | None -> false
  | Some st when st.only <> None && st.only <> Some site -> false
  | Some st ->
      Mutex.lock st.lock;
      let hit = Rng.uniform st.rng < st.cfg.rate in
      if hit then begin
        let i = site_index site in
        st.counts.(i) <- st.counts.(i) + 1
      end;
      Mutex.unlock st.lock;
      hit

let delay () = if strike Worker_delay then Unix.sleepf 0.0015

let strikes () =
  match !state with
  | None -> []
  | Some st ->
      Mutex.lock st.lock;
      let out = List.map (fun s -> (s, st.counts.(site_index s))) all_sites in
      Mutex.unlock st.lock;
      out

let reset_counts () =
  match !state with
  | None -> ()
  | Some st ->
      Mutex.lock st.lock;
      Array.fill st.counts 0 n_sites 0;
      Mutex.unlock st.lock
