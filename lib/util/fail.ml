type stage =
  | Parse
  | Simplex
  | Lp
  | Ilp
  | Pathgen
  | Pool
  | Pso
  | Codesign
  | Repair

type t = {
  stage : stage;
  reason : string;
  elapsed : float;
  nodes : int;
  incumbent : string option;
}

let v ?(elapsed = 0.) ?(nodes = 0) ?incumbent stage reason =
  { stage; reason; elapsed; nodes; incumbent }

let stage_name = function
  | Parse -> "parse"
  | Simplex -> "simplex"
  | Lp -> "lp"
  | Ilp -> "ilp"
  | Pathgen -> "pathgen"
  | Pool -> "pool"
  | Pso -> "pso"
  | Codesign -> "codesign"
  | Repair -> "repair"

let pp ppf f =
  Format.fprintf ppf "[%s] %s" (stage_name f.stage) f.reason;
  if f.nodes > 0 then Format.fprintf ppf " (%d solver nodes)" f.nodes;
  if f.elapsed > 0. then Format.fprintf ppf " after %.1fs" f.elapsed;
  match f.incumbent with
  | None -> ()
  | Some inc -> Format.fprintf ppf "; best incumbent: %s" inc

let to_string f = Format.asprintf "%a" pp f
