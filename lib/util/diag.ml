type severity = Error | Warning | Info

type span = { file : string option; line : int option; col : int option }

let no_span = { file = None; line = None; col = None }

let span ?file ?line ?col () = { file; line; col }

type t = {
  code : string;
  severity : severity;
  message : string;
  where : span;
  subject : string option;
}

let v ?(where = no_span) ?subject severity ~code message =
  { code; severity; message; where; subject }

let errorf ?where ?subject ~code fmt =
  Printf.ksprintf (fun m -> v ?where ?subject Error ~code m) fmt

let warningf ?where ?subject ~code fmt =
  Printf.ksprintf (fun m -> v ?where ?subject Warning ~code m) fmt

let infof ?where ?subject ~code fmt =
  Printf.ksprintf (fun m -> v ?where ?subject Info ~code m) fmt

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let count ds =
  List.fold_left
    (fun (e, w) d ->
      match d.severity with Error -> (e + 1, w) | Warning -> (e, w + 1) | Info -> (e, w))
    (0, 0) ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let by_severity ds =
  List.stable_sort (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity)) ds

let exit_code ~strict ds =
  let e, w = count ds in
  if e > 0 || (strict && w > 0) then 1 else 0

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_span ppf s =
  match (s.file, s.line, s.col) with
  | None, None, _ -> ()
  | file, Some line, col ->
    Fmt.pf ppf " %s%d%s:"
      (match file with Some f -> f ^ ":" | None -> "line ")
      line
      (match col with Some c -> ":" ^ string_of_int c | None -> "")
  | Some file, None, _ -> Fmt.pf ppf " %s:" file

let pp ppf d =
  Fmt.pf ppf "%s[%s]%a %s%s" (severity_name d.severity) d.code pp_span d.where d.message
    (match d.subject with Some s -> Printf.sprintf " (%s)" s | None -> "")

let pp_list ppf = function
  | [] -> Fmt.pf ppf "no diagnostics"
  | ds ->
    List.iter (fun d -> Fmt.pf ppf "%a@." pp d) ds;
    let e, w = count ds in
    Fmt.pf ppf "%d error%s, %d warning%s" e (if e = 1 then "" else "s") w
      (if w = 1 then "" else "s")

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let fields =
    [
      Some (Printf.sprintf "\"code\":\"%s\"" (json_escape d.code));
      Some (Printf.sprintf "\"severity\":\"%s\"" (severity_name d.severity));
      Some (Printf.sprintf "\"message\":\"%s\"" (json_escape d.message));
      Option.map (fun f -> Printf.sprintf "\"file\":\"%s\"" (json_escape f)) d.where.file;
      Option.map (fun l -> Printf.sprintf "\"line\":%d" l) d.where.line;
      Option.map (fun c -> Printf.sprintf "\"col\":%d" c) d.where.col;
      Option.map (fun s -> Printf.sprintf "\"subject\":\"%s\"" (json_escape s)) d.subject;
    ]
  in
  "{" ^ String.concat "," (List.filter_map Fun.id fields) ^ "}"

let json_list ds =
  match ds with
  | [] -> "[]"
  | ds -> "[\n" ^ String.concat ",\n" (List.map (fun d -> "  " ^ to_json d) ds) ^ "\n]"
