(** Structured pipeline failures.

    Every stage of the solver pipeline ([Simplex] up through [Codesign])
    reports hard failure as a value of this type instead of raising or
    returning a bare string, so callers — ultimately [dft_tool] — can tell
    {e which} stage gave up, how much budget it consumed, and what the best
    incumbent was at that point. *)

type stage =
  | Parse
  | Simplex
  | Lp
  | Ilp
  | Pathgen
  | Pool
  | Pso
  | Codesign
  | Repair

type t = {
  stage : stage;  (** stage that gave up *)
  reason : string;  (** human-readable cause, one line *)
  elapsed : float;  (** wall-clock seconds consumed, [0.] when unknown *)
  nodes : int;  (** solver nodes consumed, [0] when not applicable *)
  incumbent : string option;
      (** rendering of the best feasible result found before failing *)
}

val v : ?elapsed:float -> ?nodes:int -> ?incumbent:string -> stage -> string -> t
(** [v stage reason] builds a failure; optional fields default to "unknown". *)

val stage_name : stage -> string

val pp : Format.formatter -> t -> unit
(** One-line rendering: ["[stage] reason (N solver nodes) after Xs; best
    incumbent: ..."] with absent fields omitted. *)

val to_string : t -> string
