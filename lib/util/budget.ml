type t = {
  deadline : float; (* absolute [Unix.gettimeofday] seconds; [infinity] = none *)
  cancelled : bool Atomic.t;
}

let unlimited () = { deadline = infinity; cancelled = Atomic.make false }

let of_seconds s =
  if s < 0. then invalid_arg "Budget.of_seconds: negative budget";
  { deadline = Unix.gettimeofday () +. s; cancelled = Atomic.make false }

let cancel b = Atomic.set b.cancelled true

let cancelled b = Atomic.get b.cancelled

let exhausted b = Atomic.get b.cancelled || Unix.gettimeofday () >= b.deadline

let over = function None -> false | Some b -> exhausted b

let remaining b =
  if Atomic.get b.cancelled then 0.
  else if b.deadline = infinity then infinity
  else max 0. (b.deadline -. Unix.gettimeofday ())

let pp ppf b =
  if Atomic.get b.cancelled then Format.fprintf ppf "cancelled"
  else if b.deadline = infinity then Format.fprintf ppf "unlimited"
  else Format.fprintf ppf "%.1fs remaining" (remaining b)
