type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let is_empty h = h.size = 0
let size h = h.size

(* Lexicographic (prio, seq): entries pushed without a sequence key all
   carry [seq = 0], so ties between them never swap — exactly the
   behaviour of the float-only heap this generalises. *)
let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h entry =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let fresh = Array.make (max 16 (2 * capacity)) entry in
    Array.blit h.data 0 fresh 0 h.size;
    h.data <- fresh
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let push_seq h prio seq value =
  let entry = { prio; seq; value } in
  grow h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let push h prio value = push_seq h prio 0 value

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let pop_seq h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (top.prio, top.seq, top.value)
  end

let pop h = Option.map (fun (p, _, v) -> (p, v)) (pop_seq h)

let peek h = if h.size = 0 then None else Some (h.data.(0).prio, h.data.(0).value)

let clear h = h.size <- 0
