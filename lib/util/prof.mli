(** Zero-dependency opt-in stage profiler.

    Disabled (every call a no-op) unless the process environment sets
    [MFDFT_PROF=1] — production code can instrument hot stages
    unconditionally with no measurable cost in normal runs.

    Stages are named with free-form strings; times accumulate across calls
    and domains (the table is mutex-guarded).  Alongside wall-clock time a
    stage may accumulate a count (LP pivots, B&B nodes, ...) via
    {!add_count}.  [MFDFT_PROF=1 dft_tool codesign ...] prints the table on
    exit of the instrumented command. *)

val enabled : bool
(** True iff [MFDFT_PROF=1] was set when the process started. *)

val time : string -> (unit -> 'a) -> 'a
(** [time stage f] runs [f ()], attributing its wall-clock time to [stage]
    when profiling is enabled.  Re-entrant and exception-safe (time is
    recorded even when [f] raises).  Nested stages each record their own
    wall time — inner stages are not subtracted from outer ones. *)

val add_count : string -> int -> unit
(** Accumulate an event count (pivots, nodes, ...) against a stage.  The
    stage need not have been timed. *)

val report : unit -> string option
(** The formatted per-stage breakdown (stages sorted by total time,
    descending), or [None] when profiling is disabled or nothing was
    recorded.  Does not reset. *)

val reset : unit -> unit
