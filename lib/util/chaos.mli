(** Software fault-injection harness.

    When enabled, solver stages consult {!strike} at their entry points and
    deliberately cripple themselves — the simplex clamps its iteration
    budget, the ILP truncates its node budget, worker domains nap — so the
    degradation paths of the pipeline are exercised for real rather than
    only in unit mocks.

    Enable by exporting [MFDFT_CHAOS=<rate>] (a fault probability in
    [(0, 1]]; the state is read once at program start) or programmatically
    with {!set}.  [MFDFT_CHAOS=<site>:<rate>] (e.g. [ilp-worker:0.3])
    restricts strikes to one named site, so a single degradation path can
    be driven in isolation.  [MFDFT_CHAOS_SEED] fixes the injection RNG
    seed.

    A second, physical injection mode is selected by
    [MFDFT_CHAOS=valve-faults:N]: instead of crippling solver stages, the
    harness nominates [N] valve sites (seed-stable, see {!sample_sites})
    that drivers treat as stuck-open field faults and feed into the repair
    engine.  The two modes are mutually exclusive — the variable holds
    either a rate or a [valve-faults:] spec.

    Chaos draws come from one global generator shared across domains, so
    under [jobs > 1] the injection pattern depends on scheduling: chaos runs
    deliberately break the bit-for-bit determinism contract.  Test binaries
    that assert exact values call {!neutralise} at startup; the resilience
    suite enables chaos on purpose and asserts only validity, never exact
    objectives. *)

type site =
  | Simplex_iters  (** clamp the simplex pivot budget to force [Iter_limit] *)
  | Ilp_nodes  (** truncate the branch-and-bound node budget *)
  | Worker_delay  (** sleep briefly inside a worker-domain task *)
  | Ilp_worker
      (** fail a branch-and-bound relaxation task inside a worker domain,
          proving the parallel search drains its pool cleanly and surfaces
          one typed outcome *)

type config = { rate : float; seed : int }

val default_seed : int
(** Seed used when [MFDFT_CHAOS_SEED] is not set. *)

val set : ?only:site -> config option -> unit
(** Override the harness state ([None] disables); [~only] restricts strikes
    to a single site.  Call only while no worker domain is running. *)

val neutralise : unit -> unit
(** Disable injection — both the strike-rate and valve-fault modes —
    regardless of [MFDFT_CHAOS]; for test binaries whose assertions require
    the deterministic, fault-free pipeline. *)

val set_valve_faults : (int * int) option -> unit
(** Override the valve-fault mode with [(count, seed)] ([None] disables).
    Call only while no worker domain is running. *)

val valve_faults : unit -> int option
(** Configured valve-fault count, [None] when the mode is inactive. *)

val sample_sites : seed:int -> count:int -> n_sites:int -> int list
(** [sample_sites ~seed ~count ~n_sites] draws [min count n_sites] distinct
    sites from [0 .. n_sites-1], sorted ascending.  Pure and seed-stable:
    the same [(seed, n_sites)] always yields the same permutation, and the
    sites for [count = k] are a subset of those for [count = k+1], so
    escalating a fault count only grows the injected set. *)

val valve_fault_sites : n_sites:int -> int list
(** {!sample_sites} driven by the [valve-faults:N] state; [[]] when the
    mode is inactive. *)

val active : unit -> bool

val rate : unit -> float
(** Configured fault probability; [0.] when inactive. *)

val strike : site -> bool
(** [strike site] draws once: [true] with the configured probability (and
    records the hit against [site]), always [false] when inactive.
    Thread-safe. *)

val delay : unit -> unit
(** Worker-domain injection point: sleeps ~1.5 ms when a
    [Worker_delay] strike fires, otherwise returns immediately. *)

val strikes : unit -> (site * int) list
(** Strike counters per site since start / last {!reset_counts} (empty when
    inactive) — for bench reporting. *)

val reset_counts : unit -> unit

val site_name : site -> string
