(* Hashtable over intrusive doubly-linked nodes: the list holds recency
   order (head = most recent), the table holds key -> node. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option; (* towards head / more recent *)
  mutable next : ('k, 'v) node option; (* towards tail / less recent *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable len : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  { cap = capacity; tbl = Hashtbl.create (min capacity 64); head = None; tail = None; len = 0 }

let capacity t = t.cap
let length t = t.len

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.value

let peek t k = Option.map (fun n -> n.value) (Hashtbl.find_opt t.tbl k)
let mem t k = Hashtbl.mem t.tbl k

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.tbl k;
    t.len <- t.len - 1

let add t k v =
  (match Hashtbl.find_opt t.tbl k with
   | Some node ->
     node.value <- v;
     unlink t node;
     push_front t node
   | None ->
     let node = { key = k; value = v; prev = None; next = None } in
     Hashtbl.replace t.tbl k node;
     push_front t node;
     t.len <- t.len + 1);
  if t.len > t.cap then begin
    match t.tail with
    | None -> assert false (* len > cap >= 1 implies a tail *)
    | Some lru ->
      unlink t lru;
      Hashtbl.remove t.tbl lru.key;
      t.len <- t.len - 1;
      Some (lru.key, lru.value)
  end
  else None

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, n.value) :: acc) n.next
  in
  go [] t.head
