(** Imperative binary min-heap keyed by float priorities, optionally
    extended with a stable integer tie-break.

    Used as the priority queue behind Dijkstra routing and the
    branch-and-bound best-first node selection. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h priority v] inserts [v]; lower priorities pop first.
    Equivalent to [push_seq h priority 0 v]. *)

val push_seq : 'a t -> float -> int -> 'a -> unit
(** [push_seq h priority seq v] inserts [v] under the lexicographic key
    [(priority, seq)]: among equal float priorities the smallest [seq]
    pops first.  Pushing with a monotone insertion counter makes pop
    order a total, reproducible function of the push sequence — the
    deterministic tie-break law the parallel branch-and-bound relies on. *)

val pop : 'a t -> (float * 'a) option
(** [pop h] removes and returns the minimum-priority element. *)

val pop_seq : 'a t -> (float * int * 'a) option
(** {!pop}, also returning the element's tie-break key. *)

val peek : 'a t -> (float * 'a) option
val clear : 'a t -> unit
