(** Deterministic, splittable pseudo-random number generator.

    The implementation is xoshiro256** seeded through splitmix64, giving
    runs that are reproducible across OCaml versions (the stdlib [Random]
    sequence is not guaranteed stable).  Every stochastic component of the
    library (PSO, workload generators, fault injection) draws from a value
    of this type, so experiments are replayable from a single integer
    seed. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split rng] advances [rng] and returns a statistically independent
    generator, for handing to a sub-component without coupling its
    consumption to the parent's. *)

val copy : t -> t
(** [copy rng] duplicates the current state (same future sequence). *)

val blit : src:t -> dst:t -> unit
(** [blit ~src ~dst] overwrites [dst]'s state with [src]'s, so [dst]
    continues [src]'s sequence.  Used to restore a generator in place when
    resuming from a checkpoint. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val uniform : t -> float
(** [uniform rng] is uniform in [\[0, 1)]. *)

val gaussian : t -> float
(** [gaussian rng] is a standard normal deviate (Box–Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** [pick rng arr] is a uniformly chosen element. [arr] must be non-empty. *)

val pick_list : t -> 'a list -> 'a
(** [pick_list rng l] is a uniformly chosen element. [l] must be non-empty. *)
