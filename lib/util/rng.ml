type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 is used only to expand the user seed into the four xoshiro
   state words, as recommended by Blackman & Vigna. *)
let splitmix64 state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next rng =
  let result = Int64.mul (rotl (Int64.mul rng.s1 5L) 7) 9L in
  let t = Int64.shift_left rng.s1 17 in
  rng.s2 <- Int64.logxor rng.s2 rng.s0;
  rng.s3 <- Int64.logxor rng.s3 rng.s1;
  rng.s1 <- Int64.logxor rng.s1 rng.s2;
  rng.s0 <- Int64.logxor rng.s0 rng.s3;
  rng.s2 <- Int64.logxor rng.s2 t;
  rng.s3 <- rotl rng.s3 45;
  result

let split rng =
  let seed = Int64.to_int (next rng) land max_int in
  create ~seed

let copy rng = { s0 = rng.s0; s1 = rng.s1; s2 = rng.s2; s3 = rng.s3 }

let blit ~src ~dst =
  dst.s0 <- src.s0;
  dst.s1 <- src.s1;
  dst.s2 <- src.s2;
  dst.s3 <- src.s3

let int rng bound =
  assert (bound > 0);
  (* mask to OCaml's 62 positive bits: a plain [to_int] of a 63-bit value
     can wrap negative and poison the modulo *)
  let r = Int64.to_int (Int64.shift_right_logical (next rng) 2) land max_int in
  r mod bound

let uniform rng =
  (* 53 high bits give a uniform double in [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (next rng) 11) in
  bits *. 0x1.0p-53

let float rng bound = uniform rng *. bound

let bool rng = Int64.logand (next rng) 1L = 1L

let gaussian rng =
  let rec draw () =
    let u = (2. *. uniform rng) -. 1. in
    let v = (2. *. uniform rng) -. 1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then draw () else u *. sqrt (-2. *. log s /. s)
  in
  draw ()

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick rng arr =
  assert (Array.length arr > 0);
  arr.(int rng (Array.length arr))

let pick_list rng l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ :: _ -> List.nth l (int rng (List.length l))
