(** Fixed-size pool of worker domains (OCaml 5 [Domain]s) for data-parallel
    fan-out of pure computations.

    The pool exists so the hot paths of the codesign flow (PSO fitness
    batches, ILP pool construction) can use every core without giving up
    reproducibility: {!map} preserves input order, so a caller that draws
    all its random numbers on the coordinating domain and hands the workers
    pure closures gets bit-identical results for any [jobs] value.

    Discipline: tasks must not block, must not call back into the pool, and
    must not mutate shared state except through their own result slot (or
    through synchronisation they provide themselves, e.g. a mutex-guarded
    memo table).  [map]/[map_reduce] may only be called from the domain that
    created the pool, one call at a time. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs] is the total
    parallelism: the calling domain also executes tasks while it waits).
    [jobs <= 1] spawns nothing and every [map] runs inline on the caller.
    Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int
(** Total parallelism the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] applies [f] to every element, possibly concurrently,
    and returns the results {b in input order}.  If one or more
    applications raise, the exception of the lowest-index failing element
    is re-raised on the caller after all tasks have finished — so the pool
    stays reusable and the observed exception is deterministic. *)

val map_reduce : t -> map:('a -> 'b) -> fold:('c -> 'b -> 'c) -> init:'c -> 'a array -> 'c
(** [map_reduce pool ~map ~fold ~init xs] maps in parallel, then folds the
    results {b sequentially in input order} on the caller — the
    deterministic-by-construction reduction (no requirements on [fold]'s
    associativity or commutativity). *)

(** {2 Work-queue mode}

    Individually submitted tasks with explicitly claimed results — the
    shape the batched parallel branch-and-bound needs: a round's
    relaxations are enqueued one by one and their results harvested
    strictly in submission order, whatever order the workers finish in.
    The same discipline as {!map} applies: submit and await only from the
    domain that created the pool, tasks must be non-blocking, and the two
    modes must not be interleaved (await every outstanding future before
    the next {!map}). *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** [submit pool f] enqueues [f] for any worker (with [jobs = 1] it runs
    inline immediately).  An exception raised by [f] is captured and
    re-raised by {!await}. *)

val await : t -> 'a future -> 'a
(** [await pool fut] returns [fut]'s result, helping drain the pool's
    queue while it is pending (so the coordinator contributes a worker's
    worth of parallelism and a 1-job pool never deadlocks).  Re-raises
    [f]'s exception, if any — awaiting every submitted future keeps the
    observed exception deterministic and leaves the pool reusable. *)

val map_bounded :
  t -> ?budget:Budget.t -> fallback:('a -> 'b) -> ('a -> 'b) -> 'a array -> 'b array
(** {!map}, except that a task starting after [budget] is exhausted applies
    the (cheap, non-blocking) [fallback] instead of [f] — so a fan-out hit
    by its deadline still returns a full, order-preserving result array
    quickly.  Which elements degrade depends on scheduling; with no
    [budget] this is exactly [map]. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  The pool must be idle. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)

val default_jobs : unit -> int
(** Parallelism to use when the user did not say: the [MFDFT_JOBS]
    environment variable if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)
