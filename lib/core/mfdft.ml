(** mfdft — design-for-testability for continuous-flow microfluidic
    biochips.

    Reproduction of Liu, Li, Ho, Chakrabarty, Schlichtmann,
    "Design-for-Testability for Continuous-Flow Microfluidic Biochips",
    DAC 2018.

    Quick start:
    {[
      let chip = Mf_chips.Benchmarks.ivd_chip () in
      let app = Mf_bioassay.Assays.ivd () in
      match Mfdft.Codesign.run chip app with
      | Ok r -> Format.printf "exec time with DFT: %a@." Fmt.(option int) r.exec_final
      | Error f -> prerr_endline (Mf_util.Fail.to_string f)
    ]}

    Layering (see DESIGN.md):
    - {!Sharing} — valve-sharing schemes (Sec. 4.1);
    - {!Pool} — ILP-materialised DFT configuration space (Sec. 3);
    - {!Codesign} — the two-level PSO flow (Sec. 4.2).

    The substrates live in sibling libraries: [Mf_arch.Chip] (chip model),
    [Mf_testgen] (ILP test-path and cut generation), [Mf_faults] (fault
    simulation), [Mf_sched] (application scheduling), [Mf_pso], [Mf_lp],
    [Mf_ilp] (solvers), [Mf_chips] and [Mf_bioassay] (benchmarks). *)

module Sharing = Sharing
module Pool = Pool
module Codesign = Codesign
module Report = Report
