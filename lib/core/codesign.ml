module Chip = Mf_arch.Chip
module Rng = Mf_util.Rng
module Domain_pool = Mf_util.Domain_pool
module Pso = Mf_pso.Pso
module Scheduler = Mf_sched.Scheduler
module Prep = Mf_sched.Prep
module Vectors = Mf_testgen.Vectors
module Pathgen = Mf_testgen.Pathgen

type params = {
  pool_size : int;
  outer : Pso.params;
  inner : Pso.params;
  seed : int;
  scheduler : Scheduler.options;
  ilp_node_limit : int;
  jobs : int;
  ilp_jobs : int;
      (* domains parallelising each branch-and-bound's relaxation batches
         during pool construction; 1 keeps the search inline.  Bit-identical
         results for any value (see Mf_ilp.Ilp). *)
  sched_cutoff : bool;
      (* abort fitness simulations once they exceed the particle's
         personal-best fitness; result-transparent (see [sharing_fitness]) *)
}

let default_params =
  {
    pool_size = 8;
    outer = { Pso.default_params with particles = 5; iterations = 100 };
    inner = { Pso.default_params with particles = 5; iterations = 12 };
    seed = 42;
    scheduler = Scheduler.default_options;
    ilp_node_limit = 4_000;
    jobs = 1;
    ilp_jobs = 1;
    sched_cutoff = true;
  }

let quick_params =
  {
    default_params with
    pool_size = 4;
    outer = { Pso.default_params with particles = 5; iterations = 8 };
    inner = { Pso.default_params with particles = 5; iterations = 6 };
    ilp_node_limit = 2_000;
  }

type degradation =
  | Heuristic_config
  | Pool_rejects of int
  | Sharing_fallback
  | Budget_exhausted

let degradation_to_string = function
  | Heuristic_config -> "configuration from greedy heuristic (ILP budget exhausted)"
  | Pool_rejects n ->
    Printf.sprintf "%d pool candidate%s rejected by post-repair fault simulation" n
      (if n = 1 then "" else "s")
  | Sharing_fallback -> "no testable sharing scheme found; shipping unshared DFT architecture"
  | Budget_exhausted -> "wall-clock budget exhausted; optimisation cut short"

type result = {
  original : Chip.t;
  augmented : Chip.t;
  shared : Chip.t;
  config : Pathgen.config;
  sharing : Sharing.t;
  suite : Vectors.t;
  exec_original : int option;
  exec_dft_unshared : int option;
  exec_dft_no_pso : int option;
  exec_final : int option;
  n_dft_valves : int;
  n_shared : int;
  n_vectors_dft : int;
  trace : float list;
  evaluations : int;
  runtime : float;
  degradations : degradation list;
}

type checkpoint = {
  path : string;
  every : int;
  resume : bool;
  stop_after : int option;
}

(* A sharing scheme is testable if the configuration's suite still covers
   every fault on the re-wired chip, or can be repaired to (the paper
   regenerates vectors per sharing scheme; {!Mf_testgen.Repair} adds the
   vectors a scheme needs).  [Untestable n] carries the number of faults
   that still escape, so the PSO can climb towards validity. *)
type verdict =
  | Testable of Chip.t * Vectors.t
  | Untestable of int

let testable_suite (entry : Pool.entry) scheme =
  let shared = Sharing.apply entry.Pool.augmented scheme in
  let suite = entry.Pool.suite in
  if Vectors.is_valid shared suite then Testable (shared, suite)
  else begin
    let repaired = Mf_testgen.Repair.run shared suite in
    let report = Vectors.validate shared repaired in
    if Mf_faults.Coverage.complete report then Testable (shared, repaired)
    else
      Untestable
        (report.Mf_faults.Coverage.total_faults - report.Mf_faults.Coverage.detected
        + report.Mf_faults.Coverage.malformed)
  end

(* Any fitness at or above this is an invalid scheme; below it, the fitness
   is the application makespan in seconds. *)
let invalid_threshold = 1e5

(* The fitness memo table, shared across the whole run and consulted from
   worker domains during batch evaluation.  A mutex guards the tables; the
   memoised function is deterministic, so two workers racing on the same
   miss both compute the same value and [replace] keeps the table
   single-valued — the cache affects work, never results.

   [tbl] holds only {e exact} fitness values (it is what checkpoints
   persist and [worst_cached_valid] scans).  Two side tables exist purely
   to save work and never influence a returned exact value: [preps] caches
   the per-configuration {!Prep.t} topology snapshot, and [bounds] records,
   for schemes whose simulation was cut off, the largest bound the true
   fitness is known to exceed. *)
type cache = {
  tbl : ((int list * Sharing.t), float) Hashtbl.t;
  preps : (int list, Prep.t) Hashtbl.t;
  bounds : ((int list * Sharing.t), float) Hashtbl.t;
  lock : Mutex.t;
}

let cache_create () =
  {
    tbl = Hashtbl.create 64;
    preps = Hashtbl.create 8;
    bounds = Hashtbl.create 64;
    lock = Mutex.create ();
  }

let cache_find cache key =
  Mutex.lock cache.lock;
  let v = Hashtbl.find_opt cache.tbl key in
  Mutex.unlock cache.lock;
  v

let cache_store cache key v =
  Mutex.lock cache.lock;
  Hashtbl.replace cache.tbl key v;
  Mutex.unlock cache.lock

let cache_fold cache f init =
  Mutex.lock cache.lock;
  let acc = Hashtbl.fold (fun _ v acc -> f v acc) cache.tbl init in
  Mutex.unlock cache.lock;
  acc

let cache_dump cache =
  Mutex.lock cache.lock;
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) cache.tbl [] in
  Mutex.unlock cache.lock;
  Array.of_list items

let cache_restore cache items = Array.iter (fun (k, v) -> Hashtbl.replace cache.tbl k v) items

let prep_of cache (entry : Pool.entry) =
  let key = entry.Pool.config.Pathgen.added_edges in
  Mutex.lock cache.lock;
  let hit = Hashtbl.find_opt cache.preps key in
  Mutex.unlock cache.lock;
  match hit with
  | Some p -> p
  | None ->
    (* built outside the lock: racing workers build identical values and
       [replace] keeps one *)
    let p = Prep.of_chip entry.Pool.augmented in
    Mutex.lock cache.lock;
    Hashtbl.replace cache.preps key p;
    Mutex.unlock cache.lock;
    p

let bound_find cache key =
  Mutex.lock cache.lock;
  let v = Hashtbl.find_opt cache.bounds key in
  Mutex.unlock cache.lock;
  v

let bound_store cache key b =
  Mutex.lock cache.lock;
  (match Hashtbl.find_opt cache.bounds key with
   | Some b0 when b0 >= b -> ()
   | Some _ | None -> Hashtbl.replace cache.bounds key b);
  Mutex.unlock cache.lock

(* On-disk snapshot of a paused run.  Everything the continuation depends
   on is stored by value: the pool (rebuilding it under chaos or a changed
   budget would diverge), the outer swarm state, the root rng (it is split
   once per particle per iteration inside [outer_batch]), the running best
   (as an index into the pool's entries), the fitness memo (the no-PSO
   baseline scans it) and the evaluation counter.  Plain data only, so
   [Marshal] round-trips it; loadable by binaries built from the same
   sources. *)
let snapshot_magic = "mfdft-codesign-checkpoint-v3"

type snapshot = {
  ck_magic : string;
  ck_seed : int;
  ck_particles : int;
  ck_iterations : int;
  ck_pool : Pool.t;
  ck_pso : Pso.batch_state;
  ck_root_rng : Rng.t;
  ck_best : (int * Sharing.t * float) option;
  ck_cache : ((int list * Sharing.t) * float) array;
  ck_evals : int;
}

let save_snapshot path (snap : snapshot) =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Marshal.to_channel oc snap [];
  close_out oc;
  Sys.rename tmp path

let load_snapshot ~seed ~outer path : (snapshot, Mf_util.Fail.t) Stdlib.result =
  let fail reason = Error (Mf_util.Fail.v Mf_util.Fail.Codesign reason) in
  match open_in_bin path with
  | exception Sys_error msg -> fail (Printf.sprintf "cannot read checkpoint: %s" msg)
  | ic ->
    let snap =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          match (Marshal.from_channel ic : snapshot) with
          | snap -> Ok snap
          | exception (Failure _ | End_of_file) -> Error ())
    in
    (match snap with
     | Error () -> fail (Printf.sprintf "corrupt or truncated checkpoint %s" path)
     | Ok snap ->
       if snap.ck_magic <> snapshot_magic then
         fail (Printf.sprintf "%s is not a codesign checkpoint" path)
       else if
         snap.ck_seed <> seed
         || snap.ck_particles <> outer.Pso.particles
         || snap.ck_iterations <> outer.Pso.iterations
       then
         fail
           (Printf.sprintf
              "checkpoint %s was taken with different codesign parameters (seed %d, %d \
               particles, %d iterations)"
              path snap.ck_seed snap.ck_particles snap.ck_iterations)
       else Ok snap)

(* Fitness shaping: schemes whose test program cannot be completed are
   penalised by how many faults escape; schemes that deadlock the
   application rank between those and valid ones.  Memoised per
   (entry, scheme).

   With [~bound] (the calling particle's personal best) and
   [params.sched_cutoff], the schedule simulation aborts once simulated
   time exceeds the bound, returning a value [>= bound].  This is
   result-transparent for the PSO: a personal best is always >= the global
   best, updates require strictly smaller fitness, and [`Cutoff] proves the
   true fitness exceeds the bound (see [Scheduler.makespan_until]) — so
   every value that ever enters a p_best/g_best/trace is still exact.
   Pruned outcomes are remembered in [cache.bounds] (never in the exact
   memo, and never checkpointed); a prior cutoff also proves the scheme was
   [Testable], letting a re-evaluation with a larger bound skip the fault
   simulation and go straight to the scheduler. *)
let sharing_fitness ?(bound = infinity) cache params app (entry : Pool.entry) scheme =
  let bound = if params.sched_cutoff then bound else infinity in
  let key = (entry.Pool.config.Pathgen.added_edges, scheme) in
  match cache_find cache key with
  | Some fit -> fit
  | None ->
    let known_bound = bound_find cache key in
    (match known_bound with
     | Some b when bound <= b ->
       (* already proven: true fitness > b >= bound — cannot beat the
          particle's personal best, no need to re-simulate *)
       b
     | _ ->
       let verdict =
         if known_bound <> None then `Sched (Sharing.apply entry.Pool.augmented scheme)
         else
           match testable_suite entry scheme with
           | Untestable misses ->
             `Exact ((100. *. invalid_threshold) +. (1000. *. float_of_int misses))
           | Testable (shared, _suite) -> `Sched shared
       in
       (match verdict with
        | `Exact fit ->
          cache_store cache key fit;
          fit
        | `Sched shared ->
          let prep = Prep.for_sharing (prep_of cache entry) shared in
          (match
             Scheduler.makespan_until ~options:params.scheduler ~prep ~cutoff:bound shared app
           with
           | `Makespan makespan ->
             let fit = float_of_int makespan in
             cache_store cache key fit;
             fit
           | `Failed _ ->
             let fit = 10. *. invalid_threshold in
             cache_store cache key fit;
             fit
           | `Cutoff ->
             bound_store cache key bound;
             bound)))

(* Per-valve partner feasibility: original valves whose control line a DFT
   valve can share without breaking testability {e on its own}.  Pair
   interactions remain (the PSO's job), but decoding into these sets puts
   the swarm in a mostly-valid region instead of a ~0% one.  Cached on the
   pool entry: the sets depend only on the chip, so every application
   evaluated against this configuration reuses them. *)
let allowed_partners (entry : Pool.entry) =
  match entry.Pool.partners with
  | Some allowed -> allowed
  | None ->
    let aug = entry.Pool.augmented in
    let n_orig = Chip.n_original_valves aug in
    let dft_ids =
      Array.to_list (Chip.valves aug)
      |> List.filter_map (fun (v : Chip.valve) -> if v.is_dft then Some v.valve_id else None)
    in
    let allowed =
      List.map
        (fun d ->
          let feasible =
            List.init n_orig Fun.id
            |> List.filter (fun o ->
                match testable_suite entry [ (d, o) ] with
                | Testable _ -> true
                | Untestable _ -> false)
          in
          let options = if feasible = [] then List.init n_orig Fun.id else feasible in
          (d, Array.of_list options))
        dft_ids
    in
    entry.Pool.partners <- Some allowed;
    allowed

let decode_constrained allowed position =
  List.mapi
    (fun i (d, options) ->
      let x = if i < Array.length position then position.(i) else 0. in
      let n = Array.length options in
      let idx = min (n - 1) (max 0 (int_of_float (x *. float_of_int n))) in
      (d, options.(idx)))
    allowed

let random_constrained rng allowed =
  List.map (fun (d, options) -> (d, options.(Rng.int rng (Array.length options)))) allowed

let run ?(params = default_params) ?pool ?domains ?budget ?checkpoint ?progress ?stop chip
    app =
  let started = Unix.gettimeofday () in
  let rng = Rng.create ~seed:params.seed in
  let evaluations = Atomic.make 0 in
  let go dpool =
  let resume_snap =
    match checkpoint with
    | Some ck when ck.resume ->
      if not (Sys.file_exists ck.path) then
        Error
          (Mf_util.Fail.v Mf_util.Fail.Codesign
             (Printf.sprintf "cannot resume: checkpoint %s does not exist" ck.path))
      else (
        match load_snapshot ~seed:params.seed ~outer:params.outer ck.path with
        | Ok snap -> Ok (Some snap)
        | Error f -> Error f)
    | _ -> Ok None
  in
  match resume_snap with
  | Error f -> Error f
  | Ok resume_snap ->
  let pool =
    match resume_snap with
    | Some snap ->
      (* the run being resumed owns the rng stream; the root rng is
         restored from the snapshot below, so this split is irrelevant —
         it only keeps the code path uniform *)
      ignore (Rng.split rng);
      Ok snap.ck_pool
    | None ->
      (match pool with
       | Some pool ->
         (* consume the stream the builder would have used, so results with
            a pre-built pool match results without one *)
         ignore (Rng.split rng);
         Ok pool
       | None ->
         if params.ilp_jobs > 1 then
           (* fine-grained mode: parallelise inside each branch-and-bound
              instead of across attempts (the two must not nest) *)
           Domain_pool.with_pool ~jobs:params.ilp_jobs @@ fun ilp_pool ->
           Pool.build ~size:params.pool_size ~node_limit:params.ilp_node_limit ~ilp_pool
             ?budget ~rng:(Rng.split rng) chip
         else
           Pool.build ~size:params.pool_size ~node_limit:params.ilp_node_limit ~domains:dpool
             ?budget ~rng:(Rng.split rng) chip)
  in
  match pool with
  | Error f -> Error f
  | Ok pool ->
    let cache = cache_create () in
    let fitness_of ?bound entry scheme =
      Atomic.incr evaluations;
      Mf_util.Prof.add_count "codesign.fitness" 1;
      Mf_util.Prof.time "codesign.fitness" (fun () ->
          sharing_fitness ?bound cache params app entry scheme)
    in
    (* inner PSO: best sharing scheme for a fixed configuration, searching
       inside the per-valve feasible partner sets.  Self-contained once the
       rng is split off, so one whole inner run is the unit of parallelism.
       Bounded: each evaluation may stop the schedule simulation at the
       particle's own personal best (never a cross-particle or outer-level
       incumbent, which would make results depend on evaluation order). *)
    let best_sharing entry allowed inner_rng =
      let dim = List.length allowed in
      if dim = 0 then ([], fitness_of entry [])
      else begin
        let outcome =
          Pso.run_bounded ~params:params.inner ?budget ~rng:inner_rng ~dim
            ~fitness:(fun ~bound position ->
              fitness_of ~bound entry (decode_constrained allowed position))
            ()
        in
        (decode_constrained allowed outcome.Pso.best_position, outcome.Pso.best_fitness)
      end
    in
    (* outer PSO over edge preferences, batch-synchronous: decoding, the
       lazily cached partner sets and every rng split stay on this domain in
       particle order; only the (pure) inner runs fan out, and the running
       best folds back in particle order — bit-identical for any job count. *)
    let outer_dim = max 1 (Array.length (Pool.free_edges pool)) in
    let outer_rng = Rng.split rng in
    let best_entry = ref None in
    let outer_batch positions =
      let n = Array.length positions in
      let prepared = Array.make n None in
      for i = 0 to n - 1 do
        let entry = Pool.decode pool positions.(i) in
        let allowed = allowed_partners entry in
        prepared.(i) <- Some (entry, allowed, Rng.split rng)
      done;
      let evaluated =
        (* particles whose task starts after the deadline degrade to an
           empty scheme at infinite fitness: never the best, never invalid
           input downstream *)
        Domain_pool.map_bounded dpool ?budget
          ~fallback:(function
            | Some (entry, _, _) -> (entry, [], infinity)
            | None -> assert false)
          (function
            | Some (entry, allowed, inner_rng) ->
              let scheme, fit = best_sharing entry allowed inner_rng in
              (entry, scheme, fit)
            | None -> assert false)
          prepared
      in
      Array.iter
        (fun (entry, scheme, fit) ->
          match !best_entry with
          | Some (_, _, best) when best <= fit -> ()
          | Some _ | None -> best_entry := Some (entry, scheme, fit))
        evaluated;
      Array.map (fun (_, _, fit) -> fit) evaluated
    in
    (* restore the interrupted run's state: memo cache (the no-PSO baseline
       scans it), evaluation counter, running best, and the root rng stream
       as it stood after the snapshot iteration's splits *)
    (match resume_snap with
     | None -> ()
     | Some snap ->
       cache_restore cache snap.ck_cache;
       Atomic.set evaluations snap.ck_evals;
       (match snap.ck_best with
        | Some (idx, scheme, fit) when idx >= 0 && idx < Pool.size pool ->
          best_entry := Some ((Pool.entries pool).(idx), scheme, fit)
        | Some _ | None -> ());
       Rng.blit ~src:snap.ck_root_rng ~dst:rng);
    let snapshot_of pso_state =
      {
        ck_magic = snapshot_magic;
        ck_seed = params.seed;
        ck_particles = params.outer.Pso.particles;
        ck_iterations = params.outer.Pso.iterations;
        ck_pool = pool;
        ck_pso = pso_state;
        ck_root_rng = Rng.copy rng;
        ck_best =
          (match !best_entry with
           | None -> None
           | Some (entry, scheme, fit) ->
             let idx = ref (-1) in
             Array.iteri (fun i e -> if e == entry then idx := i) (Pool.entries pool);
             Some (!idx, scheme, fit));
        ck_cache = cache_dump cache;
        ck_evals = Atomic.get evaluations;
      }
    in
    let exception Stop_after_checkpoint of int in
    let hook =
      match (checkpoint, progress, stop) with
      | None, None, None -> None
      | _ ->
        Some
          (fun it state ->
            (match progress with Some f -> f it | None -> ());
            let stop_here =
              (match stop with Some f -> f () | None -> false)
              || (match checkpoint with Some ck -> ck.stop_after = Some it | None -> false)
            in
            (match checkpoint with
             | None -> ()
             | Some ck ->
               let due =
                 stop_here
                 || (ck.every > 0 && it mod ck.every = 0)
                 || it = params.outer.Pso.iterations
               in
               if due then save_snapshot ck.path (snapshot_of state));
            if stop_here then raise (Stop_after_checkpoint it))
    in
    let outcome =
      match
        Mf_util.Prof.time "codesign.pso" (fun () ->
            Pso.run_batch ~params:params.outer ?budget ?checkpoint:hook
              ?resume:(Option.map (fun s -> s.ck_pso) resume_snap) ~rng:outer_rng
              ~dim:outer_dim ~batch_fitness:outer_batch ())
      with
      | outcome -> Ok outcome
      | exception Stop_after_checkpoint it ->
        let msg =
          match checkpoint with
          | Some ck ->
            Printf.sprintf
              "stopped after outer iteration %d; checkpoint saved to %s (rerun with \
               --resume to continue)"
              it ck.path
          | None -> Printf.sprintf "stopped after outer iteration %d (no checkpoint)" it
        in
        Error
          (Mf_util.Fail.v Mf_util.Fail.Codesign
             ?incumbent:
               (match !best_entry with
                | Some (_, _, fit) when fit < invalid_threshold ->
                  Some (Printf.sprintf "makespan %d" (int_of_float fit))
                | _ -> None)
             msg)
    in
    match outcome with
    | Error f -> Error f
    | Ok outcome ->
    (match !best_entry with
     | None ->
       Error (Mf_util.Fail.v Mf_util.Fail.Codesign "two-level PSO produced no evaluation")
     | Some (entry, scheme, best_fit) ->
       let augmented = entry.Pool.augmented in
       let scheme, shared, suite, sharing_fallback =
         match testable_suite entry scheme with
         | Testable (shared, suite) -> (scheme, shared, suite, false)
         | Untestable _ ->
           (* degrade to the unshared DFT architecture: the empty scheme is
              testable by pool construction, so the shipped suite is always
              valid on the shipped chip *)
           (match testable_suite entry [] with
            | Testable (shared, suite) -> ([], shared, suite, true)
            | Untestable _ -> ([], augmented, entry.Pool.suite, true))
       in
       (* Table 1 baseline: the first valid random sharing, no PSO — random
          search over the same feasible partner sets the swarm uses *)
       let no_pso_rng = Rng.create ~seed:(params.seed + 1) in
       let allowed = allowed_partners entry in
       let rec first_valid attempts =
         if attempts = 0 then None
         else begin
           let s = random_constrained no_pso_rng allowed in
           let fit = sharing_fitness cache params app entry s in
           if fit < invalid_threshold then Some (int_of_float fit)
           else first_valid (attempts - 1)
         end
       in
       (* when random search misses, fall back to the worst valid scheme the
          search ever evaluated: still a scheme found without optimisation
          pressure *)
       let worst_cached_valid () =
         cache_fold cache
           (fun fit acc ->
             if fit < invalid_threshold then
               match acc with Some w when w >= fit -> acc | Some _ | None -> Some fit
             else acc)
           None
         |> Option.map int_of_float
       in
       let exec_dft_no_pso =
         (* past the deadline, don't burn 100 more schedule evaluations on a
            baseline: settle for what the cache already holds *)
         if Mf_util.Budget.over budget then worst_cached_valid ()
         else match first_valid 100 with Some t -> Some t | None -> worst_cached_valid ()
       in
       (* Fig. 7 baseline: DFT resources with independent control lines *)
       let exec_dft_unshared =
         Scheduler.makespan ~options:params.scheduler ~prep:(prep_of cache entry) augmented app
       in
       let exec_original = Scheduler.makespan ~options:params.scheduler chip app in
       let exec_final =
         if best_fit < invalid_threshold then Some (int_of_float best_fit) else None
       in
       let degradations =
         List.filter_map Fun.id
           [
             (match Pool.rejects pool with
              | [] -> None
              | rs -> Some (Pool_rejects (List.length rs)));
             (if entry.Pool.config.Pathgen.degraded then Some Heuristic_config else None);
             (if sharing_fallback then Some Sharing_fallback else None);
             (if Mf_util.Budget.over budget then Some Budget_exhausted else None);
           ]
       in
       Ok
         {
           original = chip;
           augmented;
           shared;
           config = entry.Pool.config;
           sharing = scheme;
           suite;
           exec_original;
           exec_dft_unshared;
           exec_dft_no_pso;
           exec_final;
           n_dft_valves = List.length entry.Pool.config.Pathgen.added_edges;
           n_shared = Sharing.n_shared scheme;
           n_vectors_dft = Vectors.count suite;
           trace = outcome.Pso.trace;
           evaluations = Atomic.get evaluations;
           runtime = Unix.gettimeofday () -. started;
           degradations;
         })
  in
  match domains with
  | Some dpool -> go dpool
  | None -> Domain_pool.with_pool ~jobs:(max 1 params.jobs) go

(* The claims a finished run makes about itself, in the form the
   independent checker re-proves.  Coverage is re-measured here rather than
   carried through [run] so the claim reflects the *returned* chip/suite
   pair even after degradations. *)
let certificate (r : result) =
  let report = Vectors.validate r.shared r.suite in
  Mf_verify.Cert.make
    ~chip_name:(Chip.name r.shared)
    ~suite:
      {
        Mf_verify.Cert.source_port = r.suite.Vectors.source_port;
        meter_port = r.suite.Vectors.meter_port;
        path_edges = r.suite.Vectors.path_edges;
        cut_valves = r.suite.Vectors.cut_valves;
      }
    ~claimed_vectors:(Vectors.count r.suite)
    ~claimed_coverage:
      (report.Mf_faults.Coverage.detected, report.Mf_faults.Coverage.total_faults)
    ()

let verify r = Mf_verify.Verify.certificate r.shared (certificate r)
