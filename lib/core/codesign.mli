(** The paper's end-to-end flow (Sec. 4.2): two-level particle swarm
    optimization over DFT configurations (outer) and valve-sharing schemes
    (inner), scored by the application execution time on the augmented
    chip.

    Per outer particle evaluation: decode the particle's edge-preference
    position into a feasible DFT configuration (ILP-repaired, via
    {!Pool}), run a sub-PSO over sharing assignments, validate each sharing
    scheme against the full test-vector suite by fault simulation
    (invalid → ∞), schedule the application on the shared chip, and return
    the best execution time found.  The outer trace is the Fig. 9
    convergence curve. *)

type params = {
  pool_size : int;  (** DFT configurations materialised by the ILP *)
  outer : Mf_pso.Pso.params;
  inner : Mf_pso.Pso.params;
  seed : int;
  scheduler : Mf_sched.Scheduler.options;
  ilp_node_limit : int;
  jobs : int;
      (** domains evaluating outer particles (and pool candidates)
          concurrently; results are bit-identical for any value ≥ 1 because
          every rng draw stays on the coordinating domain (default 1) *)
  ilp_jobs : int;
      (** domains parallelising {e inside} each branch-and-bound during
          pool construction (the batched relaxation solves of
          {!Mf_ilp.Ilp.solve}).  When > 1 the pool attempts run
          sequentially, each using these domains — the fine-grained
          counterpart to [jobs]' coarse per-attempt fan-out; the two do not
          nest.  Bit-identical results for any value ≥ 1 (default 1) *)
  sched_cutoff : bool;
      (** abort each fitness schedule simulation as soon as its elapsed
          time exceeds the inner particle's personal-best fitness
          ({!Mf_sched.Scheduler.makespan_until}).  Result-transparent: PSO
          bests only move on strictly better (hence fully simulated)
          values, so the final result is identical with the flag on or off
          — only the work differs (default true) *)
}

val default_params : params
(** Paper-scale: 5 outer and 5 inner particles, 100 outer iterations
    (Fig. 9), 12 inner iterations per outer evaluation. *)

val quick_params : params
(** Reduced budget for CI and the default bench run: 8 outer iterations,
    6 inner; same swarm sizes. *)

type degradation =
  | Heuristic_config
      (** the chosen DFT configuration came from the greedy heuristic, not
          the ILP (node or wall-clock budget exhausted) *)
  | Pool_rejects of int
      (** this many pool candidates were rejected by post-repair fault
          simulation *)
  | Sharing_fallback
      (** no testable sharing scheme was found; the result ships the
          unshared DFT architecture with its (valid) pre-sharing suite *)
  | Budget_exhausted  (** the wall-clock budget ran out before completion *)

val degradation_to_string : degradation -> string

type result = {
  original : Mf_arch.Chip.t;
  augmented : Mf_arch.Chip.t;  (** best configuration applied *)
  shared : Mf_arch.Chip.t;  (** with the best sharing scheme's control rewiring *)
  config : Mf_testgen.Pathgen.config;
  sharing : Sharing.t;
  suite : Mf_testgen.Vectors.t;
  exec_original : int option;  (** makespan on the unmodified chip *)
  exec_dft_unshared : int option;  (** DFT resources, independent control (Fig. 7) *)
  exec_dft_no_pso : int option;  (** first valid random sharing (Table 1) *)
  exec_final : int option;  (** after two-level PSO (Table 1) *)
  n_dft_valves : int;
  n_shared : int;
  n_vectors_dft : int;  (** single-source single-meter vector count (Fig. 8) *)
  trace : float list;
      (** outer global-best per iteration (Fig. 9).  Values below
          {!invalid_threshold} are application execution times in seconds;
          values at or above it are shaped penalties of invalid schemes
          (render as "no valid scheme yet"). *)
  evaluations : int;  (** schedule/validation calls *)
  runtime : float;  (** wall-clock seconds of the whole flow *)
  degradations : degradation list;
      (** every way this result is weaker than a clean full run; empty for
          an undisturbed run.  The suite in [suite] is valid on [shared]
          regardless (graceful degradation, never an invalid artifact). *)
}

val invalid_threshold : float
(** Fitness values at or above this constant denote sharing schemes that
    failed validation (graded by how many faults escape) or deadlocked the
    application; values below it are plain makespans. *)

type checkpoint = {
  path : string;  (** snapshot file, written atomically (tmp + rename) *)
  every : int;  (** save after every [every] outer iterations; [0] = only on stop/finish *)
  resume : bool;
      (** load [path] first and continue from it; a missing, truncated or
          mismatched file is a typed error, never a silent fresh start *)
  stop_after : int option;
      (** save and abort (with a typed error naming the checkpoint) after
          this many completed outer iterations — bounded sessions, and the
          kill half of the kill/resume differential test *)
}

val run :
  ?params:params ->
  ?pool:Pool.t ->
  ?domains:Mf_util.Domain_pool.t ->
  ?budget:Mf_util.Budget.t ->
  ?checkpoint:checkpoint ->
  ?progress:(int -> unit) ->
  ?stop:(unit -> bool) ->
  Mf_arch.Chip.t ->
  Mf_bioassay.Seqgraph.t ->
  (result, Mf_util.Fail.t) Stdlib.result
(** [run chip app] executes the whole flow.  [pool] short-circuits the ILP
    configuration-pool construction — pools depend only on the chip, so
    callers evaluating several applications on one chip (Table 1) build the
    pool once.

    [domains] supplies an external worker pool for every fan-out (pool
    construction and outer-PSO batches) instead of creating one per run;
    [params.jobs] is then ignored.  The serve daemon uses this to share one
    pool across its whole job queue — domain spin-up is paid once, not per
    submission.  The usual {!Mf_util.Domain_pool} discipline applies: call
    [run] from the domain that created the pool, one run at a time.
    Results are identical with an external or internal pool of any size.

    [progress] is called after every completed outer iteration with the
    iteration number (checkpoint-hook cadence, on the coordinating domain).
    [stop] is polled at the same points; when it returns [true] the run
    saves a snapshot to the [checkpoint] path (if one is configured) and
    aborts with a typed failure naming it — the graceful-shutdown
    counterpart to [checkpoint.stop_after].

    Results are deterministic in [params.seed] and independent
    of [params.jobs]: the outer swarm runs in batch-synchronous mode, all
    rng splits and position updates happen on the coordinating domain, and
    only the pure inner-PSO evaluations fan out to worker domains (the
    sharing-fitness memo table is mutex-guarded and memoises a
    deterministic function, so it changes work, never values).

    [budget] bounds wall-clock time across every stage (pool ILPs, inner
    and outer PSO, baselines); when it expires the best feasible result so
    far is returned with [Budget_exhausted] recorded — the suite is still
    valid for the returned chip.  [checkpoint] enables snapshotting after
    outer iterations and resuming: an interrupted run resumed from its
    snapshot (same binary, params and seed, no budget/chaos interference)
    finishes bit-identical to the uninterrupted run.  Hard failures
    ([Error]) carry the failing stage, budget consumed and best incumbent
    ({!Mf_util.Fail.t}). *)

val certificate : result -> Mf_verify.Cert.t
(** The run's claims (suite, vector count, re-measured stuck-at coverage on
    the shared chip) packaged for the independent checker — what
    [dft_tool codesign --cert] writes next to the [.chip] file. *)

val verify : result -> Mf_util.Diag.t list
(** Post-codesign verification: lint the shared chip, re-prove
    {!certificate} with [Mf_verify] (graph reachability + independent fault
    simulation, no solver involvement), and scan for control-sharing
    conflicts.  Run automatically for the report's "Verification" section;
    degraded results must come back clean too. *)
