(** Pool of alternative DFT configurations.

    Problem (5)–(6) usually has many optima and near-optima; the outer PSO
    of Sec. 4.2 explores them.  Re-solving the ILP inside every particle
    update would repeat identical work, so the pool materialises a diverse
    set of configurations up front by re-solving with randomly perturbed
    edge weights; the outer particle position (a preference weight per free
    grid edge) then selects the pool member it agrees with most.  This is
    the repair-based decoding matching step (1) of the paper's PSO loop:
    every decoded position is a feasible single-source single-meter
    architecture produced by the ILP. *)

type entry = {
  config : Mf_testgen.Pathgen.config;
  augmented : Mf_arch.Chip.t;
  suite : Mf_testgen.Vectors.t;  (** paths + cuts, validated pre-sharing *)
  mutable partners : (int * int array) list option;
      (** per-DFT-valve feasible sharing partners, computed lazily by
          [Codesign] and cached here so several applications on the same
          chip share the work *)
}

type t

val build :
  ?size:int ->
  ?node_limit:int ->
  ?domains:Mf_util.Domain_pool.t ->
  rng:Mf_util.Rng.t ->
  Mf_arch.Chip.t ->
  (t, string) result
(** [build ~rng chip] solves the path ILP [size] times (default 8) with
    weights drawn from [\[1, 2)], deduplicates by added-edge set, drops any
    configuration whose vector suite fails pre-sharing fault simulation,
    and returns the pool (error if every attempt fails).  [domains] fans
    the per-attempt ILP solves and fault simulations out across a domain
    pool; all weight perturbations are drawn up front on the caller, so the
    resulting pool is identical whatever the parallelism. *)

val entries : t -> entry array
val size : t -> int

val free_edges : t -> int array
(** Grid edges unoccupied in the original chip — the outer PSO dimensions. *)

val decode : t -> float array -> entry
(** [decode pool position] scores each entry by the summed preference of
    its added edges (position is indexed like {!free_edges}) and returns
    the best-scoring entry; ties break toward fewer added edges. *)
