(** Pool of alternative DFT configurations.

    Problem (5)–(6) usually has many optima and near-optima; the outer PSO
    of Sec. 4.2 explores them.  Re-solving the ILP inside every particle
    update would repeat identical work, so the pool materialises a diverse
    set of configurations up front by re-solving with randomly perturbed
    edge weights; the outer particle position (a preference weight per free
    grid edge) then selects the pool member it agrees with most.  This is
    the repair-based decoding matching step (1) of the paper's PSO loop:
    every decoded position is a feasible single-source single-meter
    architecture produced by the ILP. *)

type entry = {
  config : Mf_testgen.Pathgen.config;
  augmented : Mf_arch.Chip.t;
  suite : Mf_testgen.Vectors.t;  (** paths + cuts, validated pre-sharing *)
  mutable partners : (int * int array) list option;
      (** per-DFT-valve feasible sharing partners, computed lazily by
          [Codesign] and cached here so several applications on the same
          chip share the work *)
}

type reject = {
  rejected_config : Mf_testgen.Pathgen.config;
  escaped : int;  (** faults still escaping simulation after repair *)
  malformed : int;  (** vectors whose fault-free reading is wrong *)
}
(** A candidate configuration that fault simulation rejected even after
    {!Mf_testgen.Repair.run} — surfaced instead of silently dropped so
    callers and reports can tell how much of the pool was lost. *)

type t

val build :
  ?size:int ->
  ?node_limit:int ->
  ?domains:Mf_util.Domain_pool.t ->
  ?ilp_pool:Mf_util.Domain_pool.t ->
  ?budget:Mf_util.Budget.t ->
  rng:Mf_util.Rng.t ->
  Mf_arch.Chip.t ->
  (t, Mf_util.Fail.t) result
(** [build ~rng chip] solves the path ILP [size] times (default 8) with
    weights drawn from [\[1, 2)], deduplicates by added-edge set, records
    any configuration whose vector suite fails post-repair fault simulation
    under {!rejects}, and returns the pool.  [domains] fans the per-attempt
    ILP solves and fault simulations out across a domain pool; all weight
    perturbations are drawn up front on the caller, so the resulting pool
    is identical whatever the parallelism.  [ilp_pool] instead parallelises
    {e inside} each attempt's branch-and-bound (the batched relaxation
    solves of {!Mf_ilp.Ilp.solve}); it runs the attempts sequentially and
    takes precedence over [domains] — pass one or the other, depending on
    whether the workload is many cheap solves (coarse) or few expensive
    ones (fine).  Either way the pool is bit-identical to the serial build.
    [budget] bounds wall-clock
    time: attempts starting after the deadline are skipped and each ILP
    solve degrades to the greedy heuristic when time runs out.

    Degradation ladder: if every ILP attempt fails, is skipped, or is
    rejected, one last candidate is built from the pure greedy cover
    ([node_limit:0]); only when that too is rejected does [build] return a
    typed [Error] — so any chip the heuristic can cover always yields a
    non-empty pool. *)

val entries : t -> entry array
val size : t -> int

val rejects : t -> reject list
(** Candidates rejected by post-repair fault simulation, in attempt order. *)

val free_edges : t -> int array
(** Grid edges unoccupied in the original chip — the outer PSO dimensions. *)

val attempt_objectives : t -> float option array
(** Per ILP attempt (in attempt order, before deduplication), the achieved
    objective (5) — the total weight of the configuration's added edges
    under that attempt's weights — or [None] when the attempt failed or was
    skipped.  Invariant across LP engines and job counts; the perf-regression
    harness pins these against its committed baseline. *)

val decode : t -> float array -> entry
(** [decode pool position] scores each entry by the summed preference of
    its added edges (position is indexed like {!free_edges}) and returns
    the best-scoring entry; ties break toward fewer added edges. *)
