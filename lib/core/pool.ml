module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Bitset = Mf_util.Bitset
module Rng = Mf_util.Rng
module Pathgen = Mf_testgen.Pathgen
module Cutgen = Mf_testgen.Cutgen
module Vectors = Mf_testgen.Vectors

type entry = {
  config : Pathgen.config;
  augmented : Chip.t;
  suite : Vectors.t;
  mutable partners : (int * int array) list option;
}

type reject = { rejected_config : Pathgen.config; escaped : int; malformed : int }

type t = {
  entries : entry array;
  free_edges : int array;
  rejects : reject list;
  attempt_objectives : float option array;
}

let entries t = t.entries
let size t = Array.length t.entries

let free_edges t = t.free_edges
let rejects t = t.rejects
let attempt_objectives t = t.attempt_objectives

let materialise chip (config : Pathgen.config) =
  Mf_util.Prof.time "pool.materialise" @@ fun () ->
  let augmented = Pathgen.apply chip config in
  let cuts = Cutgen.generate augmented ~source:config.src_port ~meter:config.dst_port in
  let suite = Vectors.of_config config cuts in
  let suite =
    if Vectors.is_valid augmented suite then suite
    else Mf_testgen.Repair.run augmented suite
  in
  let report = Vectors.validate augmented suite in
  if Mf_faults.Coverage.complete report then Ok { config; augmented; suite; partners = None }
  else
    Error
      {
        rejected_config = config;
        escaped = report.Mf_faults.Coverage.total_faults - report.Mf_faults.Coverage.detected;
        malformed = report.Mf_faults.Coverage.malformed;
      }

let build ?(size = 8) ?(node_limit = 20_000) ?domains ?ilp_pool ?budget ~rng chip =
  Mf_util.Prof.time "pool.build" @@ fun () ->
  let n_edges = Grid.n_edges (Chip.grid chip) in
  let channels = Chip.channel_edges chip in
  let free =
    Array.of_list
      (List.filter (fun e -> not (Bitset.mem channels e)) (List.init n_edges Fun.id))
  in
  (* all rng draws happen here, in attempt order, so the stream matches the
     serial builder whatever the parallelism below *)
  let weightss = Array.make (max 0 size) (fun _ -> 1. (* the unperturbed optimum first *)) in
  for attempt = 1 to size - 1 do
    let noise = Array.init n_edges (fun _ -> 1. +. Rng.uniform rng) in
    weightss.(attempt) <- fun e -> noise.(e)
  done;
  (* solving the ILP and fault-simulating the candidate suite are pure in
     the weights, so the attempts fan out; duplicate-key candidates cost a
     redundant materialisation but the deduplicated result is identical *)
  let solve weights =
    match Pathgen.generate ~weights ~node_limit ?budget ?pool:ilp_pool chip with
    | Error _ -> None
    | Ok config ->
      let key = String.concat "," (List.map string_of_int config.added_edges) in
      (* the attempt's achieved objective (5): total weight of added edges —
         the invariant the perf-regression harness pins across LP engines *)
      let objective =
        List.fold_left (fun acc e -> acc +. weights e) 0. config.added_edges
      in
      Some (key, objective, materialise chip config)
  in
  (* two orthogonal parallelism axes, used one at a time: [domains] fans the
     attempts out (coarse-grained), [ilp_pool] parallelises inside each
     branch-and-bound (fine-grained).  When an [ilp_pool] is given the
     attempts run sequentially here — its domains must not be re-entered —
     and each attempt's search uses them for its relaxation batches. *)
  let candidates =
    match (domains, ilp_pool) with
    | Some dpool, None ->
      Mf_util.Domain_pool.map_bounded dpool ?budget ~fallback:(fun _ -> None) solve weightss
    | _ ->
      Array.map
        (fun w -> if Mf_util.Budget.over budget then None else solve w)
        weightss
  in
  let attempt_objectives = Array.map (Option.map (fun (_, o, _) -> o)) candidates in
  let seen = Hashtbl.create 8 in
  let pool = ref [] in
  let rejected = ref [] in
  let consider = function
    | None -> ()
    | Some (key, _objective, outcome) ->
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        match outcome with
        | Ok entry -> pool := entry :: !pool
        | Error reject -> rejected := reject :: !rejected
      end
  in
  Array.iter consider candidates;
  (match List.rev !pool with
   | [] ->
     (* degradation ladder, last rung before giving up: the deterministic
        greedy cover with no ILP at all — cheap enough to run even when the
        budget is already spent *)
     (match Pathgen.generate ~node_limit:0 chip with
      | Ok config ->
        consider
          (Some
             ( String.concat "," (List.map string_of_int config.added_edges),
               float_of_int (List.length config.added_edges),
               materialise chip config ))
      | Error _ -> ())
   | _ :: _ -> ());
  match List.rev !pool with
  | [] ->
    let n_rejected = List.length !rejected in
    let reason =
      if n_rejected = 0 then "no DFT configuration found"
      else
        Printf.sprintf
          "no valid DFT configuration found (%d candidate%s rejected: repair left faults \
           escaping simulation)"
          n_rejected
          (if n_rejected = 1 then "" else "s")
    in
    Error (Mf_util.Fail.v Mf_util.Fail.Pool reason)
  | entries ->
    Ok
      {
        entries = Array.of_list entries;
        free_edges = free;
        rejects = List.rev !rejected;
        attempt_objectives;
      }

let decode t position =
  let pref = Hashtbl.create 32 in
  Array.iteri
    (fun i e ->
      let x = if i < Array.length position then position.(i) else 0.5 in
      Hashtbl.replace pref e x)
    t.free_edges;
  let score entry =
    let added = entry.config.Pathgen.added_edges in
    let total =
      List.fold_left
        (fun acc e -> acc +. Option.value ~default:0.5 (Hashtbl.find_opt pref e))
        0. added
    in
    (* average preference of the edges this configuration would add, with a
       mild penalty on configuration size *)
    let n = float_of_int (max 1 (List.length added)) in
    (total /. n) -. (0.01 *. n)
  in
  let best = ref t.entries.(0) in
  let best_score = ref (score t.entries.(0)) in
  Array.iter
    (fun entry ->
      let s = score entry in
      if s > !best_score then begin
        best_score := s;
        best := entry
      end)
    t.entries;
  !best
