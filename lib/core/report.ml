module Chip = Mf_arch.Chip
module Vectors = Mf_testgen.Vectors
module Control = Mf_control.Control

let opt_time = function Some t -> Printf.sprintf "%d s" t | None -> "n/a"

let markdown ?(title = "DFT codesign report") (r : Codesign.result) =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "# %s\n\n" title;
  out "Chip: **%s** — %d devices, %d ports, %d original valves.\n\n" (Chip.name r.original)
    (Array.length (Chip.devices r.original))
    (Array.length (Chip.ports r.original))
    (Chip.n_original_valves r.original);
  out "## Architecture\n\n";
  out "Original:\n\n```\n%s```\n\n" (Chip.render r.original);
  out "Augmented (`o` marks the %d DFT valves):\n\n```\n%s```\n\n" r.n_dft_valves
    (Chip.render r.augmented);
  out "## Test program (single source, single meter)\n\n";
  let ports = Chip.ports r.original in
  out "- pressure source: port **%s**, meter: port **%s** (farthest pair)\n"
    ports.(r.suite.Vectors.source_port).Chip.port_name
    ports.(r.suite.Vectors.meter_port).Chip.port_name;
  out "- %d test paths (stuck-at-0), %d test cuts (stuck-at-1): **%d vectors**\n\n"
    (List.length r.suite.Vectors.path_edges)
    (List.length r.suite.Vectors.cut_valves)
    r.n_vectors_dft;
  out "## Valve sharing\n\n";
  if r.sharing = [] then out "No DFT valves required sharing.\n\n"
  else begin
    out "All %d DFT valves borrow existing control lines — no new control ports:\n\n"
      r.n_shared;
    out "| DFT valve | shares the line of |\n|---|---|\n";
    List.iter
      (fun (d, o) ->
        let ve (v : Chip.valve) = v.edge in
        let grid = Chip.grid r.augmented in
        out "| v%d (%s) | v%d (%s) |\n" d
          (Format.asprintf "%a" (Mf_grid.Grid.pp_edge grid) (ve (Chip.valves r.augmented).(d)))
          o
          (Format.asprintf "%a" (Mf_grid.Grid.pp_edge grid) (ve (Chip.valves r.augmented).(o))))
      r.sharing;
    out "\n"
  end;
  out "Control lines: %d on the original chip, %d with independent DFT control, %d shared.\n\n"
    (Chip.n_controls r.original)
    (Chip.n_controls r.augmented)
    (Chip.n_controls r.shared);
  let layout = Control.synthesize r.shared in
  out "Control layer (shared): %d ports, total channel length %d, worst actuation skew %.1f%s.\n\n"
    (Control.n_ports layout) (Control.total_length layout) (Control.max_skew layout)
    (if layout.Control.unrouted = [] then ""
     else
       Printf.sprintf " — **%d lines not planar-routable** (pick another scheme)"
         (List.length layout.Control.unrouted));
  out "## Application execution time\n\n";
  out "| configuration | makespan |\n|---|---|\n";
  out "| original chip | %s |\n" (opt_time r.exec_original);
  out "| DFT, independent control | %s |\n" (opt_time r.exec_dft_unshared);
  out "| DFT + sharing, first valid scheme | %s |\n" (opt_time r.exec_dft_no_pso);
  out "| DFT + sharing, after two-level PSO | %s |\n\n" (opt_time r.exec_final);
  out "## Optimization\n\n";
  out "- %d fitness evaluations, %.1f s wall clock\n" r.evaluations r.runtime;
  let s = r.config.Mf_testgen.Pathgen.solver in
  out
    "- LP core (final configuration): %d B&B nodes in %d batches, %d primal + %d dual \
     pivots, %d/%d relaxations warm-started (%d cold fallbacks), %d cache hits\n"
    s.Mf_ilp.Ilp.rs_nodes s.Mf_ilp.Ilp.rs_batches s.Mf_ilp.Ilp.rs_primal_pivots
    s.Mf_ilp.Ilp.rs_dual_pivots s.Mf_ilp.Ilp.rs_warm_taken s.Mf_ilp.Ilp.rs_warm_eligible
    s.Mf_ilp.Ilp.rs_fallbacks s.Mf_ilp.Ilp.rs_cache_hits;
  out "- presolve: %d variables fixed, %d tightenings; %d root cover cuts\n"
    s.Mf_ilp.Ilp.rs_presolve_fixed s.Mf_ilp.Ilp.rs_presolve_tightened
    s.Mf_ilp.Ilp.rs_cover_cuts;
  let valid = List.filter (fun v -> v < Codesign.invalid_threshold) r.trace in
  (match valid with
   | [] -> out "- the swarm never found a valid sharing scheme\n"
   | v0 :: _ ->
     let final = List.nth valid (List.length valid - 1) in
     out "- global best improved from %.0f s to %.0f s over %d iterations\n" v0 final
       (List.length r.trace));
  out "\n## Resilience\n\n";
  (match r.degradations with
   | [] -> out "Clean run: no degradations.\n"
   | ds ->
     out "This result is degraded (still valid, but weaker than a clean full run):\n\n";
     List.iter (fun d -> out "- %s\n" (Codesign.degradation_to_string d)) ds);
  out "\n## Verification\n\n";
  let cert = Codesign.certificate r in
  out
    "Independent re-proof of the result (`Mf_verify`: chip lint, certificate check by graph \
     reachability + standalone fault simulation, control-sharing conflict scan — no \
     ILP/LP/PSO involvement). Claims checked: %d vectors, stuck-at coverage %d/%d.\n\n"
    cert.Mf_verify.Cert.claimed_vectors cert.Mf_verify.Cert.claimed_detected
    cert.Mf_verify.Cert.claimed_total;
  (match Mf_verify.Verify.certificate r.shared cert with
   | [] -> out "Certificate holds: no findings.\n"
   | diags ->
     let n_err, n_warn = Mf_util.Diag.count diags in
     out "**%d error(s), %d warning(s):**\n\n" n_err n_warn;
     List.iter (fun d -> out "- `%s`\n" (Format.asprintf "%a" Mf_util.Diag.pp d)) diags);
  Buffer.contents buf

let save path result =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (markdown result))
