(** The serve-mode job engine: priority queue, content-addressed cache,
    single-flight deduplication, crash recovery — everything the daemon does
    except sockets, so the whole lifecycle is testable in-process.

    Concurrency model: {!submit}, {!status}, {!stats} and {!request_stop}
    may be called from any thread (connection handlers); {!run_next} — which
    actually solves — must only be called from one thread at a time, the
    thread that created the engine (it drives the shared
    {!Mf_util.Domain_pool}, whose discipline requires exactly that).
    Subscriber callbacks fire on the solver thread, outside the engine lock.

    Persistence under [state_dir]:
    - [cache/] — the content-addressed result store ({!Cache});
    - [jobs/<fp>.job] — the spec of every queued or running job without a
      deadline, written atomically on submit and removed on completion;
    - [jobs/<fp>.ckpt] — the codesign checkpoint of a job that got far
      enough to snapshot.

    {!create} scans [jobs/] and re-enqueues every persisted spec, resuming
    from its checkpoint when one exists — so a daemon killed mid-solve
    finishes the job after restart, bit-identical to an uninterrupted
    solve. *)

type t

type stats = {
  solves : int;  (** jobs actually run to completion *)
  joins : int;  (** submissions attached to an identical in-flight job *)
  recovered : int;  (** jobs re-enqueued from persisted specs at startup *)
  failures : int;  (** jobs that ended in a typed failure *)
  queued : int;  (** currently waiting (running job excluded) *)
  cache : Cache.stats;
}

type outcome =
  | Payload of string  (** the deterministic payload line *)
  | Failed of string  (** rendered {!Mf_util.Fail.t} *)
  | Checkpointed  (** graceful stop: spec + snapshot persisted for restart *)

type disposition =
  | Cached of string  (** served from the cache; the payload line, no job ran *)
  | Enqueued of int  (** job id; events and the outcome will stream *)
  | Joined of int  (** identical submission already in flight; sharing its solve *)

val create :
  ?jobs:int ->
  ?mem_capacity:int ->
  ?disk_capacity:int ->
  ?checkpoint_every:int ->
  ?tune:(Mfdft.Codesign.params -> Mfdft.Codesign.params) ->
  state_dir:string ->
  unit ->
  t
(** [jobs] sizes the shared domain pool (default 1).  [checkpoint_every]
    is the codesign snapshot cadence in outer iterations (default 1, so a
    killed daemon loses at most one iteration).  [tune] post-processes the
    solver parameters of every job — tests use it to shrink PSO budgets;
    it must be deterministic or cached results will not be byte-stable. *)

val submit :
  t ->
  Protocol.submit ->
  on_event:(string -> unit) ->
  on_done:(outcome -> unit) ->
  (string * disposition, string) result
(** Returns the submission's fingerprint and what happened to it.  For
    [Cached] neither callback will fire (the payload is in the
    disposition); otherwise [on_event] receives protocol event lines as the
    job progresses and [on_done] fires exactly once.  Submissions with a
    deadline bypass the cache and single-flight entirely (budgeted solves
    are not deterministic) and are not persisted for recovery. *)

val run_next : ?stop_after:int -> t -> [ `Idle | `Ran ]
(** Solve the highest-priority queued job on the calling thread.  [`Idle]
    when the queue is empty.  [stop_after] checkpoints and aborts the job
    after that many outer iterations (the kill half of the restart
    differential test).  A stop requested via {!request_stop} has the same
    effect at the next iteration boundary. *)

val wait_for_work : t -> unit
(** Block until the queue is non-empty or {!request_stop} was called. *)

val status : t -> string -> string
(** ["queued" | "running" | "cached" | "unknown"] for a fingerprint. *)

val find_cached : t -> string -> string option
(** The cached payload line for a fingerprint, if present. *)

val request_stop : t -> unit
(** Graceful shutdown: the running job checkpoints and re-persists at its
    next iteration boundary, {!wait_for_work} and {!run_next} return.
    Safe from signal handlers' watcher threads. *)

val stopping : t -> bool
val pending : t -> int
val stats : t -> stats

val flush : t -> unit
(** Write the cache index. *)

val shutdown : t -> unit
(** Flush, then join the domain pool.  The engine is unusable afterwards.
    Must be called from the thread that created the engine. *)
