module Codesign = Mfdft.Codesign
module Domain_pool = Mf_util.Domain_pool

type stats = {
  solves : int;
  joins : int;
  recovered : int;
  failures : int;
  queued : int;
  cache : Cache.stats;
}

type outcome = Payload of string | Failed of string | Checkpointed

type disposition = Cached of string | Enqueued of int | Joined of int

type job = {
  jid : int;
  fp : string;
  spec : Protocol.submit;
  chip : Mf_arch.Chip.t;
  assay : Mf_bioassay.Seqgraph.t;
  seq : int;  (** submission order, the priority tiebreak *)
  mutable resume : bool;  (** a checkpoint exists; load it before solving *)
  mutable subs : ((string -> unit) * (outcome -> unit)) list;
}

type t = {
  jobs_dir : string;
  cache : Cache.t;
  pool : Domain_pool.t;
  checkpoint_every : int;
  tune : Codesign.params -> Codesign.params;
  lock : Mutex.t;
  work : Condition.t;
  mutable queue : job list;  (** unordered; popped by (priority desc, seq asc) *)
  mutable running : job option;
  inflight : (string, job) Hashtbl.t;  (** single-flight index, deadline-free jobs only *)
  stop : bool Atomic.t;
  mutable next_jid : int;
  mutable next_seq : int;
  mutable solves : int;
  mutable joins : int;
  mutable recovered : int;
  mutable failures : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let spec_path t fp = Filename.concat t.jobs_dir (fp ^ ".job")
let ckpt_path t fp = Filename.concat t.jobs_dir (fp ^ ".ckpt")

let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

let fingerprint_of spec =
  match
    (Protocol.resolve_chip spec.Protocol.chip, Protocol.resolve_assay spec.Protocol.assay)
  with
  | Ok chip, Ok assay ->
    Ok (chip, assay, Fingerprint.digest ~chip ~assay ~options:spec.Protocol.options)
  | Error e, _ -> Error (Printf.sprintf "chip: %s" e)
  | _, Error e -> Error (Printf.sprintf "assay: %s" e)

let enqueue_unlocked t ?(recovering = false) ~chip ~assay ~fp spec subs =
  let job =
    {
      jid = t.next_jid;
      fp;
      spec;
      chip;
      assay;
      seq = t.next_seq;
      resume = recovering && Sys.file_exists (ckpt_path t fp);
      subs;
    }
  in
  t.next_jid <- t.next_jid + 1;
  t.next_seq <- t.next_seq + 1;
  if spec.Protocol.deadline = None then begin
    Hashtbl.replace t.inflight fp job;
    if not recovering then
      write_atomic (spec_path t fp) (Json.to_line (Protocol.submit_to_json spec) ^ "\n")
  end;
  t.queue <- job :: t.queue;
  Condition.broadcast t.work;
  job

let recover t =
  let files = try Sys.readdir t.jobs_dir with Sys_error _ -> [||] in
  Array.sort compare files;
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".job" then begin
        let path = Filename.concat t.jobs_dir f in
        let drop () = remove_quiet path in
        match In_channel.with_open_bin path In_channel.input_all with
        | exception Sys_error _ -> ()
        | text -> (
          match
            Result.bind (Json.parse (String.trim text)) Protocol.submit_of_json
          with
          | Error _ -> drop ()
          | Ok spec -> (
            match fingerprint_of spec with
            | Error _ -> drop ()
            | Ok (chip, assay, fp) ->
              if fp ^ ".job" <> f then drop () (* stale or renamed: address mismatch *)
              else if Cache.find t.cache fp <> None then drop () (* already solved *)
              else begin
                ignore (enqueue_unlocked t ~recovering:true ~chip ~assay ~fp spec []);
                t.recovered <- t.recovered + 1
              end))
      end)
    files

let create ?(jobs = 1) ?(mem_capacity = 256) ?(disk_capacity = 4096)
    ?(checkpoint_every = 1) ?(tune = Fun.id) ~state_dir () =
  if not (Sys.file_exists state_dir) then Sys.mkdir state_dir 0o755;
  let jobs_dir = Filename.concat state_dir "jobs" in
  if not (Sys.file_exists jobs_dir) then Sys.mkdir jobs_dir 0o755;
  let t =
    {
      jobs_dir;
      cache =
        Cache.create ~mem_capacity ~disk_capacity ~dir:(Filename.concat state_dir "cache")
          ();
      pool = Domain_pool.create ~jobs:(max 1 jobs);
      checkpoint_every = max 1 checkpoint_every;
      tune;
      lock = Mutex.create ();
      work = Condition.create ();
      queue = [];
      running = None;
      inflight = Hashtbl.create 16;
      stop = Atomic.make false;
      next_jid = 1;
      next_seq = 0;
      solves = 0;
      joins = 0;
      recovered = 0;
      failures = 0;
    }
  in
  recover t;
  t

let event_line fields = Json.to_line (Json.obj fields)

let notify_event subs line = List.iter (fun (on_event, _) -> on_event line) subs

let submit t spec ~on_event ~on_done =
  match fingerprint_of spec with
  | Error e -> Error e
  | Ok (chip, assay, fp) ->
    let action =
      locked t @@ fun () ->
      if Atomic.get t.stop then `Refuse "daemon is shutting down"
      else if spec.Protocol.deadline <> None then
        (* budgeted: always a private solve, invisible to cache and dedup *)
        `Queued (enqueue_unlocked t ~chip ~assay ~fp spec [ (on_event, on_done) ])
      else
        match Cache.find t.cache fp with
        | Some payload -> `Hit payload
        | None -> (
          match Hashtbl.find_opt t.inflight fp with
          | Some job ->
            job.subs <- (on_event, on_done) :: job.subs;
            t.joins <- t.joins + 1;
            `Joined job
          | None -> `Queued (enqueue_unlocked t ~chip ~assay ~fp spec [ (on_event, on_done) ]))
    in
    (match action with
     | `Refuse msg -> Error msg
     | `Hit payload -> Ok (fp, Cached payload)
     | `Joined job -> Ok (fp, Joined job.jid)
     | `Queued job ->
       on_event
         (event_line
            [
              ("event", Json.Str "queued");
              ("job", Json.Num (float_of_int job.jid));
              ("fingerprint", Json.Str fp);
            ]);
       Ok (fp, Enqueued job.jid))

let pop_best_unlocked t =
  match t.queue with
  | [] -> None
  | q ->
    let better a b =
      a.spec.Protocol.priority > b.spec.Protocol.priority
      || (a.spec.Protocol.priority = b.spec.Protocol.priority && a.seq < b.seq)
    in
    let best = List.fold_left (fun acc j -> if better j acc then j else acc) (List.hd q) q in
    t.queue <- List.filter (fun j -> j != best) q;
    Some best

let cacheable spec (r : Codesign.result) =
  spec.Protocol.deadline = None
  && (not (List.mem Codesign.Budget_exhausted r.Codesign.degradations))
  && not (Mf_util.Chaos.active ())

let params_for t spec =
  let base = if spec.Protocol.options.Fingerprint.full then Codesign.default_params
             else Codesign.quick_params in
  t.tune { base with Codesign.seed = spec.Protocol.options.Fingerprint.seed }

let run_next ?stop_after t =
  let job = locked t (fun () ->
      match pop_best_unlocked t with
      | None -> None
      | Some job ->
        t.running <- Some job;
        Some job)
  in
  match job with
  | None -> `Idle
  | Some job ->
    let subs () = locked t (fun () -> job.subs) in
    notify_event (subs ())
      (event_line
         [
           ("event", Json.Str "started");
           ("job", Json.Num (float_of_int job.jid));
           ("fingerprint", Json.Str job.fp);
         ]);
    let params = params_for t job.spec in
    let total = params.Codesign.outer.Mf_pso.Pso.iterations in
    let progress it =
      notify_event (subs ())
        (event_line
           [
             ("event", Json.Str "iteration");
             ("job", Json.Num (float_of_int job.jid));
             ("iteration", Json.Num (float_of_int it));
             ("of", Json.Num (float_of_int total));
           ])
    in
    let budget = Option.map Mf_util.Budget.of_seconds job.spec.Protocol.deadline in
    let checkpoint =
      (* budgeted jobs are not persisted, so a snapshot would be orphaned *)
      if job.spec.Protocol.deadline = None then
        Some
          {
            Codesign.path = ckpt_path t job.fp;
            every = t.checkpoint_every;
            resume = job.resume;
            stop_after;
          }
      else None
    in
    let stop () = Atomic.get t.stop in
    let drop_job_files () =
      remove_quiet (spec_path t job.fp);
      remove_quiet (ckpt_path t job.fp)
    in
    let outcome =
      match
        Codesign.run ~params ~domains:t.pool ?budget ?checkpoint ~progress ~stop job.chip
          job.assay
      with
      | Ok r ->
        let payload = Protocol.payload_line ~fingerprint:job.fp r in
        if cacheable job.spec r then begin
          Cache.store t.cache ~fingerprint:job.fp payload;
          Cache.flush t.cache
        end;
        drop_job_files ();
        Payload payload
      | Error f ->
        (* the stop hook's typed failure, not a genuine solver failure *)
        let reason = f.Mf_util.Fail.reason in
        let is_stop_failure =
          (Atomic.get t.stop || stop_after <> None)
          && String.length reason >= 7
          && String.sub reason 0 7 = "stopped"
        in
        if is_stop_failure then begin
          (* graceful stop: the snapshot just written + the persisted spec
             are the restart contract; resume from there next time *)
          job.resume <- Sys.file_exists (ckpt_path t job.fp);
          Checkpointed
        end
        else begin
          drop_job_files ();
          Failed (Mf_util.Fail.to_string f)
        end
    in
    let finished_subs =
      locked t @@ fun () ->
      t.running <- None;
      let unregister () =
        (* only this job's own registration: a budgeted twin must not evict
           a deadline-free job's single-flight entry *)
        match Hashtbl.find_opt t.inflight job.fp with
        | Some j when j == job -> Hashtbl.remove t.inflight job.fp
        | _ -> ()
      in
      (match outcome with
       | Payload _ ->
         t.solves <- t.solves + 1;
         unregister ()
       | Failed _ ->
         t.failures <- t.failures + 1;
         unregister ()
       | Checkpointed ->
         (* on graceful shutdown the persisted spec carries the job to the
            next process; on a plain stop_after it goes back on the queue.
            Subscribers are dropped either way — they were told. *)
         if Atomic.get t.stop then unregister ()
         else t.queue <- job :: t.queue);
      let s = job.subs in
      job.subs <- [];
      s
    in
    let status =
      match outcome with
      | Payload _ -> "ok"
      | Failed _ -> "failed"
      | Checkpointed -> "checkpointed"
    in
    notify_event finished_subs
      (event_line
         [
           ("event", Json.Str "done");
           ("job", Json.Num (float_of_int job.jid));
           ("fingerprint", Json.Str job.fp);
           ("status", Json.Str status);
         ]);
    List.iter (fun (_, on_done) -> on_done outcome) finished_subs;
    `Ran

let wait_for_work t =
  locked t @@ fun () ->
  while t.queue = [] && not (Atomic.get t.stop) do
    Condition.wait t.work t.lock
  done

let status t fp =
  locked t @@ fun () ->
  match t.running with
  | Some job when job.fp = fp -> "running"
  | _ ->
    if Hashtbl.mem t.inflight fp then "queued"
    else if Cache.find t.cache fp <> None then "cached"
    else "unknown"

let find_cached t fp = Cache.find t.cache fp

let request_stop t =
  Atomic.set t.stop true;
  (* the lock may be held by the solver; broadcast is still safe because
     the watcher thread (not the signal handler itself) calls this *)
  locked t (fun () -> Condition.broadcast t.work)

let stopping t = Atomic.get t.stop
let pending t = locked t (fun () -> List.length t.queue)

let stats t =
  let cache = Cache.stats t.cache in
  locked t @@ fun () ->
  {
    solves = t.solves;
    joins = t.joins;
    recovered = t.recovered;
    failures = t.failures;
    queued = List.length t.queue;
    cache;
  }

let flush t = Cache.flush t.cache

let shutdown t =
  flush t;
  Domain_pool.shutdown t.pool
