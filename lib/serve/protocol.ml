module Codesign = Mfdft.Codesign

type source = Name of string | Text of string

type submit = {
  chip : source;
  assay : source;
  options : Fingerprint.options;
  priority : int;
  deadline : float option;
  wait : bool;
}

type request =
  | Ping
  | Fingerprint_of of { chip : source; assay : source; options : Fingerprint.options }
  | Submit of submit
  | Status of string
  | Result of string
  | Stats
  | Shutdown

let ( let* ) = Result.bind

let source_of_json name j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing %S" name)
  | Some src -> (
    match (Json.str_field "name" src, Json.str_field "text" src) with
    | Some n, None -> Ok (Name n)
    | None, Some t -> Ok (Text t)
    | _ -> Error (Printf.sprintf "%S needs exactly one of \"name\" or \"text\"" name))

let options_of_json j =
  let d = Fingerprint.default_options in
  match Json.member "options" j with
  | None -> Ok d
  | Some o ->
    let* full =
      match Json.member "full" o with
      | None -> Ok d.Fingerprint.full
      | Some v -> (
        match Json.bool_of v with
        | Some b -> Ok b
        | None -> Error "\"full\" must be a boolean")
    in
    (match Json.member "seed" o with
     | None -> Ok { Fingerprint.full; seed = d.Fingerprint.seed }
     | Some v -> (
       match Json.int_of v with
       | Some seed -> Ok { Fingerprint.full; seed }
       | None -> Error "\"seed\" must be an integer"))

let submit_of_json j =
  let* chip = source_of_json "chip" j in
  let* assay = source_of_json "assay" j in
  let* options = options_of_json j in
  let priority = Option.value ~default:0 (Json.int_field "priority" j) in
  let* deadline =
    match Json.member "deadline" j with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match Json.num v with
      | Some s when s > 0. -> Ok (Some s)
      | Some _ -> Error "\"deadline\" must be positive seconds"
      | None -> Error "\"deadline\" must be a number")
  in
  let wait =
    match Json.member "wait" j with
    | Some v -> Option.value ~default:true (Json.bool_of v)
    | None -> true
  in
  Ok { chip; assay; options; priority; deadline; wait }

let fingerprint_needle j =
  match Json.str_field "fingerprint" j with
  | Some fp -> Ok fp
  | None -> Error "missing \"fingerprint\""

let parse_request line =
  let* j = Json.parse line in
  match Json.str_field "cmd" j with
  | None -> Error "missing \"cmd\""
  | Some "ping" -> Ok Ping
  | Some "fingerprint" ->
    let* chip = source_of_json "chip" j in
    let* assay = source_of_json "assay" j in
    let* options = options_of_json j in
    Ok (Fingerprint_of { chip; assay; options })
  | Some "submit" ->
    let* s = submit_of_json j in
    Ok (Submit s)
  | Some "status" ->
    let* fp = fingerprint_needle j in
    Ok (Status fp)
  | Some "result" ->
    let* fp = fingerprint_needle j in
    Ok (Result fp)
  | Some "stats" -> Ok Stats
  | Some "shutdown" -> Ok Shutdown
  | Some cmd -> Error (Printf.sprintf "unknown command %S" cmd)

let resolve_chip = function
  | Name n -> (
    match Mf_chips.Benchmarks.by_name n with
    | Some chip -> Ok chip
    | None ->
      Error
        (Printf.sprintf "unknown chip %S (benchmarks: %s)" n
           (String.concat ", " Mf_chips.Benchmarks.names)))
  | Text t -> Mf_arch.Chip_io.parse t

let resolve_assay = function
  | Name n -> (
    match Mf_bioassay.Assays.by_name n with
    | Some assay -> Ok assay
    | None ->
      Error
        (Printf.sprintf "unknown assay %S (assays: %s)" n
           (String.concat ", " Mf_bioassay.Assays.names)))
  | Text t -> Mf_bioassay.Assay_io.parse t

let source_to_json = function
  | Name n -> Json.obj [ ("name", Json.Str n) ]
  | Text t -> Json.obj [ ("text", Json.Str t) ]

let submit_to_json s =
  Json.obj
    [
      ("cmd", Json.Str "submit");
      ("chip", source_to_json s.chip);
      ("assay", source_to_json s.assay);
      ( "options",
        Json.obj
          [
            ("full", Json.Bool s.options.Fingerprint.full);
            ("seed", Json.Num (float_of_int s.options.Fingerprint.seed));
          ] );
      ("priority", Json.Num (float_of_int s.priority));
      ("wait", Json.Bool s.wait);
    ]

let payload_line ~fingerprint (r : Codesign.result) =
  let opt_int = function Some v -> Json.Num (float_of_int v) | None -> Json.Null in
  Json.to_line
    (Json.obj
       [
         ("ok", Json.Bool true);
         ("type", Json.Str "result");
         ("fingerprint", Json.Str fingerprint);
         ("result_digest", Json.Str (Fingerprint.result_digest r));
         ("chip", Json.Str (Mf_arch.Chip.name r.Codesign.shared));
         ("n_dft_valves", Json.Num (float_of_int r.Codesign.n_dft_valves));
         ("n_shared", Json.Num (float_of_int r.Codesign.n_shared));
         ("n_vectors_dft", Json.Num (float_of_int r.Codesign.n_vectors_dft));
         ("exec_original", opt_int r.Codesign.exec_original);
         ("exec_dft_unshared", opt_int r.Codesign.exec_dft_unshared);
         ("exec_dft_no_pso", opt_int r.Codesign.exec_dft_no_pso);
         ("exec_final", opt_int r.Codesign.exec_final);
         ("evaluations", Json.Num (float_of_int r.Codesign.evaluations));
         ("iterations", Json.Num (float_of_int (List.length r.Codesign.trace)));
         ( "degradations",
           Json.Arr
             (List.map
                (fun d -> Json.Str (Codesign.degradation_to_string d))
                r.Codesign.degradations) );
       ])

let error_line msg =
  Json.to_line (Json.obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ])
