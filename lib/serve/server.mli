(** The serve daemon: {!Engine} behind a line-oriented socket.

    One listener (Unix-domain socket or loopback TCP), one thread per
    connection, and the calling thread as the solver loop — the engine and
    its shared domain pool are created, driven and shut down on the same
    thread, as the pool discipline requires.

    Shutdown: SIGTERM, SIGINT and the [shutdown] command all funnel into a
    self-pipe (the handlers only write a byte — no locking in signal
    context).  The accept loop notices, stops accepting and requests an
    engine stop; the running job checkpoints at its next iteration
    boundary, queued jobs stay persisted, the cache index is flushed, and
    {!run} returns.  A daemon killed outright (SIGKILL) instead recovers
    from the persisted specs and checkpoints on the next start. *)

type endpoint =
  | Unix_socket of string  (** path; a stale socket file is replaced *)
  | Tcp of int  (** loopback only *)

type config = {
  endpoint : endpoint;
  state_dir : string;
  jobs : int;  (** shared domain-pool width *)
  mem_capacity : int;
  disk_capacity : int;
  checkpoint_every : int;  (** codesign snapshot cadence, outer iterations *)
}

val run : ?tune:(Mfdft.Codesign.params -> Mfdft.Codesign.params) -> config -> unit
(** Serve until shutdown is requested.  [tune] is passed to the engine
    (test harnesses shrink the solver budgets with it). *)
