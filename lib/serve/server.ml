type endpoint = Unix_socket of string | Tcp of int

type config = {
  endpoint : endpoint;
  state_dir : string;
  jobs : int;
  mem_capacity : int;
  disk_capacity : int;
  checkpoint_every : int;
}

let num i = Json.Num (float_of_int i)

let log fmt = Printf.eprintf ("serve: " ^^ fmt ^^ "\n%!")

let stats_line engine =
  let s = Engine.stats engine in
  Json.to_line
    (Json.obj
       [
         ("ok", Json.Bool true);
         ("solves", num s.Engine.solves);
         ("joins", num s.Engine.joins);
         ("recovered", num s.Engine.recovered);
         ("failures", num s.Engine.failures);
         ("queued", num s.Engine.queued);
         ("cache_mem_hits", num s.Engine.cache.Cache.mem_hits);
         ("cache_disk_hits", num s.Engine.cache.Cache.disk_hits);
         ("cache_misses", num s.Engine.cache.Cache.misses);
         ("cache_stores", num s.Engine.cache.Cache.stores);
         ("cache_evictions", num s.Engine.cache.Cache.evictions);
         ("cache_corrupt", num s.Engine.cache.Cache.corrupt);
       ])

let ack_line fp ~cached ~job ~joined =
  Json.to_line
    (Json.obj
       ([
          ("ok", Json.Bool true);
          ("fingerprint", Json.Str fp);
          ("cached", Json.Bool cached);
          ("job", match job with Some id -> num id | None -> Json.Null);
        ]
       @ if joined then [ ("joined", Json.Bool true) ] else []))

(* Per-connection output discipline: every write happens under [lock] after
   checking [alive], and the fd is only closed under the same lock once
   [alive] is false and no submitted job still holds a callback — so a
   solver-thread event can never race a close and hit a recycled fd. *)
let handle_conn engine request_shutdown fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let lock = Mutex.create () in
  let alive = ref true in
  let pending = ref 0 in
  let closed = ref false in
  let with_lock f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  let close_now () =
    (* caller holds [lock] *)
    if not !closed then begin
      closed := true;
      (try flush oc with Sys_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  let send line =
    with_lock @@ fun () ->
    if !alive then (
      try
        output_string oc line;
        output_char oc '\n';
        flush oc
      with Sys_error _ -> alive := false)
  in
  let job_started () = with_lock (fun () -> incr pending) in
  let job_finished () =
    with_lock @@ fun () ->
    decr pending;
    if (not !alive) && !pending = 0 then close_now ()
  in
  let dispatch = function
    | Protocol.Ping ->
      send (Json.to_line (Json.obj [ ("ok", Json.Bool true); ("pong", Json.Bool true) ]))
    | Protocol.Fingerprint_of { chip; assay; options } -> (
      match (Protocol.resolve_chip chip, Protocol.resolve_assay assay) with
      | Ok chip, Ok assay ->
        let fp = Fingerprint.digest ~chip ~assay ~options in
        send
          (Json.to_line (Json.obj [ ("ok", Json.Bool true); ("fingerprint", Json.Str fp) ]))
      | Error e, _ -> send (Protocol.error_line ("chip: " ^ e))
      | _, Error e -> send (Protocol.error_line ("assay: " ^ e)))
    | Protocol.Submit s -> (
      let wait = s.Protocol.wait in
      if wait then job_started ();
      let on_event = if wait then send else ignore in
      let on_done outcome =
        if wait then begin
          (match outcome with
           | Engine.Payload p -> send p
           | Engine.Failed msg -> send (Protocol.error_line msg)
           | Engine.Checkpointed ->
             send
               (Json.to_line
                  (Json.obj
                     [
                       ("ok", Json.Bool false);
                       ("error", Json.Str "daemon stopping; job checkpointed for restart");
                       ("checkpointed", Json.Bool true);
                     ])));
          job_finished ()
        end
      in
      match Engine.submit engine s ~on_event ~on_done with
      | Error e ->
        if wait then job_finished ();
        send (Protocol.error_line e)
      | Ok (fp, Engine.Cached payload) ->
        if wait then job_finished ();
        send (ack_line fp ~cached:true ~job:None ~joined:false);
        send payload
      | Ok (fp, Engine.Enqueued id) -> send (ack_line fp ~cached:false ~job:(Some id) ~joined:false)
      | Ok (fp, Engine.Joined id) -> send (ack_line fp ~cached:false ~job:(Some id) ~joined:true))
    | Protocol.Status fp ->
      send
        (Json.to_line
           (Json.obj
              [
                ("ok", Json.Bool true);
                ("fingerprint", Json.Str fp);
                ("state", Json.Str (Engine.status engine fp));
              ]))
    | Protocol.Result fp -> (
      match Engine.find_cached engine fp with
      | Some payload -> send payload
      | None ->
        send
          (Json.to_line
             (Json.obj
                [
                  ("ok", Json.Bool true);
                  ("fingerprint", Json.Str fp);
                  ("ready", Json.Bool false);
                ])))
    | Protocol.Stats -> send (stats_line engine)
    | Protocol.Shutdown ->
      send (Json.to_line (Json.obj [ ("ok", Json.Bool true); ("stopping", Json.Bool true) ]));
      request_shutdown ()
  in
  let rec read_loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
      let line = String.trim line in
      if line <> "" then (
        match Protocol.parse_request line with
        | Error e -> send (Protocol.error_line e)
        | Ok req -> dispatch req);
      read_loop ()
  in
  read_loop ();
  with_lock @@ fun () ->
  alive := false;
  if !pending = 0 then close_now ()

let listen_socket = function
  | Unix_socket path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16;
    fd
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 16;
    fd

let run ?tune config =
  let engine =
    Engine.create ~jobs:config.jobs ~mem_capacity:config.mem_capacity
      ~disk_capacity:config.disk_capacity ~checkpoint_every:config.checkpoint_every ?tune
      ~state_dir:config.state_dir ()
  in
  let stop_r, stop_w = Unix.pipe () in
  let request_shutdown () =
    (* called from signal handlers: a single write, no locks *)
    try ignore (Unix.write stop_w (Bytes.of_string "x") 0 1) with Unix.Unix_error _ -> ()
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_shutdown ()));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> request_shutdown ()));
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = listen_socket config.endpoint in
  (match config.endpoint with
   | Unix_socket path -> log "listening on %s (jobs=%d, state=%s)" path config.jobs config.state_dir
   | Tcp port -> log "listening on 127.0.0.1:%d (jobs=%d, state=%s)" port config.jobs config.state_dir);
  let recovered = (Engine.stats engine).Engine.recovered in
  if recovered > 0 then log "recovered %d persisted job(s)" recovered;
  let acceptor =
    Thread.create
      (fun () ->
        let rec loop () =
          match Unix.select [ listen_fd; stop_r ] [] [] (-1.0) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | ready, _, _ ->
            if List.mem stop_r ready then ()
            else begin
              (match Unix.accept listen_fd with
               | exception Unix.Unix_error (_, _, _) -> ()
               | fd, _ ->
                 ignore
                   (Thread.create
                      (fun () ->
                        try handle_conn engine request_shutdown fd
                        with e -> log "connection error: %s" (Printexc.to_string e))
                      ()));
              loop ()
            end
        in
        loop ();
        Engine.request_stop engine)
      ()
  in
  (* solver loop: this thread created the engine (and its domain pool), so
     this thread does the solving *)
  let rec solve () =
    if not (Engine.stopping engine) then
      match Engine.run_next engine with
      | `Ran -> solve ()
      | `Idle ->
        Engine.wait_for_work engine;
        solve ()
  in
  solve ();
  Thread.join acceptor;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match config.endpoint with
   | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
   | Tcp _ -> ());
  Engine.shutdown engine;
  let left = Engine.pending engine in
  if left > 0 then log "stopped; %d job(s) checkpointed for restart" left else log "stopped"
