(* Entry file layout (binary, but header line readable):
     mfdft-serve-cache-v1 <hex payload digest>\n
     <payload bytes>
   Integrity = magic string matches AND digest of the payload bytes
   matches the header.  Anything else is corruption: delete, count, miss. *)

let magic = "mfdft-serve-cache-v1"
let index_magic = "mfdft-serve-cache-index-v1"

type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
  evictions : int;
  corrupt : int;
}

type t = {
  mem : (string, string) Mf_util.Lru.t;
  disk : (string, unit) Mf_util.Lru.t option; (* recency bookkeeping only *)
  dir : string option;
  lock : Mutex.t;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable corrupt : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let entry_path dir fp = Filename.concat dir (fp ^ ".res")
let index_path dir = Filename.concat dir "index"

let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

(* fingerprints are hex digests; refuse anything that could escape the
   cache directory *)
let valid_fp fp =
  fp <> "" && String.for_all (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false) fp

let load_index dir disk =
  match In_channel.with_open_bin (index_path dir) In_channel.input_all with
  | exception Sys_error _ -> Error `Missing
  | text -> (
    match String.split_on_char '\n' text with
    | header :: fps when header = index_magic ->
      (* stored most-recent-first; insert oldest first so LRU order matches *)
      List.rev fps
      |> List.iter (fun fp ->
          if valid_fp fp && Sys.file_exists (entry_path dir fp) then
            ignore (Mf_util.Lru.add disk fp ()));
      Ok ()
    | _ -> Error `Damaged)

let scan_dir dir disk =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.sort compare files;
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".res" then begin
          let fp = Filename.chop_suffix f ".res" in
          if valid_fp fp then ignore (Mf_util.Lru.add disk fp ())
        end)
      files

let create ?(mem_capacity = 256) ?(disk_capacity = 4096) ?dir () =
  let disk =
    match dir with
    | None -> None
    | Some d ->
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      let disk = Mf_util.Lru.create ~capacity:disk_capacity in
      (match load_index d disk with
       | Ok () -> ()
       | Error (`Missing | `Damaged) -> scan_dir d disk);
      Some disk
  in
  {
    mem = Mf_util.Lru.create ~capacity:mem_capacity;
    disk;
    dir;
    lock = Mutex.create ();
    mem_hits = 0;
    disk_hits = 0;
    misses = 0;
    stores = 0;
    evictions = 0;
    corrupt = 0;
  }

let read_entry t dir fp =
  let path = entry_path dir fp in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | contents -> (
    let bad () =
      t.corrupt <- t.corrupt + 1;
      (try Sys.remove path with Sys_error _ -> ());
      (match t.disk with Some disk -> Mf_util.Lru.remove disk fp | None -> ());
      None
    in
    match String.index_opt contents '\n' with
    | None -> bad ()
    | Some nl ->
      let header = String.sub contents 0 nl in
      let payload = String.sub contents (nl + 1) (String.length contents - nl - 1) in
      (match String.split_on_char ' ' header with
       | [ m; d ] when m = magic && d = Digest.to_hex (Digest.string payload) -> Some payload
       | _ -> bad ()))

let find t fp =
  locked t @@ fun () ->
  match Mf_util.Lru.find t.mem fp with
  | Some payload ->
    t.mem_hits <- t.mem_hits + 1;
    Some payload
  | None -> (
    match (t.dir, t.disk) with
    | Some dir, Some disk when Mf_util.Lru.mem disk fp -> (
      match read_entry t dir fp with
      | Some payload ->
        t.disk_hits <- t.disk_hits + 1;
        ignore (Mf_util.Lru.find disk fp); (* refresh disk recency *)
        ignore (Mf_util.Lru.add t.mem fp payload); (* promote *)
        Some payload
      | None ->
        t.misses <- t.misses + 1;
        None)
    | _ ->
      t.misses <- t.misses + 1;
      None)

let save_index_unlocked t =
  match (t.dir, t.disk) with
  | Some dir, Some disk ->
    let fps = List.map fst (Mf_util.Lru.to_list disk) in
    write_atomic (index_path dir) (String.concat "\n" (index_magic :: fps))
  | _ -> ()

let store t ~fingerprint payload =
  locked t @@ fun () ->
  t.stores <- t.stores + 1;
  ignore (Mf_util.Lru.add t.mem fingerprint payload);
  match (t.dir, t.disk) with
  | Some dir, Some disk ->
    write_atomic (entry_path dir fingerprint)
      (Printf.sprintf "%s %s\n%s" magic (Digest.to_hex (Digest.string payload)) payload);
    (match Mf_util.Lru.add disk fingerprint () with
     | None -> ()
     | Some (evicted_fp, ()) ->
       t.evictions <- t.evictions + 1;
       (try Sys.remove (entry_path dir evicted_fp) with Sys_error _ -> ()))
  | _ -> ()

let flush t = locked t (fun () -> save_index_unlocked t)

let stats t =
  locked t @@ fun () ->
  {
    mem_hits = t.mem_hits;
    disk_hits = t.disk_hits;
    misses = t.misses;
    stores = t.stores;
    evictions = t.evictions;
    corrupt = t.corrupt;
  }

let entries t =
  locked t @@ fun () ->
  match t.disk with Some disk -> Mf_util.Lru.length disk | None -> Mf_util.Lru.length t.mem
