(** Canonical content fingerprints for chip + assay + solver options.

    The digest is computed over the {e parsed} representation — the
    canonical [Chip_io.to_string] / [Assay_io.to_string] renderings — never
    over file bytes, so two submissions that parse to the same architecture
    and sequencing graph fingerprint identically regardless of comment
    lines, directive order quirks the parser tolerates, or whether the chip
    arrived as a benchmark name or a [.chip] file.  Conversely any semantic
    difference (a moved valve, a changed duration, another seed) changes
    the digest.

    The fingerprint is the content address of the serve-mode result cache,
    the identity the bench gate compares cold and cached solves under, and
    what [dft_tool fingerprint] prints. *)

type options = {
  full : bool;  (** paper-scale PSO budgets instead of quick *)
  seed : int;  (** PSO random seed *)
}
(** The submission options that determine the codesign result.  Execution
    knobs that provably do not affect results ([jobs], [ilp_jobs],
    [sched_cutoff] — all bit-identical by construction) are deliberately
    excluded, so a parallel solve serves later serial submissions and vice
    versa.  Wall-clock deadlines are excluded too: budgeted runs trade
    determinism for latency, so the serve layer never caches them. *)

val default_options : options
(** [{ full = false; seed = 42 }] — the CLI defaults. *)

val canonical :
  chip:Mf_arch.Chip.t -> assay:Mf_bioassay.Seqgraph.t -> options:options -> string
(** The exact text the digest is computed over (versioned header, options,
    canonical chip and assay renderings) — exposed for debugging and the
    round-trip property tests. *)

val digest :
  chip:Mf_arch.Chip.t -> assay:Mf_bioassay.Seqgraph.t -> options:options -> string
(** Hex digest of {!canonical}. *)

val result_digest : Mfdft.Codesign.result -> string
(** Deterministic hex digest of a codesign result's semantic content: the
    shared architecture, the suite, the sharing scheme, every execution
    time, the convergence trace and the degradation list.  Wall-clock
    fields are excluded, so a resumed, re-run or differently-parallel solve
    of the same submission produces the same result digest — the identity
    the cache-poisoning guard and the bench byte-identity gate check. *)
