(** Content-addressed result cache: in-memory LRU over an optional on-disk
    store.

    Entries are opaque byte payloads (the serve protocol's final result
    line) addressed by their submission {!Fingerprint.digest}.  The disk
    tier writes one file per entry atomically (tmp + rename, the same
    discipline as the codesign checkpoints) with a versioned magic header
    and a payload digest; a load that fails either check counts as
    corruption, evicts the file, and reports a miss — a poisoned entry is
    re-solved, never served.  An index file (also written atomically)
    records recency order so the disk LRU survives restarts; a missing or
    damaged index degrades to a directory scan, never a failure.

    All operations are thread-safe (one internal mutex). *)

type t

type stats = {
  mem_hits : int;
  disk_hits : int;  (** disk hit implies promotion into the memory tier *)
  misses : int;
  stores : int;
  evictions : int;  (** disk-tier evictions (capacity) *)
  corrupt : int;  (** on-disk entries rejected and deleted by the integrity check *)
}

val create : ?mem_capacity:int -> ?disk_capacity:int -> ?dir:string -> unit -> t
(** [create ~dir ()] opens (creating if needed) the store rooted at [dir];
    without [dir] the cache is memory-only.  Defaults: 256 entries in
    memory, 4096 on disk. *)

val find : t -> string -> string option
(** [find t fingerprint] — memory first, then disk (verifying integrity). *)

val store : t -> fingerprint:string -> string -> unit
(** Insert into both tiers, evicting least-recently-used disk entries over
    capacity. *)

val flush : t -> unit
(** Write the disk index atomically.  Called on graceful shutdown; cheap
    enough to call after every store (the engine does). *)

val stats : t -> stats
val entries : t -> int
(** Disk-tier entry count (memory-only caches report the memory tier). *)
