(** Zero-dependency JSON values for the line-oriented serve protocol.

    One value per line: {!to_line} never emits a raw newline (control
    characters are escaped), so a protocol message is always exactly one
    [\n]-terminated line and clients can frame on [input_line].

    The parser accepts standard JSON (objects, arrays, strings with the
    usual escapes including [\uXXXX], numbers, [true]/[false]/[null]);
    numbers are held as [float], which is exact for every integer the
    protocol uses. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_line : t -> string
(** Render on a single line, no trailing newline. *)

val parse : string -> (t, string) result
(** Parse one complete value; trailing garbage is an error. *)

(** {2 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
(** Object field lookup; [None] for absent fields and non-objects. *)

val str : t -> string option
val num : t -> float option
val int_of : t -> int option
val bool_of : t -> bool option

val int_field : string -> t -> int option
val str_field : string -> t -> string option

val obj : (string * t) list -> t
(** [Obj] constructor, for pipelines. *)
