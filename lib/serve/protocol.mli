(** The serve-mode wire protocol: one JSON object per line, both ways.

    Requests name a command in ["cmd"].  Chips and assays arrive either by
    benchmark name ([{"name": "ivd_chip"}]) or inline as the textual format
    the CLI already accepts ([{"text": "chip w 6 5\n..."}]) — either way the
    fingerprint is computed over the canonical parsed rendering, so the two
    spellings of the same architecture share one cache entry.

    Responses: an acknowledgement object first (always carrying ["ok"]),
    then — for submissions that wait — streamed event objects (["event"]:
    [queued], [started], [iteration], [done]) and finally the {e payload
    line}, a deterministic result summary ([{"type": "result", ...}]) that
    is byte-identical for every solve of the same fingerprint.  The bench
    byte-identity gate compares exactly this line. *)

type source = Name of string | Text of string

type submit = {
  chip : source;
  assay : source;
  options : Fingerprint.options;
  priority : int;  (** higher runs first; ties in submission order (default 0) *)
  deadline : float option;
      (** wall-clock budget in seconds.  Budgeted runs are not
          deterministic, so they are never cached, never joined by
          single-flight, and never persisted for crash recovery. *)
  wait : bool;  (** stream events and the payload line on this connection *)
}

type request =
  | Ping
  | Fingerprint_of of { chip : source; assay : source; options : Fingerprint.options }
  | Submit of submit
  | Status of string  (** by fingerprint *)
  | Result of string  (** cached payload by fingerprint, if ready *)
  | Stats
  | Shutdown

val parse_request : string -> (request, string) result
(** Parse one request line. *)

val resolve_chip : source -> (Mf_arch.Chip.t, string) result
val resolve_assay : source -> (Mf_bioassay.Seqgraph.t, string) result

val submit_to_json : submit -> Json.t
(** Persistable spec (the deadline, meaningless across a restart, is
    dropped).  [submit_of_json (submit_to_json s)] round-trips the rest. *)

val submit_of_json : Json.t -> (submit, string) result

val payload_line : fingerprint:string -> Mfdft.Codesign.result -> string
(** The final result line: fingerprint, {!Fingerprint.result_digest}, and
    the result's semantic summary (resource counts, execution times,
    degradations).  Deterministic — no wall-clock fields — so repeated
    solves of one fingerprint produce byte-identical lines. *)

val error_line : string -> string
(** [{"ok": false, "error": msg}] *)
