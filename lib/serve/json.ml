type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printer *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let number_to_string f =
  (* integers print without a fractional part so digests over protocol
     text are stable across writers *)
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_line v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          go item)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parser *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let add_utf8 b code =
    (* code points straight from \uXXXX; surrogate pairs are combined by
       the caller before we get here *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some (('"' | '\\' | '/') as c) ->
           Buffer.add_char b c;
           advance ();
           go ()
         | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
         | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
         | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
         | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
         | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
         | Some 'u' ->
           advance ();
           let c0 = hex4 () in
           let code =
             if c0 >= 0xD800 && c0 <= 0xDBFF && !pos + 6 <= n && s.[!pos] = '\\'
                && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let c1 = hex4 () in
               if c1 >= 0xDC00 && c1 <= 0xDFFF then
                 0x10000 + ((c0 - 0xD800) lsl 10) + (c1 - 0xDC00)
               else fail "unpaired surrogate"
             end
             else c0
           in
           add_utf8 b code;
           go ()
         | _ -> fail "unsupported escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some ('0' .. '9' | '-') -> Num (parse_number ())
    | _ -> fail "unexpected character"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* accessors *)

let member name = function Obj kvs -> List.assoc_opt name kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int_of = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool_of = function Bool b -> Some b | _ -> None
let int_field name j = Option.bind (member name j) int_of
let str_field name j = Option.bind (member name j) str
let obj fields = Obj fields
