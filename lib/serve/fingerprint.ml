module Chip = Mf_arch.Chip
module Codesign = Mfdft.Codesign

type options = { full : bool; seed : int }

let default_options = { full = false; seed = 42 }

(* Version tag: bump when the canonical text changes shape, so stale
   on-disk cache entries from older layouts can never alias a new
   submission's address. *)
let version = "mfdft-fingerprint-v1"

let canonical ~chip ~assay ~options =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf version;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "options full=%b seed=%d\n" options.full options.seed);
  Buffer.add_string buf "chip\n";
  Buffer.add_string buf (Mf_arch.Chip_io.to_string chip);
  Buffer.add_string buf "assay\n";
  Buffer.add_string buf (Mf_bioassay.Assay_io.to_string assay);
  Buffer.contents buf

let digest ~chip ~assay ~options =
  Digest.to_hex (Digest.string (canonical ~chip ~assay ~options))

let result_digest (r : Codesign.result) =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "mfdft-result-v1\n";
  Buffer.add_string buf (Mf_arch.Chip_io.to_string r.Codesign.shared);
  let suite = r.Codesign.suite in
  out "suite %d %d\n" suite.Mf_testgen.Vectors.source_port suite.Mf_testgen.Vectors.meter_port;
  let ints l = String.concat "," (List.map string_of_int l) in
  List.iter (fun p -> out "path %s\n" (ints p)) suite.Mf_testgen.Vectors.path_edges;
  List.iter (fun c -> out "cut %s\n" (ints c)) suite.Mf_testgen.Vectors.cut_valves;
  List.iter (fun (d, o) -> out "share %d %d\n" d o) r.Codesign.sharing;
  let time = function Some t -> string_of_int t | None -> "-" in
  out "exec %s %s %s %s\n" (time r.Codesign.exec_original) (time r.Codesign.exec_dft_unshared)
    (time r.Codesign.exec_dft_no_pso) (time r.Codesign.exec_final);
  out "counts %d %d %d %d\n" r.Codesign.n_dft_valves r.Codesign.n_shared
    r.Codesign.n_vectors_dft r.Codesign.evaluations;
  List.iter (fun v -> out "trace %.9g\n" v) r.Codesign.trace;
  List.iter
    (fun d -> out "degradation %s\n" (Codesign.degradation_to_string d))
    r.Codesign.degradations;
  Digest.to_hex (Digest.string (Buffer.contents buf))
