module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Bitset = Mf_util.Bitset
module Union_find = Mf_util.Union_find
module Ilp = Mf_ilp.Ilp

type config = {
  src_port : int;
  dst_port : int;
  added_edges : int list;
  paths : int list list;
  n_paths : int;
  ilp_nodes : int;
  loop_cuts : int;
  solver : Ilp.run_stats;
  degraded : bool;
}

let farthest_ports chip =
  let g = Grid.graph (Chip.grid chip) in
  let channels = Chip.channel_edges chip in
  let allowed e = Bitset.mem channels e in
  let ports = Chip.ports chip in
  let best = ref (0, 1) in
  let best_dist = ref (-1) in
  Array.iter
    (fun (p : Chip.port) ->
      let dist = Traverse.bfs_dist g ~allowed ~src:p.node in
      Array.iter
        (fun (q : Chip.port) ->
          if q.port_id > p.port_id then begin
            let d = dist.(q.node) in
            if d < max_int && d > !best_dist then begin
              best_dist := d;
              best := (p.port_id, q.port_id)
            end
          end)
        ports)
    ports;
  !best

(* Variable layout for a [k]-path model over a graph with [ne] edges and
   [nn] nodes. *)
type model = {
  ilp : Ilp.t;
  e_var : int array array; (* r -> edge -> var *)
  s_var : int array; (* edge -> var, or -1 for original channel edges *)
  k : int;
}

let build_model chip ~weights ~k ~s_node ~t_node =
  let g = Grid.graph (Chip.grid chip) in
  let ne = Graph.n_edges g in
  let nn = Graph.n_nodes g in
  let orig = Chip.channel_edges chip in
  let ilp = Ilp.create () in
  let e_var = Array.init k (fun _ -> Array.init ne (fun _ -> -1)) in
  for r = 0 to k - 1 do
    for j = 0 to ne - 1 do
      e_var.(r).(j) <- Ilp.add_binary ilp
    done
  done;
  (* s_j need not be branched on: with integral e_{j,r}, minimisation pins
     each s_j to the covering maximum, which is 0 or 1 *)
  let s_var = Array.make ne (-1) in
  for j = 0 to ne - 1 do
    if not (Bitset.mem orig j) then
      s_var.(j) <- Ilp.add_continuous ~lower:0. ~upper:1. ~obj:(weights j) ilp
  done;
  (* degree constraints (1)-(2); the n_{i,r} must be binary — a continuous
     n would admit degree-1 dead ends (n = 1/2) and break the
     path-plus-cycles structure the loop cuts rely on *)
  for r = 0 to k - 1 do
    for i = 0 to nn - 1 do
      let incident = List.map (fun (e, _) -> (1., e_var.(r).(e))) (Graph.incident g i) in
      if i = s_node || i = t_node then Ilp.add_row ilp incident Ilp.Eq 1.
      else begin
        let n_i = Ilp.add_binary ilp in
        Ilp.add_row ilp (((-2.), n_i) :: incident) Ilp.Eq 0.
      end
    done
  done;
  (* coverage of original channels (3) *)
  Bitset.iter
    (fun j ->
      let terms = List.init k (fun r -> (1., e_var.(r).(j))) in
      Ilp.add_row ilp terms Ilp.Ge 1.)
    orig;
  (* linking of added edges (4) *)
  for j = 0 to ne - 1 do
    if s_var.(j) >= 0 then
      for r = 0 to k - 1 do
        Ilp.add_row ilp [ (1., e_var.(r).(j)); ((-1.), s_var.(j)) ] Ilp.Le 0.
      done
  done;
  (* symmetry breaking: paths are interchangeable, so order them by the
     index of the edge leaving the source *)
  let s_terms r =
    List.map (fun (e, _) -> (float_of_int (e + 1), e_var.(r).(e))) (Graph.incident g s_node)
  in
  for r = 0 to k - 2 do
    Ilp.add_row ilp (s_terms r @ List.map (fun (c, v) -> (-.c, v)) (s_terms (r + 1))) Ilp.Le 0.
  done;
  (* valid strengthening cuts: a non-terminal node whose channel degree is 1
     (a dead-end spur) is visited by some path, which must leave it through
     an added edge — so at least one incident free edge is built *)
  for i = 0 to nn - 1 do
    if i <> s_node && i <> t_node then begin
      let incident = Graph.incident g i in
      let channel_degree =
        List.length (List.filter (fun (e, _) -> Bitset.mem orig e) incident)
      in
      if channel_degree = 1 then begin
        let free_terms =
          List.filter_map
            (fun (e, _) -> if s_var.(e) >= 0 then Some (1., s_var.(e)) else None)
            incident
        in
        if free_terms <> [] then Ilp.add_row ilp free_terms Ilp.Ge 1.
      end
    end
  done;
  { ilp; e_var; s_var; k }

(* Loop handling (Sec. 3): an integral degree-feasible selection for path
   [r] is one s-t path plus possibly node-disjoint cycles.  Stray cycles of
   original edges are cost-free, so they satisfy coverage (3) spuriously;
   however they are harmless when the true path components alone already
   cover every original edge (extraction walks the main component only).
   Only when the genuine cover fails do we emit lazy cuts, and since no
   simple path can use {e all} edges of a cycle, each cut
   [sum_{j in cycle} e_{j,r} <= |cycle| - 1] is valid for every path. *)
let loops_of chip model ~s_node (sol : Ilp.solution) =
  let g = Grid.graph (Chip.grid chip) in
  let nn = Graph.n_nodes g in
  let loops = ref [] in
  let main_edges = ref [] in
  for r = 0 to model.k - 1 do
    let selected j = sol.values.(model.e_var.(r).(j)) > 0.5 in
    let uf = Union_find.create nn in
    Graph.iter_edges (fun j u v -> if selected j then ignore (Union_find.union uf u v)) g;
    let main = Union_find.find uf s_node in
    let by_comp = Hashtbl.create 8 in
    Graph.iter_edges
      (fun j u _v ->
        if selected j then begin
          if Union_find.find uf u = main then main_edges := j :: !main_edges
          else begin
            let root = Union_find.find uf u in
            Hashtbl.replace by_comp root
              (j :: Option.value ~default:[] (Hashtbl.find_opt by_comp root))
          end
        end)
      g;
    Hashtbl.iter (fun _root edges -> loops := edges :: !loops) by_comp
  done;
  (!loops, !main_edges)

let loop_cuts_of chip model ~s_node (sol : Ilp.solution) =
  let loops, main_edges = loops_of chip model ~s_node sol in
  if loops = [] then []
  else begin
    let orig = Chip.channel_edges chip in
    let covered = Bitset.create (Bitset.length orig) in
    List.iter (fun j -> if Bitset.mem orig j then Bitset.add covered j) main_edges;
    let missing = Bitset.fold (fun j acc -> acc || not (Bitset.mem covered j)) orig false in
    if not missing then [] (* loops are decorative; accept the candidate *)
    else
      List.concat_map
        (fun edges ->
          let bound = float_of_int (List.length edges - 1) in
          List.init model.k (fun r ->
              (List.map (fun j -> (1., model.e_var.(r).(j))) edges, Ilp.Le, bound)))
        loops
  end

let extract_paths chip model ~s_node ~t_node (sol : Ilp.solution) =
  let g = Grid.graph (Chip.grid chip) in
  let paths = ref [] in
  for r = model.k - 1 downto 0 do
    let selected j = sol.values.(model.e_var.(r).(j)) > 0.5 in
    (* walk from s: internal nodes have degree 2, so never revisit the
       arrival edge *)
    let rec walk node arrived acc =
      if node = t_node then List.rev acc
      else begin
        let next =
          List.find_opt (fun (e, _) -> selected e && Some e <> arrived) (Graph.incident g node)
        in
        match next with
        | None -> failwith "Pathgen: broken path in ILP solution"
        | Some (e, v) -> walk v (Some e) (e :: acc)
      end
    in
    paths := walk s_node None [] :: !paths
  done;
  !paths

(* Greedy feasible cover used both as a branch-and-bound warm bound and as
   a fallback when the ILP budget runs out: route source → uncovered edge →
   meter as a simple path, preferring existing channels over new edges.
   [jitter] perturbs free-edge costs deterministically so restarts explore
   different covers. *)
let heuristic_cover_once ?(usable = fun _ -> true) chip ~weights ~jitter ~s_node ~t_node =
  let g = Grid.graph (Chip.grid chip) in
  let orig = Chip.channel_edges chip in
  let uncovered = Bitset.copy orig in
  let added = Bitset.create (Graph.n_edges g) in
  (* free edges joining two dead-end spur tips are gold: one new channel
     lets a path chain through both spurs, so make them nearly as cheap as
     existing channels *)
  let tip =
    let deg = Array.make (Graph.n_nodes g) 0 in
    Bitset.iter
      (fun e ->
        let u, v = Graph.endpoints g e in
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1)
      orig;
    fun n -> deg.(n) = 1 && n <> s_node && n <> t_node
  in
  let tip_link e =
    let u, v = Graph.endpoints g e in
    (tip u && (tip v || v = s_node || v = t_node)) || (tip v && (u = s_node || u = t_node))
  in
  let edge_weight e =
    if Bitset.mem uncovered e then 0.2 +. (0.05 *. jitter e)
    else if Bitset.mem orig e || Bitset.mem added e then
      (* caller weights and restart jitter both perturb channel costs so
         that restarts and pool-level re-generation explore different
         half-path routes (and hence different augmentations) *)
      1. +. (0.3 *. jitter e) +. (0.3 *. (weights e -. 1.))
    else if tip_link e then 1.3 +. (0.1 *. (weights e +. jitter e))
    else 4. +. weights e +. jitter e
  in
  let path_via e =
    let a, b = Graph.endpoints g e in
    let try_orientation (a, b) =
      let without_e f = f <> e && usable f in
      match Traverse.dijkstra g ~allowed:without_e ~weight:edge_weight ~src:s_node ~dst:a with
      | None -> None
      | Some (_, half1) ->
        let used = Bitset.create (Graph.n_nodes g) in
        List.iter (Bitset.add used) (Traverse.path_nodes g ~src:s_node half1);
        if Bitset.mem used b || Bitset.mem used t_node then None
        else begin
          let avoid f =
            f <> e && usable f
            &&
            let u, v = Graph.endpoints g f in
            let fresh n = n = b || n = t_node || not (Bitset.mem used n) in
            fresh u && fresh v
          in
          match Traverse.dijkstra g ~allowed:avoid ~weight:edge_weight ~src:b ~dst:t_node with
          | None -> None
          | Some (_, half2) -> Some (half1 @ (e :: half2))
        end
    in
    match try_orientation (a, b) with Some p -> Some p | None -> try_orientation (b, a)
  in
  let paths = ref [] in
  let failed = ref false in
  Bitset.iter
    (fun e ->
      if (not !failed) && Bitset.mem uncovered e then begin
        match path_via e with
        | None -> failed := true
        | Some path ->
          paths := path :: !paths;
          List.iter
            (fun f ->
              if Bitset.mem orig f then Bitset.remove uncovered f
              else Bitset.add added f)
            path
      end)
    orig;
  if !failed then None else Some (List.rev !paths, Bitset.elements added)

(* Drop added edges one at a time as long as a cover restricted to the
   remaining set still succeeds: brings the greedy cover close to a minimal
   augmentation. *)
let prune_added chip ~weights ~s_node ~t_node (paths, added) =
  let orig = Chip.channel_edges chip in
  let rec shrink paths added =
    let try_drop e =
      let usable f = Bitset.mem orig f || (List.mem f added && f <> e) in
      heuristic_cover_once ~usable chip ~weights ~jitter:(fun _ -> 0.) ~s_node ~t_node
    in
    let rec first_success = function
      | [] -> (paths, added)
      | e :: rest ->
        (match try_drop e with
         | Some (paths', added') when List.length added' < List.length added ->
           shrink paths' added'
         | Some _ | None -> first_success rest)
    in
    first_success added
  in
  shrink paths added

(* Multi-restart: the greedy cover is order- and cost-sensitive, so run it
   with several deterministic jitters, prune each cover to a near-minimal
   edge set, and keep the best (fewest added edges, then fewest paths). *)
let heuristic_cover chip ~weights ~s_node ~t_node =
  let g = Grid.graph (Chip.grid chip) in
  let ne = Graph.n_edges g in
  let rng = Mf_util.Rng.create ~seed:9173 in
  let candidates =
    List.init 8 (fun attempt ->
        let jitter =
          if attempt = 0 then fun _ -> 0.
          else begin
            let noise = Array.init ne (fun _ -> Mf_util.Rng.float rng 3.) in
            fun e -> noise.(e)
          end
        in
        Option.map
          (prune_added chip ~weights ~s_node ~t_node)
          (heuristic_cover_once chip ~weights ~jitter ~s_node ~t_node))
  in
  let better a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some (pa, aa), Some (pb, ab) ->
      let ka = (List.length aa, List.length pa) and kb = (List.length ab, List.length pb) in
      if kb < ka then Some (pb, ab) else Some (pa, aa)
  in
  List.fold_left better None candidates

let generate ?(weights = fun _ -> 1.) ?src_port ?dst_port ?(max_paths = 8) ?(node_limit = 1_200)
    ?budget ?(warm = true) ?presolve ?cuts ?pool chip =
  let auto_src, auto_dst = farthest_ports chip in
  let src_port = Option.value ~default:auto_src src_port in
  let dst_port = Option.value ~default:auto_dst dst_port in
  if src_port = dst_port then invalid_arg "Pathgen.generate: source = meter";
  let ports = Chip.ports chip in
  let s_node = ports.(src_port).node and t_node = ports.(dst_port).node in
  let orig = Chip.channel_edges chip in
  let total_nodes = ref 0 in
  let total_cuts = ref 0 in
  let total_stats = ref Ilp.zero_stats in
  let heuristic =
    Mf_util.Prof.time "pathgen.heuristic" (fun () ->
        heuristic_cover chip ~weights ~s_node ~t_node)
  in
  let heuristic_cost =
    match heuristic with
    | None -> infinity
    | Some (_, added) -> List.fold_left (fun acc e -> acc +. weights e) 0. added
  in
  let heuristic_config k =
    match heuristic with
    | None -> None
    | Some (paths, added) ->
      ignore k;
      Some
        {
          src_port;
          dst_port;
          added_edges = List.sort compare added;
          paths;
          n_paths = List.length paths;
          ilp_nodes = !total_nodes;
          loop_cuts = !total_cuts;
          solver = !total_stats;
          degraded = true;
        }
  in
  let rec attempt k =
    if k > max_paths || !total_nodes >= node_limit || Mf_util.Budget.over budget then begin
      match heuristic_config k with
      | Some config -> Ok config
      | None ->
        Error
          (Mf_util.Fail.v ~nodes:!total_nodes Mf_util.Fail.Pathgen
             (Printf.sprintf "no DFT configuration with at most %d test paths" max_paths))
    end
    else begin
      let model =
        Mf_util.Prof.time "pathgen.build_model" (fun () ->
            build_model chip ~weights ~k ~s_node ~t_node)
      in
      let n_cuts = ref 0 in
      let lazy_cuts sol =
        let cuts = loop_cuts_of chip model ~s_node sol in
        n_cuts := !n_cuts + List.length cuts;
        cuts
      in
      (* branch first on path edges that would create new channels: they
         drive the objective *)
      let is_free = Array.make (Ilp.n_vars model.ilp) false in
      for r = 0 to k - 1 do
        Array.iteri (fun e v -> if model.s_var.(e) >= 0 then is_free.(v) <- true) model.e_var.(r)
      done;
      let branch_priority v = if is_free.(v) then 0 else 1 in
      (* escalating per-attempt budgets: a tight proof that k paths do not
         suffice is expensive, so small k gets a small budget and we move
         on; the budget grows with k where solutions are usually found *)
      let attempt_budget = min (node_limit - !total_nodes) (300 * (1 lsl (k - 2))) in
      let outcome =
        Mf_util.Prof.time "pathgen.ilp_solve" (fun () ->
            Ilp.solve ~node_limit:(max 100 attempt_budget) ?budget ~lazy_cuts ~branch_priority
              ~upper_bound:(heuristic_cost +. 1e-6) ~warm ?presolve ?cuts ?pool model.ilp)
      in
      total_cuts := !total_cuts + !n_cuts;
      total_nodes := !total_nodes + Ilp.nodes_explored model.ilp;
      let st = Ilp.last_stats model.ilp in
      total_stats := Ilp.add_stats !total_stats st;
      Mf_util.Prof.add_count "pathgen.ilp_solve" st.Ilp.rs_nodes;
      Mf_util.Prof.add_count "lp.pivots" (st.Ilp.rs_primal_pivots + st.Ilp.rs_dual_pivots);
      match outcome with
      | Ilp.Optimal sol | Ilp.Feasible sol ->
        let paths = extract_paths chip model ~s_node ~t_node sol in
        let added = Hashtbl.create 8 in
        List.iter
          (fun path ->
            List.iter (fun j -> if not (Bitset.mem orig j) then Hashtbl.replace added j ()) path)
          paths;
        let added_edges = List.sort compare (Hashtbl.fold (fun j () acc -> j :: acc) added []) in
        Ok
          {
            src_port;
            dst_port;
            added_edges;
            paths;
            n_paths = k;
            ilp_nodes = !total_nodes;
            loop_cuts = !total_cuts;
            solver = !total_stats;
            degraded = false;
          }
      | Ilp.Infeasible | Ilp.Node_limit -> attempt (k + 1)
      | Ilp.Failed _ ->
        (* a typed solver failure (defective relaxation) degrades exactly
           like an exhausted budget: try more paths, then the heuristic *)
        attempt (k + 1)
    end
  in
  attempt 2

let apply chip config = Chip.augment chip ~edges:config.added_edges
