(** Targeted repair of a test-vector suite.

    The ILP guarantees every original channel lies on a test path, but a
    fault can still escape detection: an unvalved parallel segment may keep
    the meter pressurised when a path edge is blocked (stuck-at-0 masking),
    and a minimum cut through a valve may not exist for the chosen
    terminals (stuck-at-1).  [run] measures coverage by fault simulation
    and adds dedicated vectors for every escaped fault:

    - stuck-at-0 at edge [e]: alternative source→meter paths through [e]
      (several detours are tried; a candidate is kept only when simulation
      confirms detection);
    - stuck-at-1 at valve [v]: the paper's worst-case construction — close
      every valve except those on one leak path through [v], so the only
      possible pressure route runs through the defect.

    Every entry point takes [?present], a field-fault context
    ({!Mf_faults.Pressure.context}): candidate routes avoid context-blocked
    edges and every candidate is confirmed by simulation {e on the degraded
    chip}, which is what the fault-adaptive repair engine needs. *)

val candidates_sa0 :
  ?present:Mf_faults.Pressure.context ->
  Mf_arch.Chip.t -> s:int -> t:int -> int -> int list list
(** [candidates_sa0 chip ~s ~t e] is every distinct candidate path (edge
    lists, source node [s] to meter node [t]) confirmed by simulation to
    detect stuck-at-0 at edge [e].  Deterministic; may be empty. *)

val candidates_sa1 :
  ?present:Mf_faults.Pressure.context ->
  Mf_arch.Chip.t -> s:int -> t:int -> int -> int list list
(** Same for stuck-at-1 at a valve id: every distinct confirmed cut
    (valve-id lists). *)

val repair_sa0 :
  ?present:Mf_faults.Pressure.context ->
  Mf_arch.Chip.t -> s:int -> t:int -> int -> int list option
(** First confirmed candidate of {!candidates_sa0}, if any. *)

val repair_sa1 :
  ?present:Mf_faults.Pressure.context ->
  Mf_arch.Chip.t -> s:int -> t:int -> int -> int list option
(** First confirmed candidate of {!candidates_sa1}, if any. *)

val run : ?present:Mf_faults.Pressure.context -> Mf_arch.Chip.t -> Vectors.t -> Vectors.t
(** [run chip suite] returns the suite extended with repair vectors.  The
    result is not guaranteed complete (genuinely untestable faults remain
    uncovered); callers re-validate with {!Vectors.validate}. *)
