module Chip = Mf_arch.Chip
module Vector = Mf_faults.Vector
module Coverage = Mf_faults.Coverage

type t = {
  source_port : int;
  meter_port : int;
  path_edges : int list list;
  cut_valves : int list list;
}

let of_config (config : Pathgen.config) (cuts : Cutgen.result) =
  {
    source_port = config.src_port;
    meter_port = config.dst_port;
    path_edges = config.paths;
    cut_valves = cuts.cuts;
  }

let vectors chip t =
  let ports = Chip.ports chip in
  let source = ports.(t.source_port).node in
  let meters = [ ports.(t.meter_port).node ] in
  List.map (Vector.of_path chip ~source ~meters) t.path_edges
  @ List.map (Vector.of_cut chip ~source ~meters) t.cut_valves

let count t = List.length t.path_edges + List.length t.cut_valves

let validate ?present chip t = Coverage.measure ?present chip (vectors chip t)

let is_valid ?present chip t = Coverage.complete (validate ?present chip t)
