module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Bitset = Mf_util.Bitset
module Rng = Mf_util.Rng
module Vector = Mf_faults.Vector
module Pressure = Mf_faults.Pressure
module Fault = Mf_faults.Fault

let channel_pred chip present via f =
  f <> via
  && Chip.is_channel chip f
  && match present with None -> true | Some ctx -> not (Pressure.blocked ctx f)

(* Edges that conduct under *every* vector: unvalved channels, plus valves
   the context leaves stuck open.  A path/cut vector's conducting graph is
   exactly its own path plus these, so masking analysis reduces to the
   components they induce. *)
let always_conducting chip present f =
  Chip.is_channel chip f
  && (match present with Some ctx when Pressure.blocked ctx f -> false | _ -> true)
  &&
  match Chip.valve_on chip f with
  | None -> true
  | Some v -> (
      match present with Some ctx -> Pressure.stuck_open ctx v.valve_id | None -> false)

(* Union-find labels of the components of the always-conducting subgraph
   minus [via]: two nodes with one label are connected whatever the vector
   does, so a detour reentering a used label would mask the target edge. *)
let conduction_components chip present ~via =
  let g = Grid.graph (Chip.grid chip) in
  let nn = Graph.n_nodes g in
  let parent = Array.init nn Fun.id in
  let rec find i = if parent.(i) = i then i else begin
    let r = find parent.(i) in
    parent.(i) <- r;
    r
  end in
  for f = 0 to Graph.n_edges g - 1 do
    if f <> via && always_conducting chip present f then begin
      let u, v = Graph.endpoints g f in
      let ru = find u and rv = find v in
      if ru <> rv then parent.(ru) <- rv
    end
  done;
  fun n -> find n

(* A source→meter path through channel edge [via] on which [via] stays a
   {e bridge} of the realized conducting graph: the two halves are disjoint
   at the level of always-conducting components, so no vector-independent
   detour can reconnect around [via].  [weight] steers the detour. *)
let bridge_path_through chip ?present ~s ~t ~via ~weight () =
  let g = Grid.graph (Chip.grid chip) in
  let a, b = Graph.endpoints g via in
  let channel = channel_pred chip present via in
  let comp = conduction_components chip present ~via in
  if comp a = comp b then None (* an always-conducting detour spans [via] itself *)
  else begin
    let try_orientation (a, b) =
      match Traverse.dijkstra g ~allowed:channel ~weight ~src:s ~dst:a with
      | None -> None
      | Some (_, half1) ->
        let used = Bitset.create (Graph.n_nodes g) in
        List.iter (fun n -> Bitset.add used (comp n)) (Traverse.path_nodes g ~src:s half1);
        if Bitset.mem used (comp b) || Bitset.mem used (comp t) then None
        else begin
          let avoid f =
            channel f
            &&
            let u, v = Graph.endpoints g f in
            let fresh n =
              let c = comp n in
              c = comp b || c = comp t || not (Bitset.mem used c)
            in
            fresh u && fresh v
          in
          match Traverse.dijkstra g ~allowed:avoid ~weight ~src:b ~dst:t with
          | None -> None
          | Some (_, half2) -> Some (half1 @ (via :: half2))
        end
    in
    match try_orientation (a, b) with Some p -> Some p | None -> try_orientation (b, a)
  end

let candidate_paths chip ?present ~s ~t ~via () =
  let g = Grid.graph (Chip.grid chip) in
  let ne = Graph.n_edges g in
  let rng = Rng.create ~seed:(31 + via) in
  (* riding along always-conducting edges is free of masking risk (they are
     live either way), so bias the detour search toward them *)
  let discount f = if always_conducting chip present f then 0.125 else 1. in
  List.filter_map
    (fun attempt ->
      let weight =
        if attempt = 0 then discount
        else begin
          let noise = Array.init ne (fun _ -> Rng.float rng 4.) in
          fun f -> discount f *. (1. +. noise.(f))
        end
      in
      bridge_path_through chip ?present ~s ~t ~via ~weight ())
    (List.init 6 Fun.id)

let dedup lists =
  let rec go seen = function
    | [] -> []
    | x :: rest -> if List.mem x seen then go seen rest else x :: go (x :: seen) rest
  in
  go [] lists

(* Complete (up to the cap) fallback: the heuristic above can miss routes
   whose halves must thread between always-conducting components, the exact
   contracted-graph search cannot. *)
let exact_route chip ?present ~s ~t ~via () =
  let g = Grid.graph (Chip.grid chip) in
  let allowed f =
    Chip.is_channel chip f
    && match present with Some ctx -> not (Pressure.blocked ctx f) | None -> true
  in
  let contract f = always_conducting chip present f in
  match
    Mf_graph.Disjoint.route_through g ~allowed ~contract ~origins:[ s ] ~target:t ~via
      ~cap:Mf_graph.Disjoint.default_cap
  with
  | Mf_graph.Disjoint.Route p -> [ p ]
  | Mf_graph.Disjoint.No_route | Mf_graph.Disjoint.Capped -> []

let candidates_sa0 ?present chip ~s ~t edge =
  let accept path =
    let vec = Vector.of_path chip ~source:s ~meters:[ t ] path in
    Pressure.well_formed ?present chip vec
    && Pressure.detects ?present chip vec (Fault.Stuck_at_0 edge)
  in
  dedup
    (List.filter accept
       (candidate_paths chip ?present ~s ~t ~via:edge ()
       @ exact_route chip ?present ~s ~t ~via:edge ()))

let repair_sa0 ?present chip ~s ~t edge =
  match candidates_sa0 ?present chip ~s ~t edge with [] -> None | p :: _ -> Some p

(* Worst-case stuck-at-1 vector (Sec. 3): close every valve except those on
   one leak path through the defective valve, so pressure at the meter can
   only mean that [v] failed to close. *)
let candidates_sa1 ?present chip ~s ~t valve_id =
  let v = (Chip.valves chip).(valve_id) in
  let cut_of path =
    let open_valves =
      List.filter_map
        (fun f ->
          match Chip.valve_on chip f with
          | Some (w : Chip.valve) when w.valve_id <> valve_id -> Some w.valve_id
          | Some _ | None -> None)
        path
    in
    let cut =
      List.init (Chip.n_valves chip) Fun.id
      |> List.filter (fun w -> not (List.mem w open_valves))
    in
    let vec = Vector.of_cut chip ~source:s ~meters:[ t ] cut in
    if
      Pressure.well_formed ?present chip vec
      && Pressure.detects ?present chip vec (Fault.Stuck_at_1 valve_id)
    then Some cut
    else None
  in
  dedup
    (List.filter_map cut_of
       (candidate_paths chip ?present ~s ~t ~via:v.edge ()
       @ exact_route chip ?present ~s ~t ~via:v.edge ()))

let repair_sa1 ?present chip ~s ~t valve_id =
  match candidates_sa1 ?present chip ~s ~t valve_id with [] -> None | c :: _ -> Some c

let run ?present chip (suite : Vectors.t) =
  let report = Vectors.validate ?present chip suite in
  let ports = Chip.ports chip in
  let s = ports.(suite.source_port).node and t = ports.(suite.meter_port).node in
  let extra_paths =
    List.filter_map (fun e -> repair_sa0 ?present chip ~s ~t e) report.sa0_undetected
  in
  let extra_cuts =
    List.filter_map (fun v -> repair_sa1 ?present chip ~s ~t v) report.sa1_undetected
  in
  {
    suite with
    Vectors.path_edges = suite.Vectors.path_edges @ extra_paths;
    cut_valves = suite.Vectors.cut_valves @ extra_cuts;
  }
