(** Assembly of a complete single-source / single-meter test-vector suite
    from a DFT configuration, and its re-validation under control-line
    sharing (Sec. 4.1).

    The suite stores the {e intent} of every vector (which edges form each
    test path, which valves form each cut); actual control-line activations
    are recomputed against a chip, so the same suite can be re-applied to a
    re-wired chip (valve sharing) and checked by fault simulation. *)

type t = {
  source_port : int;
  meter_port : int;
  path_edges : int list list;
  cut_valves : int list list;
}

val of_config : Pathgen.config -> Cutgen.result -> t

val vectors : Mf_arch.Chip.t -> t -> Mf_faults.Vector.t list
(** Materialise the suite against a chip (augmented, with or without
    sharing applied). *)

val count : t -> int
(** Total number of test vectors (paths + cuts), the Fig. 8 metric. *)

val validate :
  ?present:Mf_faults.Pressure.context -> Mf_arch.Chip.t -> t -> Mf_faults.Coverage.report
(** Exhaustive fault simulation of the suite against the given chip.  With
    sharing applied this is exactly the validation step of Sec. 4.1: a
    sharing scheme is acceptable only when the report is
    {!Mf_faults.Coverage.complete}.  With [?present] the suite is validated
    on the degraded chip (field faults simulated as physically there) over
    the remaining fault universe — see {!Mf_faults.Coverage.measure}. *)

val is_valid : ?present:Mf_faults.Pressure.context -> Mf_arch.Chip.t -> t -> bool
