(** ILP-based single-source / single-meter test-path generation: the
    formulation of Sec. 3, constraints (1)–(4) with objective (5) and lazy
    loop-elimination cuts.

    The result is a {e DFT configuration}: which free grid edges must be
    added as channels (each carrying a DFT valve) so that [n_paths] paths
    from the source port to the meter port jointly cover every original
    channel edge. *)

type config = {
  src_port : int;  (** port id of the pressure source *)
  dst_port : int;  (** port id of the pressure meter *)
  added_edges : int list;  (** free grid edges promoted to DFT channels *)
  paths : int list list;  (** ordered edge lists, each from source to meter *)
  n_paths : int;
  ilp_nodes : int;  (** LP relaxations solved, for the ablation bench *)
  loop_cuts : int;  (** lazy loop-elimination constraints added *)
  solver : Mf_ilp.Ilp.run_stats;
      (** LP-core effort aggregated over every branch-and-bound run behind
          this configuration (warm starts, cache hits, pivots) *)
  degraded : bool;
      (** [true] when the configuration came from the greedy heuristic
          fallback (ILP budget exhausted) rather than the ILP itself *)
}

val farthest_ports : Mf_arch.Chip.t -> int * int
(** The pair of port ids at maximal hop distance through the existing
    channel network (Sec. 3: long test paths cover more of the chip).
    Ties break toward the smallest ids. *)

val generate :
  ?weights:(int -> float) ->
  ?src_port:int ->
  ?dst_port:int ->
  ?max_paths:int ->
  ?node_limit:int ->
  ?budget:Mf_util.Budget.t ->
  ?warm:bool ->
  ?presolve:bool ->
  ?cuts:bool ->
  ?pool:Mf_util.Domain_pool.t ->
  Mf_arch.Chip.t ->
  (config, Mf_util.Fail.t) result
(** Solve the DFT path formulation, growing the path count from 2 until
    feasible (Sec. 3).  [weights] biases objective (5) per free edge
    (default all 1) — the hook the outer PSO uses to explore alternative
    optimal configurations; weights must be >= some positive value.
    [max_paths] defaults to 8.

    Degradation ladder: when [node_limit] (cumulative LP relaxations across
    the escalating per-[k] attempts) or [budget] runs out, the
    multi-restart greedy cover is returned with [degraded = true] —
    [node_limit:0] forces it outright.  A typed solver failure
    ({!Mf_ilp.Ilp.outcome.Failed}) degrades the same way.  [Error] only
    when even the heuristic cannot cover the chip within [max_paths] paths.

    [warm] (default true), [presolve] and [cuts] (both default true in the
    solver) are passed through to {!Mf_ilp.Ilp.solve} — each changes effort,
    not results.  [pool] parallelises each branch-and-bound's relaxation
    batches across its domains; results, including the [solver] stats in
    the returned configuration, are bit-identical for any pool size. *)

val apply : Mf_arch.Chip.t -> config -> Mf_arch.Chip.t
(** Augment the chip with the configuration's added edges. *)
