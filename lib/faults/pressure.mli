(** Pressure-propagation simulation: the test-bench physics of Sec. 2.

    Air injected at the source port spreads through every conducting channel
    edge; a meter reads pressure iff it is in the connected component of the
    source.  An edge conducts when it carries a channel, is not blocked by a
    stuck-at-0 defect, and its valve (if any) is open — either because its
    control line is inactive or because the valve is stuck-at-1.

    {b Fault contexts.}  Every query takes an optional [?present] context: a
    set of faults simulated as {e already on the chip} (field faults the
    repair engine adapts to).  A present stuck-at-0 blocks its edge in every
    simulation, a present stuck-at-1 keeps its valve conducting, a present
    leak feeds its valve seat whenever its line is pressurised.  [?fault]
    remains the {e candidate} fault under test, injected on top of the
    context; {!detects} compares readings with and without it, both under
    the same context. *)

type context
(** A compiled fault set; build once per fault state, reuse across vectors. *)

val context : Mf_arch.Chip.t -> Fault.t list -> context
val context_faults : context -> Fault.t list

val blocked : context -> int -> bool
(** Is this edge stuck-at-0 in the context? *)

val stuck_open : context -> int -> bool
(** Is this valve stuck-at-1 in the context? *)

val conducts :
  Mf_arch.Chip.t -> ?present:context -> ?fault:Fault.t -> active_lines:Mf_util.Bitset.t ->
  int -> bool
(** Does a single edge conduct under the given control state, fault context
    and optional injected fault? *)

val reading : Mf_arch.Chip.t -> ?present:context -> ?fault:Fault.t -> Vector.t -> bool
(** [reading chip ?present ?fault v] applies vector [v] and reports whether
    any meter observes pressure. *)

val readings : Mf_arch.Chip.t -> ?present:context -> ?fault:Fault.t -> Vector.t -> bool list
(** Per-meter readings, in [v.meters] order. *)

val detects : ?present:context -> Mf_arch.Chip.t -> Vector.t -> Fault.t -> bool
(** A vector detects a fault when the faulty reading of {e some} meter
    differs from its fault-free reading (each meter is observed
    independently on the test bench).  Both readings are taken under the
    same [present] context. *)

val well_formed : ?present:context -> Mf_arch.Chip.t -> Vector.t -> bool
(** The vector's context-only reading (no candidate fault) matches its
    [expected] field — the basic sanity required before a vector may enter
    a test set.  Under a non-empty context this is the {e damage test}: a
    path vector that traverses a blocked edge, or a cut vector defeated by
    a stuck-open valve, is no longer well-formed. *)
