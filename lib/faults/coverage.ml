module Chip = Mf_arch.Chip

type report = {
  total_faults : int;
  detected : int;
  sa0_undetected : int list;
  sa1_undetected : int list;
  leak_undetected : int list;
  malformed : int;
}

let complete r =
  r.malformed = 0 && r.sa0_undetected = [] && r.sa1_undetected = [] && r.leak_undetected = []

let ratio r = if r.total_faults = 0 then 1. else float_of_int r.detected /. float_of_int r.total_faults

let measure ?(include_leaks = false) ?present chip vectors =
  let malformed =
    List.fold_left
      (fun n v -> if Pressure.well_formed ?present chip v then n else n + 1)
      0 vectors
  in
  let faults = if include_leaks then Fault.all_with_leaks chip else Fault.all chip in
  let faults =
    (* faults already present on the chip are the simulation baseline, not
       test targets: detection is measured over the remaining universe *)
    match present with
    | None -> faults
    | Some ctx ->
      let ctx_faults = Pressure.context_faults ctx in
      List.filter (fun f -> not (List.exists (Fault.equal f) ctx_faults)) faults
  in
  let detected = ref 0 in
  let sa0_undetected = ref [] in
  let sa1_undetected = ref [] in
  let leak_undetected = ref [] in
  List.iter
    (fun fault ->
      if List.exists (fun v -> Pressure.detects ?present chip v fault) vectors then
        incr detected
      else
        match fault with
        | Fault.Stuck_at_0 e -> sa0_undetected := e :: !sa0_undetected
        | Fault.Stuck_at_1 v -> sa1_undetected := v :: !sa1_undetected
        | Fault.Leak v -> leak_undetected := v :: !leak_undetected)
    faults;
  {
    total_faults = List.length faults;
    detected = !detected;
    sa0_undetected = List.rev !sa0_undetected;
    sa1_undetected = List.rev !sa1_undetected;
    leak_undetected = List.rev !leak_undetected;
    malformed;
  }

let pp ppf r =
  Fmt.pf ppf "coverage %d/%d%s%s%s%s" r.detected r.total_faults
    (if r.sa0_undetected = [] then "" else Fmt.str " sa0-miss=%a" Fmt.(list ~sep:comma int) r.sa0_undetected)
    (if r.sa1_undetected = [] then "" else Fmt.str " sa1-miss=%a" Fmt.(list ~sep:comma int) r.sa1_undetected)
    (if r.leak_undetected = [] then "" else Fmt.str " leak-miss=%a" Fmt.(list ~sep:comma int) r.leak_undetected)
    (if r.malformed = 0 then "" else Fmt.str " malformed=%d" r.malformed)
