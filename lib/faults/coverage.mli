(** Fault-coverage measurement of a vector set (used both to validate DFT
    architectures and to score valve-sharing schemes, Sec. 4.1). *)

type report = {
  total_faults : int;
  detected : int;
  sa0_undetected : int list;  (** channel edges whose blockage escapes *)
  sa1_undetected : int list;  (** valve ids whose stuck-open escapes *)
  leak_undetected : int list;  (** valve ids whose control-layer leak escapes *)
  malformed : int;  (** vectors whose fault-free reading is wrong *)
}

val complete : report -> bool
(** All faults detected and every vector well-formed. *)

val ratio : report -> float
(** Detected fraction, in [0, 1]. *)

val measure :
  ?include_leaks:bool -> ?present:Pressure.context -> Mf_arch.Chip.t -> Vector.t list ->
  report
(** Exhaustive single-fault simulation of the vector set.  The default
    universe is the paper's demonstration scope (stuck-at-0/1);
    [include_leaks] extends it with the control-to-flow leak per valve.
    With [?present], simulation runs on the degraded chip (the context's
    faults are treated as physically there) and the universe excludes the
    context faults themselves — the repair engine's re-validation view. *)

val pp : Format.formatter -> report -> unit
