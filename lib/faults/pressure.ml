module Chip = Mf_arch.Chip
module Bitset = Mf_util.Bitset
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse

(* A set of faults treated as *present* on the chip — the field-fault
   context the repair engine simulates against.  Compiled to bitsets so the
   inner reachability loops pay one [mem] per edge, not a list scan. *)
type context = {
  ctx_faults : Fault.t list;
  ctx_blocked : Bitset.t; (* edge ids with a present stuck-at-0 *)
  ctx_open : Bitset.t; (* valve ids with a present stuck-at-1 *)
  ctx_leaks : int list; (* valve ids with a present control-to-flow leak *)
}

let context chip faults =
  let g = Grid.graph (Chip.grid chip) in
  let blocked = Bitset.create (Graph.n_edges g) in
  let open_ = Bitset.create (max 1 (Chip.n_valves chip)) in
  let leaks = ref [] in
  List.iter
    (function
      | Fault.Stuck_at_0 e -> Bitset.add blocked e
      | Fault.Stuck_at_1 v -> Bitset.add open_ v
      | Fault.Leak v -> if not (List.mem v !leaks) then leaks := v :: !leaks)
    faults;
  { ctx_faults = faults; ctx_blocked = blocked; ctx_open = open_; ctx_leaks = List.rev !leaks }

let context_faults c = c.ctx_faults
let blocked c e = Bitset.mem c.ctx_blocked e
let stuck_open c v = Bitset.mem c.ctx_open v

let conducts chip ?present ?fault ~active_lines e =
  Chip.is_channel chip e
  && (match present with Some c when Bitset.mem c.ctx_blocked e -> false | _ -> true)
  && (match fault with Some (Fault.Stuck_at_0 e') when e' = e -> false | _ -> true)
  &&
  match Chip.valve_on chip e with
  | None -> true
  | Some v ->
    (not (Bitset.mem active_lines v.control))
    || (match present with Some c when Bitset.mem c.ctx_open v.valve_id -> true | _ -> false)
    || (match fault with Some (Fault.Stuck_at_1 v') -> v' = v.valve_id | _ -> false)

let reach chip ?present ?fault (v : Vector.t) =
  let g = Grid.graph (Chip.grid chip) in
  let allowed e = conducts chip ?present ?fault ~active_lines:v.active_lines e in
  let from_source = Traverse.reachable g ~allowed ~src:v.source in
  (* a control-to-flow leak injects air at the valve seat whenever its
     control line is pressurised, independent of the test source *)
  let leak_in w =
    let valve = (Chip.valves chip).(w) in
    if Bitset.mem v.active_lines valve.control then begin
      let a, b = Mf_graph.Graph.endpoints g valve.edge in
      Bitset.union_into from_source (Traverse.reachable g ~allowed ~src:a);
      Bitset.union_into from_source (Traverse.reachable g ~allowed ~src:b)
    end
  in
  (match present with None -> () | Some c -> List.iter leak_in c.ctx_leaks);
  (match fault with
   | Some (Fault.Leak w) -> leak_in w
   | Some (Fault.Stuck_at_0 _ | Fault.Stuck_at_1 _) | None -> ());
  from_source

let reading chip ?present ?fault (v : Vector.t) =
  let r = reach chip ?present ?fault v in
  List.exists (fun meter -> Bitset.mem r meter) v.meters

let readings chip ?present ?fault (v : Vector.t) =
  let r = reach chip ?present ?fault v in
  List.map (fun meter -> Bitset.mem r meter) v.meters

let detects ?present chip (v : Vector.t) fault =
  readings chip ?present ~fault v <> readings chip ?present v

let well_formed ?present chip (v : Vector.t) =
  (* every meter must agree with the vector's expectation when no defect is
     present: a path/tree vector pressurises all its meters, a cut vector
     none of them *)
  List.for_all (fun r -> r = v.expected) (readings chip ?present v)
