let certificate chip cert =
  Mf_util.Diag.by_severity
    (Lint.chip chip @ Cert.check chip cert @ Conflict.suite chip cert.Cert.suite)

let chip_and_schedule chip sched =
  Mf_util.Diag.by_severity (Lint.chip chip @ Conflict.schedule chip sched)
