module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Bitset = Mf_util.Bitset
module Diag = Mf_util.Diag
module Schedule = Mf_sched.Schedule

(* ------------------------------------------------------------------ *)
(* MF201: per-vector conflicts.

   Every test vector splits the valve set in two: valves it needs open
   (path valves under a path vector, non-cut valves under a cut vector)
   and valves it needs closed.  A control line with a foot in both camps
   cannot realize the vector — whichever state the line takes betrays one
   side. *)

let vector_conflicts chip ~subject ~kind ~open_intent =
  let n = Chip.n_controls chip in
  (* per line, a representative valve from each camp *)
  let wants_open = Array.make n None in
  let wants_closed = Array.make n None in
  Array.iter
    (fun (v : Chip.valve) ->
      let camp = if open_intent v then wants_open else wants_closed in
      if camp.(v.control) = None then camp.(v.control) <- Some v.valve_id)
    (Chip.valves chip);
  let out = ref [] in
  for line = 0 to n - 1 do
    match (wants_open.(line), wants_closed.(line)) with
    | Some vo, Some vc ->
      out :=
        Diag.warningf ~code:"MF201" ~subject
          "%s needs valve v%d open but valve v%d closed, yet both hang on control line %d \
           (shared-line masking)"
          kind vo vc line
        :: !out
    | _ -> ()
  done;
  List.rev !out

let suite chip (s : Cert.suite) =
  let on_path edges =
    let set = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace set e ()) edges;
    fun (v : Chip.valve) -> Hashtbl.mem set v.edge
  in
  let from_paths =
    List.concat
      (List.mapi
         (fun i edges ->
           vector_conflicts chip
             ~subject:(Printf.sprintf "path #%d" i)
             ~kind:(Printf.sprintf "path vector #%d" i)
             ~open_intent:(on_path edges))
         s.Cert.path_edges)
  in
  let from_cuts =
    List.concat
      (List.mapi
         (fun i valves ->
           let cut = Hashtbl.create 8 in
           List.iter (fun v -> Hashtbl.replace cut v ()) valves;
           vector_conflicts chip
             ~subject:(Printf.sprintf "cut #%d" i)
             ~kind:(Printf.sprintf "cut vector #%d" i)
             ~open_intent:(fun (v : Chip.valve) -> not (Hashtbl.mem cut v.valve_id)))
         s.Cert.cut_valves)
  in
  from_paths @ from_cuts

(* ------------------------------------------------------------------ *)
(* MF202: schedule-step conflicts.

   Replays the event log and re-derives, for every transport, the state
   the scheduler saw: concurrent transports, fluid resting in storage
   pockets, devices mid-operation.  Then re-applies the Sec. 4.1 legality
   rule from scratch: any valve forced open by the released control lines
   and not on a moving route must not touch a protected node. *)

type interval = { i_start : int; i_finish : int }

let overlaps a b = a.i_start < b.i_finish && b.i_start < a.i_finish

type transport = { tr_path : int list; tr_ival : interval; tr_unit : int }

(* Storage occupancy: a unit rests on its pocket edge from Unit_stored
   until its next Transport_started (else the makespan). *)
let storage_intervals (sched : Schedule.t) =
  let starts u after =
    List.filter_map
      (function
        | Schedule.Transport_started { unit_id; time; _ } when unit_id = u && time >= after ->
          Some time
        | _ -> None)
      sched.events
    |> List.fold_left (fun acc t -> match acc with Some b when b <= t -> acc | _ -> Some t) None
  in
  List.filter_map
    (function
      | Schedule.Unit_stored { unit_id; edge; time } ->
        let finish = Option.value (starts unit_id time) ~default:sched.makespan in
        Some (edge, { i_start = time; i_finish = finish })
      | _ -> None)
    sched.events

(* Device busy windows: Op_started .. matching Op_finished. *)
let device_intervals (sched : Schedule.t) =
  List.filter_map
    (function
      | Schedule.Op_started { op; device; time } ->
        let finish =
          List.filter_map
            (function
              | Schedule.Op_finished { op = o; device = d; time = t }
                when o = op && d = device && t >= time ->
                Some t
              | _ -> None)
            sched.events
          |> List.fold_left
               (fun acc t -> match acc with Some b when b <= t -> acc | _ -> Some t)
               None
        in
        Some (device, { i_start = time; i_finish = Option.value finish ~default:sched.makespan })
      | _ -> None)
    sched.events

let path_nodes g edges =
  List.concat_map
    (fun e ->
      let u, v = Graph.endpoints g e in
      [ u; v ])
    edges

let schedule chip (sched : Schedule.t) =
  let g = Grid.graph (Chip.grid chip) in
  let transports =
    List.filter_map
      (function
        | Schedule.Transport_started { unit_id; path; time; finish } ->
          Some { tr_path = path; tr_ival = { i_start = time; i_finish = finish }; tr_unit = unit_id }
        | _ -> None)
      sched.events
  in
  let storage = storage_intervals sched in
  let busy = device_intervals sched in
  let devices = Chip.devices chip in
  let out = ref [] in
  List.iteri
    (fun i tr ->
      let concurrent =
        List.filteri (fun j other -> j <> i && overlaps tr.tr_ival other.tr_ival) transports
      in
      (* lines released while this transport moves *)
      let inactive = Bitset.create (Chip.n_controls chip) in
      let release edges =
        List.iter
          (fun e ->
            match Chip.valve_on chip e with
            | Some v -> Bitset.add inactive v.control
            | None -> ())
          edges
      in
      release tr.tr_path;
      List.iter (fun other -> release other.tr_path) concurrent;
      let moving_edges = Bitset.create (Graph.n_edges g) in
      List.iter (Bitset.add moving_edges) tr.tr_path;
      List.iter (fun other -> List.iter (Bitset.add moving_edges) other.tr_path) concurrent;
      let protected_nodes = Bitset.create (Graph.n_nodes g) in
      List.iter (Bitset.add protected_nodes) (path_nodes g tr.tr_path);
      List.iter
        (fun other -> List.iter (Bitset.add protected_nodes) (path_nodes g other.tr_path))
        concurrent;
      List.iter
        (fun (edge, ival) ->
          if overlaps tr.tr_ival ival then begin
            let u, v = Graph.endpoints g edge in
            Bitset.add protected_nodes u;
            Bitset.add protected_nodes v
          end)
        storage;
      List.iter
        (fun (device, ival) ->
          if overlaps tr.tr_ival ival && device >= 0 && device < Array.length devices then
            Bitset.add protected_nodes devices.(device).Chip.node)
        busy;
      Array.iter
        (fun (v : Chip.valve) ->
          if
            Bitset.mem inactive v.control
            && not (Bitset.mem moving_edges v.edge)
          then begin
            let a, b = Graph.endpoints g v.edge in
            if Bitset.mem protected_nodes a || Bitset.mem protected_nodes b then
              out :=
                Diag.warningf ~code:"MF202"
                  ~subject:(Printf.sprintf "transport of unit %d at t=%d" tr.tr_unit tr.tr_ival.i_start)
                  "transport of unit %d at t=%d releases control line %d, forcing valve v%d \
                   open against a resting fluid or busy device (shared-line hazard)"
                  tr.tr_unit tr.tr_ival.i_start v.control v.valve_id
                :: !out
          end)
        (Chip.valves chip))
    transports;
  List.rev !out
