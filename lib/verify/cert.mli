(** DFT test certificates: the artifact a codesign/testgen/repair run
    {e claims} (its suite, fault context and coverage), re-proved here
    without the solver stack.

    The checker is deliberately independent of [Mf_ilp]/[Mf_lp]/[Mf_pso]
    and of the generation-side fault simulator: paths and cuts are
    re-proved with plain graph reachability ({!Mf_graph.Traverse}), and
    coverage is re-measured by a self-contained single-fault simulation
    over the {!Mf_faults.Fault} universe.  A bug in the ILP path generator,
    the cut generator, the sharing validator, the degradation ladder or the
    repair engine therefore cannot vouch for itself.

    A certificate may carry a fault {e context} — defects declared
    physically present, as produced by the fault-adaptive repair engine —
    in which case every claim is re-proved on the degraded chip and the
    coverage universe excludes the context.  Escapes are tolerated only
    when individually {e waived}, and each waiver must survive an
    independent structural-untestability audit ([MF106]).

    Codes (catalog in DESIGN.md §9):
    - [MF101] (error) a claimed test path is not an open source→meter path
      under its own vector (on the degraded chip, given a context);
    - [MF102] (error) a claimed test cut fails to disconnect source from
      meter when its valves close;
    - [MF103] (error) the suite's stuck-at-0/1 coverage does not match the
      claim, an unwaived fault escapes the suite, or a waived fault is in
      fact detected;
    - [MF104] (error) a vector is malformed: its fault-free reading
      contradicts its expectation;
    - [MF105] (error) the certificate references ids outside the chip
      (ports, edges, valves, faults); (warning) certificate/chip name
      mismatch;
    - [MF106] (error) a waiver is not supported by the checker's own sound
      structural-untestability analysis. *)

type suite = {
  source_port : int;
  meter_port : int;
  path_edges : int list list;
  cut_valves : int list list;
}
(** Structurally identical to [Mf_testgen.Vectors.t], duplicated here so
    this library does not link the solver stack; callers copy the fields. *)

type t = {
  chip_name : string;
  suite : suite;
  context : Mf_faults.Fault.t list;
      (** defects declared physically present; claims are re-proved on the
          chip degraded by them, and they are excluded from the coverage
          universe *)
  waived : Mf_faults.Fault.t list;
      (** faults the issuer declares untestable in this context; each must
          pass the [MF106] structural audit *)
  claimed_vectors : int;
  claimed_detected : int;  (** stuck-at-0/1 faults the generator claims caught *)
  claimed_total : int;  (** size of the stuck-at-0/1 universe it claims *)
}

val make :
  chip_name:string ->
  suite:suite ->
  ?context:Mf_faults.Fault.t list ->
  ?waived:Mf_faults.Fault.t list ->
  claimed_vectors:int ->
  claimed_coverage:int * int ->
  unit ->
  t
(** [context] and [waived] default to [[]], giving exactly the classic
    fault-free certificate. *)

(** {1 Checking} *)

val check : Mf_arch.Chip.t -> t -> Mf_util.Diag.t list
(** Re-prove every claim against the chip (degraded by the context when
    one is declared).  Empty result = certificate holds.  Id-range errors
    ([MF105]) suppress the deeper checks that would index out of bounds. *)

(** {1 Independent fault simulation}

    Exposed for the conflict analysis and tests.  These are the
    context-free primitives; {!check} layers the declared context on top
    internally. *)

val active_lines_of_path : Mf_arch.Chip.t -> int list -> Mf_util.Bitset.t
(** Control lines a path vector pressurises: every line except those of
    the valves on the path (the realized vector under any sharing). *)

val active_lines_of_cut : Mf_arch.Chip.t -> int list -> Mf_util.Bitset.t
(** Control lines a cut vector pressurises: exactly the lines of the cut
    valves. *)

val conducts :
  Mf_arch.Chip.t -> ?fault:Mf_faults.Fault.t -> active:Mf_util.Bitset.t -> int -> bool

val reading :
  ?fault:Mf_faults.Fault.t -> Mf_arch.Chip.t -> active:Mf_util.Bitset.t -> source:int ->
  meter:int -> bool
(** Does the meter node see pressure injected at the source node? *)

(** {1 Serialisation}

    Line-oriented [.cert] format, mirroring [.chip]/[.assay]:
    {v
    cert CHIP_NAME
    suite SRC_PORT METER_PORT
    path E1 E2 ...          # one line per test path, edge ids
    cut V1 V2 ...           # one line per test cut, valve ids
    fault sa0|sa1|leak ID   # one line per context fault (edge/valve id)
    waive sa0|sa1|leak ID   # one line per waived fault
    claim vectors N
    claim coverage DETECTED TOTAL
    v}
    Edge and valve ids are the chip's own (stable across a [.chip]
    round-trip for a given grid size and directive order).  [fault] and
    [waive] lines are absent from classic fault-free certificates, keeping
    the format backward compatible. *)

val to_string : t -> string
val save : string -> t -> unit

val parse : ?file:string -> string -> (t, Mf_util.Diag.t list) result
(** Parse failures are [MF303] (syntax) diagnostics with line/column
    spans.  Certificates are machine-written, so unknown directives are
    errors, not warnings. *)

val load : string -> (t, Mf_util.Diag.t list) result
