(** DFT test certificates: the artifact a codesign/testgen run {e claims}
    (its suite and coverage), re-proved here without the solver stack.

    The checker is deliberately independent of [Mf_ilp]/[Mf_lp]/[Mf_pso]
    and of the generation-side fault simulator: paths and cuts are
    re-proved with plain graph reachability ({!Mf_graph.Traverse}), and
    coverage is re-measured by a self-contained single-fault simulation
    over the {!Mf_faults.Fault} universe.  A bug in the ILP path generator,
    the cut generator, the sharing validator or the degradation ladder
    therefore cannot vouch for itself.

    Codes (catalog in DESIGN.md §9):
    - [MF101] (error) a claimed test path is not an open source→meter path
      under its own vector;
    - [MF102] (error) a claimed test cut fails to disconnect source from
      meter when its valves close;
    - [MF103] (error) the suite's stuck-at-0/1 coverage does not match the
      claim, or a fault escapes the suite;
    - [MF104] (error) a vector is malformed: its fault-free reading
      contradicts its expectation;
    - [MF105] (error) the certificate references ids outside the chip
      (ports, edges, valves); (warning) certificate/chip name mismatch. *)

type suite = {
  source_port : int;
  meter_port : int;
  path_edges : int list list;
  cut_valves : int list list;
}
(** Structurally identical to [Mf_testgen.Vectors.t], duplicated here so
    this library does not link the solver stack; callers copy the fields. *)

type t = {
  chip_name : string;
  suite : suite;
  claimed_vectors : int;
  claimed_detected : int;  (** stuck-at-0/1 faults the generator claims caught *)
  claimed_total : int;  (** size of the stuck-at-0/1 universe it claims *)
}

val make :
  chip_name:string ->
  suite:suite ->
  claimed_vectors:int ->
  claimed_coverage:int * int ->
  t

(** {1 Checking} *)

val check : Mf_arch.Chip.t -> t -> Mf_util.Diag.t list
(** Re-prove every claim against the chip.  Empty result = certificate
    holds.  Id-range errors ([MF105]) suppress the deeper checks that
    would index out of bounds. *)

(** {1 Independent fault simulation}

    Exposed for the conflict analysis and tests. *)

val active_lines_of_path : Mf_arch.Chip.t -> int list -> Mf_util.Bitset.t
(** Control lines a path vector pressurises: every line except those of
    the valves on the path (the realized vector under any sharing). *)

val active_lines_of_cut : Mf_arch.Chip.t -> int list -> Mf_util.Bitset.t
(** Control lines a cut vector pressurises: exactly the lines of the cut
    valves. *)

val conducts :
  Mf_arch.Chip.t -> ?fault:Mf_faults.Fault.t -> active:Mf_util.Bitset.t -> int -> bool

val reading :
  ?fault:Mf_faults.Fault.t -> Mf_arch.Chip.t -> active:Mf_util.Bitset.t -> source:int ->
  meter:int -> bool
(** Does the meter node see pressure injected at the source node? *)

(** {1 Serialisation}

    Line-oriented [.cert] format, mirroring [.chip]/[.assay]:
    {v
    cert CHIP_NAME
    suite SRC_PORT METER_PORT
    path E1 E2 ...          # one line per test path, edge ids
    cut V1 V2 ...           # one line per test cut, valve ids
    claim vectors N
    claim coverage DETECTED TOTAL
    v}
    Edge and valve ids are the chip's own (stable across a [.chip]
    round-trip for a given grid size and directive order). *)

val to_string : t -> string
val save : string -> t -> unit

val parse : ?file:string -> string -> (t, Mf_util.Diag.t list) result
(** Parse failures are [MF303] (syntax) diagnostics with line/column
    spans.  Certificates are machine-written, so unknown directives are
    errors, not warnings. *)

val load : string -> (t, Mf_util.Diag.t list) result
