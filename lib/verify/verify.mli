(** Top-level entry points combining the three analyses.  See {!Lint},
    {!Cert} and {!Conflict} for the individual passes and their codes. *)

val certificate : Mf_arch.Chip.t -> Cert.t -> Mf_util.Diag.t list
(** Lint the chip, re-prove the certificate, and scan its vectors for
    control-sharing conflicts — everything [dft_tool verify] reports,
    errors first. *)

val chip_and_schedule :
  Mf_arch.Chip.t -> Mf_sched.Schedule.t -> Mf_util.Diag.t list
(** Lint the chip and scan a schedule's event log for shared-line
    hazards. *)
