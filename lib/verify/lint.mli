(** Chip netlist linter: structural checks over a frozen {!Mf_arch.Chip.t},
    independent of the builder's own validation (belt and braces — the
    linter re-proves what [Chip.finish] promised, and catches states that
    the builder cannot see, like floating channel islands or dead-end
    channel stubs).

    Codes (see DESIGN.md §9 for the catalog):
    - [MF001] (error) duplicate placement: two devices/ports on one node,
      or two valves on one edge;
    - [MF002] (error) fewer than two ports, or a port with no incident
      channel;
    - [MF003] (error) a valve on an edge that carries no channel;
    - [MF004] (warning) dangling channel: an unvalved dead-end channel edge
      that is not a valve-enclosed storage pocket and ends at neither a
      port nor a device;
    - [MF005] (error) port or device unreachable through the channel
      network; (warning) channel edge in a component touching no port;
    - [MF006] (error) degenerate grid coordinates: an entity placed outside
      the grid, or a channel/valve edge joining non-adjacent nodes;
      (warning) a degenerate lattice — width or height below 2 — that
      leaves no room off-axis for DFT detours or storage pockets;
    - [MF007] (error) inconsistent DFT augmentation: duplicate DFT edges
      (a DFT channel overlapping another channel collapses to this), or a
      DFT edge without its DFT valve;
    - [MF008] (error) a valve's control line outside [0, n_controls);
      (warning) a control line id that drives no valve (sparse numbering
      wastes a control port);
    - [MF009] (warning) closing every valve leaves two ports connected, so
      stuck-at-1 defects on that route are untestable. *)

val chip : Mf_arch.Chip.t -> Mf_util.Diag.t list
(** All lint findings, errors first. *)
