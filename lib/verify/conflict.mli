(** Static control-sharing conflict analysis: the masking condition of
    paper Sec. 4.

    When a DFT valve borrows an original valve's control line, a test
    vector or a schedule step that needs one of them open and the other
    closed cannot realize its intent — the shared line forces both the
    same way.  Fault simulation may still pass (the forced state can be
    harmless), so these are warnings; actual coverage breakage surfaces as
    [Cert] errors.

    Codes (catalog in DESIGN.md §9):
    - [MF201] (warning) a test vector requires contradictory states from
      two valves on one control line, reporting the offending vector;
    - [MF202] (warning) a schedule step forces open a shared valve whose
      edge touches a resting fluid, a busy device or a concurrent
      transport route, reporting the offending step. *)

val suite : Mf_arch.Chip.t -> Cert.suite -> Mf_util.Diag.t list
(** [MF201] findings: for each path vector, valves on the path must open
    while every other valve closes; for each cut vector, the cut valves
    must close while every other valve releases.  Any control line driving
    valves from both sides of that split is a conflict. *)

val schedule : Mf_arch.Chip.t -> Mf_sched.Schedule.t -> Mf_util.Diag.t list
(** [MF202] findings: replays the schedule's event log (transport
    intervals, storage occupancy, device busy windows) and re-checks the
    scheduler's sharing-legality rule independently: at every transport,
    each valve forced open by the transport's released control lines and
    not on an in-flight route must not touch a storage edge's endpoints, a
    busy device's node or a concurrent transport's nodes. *)
