module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Bitset = Mf_util.Bitset
module Diag = Mf_util.Diag

let edge_str grid e = Format.asprintf "%a" (Grid.pp_edge grid) e
let node_str grid n = Format.asprintf "%a" (Grid.pp_node grid) n

(* MF001: duplicate placement. *)
let duplicates chip =
  let out = ref [] in
  let node_users : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let place node label =
    (match Hashtbl.find_opt node_users node with
     | Some other ->
       out :=
         Diag.errorf ~code:"MF001" ~subject:label "%s occupies the same grid node as %s" label
           other
         :: !out
     | None -> ());
    Hashtbl.replace node_users node label
  in
  Array.iter (fun (d : Chip.device) -> place d.node (Printf.sprintf "device %s" d.name)) (Chip.devices chip);
  Array.iter (fun (p : Chip.port) -> place p.node (Printf.sprintf "port %s" p.port_name)) (Chip.ports chip);
  let edge_valves : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (v : Chip.valve) ->
      (match Hashtbl.find_opt edge_valves v.edge with
       | Some other ->
         out :=
           Diag.errorf ~code:"MF001"
             ~subject:(Printf.sprintf "valve v%d" v.valve_id)
             "valves v%d and v%d sit on the same edge %s" other v.valve_id
             (edge_str (Chip.grid chip) v.edge)
           :: !out
       | None -> ());
      Hashtbl.replace edge_valves v.edge v.valve_id)
    (Chip.valves chip);
  List.rev !out

(* MF002: ports must exist and touch the channel network. *)
let ports_wired chip =
  let g = Grid.graph (Chip.grid chip) in
  let out = ref [] in
  if Array.length (Chip.ports chip) < 2 then
    out := Diag.errorf ~code:"MF002" "a chip needs at least two ports, found %d"
             (Array.length (Chip.ports chip))
           :: !out;
  Array.iter
    (fun (p : Chip.port) ->
      let has_channel =
        List.exists (fun (e, _) -> Chip.is_channel chip e) (Graph.incident g p.node)
      in
      if not has_channel then
        out :=
          Diag.errorf ~code:"MF002"
            ~subject:(Printf.sprintf "port %s" p.port_name)
            "port %s at %s has no incident channel" p.port_name
            (node_str (Chip.grid chip) p.node)
          :: !out)
    (Chip.ports chip);
  List.rev !out

(* MF003: every valve must sit on a channel. *)
let valves_on_channels chip =
  Array.to_list (Chip.valves chip)
  |> List.filter_map (fun (v : Chip.valve) ->
         if Chip.is_channel chip v.edge then None
         else
           Some
             (Diag.errorf ~code:"MF003"
                ~subject:(Printf.sprintf "valve v%d" v.valve_id)
                "valve v%d sits on edge %s which carries no channel" v.valve_id
                (edge_str (Chip.grid chip) v.edge)))

(* MF004: dangling channels.  A dead-end channel edge (one endpoint of
   channel-degree 1 holding neither a port nor a device) is fine only when
   it can hold fluid: the edge itself is valved, or every other channel
   edge at its open end is valved (a valve-enclosed storage pocket). *)
let dangling chip =
  let grid = Chip.grid chip in
  let g = Grid.graph grid in
  let channels = Chip.channel_edges chip in
  let channel_degree n =
    List.fold_left (fun acc (e, _) -> if Bitset.mem channels e then acc + 1 else acc) 0
      (Graph.incident g n)
  in
  let anchored n = Chip.port_at chip n <> None || Chip.device_at chip n <> None in
  let out = ref [] in
  Bitset.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      let dead n = channel_degree n = 1 && not (anchored n) in
      let check ~dead_end ~inner =
        if dead dead_end then begin
          let enclosed =
            Chip.valve_on chip e <> None
            || List.for_all
                 (fun (e', _) ->
                   e' = e || (not (Bitset.mem channels e')) || Chip.valve_on chip e' <> None)
                 (Graph.incident g inner)
          in
          if not enclosed then
            out :=
              Diag.warningf ~code:"MF004"
                ~subject:(Printf.sprintf "edge %s" (edge_str grid e))
                "channel %s dead-ends at %s without a valve enclosing it (unusable stub)"
                (edge_str grid e) (node_str grid dead_end)
              :: !out
        end
      in
      check ~dead_end:u ~inner:v;
      check ~dead_end:v ~inner:u)
    channels;
  List.rev !out

(* MF005: reachability through the channel network. *)
let reachability chip =
  let grid = Chip.grid chip in
  let g = Grid.graph grid in
  let channels = Chip.channel_edges chip in
  match Chip.ports chip with
  | [||] -> []
  | ports ->
    let allowed e = Bitset.mem channels e in
    let reach = Traverse.reachable g ~allowed ~src:ports.(0).node in
    let out = ref [] in
    Array.iter
      (fun (p : Chip.port) ->
        if not (Bitset.mem reach p.node) then
          out :=
            Diag.errorf ~code:"MF005"
              ~subject:(Printf.sprintf "port %s" p.port_name)
              "port %s is unreachable from port %s through channels" p.port_name
              ports.(0).port_name
            :: !out)
      ports;
    Array.iter
      (fun (d : Chip.device) ->
        if not (Bitset.mem reach d.node) then
          out :=
            Diag.errorf ~code:"MF005"
              ~subject:(Printf.sprintf "device %s" d.name)
              "device %s is unreachable from port %s through channels" d.name
              ports.(0).port_name
            :: !out)
      (Chip.devices chip);
    (* floating channel islands touch no port at all: harmless to the
       assay but dead silicon and untestable by any source/meter pair *)
    Bitset.iter
      (fun e ->
        let u, v = Graph.endpoints g e in
        if (not (Bitset.mem reach u)) && not (Bitset.mem reach v) then
          out :=
            Diag.warningf ~code:"MF005"
              ~subject:(Printf.sprintf "edge %s" (edge_str grid e))
              "channel %s floats in a component no port can reach" (edge_str grid e)
            :: !out)
      channels;
    List.rev !out

(* MF006: grid embedding sanity. *)
let coordinates chip =
  let grid = Chip.grid chip in
  let g = Grid.graph grid in
  let w = Grid.width grid and h = Grid.height grid in
  let out = ref [] in
  (* a lattice flattened to a single row or column cannot host valved
     detours or storage pockets off its one axis, so DFT augmentation and
     scheduling degrade; builders should leave at least a 2-wide margin *)
  if w < 2 || h < 2 then
    out :=
      Diag.warningf ~code:"MF006" ~subject:"grid"
        "degenerate %dx%d lattice leaves no room off-axis for DFT detours" w h
      :: !out;
  let check_node label n =
    let x, y = Grid.coords grid n in
    if x < 0 || x >= w || y < 0 || y >= h then
      out :=
        Diag.errorf ~code:"MF006" ~subject:label "%s lies outside the %dx%d grid" label w h
        :: !out
  in
  Array.iter (fun (d : Chip.device) -> check_node (Printf.sprintf "device %s" d.name) d.node) (Chip.devices chip);
  Array.iter (fun (p : Chip.port) -> check_node (Printf.sprintf "port %s" p.port_name) p.node) (Chip.ports chip);
  Bitset.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      let xu, yu = Grid.coords grid u and xv, yv = Grid.coords grid v in
      if abs (xu - xv) + abs (yu - yv) <> 1 then
        out :=
          Diag.errorf ~code:"MF006"
            ~subject:(Printf.sprintf "edge %s" (edge_str grid e))
            "channel %s joins non-adjacent grid nodes" (edge_str grid e)
          :: !out)
    (Chip.channel_edges chip);
  List.rev !out

(* MF007: DFT augmentation consistency. *)
let dft_consistent chip =
  let grid = Chip.grid chip in
  let out = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if Hashtbl.mem seen e then
        out :=
          Diag.errorf ~code:"MF007"
            ~subject:(Printf.sprintf "edge %s" (edge_str grid e))
            "DFT channel %s is listed twice (overlapping augmentation)" (edge_str grid e)
          :: !out
      else Hashtbl.add seen e ();
      (match Chip.valve_on chip e with
       | Some v when v.is_dft -> ()
       | Some v ->
         out :=
           Diag.errorf ~code:"MF007"
             ~subject:(Printf.sprintf "edge %s" (edge_str grid e))
             "DFT channel %s carries original valve v%d instead of a DFT valve"
             (edge_str grid e) v.valve_id
           :: !out
       | None ->
         out :=
           Diag.errorf ~code:"MF007"
             ~subject:(Printf.sprintf "edge %s" (edge_str grid e))
             "DFT channel %s carries no valve (augmentation must add one per edge)"
             (edge_str grid e)
           :: !out);
      if not (Chip.is_channel chip e) then
        out :=
          Diag.errorf ~code:"MF007"
            ~subject:(Printf.sprintf "edge %s" (edge_str grid e))
            "DFT edge %s is not a channel" (edge_str grid e)
          :: !out)
    (Chip.dft_edges chip);
  List.rev !out

(* MF008: control-line numbering. *)
let control_lines chip =
  let n = Chip.n_controls chip in
  let used = Array.make (max n 1) false in
  let out = ref [] in
  Array.iter
    (fun (v : Chip.valve) ->
      if v.control < 0 || v.control >= n then
        out :=
          Diag.errorf ~code:"MF008"
            ~subject:(Printf.sprintf "valve v%d" v.valve_id)
            "valve v%d is driven by control line %d outside [0, %d)" v.valve_id v.control n
          :: !out
      else used.(v.control) <- true)
    (Chip.valves chip);
  if Array.length (Chip.valves chip) > 0 then
    for line = 0 to n - 1 do
      if not used.(line) then
        out :=
          Diag.warningf ~code:"MF008"
            ~subject:(Printf.sprintf "control line %d" line)
            "control line %d drives no valve (sparse numbering wastes a control port)" line
          :: !out
    done;
  List.rev !out

(* MF009: stuck-at-1 testability — closing all valves must separate every
   pair of ports (re-proof of the [Chip.finish] invariant). *)
let separability chip =
  let g = Grid.graph (Chip.grid chip) in
  let channels = Chip.channel_edges chip in
  let allowed e = Bitset.mem channels e && Chip.valve_on chip e = None in
  let ports = Chip.ports chip in
  let out = ref [] in
  for i = 0 to Array.length ports - 1 do
    for j = i + 1 to Array.length ports - 1 do
      if Traverse.connected g ~allowed ports.(i).node ports.(j).node then
        out :=
          Diag.warningf ~code:"MF009"
            ~subject:(Printf.sprintf "ports %s/%s" ports.(i).port_name ports.(j).port_name)
            "ports %s and %s stay connected with every valve closed (stuck-at-1 untestable)"
            ports.(i).port_name ports.(j).port_name
          :: !out
    done
  done;
  List.rev !out

let chip c =
  Mf_util.Diag.by_severity
    (duplicates c @ ports_wired c @ valves_on_channels c @ dangling c @ reachability c
    @ coordinates c @ dft_consistent c @ control_lines c @ separability c)
