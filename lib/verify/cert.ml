module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Bitset = Mf_util.Bitset
module Diag = Mf_util.Diag
module Fault = Mf_faults.Fault

type suite = {
  source_port : int;
  meter_port : int;
  path_edges : int list list;
  cut_valves : int list list;
}

type t = {
  chip_name : string;
  suite : suite;
  claimed_vectors : int;
  claimed_detected : int;
  claimed_total : int;
}

let make ~chip_name ~suite ~claimed_vectors ~claimed_coverage:(claimed_detected, claimed_total) =
  { chip_name; suite; claimed_vectors; claimed_detected; claimed_total }

(* ------------------------------------------------------------------ *)
(* Independent pressure/fault simulation: the physics of Sec. 2 restated
   from scratch on top of graph reachability — no Mf_faults.Pressure, no
   solver involvement. *)

let active_lines_of_path chip edges =
  let active = Bitset.create (Chip.n_controls chip) in
  Bitset.fill active;
  List.iter
    (fun e ->
      match Chip.valve_on chip e with
      | Some v -> Bitset.remove active v.control
      | None -> ())
    edges;
  active

let active_lines_of_cut chip valve_ids =
  let active = Bitset.create (Chip.n_controls chip) in
  let valves = Chip.valves chip in
  List.iter (fun v -> Bitset.add active valves.(v).control) valve_ids;
  active

let conducts chip ?fault ~active e =
  Chip.is_channel chip e
  && (match fault with Some (Fault.Stuck_at_0 e') -> e' <> e | _ -> true)
  &&
  match Chip.valve_on chip e with
  | None -> true
  | Some v ->
    (not (Bitset.mem active v.control))
    || (match fault with Some (Fault.Stuck_at_1 w) -> w = v.valve_id | _ -> false)

let reading ?fault chip ~active ~source ~meter =
  let g = Grid.graph (Chip.grid chip) in
  Traverse.connected g ~allowed:(conducts chip ?fault ~active) source meter

(* ------------------------------------------------------------------ *)
(* Checks *)

let edge_str chip e = Format.asprintf "%a" (Grid.pp_edge (Chip.grid chip)) e

(* MF105: every id the certificate names must exist on the chip.  Returns
   diagnostics; deeper checks run only when this comes back clean. *)
let check_ranges chip t =
  let n_ports = Array.length (Chip.ports chip) in
  let n_edges = Graph.n_edges (Grid.graph (Chip.grid chip)) in
  let n_valves = Chip.n_valves chip in
  let out = ref [] in
  if Chip.name chip <> t.chip_name then
    out :=
      Diag.warningf ~code:"MF105" "certificate was issued for chip %S, checking against %S"
        t.chip_name (Chip.name chip)
      :: !out;
  let port_ok label p =
    if p < 0 || p >= n_ports then
      out :=
        Diag.errorf ~code:"MF105" "%s port id %d outside [0, %d)" label p n_ports :: !out
  in
  port_ok "source" t.suite.source_port;
  port_ok "meter" t.suite.meter_port;
  List.iteri
    (fun i edges ->
      List.iter
        (fun e ->
          if e < 0 || e >= n_edges then
            out :=
              Diag.errorf ~code:"MF105"
                ~subject:(Printf.sprintf "path #%d" i)
                "path #%d names edge %d outside [0, %d)" i e n_edges
              :: !out)
        edges)
    t.suite.path_edges;
  List.iteri
    (fun i valves ->
      List.iter
        (fun v ->
          if v < 0 || v >= n_valves then
            out :=
              Diag.errorf ~code:"MF105"
                ~subject:(Printf.sprintf "cut #%d" i)
                "cut #%d names valve %d outside [0, %d)" i v n_valves
              :: !out)
        valves)
    t.suite.cut_valves;
  List.rev !out

(* MF101: each claimed path must be a contiguous walk of conducting
   channel edges from the source port to the meter port under its own
   vector. *)
let check_paths chip t ~source ~meter =
  let g = Grid.graph (Chip.grid chip) in
  let out = ref [] in
  List.iteri
    (fun i edges ->
      let subject = Printf.sprintf "path #%d" i in
      let err fmt = Diag.errorf ~code:"MF101" ~subject fmt in
      if edges = [] then out := err "path #%d is empty" i :: !out
      else begin
        let active = active_lines_of_path chip edges in
        (* contiguity: fold the edge list into a walk from the source *)
        let rec walk node = function
          | [] -> Some node
          | e :: rest -> (
              match Graph.other_endpoint g ~edge:e node with
              | next -> walk next rest
              | exception Invalid_argument _ -> None)
        in
        (match walk source edges with
         | None ->
           out := err "path #%d is not a contiguous walk from the source port" i :: !out
         | Some final when final <> meter ->
           out := err "path #%d ends at node %d, not at the meter port" i final :: !out
         | Some _ -> ());
        List.iter
          (fun e ->
            if not (Chip.is_channel chip e) then
              out := err "path #%d uses edge %s which carries no channel" i (edge_str chip e) :: !out
            else if not (conducts chip ~active e) then
              out :=
                err "path #%d is blocked at edge %s: its valve is closed by the vector" i
                  (edge_str chip e)
                :: !out)
          edges;
        (* the realized vector must actually propagate pressure end to end *)
        if not (reading chip ~active ~source ~meter) then
          out := err "path #%d does not connect source to meter when applied" i :: !out
      end)
    t.suite.path_edges;
  List.rev !out

(* MF102: closing a cut's valves (and whatever shares their lines) must
   disconnect source from meter. *)
let check_cuts chip t ~source ~meter =
  let out = ref [] in
  List.iteri
    (fun i valves ->
      let active = active_lines_of_cut chip valves in
      if reading chip ~active ~source ~meter then
        out :=
          Diag.errorf ~code:"MF102"
            ~subject:(Printf.sprintf "cut #%d" i)
            "cut #%d does not disconnect source from meter: pressure still propagates" i
          :: !out)
    t.suite.cut_valves;
  List.rev !out

(* Fault-free readings: paths must read pressure, cuts must not (MF104). *)
let check_well_formed chip t ~source ~meter =
  let out = ref [] in
  List.iteri
    (fun i edges ->
      let active = active_lines_of_path chip edges in
      if not (reading chip ~active ~source ~meter) then
        out :=
          Diag.errorf ~code:"MF104"
            ~subject:(Printf.sprintf "path #%d" i)
            "path vector #%d is malformed: expected pressure at the meter, read none" i
          :: !out)
    t.suite.path_edges;
  List.iteri
    (fun i valves ->
      let active = active_lines_of_cut chip valves in
      if reading chip ~active ~source ~meter then
        out :=
          Diag.errorf ~code:"MF104"
            ~subject:(Printf.sprintf "cut #%d" i)
            "cut vector #%d is malformed: meter reads pressure without any defect" i
          :: !out)
    t.suite.cut_valves;
  List.rev !out

(* MF103: re-measure stuck-at-0/1 coverage by exhaustive single-fault
   simulation and compare against the claim. *)
let check_coverage chip t ~source ~meter =
  let vectors =
    List.map (fun edges -> active_lines_of_path chip edges) t.suite.path_edges
    @ List.map (fun valves -> active_lines_of_cut chip valves) t.suite.cut_valves
  in
  let fault_free = List.map (fun active -> reading chip ~active ~source ~meter) vectors in
  let universe =
    List.filter (function Fault.Leak _ -> false | _ -> true) (Fault.all chip)
  in
  let detected, escaped =
    List.fold_left
      (fun (d, esc) fault ->
        let caught =
          List.exists2
            (fun active clean -> reading chip ~fault ~active ~source ~meter <> clean)
            vectors fault_free
        in
        if caught then (d + 1, esc) else (d, fault :: esc))
      (0, []) universe
  in
  let out = ref [] in
  let total = List.length universe in
  List.iter
    (fun fault ->
      out :=
        Diag.errorf ~code:"MF103" "fault %s escapes the suite"
          (Format.asprintf "%a" (Fault.pp chip) fault)
        :: !out)
    (List.rev escaped);
  if detected <> t.claimed_detected || total <> t.claimed_total then
    out :=
      Diag.errorf ~code:"MF103"
        "claimed stuck-at-0/1 coverage %d/%d, independent simulation measures %d/%d"
        t.claimed_detected t.claimed_total detected total
      :: !out;
  let n_vectors = List.length t.suite.path_edges + List.length t.suite.cut_valves in
  if n_vectors <> t.claimed_vectors then
    out :=
      Diag.errorf ~code:"MF103" "certificate claims %d vectors but carries %d"
        t.claimed_vectors n_vectors
      :: !out;
  List.rev !out

let check chip t =
  match check_ranges chip t with
  | ranged when Diag.has_errors ranged -> ranged
  | ranged ->
    let ports = Chip.ports chip in
    let source = ports.(t.suite.source_port).node in
    let meter = ports.(t.suite.meter_port).node in
    Diag.by_severity
      (ranged @ check_paths chip t ~source ~meter @ check_cuts chip t ~source ~meter
      @ check_well_formed chip t ~source ~meter
      @ check_coverage chip t ~source ~meter)

(* ------------------------------------------------------------------ *)
(* Serialisation *)

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "# DFT test certificate (mfdft)\n";
  Buffer.add_string buf (Printf.sprintf "cert %s\n" t.chip_name);
  Buffer.add_string buf
    (Printf.sprintf "suite %d %d\n" t.suite.source_port t.suite.meter_port);
  List.iter
    (fun edges ->
      Buffer.add_string buf
        ("path " ^ String.concat " " (List.map string_of_int edges) ^ "\n"))
    t.suite.path_edges;
  List.iter
    (fun valves ->
      Buffer.add_string buf ("cut " ^ String.concat " " (List.map string_of_int valves) ^ "\n"))
    t.suite.cut_valves;
  Buffer.add_string buf (Printf.sprintf "claim vectors %d\n" t.claimed_vectors);
  Buffer.add_string buf
    (Printf.sprintf "claim coverage %d %d\n" t.claimed_detected t.claimed_total);
  Buffer.contents buf

let save path t = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string t))

let parse ?file text =
  let where lineno = Diag.span ?file ~line:lineno () in
  let name = ref None in
  let header = ref None in
  let paths = ref [] in
  let cuts = ref [] in
  let claim_vectors = ref None in
  let claim_coverage = ref None in
  let err lineno fmt =
    Printf.ksprintf
      (fun msg -> Error [ Diag.errorf ~where:(where lineno) ~code:"MF303" "%s" msg ])
      fmt
  in
  let ints lineno label words k =
    let parsed = List.map int_of_string_opt words in
    if List.exists (fun p -> p = None) parsed then
      err lineno "%s expects integer ids" label
    else
      k (List.map Option.get parsed)
  in
  let rec process lineno = function
    | [] ->
      (match (!name, !header) with
       | None, _ -> Error [ Diag.errorf ~where:(where lineno) ~code:"MF303" "missing cert header" ]
       | _, None ->
         Error [ Diag.errorf ~where:(where lineno) ~code:"MF303" "missing suite SRC METER line" ]
       | Some chip_name, Some (source_port, meter_port) ->
         let suite =
           {
             source_port;
             meter_port;
             path_edges = List.rev !paths;
             cut_valves = List.rev !cuts;
           }
         in
         let n_vectors = List.length suite.path_edges + List.length suite.cut_valves in
         Ok
           {
             chip_name;
             suite;
             claimed_vectors = Option.value !claim_vectors ~default:n_vectors;
             claimed_detected = (match !claim_coverage with Some (d, _) -> d | None -> 0);
             claimed_total = (match !claim_coverage with Some (_, t) -> t | None -> 0);
           })
    | raw :: rest -> (
        let line =
          match String.index_opt raw '#' with Some i -> String.sub raw 0 i | None -> raw
        in
        let words =
          String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
        in
        match words with
        | [] -> process (lineno + 1) rest
        | [ "cert"; n ] ->
          if !name <> None then err lineno "duplicate cert header"
          else begin
            name := Some n;
            process (lineno + 1) rest
          end
        | "cert" :: _ -> err lineno "usage: cert CHIP_NAME"
        | [ "suite"; s; m ] ->
          ints lineno "suite" [ s; m ] (function
            | [ s; m ] ->
              if !header <> None then err lineno "duplicate suite line"
              else begin
                header := Some (s, m);
                process (lineno + 1) rest
              end
            | _ -> err lineno "usage: suite SRC_PORT METER_PORT")
        | "suite" :: _ -> err lineno "usage: suite SRC_PORT METER_PORT"
        | "path" :: ids when ids <> [] ->
          ints lineno "path" ids (fun edges ->
              paths := edges :: !paths;
              process (lineno + 1) rest)
        | "path" :: _ -> err lineno "path needs at least one edge id"
        | "cut" :: ids when ids <> [] ->
          ints lineno "cut" ids (fun valves ->
              cuts := valves :: !cuts;
              process (lineno + 1) rest)
        | "cut" :: _ -> err lineno "cut needs at least one valve id"
        | [ "claim"; "vectors"; n ] ->
          ints lineno "claim vectors" [ n ] (function
            | [ n ] ->
              claim_vectors := Some n;
              process (lineno + 1) rest
            | _ -> err lineno "usage: claim vectors N")
        | [ "claim"; "coverage"; d; t ] ->
          ints lineno "claim coverage" [ d; t ] (function
            | [ d; t ] ->
              claim_coverage := Some (d, t);
              process (lineno + 1) rest
            | _ -> err lineno "usage: claim coverage DETECTED TOTAL")
        | "claim" :: _ -> err lineno "usage: claim vectors N | claim coverage DETECTED TOTAL"
        | other :: _ -> err lineno "unknown certificate directive %S" other)
  in
  process 1 (String.split_on_char '\n' text)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse ~file:path text
  | exception Sys_error m -> Error [ Diag.errorf ~code:"MF303" "%s" m ]
