module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Graph = Mf_graph.Graph
module Traverse = Mf_graph.Traverse
module Bitset = Mf_util.Bitset
module Diag = Mf_util.Diag
module Fault = Mf_faults.Fault

type suite = {
  source_port : int;
  meter_port : int;
  path_edges : int list list;
  cut_valves : int list list;
}

type t = {
  chip_name : string;
  suite : suite;
  context : Fault.t list;
  waived : Fault.t list;
  claimed_vectors : int;
  claimed_detected : int;
  claimed_total : int;
}

let make ~chip_name ~suite ?(context = []) ?(waived = []) ~claimed_vectors
    ~claimed_coverage:(claimed_detected, claimed_total) () =
  { chip_name; suite; context; waived; claimed_vectors; claimed_detected; claimed_total }

(* ------------------------------------------------------------------ *)
(* Independent pressure/fault simulation: the physics of Sec. 2 restated
   from scratch on top of graph reachability — no Mf_faults.Pressure, no
   solver involvement. *)

let active_lines_of_path chip edges =
  let active = Bitset.create (Chip.n_controls chip) in
  Bitset.fill active;
  List.iter
    (fun e ->
      match Chip.valve_on chip e with
      | Some v -> Bitset.remove active v.control
      | None -> ())
    edges;
  active

let active_lines_of_cut chip valve_ids =
  let active = Bitset.create (Chip.n_controls chip) in
  let valves = Chip.valves chip in
  List.iter (fun v -> Bitset.add active valves.(v).control) valve_ids;
  active

let conducts chip ?fault ~active e =
  Chip.is_channel chip e
  && (match fault with Some (Fault.Stuck_at_0 e') -> e' <> e | _ -> true)
  &&
  match Chip.valve_on chip e with
  | None -> true
  | Some v ->
    (not (Bitset.mem active v.control))
    || (match fault with Some (Fault.Stuck_at_1 w) -> w = v.valve_id | _ -> false)

let reading ?fault chip ~active ~source ~meter =
  let g = Grid.graph (Chip.grid chip) in
  Traverse.connected g ~allowed:(conducts chip ?fault ~active) source meter

(* The fault {e context}: defects the certificate declares physically
   present on the chip (a repaired suite is checked on the degraded chip).
   Re-derived here from the [fault] directives alone. *)
type field = {
  f_blocked : Bitset.t; (* edges with a present stuck-at-0 *)
  f_open : Bitset.t; (* valves with a present stuck-at-1 *)
  f_leaks : int list; (* valves with a present control-to-flow leak *)
}

let field_of chip faults =
  let g = Grid.graph (Chip.grid chip) in
  let blocked = Bitset.create (Graph.n_edges g) in
  let open_ = Bitset.create (max 1 (Chip.n_valves chip)) in
  let leaks = ref [] in
  List.iter
    (function
      | Fault.Stuck_at_0 e -> Bitset.add blocked e
      | Fault.Stuck_at_1 v -> Bitset.add open_ v
      | Fault.Leak v -> if not (List.mem v !leaks) then leaks := v :: !leaks)
    faults;
  { f_blocked = blocked; f_open = open_; f_leaks = List.rev !leaks }

let fconducts field chip ?fault ~active e =
  Chip.is_channel chip e
  && (not (Bitset.mem field.f_blocked e))
  && (match fault with Some (Fault.Stuck_at_0 e') -> e' <> e | _ -> true)
  &&
  match Chip.valve_on chip e with
  | None -> true
  | Some v ->
    (not (Bitset.mem active v.control))
    || Bitset.mem field.f_open v.valve_id
    || (match fault with Some (Fault.Stuck_at_1 w) -> w = v.valve_id | _ -> false)

(* A present control-to-flow leak injects pressure at the valve seat
   whenever its control line is pressurised, independent of the source. *)
let freading field ?fault chip ~active ~source ~meter =
  let g = Grid.graph (Chip.grid chip) in
  let allowed = fconducts field chip ?fault ~active in
  let leak_reads w =
    let valve = (Chip.valves chip).(w) in
    Bitset.mem active valve.control
    &&
    let a, b = Graph.endpoints g valve.edge in
    Traverse.connected g ~allowed a meter || Traverse.connected g ~allowed b meter
  in
  Traverse.connected g ~allowed source meter
  || List.exists leak_reads field.f_leaks
  || (match fault with Some (Fault.Leak w) -> leak_reads w | _ -> false)

(* ------------------------------------------------------------------ *)
(* Checks *)

let edge_str chip e = Format.asprintf "%a" (Grid.pp_edge (Chip.grid chip)) e
let fault_str chip f = Format.asprintf "%a" (Fault.pp chip) f

(* MF105: every id the certificate names must exist on the chip.  Returns
   diagnostics; deeper checks run only when this comes back clean. *)
let check_ranges chip t =
  let n_ports = Array.length (Chip.ports chip) in
  let n_edges = Graph.n_edges (Grid.graph (Chip.grid chip)) in
  let n_valves = Chip.n_valves chip in
  let out = ref [] in
  if Chip.name chip <> t.chip_name then
    out :=
      Diag.warningf ~code:"MF105" "certificate was issued for chip %S, checking against %S"
        t.chip_name (Chip.name chip)
      :: !out;
  let port_ok label p =
    if p < 0 || p >= n_ports then
      out :=
        Diag.errorf ~code:"MF105" "%s port id %d outside [0, %d)" label p n_ports :: !out
  in
  port_ok "source" t.suite.source_port;
  port_ok "meter" t.suite.meter_port;
  List.iteri
    (fun i edges ->
      List.iter
        (fun e ->
          if e < 0 || e >= n_edges then
            out :=
              Diag.errorf ~code:"MF105"
                ~subject:(Printf.sprintf "path #%d" i)
                "path #%d names edge %d outside [0, %d)" i e n_edges
              :: !out)
        edges)
    t.suite.path_edges;
  List.iteri
    (fun i valves ->
      List.iter
        (fun v ->
          if v < 0 || v >= n_valves then
            out :=
              Diag.errorf ~code:"MF105"
                ~subject:(Printf.sprintf "cut #%d" i)
                "cut #%d names valve %d outside [0, %d)" i v n_valves
              :: !out)
        valves)
    t.suite.cut_valves;
  let fault_ok label f =
    let bad kind id bound =
      out :=
        Diag.errorf ~code:"MF105" "%s fault names %s %d outside [0, %d)" label kind id bound
        :: !out
    in
    match f with
    | Fault.Stuck_at_0 e -> if e < 0 || e >= n_edges then bad "edge" e n_edges
    | Fault.Stuck_at_1 v | Fault.Leak v -> if v < 0 || v >= n_valves then bad "valve" v n_valves
  in
  List.iter (fault_ok "context") t.context;
  List.iter (fault_ok "waived") t.waived;
  List.rev !out

(* MF101: each claimed path must be a contiguous walk of conducting
   channel edges from the source port to the meter port under its own
   vector. *)
let check_paths field chip t ~source ~meter =
  let g = Grid.graph (Chip.grid chip) in
  let out = ref [] in
  List.iteri
    (fun i edges ->
      let subject = Printf.sprintf "path #%d" i in
      let err fmt = Diag.errorf ~code:"MF101" ~subject fmt in
      if edges = [] then out := err "path #%d is empty" i :: !out
      else begin
        let active = active_lines_of_path chip edges in
        (* contiguity: fold the edge list into a walk from the source *)
        let rec walk node = function
          | [] -> Some node
          | e :: rest -> (
              match Graph.other_endpoint g ~edge:e node with
              | next -> walk next rest
              | exception Invalid_argument _ -> None)
        in
        (match walk source edges with
         | None ->
           out := err "path #%d is not a contiguous walk from the source port" i :: !out
         | Some final when final <> meter ->
           out := err "path #%d ends at node %d, not at the meter port" i final :: !out
         | Some _ -> ());
        List.iter
          (fun e ->
            if not (Chip.is_channel chip e) then
              out := err "path #%d uses edge %s which carries no channel" i (edge_str chip e) :: !out
            else if Bitset.mem field.f_blocked e then
              out :=
                err "path #%d traverses edge %s which the fault context blocks" i
                  (edge_str chip e)
                :: !out
            else if not (fconducts field chip ~active e) then
              out :=
                err "path #%d is blocked at edge %s: its valve is closed by the vector" i
                  (edge_str chip e)
                :: !out)
          edges;
        (* the realized vector must actually propagate pressure end to end *)
        if not (freading field chip ~active ~source ~meter) then
          out := err "path #%d does not connect source to meter when applied" i :: !out
      end)
    t.suite.path_edges;
  List.rev !out

(* MF102: closing a cut's valves (and whatever shares their lines) must
   disconnect source from meter. *)
let check_cuts field chip t ~source ~meter =
  let out = ref [] in
  List.iteri
    (fun i valves ->
      let active = active_lines_of_cut chip valves in
      if freading field chip ~active ~source ~meter then
        out :=
          Diag.errorf ~code:"MF102"
            ~subject:(Printf.sprintf "cut #%d" i)
            "cut #%d does not disconnect source from meter: pressure still propagates" i
          :: !out)
    t.suite.cut_valves;
  List.rev !out

(* Fault-free readings: paths must read pressure, cuts must not (MF104).
   "Fault-free" here means {e under the declared context}: a repaired
   suite must be well-formed on the degraded chip. *)
let check_well_formed field chip t ~source ~meter =
  let out = ref [] in
  List.iteri
    (fun i edges ->
      let active = active_lines_of_path chip edges in
      if not (freading field chip ~active ~source ~meter) then
        out :=
          Diag.errorf ~code:"MF104"
            ~subject:(Printf.sprintf "path #%d" i)
            "path vector #%d is malformed: expected pressure at the meter, read none" i
          :: !out)
    t.suite.path_edges;
  List.iteri
    (fun i valves ->
      let active = active_lines_of_cut chip valves in
      if freading field chip ~active ~source ~meter then
        out :=
          Diag.errorf ~code:"MF104"
            ~subject:(Printf.sprintf "cut #%d" i)
            "cut vector #%d is malformed: meter reads pressure without any defect" i
          :: !out)
    t.suite.cut_valves;
  List.rev !out

(* MF103: re-measure stuck-at-0/1 coverage by exhaustive single-fault
   simulation on top of the context and compare against the claim.  The
   universe excludes the context itself (those defects are no longer
   hypothetical); an escape is tolerated only when explicitly waived, and
   a waived fault the suite nonetheless detects is a contradiction. *)
let check_coverage field chip t ~source ~meter =
  let vectors =
    List.map (fun edges -> active_lines_of_path chip edges) t.suite.path_edges
    @ List.map (fun valves -> active_lines_of_cut chip valves) t.suite.cut_valves
  in
  let fault_free = List.map (fun active -> freading field chip ~active ~source ~meter) vectors in
  let in_context f = List.exists (Fault.equal f) t.context in
  let is_waived f = List.exists (Fault.equal f) t.waived in
  let universe =
    List.filter
      (fun f -> (match f with Fault.Leak _ -> false | _ -> true) && not (in_context f))
      (Fault.all chip)
  in
  let detected, escaped, contradicted =
    List.fold_left
      (fun (d, esc, bad) fault ->
        let caught =
          List.exists2
            (fun active clean -> freading field ~fault chip ~active ~source ~meter <> clean)
            vectors fault_free
        in
        if caught then (d + 1, esc, if is_waived fault then fault :: bad else bad)
        else (d, fault :: esc, bad))
      (0, [], []) universe
  in
  let out = ref [] in
  let total = List.length universe in
  List.iter
    (fun fault ->
      if not (is_waived fault) then
        out :=
          Diag.errorf ~code:"MF103" "fault %s escapes the suite" (fault_str chip fault) :: !out)
    (List.rev escaped);
  List.iter
    (fun fault ->
      out :=
        Diag.errorf ~code:"MF103" "fault %s is waived as untestable yet the suite detects it"
          (fault_str chip fault)
        :: !out)
    (List.rev contradicted);
  if detected <> t.claimed_detected || total <> t.claimed_total then
    out :=
      Diag.errorf ~code:"MF103"
        "claimed stuck-at-0/1 coverage %d/%d, independent simulation measures %d/%d"
        t.claimed_detected t.claimed_total detected total
      :: !out;
  let n_vectors = List.length t.suite.path_edges + List.length t.suite.cut_valves in
  if n_vectors <> t.claimed_vectors then
    out :=
      Diag.errorf ~code:"MF103" "certificate claims %d vectors but carries %d"
        t.claimed_vectors n_vectors
      :: !out;
  List.rev !out

(* MF106: every waiver must be {e proved} untestable by structural
   analysis — a lazy generator cannot simply waive the faults it failed to
   cover.  Sound (sufficient) criteria only, over two conduction graphs:

   - M ("maximal"): edges that can conduct under {e some} vector —
     channel, not blocked by the context;
   - U ("unavoidable"): edges that conduct under {e every} vector —
     M-edges that are unvalved or whose valve is stuck open.

   Pressure origins are the source plus the seats of context leaks (a
   pressurised leaking valve injects at its seat).  A fault that can never
   change origin→meter connectivity is untestable. *)
let check_waivers field chip t ~source ~meter =
  if t.waived = [] then []
  else begin
    let g = Grid.graph (Chip.grid chip) in
    let valves = Chip.valves chip in
    let m_allowed e = Chip.is_channel chip e && not (Bitset.mem field.f_blocked e) in
    let u_allowed e =
      m_allowed e
      &&
      match Chip.valve_on chip e with
      | None -> true
      | Some v -> Bitset.mem field.f_open v.valve_id
    in
    let origins =
      source
      :: List.concat_map
           (fun w ->
             let a, b = Graph.endpoints g valves.(w).edge in
             [ a; b ])
           field.f_leaks
    in
    let to_meter = Traverse.reachable g ~allowed:m_allowed ~src:meter in
    let always_connected = Traverse.connected g ~allowed:u_allowed source meter in
    (* Every vector's conducting graph sits between the always-conducting
       subgraph and M, so observability of an edge is decided exactly by
       the contracted-graph bridge search: [No_route] soundly certifies
       that no vector can observe it.  The audit runs the same
       deterministic search as the producer, so a waiver the producer
       could prove is exactly one the audit accepts. *)
    let routable e =
      match
        Mf_graph.Disjoint.route_through g ~allowed:m_allowed ~contract:u_allowed ~origins
          ~target:meter ~via:e ~cap:Mf_graph.Disjoint.default_cap
      with
      | Mf_graph.Disjoint.No_route -> false
      | Mf_graph.Disjoint.Route _ | Mf_graph.Disjoint.Capped -> true
    in
    let untestable = function
      | Fault.Stuck_at_0 e ->
        (not (Chip.is_channel chip e))
        || Bitset.mem field.f_blocked e
        || not (routable e)
      | Fault.Stuck_at_1 w ->
        let v = valves.(w) in
        Bitset.mem field.f_open w
        (* a context leak at [w] pressurises both seats whenever the line
           is active, so the valve's sealing can never reach the meter *)
        || List.mem w field.f_leaks
        || Bitset.mem field.f_blocked v.edge
        || not (routable v.edge)
      | Fault.Leak w ->
        let v = valves.(w) in
        Bitset.mem field.f_blocked v.edge || always_connected
        ||
        let a, b = Graph.endpoints g v.edge in
        not (Bitset.mem to_meter a || Bitset.mem to_meter b)
    in
    let out = ref [] in
    List.iter
      (fun f ->
        if List.exists (Fault.equal f) t.context then
          out :=
            Diag.errorf ~code:"MF106" "waived fault %s is already declared in the fault context"
              (fault_str chip f)
            :: !out
        else if not (untestable f) then
          out :=
            Diag.errorf ~code:"MF106"
              "waiver for fault %s is not supported by structural analysis" (fault_str chip f)
            :: !out)
      t.waived;
    List.rev !out
  end

let check chip t =
  match check_ranges chip t with
  | ranged when Diag.has_errors ranged -> ranged
  | ranged ->
    let ports = Chip.ports chip in
    let source = ports.(t.suite.source_port).node in
    let meter = ports.(t.suite.meter_port).node in
    let field = field_of chip t.context in
    Diag.by_severity
      (ranged
      @ check_paths field chip t ~source ~meter
      @ check_cuts field chip t ~source ~meter
      @ check_well_formed field chip t ~source ~meter
      @ check_coverage field chip t ~source ~meter
      @ check_waivers field chip t ~source ~meter)

(* ------------------------------------------------------------------ *)
(* Serialisation *)

let fault_words = function
  | Fault.Stuck_at_0 e -> Printf.sprintf "sa0 %d" e
  | Fault.Stuck_at_1 v -> Printf.sprintf "sa1 %d" v
  | Fault.Leak v -> Printf.sprintf "leak %d" v

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "# DFT test certificate (mfdft)\n";
  Buffer.add_string buf (Printf.sprintf "cert %s\n" t.chip_name);
  Buffer.add_string buf
    (Printf.sprintf "suite %d %d\n" t.suite.source_port t.suite.meter_port);
  List.iter
    (fun edges ->
      Buffer.add_string buf
        ("path " ^ String.concat " " (List.map string_of_int edges) ^ "\n"))
    t.suite.path_edges;
  List.iter
    (fun valves ->
      Buffer.add_string buf ("cut " ^ String.concat " " (List.map string_of_int valves) ^ "\n"))
    t.suite.cut_valves;
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "fault %s\n" (fault_words f)))
    t.context;
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "waive %s\n" (fault_words f)))
    t.waived;
  Buffer.add_string buf (Printf.sprintf "claim vectors %d\n" t.claimed_vectors);
  Buffer.add_string buf
    (Printf.sprintf "claim coverage %d %d\n" t.claimed_detected t.claimed_total);
  Buffer.contents buf

let save path t = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string t))

let parse ?file text =
  let where lineno = Diag.span ?file ~line:lineno () in
  let name = ref None in
  let header = ref None in
  let paths = ref [] in
  let cuts = ref [] in
  let context = ref [] in
  let waived = ref [] in
  let claim_vectors = ref None in
  let claim_coverage = ref None in
  let err lineno fmt =
    Printf.ksprintf
      (fun msg -> Error [ Diag.errorf ~where:(where lineno) ~code:"MF303" "%s" msg ])
      fmt
  in
  let ints lineno label words k =
    let parsed = List.map int_of_string_opt words in
    if List.exists (fun p -> p = None) parsed then
      err lineno "%s expects integer ids" label
    else
      k (List.map Option.get parsed)
  in
  let fault_of lineno directive kind id k =
    ints lineno directive [ id ] (function
      | [ id ] -> (
          match kind with
          | "sa0" -> k (Fault.Stuck_at_0 id)
          | "sa1" -> k (Fault.Stuck_at_1 id)
          | "leak" -> k (Fault.Leak id)
          | _ -> err lineno "usage: %s sa0|sa1|leak ID" directive)
      | _ -> err lineno "usage: %s sa0|sa1|leak ID" directive)
  in
  let rec process lineno = function
    | [] ->
      (match (!name, !header) with
       | None, _ -> Error [ Diag.errorf ~where:(where lineno) ~code:"MF303" "missing cert header" ]
       | _, None ->
         Error [ Diag.errorf ~where:(where lineno) ~code:"MF303" "missing suite SRC METER line" ]
       | Some chip_name, Some (source_port, meter_port) ->
         let suite =
           {
             source_port;
             meter_port;
             path_edges = List.rev !paths;
             cut_valves = List.rev !cuts;
           }
         in
         let n_vectors = List.length suite.path_edges + List.length suite.cut_valves in
         Ok
           {
             chip_name;
             suite;
             context = List.rev !context;
             waived = List.rev !waived;
             claimed_vectors = Option.value !claim_vectors ~default:n_vectors;
             claimed_detected = (match !claim_coverage with Some (d, _) -> d | None -> 0);
             claimed_total = (match !claim_coverage with Some (_, t) -> t | None -> 0);
           })
    | raw :: rest -> (
        let line =
          match String.index_opt raw '#' with Some i -> String.sub raw 0 i | None -> raw
        in
        let words =
          String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
        in
        match words with
        | [] -> process (lineno + 1) rest
        | [ "cert"; n ] ->
          if !name <> None then err lineno "duplicate cert header"
          else begin
            name := Some n;
            process (lineno + 1) rest
          end
        | "cert" :: _ -> err lineno "usage: cert CHIP_NAME"
        | [ "suite"; s; m ] ->
          ints lineno "suite" [ s; m ] (function
            | [ s; m ] ->
              if !header <> None then err lineno "duplicate suite line"
              else begin
                header := Some (s, m);
                process (lineno + 1) rest
              end
            | _ -> err lineno "usage: suite SRC_PORT METER_PORT")
        | "suite" :: _ -> err lineno "usage: suite SRC_PORT METER_PORT"
        | "path" :: ids when ids <> [] ->
          ints lineno "path" ids (fun edges ->
              paths := edges :: !paths;
              process (lineno + 1) rest)
        | "path" :: _ -> err lineno "path needs at least one edge id"
        | "cut" :: ids when ids <> [] ->
          ints lineno "cut" ids (fun valves ->
              cuts := valves :: !cuts;
              process (lineno + 1) rest)
        | "cut" :: _ -> err lineno "cut needs at least one valve id"
        | [ "fault"; kind; id ] ->
          fault_of lineno "fault" kind id (fun f ->
              context := f :: !context;
              process (lineno + 1) rest)
        | "fault" :: _ -> err lineno "usage: fault sa0|sa1|leak ID"
        | [ "waive"; kind; id ] ->
          fault_of lineno "waive" kind id (fun f ->
              waived := f :: !waived;
              process (lineno + 1) rest)
        | "waive" :: _ -> err lineno "usage: waive sa0|sa1|leak ID"
        | [ "claim"; "vectors"; n ] ->
          ints lineno "claim vectors" [ n ] (function
            | [ n ] ->
              claim_vectors := Some n;
              process (lineno + 1) rest
            | _ -> err lineno "usage: claim vectors N")
        | [ "claim"; "coverage"; d; t ] ->
          ints lineno "claim coverage" [ d; t ] (function
            | [ d; t ] ->
              claim_coverage := Some (d, t);
              process (lineno + 1) rest
            | _ -> err lineno "usage: claim coverage DETECTED TOTAL")
        | "claim" :: _ -> err lineno "usage: claim vectors N | claim coverage DETECTED TOTAL"
        | other :: _ -> err lineno "unknown certificate directive %S" other)
  in
  process 1 (String.split_on_char '\n' text)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse ~file:path text
  | exception Sys_error m -> Error [ Diag.errorf ~code:"MF303" "%s" m ]
